/// The rank-invariance contract of the in-situ mesh-extraction pipeline:
/// the mesh index CSV *and every streamed OBJ frame* of the solidify
/// scenario are bitwise identical for every ranks x threads combination in
/// {1,2,4} x {1,4}, with the moving window active and the production
/// mu-overlap communication hiding on; a checkpoint-restarted run must
/// leave exactly the artifacts of an uninterrupted one; and the index
/// series is pinned against a committed golden reference.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <string>

#include "analysis/mesh_observer.h"
#include "core/solver.h"
#include "io/checkpoint.h"
#include "io/csv_writer.h"

namespace tpf {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("tpf_mesh_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

std::string readAll(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/// Every artifact the observer wrote into \p dir, keyed by file name —
/// the unit of the bitwise comparison across decompositions.
std::map<std::string, std::string> readArtifacts(const fs::path& dir) {
    std::map<std::string, std::string> out;
    for (const auto& e : fs::directory_iterator(dir))
        out[e.path().filename().string()] = readAll(e.path());
    return out;
}

/// Window-heavy solidify configuration (same shape as the analysis
/// rank-invariance suite): solid fill far above the trigger so the window
/// shifts mid-run, and block z-splits (32, 16, 8) aligned with the
/// kSlabHeight chunk grid as the pipeline's determinism contract requires.
core::SolverConfig meshConfig(int ranks, int threads) {
    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 32};
    if (ranks > 1) cfg.blockSize = {16, 16, 32 / ranks};
    cfg.threads = threads;
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.velocity = 0.02;
    cfg.model.temp.zEut0 = 12.0;
    cfg.init.fillHeight = 26;
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.2;
    cfg.window.checkEvery = 8;
    cfg.overlapMu = true;
    return cfg;
}

analysis::MeshObserver::Options meshOptions(const std::string& dir,
                                            int every) {
    analysis::MeshObserver::Options opt;
    opt.dir = dir;
    opt.every = every;
    return opt; // phases {0,1,2}, reduceTarget 0.25 defaults
}

/// Run the solidify scenario with the mesh observer streaming into \p dir;
/// returns root's final window offset (for the shift assertion).
double runWithMeshObserver(const core::SolverConfig& cfg, int ranks,
                           int steps, int every, const std::string& dir) {
    double windowOffset = -1.0;
    auto body = [&](vmpi::Comm* comm) {
        core::Solver solver(cfg, comm);
        analysis::MeshObserver mesh(meshOptions(dir, every));
        mesh.create(!comm || comm->isRoot());
        mesh.attach(solver);
        solver.initialize();
        mesh.sample(solver, 0);
        solver.run(steps);
        if (!comm || comm->isRoot())
            windowOffset = solver.windowOffsetCells();
    };
    if (ranks == 1)
        body(nullptr);
    else
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });
    return windowOffset;
}

TEST(MeshRankInvariance, IndexAndObjFramesBitwiseIdenticalAcrossRanksAndThreads) {
    TempDir dir("invariance");
    std::map<std::string, std::string> reference;

    for (const int ranks : {1, 2, 4}) {
        for (const int threads : {1, 4}) {
            SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                         " threads=" + std::to_string(threads));
            const fs::path out =
                dir.path / ("mesh_r" + std::to_string(ranks) + "_t" +
                            std::to_string(threads));
            const double offset =
                runWithMeshObserver(meshConfig(ranks, threads), ranks,
                                    /*steps=*/16, /*every=*/4, out.string());

            const std::map<std::string, std::string> artifacts =
                readArtifacts(out);
            // 5 samples (steps 0,4,...,16) x 3 phases + the index CSV.
            ASSERT_EQ(artifacts.size(), 16u);
            if (reference.empty()) {
                reference = artifacts;
                EXPECT_GT(offset, 0.0)
                    << "no window shift during the run — the 'window on' "
                       "part of the contract is untested";
                const io::CsvSeries s = io::readCsvSeries(
                    (out / "mesh_index.csv").string());
                ASSERT_EQ(s.rows.size(), 5u);
            } else {
                ASSERT_EQ(artifacts.size(), reference.size());
                for (const auto& [name, bytes] : reference)
                    EXPECT_TRUE(artifacts.at(name) == bytes)
                        << name << " diverged from ranks=1 threads=1";
            }
        }
    }
}

TEST(MeshRankInvariance, RestartLeavesTheArtifactsOfAnUninterruptedRun) {
    // Straight 16 steps vs 8 steps + checkpoint + fresh solver resuming 8
    // more into the same directory: the index CSV resume must trim nothing
    // here (the checkpoint is on a sample step) and the re-reached frames
    // must be rewritten bitwise identically.
    for (const int ranks : {1, 2}) {
        SCOPED_TRACE("ranks=" + std::to_string(ranks));
        TempDir dir("restart_r" + std::to_string(ranks));
        const fs::path straightDir = dir.path / "straight";
        const fs::path splitDir = dir.path / "split";
        const fs::path chk = dir.path / "chk";
        const core::SolverConfig cfg = meshConfig(ranks, 1);

        runWithMeshObserver(cfg, ranks, /*steps=*/16, /*every=*/4,
                            straightDir.string());

        auto body = [&](vmpi::Comm* comm) {
            const bool isRoot = !comm || comm->isRoot();
            core::Solver b(cfg, comm);
            analysis::MeshObserver mb(meshOptions(splitDir.string(), 4));
            mb.create(isRoot);
            mb.attach(b);
            b.initialize();
            mb.sample(b, 0);
            b.run(8);
            io::saveCheckpoint(chk.string(), b);

            core::Solver c(cfg, comm);
            io::loadCheckpoint(chk.string(), c);
            analysis::MeshObserver mc(meshOptions(splitDir.string(), 4));
            mc.resume(isRoot, c.stepsDone());
            mc.attach(c);
            c.run(8);
        };
        if (ranks == 1)
            body(nullptr);
        else
            vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });

        const auto straight = readArtifacts(straightDir);
        const auto split = readArtifacts(splitDir);
        ASSERT_EQ(straight.size(), 16u);
        ASSERT_EQ(split.size(), straight.size());
        for (const auto& [name, bytes] : straight)
            EXPECT_TRUE(split.at(name) == bytes)
                << name << " differs between straight and restarted run";
    }
}

TEST(MeshRankInvariance, ResumeDropsIndexRowsNewerThanTheCheckpoint) {
    TempDir dir("resume");
    runWithMeshObserver(meshConfig(1, 1), 1, /*steps=*/16, /*every=*/4,
                        dir.path.string());
    analysis::MeshObserver m(meshOptions(dir.path.string(), 4));
    ASSERT_EQ(io::readCsvSeries(m.indexPath()).rows.size(), 5u);
    m.resume(true, /*lastStep=*/8);
    const io::CsvSeries trimmed = io::readCsvSeries(m.indexPath());
    ASSERT_EQ(trimmed.rows.size(), 3u); // steps 0, 4, 8 kept
    EXPECT_EQ(trimmed.stepOf(2), 8);
}

/// Golden mesh-index regression: the solidify index series at a pinned
/// configuration against the committed tests/golden/solidify/mesh_index.csv
/// (regenerate with TPF_REGEN_GOLDENS=1 ./tests/test_mesh_parallel). Every
/// cell is IEEE-754 arithmetic on machine-independent fields in a fixed
/// order printed with %.17g, so the reference reproduces across machines.
TEST(MeshGolden, SolidifyIndexMatchesCommittedReference) {
    const fs::path goldenCsv =
        fs::path(TPF_GOLDEN_DIR) / "solidify" / "mesh_index.csv";

    TempDir dir("golden");
    runWithMeshObserver(meshConfig(1, 1), 1, /*steps=*/16, /*every=*/4,
                        dir.path.string());
    const fs::path freshCsv = dir.path / "mesh_index.csv";

    if (std::getenv("TPF_REGEN_GOLDENS") != nullptr) {
        fs::copy_file(freshCsv, goldenCsv,
                      fs::copy_options::overwrite_existing);
        GTEST_SKIP() << "regenerated golden mesh index " << goldenCsv;
    }

    ASSERT_TRUE(fs::exists(goldenCsv))
        << "missing committed golden mesh index " << goldenCsv
        << " — run with TPF_REGEN_GOLDENS=1 and commit tests/golden/";
    const io::CsvDiff d =
        io::compareCsvSeries(goldenCsv.string(), freshCsv.string());
    EXPECT_TRUE(d.identical)
        << "solidify mesh index diverged from the committed reference.\n  "
        << d.message
        << "\n  If this change to the extraction is intentional, regenerate "
           "with TPF_REGEN_GOLDENS=1 ./tests/test_mesh_parallel and commit "
           "tests/golden/.";
}

} // namespace
} // namespace tpf
