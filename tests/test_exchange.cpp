/// Tests for the ghost-layer exchange: pack/unpack regions, intra-rank
/// copies, periodic wrapping, diagonal (D3C19) coverage, multi-rank
/// equivalence with the serial result (bitwise), and overlap start/wait.

#include <gtest/gtest.h>

#include <memory>

#include "comm/exchange.h"
#include "vmpi/comm.h"

namespace tpf {
namespace {

/// Value encoding the global cell id, so any misrouted slab is detected.
double cellTag(Int3 g, int x, int y, int z, int c) {
    return static_cast<double>(((z * g.y + y) * g.x + x) * 10 + c);
}

/// Wrap a global coordinate periodically.
int wrapc(int v, int n) { return ((v % n) + n) % n; }

TEST(Stencils, OffsetCounts) {
    EXPECT_EQ(stencilOffsets(StencilKind::D3C7).size(), 6u);
    EXPECT_EQ(stencilOffsets(StencilKind::D3C19).size(), 18u);
    EXPECT_EQ(stencilOffsets(StencilKind::D3C27).size(), 26u);
}

TEST(Stencils, OffsetIndexIsUniqueAndStable) {
    std::array<bool, 26> seen{};
    for (const Int3& o : stencilOffsets(StencilKind::D3C27)) {
        const int idx = offsetIndex27(o);
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, 26);
        EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
        seen[static_cast<std::size_t>(idx)] = true;
    }
}

TEST(Regions, SendAndGhostRegionsMatchInSize) {
    Field<double> f(8, 6, 4, 2, 1, Layout::fzyx);
    for (const Int3& o : stencilOffsets(StencilKind::D3C27)) {
        const CellInterval s = sendRegion(f, o);
        const CellInterval g = ghostRegion(f, {-o.x, -o.y, -o.z});
        EXPECT_EQ(s.numCells(), g.numCells());
        EXPECT_FALSE(s.empty());
        // Send regions are interior; ghost regions are outside.
        EXPECT_TRUE(f.interior().intersect(s) == s);
        EXPECT_TRUE(f.interior().intersect(g).empty());
    }
}

/// Run an exchange over an R-rank world with the given block grid and verify
/// every ghost cell holds the periodic-wrapped global value.
void runExchangeTest(Int3 globalCells, Int3 blockSize, int nranks,
                     StencilKind stencil) {
    vmpi::runParallel(nranks, [&](vmpi::Comm& comm) {
        auto bf = BlockForest::createUniform(globalCells, blockSize,
                                             {true, true, true}, nranks);
        std::vector<std::unique_ptr<Field<double>>> fields;
        GhostExchange ex(bf, &comm, stencil, 0);

        const auto local = bf.localBlocks(comm.rank());
        for (int b : local) {
            auto f = std::make_unique<Field<double>>(
                blockSize.x, blockSize.y, blockSize.z, 2, 1, Layout::fzyx);
            const Int3 o = bf.blockOrigin(b);
            forEachCell(f->interior(), [&](int x, int y, int z) {
                for (int c = 0; c < 2; ++c)
                    (*f)(x, y, z, c) =
                        cellTag(globalCells, o.x + x, o.y + y, o.z + z, c);
            });
            ex.registerField(b, f.get());
            fields.push_back(std::move(f));
        }

        ex.communicate();

        // Every ghost cell covered by the stencil offsets must hold the
        // periodic global value.
        for (std::size_t i = 0; i < local.size(); ++i) {
            const Int3 o = bf.blockOrigin(local[i]);
            Field<double>& f = *fields[i];
            for (const Int3& off : stencilOffsets(stencil)) {
                forEachCell(ghostRegion(f, off), [&](int x, int y, int z) {
                    const int gx = wrapc(o.x + x, globalCells.x);
                    const int gy = wrapc(o.y + y, globalCells.y);
                    const int gz = wrapc(o.z + z, globalCells.z);
                    for (int c = 0; c < 2; ++c)
                        ASSERT_EQ(f(x, y, z, c),
                                  cellTag(globalCells, gx, gy, gz, c))
                            << "ghost mismatch at offset (" << off.x << ","
                            << off.y << "," << off.z << ")";
                });
            }
        }
    });
}

TEST(Exchange, SerialSingleBlockPeriodicSelfWrap) {
    runExchangeTest({8, 8, 8}, {8, 8, 8}, 1, StencilKind::D3C19);
}

TEST(Exchange, SerialMultiBlock) {
    runExchangeTest({16, 8, 8}, {8, 8, 8}, 1, StencilKind::D3C19);
}

TEST(Exchange, TwoRanks) { runExchangeTest({16, 8, 8}, {8, 8, 8}, 2, StencilKind::D3C19); }

TEST(Exchange, EightRanksAllDiagonals) {
    runExchangeTest({16, 16, 16}, {8, 8, 8}, 8, StencilKind::D3C27);
}

TEST(Exchange, FaceOnlyStencil) {
    runExchangeTest({16, 16, 8}, {8, 8, 8}, 4, StencilKind::D3C7);
}

TEST(Exchange, UnevenBlockToRankAssignment) {
    runExchangeTest({24, 8, 8}, {8, 8, 8}, 2, StencilKind::D3C19);
}

TEST(Exchange, StartWaitOverlapProducesSameResult) {
    vmpi::runParallel(2, [&](vmpi::Comm& comm) {
        const Int3 g{16, 8, 8}, bs{8, 8, 8};
        auto bf = BlockForest::createUniform(g, bs, {true, true, true}, 2);
        std::vector<std::unique_ptr<Field<double>>> fields;
        GhostExchange ex(bf, &comm, StencilKind::D3C19, 0);
        const auto local = bf.localBlocks(comm.rank());
        for (int b : local) {
            auto f = std::make_unique<Field<double>>(bs.x, bs.y, bs.z, 1, 1,
                                                     Layout::fzyx);
            const Int3 o = bf.blockOrigin(b);
            forEachCell(f->interior(), [&](int x, int y, int z) {
                (*f)(x, y, z, 0) = cellTag(g, o.x + x, o.y + y, o.z + z, 0);
            });
            ex.registerField(b, f.get());
            fields.push_back(std::move(f));
        }

        ex.start();
        // "Computation" between start and wait.
        volatile double sink = 0.0;
        for (int i = 0; i < 10000; ++i) sink = sink + 1.0;
        ex.wait();

        for (std::size_t i = 0; i < local.size(); ++i) {
            const Int3 o = bf.blockOrigin(local[i]);
            Field<double>& f = *fields[i];
            forEachCell(ghostRegion(f, {1, 0, 0}), [&](int x, int y, int z) {
                ASSERT_EQ(f(x, y, z, 0),
                          cellTag(g, wrapc(o.x + x, g.x), wrapc(o.y + y, g.y),
                                  wrapc(o.z + z, g.z), 0));
            });
        }

        EXPECT_GT(ex.startSeconds() + ex.waitSeconds(), 0.0);
        if (comm.size() > 1) {
            EXPECT_GT(ex.bytesSent(), 0u);
        }
    });
}

TEST(Exchange, TimersAccumulateAndReset) {
    auto bf =
        BlockForest::createUniform({8, 8, 8}, {8, 8, 8}, {true, true, true}, 1);
    Field<double> f(8, 8, 8, 1, 1, Layout::fzyx);
    GhostExchange ex(bf, nullptr, StencilKind::D3C7, 0);
    ex.registerField(0, &f);
    ex.communicate();
    EXPECT_GE(ex.startSeconds(), 0.0);
    ex.resetTimers();
    EXPECT_EQ(ex.startSeconds(), 0.0);
    EXPECT_EQ(ex.waitSeconds(), 0.0);
}

} // namespace
} // namespace tpf
