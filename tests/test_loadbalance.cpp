/// Tests for weighted load balancing: the exact linear partitioning of
/// blocks to ranks by work weights, and the region-based block cost model
/// (paper §5.1.2: "We experimented with various load balancing techniques
/// offered by the waLBerla framework").

#include <gtest/gtest.h>

#include "core/regions.h"
#include "grid/block_forest.h"
#include "thermo/agalcu.h"
#include "util/random.h"

namespace tpf {
namespace {

std::vector<double> rankLoads(const BlockForest& bf) {
    std::vector<double> loads(static_cast<std::size_t>(bf.numRanks()));
    for (int r = 0; r < bf.numRanks(); ++r)
        loads[static_cast<std::size_t>(r)] = bf.rankLoad(r);
    return loads;
}

void expectValidPartition(const BlockForest& bf) {
    // Every block owned by exactly one rank; ranks contiguous in the linear
    // order; every rank owns at least one block.
    int prevRank = 0;
    std::vector<int> counts(static_cast<std::size_t>(bf.numRanks()), 0);
    for (int b = 0; b < bf.numBlocks(); ++b) {
        const int r = bf.rankOf(b);
        ASSERT_GE(r, prevRank) << "ranks must be contiguous in block order";
        ASSERT_LE(r, prevRank + 1);
        ASSERT_LT(r, bf.numRanks());
        prevRank = r;
        ++counts[static_cast<std::size_t>(r)];
    }
    for (int c : counts) EXPECT_GE(c, 1) << "every rank needs a block";
}

TEST(WeightedBalance, UniformWeightsMatchEqualSplit) {
    const std::vector<double> weights(12, 1.0);
    auto bf = BlockForest::createUniformWeighted({24, 24, 96}, {24, 24, 8},
                                                 {true, true, false}, 4,
                                                 weights);
    expectValidPartition(bf);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(bf.rankLoad(r), 3.0);
}

TEST(WeightedBalance, HeavyBlockGetsItsOwnRank) {
    // One block is 10x the cost of the others: the optimum gives it a
    // dedicated rank and spreads the rest.
    std::vector<double> weights(8, 1.0);
    weights[3] = 10.0;
    auto bf = BlockForest::createUniformWeighted({16, 16, 128}, {16, 16, 16},
                                                 {true, true, false}, 4,
                                                 weights);
    expectValidPartition(bf);
    const auto loads = rankLoads(bf);
    const double maxLoad = *std::max_element(loads.begin(), loads.end());
    EXPECT_DOUBLE_EQ(maxLoad, 10.0) << "bottleneck must be the heavy block";
    // The heavy block's rank owns only that block.
    const int heavyRank = bf.rankOf(3);
    EXPECT_EQ(bf.localBlocks(heavyRank).size(), 1u);
}

TEST(WeightedBalance, BottleneckIsMinimalOnRandomWeights) {
    Random rng(31);
    for (int trial = 0; trial < 20; ++trial) {
        const int n = 16;
        const int ranks = 1 + static_cast<int>(rng.uniformInt(6));
        std::vector<double> weights(static_cast<std::size_t>(n));
        for (auto& w : weights) w = rng.uniform(0.1, 5.0);

        auto bf = BlockForest::createUniformWeighted(
            {8, 8, 8 * n}, {8, 8, 8}, {true, true, false}, ranks, weights);
        expectValidPartition(bf);
        const auto loads = rankLoads(bf);
        const double maxLoad = *std::max_element(loads.begin(), loads.end());

        // Compare against brute-force optimal bottleneck over contiguous
        // partitions (dynamic programming).
        std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
        for (int i = 0; i < n; ++i)
            prefix[static_cast<std::size_t>(i) + 1] =
                prefix[static_cast<std::size_t>(i)] +
                weights[static_cast<std::size_t>(i)];
        // dp[k][i] = minimal bottleneck splitting first i blocks into k parts
        std::vector<std::vector<double>> dp(
            static_cast<std::size_t>(ranks) + 1,
            std::vector<double>(static_cast<std::size_t>(n) + 1, 1e300));
        for (int i = 1; i <= n; ++i)
            dp[1][static_cast<std::size_t>(i)] =
                prefix[static_cast<std::size_t>(i)];
        for (int k = 2; k <= ranks; ++k)
            for (int i = k; i <= n; ++i)
                for (int j = k - 1; j < i; ++j)
                    dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] =
                        std::min(dp[static_cast<std::size_t>(k)]
                                   [static_cast<std::size_t>(i)],
                                 std::max(dp[static_cast<std::size_t>(k - 1)]
                                            [static_cast<std::size_t>(j)],
                                          prefix[static_cast<std::size_t>(i)] -
                                              prefix[static_cast<std::size_t>(
                                                  j)]));
        const double optimal =
            dp[static_cast<std::size_t>(ranks)][static_cast<std::size_t>(n)];
        EXPECT_NEAR(maxLoad, optimal, 1e-9 * optimal)
            << "partition must achieve the optimal bottleneck (trial " << trial
            << ", ranks " << ranks << ")";
    }
}

TEST(WeightedBalance, ZeroWeightBlocksAreAssigned) {
    std::vector<double> weights(6, 0.0);
    weights[0] = 1.0;
    auto bf = BlockForest::createUniformWeighted({8, 8, 48}, {8, 8, 8},
                                                 {true, true, false}, 3,
                                                 weights);
    expectValidPartition(bf);
}

TEST(BlockCost, RegionCompositionDrivesTheEstimate) {
    const auto sys = thermo::makeAgAlCu();
    const double eps = 4.0;

    core::SimBlock liquid({24, 24, 24});
    core::fillScenario(liquid, core::Scenario::Liquid, sys, eps);
    core::SimBlock interface({24, 24, 24});
    core::fillScenario(interface, core::Scenario::Interface, sys, eps);

    const double cLiq =
        core::estimateBlockCost(core::classifyBlock(liquid.phiSrc));
    const double cInt =
        core::estimateBlockCost(core::classifyBlock(interface.phiSrc));
    EXPECT_DOUBLE_EQ(cLiq, 1.0) << "pure bulk normalizes to 1";
    EXPECT_GT(cInt, 1.2) << "front blocks must cost more";
    EXPECT_LT(cInt, 3.5);
}

TEST(BlockCost, WeightedForestBalancesAFrontDomain) {
    // A domain whose middle slab is interface-heavy: weighted assignment
    // should give the middle ranks fewer blocks.
    const int nb = 12;
    std::vector<double> weights;
    for (int b = 0; b < nb; ++b)
        weights.push_back((b >= 5 && b <= 7) ? 3.0 : 1.0);

    auto plain = BlockForest::createUniform({16, 16, 16 * nb}, {16, 16, 16},
                                            {true, true, false}, 4);
    auto balanced = BlockForest::createUniformWeighted(
        {16, 16, 16 * nb}, {16, 16, 16}, {true, true, false}, 4, weights);

    auto maxLoad = [&](const BlockForest& bf) {
        double m = 0.0;
        for (int r = 0; r < 4; ++r) {
            double load = 0.0;
            for (int b : bf.localBlocks(r))
                load += weights[static_cast<std::size_t>(b)];
            m = std::max(m, load);
        }
        return m;
    };
    EXPECT_LT(maxLoad(balanced), maxLoad(plain))
        << "weighted partition must reduce the bottleneck";
}

} // namespace
} // namespace tpf
