/// Registers the child-failure probe (vmpi/transport.h) in every test
/// binary: the shm transport forks non-root ranks, and an EXPECT_* that
/// fails inside a forked child records its failure in the child's copy of
/// googletest — invisible to the parent. The probe lets the shm runner
/// detect that the failed-part count grew during the rank body and exit
/// the child with a failure status, which the parent turns into a thrown
/// error, so assertions inside forked ranks still fail the test.
///
/// Linked into all test executables via tests/CMakeLists.txt; plain
/// binaries (tpf-sim, benches) have no probe and skip the check.

#include <gtest/gtest.h>

#include "vmpi/transport.h"

namespace {

int failedPartCount() {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    if (info == nullptr || info->result() == nullptr) return 0;
    const ::testing::TestResult* r = info->result();
    int failed = 0;
    for (int i = 0; i < r->total_part_count(); ++i)
        if (r->GetTestPartResult(i).failed()) ++failed;
    return failed;
}

struct ProbeRegistrar {
    ProbeRegistrar() { tpf::vmpi::setChildFailureProbe(&failedPartCount); }
};

const ProbeRegistrar registrar{};

} // namespace
