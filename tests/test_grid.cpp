/// Tests for the block-structured grid: Field layouts / indexing / ghost
/// cells, CellInterval algebra, and BlockForest decomposition + periodic
/// neighbor topology + rank ownership.

#include <gtest/gtest.h>

#include "grid/block_forest.h"
#include "grid/cell_interval.h"
#include "grid/field.h"
#include "util/alignment.h"

namespace tpf {
namespace {

// --- CellInterval ---

TEST(CellInterval, EmptyAndCount) {
    CellInterval e;
    EXPECT_TRUE(e.empty());
    EXPECT_EQ(e.numCells(), 0);

    CellInterval ci{0, 0, 0, 3, 1, 0};
    EXPECT_FALSE(ci.empty());
    EXPECT_EQ(ci.numCells(), 4 * 2 * 1);
}

TEST(CellInterval, IntersectAndContains) {
    CellInterval a{0, 0, 0, 9, 9, 9};
    CellInterval b{5, -2, 3, 14, 4, 20};
    CellInterval c = a.intersect(b);
    EXPECT_EQ(c, (CellInterval{5, 0, 3, 9, 4, 9}));
    EXPECT_TRUE(c.contains(5, 0, 3));
    EXPECT_FALSE(c.contains(4, 0, 3));
}

TEST(CellInterval, ForEachVisitsAllCellsInOrder) {
    CellInterval ci{0, 0, 0, 1, 1, 1};
    int count = 0;
    int lastZ = -1;
    forEachCell(ci, [&](int, int, int z) {
        ++count;
        EXPECT_GE(z, lastZ); // z outermost
        lastZ = z;
    });
    EXPECT_EQ(count, 8);
}

// --- Field ---

class FieldLayoutTest : public ::testing::TestWithParam<Layout> {};

TEST_P(FieldLayoutTest, RoundTripAllCellsIncludingGhosts) {
    Field<double> f(5, 4, 3, 2, 1, GetParam());
    double v = 0.0;
    forEachCell(f.withGhosts(), [&](int x, int y, int z) {
        for (int c = 0; c < 2; ++c) f(x, y, z, c) = v++;
    });
    v = 0.0;
    forEachCell(f.withGhosts(), [&](int x, int y, int z) {
        for (int c = 0; c < 2; ++c) EXPECT_EQ(f(x, y, z, c), v++);
    });
}

TEST_P(FieldLayoutTest, StridesMatchIndexArithmetic) {
    Field<double> f(8, 6, 5, 4, 1, GetParam());
    const auto base = f.index(2, 3, 1, 2);
    EXPECT_EQ(f.index(3, 3, 1, 2) - base, f.xStride());
    EXPECT_EQ(f.index(2, 4, 1, 2) - base, f.yStride());
    EXPECT_EQ(f.index(2, 3, 2, 2) - base, f.zStride());
    EXPECT_EQ(f.index(2, 3, 1, 3) - base, f.fStride());
}

TEST_P(FieldLayoutTest, DataIsCacheLineAligned) {
    Field<double> f(7, 7, 7, 4, 1, GetParam());
    EXPECT_TRUE(isAligned(f.data()));
}

TEST_P(FieldLayoutTest, SwapDataExchangesContents) {
    Field<double> a(4, 4, 4, 1, 1, GetParam());
    Field<double> b(4, 4, 4, 1, 1, GetParam());
    a.fill(1.0);
    b.fill(2.0);
    a.swapData(b);
    EXPECT_EQ(a(0, 0, 0, 0), 2.0);
    EXPECT_EQ(b(0, 0, 0, 0), 1.0);
}

TEST_P(FieldLayoutTest, CopyFromAndMaxAbsDiff) {
    Field<double> a(4, 4, 4, 2, 1, GetParam());
    Field<double> b(4, 4, 4, 2, 1, GetParam());
    a.fill(3.0);
    b.copyFrom(a);
    EXPECT_EQ(b.maxAbsDiff(a), 0.0);
    b(2, 2, 2, 1) = 3.5;
    EXPECT_EQ(b.maxAbsDiff(a), 0.5);
}

INSTANTIATE_TEST_SUITE_P(Layouts, FieldLayoutTest,
                         ::testing::Values(Layout::fzyx, Layout::zyxf));

TEST(Field, FzyxXContiguous) {
    Field<double> f(8, 4, 4, 4, 1, Layout::fzyx);
    EXPECT_EQ(f.xStride(), 1);
}

TEST(Field, ZyxfComponentsContiguous) {
    Field<double> f(8, 4, 4, 4, 1, Layout::zyxf);
    EXPECT_EQ(f.fStride(), 1);
    EXPECT_EQ(f.xStride(), 4);
}

TEST(Field, InteriorAndGhostIntervals) {
    Field<double> f(6, 5, 4, 1, 1, Layout::fzyx);
    EXPECT_EQ(f.interior(), (CellInterval{0, 0, 0, 5, 4, 3}));
    EXPECT_EQ(f.withGhosts(), (CellInterval{-1, -1, -1, 6, 5, 4}));
}

TEST(Field, FillRegion) {
    Field<double> f(4, 4, 4, 2, 1, Layout::fzyx);
    f.fill(CellInterval{1, 1, 1, 2, 2, 2}, 7.0, 1);
    EXPECT_EQ(f(1, 1, 1, 1), 7.0);
    EXPECT_EQ(f(1, 1, 1, 0), 0.0);
    EXPECT_EQ(f(0, 0, 0, 1), 0.0);
}

// --- BlockForest ---

TEST(BlockForest, UniformDecompositionCoversDomain) {
    auto bf = BlockForest::createUniform({64, 32, 96}, {32, 32, 32},
                                         {true, true, false}, 1);
    EXPECT_EQ(bf.blockGrid(), (Int3{2, 1, 3}));
    EXPECT_EQ(bf.numBlocks(), 6);

    // Every block origin is distinct and tiles the domain.
    long long cells = 0;
    for (int b = 0; b < bf.numBlocks(); ++b) {
        const Int3 o = bf.blockOrigin(b);
        EXPECT_EQ(o.x % 32, 0);
        EXPECT_EQ(o.z % 32, 0);
        cells += 32LL * 32 * 32;
    }
    EXPECT_EQ(cells, 64LL * 32 * 96);
}

TEST(BlockForest, BlockIndexRoundTrip) {
    auto bf = BlockForest::createUniform({40, 40, 40}, {10, 20, 40},
                                         {true, true, true}, 1);
    for (int b = 0; b < bf.numBlocks(); ++b)
        EXPECT_EQ(bf.blockIndex(bf.blockCoords(b)), b);
}

TEST(BlockForest, RankAssignmentBalancedAndComplete) {
    auto bf = BlockForest::createUniform({80, 80, 80}, {20, 20, 20},
                                         {true, true, false}, 7);
    std::vector<int> counts(7, 0);
    for (int b = 0; b < bf.numBlocks(); ++b) {
        const int r = bf.rankOf(b);
        ASSERT_GE(r, 0);
        ASSERT_LT(r, 7);
        ++counts[static_cast<std::size_t>(r)];
    }
    int total = 0;
    for (int r = 0; r < 7; ++r) {
        total += counts[static_cast<std::size_t>(r)];
        EXPECT_LE(std::abs(counts[static_cast<std::size_t>(r)] -
                           bf.numBlocks() / 7),
                  1);
        // localBlocks agrees with rankOf
        for (int b : bf.localBlocks(r)) EXPECT_EQ(bf.rankOf(b), r);
    }
    EXPECT_EQ(total, bf.numBlocks());
}

TEST(BlockForest, PeriodicNeighborWrapsAround) {
    auto bf = BlockForest::createUniform({60, 60, 60}, {20, 20, 20},
                                         {true, true, false}, 1);
    // Block at x = 0 has a -x neighbor at x = 2 (wrap).
    const int b0 = bf.blockIndex({0, 1, 1});
    const auto nb = bf.neighbor(b0, -1, 0, 0);
    ASSERT_TRUE(nb.has_value());
    EXPECT_EQ(bf.blockCoords(nb->block), (Int3{2, 1, 1}));
}

TEST(BlockForest, NonPeriodicBoundaryHasNoNeighbor) {
    auto bf = BlockForest::createUniform({60, 60, 60}, {20, 20, 20},
                                         {true, true, false}, 1);
    const int bTop = bf.blockIndex({1, 1, 2});
    EXPECT_FALSE(bf.neighbor(bTop, 0, 0, 1).has_value());
    EXPECT_TRUE(bf.neighbor(bTop, 0, 0, -1).has_value());
}

TEST(BlockForest, DiagonalNeighborsWrapIndependently) {
    auto bf = BlockForest::createUniform({40, 40, 40}, {20, 20, 20},
                                         {true, true, true}, 1);
    const int b = bf.blockIndex({0, 0, 0});
    const auto nb = bf.neighbor(b, -1, -1, -1);
    ASSERT_TRUE(nb.has_value());
    EXPECT_EQ(bf.blockCoords(nb->block), (Int3{1, 1, 1}));
}

TEST(BlockForest, NeighborSymmetry) {
    auto bf = BlockForest::createUniform({60, 40, 40}, {20, 20, 20},
                                         {true, false, true}, 3);
    for (int b = 0; b < bf.numBlocks(); ++b) {
        for (int dz = -1; dz <= 1; ++dz)
            for (int dy = -1; dy <= 1; ++dy)
                for (int dx = -1; dx <= 1; ++dx) {
                    if (dx == 0 && dy == 0 && dz == 0) continue;
                    const auto nb = bf.neighbor(b, dx, dy, dz);
                    if (!nb) continue;
                    const auto back = bf.neighbor(nb->block, -dx, -dy, -dz);
                    ASSERT_TRUE(back.has_value());
                    EXPECT_EQ(back->block, b);
                }
    }
}

} // namespace
} // namespace tpf
