/// The rank-invariance contract of the in-situ analysis pipeline: the
/// analysis CSV of the solidify scenario is bitwise identical for every
/// ranks x threads combination in {1,2,4} x {1,4}, with the moving window
/// active and the production mu-overlap communication hiding on. Also pins
/// the gather layer itself: planes assembled from rank tiles must equal the
/// serial extraction.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <unistd.h>

#include "analysis/gather.h"
#include "analysis/observers.h"
#include "core/solver.h"
#include "io/csv_writer.h"

namespace tpf {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("tpf_analysis_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

std::string readAll(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/// Window-heavy solidify configuration (same shape as test_restart's): the
/// solid fill sits far above the trigger so shifts happen during the run,
/// exercising the window-coordinate path of the observers.
core::SolverConfig analysisConfig(int ranks, int threads) {
    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 32};
    if (ranks > 1) cfg.blockSize = {16, 16, 32 / ranks};
    cfg.threads = threads;
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.velocity = 0.02;
    cfg.model.temp.zEut0 = 12.0;
    cfg.init.fillHeight = 26;
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.2;
    cfg.window.checkEvery = 8;
    cfg.overlapMu = true;
    return cfg;
}

/// Run the solidify scenario with the full pipeline streaming to \p csv.
void runWithPipeline(const core::SolverConfig& cfg, int ranks, int steps,
                     int every, const std::string& csv) {
    auto body = [&](vmpi::Comm* comm) {
        core::Solver solver(cfg, comm);
        analysis::Pipeline pipeline;
        for (const auto& n : analysis::observerNames())
            pipeline.add(analysis::makeObserver(n));
        if (!comm || comm->isRoot()) pipeline.createCsv(csv);
        pipeline.attach(solver, every);
        solver.initialize();
        pipeline.sample(solver, 0);
        solver.run(steps);
    };
    if (ranks == 1)
        body(nullptr);
    else
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });
}

TEST(AnalysisRankInvariance, CsvBitwiseIdenticalAcrossRanksAndThreads) {
    TempDir dir("invariance");
    std::string reference;
    double lastWindowOffset = -1.0;

    for (const int ranks : {1, 2, 4}) {
        for (const int threads : {1, 4}) {
            SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                         " threads=" + std::to_string(threads));
            const std::string csv =
                (dir.path / ("analysis_r" + std::to_string(ranks) + "_t" +
                             std::to_string(threads) + ".csv"))
                    .string();
            runWithPipeline(analysisConfig(ranks, threads), ranks,
                            /*steps=*/16, /*every=*/4, csv);

            const std::string content = readAll(csv);
            ASSERT_FALSE(content.empty());
            if (reference.empty()) {
                reference = content;
                // The scenario must actually shift the window, otherwise
                // the "moving window on" part of the contract is untested.
                const io::CsvSeries s = io::readCsvSeries(csv);
                ASSERT_EQ(s.rows.size(), 5u); // steps 0, 4, 8, 12, 16
                lastWindowOffset =
                    std::stod(s.rows.back()[2]); // window_offset column
                EXPECT_GT(lastWindowOffset, 0.0)
                    << "no window shift during the run";
            } else if (content != reference) {
                // Byte equality is the contract; report the first divergent
                // cell instead of dumping both files.
                const std::string ref =
                    (dir.path / "analysis_r1_t1.csv").string();
                const io::CsvDiff d = io::compareCsvSeries(ref, csv);
                FAIL() << "analysis series diverged from ranks=1 threads=1: "
                       << d.message;
            }
        }
    }
}

TEST(AnalysisGather, AssembledPlanesMatchSerialExtraction) {
    // 2-rank and 4-rank decompositions of a solidified state must assemble
    // exactly the planes the serial sweep extracts.
    const core::SolverConfig serialCfg = analysisConfig(1, 1);
    core::Solver serial(serialCfg);
    serial.initialize();
    serial.run(4);

    std::vector<std::vector<unsigned char>> serialPlanes;
    for (int phase = 0; phase < 3; ++phase) {
        auto p = analysis::gatherIndicatorPlanes(
            serial.localBlocks(), serial.forest(), nullptr, phase, 0,
            serialCfg.globalCells.z - 1);
        for (auto& pl : p) serialPlanes.push_back(std::move(pl));
    }
    const auto serialSums = analysis::gatherPlaneSums(
        serial.localBlocks(), serial.forest(), nullptr);

    for (const int ranks : {2, 4}) {
        SCOPED_TRACE("ranks=" + std::to_string(ranks));
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) {
            const core::SolverConfig cfg = analysisConfig(ranks, 1);
            core::Solver s(cfg, &comm);
            s.initialize();
            s.run(4);

            std::vector<std::vector<unsigned char>> planes;
            for (int phase = 0; phase < 3; ++phase) {
                auto p = analysis::gatherIndicatorPlanes(
                    s.localBlocks(), s.forest(), &comm, phase, 0,
                    cfg.globalCells.z - 1);
                for (auto& pl : p) planes.push_back(std::move(pl));
            }
            const auto sums =
                analysis::gatherPlaneSums(s.localBlocks(), s.forest(), &comm);
            if (comm.isRoot()) {
                ASSERT_EQ(planes.size(), serialPlanes.size());
                for (std::size_t i = 0; i < planes.size(); ++i)
                    EXPECT_EQ(planes[i], serialPlanes[i]) << "plane " << i;
                ASSERT_EQ(sums.size(), serialSums.size());
                for (std::size_t z = 0; z < sums.size(); ++z)
                    for (int a = 0; a < core::N; ++a)
                        EXPECT_EQ(sums[z][static_cast<std::size_t>(a)],
                                  serialSums[z][static_cast<std::size_t>(a)])
                            << "slice " << z << " phase " << a;
            } else {
                EXPECT_TRUE(planes.empty());
                EXPECT_TRUE(sums.empty());
            }
        });
    }
}

/// The restart path of the CSV writer used by tpf-sim --restart: rows after
/// the checkpoint step are dropped, the continuation appends seamlessly.
TEST(AnalysisRankInvariance, ResumeDropsRowsNewerThanTheCheckpoint) {
    TempDir dir("resume");
    const std::string csv = (dir.path / "analysis.csv").string();

    const core::SolverConfig cfg = analysisConfig(1, 1);
    // Original run: 16 steps sampled every 4 — but suppose its last
    // checkpoint was at step 8.
    runWithPipeline(cfg, 1, /*steps=*/16, /*every=*/4, csv);
    const io::CsvSeries full = io::readCsvSeries(csv);
    ASSERT_EQ(full.rows.size(), 5u);

    analysis::Pipeline p;
    for (const auto& n : analysis::observerNames())
        p.add(analysis::makeObserver(n));
    p.resumeCsv(csv, /*lastStep=*/8);
    const io::CsvSeries trimmed = io::readCsvSeries(csv);
    ASSERT_EQ(trimmed.rows.size(), 3u); // steps 0, 4, 8 kept
    EXPECT_EQ(trimmed.stepOf(2), 8);
}

} // namespace
} // namespace tpf
