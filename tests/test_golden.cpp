/// Golden-run regression harness: for each scenario (solidify / interface /
/// liquid / solid) a small reference checkpoint is committed under
/// tests/golden/. This suite re-runs the pinned configuration and diffs the
/// fresh checkpoint against the reference field by field — any kernel,
/// communication, initialization or windowing change that perturbs the
/// numerics fails loudly with the first divergent field and cell.
///
/// The references are bitwise-reproducible across machines and build types
/// because every operation on the trajectory path is pure IEEE-754
/// arithmetic: the SIMD backends use single-rounding fmadd everywhere
/// (docs/KERNELS.md), -ffp-contract=off pins the scalar code, and the
/// initialization profiles use the polynomial tpf::sinpiCompact instead of
/// libm's sin (whose rounding differs between libm versions).
///
/// To regenerate after an *intentional* numerics change:
///
///     TPF_REGEN_GOLDENS=1 ./tests/test_golden
///
/// then commit the updated tests/golden/ directories along with the change
/// that justifies them.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "analysis/observers.h"
#include "core/regions.h"
#include "core/solver.h"
#include "io/checkpoint.h"
#include "io/csv_writer.h"

#ifndef TPF_GOLDEN_DIR
#error "TPF_GOLDEN_DIR must point at the committed tests/golden directory"
#endif

namespace tpf {
namespace {

namespace fs = std::filesystem;

/// The pinned golden configuration. Small enough to keep the committed
/// references at ~100 KiB per scenario, big enough that every kernel region
/// (bulk liquid, bulk solid, interface) and the z-boundary handling are
/// exercised. Serial, one thread: the rank/thread-independence of the fields
/// is separately guaranteed by test_solver and test_restart.
core::SolverConfig goldenConfig() {
    core::SolverConfig cfg;
    cfg.globalCells = {12, 12, 16};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.velocity = 0.02;
    cfg.model.temp.zEut0 = 6.0;
    cfg.init.fillHeight = 4;
    return cfg;
}

constexpr int kGoldenSteps = 12;
/// Time-series cadence: rows at steps 0, 3, 6, 9, 12.
constexpr int kGoldenAnalyzeEvery = 3;

/// Initialize the pinned scenario (fields + clocks, no steps yet).
void initScenario(const std::string& name, core::Solver& solver) {
    if (name == "solidify") {
        solver.initialize(); // Voronoi-seeded melt, fixed RNG seed
    } else {
        const core::Scenario sc = name == "liquid"  ? core::Scenario::Liquid
                                  : name == "solid" ? core::Scenario::Solid
                                                    : core::Scenario::Interface;
        for (auto& b : solver.localBlocks())
            core::fillScenario(*b, sc, solver.system(),
                               solver.config().model.eps);
        solver.restore(/*time=*/0.0, /*windowOffset=*/0.0);
    }
}

/// Run the pinned scenario to its checkpoint state.
void runScenario(const std::string& name, core::Solver& solver) {
    initScenario(name, solver);
    solver.run(kGoldenSteps);
}

void checkScenario(const std::string& name) {
    const fs::path goldenDir = fs::path(TPF_GOLDEN_DIR) / name;

    core::Solver solver(goldenConfig());
    runScenario(name, solver);

    if (std::getenv("TPF_REGEN_GOLDENS") != nullptr) {
        io::saveCheckpoint(goldenDir.string(), solver);
        GTEST_SKIP() << "regenerated golden reference " << goldenDir;
    }

    ASSERT_TRUE(fs::exists(goldenDir / "rank_0.tpfchk"))
        << "missing committed golden reference " << goldenDir
        << " — run with TPF_REGEN_GOLDENS=1 and commit tests/golden/";

    const fs::path freshDir =
        fs::temp_directory_path() / ("tpf_golden_" + name);
    fs::remove_all(freshDir);
    io::saveCheckpoint(freshDir.string(), solver);

    const io::CheckpointDiff d =
        io::compareCheckpoints(goldenDir.string(), freshDir.string());
    EXPECT_TRUE(d.identical)
        << "scenario '" << name
        << "' diverged from the committed golden reference.\n  "
        << d.message()
        << "\n  If this change to the numerics is intentional, regenerate "
           "with TPF_REGEN_GOLDENS=1 ./tests/test_golden and commit "
           "tests/golden/.";
    fs::remove_all(freshDir);
}

TEST(GoldenRun, Solidify) { checkScenario("solidify"); }
TEST(GoldenRun, Interface) { checkScenario("interface"); }
TEST(GoldenRun, Liquid) { checkScenario("liquid"); }
TEST(GoldenRun, Solid) { checkScenario("solid"); }

/// Golden analysis time series: re-run the pinned scenario with the full
/// observer pipeline sampling every kGoldenAnalyzeEvery steps and compare
/// the CSV cell-by-cell against the committed reference. Every observer
/// value is pure IEEE-754 arithmetic on the (machine-independent) fields in
/// a fixed order, and %.17g round-trips doubles exactly, so the references
/// reproduce bitwise across machines and build types.
void checkTimeSeries(const std::string& name) {
    const fs::path goldenCsv =
        fs::path(TPF_GOLDEN_DIR) / name / "analysis.csv";

    core::Solver solver(goldenConfig());
    analysis::Pipeline pipeline;
    for (const auto& n : analysis::observerNames())
        pipeline.add(analysis::makeObserver(n));

    const bool regen = std::getenv("TPF_REGEN_GOLDENS") != nullptr;
    const fs::path freshCsv =
        regen ? goldenCsv
              : fs::temp_directory_path() / ("tpf_golden_series_" + name +
                                             ".csv");
    if (!regen) fs::remove(freshCsv);

    pipeline.createCsv(freshCsv.string());
    pipeline.attach(solver, kGoldenAnalyzeEvery);
    initScenario(name, solver);
    pipeline.sample(solver, 0);
    solver.run(kGoldenSteps);

    if (regen) GTEST_SKIP() << "regenerated golden series " << goldenCsv;

    ASSERT_TRUE(fs::exists(goldenCsv))
        << "missing committed golden series " << goldenCsv
        << " — run with TPF_REGEN_GOLDENS=1 and commit tests/golden/";

    const io::CsvDiff d =
        io::compareCsvSeries(goldenCsv.string(), freshCsv.string());
    EXPECT_TRUE(d.identical)
        << "scenario '" << name
        << "' analysis series diverged from the committed reference.\n  "
        << d.message
        << "\n  If this change to the numerics or the observer set is "
           "intentional, regenerate with TPF_REGEN_GOLDENS=1 "
           "./tests/test_golden and commit tests/golden/.";
    fs::remove(freshCsv);
}

TEST(GoldenTimeSeries, Solidify) { checkTimeSeries("solidify"); }
TEST(GoldenTimeSeries, Interface) { checkTimeSeries("interface"); }
TEST(GoldenTimeSeries, Liquid) { checkTimeSeries("liquid"); }
TEST(GoldenTimeSeries, Solid) { checkTimeSeries("solid"); }

/// A perturbed series must be pointed at precisely: step, column and both
/// cell values of the first divergence.
TEST(GoldenTimeSeries, DivergenceIsReportedWithStepAndColumn) {
    const fs::path a = fs::temp_directory_path() / "tpf_series_diff_a.csv";
    const fs::path b = fs::temp_directory_path() / "tpf_series_diff_b.csv";
    for (const fs::path& p : {a, b}) {
        io::CsvWriter w;
        w.create(p.string(), analysis::kAnalysisCsvTag,
                 analysis::kAnalysisCsvVersion, {"time", "front_z"});
        w.writeRow(0, {0.0, 4.0});
        w.writeRow(3, {0.03, p == b ? 5.0 : 4.0});
    }
    const io::CsvDiff d = io::compareCsvSeries(a.string(), b.string());
    EXPECT_FALSE(d.identical);
    EXPECT_NE(d.message.find("step 3"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("'front_z'"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("4"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("5"), std::string::npos) << d.message;
    fs::remove(a);
    fs::remove(b);
}

/// Corrupting a committed reference must be reported as corruption of that
/// field (CRC), not as a plausible numeric difference.
TEST(GoldenRun, CorruptedReferenceIsCalledOut) {
    const fs::path goldenDir = fs::path(TPF_GOLDEN_DIR) / "liquid";
    if (!fs::exists(goldenDir / "rank_0.tpfchk"))
        GTEST_SKIP() << "goldens not generated yet";

    const fs::path tmp = fs::temp_directory_path() / "tpf_golden_corrupt";
    fs::remove_all(tmp);
    fs::create_directories(tmp);
    fs::copy(goldenDir / "rank_0.tpfchk", tmp / "rank_0.tpfchk");
    {
        std::fstream f(tmp / "rank_0.tpfchk",
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(-23, std::ios::end); // inside the mu payload
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5A); // guaranteed different
        f.seekp(-23, std::ios::end);
        f.write(&byte, 1);
    }

    const io::CheckpointDiff d =
        io::compareCheckpoints(tmp.string(), goldenDir.string());
    EXPECT_FALSE(d.identical);
    EXPECT_NE(d.structural.find("checksum mismatch"), std::string::npos)
        << d.message();
    EXPECT_NE(d.structural.find("'mu'"), std::string::npos) << d.message();
    fs::remove_all(tmp);
}

/// A genuinely divergent run must be pointed at precisely: field, component
/// and global cell of the first differing value.
TEST(GoldenRun, DivergenceIsReportedWithFieldAndCell) {
    core::Solver solver(goldenConfig());
    runScenario("interface", solver);

    const fs::path a = fs::temp_directory_path() / "tpf_golden_diff_a";
    const fs::path b = fs::temp_directory_path() / "tpf_golden_diff_b";
    fs::remove_all(a);
    fs::remove_all(b);
    io::saveCheckpoint(a.string(), solver);
    solver.localBlocks().front()->muSrc(5, 6, 7, 1) += 1e-12;
    io::saveCheckpoint(b.string(), solver);

    const io::CheckpointDiff d = io::compareCheckpoints(a.string(), b.string());
    EXPECT_FALSE(d.identical);
    EXPECT_TRUE(d.structural.empty()) << d.structural;
    EXPECT_EQ(d.field, "mu");
    EXPECT_EQ(d.component, 1);
    EXPECT_EQ(d.cell, (Int3{5, 6, 7}));
    EXPECT_EQ(d.differingValues, 1);
    EXPECT_NE(d.message().find("(5, 6, 7)"), std::string::npos)
        << d.message();
    fs::remove_all(a);
    fs::remove_all(b);
}

} // namespace
} // namespace tpf
