/// Cross-backend tests of the SIMD abstraction layer: every operation of the
/// active backend (AVX2 where compiled in) is checked against the portable
/// scalar backend on randomized lanes, mirroring how the paper validated its
/// intrinsics wrapper.

#include <gtest/gtest.h>

#include <cmath>

#include "simd/simd.h"
#include "util/alignment.h"
#include "util/fastmath.h"
#include "util/random.h"

namespace tpf::simd {
namespace {

template <typename V>
std::array<double, 4> lanes(V v) {
    alignas(32) double out[4];
    v.storeu(out);
    return {out[0], out[1], out[2], out[3]};
}

using Backends = ::testing::Types<
#if defined(__AVX2__)
    Vec4dAvx2,
#endif
#if defined(__SSE2__) || defined(_M_X64)
    Vec4dSse2,
#endif
    Vec4dScalar>;

template <typename V>
class SimdBackendTest : public ::testing::Test {};
TYPED_TEST_SUITE(SimdBackendTest, Backends);

TYPED_TEST(SimdBackendTest, SetAndLane) {
    auto v = TypeParam::set(1.0, 2.0, 3.0, 4.0);
    EXPECT_EQ(v.lane(0), 1.0);
    EXPECT_EQ(v.lane(1), 2.0);
    EXPECT_EQ(v.lane(2), 3.0);
    EXPECT_EQ(v.lane(3), 4.0);
}

TYPED_TEST(SimdBackendTest, BroadcastZeroLoadStore) {
    EXPECT_EQ(TypeParam::zero().hsum(), 0.0);
    auto b = TypeParam::broadcast(2.5);
    EXPECT_EQ(b.hsum(), 10.0);

    alignas(32) double buf[4] = {5, 6, 7, 8};
    auto v = TypeParam::load(buf);
    alignas(32) double out[4];
    v.store(out);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], buf[i]);

    double ubuf[5] = {0, 1, 2, 3, 4};
    auto u = TypeParam::loadu(ubuf + 1);
    EXPECT_EQ(u.lane(3), 4.0);
}

TYPED_TEST(SimdBackendTest, ArithmeticMatchesScalar) {
    Random rng(11);
    for (int t = 0; t < 100; ++t) {
        double a[4], b[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-10.0, 10.0);
            b[i] = rng.uniform(0.1, 10.0);
        }
        auto va = TypeParam::loadu(a), vb = TypeParam::loadu(b);
        auto sum = lanes(va + vb);
        auto dif = lanes(va - vb);
        auto mul = lanes(va * vb);
        auto quo = lanes(va / vb);
        auto neg = lanes(-va);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(sum[i], a[i] + b[i]);
            EXPECT_EQ(dif[i], a[i] - b[i]);
            EXPECT_EQ(mul[i], a[i] * b[i]);
            EXPECT_EQ(quo[i], a[i] / b[i]);
            EXPECT_EQ(neg[i], -a[i]);
        }
    }
}

TYPED_TEST(SimdBackendTest, FmaddMatchesStdFma) {
    Random rng(13);
    for (int t = 0; t < 100; ++t) {
        double a[4], b[4], c[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-5.0, 5.0);
            b[i] = rng.uniform(-5.0, 5.0);
            c[i] = rng.uniform(-5.0, 5.0);
        }
        auto r = lanes(TypeParam::fmadd(TypeParam::loadu(a), TypeParam::loadu(b),
                                        TypeParam::loadu(c)));
        auto s = lanes(TypeParam::fmsub(TypeParam::loadu(a), TypeParam::loadu(b),
                                        TypeParam::loadu(c)));
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(r[i], std::fma(a[i], b[i], c[i]));
            EXPECT_EQ(s[i], std::fma(a[i], b[i], -c[i]));
        }
    }
}

TYPED_TEST(SimdBackendTest, MinMaxAbsSqrt) {
    auto a = TypeParam::set(-1.0, 2.0, -3.0, 4.0);
    auto b = TypeParam::set(1.0, -2.0, 3.0, -4.0);
    auto mn = lanes(TypeParam::min(a, b));
    auto mx = lanes(TypeParam::max(a, b));
    auto ab = lanes(TypeParam::abs(a));
    EXPECT_EQ(mn[0], -1.0);
    EXPECT_EQ(mn[1], -2.0);
    EXPECT_EQ(mx[0], 1.0);
    EXPECT_EQ(mx[3], 4.0);
    EXPECT_EQ(ab[0], 1.0);
    EXPECT_EQ(ab[2], 3.0);

    auto sq = lanes(TypeParam::sqrt(TypeParam::set(4.0, 9.0, 16.0, 25.0)));
    EXPECT_EQ(sq[0], 2.0);
    EXPECT_EQ(sq[3], 5.0);
}

TYPED_TEST(SimdBackendTest, RsqrtFastMatchesScalarHelperBitwise) {
    Random rng(17);
    for (int t = 0; t < 50; ++t) {
        double a[4];
        for (int i = 0; i < 4; ++i) a[i] = rng.uniform(1e-6, 1e6);
        auto r = lanes(TypeParam::rsqrtFast(TypeParam::loadu(a)));
        for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], fastInvSqrt<3>(a[i]));
    }
}

TYPED_TEST(SimdBackendTest, CompareAndBlend) {
    auto a = TypeParam::set(1.0, 5.0, 3.0, 7.0);
    auto b = TypeParam::set(2.0, 4.0, 3.0, 8.0);

    auto lt = a < b;
    EXPECT_TRUE(lt.lane(0));
    EXPECT_FALSE(lt.lane(1));
    EXPECT_FALSE(lt.lane(2));
    EXPECT_TRUE(lt.lane(3));
    EXPECT_TRUE(lt.any());
    EXPECT_FALSE(lt.all());

    auto le = a <= b;
    EXPECT_TRUE(le.lane(2));

    auto eq = a == b;
    EXPECT_TRUE(eq.lane(2));
    EXPECT_FALSE(eq.lane(0));

    auto sel = lanes(TypeParam::blend(lt, a, b));
    EXPECT_EQ(sel[0], 1.0); // lt -> a
    EXPECT_EQ(sel[1], 4.0); // !lt -> b
    EXPECT_EQ(sel[3], 7.0);

    auto band = (a < b) & (a > TypeParam::zero());
    EXPECT_TRUE(band.lane(0));
    auto bor = (a < b) | (a == b);
    EXPECT_TRUE(bor.lane(2));
    auto bnot = !(a < b);
    EXPECT_TRUE(bnot.lane(1));
    EXPECT_FALSE(bnot.lane(0));
}

TYPED_TEST(SimdBackendTest, RotateAndReverse) {
    auto v = TypeParam::set(10.0, 20.0, 30.0, 40.0);
    auto r1 = lanes(v.rotateLeft1());
    EXPECT_EQ(r1[0], 20.0);
    EXPECT_EQ(r1[1], 30.0);
    EXPECT_EQ(r1[2], 40.0);
    EXPECT_EQ(r1[3], 10.0);
    auto rev = lanes(v.reverse());
    EXPECT_EQ(rev[0], 40.0);
    EXPECT_EQ(rev[3], 10.0);
}

TYPED_TEST(SimdBackendTest, HorizontalReductions) {
    auto v = TypeParam::set(1.0, 2.0, 3.0, 4.0);
    EXPECT_EQ(v.hsum(), 10.0);
    EXPECT_EQ(v.hmax(), 4.0);
    EXPECT_EQ(v.hmin(), 1.0);
    // hsum association matches ((a+b)+(c+d)).
    auto w = TypeParam::set(0.1, 0.2, 0.3, 0.4);
    EXPECT_EQ(w.hsum(), (0.1 + 0.2) + (0.3 + 0.4));
}

#if defined(__AVX2__)
TEST(SimdCross, Avx2MatchesScalarOnRandomInputs) {
    Random rng(23);
    for (int t = 0; t < 200; ++t) {
        double a[4], b[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-100.0, 100.0);
            b[i] = rng.uniform(0.5, 100.0);
        }
        auto va = Vec4dAvx2::loadu(a), vb = Vec4dAvx2::loadu(b);
        auto sa = Vec4dScalar::loadu(a), sb = Vec4dScalar::loadu(b);
        EXPECT_EQ((va + vb).hsum(), (sa + sb).hsum());
        // Product compared lane-wise: comparing hsum of a product would let
        // the compiler fuse the scalar mul+add chain into fma and differ in
        // the last ulp from the mul_pd/hadd sequence.
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ((va * vb).lane(i), (sa * sb).lane(i));
        EXPECT_EQ(Vec4dAvx2::fmadd(va, vb, va).lane(2),
                  Vec4dScalar::fmadd(sa, sb, sa).lane(2));
        EXPECT_EQ(Vec4dAvx2::rsqrtFast(vb).lane(1),
                  Vec4dScalar::rsqrtFast(sb).lane(1));
        EXPECT_EQ(va.rotateLeft1().lane(3), sa.rotateLeft1().lane(3));
    }
}

TEST(SimdCross, BackendNameReportsAvx2) {
    EXPECT_EQ(backendName(), "AVX2");
}
#endif

} // namespace
} // namespace tpf::simd
