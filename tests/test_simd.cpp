/// Cross-backend tests of the SIMD abstraction layer: every operation of the
/// active backend (AVX2 where compiled in) is checked against the portable
/// scalar backend on randomized lanes, mirroring how the paper validated its
/// intrinsics wrapper. The width-generic suite at the bottom runs the same
/// contracts over every 4-wide AND 8-wide backend (Vec8dScalar, and
/// Vec8dAvx512 where compiled in) — the runtime-dispatch kernels
/// (core/kernel_dispatch.h) rely on all of them agreeing bitwise.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simd/simd.h"
#include "util/alignment.h"
#include "util/fastmath.h"
#include "util/random.h"

namespace tpf::simd {
namespace {

template <typename V>
std::array<double, 4> lanes(V v) {
    alignas(32) double out[4];
    v.storeu(out);
    return {out[0], out[1], out[2], out[3]};
}

using Backends = ::testing::Types<
#if defined(__AVX2__)
    Vec4dAvx2,
#endif
#if defined(__SSE2__) || defined(_M_X64)
    Vec4dSse2,
#endif
    Vec4dScalar>;

template <typename V>
class SimdBackendTest : public ::testing::Test {};
TYPED_TEST_SUITE(SimdBackendTest, Backends);

TYPED_TEST(SimdBackendTest, SetAndLane) {
    auto v = TypeParam::set(1.0, 2.0, 3.0, 4.0);
    EXPECT_EQ(v.lane(0), 1.0);
    EXPECT_EQ(v.lane(1), 2.0);
    EXPECT_EQ(v.lane(2), 3.0);
    EXPECT_EQ(v.lane(3), 4.0);
}

TYPED_TEST(SimdBackendTest, BroadcastZeroLoadStore) {
    EXPECT_EQ(TypeParam::zero().hsum(), 0.0);
    auto b = TypeParam::broadcast(2.5);
    EXPECT_EQ(b.hsum(), 10.0);

    alignas(32) double buf[4] = {5, 6, 7, 8};
    auto v = TypeParam::load(buf);
    alignas(32) double out[4];
    v.store(out);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], buf[i]);

    double ubuf[5] = {0, 1, 2, 3, 4};
    auto u = TypeParam::loadu(ubuf + 1);
    EXPECT_EQ(u.lane(3), 4.0);
}

TYPED_TEST(SimdBackendTest, ArithmeticMatchesScalar) {
    Random rng(11);
    for (int t = 0; t < 100; ++t) {
        double a[4], b[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-10.0, 10.0);
            b[i] = rng.uniform(0.1, 10.0);
        }
        auto va = TypeParam::loadu(a), vb = TypeParam::loadu(b);
        auto sum = lanes(va + vb);
        auto dif = lanes(va - vb);
        auto mul = lanes(va * vb);
        auto quo = lanes(va / vb);
        auto neg = lanes(-va);
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(sum[i], a[i] + b[i]);
            EXPECT_EQ(dif[i], a[i] - b[i]);
            EXPECT_EQ(mul[i], a[i] * b[i]);
            EXPECT_EQ(quo[i], a[i] / b[i]);
            EXPECT_EQ(neg[i], -a[i]);
        }
    }
}

TYPED_TEST(SimdBackendTest, FmaddMatchesStdFma) {
    Random rng(13);
    for (int t = 0; t < 100; ++t) {
        double a[4], b[4], c[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-5.0, 5.0);
            b[i] = rng.uniform(-5.0, 5.0);
            c[i] = rng.uniform(-5.0, 5.0);
        }
        auto r = lanes(TypeParam::fmadd(TypeParam::loadu(a), TypeParam::loadu(b),
                                        TypeParam::loadu(c)));
        auto s = lanes(TypeParam::fmsub(TypeParam::loadu(a), TypeParam::loadu(b),
                                        TypeParam::loadu(c)));
        for (int i = 0; i < 4; ++i) {
            EXPECT_EQ(r[i], std::fma(a[i], b[i], c[i]));
            EXPECT_EQ(s[i], std::fma(a[i], b[i], -c[i]));
        }
    }
}

TYPED_TEST(SimdBackendTest, MinMaxAbsSqrt) {
    auto a = TypeParam::set(-1.0, 2.0, -3.0, 4.0);
    auto b = TypeParam::set(1.0, -2.0, 3.0, -4.0);
    auto mn = lanes(TypeParam::min(a, b));
    auto mx = lanes(TypeParam::max(a, b));
    auto ab = lanes(TypeParam::abs(a));
    EXPECT_EQ(mn[0], -1.0);
    EXPECT_EQ(mn[1], -2.0);
    EXPECT_EQ(mx[0], 1.0);
    EXPECT_EQ(mx[3], 4.0);
    EXPECT_EQ(ab[0], 1.0);
    EXPECT_EQ(ab[2], 3.0);

    auto sq = lanes(TypeParam::sqrt(TypeParam::set(4.0, 9.0, 16.0, 25.0)));
    EXPECT_EQ(sq[0], 2.0);
    EXPECT_EQ(sq[3], 5.0);
}

TYPED_TEST(SimdBackendTest, RsqrtFastMatchesScalarHelperBitwise) {
    Random rng(17);
    for (int t = 0; t < 50; ++t) {
        double a[4];
        for (int i = 0; i < 4; ++i) a[i] = rng.uniform(1e-6, 1e6);
        auto r = lanes(TypeParam::rsqrtFast(TypeParam::loadu(a)));
        for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], fastInvSqrt<3>(a[i]));
    }
}

TYPED_TEST(SimdBackendTest, CompareAndBlend) {
    auto a = TypeParam::set(1.0, 5.0, 3.0, 7.0);
    auto b = TypeParam::set(2.0, 4.0, 3.0, 8.0);

    auto lt = a < b;
    EXPECT_TRUE(lt.lane(0));
    EXPECT_FALSE(lt.lane(1));
    EXPECT_FALSE(lt.lane(2));
    EXPECT_TRUE(lt.lane(3));
    EXPECT_TRUE(lt.any());
    EXPECT_FALSE(lt.all());

    auto le = a <= b;
    EXPECT_TRUE(le.lane(2));

    auto eq = a == b;
    EXPECT_TRUE(eq.lane(2));
    EXPECT_FALSE(eq.lane(0));

    auto sel = lanes(TypeParam::blend(lt, a, b));
    EXPECT_EQ(sel[0], 1.0); // lt -> a
    EXPECT_EQ(sel[1], 4.0); // !lt -> b
    EXPECT_EQ(sel[3], 7.0);

    auto band = (a < b) & (a > TypeParam::zero());
    EXPECT_TRUE(band.lane(0));
    auto bor = (a < b) | (a == b);
    EXPECT_TRUE(bor.lane(2));
    auto bnot = !(a < b);
    EXPECT_TRUE(bnot.lane(1));
    EXPECT_FALSE(bnot.lane(0));
}

TYPED_TEST(SimdBackendTest, RotateAndReverse) {
    auto v = TypeParam::set(10.0, 20.0, 30.0, 40.0);
    auto r1 = lanes(v.rotateLeft1());
    EXPECT_EQ(r1[0], 20.0);
    EXPECT_EQ(r1[1], 30.0);
    EXPECT_EQ(r1[2], 40.0);
    EXPECT_EQ(r1[3], 10.0);
    auto rev = lanes(v.reverse());
    EXPECT_EQ(rev[0], 40.0);
    EXPECT_EQ(rev[3], 10.0);
}

TYPED_TEST(SimdBackendTest, HorizontalReductions) {
    auto v = TypeParam::set(1.0, 2.0, 3.0, 4.0);
    EXPECT_EQ(v.hsum(), 10.0);
    EXPECT_EQ(v.hmax(), 4.0);
    EXPECT_EQ(v.hmin(), 1.0);
    // hsum association matches ((a+b)+(c+d)).
    auto w = TypeParam::set(0.1, 0.2, 0.3, 0.4);
    EXPECT_EQ(w.hsum(), (0.1 + 0.2) + (0.3 + 0.4));
}

#if defined(__AVX2__)
TEST(SimdCross, Avx2MatchesScalarOnRandomInputs) {
    Random rng(23);
    for (int t = 0; t < 200; ++t) {
        double a[4], b[4];
        for (int i = 0; i < 4; ++i) {
            a[i] = rng.uniform(-100.0, 100.0);
            b[i] = rng.uniform(0.5, 100.0);
        }
        auto va = Vec4dAvx2::loadu(a), vb = Vec4dAvx2::loadu(b);
        auto sa = Vec4dScalar::loadu(a), sb = Vec4dScalar::loadu(b);
        EXPECT_EQ((va + vb).hsum(), (sa + sb).hsum());
        // Product compared lane-wise: comparing hsum of a product would let
        // the compiler fuse the scalar mul+add chain into fma and differ in
        // the last ulp from the mul_pd/hadd sequence.
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ((va * vb).lane(i), (sa * sb).lane(i));
        EXPECT_EQ(Vec4dAvx2::fmadd(va, vb, va).lane(2),
                  Vec4dScalar::fmadd(sa, sb, sa).lane(2));
        EXPECT_EQ(Vec4dAvx2::rsqrtFast(vb).lane(1),
                  Vec4dScalar::rsqrtFast(sb).lane(1));
        EXPECT_EQ(va.rotateLeft1().lane(3), sa.rotateLeft1().lane(3));
    }
}

TEST(SimdCross, BackendNameReportsAvx2) {
    EXPECT_EQ(backendName(), "AVX2");
}
#endif

// ---------------------------------------------------------------------------
// Width-generic suite: the same lane contracts for every backend of every
// width, written against V::width instead of literal 4s. Every op the
// dispatched kernel bodies use is covered, each compared lane-wise against
// plain scalar arithmetic (std::fma for the fused ops).

using AllWidthBackends = ::testing::Types<
#if defined(__AVX2__)
    Vec4dAvx2,
#endif
#if defined(__SSE2__) || defined(_M_X64)
    Vec4dSse2,
#endif
#if defined(__AVX512F__)
    Vec8dAvx512,
#endif
    Vec4dScalar, Vec8dScalar>;

template <typename V>
class SimdWidthTest : public ::testing::Test {};
TYPED_TEST_SUITE(SimdWidthTest, AllWidthBackends);

template <typename V>
std::vector<double> allLanes(V v) {
    alignas(64) double out[V::width];
    v.storeu(out);
    return std::vector<double>(out, out + V::width);
}

TYPED_TEST(SimdWidthTest, LaneArithmeticMatchesScalar) {
    constexpr int W = TypeParam::width;
    Random rng(29);
    for (int t = 0; t < 100; ++t) {
        double a[W], b[W], c[W];
        for (int i = 0; i < W; ++i) {
            a[i] = rng.uniform(-10.0, 10.0);
            b[i] = rng.uniform(0.1, 10.0);
            c[i] = rng.uniform(-5.0, 5.0);
        }
        auto va = TypeParam::loadu(a), vb = TypeParam::loadu(b),
             vc = TypeParam::loadu(c);
        auto sum = allLanes(va + vb);
        auto dif = allLanes(va - vb);
        auto mul = allLanes(va * vb);
        auto quo = allLanes(va / vb);
        auto neg = allLanes(-va);
        auto fma = allLanes(TypeParam::fmadd(va, vb, vc));
        auto fms = allLanes(TypeParam::fmsub(va, vb, vc));
        auto rsq = allLanes(TypeParam::rsqrtFast(vb));
        for (int i = 0; i < W; ++i) {
            EXPECT_EQ(sum[i], a[i] + b[i]);
            EXPECT_EQ(dif[i], a[i] - b[i]);
            EXPECT_EQ(mul[i], a[i] * b[i]);
            EXPECT_EQ(quo[i], a[i] / b[i]);
            EXPECT_EQ(neg[i], -a[i]);
            EXPECT_EQ(fma[i], std::fma(a[i], b[i], c[i]));
            EXPECT_EQ(fms[i], std::fma(a[i], b[i], -c[i]));
            EXPECT_EQ(rsq[i], fastInvSqrt<3>(b[i]));
        }
    }
}

TYPED_TEST(SimdWidthTest, NegatePreservesSignedZeroAndSpecials) {
    constexpr int W = TypeParam::width;
    // -(+0.0) must be -0.0 *bitwise* (the AVX-512 backend flips the sign bit
    // in the integer domain; a 0.0 - x fallback would get +0.0 wrong).
    double zeros[W];
    for (int i = 0; i < W; ++i) zeros[i] = i % 2 ? -0.0 : 0.0;
    auto neg = allLanes(-TypeParam::loadu(zeros));
    for (int i = 0; i < W; ++i) {
        EXPECT_EQ(std::signbit(neg[i]), !(i % 2)) << "lane " << i;
    }
    double inf[W];
    for (int i = 0; i < W; ++i) inf[i] = HUGE_VAL;
    auto ninf = allLanes(-TypeParam::loadu(inf));
    for (int i = 0; i < W; ++i) EXPECT_EQ(ninf[i], -HUGE_VAL);
}

TYPED_TEST(SimdWidthTest, LoadStoreAlignment) {
    constexpr int W = TypeParam::width;
    // Aligned round-trip: 64-byte alignment satisfies every width.
    alignas(64) double abuf[W];
    alignas(64) double aout[W];
    for (int i = 0; i < W; ++i) abuf[i] = 1.5 * i + 0.25;
    TypeParam::load(abuf).store(aout);
    for (int i = 0; i < W; ++i) EXPECT_EQ(aout[i], abuf[i]);

    // Unaligned round-trip at every misalignment offset within a vector.
    double ubuf[3 * W];
    for (int i = 0; i < 3 * W; ++i) ubuf[i] = 0.5 * i - 3.0;
    for (int off = 0; off < W; ++off) {
        double uout[2 * W];
        TypeParam::loadu(ubuf + off).storeu(uout + off);
        for (int i = 0; i < W; ++i)
            EXPECT_EQ(uout[off + i], ubuf[off + i]) << "offset " << off;
    }
}

TYPED_TEST(SimdWidthTest, RemainderGuard) {
    constexpr int W = TypeParam::width;
    // The kernels' nx % width pattern: full vectors plus a masked tail whose
    // inactive lanes must never reach memory. blend against the old contents
    // models the keepLanes tail used by the width-8 mu sweep.
    constexpr int n = 3 * W - W / 2 - 1; // deliberately not a multiple of W
    double in[n], want[n];
    Random rng(31);
    for (int i = 0; i < n; ++i) {
        in[i] = rng.uniform(-4.0, 4.0);
        want[i] = std::fma(in[i], 2.0, 1.0);
    }
    double got[n + W]; // slack so the tail's full-width storeu stays in range
    for (int i = 0; i < n + W; ++i) got[i] = -777.0;

    const auto two = TypeParam::broadcast(2.0);
    const auto one = TypeParam::broadcast(1.0);
    int x = 0;
    for (; x + W <= n; x += W)
        TypeParam::fmadd(TypeParam::loadu(in + x), two, one).storeu(got + x);
    if (x < n) {
        // Tail: compute all W lanes from a clamped load, keep only the first
        // n - x via blend, write back the untouched old values beyond.
        double tail[W];
        for (int i = 0; i < W; ++i) tail[i] = in[x + i < n ? x + i : n - 1];
        double idx[W];
        for (int i = 0; i < W; ++i) idx[i] = static_cast<double>(i);
        const auto keep = TypeParam::loadu(idx) <
                          TypeParam::broadcast(static_cast<double>(n - x));
        const auto fresh = TypeParam::fmadd(TypeParam::loadu(tail), two, one);
        TypeParam::blend(keep, fresh, TypeParam::loadu(got + x))
            .storeu(got + x);
    }
    for (int i = 0; i < n; ++i) EXPECT_EQ(got[i], want[i]) << "cell " << i;
    for (int i = n; i < n + W; ++i)
        EXPECT_EQ(got[i], -777.0) << "tail lane leaked past n at " << i;
}

TYPED_TEST(SimdWidthTest, MasksAndReductions) {
    constexpr int W = TypeParam::width;
    double a[W], b[W];
    for (int i = 0; i < W; ++i) {
        a[i] = static_cast<double>(i);
        b[i] = static_cast<double>(W - 1 - i);
    }
    auto va = TypeParam::loadu(a), vb = TypeParam::loadu(b);

    const auto lt = va < vb;
    for (int i = 0; i < W; ++i) EXPECT_EQ(lt.lane(i), a[i] < b[i]);
    EXPECT_TRUE(lt.any());
    EXPECT_FALSE(lt.all());
    const auto ge = !lt;
    for (int i = 0; i < W; ++i) EXPECT_EQ(ge.lane(i), !(a[i] < b[i]));

    auto sel = allLanes(TypeParam::blend(lt, va, vb));
    for (int i = 0; i < W; ++i) EXPECT_EQ(sel[i], a[i] < b[i] ? a[i] : b[i]);

    // Pairwise hsum association is part of the cross-width contract.
    double expect = 0.0;
    if (W == 4) {
        expect = (a[0] + a[1]) + (a[2] + a[3]);
    } else {
        expect = ((a[0] + a[1]) + (a[2] + a[3])) +
                 ((a[4] + a[5]) + (a[6] + a[7]));
    }
    EXPECT_EQ(va.hsum(), expect);
    EXPECT_EQ(va.hmax(), a[W - 1]);
    EXPECT_EQ(va.hmin(), a[0]);
}

#if defined(__AVX512F__)
TEST(SimdCross, Avx512MatchesScalar8OnRandomInputs) {
    Random rng(37);
    for (int t = 0; t < 200; ++t) {
        double a[8], b[8];
        for (int i = 0; i < 8; ++i) {
            a[i] = rng.uniform(-100.0, 100.0);
            b[i] = rng.uniform(0.5, 100.0);
        }
        auto va = Vec8dAvx512::loadu(a), vb = Vec8dAvx512::loadu(b);
        auto sa = Vec8dScalar::loadu(a), sb = Vec8dScalar::loadu(b);
        EXPECT_EQ((va + vb).hsum(), (sa + sb).hsum());
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ((va * vb).lane(i), (sa * sb).lane(i));
            EXPECT_EQ(Vec8dAvx512::fmadd(va, vb, va).lane(i),
                      Vec8dScalar::fmadd(sa, sb, sa).lane(i));
            EXPECT_EQ(Vec8dAvx512::rsqrtFast(vb).lane(i),
                      Vec8dScalar::rsqrtFast(sb).lane(i));
        }
    }
}
#endif

} // namespace
} // namespace tpf::simd
