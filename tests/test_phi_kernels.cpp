/// Kernel equivalence + invariant tests for the phi-sweep — the executable
/// version of the paper's "regularly running test suite [that] checks all
/// kernel versions for equivalence".
///
/// Equivalence classes:
///  - General / Basic / ScalarTzStag / ScalarTzStagCut: bitwise identical
///    (same expressions; the Tz cache and the staggered buffers reproduce the
///    per-cell arithmetic exactly, and the bulk shortcut is exact because
///    projection pins bulk cells at simplex vertices).
///  - SIMD variants: equal to the scalar reference within a tight tolerance
///    (different association of phase sums / fma contraction).

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "core/kernels.h"
#include "core/regions.h"
#include "thermo/agalcu.h"
#include "util/random.h"

namespace tpf::core {
namespace {

/// gtest parameter names must be alphanumeric: strip the +/- decorations of
/// the kernel display names.
std::string testSafe(std::string s) {
    std::string out;
    for (char c : s)
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
    return out;
}

struct KernelFixture {
    thermo::TernarySystem sys = thermo::makeAgAlCu();
    ModelParams prm = ModelParams::defaults();
    FrozenTemperature temp{prm.temp};
    TzCache tz;

    std::unique_ptr<SimBlock> makeBlock(Scenario sc, Int3 size = {16, 16, 16},
                                        std::uint64_t perturbSeed = 0) {
        auto b = std::make_unique<SimBlock>(size);
        fillScenario(*b, sc, sys, prm.eps);
        if (perturbSeed != 0) {
            // Perturb mu so the driving force and anti-trapping terms are
            // exercised away from the symmetric equilibrium.
            Random rng(perturbSeed);
            forEachCell(b->muSrc.withGhosts(), [&](int x, int y, int z) {
                b->muSrc(x, y, z, 0) += rng.uniform(-0.02, 0.02);
                b->muSrc(x, y, z, 1) += rng.uniform(-0.02, 0.02);
            });
        }
        return b;
    }

    StepContext ctx(const SimBlock& b) {
        StepContext c;
        c.mc = ModelConsts::build(prm, sys);
        tz.build(c.mc, temp, b.origin.z, b.size.z, /*t=*/0.0, /*woff=*/0.0);
        c.tz = &tz;
        c.temp = &temp;
        return c;
    }
};

double maxDiff(const Field<double>& a, const Field<double>& b) {
    return a.maxAbsDiff(b);
}

class PhiKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<PhiKernelKind, Scenario>> {};

TEST_P(PhiKernelEquivalence, MatchesBasicReference) {
    const auto [kind, scenario] = GetParam();
    KernelFixture fx;

    auto ref = fx.makeBlock(scenario, {16, 16, 16}, 77);
    auto tst = fx.makeBlock(scenario, {16, 16, 16}, 77);
    ASSERT_EQ(maxDiff(ref->phiSrc, tst->phiSrc), 0.0);

    auto ctxRef = fx.ctx(*ref);
    runPhiKernel(PhiKernelKind::Basic, *ref, ctxRef);
    auto ctxTst = fx.ctx(*tst);
    runPhiKernel(kind, *tst, ctxTst);

    const double d = maxDiff(ref->phiDst, tst->phiDst);
    const bool bitwiseClass = kind == PhiKernelKind::General ||
                              kind == PhiKernelKind::Basic ||
                              kind == PhiKernelKind::ScalarTzStag ||
                              kind == PhiKernelKind::ScalarTzStagCut;
    if (bitwiseClass)
        EXPECT_EQ(d, 0.0) << kernelName(kind) << " must be bitwise equal";
    else
        EXPECT_LT(d, 1e-11) << kernelName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllScenarios, PhiKernelEquivalence,
    ::testing::Combine(::testing::ValuesIn(allPhiKernels()),
                       ::testing::Values(Scenario::Interface, Scenario::Liquid,
                                         Scenario::Solid)),
    [](const auto& pinfo) {
        return testSafe(kernelName(std::get<0>(pinfo.param))) + "_" +
               scenarioName(std::get<1>(pinfo.param));
    });

class PhiKernelInvariants : public ::testing::TestWithParam<PhiKernelKind> {};

TEST_P(PhiKernelInvariants, ResultStaysOnSimplex) {
    KernelFixture fx;
    auto b = fx.makeBlock(Scenario::Interface, {16, 16, 16}, 31);
    auto ctx = fx.ctx(*b);
    runPhiKernel(GetParam(), *b, ctx);
    forEachCell(b->phiDst.interior(), [&](int x, int y, int z) {
        double s = 0.0;
        for (int a = 0; a < N; ++a) {
            const double v = b->phiDst(x, y, z, a);
            ASSERT_GE(v, 0.0);
            ASSERT_LE(v, 1.0);
            s += v;
        }
        ASSERT_NEAR(s, 1.0, 1e-12);
    });
}

TEST_P(PhiKernelInvariants, BulkCellsAreExactNoOps) {
    KernelFixture fx;
    auto b = fx.makeBlock(Scenario::Interface, {16, 16, 16}, 31);
    auto ctx = fx.ctx(*b);
    runPhiKernel(GetParam(), *b, ctx);
    // Every cell whose whole D3C7 neighborhood is one exact vertex must be
    // unchanged bitwise — regardless of whether the kernel shortcuts.
    long long bulkCells = 0;
    forEachCell(b->phiDst.interior(), [&](int x, int y, int z) {
        int phase = -1;
        for (int a = 0; a < N; ++a)
            if (b->phiSrc(x, y, z, a) == 1.0) phase = a;
        if (phase < 0) return;
        const bool bulk7 = b->phiSrc(x - 1, y, z, phase) == 1.0 &&
                           b->phiSrc(x + 1, y, z, phase) == 1.0 &&
                           b->phiSrc(x, y - 1, z, phase) == 1.0 &&
                           b->phiSrc(x, y + 1, z, phase) == 1.0 &&
                           b->phiSrc(x, y, z - 1, phase) == 1.0 &&
                           b->phiSrc(x, y, z + 1, phase) == 1.0;
        if (!bulk7) return;
        ++bulkCells;
        for (int a = 0; a < N; ++a)
            ASSERT_EQ(b->phiDst(x, y, z, a), b->phiSrc(x, y, z, a))
                << "bulk cell changed at " << x << "," << y << "," << z;
    });
    EXPECT_GT(bulkCells, 100) << "scenario should contain bulk cells";
}

TEST_P(PhiKernelInvariants, PureLiquidBlockIsCompletelyStatic) {
    KernelFixture fx;
    auto b = fx.makeBlock(Scenario::Liquid);
    auto ctx = fx.ctx(*b);
    runPhiKernel(GetParam(), *b, ctx);
    EXPECT_EQ(maxDiff(b->phiDst, b->phiSrc), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PhiKernelInvariants,
                         ::testing::ValuesIn(allPhiKernels()),
                         [](const auto& pinfo) { return testSafe(kernelName(pinfo.param)); });

TEST(PhiKernel, UndercoolingGrowsSolidAtTheFront) {
    // With the eutectic isotherm far above the front, the front region is
    // strongly undercooled -> liquid fraction must decrease.
    KernelFixture fx;
    fx.prm.temp.gradient = 1.0;
    fx.prm.temp.zEut0 = 40.0; // front at z = 8 is 31.5 K undercooled
    fx.temp = FrozenTemperature(fx.prm.temp);

    auto b = fx.makeBlock(Scenario::Interface);
    double liq0 = 0.0;
    forEachCell(b->phiSrc.interior(), [&](int x, int y, int z) {
        liq0 += b->phiSrc(x, y, z, LIQ);
    });

    auto ctx = fx.ctx(*b);
    // A few steps: sweep, swap phi (mu held fixed — pure driving-force test).
    for (int step = 0; step < 5; ++step) {
        runPhiKernel(PhiKernelKind::Basic, *b, ctx);
        b->phiSrc.copyFrom(b->phiDst);
    }
    double liq1 = 0.0;
    forEachCell(b->phiSrc.interior(), [&](int x, int y, int z) {
        liq1 += b->phiSrc(x, y, z, LIQ);
    });
    EXPECT_LT(liq1, liq0) << "undercooled front must solidify";
}

TEST(PhiKernel, SuperheatingMeltsSolidAtTheFront) {
    KernelFixture fx;
    fx.prm.temp.gradient = 1.0;
    fx.prm.temp.zEut0 = -30.0; // whole block above T_E -> melting
    fx.temp = FrozenTemperature(fx.prm.temp);

    auto b = fx.makeBlock(Scenario::Interface);
    double liq0 = 0.0;
    forEachCell(b->phiSrc.interior(), [&](int x, int y, int z) {
        liq0 += b->phiSrc(x, y, z, LIQ);
    });
    auto ctx = fx.ctx(*b);
    for (int step = 0; step < 5; ++step) {
        runPhiKernel(PhiKernelKind::Basic, *b, ctx);
        b->phiSrc.copyFrom(b->phiDst);
    }
    double liq1 = 0.0;
    forEachCell(b->phiSrc.interior(), [&](int x, int y, int z) {
        liq1 += b->phiSrc(x, y, z, LIQ);
    });
    EXPECT_GT(liq1, liq0) << "superheated front must melt";
}

TEST(PhiKernel, ZyxfLayoutGivesSameResultAsFzyx) {
    KernelFixture fx;
    auto a = std::make_unique<SimBlock>(Int3{12, 12, 12}, Layout::fzyx,
                                        Layout::fzyx);
    auto b = std::make_unique<SimBlock>(Int3{12, 12, 12}, Layout::zyxf,
                                        Layout::zyxf);
    fillScenario(*a, Scenario::Interface, fx.sys, fx.prm.eps);
    fillScenario(*b, Scenario::Interface, fx.sys, fx.prm.eps);

    auto ca = fx.ctx(*a);
    runPhiKernel(PhiKernelKind::Basic, *a, ca);
    auto cb = fx.ctx(*b);
    runPhiKernel(PhiKernelKind::Basic, *b, cb);

    forEachCell(a->phiDst.interior(), [&](int x, int y, int z) {
        for (int f = 0; f < N; ++f)
            ASSERT_EQ(a->phiDst(x, y, z, f), b->phiDst(x, y, z, f));
    });
}

TEST(PhiKernel, RegionClassificationOfScenarios) {
    KernelFixture fx;
    auto liq = fx.makeBlock(Scenario::Liquid);
    auto sol = fx.makeBlock(Scenario::Solid);
    auto inter = fx.makeBlock(Scenario::Interface);

    const auto sLiq = classifyBlock(liq->phiSrc);
    EXPECT_EQ(sLiq.bulkLiquid, sLiq.total());

    const auto sSol = classifyBlock(sol->phiSrc);
    EXPECT_EQ(sSol.bulkLiquid, 0);
    EXPECT_GT(sSol.bulkSolid, 0);
    EXPECT_GT(sSol.interface, 0); // solid-solid lamella boundaries

    const auto sInt = classifyBlock(inter->phiSrc);
    EXPECT_GT(sInt.bulkLiquid, 0);
    EXPECT_GT(sInt.bulkSolid, 0);
    EXPECT_GT(sInt.front, 0);
}

// --- four-cell vectorization guards -----------------------------------------
// The active Vec4d backend is a compile-time choice (AVX2 with
// -march=native/TPF_NATIVE_ARCH, SSE2 otherwise), so running this suite in
// both build configurations exercises the nx % 4 guard in both backends.

TEST(PhiKernelSimdGuards, MinimalVectorWidthBlockMatchesBasic) {
    // nx = 4 is the narrowest block the four-cell kernel accepts.
    KernelFixture fx;
    auto ref = fx.makeBlock(Scenario::Interface, {4, 8, 8}, 77);
    auto tst = fx.makeBlock(Scenario::Interface, {4, 8, 8}, 77);

    auto ctxRef = fx.ctx(*ref);
    runPhiKernel(PhiKernelKind::Basic, *ref, ctxRef);
    auto ctxTst = fx.ctx(*tst);
    runPhiKernel(PhiKernelKind::SimdFourCell, *tst, ctxTst);

    EXPECT_LT(maxDiff(ref->phiDst, tst->phiDst), 1e-11);
}

TEST(PhiKernelSimdGuardsDeathTest, RejectsNxNotDivisibleByFour) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    KernelFixture fx;
    auto b = fx.makeBlock(Scenario::Interface, {6, 8, 8}, 77);
    auto ctx = fx.ctx(*b);
    EXPECT_DEATH(runPhiKernel(PhiKernelKind::SimdFourCell, *b, ctx),
                 "divisible by 4");
}

} // namespace
} // namespace tpf::core
