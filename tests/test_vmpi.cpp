/// Tests for the virtual MPI layer: point-to-point matching, nonblocking
/// receives, barriers, deterministic collectives, exception propagation —
/// parameterized over every spawnable transport (thread, shm), so the same
/// semantic contract is enforced against in-process mailboxes and forked
/// processes over shared-memory rings alike. The mpi backend cannot be
/// spawned from a plain test process (mpirun owns process creation) and is
/// covered by running this binary under mpirun on an MPI build.
///
/// Also here: the collective-sequencing regression harness (randomized
/// delivery via runParallelThreadShuffled) and the dropped-Request death
/// test.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

#include "vmpi/comm.h"

namespace tpf::vmpi {
namespace {

class VmpiTransport : public ::testing::TestWithParam<TransportKind> {
protected:
    /// runParallel over the transport under test.
    void run(int nranks, const std::function<void(Comm&)>& f) {
        runParallel(GetParam(), nranks, f);
    }
};

INSTANTIATE_TEST_SUITE_P(
    AllTransports, VmpiTransport, ::testing::ValuesIn(spawnableTransports()),
    [](const ::testing::TestParamInfo<TransportKind>& paramInfo) {
        return transportName(paramInfo.param);
    });

TEST_P(VmpiTransport, SingleRankRunsInline) {
    int called = 0;
    run(1, [&](Comm& c) {
        EXPECT_EQ(c.rank(), 0);
        EXPECT_EQ(c.size(), 1);
        EXPECT_TRUE(c.isRoot());
        ++called;
    });
    EXPECT_EQ(called, 1);
}

TEST_P(VmpiTransport, ReportsItsName) {
    run(2, [&](Comm& c) {
        EXPECT_STREQ(c.transportName(), transportName(GetParam()));
    });
}

TEST_P(VmpiTransport, PingPong) {
    run(2, [](Comm& c) {
        if (c.rank() == 0) {
            c.sendValue<double>(1, 7, 3.25);
            EXPECT_EQ(c.recvValue<double>(1, 8), 6.5);
        } else {
            const double v = c.recvValue<double>(0, 7);
            c.sendValue<double>(0, 8, 2.0 * v);
        }
    });
}

TEST_P(VmpiTransport, TagAndSourceMatching) {
    run(3, [](Comm& c) {
        if (c.rank() == 0) {
            // Send out of order; receiver matches by tag.
            c.sendValue<int>(2, 20, 222);
            c.sendValue<int>(2, 10, 111);
        } else if (c.rank() == 1) {
            c.sendValue<int>(2, 10, 333);
        } else {
            EXPECT_EQ(c.recvValue<int>(0, 10), 111);
            EXPECT_EQ(c.recvValue<int>(0, 20), 222);
            EXPECT_EQ(c.recvValue<int>(1, 10), 333);
        }
    });
}

TEST_P(VmpiTransport, FifoOrderWithinSameTag) {
    run(2, [](Comm& c) {
        if (c.rank() == 0) {
            for (int i = 0; i < 10; ++i) c.sendValue<int>(1, 5, i);
        } else {
            for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recvValue<int>(0, 5), i);
        }
    });
}

TEST_P(VmpiTransport, VectorMessages) {
    run(2, [](Comm& c) {
        if (c.rank() == 0) {
            std::vector<double> v(1000);
            std::iota(v.begin(), v.end(), 0.0);
            c.sendVector(1, 1, v);
        } else {
            const auto v = c.recvVector<double>(0, 1);
            ASSERT_EQ(v.size(), 1000u);
            EXPECT_EQ(v[999], 999.0);
        }
    });
}

TEST_P(VmpiTransport, LargeMessagesExceedTheRing) {
    // Larger than the shm ring chunking threshold (capacity/4), so the shm
    // backend must split the payload into multiple records and the sender
    // must make progress even when the receiver is slow to drain.
    run(2, [](Comm& c) {
        constexpr std::size_t n = 3u << 20; // 24 MiB of doubles
        if (c.rank() == 0) {
            std::vector<double> v(n);
            std::iota(v.begin(), v.end(), 0.0);
            c.sendVector(1, 2, v);
        } else {
            const auto v = c.recvVector<double>(0, 2);
            ASSERT_EQ(v.size(), n);
            EXPECT_EQ(v.front(), 0.0);
            EXPECT_EQ(v[n / 2], static_cast<double>(n / 2));
            EXPECT_EQ(v.back(), static_cast<double>(n - 1));
        }
    });
}

TEST_P(VmpiTransport, IrecvCompletesOnWait) {
    run(2, [](Comm& c) {
        if (c.rank() == 0) {
            std::vector<std::byte> buf;
            Request r = c.irecv(1, 3, &buf, sizeof(double));
            EXPECT_TRUE(r.valid());
            // Computation would happen here (communication hiding).
            c.wait(r);
            EXPECT_FALSE(r.valid());
            ASSERT_EQ(buf.size(), sizeof(double));
            double v;
            std::memcpy(&v, buf.data(), sizeof(double));
            EXPECT_EQ(v, 9.0);
        } else {
            c.sendValue<double>(0, 3, 9.0);
        }
    });
}

TEST_P(VmpiTransport, CancelledIrecvIsNotAnError) {
    // The teardown escape hatch (GhostExchange's destructor on unwinding):
    // cancelling instead of waiting must neither assert nor deadlock. A
    // barrier afterwards proves the transport stays functional.
    run(2, [](Comm& c) {
        if (c.rank() == 0) {
            std::vector<std::byte> buf;
            Request r = c.irecv(1, 4, &buf, sizeof(double));
            r.cancel();
            EXPECT_FALSE(r.valid());
        } else {
            c.sendValue<double>(0, 4, 1.0);
        }
        c.barrier();
    });
}

TEST_P(VmpiTransport, BarrierCompletes) {
    // Cross-rank memory assertions only work on the thread transport (see
    // BarrierSynchronizes); on process transports we at least pound on the
    // barrier to shake out lost-wakeup/generation bugs.
    run(4, [](Comm& c) {
        for (int i = 0; i < 50; ++i) c.barrier();
    });
}

TEST_P(VmpiTransport, AllreduceSumMinMax) {
    run(6, [](Comm& c) {
        const double mine = static_cast<double>(c.rank() + 1);
        EXPECT_DOUBLE_EQ(c.allreduceSum(mine), 21.0);
        EXPECT_DOUBLE_EQ(c.allreduceMin(mine), 1.0);
        EXPECT_DOUBLE_EQ(c.allreduceMax(mine), 6.0);
        EXPECT_EQ(c.allreduceSumLL(static_cast<long long>(c.rank())), 15);
    });
}

TEST_P(VmpiTransport, AllAgree) {
    run(4, [](Comm& c) {
        EXPECT_TRUE(c.allAgree(true));
        EXPECT_FALSE(c.allAgree(c.rank() != 2));
        EXPECT_FALSE(c.allAgree(false));
        EXPECT_TRUE(c.allAgree(true));
    });
}

TEST_P(VmpiTransport, GatherCollectsInRankOrder) {
    run(5, [](Comm& c) {
        const auto all = c.gather(static_cast<double>(c.rank() * 10));
        if (c.isRoot()) {
            ASSERT_EQ(all.size(), 5u);
            for (int r = 0; r < 5; ++r)
                EXPECT_EQ(all[static_cast<std::size_t>(r)], 10.0 * r);
        } else {
            EXPECT_TRUE(all.empty());
        }
    });
}

TEST_P(VmpiTransport, GatherAllBytesKeepsRankOrderAndSizes) {
    run(4, [](Comm& c) {
        // Variable-length, rank-dependent payloads, twice back to back —
        // the second gather must not cross-match the first one's messages.
        for (int round = 0; round < 2; ++round) {
            std::vector<std::byte> mine(
                static_cast<std::size_t>(c.rank() * 3 + round));
            for (std::size_t i = 0; i < mine.size(); ++i)
                mine[i] = static_cast<std::byte>(c.rank() * 10 + round);
            const auto all = c.gatherAllBytes(mine);
            if (c.isRoot()) {
                ASSERT_EQ(all.size(), 4u);
                for (int r = 0; r < 4; ++r) {
                    const auto& b = all[static_cast<std::size_t>(r)];
                    EXPECT_EQ(b.size(),
                              static_cast<std::size_t>(r * 3 + round));
                    for (const std::byte v : b)
                        EXPECT_EQ(static_cast<int>(v), r * 10 + round);
                }
            } else {
                EXPECT_TRUE(all.empty());
            }
        }
    });
}

TEST_P(VmpiTransport, BcastDistributesRootValue) {
    run(4, [](Comm& c) {
        double v = c.isRoot() ? 42.5 : 0.0;
        v = c.bcast(v);
        EXPECT_EQ(v, 42.5);
    });
}

TEST_P(VmpiTransport, AllreduceIsDeterministicAcrossRuns) {
    // Rank-ordered combination: both runs must give bitwise equal sums even
    // for values where addition order matters. Root is the calling process
    // on every spawnable transport, so the captured result survives.
    double first = 0.0;
    for (int runIdx = 0; runIdx < 2; ++runIdx) {
        double result = 0.0;
        run(7, [&](Comm& c) {
            const double mine = 0.1 * static_cast<double>(c.rank() + 1) + 1e-13;
            const double s = c.allreduceSum(mine);
            if (c.isRoot()) result = s;
        });
        if (runIdx == 0)
            first = result;
        else
            EXPECT_EQ(result, first);
    }
}

TEST_P(VmpiTransport, ExceptionInRankPropagates) {
    EXPECT_THROW(run(3,
                     [](Comm& c) {
                         if (c.rank() == 2)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
}

TEST_P(VmpiTransport, ExceptionInOneRankUnblocksTheOthers) {
    // The failing rank never sends; without failure propagation the healthy
    // rank would sit in recv() until the 120 s deadlock timeout. The test
    // completing quickly (with an exception) is the actual assertion.
    EXPECT_THROW(run(2,
                     [](Comm& c) {
                         if (c.rank() == 1)
                             throw std::runtime_error("early failure");
                         std::vector<std::byte> buf;
                         c.recv(1, 0, buf);
                     }),
                 std::runtime_error);
}

// ---------------------------------------------------------------------------
// Thread-transport-only checks
// ---------------------------------------------------------------------------

TEST(Vmpi, BarrierSynchronizes) {
    // Shared std::atomic across ranks only exists on the thread transport.
    for (int trial = 0; trial < 5; ++trial) {
        std::atomic<int> before{0};
        std::atomic<bool> ok{true};
        runParallel(TransportKind::Thread, 8, [&](Comm& c) {
            before.fetch_add(1);
            c.barrier();
            // After the barrier every rank must observe all increments.
            if (before.load() != 8) ok = false;
        });
        EXPECT_TRUE(ok.load());
    }
}

TEST(Vmpi, DefaultTransportIsUsedByPlainRunParallel) {
    runParallel(2, [](Comm& c) {
        EXPECT_STREQ(c.transportName(), transportName(defaultTransport()));
    });
}

// ---------------------------------------------------------------------------
// Dropped-request discipline
// ---------------------------------------------------------------------------

using VmpiDeathTest = VmpiTransport;
INSTANTIATE_TEST_SUITE_P(
    AllTransports, VmpiDeathTest, ::testing::ValuesIn(spawnableTransports()),
    [](const ::testing::TestParamInfo<TransportKind>& paramInfo) {
        return transportName(paramInfo.param);
    });

TEST_P(VmpiDeathTest, DroppedRequestAborts) {
    // A posted receive that goes out of scope without wait() (or an
    // explicit cancel()) leaks the matched message inside the transport —
    // it must die loudly, not silently desynchronize the tag stream.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            run(2, [](Comm& c) {
                if (c.rank() == 0) {
                    std::vector<std::byte> buf;
                    Request r = c.irecv(1, 6, &buf, sizeof(double));
                    // Dropped: r dies here, unwaited.
                } else {
                    c.sendValue<double>(0, 6, 4.0);
                }
            });
        },
        "destroyed without wait");
}

// ---------------------------------------------------------------------------
// Collective sequencing under adversarial delivery order
// ---------------------------------------------------------------------------

/// Witness that the shuffle harness is genuinely adversarial: with a
/// nonzero seed it permutes even same-tag messages (strictly harsher than
/// any real transport, which must keep per-(source, tag) FIFO), so nothing
/// about cross-message arrival order survives it.
TEST(VmpiShuffled, HarnessReordersSameTagMessages) {
    bool sawPermutation = false;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        std::vector<int> got;
        runParallelThreadShuffled(seed, 2, [&](Comm& c) {
            if (c.rank() == 0) {
                for (int i = 0; i < 16; ++i) c.sendValue<int>(1, 9, i);
            } else {
                got.clear();
                for (int i = 0; i < 16; ++i)
                    got.push_back(c.recvValue<int>(0, 9));
            }
        });
        std::vector<int> sorted = got;
        std::sort(sorted.begin(), sorted.end());
        std::vector<int> expect(16);
        std::iota(expect.begin(), expect.end(), 0);
        EXPECT_EQ(sorted, expect) << "messages lost or duplicated";
        if (!std::is_sorted(got.begin(), got.end())) sawPermutation = true;
    }
    EXPECT_TRUE(sawPermutation)
        << "shuffle harness never reordered a same-tag stream — the "
           "randomized-delivery regression tests below prove nothing";
}

/// Regression for the tag-reuse/ordering bug: collectives used fixed
/// internal tags, so their correctness silently relied on the thread
/// backend's strict FIFO delivery — message streams of *back-to-back*
/// collectives could cross-match under any reordering. Every collective
/// now consumes a per-rank sequence number mixed into its tags; under
/// fully randomized delivery the whole collective family must still
/// produce exact results.
TEST(VmpiShuffled, BackToBackCollectivesSurviveRandomizedDelivery) {
    for (const std::uint64_t seed : {7ull, 99ull, 123456789ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        runParallelThreadShuffled(seed, 4, [](Comm& c) {
            for (int round = 0; round < 8; ++round) {
                // Mixed, unseparated collectives: gathers directly after
                // reductions after broadcasts, with rank- and round-
                // dependent payloads so a cross-matched message changes a
                // checked value instead of passing by luck.
                const double mine =
                    static_cast<double>(c.rank() + 1) * (round + 1);
                EXPECT_DOUBLE_EQ(c.allreduceSum(mine), 10.0 * (round + 1));
                EXPECT_DOUBLE_EQ(c.allreduceMax(mine), 4.0 * (round + 1));

                const auto all = c.gather(mine);
                if (c.isRoot()) {
                    ASSERT_EQ(all.size(), 4u);
                    for (int r = 0; r < 4; ++r)
                        EXPECT_EQ(all[static_cast<std::size_t>(r)],
                                  static_cast<double>(r + 1) * (round + 1));
                }

                std::vector<std::byte> blob(
                    static_cast<std::size_t>(c.rank() + round + 1),
                    static_cast<std::byte>(c.rank() ^ round));
                const auto blobs = c.gatherAllBytes(blob);
                if (c.isRoot()) {
                    ASSERT_EQ(blobs.size(), 4u);
                    for (int r = 0; r < 4; ++r) {
                        const auto& b = blobs[static_cast<std::size_t>(r)];
                        ASSERT_EQ(b.size(),
                                  static_cast<std::size_t>(r + round + 1));
                        for (const std::byte v : b)
                            EXPECT_EQ(static_cast<int>(v), r ^ round);
                    }
                }

                int token = c.isRoot() ? round * 31 : -1;
                token = c.bcast(token);
                EXPECT_EQ(token, round * 31);

                EXPECT_TRUE(c.allAgree(true));
                EXPECT_FALSE(c.allAgree(c.rank() != round % 4));
            }
        });
    }
}

/// The gatherAllBytes regression in its pure point-to-point form: two
/// gathers back to back with different payload sizes. Under the old fixed
/// tags, a reordered delivery let round 2's (larger) payload match round
/// 1's receive. Shuffled delivery makes that reordering certain to occur
/// across seeds.
TEST(VmpiShuffled, RepeatedGatherAllBytesDoNotCrossMatch) {
    for (const std::uint64_t seed : {11ull, 42ull, 31337ull}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        runParallelThreadShuffled(seed, 3, [](Comm& c) {
            for (int round = 0; round < 6; ++round) {
                std::vector<std::byte> mine(
                    static_cast<std::size_t>(1 + c.rank() + 5 * round),
                    static_cast<std::byte>(100 + 10 * c.rank() + round));
                const auto all = c.gatherAllBytes(mine);
                if (c.isRoot()) {
                    ASSERT_EQ(all.size(), 3u);
                    for (int r = 0; r < 3; ++r) {
                        const auto& b = all[static_cast<std::size_t>(r)];
                        ASSERT_EQ(b.size(),
                                  static_cast<std::size_t>(1 + r + 5 * round))
                            << "rank " << r << " round " << round
                            << ": cross-matched a neighboring gather";
                        for (const std::byte v : b)
                            EXPECT_EQ(static_cast<int>(v),
                                      100 + 10 * r + round);
                    }
                }
            }
        });
    }
}

} // namespace
} // namespace tpf::vmpi
