/// Tests for the virtual MPI layer: point-to-point matching, nonblocking
/// receives, barriers, deterministic collectives, exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "vmpi/comm.h"

namespace tpf::vmpi {
namespace {

TEST(Vmpi, SingleRankRunsInline) {
    int called = 0;
    runParallel(1, [&](Comm& c) {
        EXPECT_EQ(c.rank(), 0);
        EXPECT_EQ(c.size(), 1);
        EXPECT_TRUE(c.isRoot());
        ++called;
    });
    EXPECT_EQ(called, 1);
}

TEST(Vmpi, PingPong) {
    runParallel(2, [](Comm& c) {
        if (c.rank() == 0) {
            c.sendValue<double>(1, 7, 3.25);
            EXPECT_EQ(c.recvValue<double>(1, 8), 6.5);
        } else {
            const double v = c.recvValue<double>(0, 7);
            c.sendValue<double>(0, 8, 2.0 * v);
        }
    });
}

TEST(Vmpi, TagAndSourceMatching) {
    runParallel(3, [](Comm& c) {
        if (c.rank() == 0) {
            // Send out of order; receiver matches by tag.
            c.sendValue<int>(2, 20, 222);
            c.sendValue<int>(2, 10, 111);
        } else if (c.rank() == 1) {
            c.sendValue<int>(2, 10, 333);
        } else {
            EXPECT_EQ(c.recvValue<int>(0, 10), 111);
            EXPECT_EQ(c.recvValue<int>(0, 20), 222);
            EXPECT_EQ(c.recvValue<int>(1, 10), 333);
        }
    });
}

TEST(Vmpi, FifoOrderWithinSameTag) {
    runParallel(2, [](Comm& c) {
        if (c.rank() == 0) {
            for (int i = 0; i < 10; ++i) c.sendValue<int>(1, 5, i);
        } else {
            for (int i = 0; i < 10; ++i) EXPECT_EQ(c.recvValue<int>(0, 5), i);
        }
    });
}

TEST(Vmpi, VectorMessages) {
    runParallel(2, [](Comm& c) {
        if (c.rank() == 0) {
            std::vector<double> v(1000);
            std::iota(v.begin(), v.end(), 0.0);
            c.sendVector(1, 1, v);
        } else {
            const auto v = c.recvVector<double>(0, 1);
            ASSERT_EQ(v.size(), 1000u);
            EXPECT_EQ(v[999], 999.0);
        }
    });
}

TEST(Vmpi, IrecvCompletesOnWait) {
    runParallel(2, [](Comm& c) {
        if (c.rank() == 0) {
            std::vector<std::byte> buf;
            Request r = c.irecv(1, 3, &buf);
            EXPECT_TRUE(r.valid());
            // Computation would happen here (communication hiding).
            c.wait(r);
            EXPECT_FALSE(r.valid());
            ASSERT_EQ(buf.size(), sizeof(double));
            double v;
            std::memcpy(&v, buf.data(), sizeof(double));
            EXPECT_EQ(v, 9.0);
        } else {
            c.sendValue<double>(0, 3, 9.0);
        }
    });
}

TEST(Vmpi, BarrierSynchronizes) {
    for (int trial = 0; trial < 5; ++trial) {
        std::atomic<int> before{0};
        std::atomic<bool> ok{true};
        runParallel(8, [&](Comm& c) {
            before.fetch_add(1);
            c.barrier();
            // After the barrier every rank must observe all increments.
            if (before.load() != 8) ok = false;
        });
        EXPECT_TRUE(ok.load());
    }
}

TEST(Vmpi, AllreduceSumMinMax) {
    runParallel(6, [](Comm& c) {
        const double mine = static_cast<double>(c.rank() + 1);
        EXPECT_DOUBLE_EQ(c.allreduceSum(mine), 21.0);
        EXPECT_DOUBLE_EQ(c.allreduceMin(mine), 1.0);
        EXPECT_DOUBLE_EQ(c.allreduceMax(mine), 6.0);
        EXPECT_EQ(c.allreduceSumLL(static_cast<long long>(c.rank())), 15);
    });
}

TEST(Vmpi, AllreduceIsDeterministicAcrossRuns) {
    // Rank-ordered combination: both runs must give bitwise equal sums even
    // for values where addition order matters.
    double first = 0.0;
    for (int run = 0; run < 2; ++run) {
        double result = 0.0;
        runParallel(7, [&](Comm& c) {
            const double mine = 0.1 * static_cast<double>(c.rank() + 1) + 1e-13;
            const double s = c.allreduceSum(mine);
            if (c.isRoot()) result = s;
        });
        if (run == 0)
            first = result;
        else
            EXPECT_EQ(result, first);
    }
}

TEST(Vmpi, GatherCollectsInRankOrder) {
    runParallel(5, [](Comm& c) {
        const auto all = c.gather(static_cast<double>(c.rank() * 10));
        if (c.isRoot()) {
            ASSERT_EQ(all.size(), 5u);
            for (int r = 0; r < 5; ++r)
                EXPECT_EQ(all[static_cast<std::size_t>(r)], 10.0 * r);
        } else {
            EXPECT_TRUE(all.empty());
        }
    });
}

TEST(Vmpi, BcastDistributesRootValue) {
    runParallel(4, [](Comm& c) {
        double v = c.isRoot() ? 42.5 : 0.0;
        v = c.bcast(v);
        EXPECT_EQ(v, 42.5);
    });
}

TEST(Vmpi, ExceptionInRankPropagates) {
    EXPECT_THROW(runParallel(3,
                             [](Comm& c) {
                                 if (c.rank() == 2)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
}

} // namespace
} // namespace tpf::vmpi
