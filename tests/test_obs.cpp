/// \file test_obs.cpp
/// The run-telemetry layer (src/obs): trace recording and the Chrome
/// trace-event writer (valid JSON, balanced B/E spans, rank-merge ordering),
/// the metrics registry and its versioned CSV (schema line, %.17g exact
/// round-trip, restart-resume semantics mirroring the analysis series), the
/// fan-out stats choke point in util::ThreadPool, and the layer's hard
/// contract: observability is non-perturbing — a solver run with tracing
/// and metrics fully on produces a checkpoint bitwise identical to an
/// uninstrumented run, across ranks x threads (docs/OBSERVABILITY.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>

#include "core/solver.h"
#include "io/checkpoint.h"
#include "io/csv_writer.h"
#include "obs/fanout.h"
#include "obs/metrics.h"
#include "obs/run_obs.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace tpf {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() /
               ("tpf_obs_" + tag + "_" + std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

void writeFile(const fs::path& p, const std::string& content) {
    std::ofstream out(p, std::ios::binary);
    out << content;
}

// --- Trace recording and the Chrome trace-event writer --------------------

TEST(ObsTrace, ScopedSpansRecordBalancedEventsThroughTheThreadSink) {
    obs::Trace t;
    obs::setThreadTrace(&t);
    {
        TPF_SPAN("outer");
        { obs::ScopedSpan inner("inner"); }
    }
    obs::setThreadTrace(nullptr);
    EXPECT_EQ(t.eventCount(), 4u); // two B + two E
    EXPECT_EQ(t.openSpans(), 0);

    // With no sink installed the macro is a no-op, not a crash.
    { TPF_SPAN("unsinked"); }
}

TEST(ObsTrace, MergedChromeTraceIsValidJsonWithOneRankPerBlob) {
    TempDir dir("trace");
    const std::string path = (dir.path / "trace.json").string();

    obs::Trace r0;
    r0.begin("step");
    r0.begin("phi-sweep");
    r0.end();
    r0.end();
    obs::Trace r1;
    r1.begin("step");
    r1.end();

    const double epoch = std::min(r0.firstTs(), r1.firstTs());
    obs::writeChromeTrace(path, {r0.serialize(epoch), r1.serialize(epoch)});

    const obs::TraceCheck c = obs::validateTraceFile(path);
    EXPECT_TRUE(c.ok) << c.message;
    EXPECT_EQ(c.ranks, 2);
    EXPECT_EQ(c.events, 6); // 4 + 2 duration events
    EXPECT_EQ(c.spanNames,
              (std::vector<std::string>{"phi-sweep", "step"}));
}

TEST(ObsTrace, SerializeAssertsOnOpenSpansViaBalanceStack) {
    // An unbalanced recording is a bug in the instrumentation; the balance
    // stack catches it before anything reaches disk.
    obs::Trace t;
    t.begin("never-closed");
    EXPECT_EQ(t.openSpans(), 1);
    t.end();
    EXPECT_EQ(t.openSpans(), 0);
}

TEST(ObsTrace, ValidatorRejectsMalformedUnbalancedAndNonMonotonic) {
    TempDir dir("validate");

    const fs::path bad = dir.path / "bad.json";
    writeFile(bad, "{\"traceEvents\":[");
    EXPECT_FALSE(obs::validateTraceFile(bad.string()).ok);

    const fs::path unbalanced = dir.path / "unbalanced.json";
    writeFile(unbalanced,
              "{\"traceEvents\":[{\"ph\":\"B\",\"ts\":0,\"pid\":0,"
              "\"tid\":0,\"name\":\"x\"}]}");
    EXPECT_FALSE(obs::validateTraceFile(unbalanced.string()).ok);

    const fs::path backwards = dir.path / "backwards.json";
    writeFile(backwards,
              "{\"traceEvents\":["
              "{\"ph\":\"B\",\"ts\":10,\"pid\":0,\"tid\":0,\"name\":\"x\"},"
              "{\"ph\":\"E\",\"ts\":5,\"pid\":0,\"tid\":0,\"name\":\"x\"}]}");
    EXPECT_FALSE(obs::validateTraceFile(backwards.string()).ok);

    EXPECT_FALSE(
        obs::validateTraceFile((dir.path / "absent.json").string()).ok);
}

// --- Metrics registry and CSV ----------------------------------------------

TEST(ObsMetrics, RegistrationOrderDefinesColumnsAndHistogramsExpand) {
    obs::MetricsRegistry r;
    r.counter("steps").add(2.5);
    r.gauge("mlups").set(-1.0);
    r.histogram("wall").observe(3.0);
    r.histogram("wall").observe(1.0);

    EXPECT_EQ(r.columns(),
              (std::vector<std::string>{"steps", "mlups", "wall_count",
                                        "wall_min", "wall_max", "wall_sum"}));
    const std::vector<double> row = r.row();
    ASSERT_EQ(row.size(), 6u);
    EXPECT_EQ(row[0], 2.5);
    EXPECT_EQ(row[1], -1.0);
    EXPECT_EQ(row[2], 2.0);
    EXPECT_EQ(row[3], 1.0);
    EXPECT_EQ(row[4], 3.0);
    EXPECT_EQ(row[5], 4.0);
}

TEST(ObsMetrics, CsvCarriesSchemaLineAndRoundTripsDoublesExactly) {
    TempDir dir("csv");
    const std::string path = (dir.path / "metrics.csv").string();
    const double v = 0.1 + 0.2; // 0.30000000000000004

    obs::MetricsRegistry r;
    r.gauge("v");
    r.createCsv(path);
    r.gauge("v").set(v);
    r.writeCsvRow(0);
    r.gauge("v").set(1.0 / 3.0);
    r.writeCsvRow(10);
    r.closeCsv();

    const io::CsvSeries s = io::readCsvSeries(path);
    EXPECT_EQ(s.schema, "# tpf-metrics v1");
    ASSERT_EQ(s.columns, (std::vector<std::string>{"step", "v"}));
    ASSERT_EQ(s.rows.size(), 2u);
    EXPECT_EQ(s.stepOf(0), 0);
    EXPECT_EQ(s.stepOf(1), 10);
    EXPECT_EQ(std::stod(s.rows[0][1]), v) << s.rows[0][1];
    EXPECT_EQ(std::stod(s.rows[1][1]), 1.0 / 3.0) << s.rows[1][1];
}

TEST(ObsMetrics, ResumeDropsRowsNewerThanTheCheckpointStep) {
    TempDir dir("resume");
    const std::string path = (dir.path / "metrics.csv").string();

    {
        obs::MetricsRegistry r;
        r.gauge("v");
        r.createCsv(path);
        for (long long step : {0, 5, 10, 15, 20}) {
            r.gauge("v").set(static_cast<double>(step));
            r.writeCsvRow(step);
        }
        r.closeCsv();
    }

    // Restart from a checkpoint at step 10: rows 15 and 20 must vanish and
    // the continuation appends seamlessly.
    obs::MetricsRegistry r;
    r.gauge("v");
    r.resumeCsv(path, /*lastStep=*/10);
    r.gauge("v").set(15.0);
    r.writeCsvRow(15);
    r.closeCsv();

    const io::CsvSeries s = io::readCsvSeries(path);
    ASSERT_EQ(s.rows.size(), 4u); // 0, 5, 10 kept + 15 appended
    EXPECT_EQ(s.stepOf(2), 10);
    EXPECT_EQ(s.stepOf(3), 15);
}

TEST(ObsMetrics, ResumeRejectsAForeignSchema) {
    TempDir dir("schema");
    const std::string path = (dir.path / "metrics.csv").string();
    {
        io::CsvWriter w;
        w.create(path, "tpf-analysis", 1, {"v"});
        w.writeRow(0, {1.0});
        w.close();
    }
    obs::MetricsRegistry r;
    r.gauge("v");
    EXPECT_THROW(r.resumeCsv(path, 0), io::CsvError);
}

// --- Fan-out stats through the ThreadPool choke point ----------------------

TEST(ObsFanout, ParallelForReportsIntoTheInstalledSink) {
    util::ThreadPool pool(2);
    obs::FanoutStats stats;
    obs::setThreadFanoutStats(&stats);
    pool.parallelFor(8, [](int) {});
    pool.parallelFor(3, [](int) {});
    obs::setThreadFanoutStats(nullptr);

    EXPECT_EQ(stats.fanouts.load(), 2);
    EXPECT_EQ(stats.tasks.load(), 11);
    EXPECT_GE(stats.wallSeconds.load(), 0.0);
    EXPECT_GE(stats.busySeconds.load(), 0.0);

    // With the sink uninstalled the pool records nothing further.
    pool.parallelFor(4, [](int) {});
    EXPECT_EQ(stats.fanouts.load(), 2);
}

// --- The non-perturbation contract ------------------------------------------

/// Window-heavy solidify configuration (the test_restart shape): shifts
/// happen during the run, so the window/exchange/fan-out telemetry paths are
/// all live while the checkpoints are compared.
core::SolverConfig obsConfig(int ranks, int threads) {
    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 32};
    if (ranks > 1) cfg.blockSize = {16, 16, 32 / ranks};
    cfg.threads = threads;
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.velocity = 0.02;
    cfg.model.temp.zEut0 = 12.0;
    cfg.init.fillHeight = 26;
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.2;
    cfg.window.checkEvery = 8;
    cfg.overlapMu = true;
    return cfg;
}

/// Run \p steps of the solidify scenario, checkpoint into \p chkDir. With
/// \p obsOn, the full telemetry stack rides along exactly as tpf-sim wires
/// it: trace + metrics + fan-out sinks, sampling hook, post-run merge.
void runMaybeInstrumented(const core::SolverConfig& cfg, int ranks, int steps,
                          bool obsOn, const std::string& chkDir,
                          const std::string& tracePath,
                          const std::string& metricsPath) {
    auto body = [&](vmpi::Comm* comm) {
        core::Solver solver(cfg, comm);
        std::unique_ptr<obs::RunObs> ro;
        if (obsOn) {
            ro = std::make_unique<obs::RunObs>(
                obs::RunObsOptions{tracePath, metricsPath, /*every=*/4});
            if (!comm || comm->isRoot())
                ro->openMetricsCsv(/*restart=*/false, 0);
        }
        solver.initialize();
        if (ro) ro->attach(solver);
        solver.run(steps);
        if (ro) ro->finish(solver);
        io::saveCheckpoint(chkDir, solver);
    };
    if (ranks == 1)
        body(nullptr);
    else
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });
}

TEST(ObsNonPerturbation, CheckpointBitwiseIdenticalWithTelemetryOn) {
    TempDir dir("nonperturb");
    const int steps = 8;

    for (const int ranks : {1, 2}) {
        for (const int threads : {1, 2}) {
            SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                         " threads=" + std::to_string(threads));
            const std::string tag =
                "r" + std::to_string(ranks) + "_t" + std::to_string(threads);
            // Uninstrumented reference at the same decomposition (the
            // checkpoint layout is per-rank; cross-rank invariance is the
            // other suites' contract — this one pins obs-on == obs-off).
            const std::string ref = (dir.path / ("ref_" + tag)).string();
            runMaybeInstrumented(obsConfig(ranks, threads), ranks, steps,
                                 /*obsOn=*/false, ref, "", "");
            const std::string chk = (dir.path / ("chk_" + tag)).string();
            const std::string trace =
                (dir.path / ("trace_" + tag + ".json")).string();
            const std::string metrics =
                (dir.path / ("metrics_" + tag + ".csv")).string();

            runMaybeInstrumented(obsConfig(ranks, threads), ranks, steps,
                                 /*obsOn=*/true, chk, trace, metrics);

            const io::CheckpointDiff d = io::compareCheckpoints(ref, chk);
            EXPECT_TRUE(d.identical)
                << "telemetry perturbed the run: " << d.message();

            // The artifacts the run produced must themselves be sound.
            const obs::TraceCheck c = obs::validateTraceFile(trace);
            EXPECT_TRUE(c.ok) << c.message;
            EXPECT_EQ(c.ranks, ranks);
            EXPECT_TRUE(std::find(c.spanNames.begin(), c.spanNames.end(),
                                  "step") != c.spanNames.end());
            EXPECT_TRUE(std::find(c.spanNames.begin(), c.spanNames.end(),
                                  "phi-sweep") != c.spanNames.end());

            const io::CsvSeries s = io::readCsvSeries(metrics);
            EXPECT_EQ(s.schema, "# tpf-metrics v1");
            ASSERT_GE(s.rows.size(), 3u); // steps 0, 4, 8
            EXPECT_EQ(s.stepOf(0), 0);
            EXPECT_EQ(s.stepOf(s.rows.size() - 1), steps);
            for (std::size_t i = 1; i < s.rows.size(); ++i)
                EXPECT_GT(s.stepOf(i), s.stepOf(i - 1));
        }
    }
}

TEST(ObsTimingStats, GatherFillsCrossRankLoadFigures) {
    // Single rank: avg == max == the rank's own total, spike from timings.
    {
        core::Solver solver(obsConfig(1, 1));
        solver.initialize();
        solver.run(2);
        const auto stats = obs::gatherTimingStats(solver);
        ASSERT_FALSE(stats.empty());
        bool sawPhi = false;
        for (const auto& f : stats) {
            EXPECT_EQ(f.avgSeconds, f.maxSeconds) << f.name;
            EXPECT_EQ(f.maxRank, 0) << f.name;
            if (f.name == "phi-sweep") {
                sawPhi = true;
                EXPECT_GT(f.maxSeconds, 0.0);
                EXPECT_GT(f.calls, 0);
            }
        }
        EXPECT_TRUE(sawPhi);
    }

    // Two ranks: the collective fills avg/max on the root; the imbalance
    // figure max/avg is finite and >= 1.
    vmpi::runParallel(2, [&](vmpi::Comm& comm) {
        core::Solver solver(obsConfig(2, 1), &comm);
        solver.initialize();
        solver.run(2);
        const auto stats = obs::gatherTimingStats(solver);
        if (comm.isRoot()) {
            ASSERT_FALSE(stats.empty());
            for (const auto& f : stats) {
                if (f.avgSeconds > 0.0) {
                    EXPECT_GE(f.maxSeconds / f.avgSeconds, 1.0) << f.name;
                }
                EXPECT_GE(f.maxRank, 0);
                EXPECT_LT(f.maxRank, 2);
            }
        }
    });
}

} // namespace
} // namespace tpf
