/// Tests for domain-boundary handling (Dirichlet / Neumann ghost fills and
/// their staged composition with the periodic exchange), the frozen
/// temperature ansatz and the Tz cache.

#include <gtest/gtest.h>

#include "comm/exchange.h"
#include "core/boundary.h"
#include "core/temperature.h"
#include "thermo/agalcu.h"

namespace tpf::core {
namespace {

TEST(Boundary, NeumannMirrorsInteriorCell) {
    auto bf = BlockForest::createUniform({8, 8, 8}, {8, 8, 8},
                                         {true, true, false}, 1);
    Field<double> f(8, 8, 8, 2, 1, Layout::fzyx);
    forEachCell(f.interior(), [&](int x, int y, int z) {
        f(x, y, z, 0) = 100.0 + z;
        f(x, y, z, 1) = 200.0 + z;
    });

    FieldBCs bc;
    bc.kind[4] = BCType::Neumann;
    applyBoundaries(f, bf, 0, bc);

    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x) {
            EXPECT_EQ(f(x, y, -1, 0), f(x, y, 0, 0));
            EXPECT_EQ(f(x, y, -1, 1), f(x, y, 0, 1));
        }
}

TEST(Boundary, DirichletPinsFaceValue) {
    auto bf = BlockForest::createUniform({8, 8, 8}, {8, 8, 8},
                                         {true, true, false}, 1);
    Field<double> f(8, 8, 8, 1, 1, Layout::fzyx);
    f.fill(3.0);

    FieldBCs bc;
    bc.kind[5] = BCType::Dirichlet;
    bc.value[5] = {5.0};
    applyBoundaries(f, bf, 0, bc);

    // ghost = 2 v - interior so the face-centered average equals v.
    EXPECT_EQ(f(4, 4, 8, 0), 2.0 * 5.0 - 3.0);
    EXPECT_DOUBLE_EQ(0.5 * (f(4, 4, 8, 0) + f(4, 4, 7, 0)), 5.0);
}

TEST(Boundary, OnlyDomainBoundaryBlocksAreTouched) {
    auto bf = BlockForest::createUniform({8, 8, 16}, {8, 8, 8},
                                         {true, true, false}, 1);
    Field<double> lower(8, 8, 8, 1, 1, Layout::fzyx);
    Field<double> upper(8, 8, 8, 1, 1, Layout::fzyx);
    lower.fill(1.0);
    upper.fill(1.0);
    // Mark ghost layers to detect modification.
    lower(4, 4, 8, 0) = -7.0; // top ghost of the lower block: interior face
    upper(4, 4, -1, 0) = -7.0;

    FieldBCs bc;
    bc.kind[4] = BCType::Neumann;
    bc.kind[5] = BCType::Dirichlet;
    bc.value[5] = {2.0};
    applyBoundaries(lower, bf, 0, bc);
    applyBoundaries(upper, bf, 1, bc);

    EXPECT_EQ(lower(4, 4, 8, 0), -7.0) << "interior face must not be filled";
    EXPECT_EQ(upper(4, 4, -1, 0), -7.0);
    EXPECT_EQ(lower(4, 4, -1, 0), lower(4, 4, 0, 0)); // Neumann bottom
    EXPECT_EQ(upper(4, 4, 8, 0), 2.0 * 2.0 - 1.0);    // Dirichlet top
}

TEST(Boundary, StagedApplicationCoversEdgeGhostsAfterExchange) {
    // x periodic (exchange with edge offsets), z Dirichlet: the edge ghost
    // region (x-ghost, z-ghost) must be filled consistently — the z pass runs
    // over the x-extended range and reads exchange-filled x-ghosts.
    auto bf = BlockForest::createUniform({8, 8, 8}, {8, 8, 8},
                                         {true, true, false}, 1);
    Field<double> f(8, 8, 8, 1, 1, Layout::fzyx);
    forEachCell(f.interior(), [&](int x, int y, int z) {
        f(x, y, z, 0) = x + 10.0 * y + 100.0 * z;
    });

    GhostExchange ex(bf, nullptr, StencilKind::D3C19, 0);
    ex.registerField(0, &f);
    ex.communicate();

    FieldBCs bc;
    bc.kind[4] = BCType::Neumann;
    bc.kind[5] = BCType::Neumann;
    applyBoundaries(f, bf, 0, bc);

    // Edge ghost (x=-1, z=8): Neumann in z of the periodic x-ghost column.
    EXPECT_EQ(f(-1, 3, 8, 0), f(-1, 3, 7, 0));
    EXPECT_EQ(f(-1, 3, 7, 0), 7.0 + 30.0 + 700.0); // wrapped x = 7
    // Edge ghost (x=8, z=-1).
    EXPECT_EQ(f(8, 5, -1, 0), f(8, 5, 0, 0));
    EXPECT_EQ(f(8, 5, 0, 0), 0.0 + 50.0 + 0.0); // wrapped x = 0
}

// --- frozen temperature / Tz cache ---

TEST(Temperature, GradientAndVelocityDefineTheField) {
    TemperatureParams p;
    p.TE = 700.0;
    p.gradient = 2.0;
    p.velocity = 0.5;
    p.zEut0 = 10.0;
    FrozenTemperature T(p);

    // At t=0 the eutectic isotherm sits at cell-center z = 9.5.
    EXPECT_NEAR(T.atCell(9, 0.0, 0.0), 700.0 - 2.0 * 0.5, 1e-12);
    EXPECT_NEAR(T.atCell(10, 0.0, 0.0), 700.0 + 2.0 * 0.5, 1e-12);
    // Below: colder; above: hotter.
    EXPECT_LT(T.atCell(0, 0.0, 0.0), 700.0);
    EXPECT_GT(T.atCell(20, 0.0, 0.0), 700.0);
    // The isotherm moves up with velocity v.
    EXPECT_LT(T.atCell(10, 4.0, 0.0), T.atCell(10, 0.0, 0.0));
    EXPECT_NEAR(T.eutecticIsothermZ(4.0, 0.0), 10.0 + 0.5 * 4.0 - 0.5, 1e-12);
    // dT/dt = -G v.
    EXPECT_DOUBLE_EQ(T.dTdt(), -1.0);
    // The window offset shifts the frame.
    EXPECT_DOUBLE_EQ(T.atCell(10, 0.0, 3.0), T.atCell(13, 0.0, 0.0));
}

TEST(Temperature, TzCacheMatchesDirectEvaluation) {
    const auto sys = thermo::makeAgAlCu();
    ModelParams prm = ModelParams::defaults();
    prm.temp.gradient = 0.7;
    const auto mc = ModelConsts::build(prm, sys);
    FrozenTemperature T(prm.temp);

    TzCache tz;
    tz.build(mc, T, /*originZ=*/32, /*nz=*/16, /*t=*/2.5, /*woff=*/4.0);
    for (int z = -1; z <= 16; ++z) {
        const SliceThermo direct =
            computeSliceThermo(mc, T.atCell(32 + z, 2.5, 4.0));
        const SliceThermo& cached = tz.at(z);
        EXPECT_EQ(cached.T, direct.T);
        EXPECT_EQ(cached.Tt, direct.Tt);
        for (int a = 0; a < N; ++a) {
            EXPECT_EQ(cached.xix[a], direct.xix[a]);
            EXPECT_EQ(cached.xiy[a], direct.xiy[a]);
            EXPECT_EQ(cached.om[a], direct.om[a]);
        }
    }
}

TEST(Temperature, SliceThermoIsLinearInT) {
    const auto sys = thermo::makeAgAlCu();
    const auto mc = ModelConsts::build(ModelParams::defaults(), sys);
    const SliceThermo a = computeSliceThermo(mc, 770.0);
    const SliceThermo b = computeSliceThermo(mc, 774.0);
    const SliceThermo mid = computeSliceThermo(mc, 772.0);
    for (int ph = 0; ph < N; ++ph) {
        EXPECT_NEAR(0.5 * (a.xix[ph] + b.xix[ph]), mid.xix[ph], 1e-15);
        EXPECT_NEAR(0.5 * (a.om[ph] + b.om[ph]), mid.om[ph], 1e-15);
    }
}

} // namespace
} // namespace tpf::core
