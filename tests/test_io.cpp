/// Tests for checkpointing (single-precision, per-rank files, restore
/// continuation) and the file writers.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "io/checkpoint.h"
#include "io/writers.h"

namespace tpf::io {
namespace {

namespace fs = std::filesystem;

core::SolverConfig testConfig() {
    core::SolverConfig cfg;
    cfg.globalCells = {24, 24, 32};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.zEut0 = 16.0;
    cfg.model.temp.velocity = 0.02;
    cfg.init.fillHeight = 8;
    return cfg;
}

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("tpf_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter()));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    static int counter() {
        static int c = 0;
        return c++;
    }
};

TEST(Checkpoint, RoundTripPreservesStateToFloatPrecision) {
    TempDir dir;
    core::Solver a(testConfig());
    a.initialize();
    a.run(40);
    saveCheckpoint(dir.path.string(), a);

    core::Solver b(testConfig());
    b.initialize(); // different state before load
    loadCheckpoint(dir.path.string(), b);

    EXPECT_EQ(b.time(), a.time());
    EXPECT_EQ(b.windowOffsetCells(), a.windowOffsetCells());

    auto& ba = *a.localBlocks().front();
    auto& bb = *b.localBlocks().front();
    double maxDiff = 0.0;
    forEachCell(ba.phiSrc.interior(), [&](int x, int y, int z) {
        for (int f = 0; f < core::N; ++f)
            maxDiff = std::max(maxDiff, std::abs(ba.phiSrc(x, y, z, f) -
                                                 bb.phiSrc(x, y, z, f)));
        for (int f = 0; f < core::KC; ++f)
            maxDiff = std::max(maxDiff, std::abs(ba.muSrc(x, y, z, f) -
                                                 bb.muSrc(x, y, z, f)));
    });
    // Single-precision storage: values match to float epsilon.
    EXPECT_LT(maxDiff, 1e-6);
    EXPECT_GT(maxDiff, 0.0) << "float rounding should be visible";
}

TEST(Checkpoint, RestartContinuesTheSimulation) {
    TempDir dir;
    // Reference: 60 uninterrupted steps.
    core::Solver ref(testConfig());
    ref.initialize();
    ref.run(60);
    const auto refFr = ref.phaseFractions();

    // Interrupted: 30 steps, checkpoint, restore, 30 more.
    core::Solver first(testConfig());
    first.initialize();
    first.run(30);
    saveCheckpoint(dir.path.string(), first);

    core::Solver second(testConfig());
    second.initialize();
    loadCheckpoint(dir.path.string(), second);
    second.run(30);

    EXPECT_NEAR(second.time(), ref.time(), 1e-12);
    const auto fr = second.phaseFractions();
    // The float32 rounding at the checkpoint perturbs the state slightly;
    // integral quantities must still agree closely.
    for (int a = 0; a < core::N; ++a)
        EXPECT_NEAR(fr[static_cast<std::size_t>(a)],
                    refFr[static_cast<std::size_t>(a)], 1e-4);
}

TEST(Checkpoint, MetaReadback) {
    TempDir dir;
    core::Solver s(testConfig());
    s.initialize();
    s.run(5);
    saveCheckpoint(dir.path.string(), s);

    const CheckpointMeta meta = readCheckpointMeta(dir.path.string());
    EXPECT_EQ(meta.time, s.time());
    EXPECT_EQ(meta.globalCells, (Int3{24, 24, 32}));
    EXPECT_EQ(meta.numRanks, 1);
}

TEST(Checkpoint, MultiRankSaveAndLoad) {
    TempDir dir;
    auto cfg = testConfig();
    cfg.blockSize = {24, 24, 8};
    std::array<double, core::N> savedFr{};
    vmpi::runParallel(4, [&](vmpi::Comm& comm) {
        core::Solver s(cfg, &comm);
        s.initialize();
        s.run(20);
        const auto fr = s.phaseFractions();
        if (comm.isRoot()) savedFr = fr;
        saveCheckpoint(dir.path.string(), s);
        comm.barrier();

        core::Solver t(cfg, &comm);
        t.initialize();
        loadCheckpoint(dir.path.string(), t);
        const auto fr2 = t.phaseFractions();
        for (int a = 0; a < core::N; ++a)
            EXPECT_NEAR(fr2[static_cast<std::size_t>(a)],
                        fr[static_cast<std::size_t>(a)], 1e-6);
    });
    // Four rank files must exist.
    for (int r = 0; r < 4; ++r)
        EXPECT_TRUE(fs::exists(dir.path / ("rank_" + std::to_string(r) +
                                           ".tpfchk")));
}

TEST(Checkpoint, SizeIsSinglePrecision) {
    TempDir dir;
    core::Solver s(testConfig());
    s.initialize();
    saveCheckpoint(dir.path.string(), s);

    const auto expected = checkpointBytes(s);
    const auto actual = fs::file_size(dir.path / "rank_0.tpfchk");
    EXPECT_EQ(actual, expected);
    // 6 floats per cell — half of the 6 doubles of the live state.
    const std::size_t cells = 24 * 24 * 32;
    EXPECT_NEAR(static_cast<double>(actual),
                static_cast<double>(cells * 6 * sizeof(float)),
                1024.0);
}

// --- writers ---

TriMesh unitTriangle() {
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
    m.triangles = {{0, 1, 2}};
    return m;
}

TEST(Writers, ObjRoundTrip) {
    TempDir dir;
    TriMesh m = unitTriangle();
    m.vertices.push_back({0.25, 0.25, 1.5});
    m.triangles.push_back({0, 1, 3});

    const std::string path = (dir.path / "mesh.obj").string();
    writeObj(path, m);
    const TriMesh back = readObj(path);

    ASSERT_EQ(back.numVertices(), m.numVertices());
    ASSERT_EQ(back.numTriangles(), m.numTriangles());
    for (std::size_t i = 0; i < m.vertices.size(); ++i) {
        EXPECT_NEAR(back.vertices[i].x, m.vertices[i].x, 1e-7);
        EXPECT_NEAR(back.vertices[i].z, m.vertices[i].z, 1e-7);
    }
    EXPECT_EQ(back.triangles, m.triangles);
}

TEST(Writers, StlBinaryHasCorrectSize) {
    TempDir dir;
    const TriMesh m = unitTriangle();
    const std::string path = (dir.path / "mesh.stl").string();
    writeStlBinary(path, m);
    // 80-byte header + 4-byte count + 50 bytes per triangle.
    EXPECT_EQ(fs::file_size(path), 80u + 4u + 50u * m.numTriangles());
}

TEST(Writers, VtkFieldContainsHeaderAndData) {
    TempDir dir;
    Field<double> f(4, 3, 2, 2, 1, Layout::fzyx);
    f.fill(1.25);
    const std::string path = (dir.path / "field.vtk").string();
    writeVtkField(path, f, "phi");

    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("STRUCTURED_POINTS"), std::string::npos);
    EXPECT_NE(content.find("DIMENSIONS 4 3 2"), std::string::npos);
    EXPECT_NE(content.find("SCALARS phi0"), std::string::npos);
    EXPECT_NE(content.find("SCALARS phi1"), std::string::npos);
    EXPECT_NE(content.find("1.25"), std::string::npos);
}

} // namespace
} // namespace tpf::io
