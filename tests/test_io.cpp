/// Tests for checkpointing (format v2: versioned header, per-field CRC32,
/// exact float64 restart, optional float32 mode, atomic publication) and the
/// file writers.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "io/checkpoint.h"
#include "io/csv_writer.h"
#include "io/writers.h"

namespace tpf::io {
namespace {

namespace fs = std::filesystem;

core::SolverConfig testConfig() {
    core::SolverConfig cfg;
    cfg.globalCells = {24, 24, 32};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.zEut0 = 16.0;
    cfg.model.temp.velocity = 0.02;
    cfg.init.fillHeight = 8;
    return cfg;
}

struct TempDir {
    fs::path path;
    TempDir() {
        path = fs::temp_directory_path() /
               ("tpf_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter()));
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
    static int counter() {
        static int c = 0;
        return c++;
    }
};

/// Max |difference| over phi and mu interiors of two solvers' first blocks.
double stateDiff(core::Solver& a, core::Solver& b) {
    auto& ba = *a.localBlocks().front();
    auto& bb = *b.localBlocks().front();
    double maxDiff = 0.0;
    forEachCell(ba.phiSrc.interior(), [&](int x, int y, int z) {
        for (int f = 0; f < core::N; ++f)
            maxDiff = std::max(maxDiff, std::abs(ba.phiSrc(x, y, z, f) -
                                                 bb.phiSrc(x, y, z, f)));
        for (int f = 0; f < core::KC; ++f)
            maxDiff = std::max(maxDiff, std::abs(ba.muSrc(x, y, z, f) -
                                                 bb.muSrc(x, y, z, f)));
    });
    return maxDiff;
}

TEST(Checkpoint, RoundTripIsExactInFloat64) {
    TempDir dir;
    core::Solver a(testConfig());
    a.initialize();
    a.run(40);
    saveCheckpoint(dir.path.string(), a);

    core::Solver b(testConfig());
    b.initialize(); // different state before load
    loadCheckpoint(dir.path.string(), b);

    EXPECT_EQ(b.time(), a.time());
    EXPECT_EQ(b.windowOffsetCells(), a.windowOffsetCells());
    EXPECT_EQ(b.stepsDone(), a.stepsDone());
    // Default precision is float64: the restored state is bitwise identical.
    EXPECT_EQ(stateDiff(a, b), 0.0);
}

TEST(Checkpoint, Float32ModeRoundsToFloatPrecision) {
    TempDir dir;
    core::Solver a(testConfig());
    a.initialize();
    a.run(40);
    CheckpointOptions opts;
    opts.precision = CheckpointPrecision::Float32;
    saveCheckpoint(dir.path.string(), a, opts);

    core::Solver b(testConfig());
    b.initialize();
    loadCheckpoint(dir.path.string(), b);

    const double maxDiff = stateDiff(a, b);
    // Single-precision storage: values match to float epsilon only.
    EXPECT_LT(maxDiff, 1e-6);
    EXPECT_GT(maxDiff, 0.0) << "float rounding should be visible";
}

TEST(Checkpoint, RestartContinuesTheSimulationExactly) {
    TempDir dir;
    // Reference: 60 uninterrupted steps.
    core::Solver ref(testConfig());
    ref.initialize();
    ref.run(60);

    // Interrupted: 30 steps, checkpoint, restore, 30 more.
    core::Solver first(testConfig());
    first.initialize();
    first.run(30);
    saveCheckpoint(dir.path.string(), first);

    core::Solver second(testConfig());
    loadCheckpoint(dir.path.string(), second);
    second.run(30);

    // The float64 checkpoint makes the restarted trajectory bitwise equal to
    // the uninterrupted one (tests/test_restart.cpp covers ranks x threads).
    EXPECT_EQ(second.time(), ref.time());
    EXPECT_EQ(second.stepsDone(), ref.stepsDone());
    EXPECT_EQ(stateDiff(ref, second), 0.0);
}

TEST(Checkpoint, MetaReadback) {
    TempDir dir;
    core::Solver s(testConfig());
    s.initialize();
    s.run(5);
    saveCheckpoint(dir.path.string(), s);

    const CheckpointMeta meta = readCheckpointMeta(dir.path.string());
    EXPECT_EQ(meta.formatVersion, kCheckpointFormatVersion);
    EXPECT_EQ(meta.precisionBytes, 8);
    EXPECT_EQ(meta.step, 5);
    EXPECT_EQ(meta.time, s.time());
    EXPECT_EQ(meta.globalCells, (Int3{24, 24, 32}));
    EXPECT_EQ(meta.blockCells, (Int3{24, 24, 32}));
    EXPECT_EQ(meta.numRanks, 1);
}

TEST(Checkpoint, MultiRankSaveAndLoad) {
    TempDir dir;
    auto cfg = testConfig();
    cfg.blockSize = {24, 24, 8};
    vmpi::runParallel(4, [&](vmpi::Comm& comm) {
        core::Solver s(cfg, &comm);
        s.initialize();
        s.run(20);
        const auto fr = s.phaseFractions();
        saveCheckpoint(dir.path.string(), s);

        core::Solver t(cfg, &comm);
        t.initialize();
        loadCheckpoint(dir.path.string(), t);
        const auto fr2 = t.phaseFractions();
        // Exact restore + deterministic rank-ordered reductions: the
        // diagnostics agree bitwise, not just to a tolerance.
        for (int a = 0; a < core::N; ++a)
            EXPECT_EQ(fr2[static_cast<std::size_t>(a)],
                      fr[static_cast<std::size_t>(a)]);
    });
    // Four rank files must exist.
    for (int r = 0; r < 4; ++r)
        EXPECT_TRUE(fs::exists(dir.path / ("rank_" + std::to_string(r) +
                                           ".tpfchk")));
}

TEST(Checkpoint, FileSizeMatchesPrecision) {
    TempDir dir64, dir32;
    core::Solver s(testConfig());
    s.initialize();

    saveCheckpoint(dir64.path.string(), s);
    EXPECT_EQ(fs::file_size(dir64.path / "rank_0.tpfchk"),
              checkpointBytes(s));

    CheckpointOptions opts;
    opts.precision = CheckpointPrecision::Float32;
    saveCheckpoint(dir32.path.string(), s, opts);
    const auto actual32 = fs::file_size(dir32.path / "rank_0.tpfchk");
    EXPECT_EQ(actual32, checkpointBytes(s, CheckpointPrecision::Float32));
    // 6 floats per cell — half of the 6 doubles of the live state (paper
    // §3.2's I/O reduction), modulo the fixed headers.
    const std::size_t cells = 24 * 24 * 32;
    EXPECT_NEAR(static_cast<double>(actual32),
                static_cast<double>(cells * 6 * sizeof(float)), 1024.0);
}

TEST(Checkpoint, CorruptedByteIsDetectedAndNamesTheField) {
    TempDir dir;
    core::Solver s(testConfig());
    s.initialize();
    s.run(5);
    saveCheckpoint(dir.path.string(), s);

    // Flip one byte near the end of the rank file: inside the mu payload
    // (the last field written).
    const fs::path file = dir.path / "rank_0.tpfchk";
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(-17, std::ios::end);
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5A);
        f.seekp(-17, std::ios::end);
        f.write(&byte, 1);
    }

    core::Solver t(testConfig());
    try {
        loadCheckpoint(dir.path.string(), t);
        FAIL() << "corrupted checkpoint must not load";
    } catch (const CheckpointError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
        EXPECT_NE(what.find("'mu'"), std::string::npos)
            << "the offending field must be named: " << what;
    }
}

TEST(Checkpoint, CorruptedRankCountCannotFakeAnIdenticalDiff) {
    // The header is not CRC-protected: a zeroed numRanks must be rejected
    // as corrupt, not shrink compareCheckpoints to an empty (and therefore
    // "identical") comparison.
    TempDir dir;
    core::Solver s(testConfig());
    s.initialize();
    saveCheckpoint(dir.path.string(), s);

    const fs::path file = dir.path / "rank_0.tpfchk";
    {
        std::fstream f(file, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(72); // FileHeader::numRanks
        const std::int32_t zero = 0;
        f.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
    }

    const CheckpointDiff d =
        compareCheckpoints(dir.path.string(), dir.path.string());
    EXPECT_FALSE(d.identical);
    EXPECT_NE(d.structural.find("corrupt checkpoint header"),
              std::string::npos)
        << d.message();
}

TEST(Checkpoint, TruncatedFileIsDetected) {
    TempDir dir;
    core::Solver s(testConfig());
    s.initialize();
    saveCheckpoint(dir.path.string(), s);

    const fs::path file = dir.path / "rank_0.tpfchk";
    fs::resize_file(file, fs::file_size(file) / 2);

    core::Solver t(testConfig());
    try {
        loadCheckpoint(dir.path.string(), t);
        FAIL() << "truncated checkpoint must not load";
    } catch (const CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
            << e.what();
    }
}

TEST(Checkpoint, SaveIsAtomicAndCleansStaleStaging) {
    TempDir dir;
    const std::string target = (dir.path / "chk").string();

    // Simulate the debris of a killed save: a stale staging directory.
    fs::create_directories(target + ".tmp");
    {
        std::ofstream junk(target + ".tmp/rank_0.tpfchk");
        junk << "half-written garbage";
    }

    core::Solver s(testConfig());
    s.initialize();
    s.run(3);
    saveCheckpoint(target, s);

    // The staging directory was consumed by the rename; the published
    // checkpoint is complete and loadable.
    EXPECT_FALSE(fs::exists(target + ".tmp"));
    core::Solver t(testConfig());
    loadCheckpoint(target, t);
    EXPECT_EQ(t.stepsDone(), 3);

    // Overwriting an existing checkpoint re-publishes atomically: neither
    // staging nor the moved-aside previous checkpoint is left behind.
    s.run(2);
    saveCheckpoint(target, s);
    EXPECT_FALSE(fs::exists(target + ".tmp"));
    EXPECT_FALSE(fs::exists(target + ".old"));
    core::Solver u(testConfig());
    loadCheckpoint(target, u);
    EXPECT_EQ(u.stepsDone(), 5);
}

TEST(Checkpoint, CompareCheckpointsReportsFirstDivergentCell) {
    TempDir dirA, dirB;
    core::Solver s(testConfig());
    s.initialize();
    s.run(5);
    saveCheckpoint(dirA.path.string(), s);

    // Perturb exactly one phi value (same clocks, same geometry) and save
    // again: the diff must point at that field, component and cell.
    auto& blk = *s.localBlocks().front();
    blk.phiSrc(3, 7, 11, 2) += 1e-9;
    saveCheckpoint(dirB.path.string(), s);

    const CheckpointDiff d =
        compareCheckpoints(dirA.path.string(), dirB.path.string());
    EXPECT_FALSE(d.identical);
    EXPECT_TRUE(d.structural.empty()) << d.structural;
    EXPECT_EQ(d.field, "phi");
    EXPECT_EQ(d.component, 2);
    EXPECT_EQ(d.cell, (Int3{3, 7, 11}));
    EXPECT_EQ(d.differingValues, 1);
    EXPECT_NE(d.message().find("'phi'"), std::string::npos) << d.message();

    const CheckpointDiff same =
        compareCheckpoints(dirA.path.string(), dirA.path.string());
    EXPECT_TRUE(same.identical) << same.message();
}

// --- writers ---

TriMesh unitTriangle() {
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
    m.triangles = {{0, 1, 2}};
    return m;
}

TEST(Writers, ObjRoundTrip) {
    TempDir dir;
    TriMesh m = unitTriangle();
    m.vertices.push_back({0.25, 0.25, 1.5});
    m.triangles.push_back({0, 1, 3});

    const std::string path = (dir.path / "mesh.obj").string();
    writeObj(path, m);
    const TriMesh back = readObj(path);

    ASSERT_EQ(back.numVertices(), m.numVertices());
    ASSERT_EQ(back.numTriangles(), m.numTriangles());
    for (std::size_t i = 0; i < m.vertices.size(); ++i) {
        EXPECT_NEAR(back.vertices[i].x, m.vertices[i].x, 1e-7);
        EXPECT_NEAR(back.vertices[i].z, m.vertices[i].z, 1e-7);
    }
    EXPECT_EQ(back.triangles, m.triangles);
}

TEST(Writers, StlBinaryHasCorrectSize) {
    TempDir dir;
    const TriMesh m = unitTriangle();
    const std::string path = (dir.path / "mesh.stl").string();
    writeStlBinary(path, m);
    // 80-byte header + 4-byte count + 50 bytes per triangle.
    EXPECT_EQ(fs::file_size(path), 80u + 4u + 50u * m.numTriangles());
}

TEST(Writers, VtkFieldContainsHeaderAndData) {
    TempDir dir;
    Field<double> f(4, 3, 2, 2, 1, Layout::fzyx);
    f.fill(1.25);
    const std::string path = (dir.path / "field.vtk").string();
    writeVtkField(path, f, "phi");

    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("STRUCTURED_POINTS"), std::string::npos);
    EXPECT_NE(content.find("DIMENSIONS 4 3 2"), std::string::npos);
    EXPECT_NE(content.find("SCALARS phi0"), std::string::npos);
    EXPECT_NE(content.find("SCALARS phi1"), std::string::npos);
    EXPECT_NE(content.find("1.25"), std::string::npos);
}

// --- CSV time-series writer (the analysis pipeline's output format) ------

TEST(CsvWriter, CreateWriteReadRoundTrip) {
    TempDir dir;
    const std::string path = (dir.path / "series.csv").string();
    CsvWriter w;
    w.create(path, "tpf-analysis", 1, {"time", "front_z"});
    w.writeRow(0, {0.0, 4.0});
    w.writeRow(4, {0.04, 5.0});
    w.close();

    const CsvSeries s = readCsvSeries(path);
    EXPECT_EQ(s.schema, "# tpf-analysis v1");
    ASSERT_EQ(s.columns,
              (std::vector<std::string>{"step", "time", "front_z"}));
    ASSERT_EQ(s.rows.size(), 2u);
    EXPECT_EQ(s.stepOf(0), 0);
    EXPECT_EQ(s.stepOf(1), 4);
    EXPECT_EQ(s.rows[1][2], "5");
}

TEST(CsvWriter, ValuesRoundTripDoublesExactly) {
    TempDir dir;
    const std::string path = (dir.path / "series.csv").string();
    const double v = 0.1 + 0.2; // 0.30000000000000004
    CsvWriter w;
    w.create(path, "tpf-analysis", 1, {"v"});
    w.writeRow(0, {v});
    w.close();

    const CsvSeries s = readCsvSeries(path);
    EXPECT_EQ(std::stod(s.rows[0][1]), v) << s.rows[0][1];
}

TEST(CsvWriter, ResumeKeepsRowsUpToTheCheckpointStep) {
    TempDir dir;
    const std::string path = (dir.path / "series.csv").string();
    {
        CsvWriter w;
        w.create(path, "tpf-analysis", 1, {"v"});
        w.writeRow(0, {1.0});
        w.writeRow(4, {2.0});
        w.writeRow(8, {3.0}); // the run outlived its step-4 checkpoint
    }
    CsvWriter w;
    w.resume(path, "tpf-analysis", 1, {"v"}, /*lastStep=*/4);
    w.writeRow(8, {30.0}); // the continuation re-samples step 8
    w.close();

    const CsvSeries s = readCsvSeries(path);
    ASSERT_EQ(s.rows.size(), 3u);
    EXPECT_EQ(s.rows[1][1], "2");
    EXPECT_EQ(s.rows[2][1], "30");
}

TEST(CsvWriter, ResumeRejectsSchemaAndColumnMismatches) {
    TempDir dir;
    const std::string path = (dir.path / "series.csv").string();
    {
        CsvWriter w;
        w.create(path, "tpf-analysis", 1, {"v"});
        w.writeRow(0, {1.0});
    }
    CsvWriter w;
    EXPECT_THROW(w.resume(path, "tpf-analysis", 2, {"v"}, 0), CsvError);
    EXPECT_THROW(w.resume(path, "tpf-analysis", 1, {"other"}, 0), CsvError);
}

TEST(CsvWriter, ResumeOfMissingFileStartsAFreshSeries) {
    TempDir dir;
    const std::string path = (dir.path / "series.csv").string();
    CsvWriter w;
    w.resume(path, "tpf-analysis", 1, {"v"}, /*lastStep=*/8);
    w.writeRow(12, {1.0});
    w.close();
    const CsvSeries s = readCsvSeries(path);
    ASSERT_EQ(s.rows.size(), 1u);
    EXPECT_EQ(s.stepOf(0), 12);
}

TEST(CsvWriter, CompareSeriesReportsStructuralMismatches) {
    TempDir dir;
    const std::string a = (dir.path / "a.csv").string();
    const std::string b = (dir.path / "b.csv").string();
    {
        CsvWriter w;
        w.create(a, "tpf-analysis", 1, {"v"});
        w.writeRow(0, {1.0});
        CsvWriter w2;
        w2.create(b, "tpf-analysis", 1, {"v"});
        w2.writeRow(0, {1.0});
        w2.writeRow(4, {2.0});
    }
    const CsvDiff d = compareCsvSeries(a, b);
    EXPECT_FALSE(d.identical);
    EXPECT_NE(d.message.find("row count mismatch"), std::string::npos)
        << d.message;

    const CsvDiff same = compareCsvSeries(a, a);
    EXPECT_TRUE(same.identical);
}

TEST(CsvWriter, ReaderRejectsMalformedFiles) {
    TempDir dir;
    const std::string path = (dir.path / "bad.csv").string();
    {
        std::ofstream out(path);
        out << "step,v\n0,1\n"; // no schema line
    }
    EXPECT_THROW(readCsvSeries(path), CsvError);
    {
        std::ofstream out(path);
        out << "# tpf-analysis v1\nstep,v\n0,1,2\n"; // ragged row
    }
    EXPECT_THROW(readCsvSeries(path), CsvError);
    EXPECT_THROW(readCsvSeries((dir.path / "absent.csv").string()), CsvError);
}

} // namespace
} // namespace tpf::io
