/// The exact-restart contract (the acceptance test of the restart pipeline):
/// running 2N steps produces a checkpoint bitwise identical to running N
/// steps, restarting from the checkpoint, and running N more — for every
/// ranks x threads combination, with the moving window active and the
/// production mu-overlap communication hiding on. Plus the failure paths:
/// a missing or truncated per-rank file must abort *all* ranks with a clear
/// message instead of hanging the healthy ranks in a collective.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <unistd.h>

#include "analysis/observers.h"
#include "core/solver.h"
#include "io/checkpoint.h"
#include "io/csv_writer.h"

namespace tpf {
namespace {

namespace fs = std::filesystem;

struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() / ("tpf_restart_" + tag + "_" +
                                            std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }
};

/// Window-heavy configuration: the solid fill starts far above the window
/// trigger, so the capped shift loop (at most NZ/4 cells per check) drains
/// it across several window checks — some before step N, some after — which
/// makes the restarted run replay shifts it did not itself initiate.
core::SolverConfig windowConfig(int ranks, int threads) {
    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 32};
    if (ranks > 1) cfg.blockSize = {16, 16, 32 / ranks};
    cfg.threads = threads;
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.velocity = 0.02;
    cfg.model.temp.zEut0 = 12.0;
    cfg.init.fillHeight = 26;
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.2; // trigger z = 6.4
    cfg.window.checkEvery = 8;
    cfg.overlapMu = true; // the paper's production communication hiding
    return cfg;
}

std::string readAll(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

/// Run the straight 2N-step reference and the N + restart + N split run with
/// identical configuration; both final checkpoints land in \p dir.
void runStraightAndSplit(const core::SolverConfig& cfg, int ranks, int steps2N,
                         const std::string& straightDir,
                         const std::string& midDir,
                         const std::string& splitDir,
                         double* windowOffsetAtMid,
                         double* windowOffsetAtEnd) {
    const int stepsN = steps2N / 2;
    auto body = [&](vmpi::Comm* comm) {
        // Straight reference: 2N uninterrupted steps.
        core::Solver a(cfg, comm);
        a.initialize();
        a.run(steps2N);
        io::saveCheckpoint(straightDir, a);
        if (!comm || comm->isRoot())
            *windowOffsetAtEnd = a.windowOffsetCells();

        // Split run: N steps, checkpoint, fresh solver restarts, N more.
        core::Solver b(cfg, comm);
        b.initialize();
        b.run(stepsN);
        io::saveCheckpoint(midDir, b);
        if (!comm || comm->isRoot())
            *windowOffsetAtMid = b.windowOffsetCells();

        core::Solver c(cfg, comm);
        io::loadCheckpoint(midDir, c);
        c.run(steps2N - stepsN);
        io::saveCheckpoint(splitDir, c);
    };
    if (ranks == 1)
        body(nullptr);
    else
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });
}

TEST(RestartEquivalence, SplitRunMatchesStraightRunBitwise) {
    for (const int ranks : {1, 2, 4}) {
        for (const int threads : {1, 4}) {
            SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                         " threads=" + std::to_string(threads));
            TempDir dir("eq_r" + std::to_string(ranks) + "_t" +
                        std::to_string(threads));
            const std::string straight = (dir.path / "straight").string();
            const std::string mid = (dir.path / "mid").string();
            const std::string split = (dir.path / "split").string();

            const core::SolverConfig cfg = windowConfig(ranks, threads);
            double offMid = -1.0, offEnd = -1.0;
            runStraightAndSplit(cfg, ranks, /*steps2N=*/24, straight, mid,
                                split, &offMid, &offEnd);

            // The scenario must actually exercise the window on both sides
            // of the restart, otherwise this test proves nothing.
            EXPECT_GT(offMid, 0.0) << "no window shift before the restart";
            EXPECT_GT(offEnd, offMid) << "no window shift after the restart";

            const io::CheckpointDiff d =
                io::compareCheckpoints(straight, split);
            EXPECT_TRUE(d.identical) << d.message();

            // Stronger than field equality: the files (headers, clocks,
            // CRCs, payloads) must be byte-for-byte identical.
            for (int r = 0; r < ranks; ++r) {
                const std::string name =
                    "rank_" + std::to_string(r) + ".tpfchk";
                EXPECT_EQ(readAll(fs::path(straight) / name),
                          readAll(fs::path(split) / name))
                    << "rank file " << name << " differs";
            }
        }
    }
}

TEST(RestartEquivalence, WindowStateSurvivesRoundTrip) {
    for (const int ranks : {1, 2, 4}) {
        SCOPED_TRACE("ranks=" + std::to_string(ranks));
        TempDir dir("win_r" + std::to_string(ranks));
        const std::string chk = (dir.path / "chk").string();

        const core::SolverConfig cfg = windowConfig(ranks, /*threads=*/1);
        double savedOffset = -1.0;
        int savedFront = -1;
        long long savedSteps = -1;
        double savedTime = -1.0;

        auto body = [&](vmpi::Comm* comm) {
            core::Solver s(cfg, comm);
            s.initialize();
            s.run(10); // window check at step 0 and 8 -> offset > 0
            const double off = s.windowOffsetCells();
            const int front = s.frontPosition();
            io::saveCheckpoint(chk, s);

            core::Solver t(cfg, comm);
            io::loadCheckpoint(chk, t);
            const double off2 = t.windowOffsetCells();
            const int front2 = t.frontPosition();
            if (!comm || comm->isRoot()) {
                savedOffset = off;
                savedFront = front;
                savedSteps = t.stepsDone();
                savedTime = t.time();
                EXPECT_EQ(off2, off);
                EXPECT_EQ(front2, front);
            }
        };
        if (ranks == 1)
            body(nullptr);
        else
            vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });

        EXPECT_GT(savedOffset, 0.0) << "scenario did not shift the window";
        EXPECT_GE(savedFront, 0);
        EXPECT_EQ(savedSteps, 10);
        EXPECT_NEAR(savedTime, 10 * cfg.model.dt, 1e-12);
    }
}

/// Analysis-series continuity across a restart: N steps + restart + N more
/// must produce byte-for-byte the CSV an uninterrupted 2N-step run writes —
/// the restarted pipeline resumes the existing file (dropping nothing here:
/// the checkpoint is the last sampled step) and the cadence stays on the
/// global step grid.
TEST(RestartEquivalence, AnalysisSeriesContinuesAcrossRestart) {
    for (const int ranks : {1, 2}) {
        SCOPED_TRACE("ranks=" + std::to_string(ranks));
        TempDir dir("series_r" + std::to_string(ranks));
        const std::string straightCsv = (dir.path / "straight.csv").string();
        const std::string splitCsv = (dir.path / "split.csv").string();
        const std::string mid = (dir.path / "mid").string();

        const core::SolverConfig cfg = windowConfig(ranks, /*threads=*/1);
        constexpr int kEvery = 4;
        constexpr int kStepsN = 12;

        auto makePipeline = [] {
            analysis::Pipeline p;
            for (const auto& n : analysis::observerNames())
                p.add(analysis::makeObserver(n));
            return p;
        };

        auto body = [&](vmpi::Comm* comm) {
            const bool isRoot = !comm || comm->isRoot();

            // Straight reference: 2N uninterrupted steps, one series.
            core::Solver a(cfg, comm);
            analysis::Pipeline pa = makePipeline();
            if (isRoot) pa.createCsv(straightCsv);
            pa.attach(a, kEvery);
            a.initialize();
            pa.sample(a, 0);
            a.run(2 * kStepsN);

            // Split run: N steps into the same kind of series, checkpoint,
            // then a fresh solver + pipeline resumes both.
            core::Solver b(cfg, comm);
            analysis::Pipeline pb = makePipeline();
            if (isRoot) pb.createCsv(splitCsv);
            pb.attach(b, kEvery);
            b.initialize();
            pb.sample(b, 0);
            b.run(kStepsN);
            io::saveCheckpoint(mid, b);

            core::Solver c(cfg, comm);
            io::loadCheckpoint(mid, c);
            analysis::Pipeline pc = makePipeline();
            if (isRoot) pc.resumeCsv(splitCsv, c.stepsDone());
            pc.attach(c, kEvery);
            c.run(kStepsN);
        };
        if (ranks == 1)
            body(nullptr);
        else
            vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });

        const io::CsvSeries straight = io::readCsvSeries(straightCsv);
        ASSERT_EQ(straight.rows.size(), 7u); // steps 0,4,...,24
        EXPECT_GT(std::stod(straight.rows.back()[2]), 0.0)
            << "no window shift during the run — the scenario is too tame";

        EXPECT_EQ(readAll(straightCsv), readAll(splitCsv))
            << io::compareCsvSeries(straightCsv, splitCsv).message;
    }
}

/// A rank whose file is missing must not leave the other ranks hanging in
/// the restore's collective ghost exchange: every rank detects the failure
/// via the load's status agreement and throws. runParallel then joins all
/// ranks and rethrows — the fact that this test *returns* (instead of
/// timing out) is the regression check for the collective-hang bug.
TEST(RestartEquivalence, MissingRankFileAbortsAllRanks) {
    TempDir dir("missing");
    const std::string chk = (dir.path / "chk").string();

    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 24};
    cfg.blockSize = {16, 16, 12};
    cfg.init.fillHeight = 8;
    cfg.model.temp.zEut0 = 10.0;

    vmpi::runParallel(2, [&](vmpi::Comm& comm) {
        core::Solver s(cfg, &comm);
        s.initialize();
        io::saveCheckpoint(chk, s);
    });
    fs::remove(fs::path(chk) / "rank_1.tpfchk");

    try {
        vmpi::runParallel(2, [&](vmpi::Comm& comm) {
            core::Solver s(cfg, &comm);
            io::loadCheckpoint(chk, s);
            FAIL() << "load with a missing rank file must throw on all ranks";
        });
        FAIL() << "runParallel must rethrow the collective CheckpointError";
    } catch (const io::CheckpointError& e) {
        const std::string what = e.what();
        // Depending on which rank's exception is rethrown first, the text is
        // either the local diagnosis or the collective notification.
        EXPECT_TRUE(what.find("cannot open") != std::string::npos ||
                    what.find("another rank") != std::string::npos)
            << what;
    }
}

TEST(RestartEquivalence, TruncatedRankFileAbortsAllRanks) {
    TempDir dir("truncated");
    const std::string chk = (dir.path / "chk").string();

    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 24};
    cfg.blockSize = {16, 16, 12};
    cfg.init.fillHeight = 8;
    cfg.model.temp.zEut0 = 10.0;

    vmpi::runParallel(2, [&](vmpi::Comm& comm) {
        core::Solver s(cfg, &comm);
        s.initialize();
        io::saveCheckpoint(chk, s);
    });
    const fs::path f1 = fs::path(chk) / "rank_1.tpfchk";
    fs::resize_file(f1, fs::file_size(f1) / 3);

    try {
        vmpi::runParallel(2, [&](vmpi::Comm& comm) {
            core::Solver s(cfg, &comm);
            io::loadCheckpoint(chk, s);
            FAIL() << "truncated rank file must abort the load on all ranks";
        });
        FAIL() << "runParallel must rethrow the collective CheckpointError";
    } catch (const io::CheckpointError& e) {
        const std::string what = e.what();
        EXPECT_TRUE(what.find("truncated") != std::string::npos ||
                    what.find("another rank") != std::string::npos)
            << what;
    }
}

} // namespace
} // namespace tpf
