// Seeded tpf-lint violations — one per rule. This file is NEVER compiled; it
// exists so the tpf_lint_negative ctest (and CI) can prove the linter still
// fails on a dirty tree: tpf-lint over this directory must exit nonzero with
// exactly these findings. test_lint.cpp pins the expected rule list.

#include <cassert>
#include <chrono>
#include <cmath>
#include <unordered_map>

double initProfile(double x) {
    return std::sin(x); // rule: fastmath (libm in src/core numerics)
}

double sumPhases(const std::unordered_map<int, double>& fractions) {
    double s = 0.0;
    for (const auto& [phase, f] : fractions) // rule: unordered-iteration
        s += f;
    return s;
}

double seedNoise() {
    const auto t = std::chrono::steady_clock::now(); // rule: nondeterminism
    (void)t;
    return 0.0;
}

struct Comm {
    bool isRoot() const { return true; }
    double allreduceSum(double v) { return v; }
    bool allAgree(bool ok) { return ok; }
};

struct Transport {
    int nextCollectiveSeq() { return 0; }
};

double reportFraction(Comm& comm, double local) {
    double global = 0.0;
    if (comm.isRoot()) {
        global = comm.allreduceSum(local); // rule: collective-in-conditional
    }
    return global;
}

bool agreeUnderRoot(Comm& comm, bool ok) {
    if (comm.isRoot())
        return comm.allAgree(ok); // rule: collective-in-conditional (allAgree)
    return ok;
}

int seqUnderRank(Transport* t, int myRank) {
    if (myRank == 0) {
        // rule: collective-in-conditional (Transport vtable spelling)
        return t->nextCollectiveSeq();
    }
    return -1;
}

void checkBounds(int i, int n) {
    assert(i >= 0 && i < n); // rule: assert-macro
}

double rawIntrinsicLoad(const double* p) {
    auto v = _mm256_loadu_pd(p); // rule: raw-intrinsics (bypasses simd::Vec4d)
    (void)v;
    return p[0];
}
