// Seeded tpf-lint violations for the obs-in-kernels rule. This file is NEVER
// compiled; it exists so the tpf_lint_negative ctest (and CI) can prove the
// linter still rejects telemetry hooks smuggled into a kernel target, and so
// test_lint.cpp can pin that exactly this rule — and no other — fires here.

#include "obs/trace.h" // rule: obs-in-kernels (obs include in a kernel TU)

void sweepSlab(double* p, int n) {
    TPF_SPAN("slab-inner"); // rule: obs-in-kernels (span macro per call)
    for (int i = 0; i < n; ++i) {
        obs::threadTrace(); // rule: obs-in-kernels (obs:: call per cell)
        p[i] += 1.0;
    }
}
