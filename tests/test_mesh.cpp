/// Tests for the surface-mesh pipeline: iso-surface extraction (geometry,
/// watertightness, block stitching), quadric simplification (error bounds,
/// boundary preservation) and the hierarchical reduction over ranks.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "comm/exchange.h"
#include "io/marching_cubes.h"
#include "io/mesh_pipeline.h"
#include "io/reduction.h"
#include "io/simplify.h"
#include "io/writers.h"
#include "util/thread_pool.h"
#include "vmpi/comm.h"

namespace tpf::io {
namespace {

/// Fill component \p c of \p f (including ghosts) with a signed sphere field:
/// value 1 inside radius r around center, 0 outside, smooth across ~2 cells.
void fillSphere(Field<double>& f, int c, Vec3 center, double r, Vec3 origin) {
    forEachCell(f.withGhosts(), [&](int x, int y, int z) {
        const Vec3 p{origin.x + x + 0.5, origin.y + y + 0.5, origin.z + z + 0.5};
        const double d = (p - center).norm() - r;
        f(x, y, z, c) = 1.0 / (1.0 + std::exp(2.0 * d));
    });
}

TEST(IsoSurface, SphereIsClosedWithEulerCharacteristic2) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 8.0, {0, 0, 0});

    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ASSERT_GT(m.numTriangles(), 100u);
    EXPECT_TRUE(m.isClosed()) << "sphere surface must be watertight";
    EXPECT_EQ(m.eulerCharacteristic(), 2) << "sphere has genus 0";
}

TEST(IsoSurface, SphereAreaMatchesAnalytic) {
    Field<double> f(40, 40, 40, 1, 1, Layout::fzyx);
    const double r = 10.0;
    fillSphere(f, 0, {20, 20, 20}, r, {0, 0, 0});

    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    const double analytic = 4.0 * M_PI * r * r;
    EXPECT_NEAR(m.totalArea(), analytic, 0.05 * analytic);
}

TEST(IsoSurface, VerticesLieOnTheIsoSurface) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    const double r = 9.0;
    fillSphere(f, 0, {16, 16, 16}, r, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    for (const Vec3& v : m.vertices) {
        const double d = (v - Vec3{16, 16, 16}).norm();
        EXPECT_NEAR(d, r, 0.6) << "vertex far from the analytic surface";
    }
}

TEST(IsoSurface, EmptyFieldProducesEmptyMesh) {
    Field<double> f(8, 8, 8, 1, 1, Layout::fzyx);
    f.fill(0.0);
    EXPECT_TRUE(extractIsoSurface(f, 0, 0.5, {0, 0, 0}).empty());
    f.fill(1.0);
    EXPECT_TRUE(extractIsoSurface(f, 0, 0.5, {0, 0, 0}).empty());
}

TEST(IsoSurface, PerBlockExtractionStitchesToClosedSurface) {
    // The same sphere extracted from two half-domain blocks (with correct
    // ghost values) must stitch into one watertight mesh — the property the
    // per-block ghost extension exists for.
    const Vec3 center{16, 16, 16};
    const double r = 9.0;

    Field<double> lower(32, 32, 16, 1, 1, Layout::fzyx);
    Field<double> upper(32, 32, 16, 1, 1, Layout::fzyx);
    fillSphere(lower, 0, center, r, {0, 0, 0});
    fillSphere(upper, 0, center, r, {0, 0, 16});

    TriMesh a = extractIsoSurface(lower, 0, 0.5, {0, 0, 0});
    TriMesh b = extractIsoSurface(upper, 0, 0.5, {0, 0, 16});
    EXPECT_FALSE(a.isClosed()) << "half-sphere has an open rim";

    a.append(b);
    a.weldVertices(1e-6);
    EXPECT_TRUE(a.isClosed()) << "stitched halves must be watertight";
    EXPECT_EQ(a.eulerCharacteristic(), 2);
}

TEST(IsoSurface, SphereTrianglesAreOrientedOutward) {
    // Regression for the orientation reference point: the ni == 1 tet case
    // must use the lone *inside* corner (not blend it with the outside
    // corners), otherwise a fraction of the sphere's triangles flip inward.
    const Vec3 center{16, 16, 16};
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, center, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ASSERT_GT(m.numTriangles(), 1000u);

    for (const auto& t : m.triangles) {
        const Vec3& a = m.vertices[static_cast<std::size_t>(t[0])];
        const Vec3& b = m.vertices[static_cast<std::size_t>(t[1])];
        const Vec3& c = m.vertices[static_cast<std::size_t>(t[2])];
        const Vec3 n = (b - a).cross(c - a);
        const Vec3 centroid = (a + b + c) * (1.0 / 3.0);
        // On a convex surface every outward normal points away from the
        // center; a single flipped triangle fails here.
        ASSERT_GT(n.dot(centroid - center), 0.0)
            << "inward-facing triangle on a sphere";
    }
}

TEST(IsoSurface, ExactIsoHitsProduceNoDegenerateTriangles) {
    // Cell values that hit the iso value exactly put edge points bitwise on
    // cell centers; the tetrahedra around such a corner emit zero-area
    // triangles that must be skipped at emit time (not left to the weld).
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    int snapped = 0;
    forEachCell(f.withGhosts(), [&](int x, int y, int z) {
        if (std::abs(f(x, y, z, 0) - 0.5) < 0.15) {
            f(x, y, z, 0) = 0.5;
            ++snapped;
        }
    });
    ASSERT_GT(snapped, 100) << "fixture must exercise exact iso hits";

    const TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ASSERT_GT(m.numTriangles(), 1000u);
    for (const auto& t : m.triangles) {
        const Vec3& a = m.vertices[static_cast<std::size_t>(t[0])];
        const Vec3& b = m.vertices[static_cast<std::size_t>(t[1])];
        const Vec3& c = m.vertices[static_cast<std::size_t>(t[2])];
        ASSERT_GT((b - a).cross(c - a).norm(), 0.0)
            << "zero-area triangle emitted on exact iso hit";
    }
    EXPECT_TRUE(m.isClosed()) << "exact-hit surface must stay watertight";
    EXPECT_EQ(m.eulerCharacteristic(), 2);
}

TEST(IsoSurface, ThreadPoolDoesNotChangeTheMesh) {
    // The slab fan-out appends per-slab parts in slab order, so the extracted
    // mesh is bitwise independent of the worker count.
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});

    const TriMesh serial = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    util::ThreadPool pool(4);
    const TriMesh threaded = extractIsoSurface(f, 0, 0.5, {0, 0, 0}, &pool);

    ASSERT_EQ(threaded.numVertices(), serial.numVertices());
    ASSERT_EQ(threaded.numTriangles(), serial.numTriangles());
    EXPECT_EQ(threaded.triangles, serial.triangles);
    for (std::size_t i = 0; i < serial.vertices.size(); ++i) {
        EXPECT_EQ(threaded.vertices[i].x, serial.vertices[i].x);
        EXPECT_EQ(threaded.vertices[i].y, serial.vertices[i].y);
        EXPECT_EQ(threaded.vertices[i].z, serial.vertices[i].z);
    }
}

TEST(Mesh, WeldMergesDuplicates) {
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                  {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
    m.triangles = {{0, 1, 2}, {3, 5, 4}};
    m.weldVertices(1e-9);
    EXPECT_EQ(m.numVertices(), 4u);
    EXPECT_EQ(m.numTriangles(), 2u);
}

TEST(Mesh, WeldDropsDegenerateTriangles) {
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1e-12, 0, 0}, {0, 1, 0}};
    m.triangles = {{0, 1, 2}};
    m.weldVertices(1e-6);
    EXPECT_EQ(m.numTriangles(), 0u);
}

TEST(Mesh, WeldMergesAcrossQuantizationBinBoundary) {
    // Two copies of a vertex 0.4*tol apart that quantize into *different*
    // bins (they straddle a bin edge at 0.5*tol): the 27-neighbor probe must
    // still weld them. A single-bin hash lookup misses this pair and leaves
    // a crack along the block seam.
    const double tol = 1e-6;
    TriMesh m;
    m.vertices = {{0.3 * tol, 0.0, 0.0}, {1, 0, 0}, {0, 1, 0},
                  {0.7 * tol, 0.0, 0.0}, {1, 0, 0}, {0, -1, 0}};
    m.triangles = {{0, 1, 2}, {3, 4, 5}};
    m.weldVertices(tol);

    EXPECT_EQ(m.numVertices(), 4u);
    EXPECT_EQ(m.numTriangles(), 2u);
    // First-insertion order: the kept representative is the earliest copy.
    EXPECT_EQ(m.vertices[0].x, 0.3 * tol);
    EXPECT_EQ(m.triangles[1][0], 0);
}

TEST(Mesh, ObjRoundTripIsBitwiseExact) {
    // writeObj emits %.17g coordinates, so read-back reconstructs every
    // double exactly — the property the rank-invariance OBJ byte comparison
    // and checkpoint-restart frame rewrites rely on.
    Field<double> f(24, 24, 24, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {12, 12, 12}, 7.0, {0, 0, 0});
    const TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ASSERT_GT(m.numTriangles(), 100u);

    namespace fs = std::filesystem;
    const fs::path path = fs::temp_directory_path() /
                          ("tpf_mesh_objrt_" + std::to_string(::getpid()) +
                           ".obj");
    writeObj(path.string(), m);
    const TriMesh back = readObj(path.string());
    fs::remove(path);

    ASSERT_EQ(back.numVertices(), m.numVertices());
    ASSERT_EQ(back.numTriangles(), m.numTriangles());
    EXPECT_EQ(back.triangles, m.triangles);
    for (std::size_t i = 0; i < m.vertices.size(); ++i) {
        EXPECT_EQ(back.vertices[i].x, m.vertices[i].x);
        EXPECT_EQ(back.vertices[i].y, m.vertices[i].y);
        EXPECT_EQ(back.vertices[i].z, m.vertices[i].z);
    }
}

// --- simplification ---

TEST(Simplify, ReachesTargetTriangleCount) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    const std::size_t before = m.numTriangles();
    ASSERT_GT(before, 1000u);

    SimplifyOptions opt;
    opt.targetTriangles = 300;
    simplifyMesh(m, opt);
    EXPECT_LE(m.numTriangles(), 320u);
    EXPECT_GT(m.numTriangles(), 50u);
}

TEST(Simplify, CoarsenedSphereStaysOnTheSphere) {
    Field<double> f(40, 40, 40, 1, 1, Layout::fzyx);
    const double r = 11.0;
    fillSphere(f, 0, {20, 20, 20}, r, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});

    SimplifyOptions opt;
    opt.targetTriangles = 400;
    simplifyMesh(m, opt);

    // Quadric-optimal placement keeps vertices near the original surface,
    // and the area must be approximately preserved.
    for (const Vec3& v : m.vertices)
        EXPECT_NEAR((v - Vec3{20, 20, 20}).norm(), r, 1.0);
    EXPECT_NEAR(m.totalArea(), 4.0 * M_PI * r * r, 0.10 * 4.0 * M_PI * r * r);
}

TEST(Simplify, ClosedSurfaceStaysClosed) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    SimplifyOptions opt;
    opt.targetTriangles = 500;
    simplifyMesh(m, opt);
    EXPECT_TRUE(m.isClosed());
    EXPECT_EQ(m.eulerCharacteristic(), 2);
}

TEST(Simplify, LockedVerticesStayPut) {
    // Half-sphere extracted from one block; vertices on the block boundary
    // plane z = 16.5 are locked (the hierarchical scheme's high weight).
    Field<double> lower(32, 32, 16, 1, 1, Layout::fzyx);
    fillSphere(lower, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(lower, 0, 0.5, {0, 0, 0});

    // Record boundary vertices (on the top ghost plane of the block).
    const double boundaryZ = 16.5;
    std::vector<Vec3> boundaryBefore;
    for (const Vec3& v : m.vertices)
        if (std::abs(v.z - boundaryZ) < 1e-6) boundaryBefore.push_back(v);
    ASSERT_GT(boundaryBefore.size(), 10u);

    SimplifyOptions opt;
    opt.targetTriangles = m.numTriangles() / 6;
    opt.lockedVertex = [&](const Vec3& v) {
        return std::abs(v.z - boundaryZ) < 1e-6;
    };
    simplifyMesh(m, opt);

    // Every original boundary vertex position must still exist.
    std::size_t found = 0;
    for (const Vec3& b : boundaryBefore)
        for (const Vec3& v : m.vertices)
            if ((v - b).norm() < 1e-6) {
                ++found;
                break;
            }
    EXPECT_EQ(found, boundaryBefore.size())
        << "locked boundary vertices must survive simplification";
}

TEST(Simplify, MaxErrorBoundStopsEarly) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    const std::size_t before = m.numTriangles();

    SimplifyOptions opt;
    opt.targetTriangles = 1;     // no count limit in practice
    opt.maxError = 1e-9;         // but an extremely tight error bound
    simplifyMesh(m, opt);
    // Only near-zero-error collapses (coplanar patches) are allowed.
    EXPECT_GT(m.numTriangles(), before / 3);
}

// --- serialization + hierarchical reduction ---

TEST(Reduction, MeshSerializationRoundTrip) {
    Field<double> f(16, 16, 16, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {8, 8, 8}, 5.0, {0, 0, 0});
    const TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});

    const TriMesh back = deserializeMesh(serializeMesh(m));
    ASSERT_EQ(back.numVertices(), m.numVertices());
    ASSERT_EQ(back.numTriangles(), m.numTriangles());
    EXPECT_EQ(back.triangles, m.triangles);
    for (std::size_t i = 0; i < m.vertices.size(); ++i)
        EXPECT_EQ(back.vertices[i].x, m.vertices[i].x);
}

TEST(Reduction, HierarchicalGatherProducesClosedCoarsenedSphere) {
    // Four ranks each own a z-slab of a sphere; the log2(P) reduction must
    // deliver one closed, coarsened surface on rank 0.
    const Vec3 center{16, 16, 16};
    const double r = 10.0;

    TriMesh result;
    vmpi::runParallel(4, [&](vmpi::Comm& comm) {
        const int zBase = 8 * comm.rank();
        Field<double> f(32, 32, 8, 1, 1, Layout::fzyx);
        fillSphere(f, 0, center, r, {0, 0, static_cast<double>(zBase)});
        TriMesh local =
            extractIsoSurface(f, 0, 0.5, {0, 0, static_cast<double>(zBase)});

        ReductionOptions opt;
        opt.maxTriangles = 600;
        TriMesh reduced = reduceMeshHierarchical(std::move(local), &comm, opt);
        if (comm.isRoot())
            result = std::move(reduced);
        else
            EXPECT_TRUE(reduced.empty());
    });

    ASSERT_FALSE(result.empty());
    EXPECT_LE(result.numTriangles(), 620u);
    EXPECT_TRUE(result.isClosed());
    EXPECT_EQ(result.eulerCharacteristic(), 2);
    EXPECT_NEAR(result.totalArea(), 4.0 * M_PI * r * r,
                0.15 * 4.0 * M_PI * r * r);
}

TEST(Reduction, SerialPathJustWeldsAndCoarsens) {
    Field<double> f(24, 24, 24, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {12, 12, 12}, 7.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ReductionOptions opt;
    opt.maxTriangles = 200;
    const TriMesh out = reduceMeshHierarchical(std::move(m), nullptr, opt);
    EXPECT_LE(out.numTriangles(), 220u);
    EXPECT_TRUE(out.isClosed());
}

// --- in-situ stitching pipeline ---

namespace {

/// Run the stitching pipeline over a 32^3 sphere split into \p ranks z-slabs
/// and return root's stitched mesh (serial path when ranks == 1 and
/// threads == 0 is requested via pool == nullptr).
TriMesh stitchSphere(int ranks, int threads, double reduceTarget) {
    const Vec3 center{16, 16, 16};
    const double r = 10.0;
    TriMesh result;
    const auto body = [&](vmpi::Comm* comm) {
        const int rank = comm != nullptr ? comm->rank() : 0;
        const int nz = 32 / ranks;
        const int zBase = nz * rank;
        Field<double> f(32, 32, nz, 1, 1, Layout::fzyx);
        fillSphere(f, 0, center, r, {0, 0, static_cast<double>(zBase)});

        MeshPipelineOptions opt;
        opt.reduceTarget = reduceTarget;
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1) {
            pool = std::make_unique<util::ThreadPool>(threads);
            opt.pool = pool.get();
        }
        const std::vector<MeshLocalSlab> slabs{
            MeshLocalSlab{&f, Int3{0, 0, zBase}}};
        TriMesh stitched = stitchIsoSurface(slabs, 0, comm, opt);
        if (comm == nullptr || comm->isRoot())
            result = std::move(stitched);
        else
            EXPECT_TRUE(stitched.empty());
    };
    if (ranks == 1)
        body(nullptr);
    else
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });
    return result;
}

} // namespace

TEST(MeshPipeline, StitchedSphereIsClosedWithAccurateArea) {
    // The paper's acceptance property: closed surface, chi = 2, area within
    // 2% of 4*pi*r^2 — both for the raw stitched extraction and after the
    // in-situ boundary-locked simplification, serial and for every rank
    // count whose z-splits align with the canonical chunk grid.
    const double analytic = 4.0 * M_PI * 10.0 * 10.0;
    for (const int ranks : {1, 2, 4}) {
        for (const double reduce : {1.0, 0.25}) {
            const TriMesh m = stitchSphere(ranks, 1, reduce);
            SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                         " reduce=" + std::to_string(reduce));
            ASSERT_GT(m.numTriangles(), 100u);
            EXPECT_TRUE(m.isClosed());
            EXPECT_EQ(m.eulerCharacteristic(), 2);
            EXPECT_NEAR(m.totalArea(), analytic, 0.02 * analytic);
            if (reduce < 1.0) {
                EXPECT_LT(m.numTriangles(),
                          stitchSphere(ranks, 1, 1.0).numTriangles() / 2);
            }
        }
    }
}

TEST(MeshPipeline, StitchedMeshIsBitwiseRankAndThreadInvariant) {
    // The determinism contract of mesh_pipeline.h at unit level: the same
    // serialized bytes out of every ranks x threads decomposition.
    const std::vector<std::byte> reference =
        serializeMesh(stitchSphere(1, 1, 0.25));
    ASSERT_FALSE(reference.empty());
    for (const int ranks : {1, 2, 4}) {
        for (const int threads : {1, 4}) {
            if (ranks == 1 && threads == 1) continue;
            SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                         " threads=" + std::to_string(threads));
            EXPECT_TRUE(serializeMesh(stitchSphere(ranks, threads, 0.25)) ==
                        reference)
                << "stitched mesh bytes depend on the decomposition";
        }
    }
}

} // namespace
} // namespace tpf::io
