/// Tests for the surface-mesh pipeline: iso-surface extraction (geometry,
/// watertightness, block stitching), quadric simplification (error bounds,
/// boundary preservation) and the hierarchical reduction over ranks.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/exchange.h"
#include "io/marching_cubes.h"
#include "io/reduction.h"
#include "io/simplify.h"
#include "vmpi/comm.h"

namespace tpf::io {
namespace {

/// Fill component \p c of \p f (including ghosts) with a signed sphere field:
/// value 1 inside radius r around center, 0 outside, smooth across ~2 cells.
void fillSphere(Field<double>& f, int c, Vec3 center, double r, Vec3 origin) {
    forEachCell(f.withGhosts(), [&](int x, int y, int z) {
        const Vec3 p{origin.x + x + 0.5, origin.y + y + 0.5, origin.z + z + 0.5};
        const double d = (p - center).norm() - r;
        f(x, y, z, c) = 1.0 / (1.0 + std::exp(2.0 * d));
    });
}

TEST(IsoSurface, SphereIsClosedWithEulerCharacteristic2) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 8.0, {0, 0, 0});

    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ASSERT_GT(m.numTriangles(), 100u);
    EXPECT_TRUE(m.isClosed()) << "sphere surface must be watertight";
    EXPECT_EQ(m.eulerCharacteristic(), 2) << "sphere has genus 0";
}

TEST(IsoSurface, SphereAreaMatchesAnalytic) {
    Field<double> f(40, 40, 40, 1, 1, Layout::fzyx);
    const double r = 10.0;
    fillSphere(f, 0, {20, 20, 20}, r, {0, 0, 0});

    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    const double analytic = 4.0 * M_PI * r * r;
    EXPECT_NEAR(m.totalArea(), analytic, 0.05 * analytic);
}

TEST(IsoSurface, VerticesLieOnTheIsoSurface) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    const double r = 9.0;
    fillSphere(f, 0, {16, 16, 16}, r, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    for (const Vec3& v : m.vertices) {
        const double d = (v - Vec3{16, 16, 16}).norm();
        EXPECT_NEAR(d, r, 0.6) << "vertex far from the analytic surface";
    }
}

TEST(IsoSurface, EmptyFieldProducesEmptyMesh) {
    Field<double> f(8, 8, 8, 1, 1, Layout::fzyx);
    f.fill(0.0);
    EXPECT_TRUE(extractIsoSurface(f, 0, 0.5, {0, 0, 0}).empty());
    f.fill(1.0);
    EXPECT_TRUE(extractIsoSurface(f, 0, 0.5, {0, 0, 0}).empty());
}

TEST(IsoSurface, PerBlockExtractionStitchesToClosedSurface) {
    // The same sphere extracted from two half-domain blocks (with correct
    // ghost values) must stitch into one watertight mesh — the property the
    // per-block ghost extension exists for.
    const Vec3 center{16, 16, 16};
    const double r = 9.0;

    Field<double> lower(32, 32, 16, 1, 1, Layout::fzyx);
    Field<double> upper(32, 32, 16, 1, 1, Layout::fzyx);
    fillSphere(lower, 0, center, r, {0, 0, 0});
    fillSphere(upper, 0, center, r, {0, 0, 16});

    TriMesh a = extractIsoSurface(lower, 0, 0.5, {0, 0, 0});
    TriMesh b = extractIsoSurface(upper, 0, 0.5, {0, 0, 16});
    EXPECT_FALSE(a.isClosed()) << "half-sphere has an open rim";

    a.append(b);
    a.weldVertices(1e-6);
    EXPECT_TRUE(a.isClosed()) << "stitched halves must be watertight";
    EXPECT_EQ(a.eulerCharacteristic(), 2);
}

TEST(Mesh, WeldMergesDuplicates) {
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                  {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
    m.triangles = {{0, 1, 2}, {3, 5, 4}};
    m.weldVertices(1e-9);
    EXPECT_EQ(m.numVertices(), 4u);
    EXPECT_EQ(m.numTriangles(), 2u);
}

TEST(Mesh, WeldDropsDegenerateTriangles) {
    TriMesh m;
    m.vertices = {{0, 0, 0}, {1e-12, 0, 0}, {0, 1, 0}};
    m.triangles = {{0, 1, 2}};
    m.weldVertices(1e-6);
    EXPECT_EQ(m.numTriangles(), 0u);
}

// --- simplification ---

TEST(Simplify, ReachesTargetTriangleCount) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    const std::size_t before = m.numTriangles();
    ASSERT_GT(before, 1000u);

    SimplifyOptions opt;
    opt.targetTriangles = 300;
    simplifyMesh(m, opt);
    EXPECT_LE(m.numTriangles(), 320u);
    EXPECT_GT(m.numTriangles(), 50u);
}

TEST(Simplify, CoarsenedSphereStaysOnTheSphere) {
    Field<double> f(40, 40, 40, 1, 1, Layout::fzyx);
    const double r = 11.0;
    fillSphere(f, 0, {20, 20, 20}, r, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});

    SimplifyOptions opt;
    opt.targetTriangles = 400;
    simplifyMesh(m, opt);

    // Quadric-optimal placement keeps vertices near the original surface,
    // and the area must be approximately preserved.
    for (const Vec3& v : m.vertices)
        EXPECT_NEAR((v - Vec3{20, 20, 20}).norm(), r, 1.0);
    EXPECT_NEAR(m.totalArea(), 4.0 * M_PI * r * r, 0.10 * 4.0 * M_PI * r * r);
}

TEST(Simplify, ClosedSurfaceStaysClosed) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    SimplifyOptions opt;
    opt.targetTriangles = 500;
    simplifyMesh(m, opt);
    EXPECT_TRUE(m.isClosed());
    EXPECT_EQ(m.eulerCharacteristic(), 2);
}

TEST(Simplify, LockedVerticesStayPut) {
    // Half-sphere extracted from one block; vertices on the block boundary
    // plane z = 16.5 are locked (the hierarchical scheme's high weight).
    Field<double> lower(32, 32, 16, 1, 1, Layout::fzyx);
    fillSphere(lower, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(lower, 0, 0.5, {0, 0, 0});

    // Record boundary vertices (on the top ghost plane of the block).
    const double boundaryZ = 16.5;
    std::vector<Vec3> boundaryBefore;
    for (const Vec3& v : m.vertices)
        if (std::abs(v.z - boundaryZ) < 1e-6) boundaryBefore.push_back(v);
    ASSERT_GT(boundaryBefore.size(), 10u);

    SimplifyOptions opt;
    opt.targetTriangles = m.numTriangles() / 6;
    opt.lockedVertex = [&](const Vec3& v) {
        return std::abs(v.z - boundaryZ) < 1e-6;
    };
    simplifyMesh(m, opt);

    // Every original boundary vertex position must still exist.
    std::size_t found = 0;
    for (const Vec3& b : boundaryBefore)
        for (const Vec3& v : m.vertices)
            if ((v - b).norm() < 1e-6) {
                ++found;
                break;
            }
    EXPECT_EQ(found, boundaryBefore.size())
        << "locked boundary vertices must survive simplification";
}

TEST(Simplify, MaxErrorBoundStopsEarly) {
    Field<double> f(32, 32, 32, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {16, 16, 16}, 9.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    const std::size_t before = m.numTriangles();

    SimplifyOptions opt;
    opt.targetTriangles = 1;     // no count limit in practice
    opt.maxError = 1e-9;         // but an extremely tight error bound
    simplifyMesh(m, opt);
    // Only near-zero-error collapses (coplanar patches) are allowed.
    EXPECT_GT(m.numTriangles(), before / 3);
}

// --- serialization + hierarchical reduction ---

TEST(Reduction, MeshSerializationRoundTrip) {
    Field<double> f(16, 16, 16, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {8, 8, 8}, 5.0, {0, 0, 0});
    const TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});

    const TriMesh back = deserializeMesh(serializeMesh(m));
    ASSERT_EQ(back.numVertices(), m.numVertices());
    ASSERT_EQ(back.numTriangles(), m.numTriangles());
    EXPECT_EQ(back.triangles, m.triangles);
    for (std::size_t i = 0; i < m.vertices.size(); ++i)
        EXPECT_EQ(back.vertices[i].x, m.vertices[i].x);
}

TEST(Reduction, HierarchicalGatherProducesClosedCoarsenedSphere) {
    // Four ranks each own a z-slab of a sphere; the log2(P) reduction must
    // deliver one closed, coarsened surface on rank 0.
    const Vec3 center{16, 16, 16};
    const double r = 10.0;

    TriMesh result;
    vmpi::runParallel(4, [&](vmpi::Comm& comm) {
        const int zBase = 8 * comm.rank();
        Field<double> f(32, 32, 8, 1, 1, Layout::fzyx);
        fillSphere(f, 0, center, r, {0, 0, static_cast<double>(zBase)});
        TriMesh local =
            extractIsoSurface(f, 0, 0.5, {0, 0, static_cast<double>(zBase)});

        ReductionOptions opt;
        opt.maxTriangles = 600;
        TriMesh reduced = reduceMeshHierarchical(std::move(local), &comm, opt);
        if (comm.isRoot())
            result = std::move(reduced);
        else
            EXPECT_TRUE(reduced.empty());
    });

    ASSERT_FALSE(result.empty());
    EXPECT_LE(result.numTriangles(), 620u);
    EXPECT_TRUE(result.isClosed());
    EXPECT_EQ(result.eulerCharacteristic(), 2);
    EXPECT_NEAR(result.totalArea(), 4.0 * M_PI * r * r,
                0.15 * 4.0 * M_PI * r * r);
}

TEST(Reduction, SerialPathJustWeldsAndCoarsens) {
    Field<double> f(24, 24, 24, 1, 1, Layout::fzyx);
    fillSphere(f, 0, {12, 12, 12}, 7.0, {0, 0, 0});
    TriMesh m = extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ReductionOptions opt;
    opt.maxTriangles = 200;
    const TriMesh out = reduceMeshHierarchical(std::move(m), nullptr, opt);
    EXPECT_LE(out.numTriangles(), 220u);
    EXPECT_TRUE(out.isClosed());
}

} // namespace
} // namespace tpf::io
