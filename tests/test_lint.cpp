/// \file test_lint.cpp
/// tpf-lint rule library tests: fixture snippets that must / must not
/// trigger each rule, the suppression-comment syntax, scanner stripping of
/// comments and literals, and the committed seeded-violation fixture that
/// backs the tpf_lint_negative ctest.

#include "lint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

using tpf::lint::Finding;
using tpf::lint::lintSource;

namespace {

std::vector<std::string> rulesOf(const std::vector<Finding>& fs) {
    std::vector<std::string> r;
    for (const auto& f : fs) r.push_back(f.rule);
    std::sort(r.begin(), r.end());
    return r;
}

} // namespace

// ---------------------------------------------------------------------------
// fastmath
// ---------------------------------------------------------------------------

TEST(LintFastmath, FlagsLibmInCore) {
    const auto fs =
        lintSource("src/core/init.cpp", "double y = std::sin(x);\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "fastmath");
    EXPECT_EQ(fs[0].line, 1);
    EXPECT_EQ(fs[0].file, "src/core/init.cpp");
    EXPECT_NE(fs[0].hint.find("fastmath"), std::string::npos);
}

TEST(LintFastmath, FlagsUnqualifiedCallInAnalysis) {
    const auto fs =
        lintSource("src/analysis/corr.cpp", "double y = exp(-r / xi);\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "fastmath");
}

TEST(LintFastmath, IgnoresSqrtFastmathHelpersAndMembers) {
    const auto fs = lintSource("src/core/init.cpp",
                               "double a = std::sqrt(x);\n"
                               "double b = sinpiCompact(x);\n"
                               "double c = table.exp(x);\n"
                               "double d = fastInvSqrt(x);\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintFastmath, OnlyAppliesToCoreAndAnalysis) {
    EXPECT_TRUE(lintSource("src/io/writers.cpp", "y = std::sin(x);\n").empty());
    EXPECT_TRUE(lintSource("src/thermo/agalcu.cpp", "y = std::exp(x);\n").empty());
    EXPECT_FALSE(lintSource("src/analysis/f.cpp", "y = std::sin(x);\n").empty());
}

TEST(LintFastmath, IgnoresStringsAndComments) {
    const auto fs = lintSource("src/core/init.cpp",
                               "const char* s = \"std::sin(x)\";\n"
                               "// std::cos(y) would be wrong here\n"
                               "/* std::exp(z) */ int a = 0;\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// Suppression syntax
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesTheRule) {
    const auto fs = lintSource(
        "src/core/init.cpp",
        "double y = std::sin(x); // tpf-lint: allow(fastmath) -- golden-free\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, CommentOnlyLineCoversNextCodeLine) {
    const auto fs = lintSource("src/core/init.cpp",
                               "// tpf-lint: allow(fastmath) -- documented\n"
                               "// multi-line explanation comment\n"
                               "double y = std::sin(x);\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, WrongRuleNameDoesNotSilence) {
    const auto fs = lintSource(
        "src/core/init.cpp",
        "double y = std::sin(x); // tpf-lint: allow(assert-macro) -- nope\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "fastmath");
}

TEST(LintSuppression, StarAllowsEverythingOnTheLine) {
    const auto fs = lintSource(
        "src/core/init.cpp",
        "assert(std::sin(x) > 0); // tpf-lint: allow(*) -- test scaffolding\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, ListedRulesAllSilence) {
    const auto fs = lintSource(
        "src/core/init.cpp",
        "assert(std::sin(x) > 0); "
        "// tpf-lint: allow(fastmath, assert-macro) -- both known\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintSuppression, AllowDoesNotLeakToOtherLines) {
    const auto fs = lintSource(
        "src/core/init.cpp",
        "double a = std::sin(x); // tpf-lint: allow(fastmath) -- here only\n"
        "double b = std::cos(x);\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 2);
}

// ---------------------------------------------------------------------------
// unordered-iteration
// ---------------------------------------------------------------------------

TEST(LintUnordered, FlagsRangeForOverUnorderedMap) {
    const auto fs = lintSource(
        "src/io/mesh.cpp",
        "std::unordered_map<int, double> counts;\n"
        "for (const auto& [k, v] : counts) total += v;\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "unordered-iteration");
    EXPECT_EQ(fs[0].line, 2);
}

TEST(LintUnordered, FlagsExplicitBeginWalk) {
    const auto fs =
        lintSource("src/io/mesh.cpp",
                   "std::unordered_set<int> seen;\n"
                   "for (auto it = seen.begin(); it != seen.end(); ++it) {}\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "unordered-iteration");
}

TEST(LintUnordered, LookupsAndOrderedContainersAreFine) {
    const auto fs = lintSource("src/io/mesh.cpp",
                               "std::unordered_map<int, double> counts;\n"
                               "if (counts.count(k)) x = counts.at(k);\n"
                               "std::map<int, double> sorted;\n"
                               "for (const auto& [k, v] : sorted) total += v;\n"
                               "std::vector<int> order;\n"
                               "for (int i : order) use(i);\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// nondeterminism
// ---------------------------------------------------------------------------

TEST(LintNondet, FlagsChronoRandAndTimeInDeterministicDirs) {
    const auto fs = lintSource("src/core/seed.cpp",
                               "auto t0 = std::chrono::steady_clock::now();\n"
                               "int r = rand();\n"
                               "long s = time(nullptr);\n"
                               "std::random_device rd;\n");
    EXPECT_EQ(fs.size(), 4u);
    for (const auto& f : fs) EXPECT_EQ(f.rule, "nondeterminism");
}

TEST(LintNondet, MemberTimeAndDeclarationsAreFine) {
    const auto fs = lintSource("src/core/solver.cpp",
                               "double t = solver.time();\n"
                               "double tt = this->time();\n"
                               "double time() const { return time_; }\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintNondet, PerfAndAppDirsAreExempt) {
    EXPECT_TRUE(lintSource("src/perf/perf.h",
                           "auto t = std::chrono::steady_clock::now();\n")
                    .empty());
    EXPECT_TRUE(
        lintSource("src/app/tpf_sim.cpp", "long s = time(nullptr);\n").empty());
}

TEST(LintNondet, ObsIsTheSanctionedWallClockHome) {
    // src/obs wraps the tree's only steady_clock read (obs::wallNow); the
    // rule exempts it explicitly so the telemetry layer needs no
    // suppression comments.
    EXPECT_TRUE(lintSource("src/obs/clock.cpp",
                           "auto t = std::chrono::steady_clock::now();\n")
                    .empty());
}

// ---------------------------------------------------------------------------
// collective-in-conditional
// ---------------------------------------------------------------------------

TEST(LintCollective, FlagsBarrierInsideRootBranch) {
    const auto fs = lintSource("src/core/report.cpp",
                               "if (comm.isRoot()) {\n"
                               "    comm.barrier();\n"
                               "}\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "collective-in-conditional");
    EXPECT_EQ(fs[0].line, 2);
}

TEST(LintCollective, FlagsSameLineAndRankEqualsZeroForms) {
    EXPECT_EQ(lintSource("src/core/r.cpp",
                         "if (comm.isRoot()) comm.barrier();\n")
                  .size(),
              1u);
    EXPECT_EQ(lintSource("src/core/r.cpp",
                         "if (rank == 0) {\n"
                         "    double g = comm.allreduceSum(x);\n"
                         "}\n")
                  .size(),
              1u);
    EXPECT_EQ(lintSource("src/core/r.cpp",
                         "if (comm.rank() == 0) {\n"
                         "    auto all = comm.gatherAllBytes(mine);\n"
                         "}\n")
                  .size(),
              1u);
}

TEST(LintCollective, FlagsElseBranchOfRankConditional) {
    const auto fs = lintSource("src/core/r.cpp",
                               "if (comm.isRoot()) {\n"
                               "    rootWork();\n"
                               "} else {\n"
                               "    comm.barrier();\n"
                               "}\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 4);
}

TEST(LintCollective, FlagsAllAgreeAndTransportVtableSpellings) {
    // The collective family grew with the transport refactor: allAgree (the
    // checkpoint ok-agreement) and direct Transport-level calls must be
    // caught too, not just the classic Comm spellings.
    EXPECT_EQ(lintSource("src/io/c.cpp",
                         "if (comm->isRoot()) {\n"
                         "    ok = comm->allAgree(localOk);\n"
                         "}\n")
                  .size(),
              1u);
    EXPECT_EQ(lintSource("src/core/s.cpp",
                         "if (myRank == 0) {\n"
                         "    const int seq = transport->nextCollectiveSeq();\n"
                         "}\n")
                  .size(),
              1u);
    EXPECT_EQ(lintSource("src/core/s.cpp",
                         "if (rank == 0) transport->barrier();\n")
                  .size(),
              1u);
}

TEST(LintCollective, PointToPointTransportCallsAreNotCollectives) {
    // postRecv/waitRecv are (source, tag) point-to-point — rank-conditional
    // use is the normal asymmetric pattern, not a deadlock.
    const auto fs =
        lintSource("src/comm/e.cpp",
                   "if (rank == 0) {\n"
                   "    auto h = transport->postRecv(1, tag, bytes);\n"
                   "    transport->waitRecv(h, out);\n"
                   "}\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintCollective, UnconditionalCollectivesAndRootOnlyWorkAreFine) {
    const auto fs = lintSource("src/core/r.cpp",
                               "const double g = comm.allreduceSum(x);\n"
                               "if (comm.isRoot()) {\n"
                               "    std::printf(\"%f\", g);\n"
                               "}\n"
                               "comm.barrier();\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintCollective, CollectiveAfterGuardClosesIsFine) {
    const auto fs = lintSource("src/core/r.cpp",
                               "if (comm.isRoot()) {\n"
                               "    rootOnly();\n"
                               "}\n"
                               "comm.barrier();\n");
    EXPECT_TRUE(fs.empty());
}

TEST(LintCollective, VmpiImplementationIsExempt) {
    const auto fs = lintSource("src/vmpi/comm.cpp",
                               "if (rank_ == 0) {\n"
                               "    for (int r = 1; r < size_; ++r)\n"
                               "        result = op(result, recvValue(r));\n"
                               "}\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// raw-intrinsics
// ---------------------------------------------------------------------------

TEST(LintIntrinsics, FlagsRawVectorTypeAndCallOutsideSimd) {
    const auto fs = lintSource("src/core/kernels.cpp",
                               "__m256d v = _mm256_add_pd(a, b);\n");
    ASSERT_EQ(fs.size(), 2u); // the type and the intrinsic call
    EXPECT_EQ(fs[0].rule, "raw-intrinsics");
    EXPECT_EQ(fs[1].rule, "raw-intrinsics");
    EXPECT_NE(fs[0].hint.find("simd"), std::string::npos);
}

TEST(LintIntrinsics, FlagsAvx512TypesMasksAndTheIncludeEverywhere) {
    EXPECT_EQ(lintSource("src/core/x.cpp", "__m512d acc;\n").size(), 1u);
    EXPECT_EQ(lintSource("src/comm/x.cpp", "__mmask8 m;\n").size(), 1u);
    EXPECT_EQ(lintSource("src/grid/x.cpp", "__m128d lo;\n").size(), 1u);
    EXPECT_EQ(
        lintSource("src/io/x.cpp", "#include <immintrin.h>\n").size(), 1u);
    EXPECT_EQ(
        lintSource("src/perf/x.cpp", "x = _mm512_reduce_add_pd(v);\n").size(),
        1u);
}

TEST(LintIntrinsics, SimdBackendsAndWrapperUseAreFine) {
    EXPECT_TRUE(lintSource("src/simd/vec4d_avx2.h",
                           "#include <immintrin.h>\n"
                           "__m256d v = _mm256_add_pd(a.v, b.v);\n")
                    .empty());
    EXPECT_TRUE(lintSource("src/core/kernels.cpp",
                           "auto v = simd::Vec4d::loadu(p);\n"
                           "V sum = V::fmadd(a, b, c);\n"
                           "if (__builtin_cpu_supports(\"avx2\")) select();\n")
                    .empty());
}

TEST(LintIntrinsics, SuppressionCommentSilences) {
    const auto fs = lintSource(
        "src/core/probe.cpp",
        "auto v = _mm256_loadu_pd(p); "
        "// tpf-lint: allow(raw-intrinsics) -- cpuid probe scaffolding\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// assert-macro
// ---------------------------------------------------------------------------

TEST(LintAssert, FlagsBareAssert) {
    const auto fs =
        lintSource("src/grid/field.cpp", "assert(i >= 0 && i < n);\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "assert-macro");
    EXPECT_NE(fs[0].hint.find("TPF_ASSERT"), std::string::npos);
}

TEST(LintAssert, TpfAssertAndStaticAssertAreFine) {
    const auto fs = lintSource("src/grid/field.cpp",
                               "TPF_ASSERT(i >= 0, \"range\");\n"
                               "TPF_ASSERT_DBG(j < n, \"range\");\n"
                               "static_assert(sizeof(double) == 8);\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// obs-in-kernels
// ---------------------------------------------------------------------------

TEST(LintObsInKernels, FlagsSpanAndObsCallsInKernelTargets) {
    const auto fs = lintSource("src/core/kernel_targets/kernels_avx2.cpp",
                               "TPF_SPAN(\"cell\");\n"
                               "obs::threadTrace();\n");
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_EQ(fs[0].rule, "obs-in-kernels");
    EXPECT_EQ(fs[1].rule, "obs-in-kernels");
    EXPECT_NE(fs[0].hint.find("caller"), std::string::npos);
}

TEST(LintObsInKernels, FlagsObsIncludeInKernelBodyHeader) {
    // The include path lives inside a string literal, which the scanner
    // blanks — the rule must match the raw line for this pattern.
    const auto fs = lintSource("src/core/phi_kernel_multicell_body.h",
                               "#include \"obs/trace.h\"\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "obs-in-kernels");
    EXPECT_EQ(fs[0].line, 1);
}

TEST(LintObsInKernels, QualifiedObsCallIsAlsoCaught) {
    const auto fs = lintSource("src/core/kernel_targets/kernels_scalar.cpp",
                               "tpf::obs::ScopedSpan s(\"k\");\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].rule, "obs-in-kernels");
}

TEST(LintObsInKernels, TimeloopAndSweepCallersAreFine) {
    // Functor-level instrumentation is the sanctioned pattern: the rule
    // scopes to kernel targets and *_body.h headers only.
    EXPECT_TRUE(lintSource("src/core/timeloop.cpp",
                           "obs::ScopedSpan span(name);\n")
                    .empty());
    EXPECT_TRUE(lintSource("src/core/slab_sweep.cpp",
                           "#include \"obs/fanout.h\"\n")
                    .empty());
    EXPECT_TRUE(lintSource("src/util/thread_pool.cpp",
                           "obs::FanoutStats* stats = obs::threadFanoutStats();\n")
                    .empty());
}

TEST(LintObsInKernels, UnrelatedIdentifiersDoNotTrip) {
    EXPECT_TRUE(lintSource("src/core/kernel_targets/kernels_sse2.cpp",
                           "double jacobs = x;\n"
                           "observer.note(x);\n"
                           "int myobs = 0;\n")
                    .empty());
}

TEST(LintObsInKernels, SuppressionCommentSilences) {
    const auto fs = lintSource(
        "src/core/kernel_targets/kernels_avx512.cpp",
        "obs::threadTrace(); "
        "// tpf-lint: allow(obs-in-kernels) -- probe scaffolding\n");
    EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// Engine: rule selection, formatting, scanner edge cases
// ---------------------------------------------------------------------------

TEST(LintEngine, EnabledSetRestrictsRules) {
    const std::string src = "assert(std::sin(x) > 0);\n";
    EXPECT_EQ(rulesOf(lintSource("src/core/x.cpp", src)),
              (std::vector<std::string>{"assert-macro", "fastmath"}));
    EXPECT_EQ(rulesOf(lintSource("src/core/x.cpp", src, {"fastmath"})),
              (std::vector<std::string>{"fastmath"}));
}

TEST(LintEngine, FormatFindingIsFileLineColWithFixIt) {
    const auto fs = lintSource("src/core/x.cpp", "double y = std::sin(x);\n");
    ASSERT_EQ(fs.size(), 1u);
    const std::string s = tpf::lint::formatFinding(fs[0]);
    EXPECT_NE(s.find("src/core/x.cpp:1:"), std::string::npos);
    EXPECT_NE(s.find("error: [fastmath]"), std::string::npos);
    EXPECT_NE(s.find("fix-it:"), std::string::npos);
}

TEST(LintEngine, RuleCatalogMatchesIsKnownRule) {
    for (const auto& r : tpf::lint::ruleCatalog())
        EXPECT_TRUE(tpf::lint::isKnownRule(r.name));
    EXPECT_FALSE(tpf::lint::isKnownRule("no-such-rule"));
}

TEST(LintScanner, DigitSeparatorsAndCharLiteralsDoNotDesync) {
    // A digit separator must not open a char literal and swallow the rest of
    // the file (which would hide the std::sin on the next line).
    const auto fs = lintSource("src/core/x.cpp",
                               "const int big = 1'000'000;\n"
                               "double y = std::sin(x);\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 2);
}

TEST(LintScanner, RawStringsAreStripped) {
    const auto fs = lintSource("src/core/x.cpp",
                               "const char* re = R\"(std::sin(x))\";\n"
                               "double y = std::cos(x);\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 2);
}

TEST(LintScanner, BlockCommentSpanningLinesIsStripped) {
    const auto fs = lintSource("src/core/x.cpp",
                               "/* std::sin(a)\n"
                               "   std::cos(b) */\n"
                               "double y = std::exp(x);\n");
    ASSERT_EQ(fs.size(), 1u);
    EXPECT_EQ(fs[0].line, 3);
}

// ---------------------------------------------------------------------------
// The committed seeded-violation fixture: the negative ctest runs tpf-lint
// over this directory and expects failure; here we pin exactly which rules
// fire so a rule rename or regression is caught at the library level.
// ---------------------------------------------------------------------------

TEST(LintFixture, SeededViolationFileTriggersEveryRule) {
    const std::string path = std::string(TPF_LINT_FIXTURE_DIR) +
                             "/bad/src/core/seeded_violations.cpp";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto fs = lintSource("src/core/seeded_violations.cpp", ss.str());
    // Three collective findings: the classic Comm form, allAgree, and the
    // Transport vtable spelling.
    EXPECT_EQ(rulesOf(fs),
              (std::vector<std::string>{"assert-macro",
                                        "collective-in-conditional",
                                        "collective-in-conditional",
                                        "collective-in-conditional",
                                        "fastmath", "nondeterminism",
                                        "raw-intrinsics",
                                        "unordered-iteration"}));
}

TEST(LintFixture, SeededObsKernelFixtureTriggersOnlyObsRule) {
    const std::string path =
        std::string(TPF_LINT_FIXTURE_DIR) +
        "/bad/src/core/kernel_targets/obs_in_kernel.cpp";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto fs =
        lintSource("src/core/kernel_targets/obs_in_kernel.cpp", ss.str());
    // Exactly the include, the span macro and the obs:: call — and nothing
    // from any other rule, proving the fixture stays single-purpose.
    EXPECT_EQ(rulesOf(fs), (std::vector<std::string>{"obs-in-kernels",
                                                     "obs-in-kernels",
                                                     "obs-in-kernels"}));
}

