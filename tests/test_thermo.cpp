/// Tests for the thermodynamics substrate: parabolic phases, Legendre
/// consistency of the grand potentials, calibration of the eutectic
/// equilibrium, susceptibility/mobility properties, lever rule.

#include <gtest/gtest.h>

#include <cmath>

#include "thermo/agalcu.h"
#include "util/random.h"

namespace tpf::thermo {
namespace {

ParabolicPhase makeTestPhase() {
    return ParabolicPhase(Mat2{10.0, 1.0, 1.0, 8.0}, Vec2{0.3, 0.2},
                          Vec2{1e-4, 2e-4}, 0.05, 0.7, 700.0);
}

TEST(ParabolicPhase, MuIsGradientOfF) {
    const auto p = makeTestPhase();
    const Vec2 c{0.35, 0.18};
    const double T = 698.0;
    const double h = 1e-6;
    const double dfdx =
        (p.f({c.x + h, c.y}, T) - p.f({c.x - h, c.y}, T)) / (2 * h);
    const double dfdy =
        (p.f({c.x, c.y + h}, T) - p.f({c.x, c.y - h}, T)) / (2 * h);
    const Vec2 mu = p.mu(c, T);
    EXPECT_NEAR(mu.x, dfdx, 1e-6);
    EXPECT_NEAR(mu.y, dfdy, 1e-6);
}

TEST(ParabolicPhase, COfMuInvertsMu) {
    const auto p = makeTestPhase();
    Random rng(5);
    for (int t = 0; t < 50; ++t) {
        const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
        const double T = rng.uniform(650.0, 750.0);
        const Vec2 back = p.cOfMu(p.mu(c, T), T);
        EXPECT_NEAR(back.x, c.x, 1e-12);
        EXPECT_NEAR(back.y, c.y, 1e-12);
    }
}

TEST(ParabolicPhase, GrandPotentialIsLegendreTransform) {
    const auto p = makeTestPhase();
    Random rng(6);
    for (int t = 0; t < 50; ++t) {
        const Vec2 mu{rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)};
        const double T = rng.uniform(650.0, 750.0);
        const Vec2 c = p.cOfMu(mu, T);
        EXPECT_NEAR(p.grandPotential(mu, T), p.f(c, T) - mu.dot(c), 1e-10);
    }
}

TEST(ParabolicPhase, GrandPotentialMaximizesOverC) {
    // omega(mu) = min_c f(c) - mu.c for convex f: any other c gives a larger
    // value of f(c) - mu.c.
    const auto p = makeTestPhase();
    const Vec2 mu{0.5, -0.3};
    const double T = 700.0;
    const double w = p.grandPotential(mu, T);
    Random rng(7);
    for (int t = 0; t < 50; ++t) {
        const Vec2 c{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
        EXPECT_GE(p.f(c, T) - mu.dot(c), w - 1e-12);
    }
}

TEST(ParabolicPhase, RejectsNonSpdCurvature) {
    EXPECT_DEATH(ParabolicPhase(Mat2{1.0, 5.0, 5.0, 1.0}, Vec2{0, 0}, Vec2{0, 0},
                                0.0, 0.0, 700.0),
                 "positive definite");
}

// --- Ag-Al-Cu system ---

TEST(AgAlCu, GrandPotentialsEqualAtEutecticPoint) {
    const auto sys = makeAgAlCu();
    const double w0 = sys.omega(0, sys.muEut(), sys.Teut());
    for (int a = 1; a < kNumPhases; ++a)
        EXPECT_NEAR(sys.omega(a, sys.muEut(), sys.Teut()), w0, 1e-13);
    EXPECT_NEAR(w0, 0.0, 1e-13); // gauge fixed to zero
}

TEST(AgAlCu, SolidsFavoredBelowEutectic) {
    const auto sys = makeAgAlCu();
    const double T = sys.Teut() - 2.0;
    const double wl = sys.omega(kLiquidPhase, sys.muEut(), T);
    for (int a = 0; a < 3; ++a)
        EXPECT_LT(sys.omega(a, sys.muEut(), T), wl)
            << "solid " << a << " must be favored below T_E";
}

TEST(AgAlCu, LiquidFavoredAboveEutectic) {
    const auto sys = makeAgAlCu();
    const double T = sys.Teut() + 2.0;
    const double wl = sys.omega(kLiquidPhase, sys.muEut(), T);
    for (int a = 0; a < 3; ++a)
        EXPECT_GT(sys.omega(a, sys.muEut(), T), wl);
}

TEST(AgAlCu, EutecticTemperatureMatchesPublishedValue) {
    EXPECT_NEAR(makeAgAlCu().Teut(), 773.6, 1e-9);
}

TEST(AgAlCu, LiquidCompositionNearPublishedEutectic) {
    const auto sys = makeAgAlCu();
    const Vec2 cl = sys.cOfPhase(kLiquidPhase, sys.muEut(), sys.Teut());
    EXPECT_NEAR(cl.x, 0.18, 0.02); // c_Ag
    EXPECT_NEAR(cl.y, 0.13, 0.02); // c_Cu
    const double cAl = 1.0 - cl.x - cl.y;
    EXPECT_NEAR(cAl, 0.69, 0.03);
}

TEST(AgAlCu, LeverFractionsValidAndSimilar) {
    const auto sys = makeAgAlCu();
    const auto lf = sys.leverFractions();
    double sum = 0.0;
    for (double f : lf.solid) {
        EXPECT_GT(f, 0.1); // "similar phase fractions" of the real system
        EXPECT_LT(f, 0.6);
        sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AgAlCu, LeverRuleReproducesLiquidComposition) {
    const auto sys = makeAgAlCu();
    const auto lf = sys.leverFractions();
    Vec2 mix{0.0, 0.0};
    for (int a = 0; a < 3; ++a)
        mix += sys.cOfPhase(a, sys.muEut(), sys.Teut()) * lf.solid[a];
    const Vec2 cl = sys.cOfPhase(kLiquidPhase, sys.muEut(), sys.Teut());
    EXPECT_NEAR(mix.x, cl.x, 1e-12);
    EXPECT_NEAR(mix.y, cl.y, 1e-12);
}

TEST(AgAlCu, SusceptibilityIsSpdOnSimplex) {
    const auto sys = makeAgAlCu();
    Random rng(8);
    for (int t = 0; t < 100; ++t) {
        double h[4];
        double s = 0.0;
        for (auto& v : h) {
            v = rng.uniform();
            s += v;
        }
        for (auto& v : h) v /= s;
        const Mat2 chi = sys.susceptibility(h);
        EXPECT_TRUE(chi.isSymmetric(1e-12));
        const auto ev = chi.symEigenvalues();
        EXPECT_GT(ev[0], 0.0);
    }
}

TEST(AgAlCu, MixtureConcentrationInterpolatesPhases) {
    const auto sys = makeAgAlCu();
    double h[4] = {1.0, 0.0, 0.0, 0.0};
    const Vec2 c = sys.mixtureConcentration(h, sys.muEut(), sys.Teut());
    const Vec2 c0 = sys.cOfPhase(0, sys.muEut(), sys.Teut());
    EXPECT_NEAR(c.x, c0.x, 1e-14);
    EXPECT_NEAR(c.y, c0.y, 1e-14);
}

TEST(AgAlCu, MobilityDominatedByLiquid) {
    const auto sys = makeAgAlCu();
    double liquid[4] = {0, 0, 0, 1};
    double solid[4] = {1, 0, 0, 0};
    const auto evL = sys.mobility(liquid).symEigenvalues();
    const auto evS = sys.mobility(solid).symEigenvalues();
    EXPECT_GT(evL[0], 0.0);
    EXPECT_GT(evL[1], 100.0 * evS[1])
        << "solid diffusion must be orders of magnitude slower";
}

TEST(AgAlCu, MaxEffectiveDiffusivityIsLiquidScale) {
    const auto sys = makeAgAlCu();
    const double d = sys.maxEffectiveDiffusivity();
    EXPECT_GT(d, 0.01);
    EXPECT_LT(d, 10.0);
}

TEST(AgAlCu, DcDtFollowsSlopes) {
    const auto sys = makeAgAlCu();
    double h[4] = {0, 0, 0, 1};
    const Vec2 s = sys.dcdT(h);
    EXPECT_DOUBLE_EQ(s.x, sys.phase(kLiquidPhase).dxidT.x);
    EXPECT_DOUBLE_EQ(s.y, sys.phase(kLiquidPhase).dxidT.y);
}

TEST(AgAlCu, PhaseNames) {
    const auto sys = makeAgAlCu();
    EXPECT_EQ(sys.phaseName(kAl2Cu), "Al2Cu");
    EXPECT_EQ(sys.phaseName(kAg2Al), "Ag2Al");
    EXPECT_EQ(sys.phaseName(kFccAl), "fcc-Al");
    EXPECT_EQ(sys.phaseName(kLiquid), "liquid");
}

} // namespace
} // namespace tpf::thermo
