/// The kernel-equivalence lockdown of the fused schedule and the runtime
/// SIMD dispatch (docs/KERNELS.md):
///
///   1. The fused phi/mu sweep must be **bitwise** identical to the split
///      schedule — for ranks {1,2,4} x threads {1,4} x moving window {on,off},
///      with the production mu-overlap communication hiding on, and for
///      every dispatch target the host CPU can run.
///   2. Every dispatch target (scalar / sse2 / avx2 / avx512) must produce
///      bitwise the same fields as every other, under both schedules.
///
/// Both contracts are exact (memcmp over the interiors), so any reassociation
/// slipped into a width-8 body, a wrong slab halo in the fused pipeline, or a
/// misordered ghost exchange fails loudly rather than drifting.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/solver.h"
#include "vmpi/comm.h"

namespace tpf {
namespace {

/// Restores the startup dispatch choice no matter how a test exits.
struct TargetGuard {
    ~TargetGuard() { core::setKernelTarget("auto"); }
};

core::SolverConfig makeConfig(int ranks, int threads, bool window,
                              core::SweepSchedule schedule) {
    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 32};
    if (ranks > 1) cfg.blockSize = {16, 16, 32 / ranks};
    cfg.threads = threads;
    cfg.schedule = schedule;
    cfg.overlapMu = true; // the paper's production communication hiding
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.zEut0 = 12.0;
    if (window) {
        // Window-heavy scenario borrowed from the restart tests: the solid
        // fill starts far above the trigger, so shifts happen mid-run and the
        // fused schedule has to get the shifted ghosts right too.
        cfg.model.temp.velocity = 0.02;
        cfg.init.fillHeight = 26;
        cfg.window.enabled = true;
        cfg.window.triggerFraction = 0.2;
        cfg.window.checkEvery = 8;
    } else {
        cfg.init.fillHeight = 10;
    }
    return cfg;
}

/// Interior phi + mu of all local blocks, flattened in a fixed order.
std::vector<double> snapshot(core::Solver& s) {
    std::vector<double> out;
    for (auto& bp : s.localBlocks()) {
        for (const Field<double>* f : {&bp->phiSrc, &bp->muSrc}) {
            const CellInterval in = f->interior();
            for (int c = 0; c < f->nf(); ++c)
                for (int z = in.zMin; z <= in.zMax; ++z)
                    for (int y = in.yMin; y <= in.yMax; ++y)
                        for (int x = in.xMin; x <= in.xMax; ++x)
                            out.push_back((*f)(x, y, z, c));
        }
    }
    return out;
}

/// Empty string when bitwise equal, else a pointed first-difference message.
std::string diffSnapshots(const std::vector<double>& a,
                          const std::vector<double>& b) {
    if (a.empty() || b.empty())
        return "empty snapshot — the per-rank gather produced nothing, the "
               "comparison would be vacuous";
    if (a.size() != b.size())
        return "snapshot sizes differ: " + std::to_string(a.size()) + " vs " +
               std::to_string(b.size());
    if (std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0)
        return {};
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "first difference at flat index %zu: %.17g vs %.17g",
                          i, a[i], b[i]);
            return buf;
        }
    }
    return "memcmp differs but no differing element found (padding?)";
}

/// Runs \p steps under the given schedule on \p ranks virtual ranks and
/// returns one interior snapshot per rank (plus the final window offset).
struct RunResult {
    std::vector<std::vector<double>> perRank;
    double windowOffset = 0.0;
};

RunResult runSchedule(const core::SolverConfig& cfg, int ranks, int steps) {
    RunResult r;
    r.perRank.resize(static_cast<std::size_t>(ranks));
    auto body = [&](vmpi::Comm* comm) {
        core::Solver s(cfg, comm);
        s.initialize();
        s.run(steps);
        const std::vector<double> mine = snapshot(s);
        if (!comm) {
            r.perRank[0] = mine;
            r.windowOffset = s.windowOffsetCells();
            return;
        }
        // Gather the snapshots through the communicator: process-backed
        // transports (shm, mpi) run non-root ranks in separate address
        // spaces, so writing into r.perRank from those ranks would be lost
        // and the comparison would pass vacuously on empty vectors.
        std::vector<std::byte> bytes(mine.size() * sizeof(double));
        std::memcpy(bytes.data(), mine.data(), bytes.size());
        const auto all = comm->gatherAllBytes(bytes);
        if (comm->isRoot()) {
            for (int rk = 0; rk < ranks; ++rk) {
                const auto& b = all[static_cast<std::size_t>(rk)];
                auto& dst = r.perRank[static_cast<std::size_t>(rk)];
                dst.resize(b.size() / sizeof(double));
                std::memcpy(dst.data(), b.data(), b.size());
            }
            r.windowOffset = s.windowOffsetCells();
        }
    };
    if (ranks == 1)
        body(nullptr);
    else
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) { body(&comm); });
    return r;
}

constexpr int kSteps = 12;

/// Contract 1: fused == split, bitwise, across the full ranks x threads x
/// window matrix with the startup dispatch target.
TEST(KernelEquivalence, FusedMatchesSplitBitwise) {
    for (const int ranks : {1, 2, 4}) {
        for (const int threads : {1, 4}) {
            for (const bool window : {false, true}) {
                SCOPED_TRACE("ranks=" + std::to_string(ranks) +
                             " threads=" + std::to_string(threads) +
                             " window=" + std::to_string(window));
                const RunResult split = runSchedule(
                    makeConfig(ranks, threads, window,
                               core::SweepSchedule::Split),
                    ranks, kSteps);
                const RunResult fused = runSchedule(
                    makeConfig(ranks, threads, window,
                               core::SweepSchedule::Fused),
                    ranks, kSteps);
                if (window) {
                    // The scenario must actually shift mid-run, otherwise
                    // the window leg of this matrix proves nothing.
                    EXPECT_GT(split.windowOffset, 0.0)
                        << "no window shift in the window-on scenario";
                }
                for (int rk = 0; rk < ranks; ++rk) {
                    const std::string d = diffSnapshots(
                        split.perRank[static_cast<std::size_t>(rk)],
                        fused.perRank[static_cast<std::size_t>(rk)]);
                    EXPECT_TRUE(d.empty()) << "rank " << rk << ": " << d;
                }
            }
        }
    }
}

/// Contract 2: every available dispatch target reproduces the narrowest
/// (scalar) target bitwise, under both schedules, serial and threaded+ranked.
TEST(KernelEquivalence, DispatchTargetsMatchBitwise) {
    TargetGuard guard;
    const auto targets = core::availableKernelTargets();
    ASSERT_FALSE(targets.empty());
    ASSERT_STREQ(targets.front()->name, "scalar")
        << "scalar fallback target must always be available";

    // (ranks, threads) legs: serial, and the threaded multi-rank worst case.
    const struct {
        int ranks, threads;
    } legs[] = {{1, 1}, {2, 4}, {4, 4}};

    for (const auto& leg : legs) {
        for (const bool window : {false, true}) {
            for (const auto schedule : {core::SweepSchedule::Split,
                                        core::SweepSchedule::Fused}) {
                SCOPED_TRACE(
                    "ranks=" + std::to_string(leg.ranks) +
                    " threads=" + std::to_string(leg.threads) +
                    " window=" + std::to_string(window) + " schedule=" +
                    (schedule == core::SweepSchedule::Fused ? "fused"
                                                            : "split"));
                const core::SolverConfig cfg =
                    makeConfig(leg.ranks, leg.threads, window, schedule);

                RunResult ref;
                for (const core::KernelTarget* t : targets) {
                    SCOPED_TRACE(std::string("target=") + t->name);
                    ASSERT_TRUE(core::setKernelTarget(t->name));
                    RunResult got = runSchedule(cfg, leg.ranks, kSteps);
                    if (t == targets.front()) {
                        ref = std::move(got);
                        continue;
                    }
                    for (int rk = 0; rk < leg.ranks; ++rk) {
                        const std::string d = diffSnapshots(
                            ref.perRank[static_cast<std::size_t>(rk)],
                            got.perRank[static_cast<std::size_t>(rk)]);
                        EXPECT_TRUE(d.empty())
                            << "rank " << rk << ": " << d;
                    }
                }
            }
        }
    }
}

/// The dispatch plumbing itself: unknown names are rejected without changing
/// the selection, "auto" restores the widest target, and the kernel-spec
/// parser splits schedule and target tokens correctly.
TEST(KernelEquivalence, DispatchSelection) {
    TargetGuard guard;
    const auto targets = core::availableKernelTargets();
    const core::KernelTarget* widest = targets.back();

    EXPECT_TRUE(core::setKernelTarget("auto"));
    EXPECT_EQ(core::activeKernelTarget(), widest);

    EXPECT_FALSE(core::setKernelTarget("avx9000"));
    EXPECT_EQ(core::activeKernelTarget(), widest) << "failed set must not "
                                                     "change the selection";

    EXPECT_TRUE(core::setKernelTarget("scalar"));
    EXPECT_STREQ(core::activeKernelTarget()->name, "scalar");
    EXPECT_EQ(core::activeKernelTarget()->width, 4);

    core::KernelSpec spec;
    std::string err;
    EXPECT_TRUE(core::parseKernelSpec("fused:avx2", spec, err)) << err;
    EXPECT_EQ(spec.schedule, core::SweepSchedule::Fused);
    EXPECT_EQ(spec.target, "avx2");

    EXPECT_TRUE(core::parseKernelSpec("scalar", spec, err)) << err;
    EXPECT_EQ(spec.schedule, core::SweepSchedule::Split);
    EXPECT_EQ(spec.target, "scalar");

    EXPECT_TRUE(core::parseKernelSpec("split", spec, err)) << err;
    EXPECT_EQ(spec.target, "auto");

    EXPECT_FALSE(core::parseKernelSpec("fused:fused", spec, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(core::parseKernelSpec("bogus", spec, err));
    EXPECT_FALSE(core::parseKernelSpec("", spec, err));
}

} // namespace
} // namespace tpf
