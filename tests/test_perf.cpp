/// Tests for the performance substrate: timers/MLUPs, STREAM bandwidth,
/// FMA peak measurement and the roofline model.

#include <gtest/gtest.h>

#include "perf/flops.h"
#include "perf/perf.h"
#include "perf/roofline.h"
#include "perf/streambench.h"

namespace tpf::perf {
namespace {

TEST(Perf, MlupsArithmetic) {
    EXPECT_DOUBLE_EQ(mlups(1000000, 10, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(mlups(60 * 60 * 60, 1, 0.1), 2.16);
}

TEST(Perf, TimeItReturnsPositiveSecondsPerCall) {
    volatile double sink = 0.0;
    const double sec = timeIt(
        [&] {
            for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
        },
        0.05);
    EXPECT_GT(sec, 0.0);
    EXPECT_LT(sec, 0.1);
}

TEST(Stream, BandwidthIsPlausible) {
    // Small arrays to keep the test fast; result must be in a physically
    // plausible range for any machine this runs on (0.5 .. 1000 GiB/s).
    const StreamResult r = runStream(/*megabytes=*/64, /*threads=*/1);
    EXPECT_GT(r.copyGiBs, 0.5);
    EXPECT_LT(r.copyGiBs, 1000.0);
    EXPECT_GT(r.triadGiBs, 0.5);
    EXPECT_LT(r.triadGiBs, 1000.0);
}

TEST(Roofline, BoundClassification) {
    // High intensity -> compute bound.
    RooflineInput hi{10.0, 10.0, 10000.0, 10.0};
    const auto rhi = evaluateRoofline(hi);
    EXPECT_TRUE(rhi.computeBound);
    EXPECT_DOUBLE_EQ(rhi.boundMlups, rhi.computeBoundMlups);

    // Low intensity -> bandwidth bound.
    RooflineInput lo{10.0, 10.0, 10.0, 10000.0};
    const auto rlo = evaluateRoofline(lo);
    EXPECT_FALSE(rlo.computeBound);
    EXPECT_DOUBLE_EQ(rlo.boundMlups, rlo.bandwidthBoundMlups);
}

TEST(Roofline, PaperNumbersReproduceTheBandwidthCeiling) {
    // The paper: 80 GiB/s node bandwidth / 680 B per cell = 126.3 MLUP/s.
    RooflineInput in{0.0, 80.0, 1384.0, 680.0};
    const auto r = evaluateRoofline(in);
    EXPECT_NEAR(r.bandwidthBoundMlups, 126.3, 0.5);
    EXPECT_NEAR(r.arithmeticIntensity, 2.0, 0.1);
}

namespace {

/// Throughput of a single *dependent* multiply-add chain: the slowest FLOP
/// rate any build of this code can produce (latency bound, no ILP, no SIMD).
/// Serves as a calibration floor for the peak measurement so the check stays
/// meaningful in Debug/-O1/non-vectorized builds instead of hard-coding an
/// optimized-build threshold.
double calibrateSerialChainGflops() {
    // Volatile reads keep the chain's inputs opaque so the compiler cannot
    // constant-fold the loop (acc = 1 is a fixpoint of the iteration).
    volatile double vAcc = 1.0, vM = 0.999999999, vA = 1e-9;
    double acc = vAcc;
    const double m = vM, a = vA;
    constexpr long long inner = 100000;
    long long iters = 0;
    const double t0 = now();
    do {
        for (long long i = 0; i < inner; ++i) acc = acc * m + a;
        iters += inner;
    } while (now() - t0 < 0.05);
    const double sec = now() - t0;
    volatile double sink = acc;
    (void)sink;
    return 2.0 * static_cast<double>(iters) / sec / 1e9;
}

} // namespace

TEST(Roofline, PeakMeasurementIsPlausible) {
    const double gflops = measurePeakGflopsPerCore();
    // Sane on any machine and build: positive, below any conceivable
    // single-core rate.
    EXPECT_GT(gflops, 0.01);
    EXPECT_LT(gflops, 500.0);

    // The 8-chain SIMD FMA benchmark must not be far slower than a single
    // dependent scalar chain. At -O0 the per-op Vec4d call overhead makes
    // the two roughly comparable (measured ratio ~0.5 on one-core Debug
    // builds), so the floor is deliberately loose: it catches an
    // order-of-magnitude pathology, not noise.
    const double serial = calibrateSerialChainGflops();
    EXPECT_GT(gflops, 0.25 * serial)
        << "peak " << gflops << " GFLOP/s vs serial-chain calibration "
        << serial;

#if defined(__AVX2__) && defined(__OPTIMIZE__)
    // Optimized build on a 4-wide-double FMA machine: at least a few GFLOP/s.
    EXPECT_GT(gflops, 2.0);
#else
    GTEST_SKIP() << "absolute peak floor only enforced in optimized AVX2 "
                    "builds; measured "
                 << gflops << " GFLOP/s (serial calibration " << serial << ")";
#endif
}

TEST(Flops, KernelEstimatesAreInTheExpectedRegime) {
    // The paper counts 1384 flops/cell for the mu-kernel; our model variant
    // with the full anti-trapping evaluation is of the same order.
    EXPECT_GT(kMuFlopsPerCell, 800.0);
    EXPECT_LT(kMuFlopsPerCell, 4000.0);
    EXPECT_GT(kPhiFlopsPerCell, 500.0);
    EXPECT_LT(kPhiFlopsPerCell, 3000.0);
    // Arithmetic intensity >> 1 flop/byte: compute bound, as in the paper.
    EXPECT_GT(kMuFlopsPerCell / kMuBytesPerCell, 2.0);
}

} // namespace
} // namespace tpf::perf
