/// Tests for the performance substrate: timers/MLUPs, STREAM bandwidth,
/// FMA peak measurement, the roofline model, and the BENCH_<n>.json
/// trajectory format (perf/bench_json.h) including the committed in-repo
/// trajectory files themselves.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <utility>
#include <vector>

#include "perf/bench_json.h"
#include "perf/flops.h"
#include "perf/perf.h"
#include "perf/roofline.h"
#include "perf/streambench.h"

namespace tpf::perf {
namespace {

TEST(Perf, MlupsArithmetic) {
    EXPECT_DOUBLE_EQ(mlups(1000000, 10, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(mlups(60 * 60 * 60, 1, 0.1), 2.16);
}

TEST(Perf, TimeItReturnsPositiveSecondsPerCall) {
    volatile double sink = 0.0;
    const double sec = timeIt(
        [&] {
            for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
        },
        0.05);
    EXPECT_GT(sec, 0.0);
    EXPECT_LT(sec, 0.1);
}

TEST(Stream, BandwidthIsPlausible) {
    // Small arrays to keep the test fast; result must be in a physically
    // plausible range for any machine this runs on (0.5 .. 1000 GiB/s).
    const StreamResult r = runStream(/*megabytes=*/64, /*threads=*/1);
    EXPECT_GT(r.copyGiBs, 0.5);
    EXPECT_LT(r.copyGiBs, 1000.0);
    EXPECT_GT(r.triadGiBs, 0.5);
    EXPECT_LT(r.triadGiBs, 1000.0);
}

TEST(Roofline, BoundClassification) {
    // High intensity -> compute bound.
    RooflineInput hi{10.0, 10.0, 10000.0, 10.0};
    const auto rhi = evaluateRoofline(hi);
    EXPECT_TRUE(rhi.computeBound);
    EXPECT_DOUBLE_EQ(rhi.boundMlups, rhi.computeBoundMlups);

    // Low intensity -> bandwidth bound.
    RooflineInput lo{10.0, 10.0, 10.0, 10000.0};
    const auto rlo = evaluateRoofline(lo);
    EXPECT_FALSE(rlo.computeBound);
    EXPECT_DOUBLE_EQ(rlo.boundMlups, rlo.bandwidthBoundMlups);
}

TEST(Roofline, PaperNumbersReproduceTheBandwidthCeiling) {
    // The paper: 80 GiB/s node bandwidth / 680 B per cell = 126.3 MLUP/s.
    RooflineInput in{0.0, 80.0, 1384.0, 680.0};
    const auto r = evaluateRoofline(in);
    EXPECT_NEAR(r.bandwidthBoundMlups, 126.3, 0.5);
    EXPECT_NEAR(r.arithmeticIntensity, 2.0, 0.1);
}

namespace {

/// Throughput of a single *dependent* multiply-add chain: the slowest FLOP
/// rate any build of this code can produce (latency bound, no ILP, no SIMD).
/// Serves as a calibration floor for the peak measurement so the check stays
/// meaningful in Debug/-O1/non-vectorized builds instead of hard-coding an
/// optimized-build threshold.
double calibrateSerialChainGflops() {
    // Volatile reads keep the chain's inputs opaque so the compiler cannot
    // constant-fold the loop (acc = 1 is a fixpoint of the iteration).
    volatile double vAcc = 1.0, vM = 0.999999999, vA = 1e-9;
    double acc = vAcc;
    const double m = vM, a = vA;
    constexpr long long inner = 100000;
    long long iters = 0;
    const double t0 = now();
    do {
        for (long long i = 0; i < inner; ++i) acc = acc * m + a;
        iters += inner;
    } while (now() - t0 < 0.05);
    const double sec = now() - t0;
    volatile double sink = acc;
    (void)sink;
    return 2.0 * static_cast<double>(iters) / sec / 1e9;
}

} // namespace

TEST(Roofline, PeakMeasurementIsPlausible) {
    const double gflops = measurePeakGflopsPerCore();
    // Sane on any machine and build: positive, below any conceivable
    // single-core rate.
    EXPECT_GT(gflops, 0.01);
    EXPECT_LT(gflops, 500.0);

    // The 8-chain SIMD FMA benchmark must not be far slower than a single
    // dependent scalar chain. At -O0 the per-op Vec4d call overhead makes
    // the two roughly comparable (measured ratio ~0.5 on one-core Debug
    // builds), so the floor is deliberately loose: it catches an
    // order-of-magnitude pathology, not noise.
    const double serial = calibrateSerialChainGflops();
    EXPECT_GT(gflops, 0.25 * serial)
        << "peak " << gflops << " GFLOP/s vs serial-chain calibration "
        << serial;

#if defined(__AVX2__) && defined(__OPTIMIZE__)
    // Optimized build on a 4-wide-double FMA machine: at least a few GFLOP/s.
    EXPECT_GT(gflops, 2.0);
#else
    GTEST_SKIP() << "absolute peak floor only enforced in optimized AVX2 "
                    "builds; measured "
                 << gflops << " GFLOP/s (serial calibration " << serial << ")";
#endif
}

TEST(Flops, KernelEstimatesAreInTheExpectedRegime) {
    // The paper counts 1384 flops/cell for the mu-kernel; our model variant
    // with the full anti-trapping evaluation is of the same order.
    EXPECT_GT(kMuFlopsPerCell, 800.0);
    EXPECT_LT(kMuFlopsPerCell, 4000.0);
    EXPECT_GT(kPhiFlopsPerCell, 500.0);
    EXPECT_LT(kPhiFlopsPerCell, 3000.0);
    // Arithmetic intensity >> 1 flop/byte: compute bound, as in the paper.
    EXPECT_GT(kMuFlopsPerCell / kMuBytesPerCell, 2.0);
}

// ---------------------------------------------------------------------------
// BENCH_<n>.json trajectory format.

BenchDoc sampleDoc() {
    BenchDoc d;
    d.machine = "x86-64 fma avx2, 4 hw threads";
    d.entries = {{"bench_fused", "split avx2 60^3 t1", 3.25, 680.0},
                 {"bench_fused", "fused avx2 60^3 t1", 3.75, 680.0},
                 {"bench_roofline", "mu simd+Tz+stag 40^3 t1", 4.5, 0.0}};
    return d;
}

TEST(BenchJson, RoundTripPreservesEverything) {
    const BenchDoc d = sampleDoc();
    const BenchDoc r = parseBenchJson(writeBenchJson(d));
    EXPECT_EQ(r.machine, d.machine);
    ASSERT_EQ(r.entries.size(), d.entries.size());
    for (std::size_t i = 0; i < d.entries.size(); ++i) {
        EXPECT_EQ(r.entries[i].bench, d.entries[i].bench);
        EXPECT_EQ(r.entries[i].variant, d.entries[i].variant);
        EXPECT_EQ(r.entries[i].mlups, d.entries[i].mlups);
        EXPECT_EQ(r.entries[i].bytesPerCell, d.entries[i].bytesPerCell);
    }
}

TEST(BenchJson, SerializationIsDeterministicAndExact) {
    // %.17g round-trips every double exactly; re-serializing a parsed
    // document must reproduce it byte for byte (the committed BENCH files
    // rely on this for clean diffs).
    BenchDoc d = sampleDoc();
    d.entries[0].mlups = 1.0 / 3.0;
    d.entries[1].mlups = 3.2156789012345678;
    d.entries[2].mlups = 1e-300;
    const std::string once = writeBenchJson(d);
    const std::string twice = writeBenchJson(parseBenchJson(once));
    EXPECT_EQ(once, twice);
    EXPECT_EQ(parseBenchJson(once).entries[0].mlups, 1.0 / 3.0);
    EXPECT_EQ(parseBenchJson(once).entries[2].mlups, 1e-300);
}

TEST(BenchJson, ParserRejectsWithPointedErrors) {
    const auto failsWith = [](const std::string& text,
                              const std::string& needle) {
        try {
            parseBenchJson(text);
            ADD_FAILURE() << "expected BenchJsonError for: " << text;
        } catch (const BenchJsonError& e) {
            EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
                << "message '" << e.what() << "' lacks '" << needle << "'";
        }
    };
    failsWith("", "line 1");
    failsWith("[]", "line 1");
    failsWith("{\"schema\": \"nonsense v9\"", "schema");
    // Pointed location: the error must name the line of the violation.
    failsWith("{\n  \"schema\": \"tpf-bench v1\",\n  \"bogus\": 1\n}",
              "line 3");
    failsWith("{\n  \"schema\": \"tpf-bench v1\",\n  \"machine\": \"m\",\n"
              "  \"entries\": [{\"bench\": \"b\"}]\n}",
              "variant");
    const std::string good = writeBenchJson(sampleDoc());
    failsWith(good + "trailing", "trailing");
    failsWith("{\"schema\": \"tpf-bench v1\", \"machine\": \"m\", "
              "\"entries\": [{\"bench\": \"b\", \"variant\": \"v\", "
              "\"mlups\": fast}]}",
              "number");
}

TEST(BenchJson, UpsertReplacesMatchingRowsAndAppendsNew) {
    BenchDoc d = sampleDoc();
    upsertBenchEntries(
        d, {{"bench_fused", "fused avx2 60^3 t1", 4.0, 680.0}, // replace
            {"bench_kernels_micro", "phi basic 40^3 t1", 1.5, 0.0}}); // new
    ASSERT_EQ(d.entries.size(), 4u);
    EXPECT_EQ(d.entries[1].variant, "fused avx2 60^3 t1");
    EXPECT_EQ(d.entries[1].mlups, 4.0) << "matching row must be replaced";
    EXPECT_EQ(d.entries[3].bench, "bench_kernels_micro")
        << "unknown row must be appended at the end";
    EXPECT_EQ(d.entries[0].mlups, 3.25) << "untouched rows must stay";
}

TEST(BenchJson, DiffGatesRegressionsOnTheSameMachineOnly) {
    const BenchDoc base = sampleDoc();

    BenchDoc same = base;
    same.entries[1].mlups *= 0.9; // -10% with 20% tolerance: fine
    EXPECT_TRUE(diffBench(base, same, 0.2).ok)
        << diffBench(base, same, 0.2).message;

    BenchDoc slow = base;
    slow.entries[1].mlups *= 0.5; // -50%: regression
    const BenchDiff d = diffBench(base, slow, 0.2);
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.message.find("fused avx2 60^3 t1"), std::string::npos)
        << d.message;

    BenchDoc missing = base;
    missing.entries.erase(missing.entries.begin());
    EXPECT_FALSE(diffBench(base, missing, 0.2).ok)
        << "a dropped entry must be reported";

    BenchDoc other = slow;
    other.machine = "some other box";
    EXPECT_TRUE(diffBench(base, other, 0.2).ok)
        << "trajectories from different machines must compare trivially ok";
}

TEST(BenchJson, FileRoundTripAndFreshUpsert) {
    namespace fs = std::filesystem;
    const fs::path p = fs::temp_directory_path() /
                       ("tpf_bench_json_test_" + std::to_string(::getpid()) +
                        ".json");
    fs::remove(p);

    // upsertBenchFile on a missing file starts a fresh machine-stamped doc.
    upsertBenchFile(p.string(), {{"bench_x", "v1", 2.0, 0.0}});
    BenchDoc d = readBenchJsonFile(p.string());
    EXPECT_EQ(d.machine, machineFingerprint());
    ASSERT_EQ(d.entries.size(), 1u);

    // A second binary upserts into the same file without clobbering.
    upsertBenchFile(p.string(), {{"bench_y", "v1", 3.0, 0.0}});
    d = readBenchJsonFile(p.string());
    ASSERT_EQ(d.entries.size(), 2u);
    EXPECT_EQ(d.entries[0].bench, "bench_x");

    fs::remove(p);
    EXPECT_THROW(readBenchJsonFile(p.string()), BenchJsonError);
}

TEST(BenchJson, MachineFingerprintIsStableAndAnonymous) {
    const std::string fp = machineFingerprint();
    EXPECT_EQ(fp, machineFingerprint());
    EXPECT_NE(fp.find("x86-64"), std::string::npos);
    EXPECT_NE(fp.find("hw threads"), std::string::npos);
}

/// The ctest gate over the *committed* trajectory: every BENCH_<n>.json at
/// the repo root must parse, carry plausible entries, and — within one file —
/// show the fused sweep beating the split schedule it was measured against.
/// Consecutive versions from the same machine must not regress by more than
/// half (a deliberately loose tolerance: the gate exists to catch a
/// catastrophic slowdown or a stale file, not run-to-run noise).
TEST(BenchJson, CommittedTrajectoryIsValid) {
    namespace fs = std::filesystem;
    std::vector<std::pair<int, fs::path>> files;
    for (const auto& e : fs::directory_iterator(TPF_REPO_ROOT)) {
        const std::string name = e.path().filename().string();
        int n = 0;
        if (std::sscanf(name.c_str(), "BENCH_%d.json", &n) == 1)
            files.emplace_back(n, e.path());
    }
    ASSERT_FALSE(files.empty())
        << "no BENCH_<n>.json at the repo root — the perf trajectory is gone";
    std::sort(files.begin(), files.end());

    BenchDoc prev;
    bool havePrev = false;
    for (const auto& [n, path] : files) {
        SCOPED_TRACE(path.string());
        const BenchDoc doc = readBenchJsonFile(path.string());
        EXPECT_FALSE(doc.machine.empty());
        EXPECT_FALSE(doc.entries.empty());
        double split = -1.0, fused = -1.0;
        for (const auto& en : doc.entries) {
            EXPECT_GT(en.mlups, 0.0)
                << en.bench << " / " << en.variant << " has no throughput";
            EXPECT_LT(en.mlups, 1e6) << "implausible MLUP/s";
            if (en.bench == "bench_fused") {
                if (en.variant.rfind("split ", 0) == 0) split = en.mlups;
                if (en.variant.rfind("fused ", 0) == 0) fused = en.mlups;
            }
        }
        if (split > 0.0 || fused > 0.0) {
            ASSERT_GT(split, 0.0) << "fused entry without its split baseline";
            ASSERT_GT(fused, 0.0) << "split entry without its fused result";
            EXPECT_GT(fused, split)
                << "the committed trajectory must show the fused sweep "
                   "beating the split schedule";
        }
        if (havePrev) {
            const BenchDiff d = diffBench(prev, doc, 0.5);
            EXPECT_TRUE(d.ok) << d.message;
        }
        prev = doc;
        havePrev = true;
    }

    // The latest trajectory entry must carry the in-situ mesh pipeline
    // measurements (bench_mesh) and stay inside the paper's budget: one
    // frame every 100 steps must cost less than 10% of solver time, or the
    // I/O-reduction argument of §3.2 collapses.
    bool haveExtract = false, haveSimplify = false, haveGather = false;
    double overhead = -1.0;
    for (const auto& en : prev.entries) {
        if (en.bench != "bench_mesh") continue;
        if (en.variant.rfind("extract ", 0) == 0) haveExtract = true;
        if (en.variant.rfind("simplify ", 0) == 0) haveSimplify = true;
        if (en.variant.rfind("gather ", 0) == 0) haveGather = true;
        if (en.variant == "overhead fraction cadence100 r1 t1")
            overhead = en.mlups;
    }
    EXPECT_TRUE(haveExtract) << "latest BENCH is missing bench_mesh extract";
    EXPECT_TRUE(haveSimplify) << "latest BENCH is missing bench_mesh simplify";
    EXPECT_TRUE(haveGather) << "latest BENCH is missing bench_mesh gather";
    ASSERT_GT(overhead, 0.0)
        << "latest BENCH is missing the bench_mesh overhead fraction";
    EXPECT_LT(overhead, 0.1)
        << "in-situ extraction at cadence 100 exceeds 10% of solver time";

    // The latest trajectory must also carry the telemetry-overhead proof
    // (bench_obs): with tracing + metrics + fan-out stats fully on, step
    // throughput stays within 2% of the uninstrumented run — the contract
    // that makes always-on telemetry viable for multi-day runs
    // (docs/OBSERVABILITY.md).
    bool haveObsBaseline = false, haveObsInstrumented = false;
    double obsOverhead = -1.0;
    for (const auto& en : prev.entries) {
        if (en.bench != "bench_obs") continue;
        if (en.variant.rfind("baseline ", 0) == 0) haveObsBaseline = true;
        if (en.variant.rfind("instrumented ", 0) == 0)
            haveObsInstrumented = true;
        if (en.variant == "overhead fraction trace+metrics t1")
            obsOverhead = en.mlups;
    }
    EXPECT_TRUE(haveObsBaseline)
        << "latest BENCH is missing the bench_obs obs-off baseline";
    EXPECT_TRUE(haveObsInstrumented)
        << "latest BENCH is missing the bench_obs instrumented run";
    ASSERT_GT(obsOverhead, 0.0)
        << "latest BENCH is missing the bench_obs overhead fraction";
    EXPECT_LT(obsOverhead, 0.02)
        << "telemetry overhead exceeds the 2% non-perturbation budget";
}

} // namespace
} // namespace tpf::perf
