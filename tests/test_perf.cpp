/// Tests for the performance substrate: timers/MLUPs, STREAM bandwidth,
/// FMA peak measurement and the roofline model.

#include <gtest/gtest.h>

#include "perf/flops.h"
#include "perf/perf.h"
#include "perf/roofline.h"
#include "perf/streambench.h"

namespace tpf::perf {
namespace {

TEST(Perf, MlupsArithmetic) {
    EXPECT_DOUBLE_EQ(mlups(1000000, 10, 1.0), 10.0);
    EXPECT_DOUBLE_EQ(mlups(60 * 60 * 60, 1, 0.1), 2.16);
}

TEST(Perf, TimeItReturnsPositiveSecondsPerCall) {
    volatile double sink = 0.0;
    const double sec = timeIt(
        [&] {
            for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
        },
        0.05);
    EXPECT_GT(sec, 0.0);
    EXPECT_LT(sec, 0.1);
}

TEST(Stream, BandwidthIsPlausible) {
    // Small arrays to keep the test fast; result must be in a physically
    // plausible range for any machine this runs on (0.5 .. 1000 GiB/s).
    const StreamResult r = runStream(/*megabytes=*/64, /*threads=*/1);
    EXPECT_GT(r.copyGiBs, 0.5);
    EXPECT_LT(r.copyGiBs, 1000.0);
    EXPECT_GT(r.triadGiBs, 0.5);
    EXPECT_LT(r.triadGiBs, 1000.0);
}

TEST(Roofline, BoundClassification) {
    // High intensity -> compute bound.
    RooflineInput hi{10.0, 10.0, 10000.0, 10.0};
    const auto rhi = evaluateRoofline(hi);
    EXPECT_TRUE(rhi.computeBound);
    EXPECT_DOUBLE_EQ(rhi.boundMlups, rhi.computeBoundMlups);

    // Low intensity -> bandwidth bound.
    RooflineInput lo{10.0, 10.0, 10.0, 10000.0};
    const auto rlo = evaluateRoofline(lo);
    EXPECT_FALSE(rlo.computeBound);
    EXPECT_DOUBLE_EQ(rlo.boundMlups, rlo.bandwidthBoundMlups);
}

TEST(Roofline, PaperNumbersReproduceTheBandwidthCeiling) {
    // The paper: 80 GiB/s node bandwidth / 680 B per cell = 126.3 MLUP/s.
    RooflineInput in{0.0, 80.0, 1384.0, 680.0};
    const auto r = evaluateRoofline(in);
    EXPECT_NEAR(r.bandwidthBoundMlups, 126.3, 0.5);
    EXPECT_NEAR(r.arithmeticIntensity, 2.0, 0.1);
}

TEST(Roofline, PeakMeasurementIsPlausible) {
    const double gflops = measurePeakGflopsPerCore();
    // Any 4-wide-double FMA machine: at least a few GFLOP/s, below 200.
    EXPECT_GT(gflops, 2.0);
    EXPECT_LT(gflops, 500.0);
}

TEST(Flops, KernelEstimatesAreInTheExpectedRegime) {
    // The paper counts 1384 flops/cell for the mu-kernel; our model variant
    // with the full anti-trapping evaluation is of the same order.
    EXPECT_GT(kMuFlopsPerCell, 800.0);
    EXPECT_LT(kMuFlopsPerCell, 4000.0);
    EXPECT_GT(kPhiFlopsPerCell, 500.0);
    EXPECT_LT(kPhiFlopsPerCell, 3000.0);
    // Arithmetic intensity >> 1 flop/byte: compute bound, as in the paper.
    EXPECT_GT(kMuFlopsPerCell / kMuBytesPerCell, 2.0);
}

} // namespace
} // namespace tpf::perf
