/// Tests for the microstructure analysis module: fractions/profiles,
/// two-point correlation + PCA, lamella labeling and split/merge tracking.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/correlation.h"
#include "analysis/fractions.h"
#include "analysis/lamellae.h"
#include "core/regions.h"
#include "core/voronoi.h"
#include "thermo/agalcu.h"

namespace tpf::analysis {
namespace {

using core::LIQ;
using core::N;

/// Build a lamellar block: phase stripes along x of the given width, solid
/// up to zFront, liquid above.
core::SimBlock makeLamellar(int stripe, Int3 size = {36, 36, 24},
                            int zFront = 16) {
    core::SimBlock b(size);
    Field<double>& phi = b.phiSrc;
    forEachCell(phi.withGhosts(), [&](int x, int y, int z) {
        (void)y;
        for (int a = 0; a < N; ++a) phi(x, y, z, a) = 0.0;
        if (z >= zFront) {
            phi(x, y, z, LIQ) = 1.0;
        } else {
            const int xi = ((x % size.x) + size.x) % size.x;
            phi(x, y, z, (xi / stripe) % 3) = 1.0;
        }
    });
    return b;
}

TEST(Fractions, GlobalAndProfile) {
    auto b = makeLamellar(12, {36, 36, 24}, 12);
    const auto f = phaseFractions(b.phiSrc);
    EXPECT_NEAR(f[LIQ], 0.5, 1e-12); // half the height is liquid
    EXPECT_NEAR(f[0] + f[1] + f[2], 0.5, 1e-12);
    EXPECT_NEAR(f[0], f[1], 1e-12); // equal stripes

    const auto prof = zProfile(b.phiSrc);
    ASSERT_EQ(prof.size(), 24u);
    EXPECT_NEAR(prof[0][LIQ], 0.0, 1e-12);
    EXPECT_NEAR(prof[20][LIQ], 1.0, 1e-12);
}

TEST(Fractions, SolidSlabNormalization) {
    auto b = makeLamellar(12, {36, 36, 24}, 12);
    const auto sf = solidFractionsInSlab(b.phiSrc, 0, 11);
    EXPECT_NEAR(sf[0], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(sf[1], 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(sf[2], 1.0 / 3.0, 1e-12);
}

TEST(Fractions, FrontDetection) {
    auto b = makeLamellar(12, {36, 36, 24}, 10);
    EXPECT_EQ(frontZ(b.phiSrc), 9);
}

TEST(Correlation, S2StartsAtFractionAndOscillatesWithStripePeriod) {
    auto b = makeLamellar(12); // period 36 in x, each phase 12 wide
    const auto s2 = twoPointCorrelation(b.phiSrc, 0, 0, 36, 2, 10);

    EXPECT_NEAR(s2[0], 1.0 / 3.0, 1e-12); // S2(0) = phase fraction
    // Full period: S2(36) = S2(0) for the exactly periodic stripes.
    EXPECT_NEAR(s2[36], s2[0], 1e-12);
    // Anti-phase at half period: stripes of width 12 with period 36 do not
    // overlap themselves at shift 18.
    EXPECT_LT(s2[18], 0.1);
}

TEST(Correlation, SpacingEstimateFindsThePeriod) {
    auto b = makeLamellar(8, {48, 48, 16}, 16); // period 24
    const auto s2 = twoPointCorrelation(b.phiSrc, 1, 0, 30, 2, 10);
    const double spacing = lamellarSpacingEstimate(s2);
    EXPECT_NEAR(spacing, 24.0, 2.0);
}

TEST(Correlation, YAxisSeesNoStructureForXStripes) {
    auto b = makeLamellar(12);
    const auto s2 = twoPointCorrelation(b.phiSrc, 0, 1, 16, 2, 10);
    // Stripes are uniform along y: S2 is flat at the fraction value.
    for (double v : s2) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Correlation, PcaDetectsLamellarAnisotropyAndOrientation) {
    auto b = makeLamellar(12);
    const int maxShift = 12;
    const auto map = correlationMap2D(b.phiSrc, 0, 4, maxShift);
    const auto pca = correlationPca(map, maxShift);

    // Correlation extends along y (stripe direction) and is short along x.
    EXPECT_GT(pca.lambdaMajor, pca.lambdaMinor);
    EXPECT_LT(pca.anisotropy(), 0.6);
    EXPECT_NEAR(std::abs(pca.axisMajor.y), 1.0, 1e-6)
        << "major axis must align with the stripes";
}

TEST(Correlation, PcaIsIsotropicForCheckerboardBlobs) {
    core::SimBlock b({32, 32, 8});
    Field<double>& phi = b.phiSrc;
    forEachCell(phi.withGhosts(), [&](int x, int y, int z) {
        for (int a = 0; a < N; ++a) phi(x, y, z, a) = 0.0;
        const bool in = ((x / 4) + (y / 4)) % 2 == 0;
        phi(x, y, z, in ? 0 : LIQ) = 1.0;
        (void)z;
    });
    const auto map = correlationMap2D(phi, 0, 2, 8);
    const auto pca = correlationPca(map, 8);
    EXPECT_GT(pca.anisotropy(), 0.8) << "checkerboard is x/y symmetric";
}

TEST(Lamellae, CountsStripesPerSlice) {
    auto b = makeLamellar(12, {36, 36, 24}, 16);
    const auto labels = labelSlice(b.phiSrc, 0, 4);
    EXPECT_EQ(labels.count, 1) << "one stripe of phase 0 per period";
    const auto st = analyzeLamellae(b.phiSrc, 0, 0, 15);
    for (int c : st.countPerSlice) EXPECT_EQ(c, 1);
    EXPECT_EQ(st.splits, 0);
    EXPECT_EQ(st.merges, 0);
}

TEST(Lamellae, PeriodicWrappingJoinsComponents) {
    core::SimBlock b({16, 16, 4});
    Field<double>& phi = b.phiSrc;
    forEachCell(phi.withGhosts(), [&](int x, int y, int z) {
        (void)y;
        (void)z;
        for (int a = 0; a < N; ++a) phi(x, y, z, a) = 0.0;
        // Two x-bands touching only across the periodic x boundary.
        const int xi = ((x % 16) + 16) % 16;
        phi(x, y, z, (xi < 3 || xi >= 13) ? 0 : LIQ) = 1.0;
    });
    EXPECT_EQ(labelSlice(phi, 0, 0).count, 1)
        << "wrapped band must be one component";
}

TEST(Lamellae, DetectsSplitAndMergeAlongZ) {
    core::SimBlock b({24, 24, 6});
    Field<double>& phi = b.phiSrc;
    forEachCell(phi.withGhosts(), [&](int x, int y, int z) {
        (void)y;
        for (int a = 0; a < N; ++a) phi(x, y, z, a) = 0.0;
        bool in;
        const int xi = ((x % 24) + 24) % 24;
        if (z < 2)
            in = xi >= 4 && xi < 20; // one wide bar
        else if (z < 4)
            in = (xi >= 4 && xi < 10) || (xi >= 14 && xi < 20); // two bars
        else
            in = xi >= 4 && xi < 20; // merged again
        phi(x, y, z, in ? 1 : LIQ) = 1.0;
    });
    const auto st = analyzeLamellae(phi, 1, 0, 5);
    EXPECT_EQ(st.countPerSlice[0], 1);
    EXPECT_EQ(st.countPerSlice[2], 2);
    EXPECT_EQ(st.countPerSlice[5], 1);
    EXPECT_GE(st.splits, 1);
    EXPECT_GE(st.merges, 1);
}

// --- edge-case properties of the labeling/spacing primitives -------------
// (these feed the in-situ observer pipeline, so degenerate slices must be
// handled, not asserted away)

/// Build an indicator plane from a lambda.
template <typename Fn>
std::vector<unsigned char> makePlane(int nx, int ny, Fn in) {
    std::vector<unsigned char> ind(static_cast<std::size_t>(nx) * ny, 0);
    for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x)
            ind[static_cast<std::size_t>(y) * nx + x] = in(x, y) ? 1 : 0;
    return ind;
}

TEST(LamellaeEdgeCases, EmptySliceHasNoComponents) {
    const auto ind = makePlane(8, 8, [](int, int) { return false; });
    const auto labels = labelPlane(ind.data(), 8, 8);
    EXPECT_EQ(labels.count, 0);
    for (int l : labels.label) EXPECT_EQ(l, -1);
}

TEST(LamellaeEdgeCases, FullSliceIsOneComponent) {
    const auto ind = makePlane(8, 8, [](int, int) { return true; });
    const auto labels = labelPlane(ind.data(), 8, 8);
    EXPECT_EQ(labels.count, 1);
    for (int l : labels.label) EXPECT_EQ(l, 0);
}

TEST(LamellaeEdgeCases, SingleCellComponents) {
    // Isolated cells, including one at the corner whose periodic neighbors
    // are empty: each is its own component.
    const auto ind = makePlane(9, 9, [](int x, int y) {
        return (x == 0 && y == 0) || (x == 4 && y == 4) || (x == 7 && y == 2);
    });
    const auto labels = labelPlane(ind.data(), 9, 9);
    EXPECT_EQ(labels.count, 3);
}

TEST(LamellaeEdgeCases, StripeWrappingBothPeriodicEdges) {
    // A cross of one x-row and one y-column, each closing on itself through
    // the periodic boundary in *both* directions: one component, even
    // though the scan meets it in four disconnected-looking pieces.
    const auto ind =
        makePlane(10, 10, [](int x, int y) { return x == 0 || y == 0; });
    const auto labels = labelPlane(ind.data(), 10, 10);
    EXPECT_EQ(labels.count, 1);
}

TEST(LamellaeEdgeCases, SingleSliceStackHasNoTransitions) {
    std::vector<std::vector<unsigned char>> planes{
        makePlane(6, 6, [](int x, int) { return x < 3; })};
    const auto st = analyzeLamellaePlanes(planes, 6, 6);
    ASSERT_EQ(st.countPerSlice.size(), 1u);
    EXPECT_EQ(st.countPerSlice[0], 1);
    EXPECT_EQ(st.splits + st.merges + st.appears + st.vanishes, 0);
}

TEST(LamellaeEdgeCases, EmptyStackYieldsZeroStats) {
    const auto st = analyzeLamellaePlanes({}, 6, 6);
    EXPECT_TRUE(st.countPerSlice.empty());
    EXPECT_EQ(st.splits + st.merges + st.appears + st.vanishes, 0);
}

TEST(LamellaeEdgeCases, AppearAndVanishBetweenEmptyAndFullSlices) {
    std::vector<std::vector<unsigned char>> planes{
        makePlane(6, 6, [](int, int) { return false; }),
        makePlane(6, 6, [](int x, int) { return x < 2; }), // appears
        makePlane(6, 6, [](int, int) { return false; }),   // vanishes
    };
    const auto st = analyzeLamellaePlanes(planes, 6, 6);
    EXPECT_EQ(st.appears, 1);
    EXPECT_EQ(st.vanishes, 1);
    EXPECT_EQ(st.splits, 0);
    EXPECT_EQ(st.merges, 0);
}

TEST(SpacingEstimate, MonotoneAndConstantProfilesHaveNoEstimate) {
    // The header contract: 0 means "no estimate", returned for profiles
    // that never complete the descend-then-ascend pattern.
    EXPECT_EQ(lamellarSpacingEstimate({0.5, 0.4, 0.3, 0.2, 0.1}), 0.0);
    EXPECT_EQ(lamellarSpacingEstimate({0.1, 0.2, 0.3, 0.4, 0.5}), 0.0);
    EXPECT_EQ(lamellarSpacingEstimate({0.3, 0.3, 0.3, 0.3, 0.3}), 0.0);
    EXPECT_EQ(lamellarSpacingEstimate({}), 0.0);
    EXPECT_EQ(lamellarSpacingEstimate({0.5}), 0.0);
    EXPECT_EQ(lamellarSpacingEstimate({0.5, 0.2}), 0.0);
}

TEST(SpacingEstimate, FindsTheFirstMaximumAfterTheFirstMinimum) {
    // Clean oscillation: minimum at r=2, next maximum at r=4.
    EXPECT_EQ(lamellarSpacingEstimate({0.5, 0.3, 0.1, 0.3, 0.5, 0.3}), 4.0);
    // Descend ending at the tail (maximum only at the boundary): no
    // *interior* maximum, still an estimate of the ascent's end? No — the
    // ascent must terminate before the end to count as a maximum.
    EXPECT_EQ(lamellarSpacingEstimate({0.5, 0.3, 0.1, 0.3, 0.5}), 0.0);
}

TEST(LamellaeEdgeCases, FieldWrappersMatchPlaneCore) {
    // labelSlice/analyzeLamellae are thin wrappers over the plane core; a
    // stripe block must give identical answers through both entries.
    auto b = makeLamellar(12, {36, 36, 8}, 8);
    const auto viaField = labelSlice(b.phiSrc, 0, 3);
    std::vector<unsigned char> ind(36 * 36);
    for (int y = 0; y < 36; ++y)
        for (int x = 0; x < 36; ++x)
            ind[static_cast<std::size_t>(y) * 36 + x] =
                b.phiSrc(x, y, 3, 0) > 0.5 ? 1 : 0;
    const auto viaPlane = labelPlane(ind.data(), 36, 36);
    EXPECT_EQ(viaField.count, viaPlane.count);
    EXPECT_EQ(viaField.label, viaPlane.label);
}

TEST(Lamellae, RealSimulationHasThreePhaseLamellae) {
    // Voronoi-initialized solid region: each solid phase forms a plausible
    // number of lamellae (not 0, not the whole plane).
    const auto sys = thermo::makeAgAlCu();
    core::SimBlock b({48, 48, 16});
    auto bf = BlockForest::createUniform({48, 48, 16}, {48, 48, 16},
                                         {true, true, false}, 1);
    core::VoronoiConfig cfg;
    cfg.fillHeight = 12;
    core::initVoronoi(b, bf, cfg, sys);

    for (int phase = 0; phase < 3; ++phase) {
        const auto labels = labelSlice(b.phiSrc, phase, 2);
        EXPECT_GE(labels.count, 1) << "phase " << phase;
        EXPECT_LE(labels.count, 40);
    }
}

} // namespace
} // namespace tpf::analysis
