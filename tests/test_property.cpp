/// Property-based and edge-case tests across modules: mesh topology through
/// the full extraction/simplification pipeline (torus genus), projection
/// optimality against sampled candidates, moving-window + multi-rank bitwise
/// equivalence, long-run physical invariants, checkpoint error paths.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "core/solver.h"
#include "io/checkpoint.h"
#include "io/marching_cubes.h"
#include "io/simplify.h"
#include "util/random.h"
#include "util/simplex.h"

namespace tpf {
namespace {

// --- mesh topology: the pipeline preserves genus -------------------------

Field<double> torusField(int n, double R, double r) {
    Field<double> f(n, n, n, 1, 1, Layout::fzyx);
    const double c = 0.5 * n;
    forEachCell(f.withGhosts(), [&](int x, int y, int z) {
        const double px = x + 0.5 - c, py = y + 0.5 - c, pz = z + 0.5 - c;
        const double q = std::sqrt(px * px + py * py) - R;
        const double d = std::sqrt(q * q + pz * pz) - r;
        f(x, y, z, 0) = 1.0 / (1.0 + std::exp(2.0 * d));
    });
    return f;
}

TEST(MeshTopology, TorusHasEulerCharacteristicZero) {
    const auto f = torusField(48, 14.0, 6.0);
    io::TriMesh m = io::extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    ASSERT_GT(m.numTriangles(), 500u);
    EXPECT_TRUE(m.isClosed());
    EXPECT_EQ(m.eulerCharacteristic(), 0) << "torus has genus 1";
}

TEST(MeshTopology, SimplificationPreservesTorusGenus) {
    const auto f = torusField(48, 14.0, 6.0);
    io::TriMesh m = io::extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    io::SimplifyOptions opt;
    opt.targetTriangles = m.numTriangles() / 8;
    io::simplifyMesh(m, opt);
    EXPECT_TRUE(m.isClosed());
    EXPECT_EQ(m.eulerCharacteristic(), 0)
        << "edge collapse must not change the topology";
}

TEST(MeshTopology, TwoSpheresGiveEulerCharacteristic4) {
    Field<double> f(48, 24, 24, 1, 1, Layout::fzyx);
    forEachCell(f.withGhosts(), [&](int x, int y, int z) {
        const double d1 = std::hypot(x + 0.5 - 12.0,
                                     std::hypot(y + 0.5 - 12.0, z + 0.5 - 12.0)) -
                          6.0;
        const double d2 = std::hypot(x + 0.5 - 36.0,
                                     std::hypot(y + 0.5 - 12.0, z + 0.5 - 12.0)) -
                          6.0;
        const double d = std::min(d1, d2);
        f(x, y, z, 0) = 1.0 / (1.0 + std::exp(2.0 * d));
    });
    io::TriMesh m = io::extractIsoSurface(f, 0, 0.5, {0, 0, 0});
    EXPECT_TRUE(m.isClosed());
    EXPECT_EQ(m.eulerCharacteristic(), 4) << "two spheres: chi = 2 + 2";
}

// --- simplex projection is the true nearest point ------------------------

TEST(SimplexProperty, ProjectionBeatsSampledSimplexPoints) {
    Random rng(17);
    for (int trial = 0; trial < 100; ++trial) {
        const double y0 = rng.uniform(-2.0, 2.0), y1 = rng.uniform(-2.0, 2.0);
        const double y2 = rng.uniform(-2.0, 2.0), y3 = rng.uniform(-2.0, 2.0);
        double p0 = y0, p1 = y1, p2 = y2, p3 = y3;
        projectToSimplex4(p0, p1, p2, p3);

        auto dist2 = [&](double a, double b, double c, double d) {
            return (a - y0) * (a - y0) + (b - y1) * (b - y1) +
                   (c - y2) * (c - y2) + (d - y3) * (d - y3);
        };
        const double dp = dist2(p0, p1, p2, p3);

        // Random candidates on the simplex (Dirichlet-ish sampling).
        for (int cand = 0; cand < 50; ++cand) {
            double c0 = -std::log(rng.uniform() + 1e-300);
            double c1 = -std::log(rng.uniform() + 1e-300);
            double c2 = -std::log(rng.uniform() + 1e-300);
            double c3 = -std::log(rng.uniform() + 1e-300);
            const double s = c0 + c1 + c2 + c3;
            c0 /= s;
            c1 /= s;
            c2 /= s;
            c3 /= s;
            EXPECT_GE(dist2(c0, c1, c2, c3) + 1e-12, dp)
                << "found a simplex point closer than the projection";
        }
        // Vertices and the centroid as extra candidates.
        EXPECT_GE(dist2(1, 0, 0, 0) + 1e-12, dp);
        EXPECT_GE(dist2(0, 0, 0, 1) + 1e-12, dp);
        EXPECT_GE(dist2(0.25, 0.25, 0.25, 0.25) + 1e-12, dp);
    }
}

// --- moving window + multi-rank bitwise equivalence ----------------------

TEST(WindowProperty, MovingWindowIsRankCountInvariant) {
    core::SolverConfig cfg;
    cfg.globalCells = {24, 24, 48};
    cfg.model.temp.gradient = 0.8;
    cfg.model.temp.zEut0 = 24.0;
    cfg.model.temp.velocity = 0.02;
    cfg.init.fillHeight = 12;
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.2; // shifts early
    cfg.window.checkEvery = 5;

    double serialLiquid = 0.0, serialOffset = 0.0;
    {
        core::Solver s(cfg);
        s.initialize();
        s.run(80);
        serialLiquid = s.phaseFractions()[core::LIQ];
        serialOffset = s.windowOffsetCells();
    }
    EXPECT_GT(serialOffset, 0.0) << "test requires actual shifts";

    cfg.blockSize = {24, 24, 12};
    vmpi::runParallel(4, [&](vmpi::Comm& comm) {
        core::Solver s(cfg, &comm);
        s.initialize();
        s.run(80);
        // Shift count is exact; the fraction diagnostic sums in rank order,
        // so it matches to reduction rounding (the field state itself is
        // bitwise invariant — covered by SolverRankCountTest).
        EXPECT_EQ(s.windowOffsetCells(), serialOffset);
        EXPECT_NEAR(s.phaseFractions()[core::LIQ], serialLiquid, 1e-13)
            << "window shifts must be rank-count invariant";
    });
}

// --- long-run physical invariants -----------------------------------------

TEST(LongRun, EightHundredStepsStayPhysical) {
    core::SolverConfig cfg;
    cfg.globalCells = {24, 24, 40};
    cfg.model.temp.gradient = 0.8;
    cfg.model.temp.zEut0 = 20.0;
    cfg.model.temp.velocity = 0.02;
    cfg.init.fillHeight = 10;
    cfg.overlapMu = true;

    core::Solver s(cfg);
    s.initialize();

    double prevLiquid = s.phaseFractions()[core::LIQ];
    for (int chunk = 0; chunk < 8; ++chunk) {
        s.run(100);
        const double liquid = s.phaseFractions()[core::LIQ];
        EXPECT_TRUE(std::isfinite(liquid));
        EXPECT_LE(liquid, prevLiquid + 1e-6)
            << "liquid must not regrow under constant undercooling";
        prevLiquid = liquid;
        EXPECT_LT(s.maxMuDeviation(), 6.0);
    }
    EXPECT_GT(prevLiquid, 0.2);
}

// --- checkpoint error paths ------------------------------------------------

/// Message-matching helper: load must throw a CheckpointError whose text
/// contains \p fragment.
template <typename Fn>
void expectCheckpointError(Fn&& fn, const std::string& fragment) {
    try {
        fn();
        FAIL() << "expected CheckpointError containing '" << fragment << "'";
    } catch (const io::CheckpointError& e) {
        EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
            << e.what();
    }
}

TEST(CheckpointErrors, DomainMismatchIsRejected) {
    const std::string dir = "/tmp/tpf_chk_mismatch";
    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 24};
    cfg.init.fillHeight = 8;
    core::Solver a(cfg);
    a.initialize();
    io::saveCheckpoint(dir, a);

    cfg.globalCells = {16, 16, 32};
    core::Solver b(cfg);
    b.initialize();
    expectCheckpointError([&] { io::loadCheckpoint(dir, b); },
                          "domain size mismatch");
    std::filesystem::remove_all(dir);
}

TEST(CheckpointErrors, MissingFileIsRejected) {
    core::SolverConfig cfg;
    cfg.globalCells = {16, 16, 24};
    core::Solver s(cfg);
    s.initialize();
    expectCheckpointError(
        [&] { io::loadCheckpoint("/tmp/tpf_does_not_exist_xyz", s); },
        "cannot open");
}

// --- checkpoint round-trip property ----------------------------------------

/// Property (exact-restart pipeline): save -> load -> save is a bitwise
/// fixed point of the phi and mu fields, for every ranks x threads
/// combination. The second save must reproduce the first file byte for byte
/// — headers, CRCs and payloads.
TEST(CheckpointProperty, SaveLoadRoundTripIsBitwiseIdentity) {
    namespace fs = std::filesystem;
    auto readAll = [](const fs::path& p) {
        std::ifstream in(p, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    };

    for (const int ranks : {1, 2}) {
        for (const int threads : {1, 4}) {
            const std::string tag = "/tmp/tpf_prop_rt_r" +
                                    std::to_string(ranks) + "_t" +
                                    std::to_string(threads);
            const std::string dirA = tag + "_a", dirB = tag + "_b";

            core::SolverConfig cfg;
            cfg.globalCells = {16, 16, 24};
            cfg.init.fillHeight = 8;
            cfg.model.temp.zEut0 = 10.0;
            cfg.threads = threads;
            if (ranks > 1) cfg.blockSize = {16, 16, 24 / ranks};

            auto body = [&](vmpi::Comm* comm) {
                core::Solver a(cfg, comm);
                a.initialize();
                a.run(20);
                io::saveCheckpoint(dirA, a);

                core::Solver b(cfg, comm);
                io::loadCheckpoint(dirA, b);
                io::saveCheckpoint(dirB, b);
            };
            if (ranks == 1)
                body(nullptr);
            else
                vmpi::runParallel(ranks,
                                  [&](vmpi::Comm& c) { body(&c); });

            for (int r = 0; r < ranks; ++r) {
                const std::string name = "rank_" + std::to_string(r) +
                                         ".tpfchk";
                EXPECT_EQ(readAll(dirA + "/" + name),
                          readAll(dirB + "/" + name))
                    << "ranks=" << ranks << " threads=" << threads
                    << " rank file " << name;
            }
            const io::CheckpointDiff d = io::compareCheckpoints(dirA, dirB);
            EXPECT_TRUE(d.identical)
                << "ranks=" << ranks << " threads=" << threads << ": "
                << d.message();
            fs::remove_all(dirA);
            fs::remove_all(dirB);
        }
    }
}

// --- exchange fuzz: random decompositions stay bitwise-consistent ----------

TEST(ExchangeProperty, RandomDecompositionsMatchSingleBlock) {
    Random rng(5);
    for (int trial = 0; trial < 5; ++trial) {
        // Random domain built from 8-cell tiles.
        const int bx = 8 * (1 + static_cast<int>(rng.uniformInt(2)));
        const int by = 8 * (1 + static_cast<int>(rng.uniformInt(2)));
        const int bz = 8 * (1 + static_cast<int>(rng.uniformInt(2)));
        const Int3 g{bx * 2, by, bz * 2};

        core::SolverConfig cfg;
        cfg.globalCells = g;
        cfg.init.fillHeight = g.z / 3;
        cfg.model.temp.zEut0 = 0.5 * g.z;
        cfg.model.temp.gradient = 0.6;

        double refLiquid;
        {
            core::Solver s(cfg);
            s.initialize();
            s.run(10);
            refLiquid = s.phaseFractions()[core::LIQ];
        }
        cfg.blockSize = {bx, by, bz};
        const int ranks = 2 + static_cast<int>(rng.uniformInt(3));
        if (4 < ranks) continue; // need >= 1 block per rank
        vmpi::runParallel(ranks, [&](vmpi::Comm& comm) {
            core::Solver s(cfg, &comm);
            s.initialize();
            s.run(10);
            // Fraction diagnostic: rank-ordered reduction rounding only.
            EXPECT_NEAR(s.phaseFractions()[core::LIQ], refLiquid, 1e-13)
                << "decomposition " << bx << "x" << by << "x" << bz << " on "
                << ranks << " ranks";
        });
    }
}

} // namespace
} // namespace tpf
