/// Unit tests of the intra-rank parallel execution layer: ThreadPool
/// semantics (coverage, exception propagation, nested submits, reuse),
/// the slab partition properties (coverage, disjointness, thread-count
/// independence), slab-parallel sweeps, and the thread-aware Timeloop
/// timing contract.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/slab_sweep.h"
#include "core/timeloop.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace tpf {
namespace {

// --- ThreadPool ---

class ThreadPoolSizes : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolSizes, ParallelForRunsEveryIndexExactlyOnce) {
    util::ThreadPool pool(GetParam());
    const int n = 237;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallelFor(n, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST_P(ThreadPoolSizes, ExceptionsPropagateToTheCaller) {
    util::ThreadPool pool(GetParam());
    EXPECT_THROW(
        pool.parallelFor(64,
                         [&](int i) {
                             if (i == 13)
                                 throw std::runtime_error("task failed");
                         }),
        std::runtime_error);
    // The pool survives a failed fan-out and runs the next job normally.
    std::atomic<int> sum{0};
    pool.parallelFor(10, [&](int i) { sum += i; });
    EXPECT_EQ(sum.load(), 45);
}

TEST_P(ThreadPoolSizes, NestedSubmitRunsInlineWithoutDeadlock) {
    util::ThreadPool pool(GetParam());
    std::atomic<int> count{0};
    pool.parallelFor(8, [&](int) {
        // Nested fan-out on the same (busy) pool must not wait for workers.
        pool.parallelFor(8, [&](int) { count++; });
    });
    EXPECT_EQ(count.load(), 64);
}

TEST_P(ThreadPoolSizes, ReusableAcrossManySequentialJobs) {
    util::ThreadPool pool(GetParam());
    long long total = 0;
    for (int job = 0; job < 200; ++job) {
        std::atomic<long long> sum{0};
        pool.parallelFor(job % 7 + 1, [&](int i) { sum += i + job; });
        total += sum.load();
    }
    long long expect = 0;
    for (int job = 0; job < 200; ++job) {
        const int n = job % 7 + 1;
        expect += static_cast<long long>(n) * job + n * (n - 1) / 2;
    }
    EXPECT_EQ(total, expect);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadPoolSizes, ::testing::Values(1, 2, 4, 8));

TEST(ThreadPool, ZeroAndNegativeTaskCountsAreNoOps) {
    util::ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](int) { ++calls; });
    pool.parallelFor(-3, [&](int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

// --- slab partition properties ---

TEST(SlabPartition, CoversDisjointlyAndBottomUp) {
    Random rng(4711);
    for (int trial = 0; trial < 200; ++trial) {
        CellInterval ci;
        ci.xMin = static_cast<int>(rng.uniform(-4.0, 4.0));
        ci.yMin = static_cast<int>(rng.uniform(-4.0, 4.0));
        ci.zMin = static_cast<int>(rng.uniform(-8.0, 8.0));
        ci.xMax = ci.xMin + static_cast<int>(rng.uniform(0.0, 12.0));
        ci.yMax = ci.yMin + static_cast<int>(rng.uniform(0.0, 12.0));
        ci.zMax = ci.zMin + static_cast<int>(rng.uniform(0.0, 70.0));

        const auto slabs = core::slabPartition(ci);
        ASSERT_FALSE(slabs.empty());

        long long cells = 0;
        int expectNextZ = ci.zMin;
        for (const auto& s : slabs) {
            // Full x/y extent, bottom-up contiguous z coverage -> the slabs
            // are pairwise disjoint and cover the interval exactly.
            EXPECT_EQ(s.xMin, ci.xMin);
            EXPECT_EQ(s.xMax, ci.xMax);
            EXPECT_EQ(s.yMin, ci.yMin);
            EXPECT_EQ(s.yMax, ci.yMax);
            EXPECT_EQ(s.zMin, expectNextZ);
            EXPECT_LE(s.zMax, ci.zMax);
            EXPECT_LE(s.zMax - s.zMin + 1, core::kSlabHeight);
            expectNextZ = s.zMax + 1;
            cells += s.numCells();
        }
        EXPECT_EQ(expectNextZ, ci.zMax + 1);
        EXPECT_EQ(cells, ci.numCells());
        // All but the last slab are full height.
        for (std::size_t i = 0; i + 1 < slabs.size(); ++i)
            EXPECT_EQ(slabs[i].zMax - slabs[i].zMin + 1, core::kSlabHeight);
    }
}

TEST(SlabPartition, EmptyIntervalYieldsNoSlabs) {
    EXPECT_TRUE(core::slabPartition(CellInterval{}).empty());
}

TEST(SlabPartition, IsAFunctionOfTheIntervalAlone) {
    // The determinism guarantee: the partition never depends on thread
    // count or any other ambient state — repeated calls are identical.
    const CellInterval ci{0, 0, 0, 31, 31, 47};
    const auto a = core::slabPartition(ci);
    const auto b = core::slabPartition(ci);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(static_cast<int>(a.size()),
              (47 + core::kSlabHeight) / core::kSlabHeight);
}

class SlabSweepThreads : public ::testing::TestWithParam<int> {};

TEST_P(SlabSweepThreads, ParallelForSlabsVisitsEveryCellOnce) {
    const CellInterval ci{0, 0, 0, 7, 5, 37};
    std::vector<std::atomic<int>> hits(
        static_cast<std::size_t>(ci.numCells()));
    for (auto& h : hits) h.store(0);
    const auto cellSlot = [&](int x, int y, int z) {
        return static_cast<std::size_t>((z * 6 + y) * 8 + x);
    };
    core::parallelForSlabs(ci, GetParam(), [&](const CellInterval& slab) {
        forEachCell(slab, [&](int x, int y, int z) { hits[cellSlot(x, y, z)]++; });
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Threads, SlabSweepThreads, ::testing::Values(1, 3, 4));

TEST(SlabSweep, PersistentPoolOverloadMatchesTransient) {
    util::ThreadPool pool(4);
    const CellInterval ci{0, 0, 0, 3, 3, 19};
    std::atomic<long long> cells{0};
    core::parallelForSlabs(&pool, ci, [&](const CellInterval& slab) {
        cells += slab.numCells();
    });
    EXPECT_EQ(cells.load(), ci.numCells());
}

// --- Timeloop thread-aware timing ---

TEST(Timeloop, ThrowingFunctorStillRecordsItsTiming) {
    core::Timeloop loop;
    util::ThreadPool pool(4);
    int okCalls = 0;
    loop.add("ok", [&] { ++okCalls; });
    loop.add("fan-out-throws", [&] {
        pool.parallelFor(8, [](int i) {
            if (i == 3) throw std::runtime_error("worker failure");
        });
    });

    EXPECT_THROW(loop.singleStep(), std::runtime_error);

    // Both functors are accounted exactly once even though the second threw
    // (the exception came out of a pool fan-out): calls stay in sync and a
    // wall time was recorded for the failed call.
    const auto& t = loop.timings();
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].calls, 1);
    EXPECT_EQ(t[1].calls, 1);
    EXPECT_GE(t[1].seconds, 0.0);
    EXPECT_GE(t[1].maxSeconds, 0.0);
    EXPECT_EQ(okCalls, 1);
    EXPECT_EQ(loop.steps(), 0) << "a failed step must not count as completed";
}

TEST(Timeloop, FanOutIsAccountedOnceNotPerThread) {
    // A functor that sleeps inside an n-way fan-out must be accounted by the
    // wall time of the fan-out (~d), not the per-thread sum (~n*d).
    if (util::ThreadPool::hardwareThreads() < 2)
        GTEST_SKIP() << "needs at least two cores to distinguish wall from sum";
    core::Timeloop loop;
    util::ThreadPool pool(4);
    const double d = 0.02;
    loop.add("sleepy-fan-out", [&] {
        pool.parallelFor(4, [&](int) {
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::duration<double>(d);
            while (std::chrono::steady_clock::now() < until) {}
        });
    });
    loop.singleStep();
    const auto& t = loop.timings();
    ASSERT_EQ(t.size(), 1u);
    EXPECT_GE(t[0].seconds, d * 0.5);
    EXPECT_LT(t[0].seconds, 4 * d) << "per-thread sums would be >= 4d";
    EXPECT_EQ(t[0].maxSeconds, t[0].seconds);
}

} // namespace
} // namespace tpf
