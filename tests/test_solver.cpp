/// Integration tests of the full solver: Algorithm 1 vs Algorithm 2
/// (communication hiding), multi-rank vs serial bitwise equivalence, moving
/// window, long-run stability, boundary handling.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/solver.h"

namespace tpf::core {
namespace {

SolverConfig smallConfig() {
    SolverConfig cfg;
    cfg.globalCells = {32, 32, 48};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.zEut0 = 20.0;
    cfg.model.temp.velocity = 0.02;
    cfg.init.fillHeight = 10;
    cfg.init.seedsPerArea = 10;
    return cfg;
}

/// Collect the full global phi/mu state of a solver into flat vectors
/// indexed by global cell (for cross-run comparison).
struct Snapshot {
    std::vector<double> phi, mu;

    static Snapshot take(Solver& s) {
        const Int3 g = s.forest().globalCells();
        Snapshot sn;
        sn.phi.assign(static_cast<std::size_t>(g.x) * g.y * g.z * N, -1.0);
        sn.mu.assign(static_cast<std::size_t>(g.x) * g.y * g.z * KC, -1.0);
        for (auto& b : s.localBlocks()) {
            forEachCell(b->phiSrc.interior(), [&](int x, int y, int z) {
                const std::size_t cell =
                    (static_cast<std::size_t>(b->origin.z + z) * g.y +
                     (b->origin.y + y)) *
                        g.x +
                    (b->origin.x + x);
                for (int a = 0; a < N; ++a)
                    sn.phi[cell * N + a] = b->phiSrc(x, y, z, a);
                for (int c = 0; c < KC; ++c)
                    sn.mu[cell * KC + c] = b->muSrc(x, y, z, c);
            });
        }
        return sn;
    }

    double maxDiff(const Snapshot& o) const {
        double m = 0.0;
        for (std::size_t i = 0; i < phi.size(); ++i)
            m = std::max(m, std::abs(phi[i] - o.phi[i]));
        for (std::size_t i = 0; i < mu.size(); ++i)
            m = std::max(m, std::abs(mu[i] - o.mu[i]));
        return m;
    }

    /// Byte-level equality (stricter than maxDiff == 0: distinguishes the
    /// sign of zero, i.e. exactly what a checkpoint file would contain).
    bool bitwiseEqual(const Snapshot& o) const {
        return phi.size() == o.phi.size() && mu.size() == o.mu.size() &&
               std::memcmp(phi.data(), o.phi.data(),
                           phi.size() * sizeof(double)) == 0 &&
               std::memcmp(mu.data(), o.mu.data(),
                           mu.size() * sizeof(double)) == 0;
    }

    /// Merge per-rank snapshots: each rank left untouched cells at the -1
    /// sentinel, so the union reconstructs the global fields.
    static Snapshot merge(const std::vector<Snapshot>& parts) {
        Snapshot m = parts.front();
        for (std::size_t r = 1; r < parts.size(); ++r) {
            for (std::size_t i = 0; i < m.phi.size(); ++i)
                if (parts[r].phi[i] >= 0.0) m.phi[i] = parts[r].phi[i];
            for (std::size_t i = 0; i < m.mu.size(); ++i)
                if (parts[r].mu[i] != -1.0) m.mu[i] = parts[r].mu[i];
        }
        return m;
    }
};

TEST(Solver, StableGrowthWithPhysicalInvariants) {
    Solver s(smallConfig());
    s.initialize();
    const auto f0 = s.phaseFractions();

    s.run(300);

    const auto f1 = s.phaseFractions();
    EXPECT_LT(f1[LIQ], f0[LIQ]) << "liquid must solidify under undercooling";
    EXPECT_GT(f1[LIQ], 0.3) << "only the front region should have solidified";

    // All solids present and of similar magnitude (ternary eutectic).
    for (int a = 0; a < 3; ++a) EXPECT_GT(f1[static_cast<std::size_t>(a)], 0.02);

    // phi stays on the simplex everywhere, no NaNs anywhere.
    for (auto& b : s.localBlocks()) {
        forEachCell(b->phiSrc.interior(), [&](int x, int y, int z) {
            double sum = 0.0;
            for (int a = 0; a < N; ++a) {
                const double v = b->phiSrc(x, y, z, a);
                ASSERT_TRUE(std::isfinite(v));
                ASSERT_GE(v, 0.0);
                ASSERT_LE(v, 1.0);
                sum += v;
            }
            ASSERT_NEAR(sum, 1.0, 1e-12);
            ASSERT_TRUE(std::isfinite(b->muSrc(x, y, z, 0)));
            ASSERT_TRUE(std::isfinite(b->muSrc(x, y, z, 1)));
        });
    }
    EXPECT_LT(s.maxMuDeviation(), 5.0);
    EXPECT_NEAR(s.time(), 300 * s.config().model.dt, 1e-12);
}

TEST(Solver, MuOverlapIsBitwiseEquivalentToAlgorithm1) {
    // Hiding the mu communication only changes *when* ghosts are exchanged
    // (end of step k vs start of step k+1) — the values are identical.
    auto cfg = smallConfig();
    cfg.overlapMu = false;
    Solver plain(cfg);
    plain.initialize();
    plain.run(50);

    cfg.overlapMu = true;
    Solver overlap(cfg);
    overlap.initialize();
    overlap.run(50);

    EXPECT_EQ(Snapshot::take(plain).maxDiff(Snapshot::take(overlap)), 0.0);
}

TEST(Solver, PhiOverlapMatchesAlgorithm1WithinRounding) {
    // The split mu-sweep applies the anti-trapping divergence in a second
    // pass; same physics, different rounding.
    auto cfg = smallConfig();
    Solver plain(cfg);
    plain.initialize();
    plain.run(50);

    cfg.overlapPhi = true;
    cfg.overlapMu = true;
    Solver overlap(cfg);
    overlap.initialize();
    overlap.run(50);

    EXPECT_LT(Snapshot::take(plain).maxDiff(Snapshot::take(overlap)), 1e-9);
}

class SolverRankCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverRankCountTest, MultiRankMatchesSerialBitwise) {
    const int nranks = GetParam();

    auto cfg = smallConfig();
    Snapshot serial;
    {
        Solver s(cfg);
        s.initialize();
        s.run(30);
        serial = Snapshot::take(s);
    }

    // Same run decomposed into one z-slab block per rank. Ghost exchange only
    // copies values, so the result must be bitwise identical.
    cfg.blockSize = {32, 32, 48 / nranks};
    std::vector<Snapshot> parts(static_cast<std::size_t>(nranks));
    vmpi::runParallel(nranks, [&](vmpi::Comm& comm) {
        Solver s(cfg, &comm);
        s.initialize();
        s.run(30);
        parts[static_cast<std::size_t>(comm.rank())] = Snapshot::take(s);
    });

    EXPECT_EQ(serial.maxDiff(Snapshot::merge(parts)), 0.0)
        << nranks << "-rank run must be bitwise identical to serial";
}

INSTANTIATE_TEST_SUITE_P(Ranks, SolverRankCountTest, ::testing::Values(2, 4, 8));

TEST(Solver, MultiBlockPerRankMatchesSerial) {
    auto cfg = smallConfig();
    Snapshot serial;
    {
        Solver s(cfg);
        s.initialize();
        s.run(20);
        serial = Snapshot::take(s);
    }
    // 2x2x2 blocks all owned by one rank (intra-rank exchange only).
    cfg.blockSize = {16, 16, 24};
    Solver s(cfg);
    s.initialize();
    s.run(20);
    EXPECT_EQ(serial.maxDiff(Snapshot::take(s)), 0.0);
}

class SolverThreadCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverThreadCountTest, ThreadedRunIsBitwiseIdenticalToSerial) {
    // The slab partition is a function of the sweep interval alone (see
    // core/slab_sweep.h), so any thread count must reproduce the threads=1
    // fields down to the last bit — this is what makes checkpoints from
    // hybrid runs reproducible.
    auto cfg = smallConfig();
    cfg.threads = 1;
    Solver serial(cfg);
    serial.initialize();
    serial.run(30);

    cfg.threads = GetParam();
    Solver threaded(cfg);
    threaded.initialize();
    threaded.run(30);

    EXPECT_TRUE(
        Snapshot::take(serial).bitwiseEqual(Snapshot::take(threaded)))
        << "threads=" << GetParam() << " diverged from the serial sweep";
}

INSTANTIATE_TEST_SUITE_P(Threads, SolverThreadCountTest,
                         ::testing::Values(2, 4, 7));

TEST(Solver, HybridRanksTimesThreadsMatchesSerial) {
    // 2 ranks x 2 threads: the hybrid mode composes the vmpi z-split with
    // the intra-rank slab fan-out; values must match the serial run exactly
    // (ghost exchange only copies, slabs only redistribute work).
    auto cfg = smallConfig();
    Snapshot serial;
    {
        Solver s(cfg);
        s.initialize();
        s.run(30);
        serial = Snapshot::take(s);
    }
    cfg.blockSize = {32, 32, 24};
    cfg.threads = 2;
    std::vector<Snapshot> parts(2);
    vmpi::runParallel(2, [&](vmpi::Comm& comm) {
        Solver s(cfg, &comm);
        s.initialize();
        s.run(30);
        parts[static_cast<std::size_t>(comm.rank())] = Snapshot::take(s);
    });
    EXPECT_EQ(serial.maxDiff(Snapshot::merge(parts)), 0.0);
}

TEST(Solver, ThreadedMovingWindowAndOverlapMatchSerial) {
    // Window shifts and the mu-overlap schedule both fan out to the pool;
    // the combination must still be thread-count invariant.
    auto cfg = smallConfig();
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.18;
    cfg.window.checkEvery = 5;
    cfg.overlapMu = true;

    cfg.threads = 1;
    Solver serial(cfg);
    serial.initialize();
    serial.run(120);

    cfg.threads = 4;
    Solver threaded(cfg);
    threaded.initialize();
    threaded.run(120);

    EXPECT_TRUE(Snapshot::take(serial).bitwiseEqual(Snapshot::take(threaded)));
    EXPECT_EQ(serial.windowOffsetCells(), threaded.windowOffsetCells());
}

TEST(Solver, MovingWindowTracksTheFront) {
    auto cfg = smallConfig();
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.18; // below the initial fill -> shifts soon
    cfg.window.checkEvery = 5;
    Solver s(cfg);
    s.initialize();
    const auto f0 = s.phaseFractions();

    s.run(200);

    EXPECT_GT(s.windowOffsetCells(), 0.0) << "window must have shifted";
    // The front stays near the trigger plane in the tracked frame.
    EXPECT_LT(s.frontPosition(),
              static_cast<int>(0.5 * cfg.globalCells.z));
    // Shifting discards solidified material: liquid fraction must not drift
    // to zero, and the state stays physical.
    const auto f1 = s.phaseFractions();
    EXPECT_GT(f1[LIQ], 0.4);
    EXPECT_LT(f1[LIQ], 1.0);
    EXPECT_LT(s.maxMuDeviation(), 5.0);

    // Solid below the front persists in the window.
    EXPECT_GT(f1[0] + f1[1] + f1[2], 0.9 * (f0[0] + f0[1] + f0[2]) - 0.05);
}

TEST(Solver, WindowShiftPreservesSolutionInTrackedFrame) {
    // A manual shift must reproduce exactly the content one cell up.
    auto cfg = smallConfig();
    Solver s(cfg);
    s.initialize();
    s.run(10);

    // Record phi at a probe column before the shift.
    auto& blk = *s.localBlocks().front();
    std::vector<double> column;
    for (int z = 0; z < blk.size.z - 1; ++z)
        column.push_back(blk.phiSrc(5, 7, z + 1, LIQ));

    for (auto& b : s.localBlocks()) shiftDownOneCell(*b, s.forest(), s.system());

    for (int z = 0; z < blk.size.z - 1; ++z)
        EXPECT_EQ(blk.phiSrc(5, 7, z, LIQ), column[static_cast<std::size_t>(z)]);
    // Top slice is fresh melt.
    EXPECT_EQ(blk.phiSrc(5, 7, blk.size.z - 1, LIQ), 1.0);
}

TEST(Solver, FrontPositionAndFractionsAreRankCountInvariant) {
    auto cfg = smallConfig();
    double serialFront;
    std::array<double, N> serialFr{};
    {
        Solver s(cfg);
        s.initialize();
        s.run(20);
        serialFront = s.frontPosition();
        serialFr = s.phaseFractions();
    }
    cfg.blockSize = {32, 32, 12};
    vmpi::runParallel(4, [&](vmpi::Comm& comm) {
        Solver s(cfg, &comm);
        s.initialize();
        s.run(20);
        EXPECT_EQ(static_cast<double>(s.frontPosition()), serialFront);
        const auto fr = s.phaseFractions();
        for (int a = 0; a < N; ++a)
            EXPECT_NEAR(fr[static_cast<std::size_t>(a)],
                        serialFr[static_cast<std::size_t>(a)], 1e-12);
    });
}

TEST(Solver, TimeloopTimingsAreRecorded) {
    Solver s(smallConfig());
    s.initialize();
    s.run(3);
    const auto& timings = s.timeloop().timings();
    ASSERT_FALSE(timings.empty());
    bool sawPhiSweep = false;
    for (const auto& t : timings) {
        EXPECT_EQ(t.calls, 3);
        if (t.name == "phi-sweep") {
            sawPhiSweep = true;
            EXPECT_GT(t.seconds, 0.0);
        }
    }
    EXPECT_TRUE(sawPhiSweep);
}

TEST(Solver, KernelChoiceDoesNotChangePhysics) {
    // Production SIMD kernels vs scalar reference kernels over a full run:
    // same physics within accumulated rounding.
    auto cfg = smallConfig();
    cfg.phiKernel = PhiKernelKind::Basic;
    cfg.muKernel = MuKernelKind::Basic;
    Solver ref(cfg);
    ref.initialize();
    ref.run(30);

    cfg.phiKernel = PhiKernelKind::SimdTzStagCut;
    cfg.muKernel = MuKernelKind::SimdTzStagCut;
    Solver opt(cfg);
    opt.initialize();
    opt.run(30);

    EXPECT_LT(Snapshot::take(ref).maxDiff(Snapshot::take(opt)), 1e-7);
}

} // namespace
} // namespace tpf::core
