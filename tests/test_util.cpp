/// Unit tests for src/util: alignment, fast math, small matrices, simplex
/// projection, random numbers, table printing.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "util/alignment.h"
#include "util/crc32.h"
#include "util/fastmath.h"
#include "util/random.h"
#include "util/simplex.h"
#include "util/smallmat.h"
#include "util/table.h"

namespace tpf {
namespace {

// --- alignment ---

TEST(Alignment, AlignedAllocReturnsCacheLineAlignedMemory) {
    for (std::size_t bytes : {1ul, 63ul, 64ul, 100ul, 4096ul, 1000000ul}) {
        void* p = alignedAlloc(bytes);
        EXPECT_TRUE(isAligned(p));
        alignedFree(p);
    }
}

TEST(Alignment, AllocatorWorksWithVector) {
    std::vector<double, AlignedAllocator<double>> v(1000, 1.5);
    EXPECT_TRUE(isAligned(v.data()));
    EXPECT_DOUBLE_EQ(v[999], 1.5);
}

TEST(Alignment, RoundUp) {
    EXPECT_EQ(roundUp(0, 8), 0u);
    EXPECT_EQ(roundUp(1, 8), 8u);
    EXPECT_EQ(roundUp(8, 8), 8u);
    EXPECT_EQ(roundUp(9, 8), 16u);
}

// --- fast math ---

class FastInvSqrtTest : public ::testing::TestWithParam<double> {};

TEST_P(FastInvSqrtTest, ThreeNewtonStepsReach1e10RelativeAccuracy) {
    const double x = GetParam();
    const double approx = fastInvSqrt<3>(x);
    const double exact = 1.0 / std::sqrt(x);
    EXPECT_NEAR(approx / exact, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastInvSqrtTest,
                         ::testing::Values(1e-12, 1e-6, 0.01, 0.5, 1.0, 2.0,
                                           3.141592653589793, 100.0, 1e6,
                                           1e12));

TEST(FastInvSqrt, AccuracyImprovesWithNewtonSteps) {
    const double x = 7.3;
    const double exact = 1.0 / std::sqrt(x);
    const double e1 = std::abs(fastInvSqrt<1>(x) - exact);
    const double e2 = std::abs(fastInvSqrt<2>(x) - exact);
    const double e3 = std::abs(fastInvSqrt<3>(x) - exact);
    EXPECT_LT(e2, e1);
    EXPECT_LT(e3, e2);
}

TEST(Crc32, MatchesTheStandardCheckValue) {
    // The canonical CRC-32 check: crc32("123456789") = 0xCBF43926.
    EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(util::crc32(nullptr, 0), 0u);
    // Incremental == one-shot.
    EXPECT_EQ(util::crc32("6789", 4, util::crc32("12345", 5)),
              0xCBF43926u);
}

TEST(SinpiCompact, MatchesLibmOnTheProfileRange) {
    // The interface profiles evaluate sin(pi*s) for s in [-0.5, 0.5]. The
    // deterministic polynomial must track libm within ~1 ulp of sin's range
    // — far below the physical accuracy of the profile — while using no
    // libm call itself (golden checkpoints depend on its bit-stability).
    double maxErr = 0.0;
    for (int i = 0; i <= 20000; ++i) {
        const double s = -0.5 + static_cast<double>(i) / 20000.0;
        maxErr = std::max(maxErr,
                          std::abs(sinpiCompact(s) - std::sin(M_PI * s)));
    }
    EXPECT_LT(maxErr, 1e-15);
}

TEST(SinpiCompact, StaysInsideUnitRangeAtTheEndpoints) {
    // 0.5*(1 + sinpiCompact(s)) must be an exact phase fraction in [0, 1].
    EXPECT_LE(sinpiCompact(0.5), 1.0);
    EXPECT_GE(sinpiCompact(-0.5), -1.0);
    EXPECT_EQ(sinpiCompact(0.0), 0.0);
    EXPECT_EQ(sinpiCompact(0.25), -sinpiCompact(-0.25));
}

TEST(ReciprocalTable, MatchesDivision) {
    ReciprocalTable tab(16);
    for (int d = 1; d <= 16; ++d) EXPECT_DOUBLE_EQ(tab.inv(d), 1.0 / d);
    EXPECT_EQ(tab.maxDenominator(), 16);
}

// --- small matrices ---

TEST(Mat2, InverseRoundTrip) {
    const Mat2 m{3.0, 1.0, 1.0, 4.0};
    const Mat2 id = m * m.inverse();
    EXPECT_NEAR(id.a, 1.0, 1e-14);
    EXPECT_NEAR(id.b, 0.0, 1e-14);
    EXPECT_NEAR(id.c, 0.0, 1e-14);
    EXPECT_NEAR(id.d, 1.0, 1e-14);
}

TEST(Mat2, SolveMatchesInverse) {
    const Mat2 m{5.0, 2.0, 2.0, 7.0};
    const Vec2 r{1.3, -0.4};
    const Vec2 x = m.solve(r);
    const Vec2 back = m * x;
    EXPECT_NEAR(back.x, r.x, 1e-14);
    EXPECT_NEAR(back.y, r.y, 1e-14);
}

TEST(Mat2, SymmetricEigenvaluesOfDiagonal) {
    const Mat2 m = Mat2::diag(2.0, 5.0);
    const auto ev = m.symEigenvalues();
    EXPECT_DOUBLE_EQ(ev[0], 2.0);
    EXPECT_DOUBLE_EQ(ev[1], 5.0);
}

TEST(Mat2, SymmetricEigenDecompositionReconstructs) {
    const Mat2 m{4.0, 1.5, 1.5, 2.0};
    const auto ev = m.symEigenvalues();
    for (double lambda : ev) {
        const Vec2 v = m.symEigenvector(lambda);
        const Vec2 mv = m * v;
        EXPECT_NEAR(mv.x, lambda * v.x, 1e-12);
        EXPECT_NEAR(mv.y, lambda * v.y, 1e-12);
        EXPECT_NEAR(v.norm(), 1.0, 1e-14);
    }
}

TEST(Vec3, CrossProductOrthogonality) {
    const Vec3 a{1.0, 2.0, 3.0}, b{-2.0, 0.5, 1.0};
    const Vec3 c = a.cross(b);
    EXPECT_NEAR(c.dot(a), 0.0, 1e-14);
    EXPECT_NEAR(c.dot(b), 0.0, 1e-14);
}

// --- simplex projection ---

void expectOnSimplex(const std::array<double, 4>& x) {
    double s = 0.0;
    for (double v : x) {
        EXPECT_GE(v, 0.0);
        s += v;
    }
    EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Simplex, AlreadyOnSimplexIsFixedPoint) {
    std::array<double, 4> x{0.1, 0.2, 0.3, 0.4};
    auto y = x;
    projectToSimplex(y);
    for (int i = 0; i < 4; ++i) EXPECT_NEAR(y[i], x[i], 1e-15);
}

TEST(Simplex, VertexStaysVertexExactly) {
    double a = 1.0, b = 0.0, c = 0.0, d = 0.0;
    projectToSimplex4(a, b, c, d);
    EXPECT_EQ(a, 1.0);
    EXPECT_EQ(b, 0.0);
    EXPECT_EQ(c, 0.0);
    EXPECT_EQ(d, 0.0);
}

TEST(Simplex, BulkPerturbationProjectsBackToVertexExactly) {
    // The situation of a bulk cell after the obstacle-potential update: the
    // dominant phase got a positive push, all others negative pushes.
    double a = 1.0 + 0.25, b = -0.1, c = -0.05, d = -0.1;
    projectToSimplex4(a, b, c, d);
    EXPECT_EQ(a, 1.0);
    EXPECT_EQ(b, 0.0);
    EXPECT_EQ(c, 0.0);
    EXPECT_EQ(d, 0.0);
}

class SimplexRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomTest, ProjectionLandsOnSimplexAndIsIdempotent) {
    Random rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        std::array<double, 4> x;
        for (auto& v : x) v = rng.uniform(-2.0, 2.0);

        auto generic = x;
        projectToSimplex(generic);
        expectOnSimplex(generic);

        double a = x[0], b = x[1], c = x[2], d = x[3];
        projectToSimplex4(a, b, c, d);
        expectOnSimplex({a, b, c, d});

        // Both implementations agree.
        EXPECT_NEAR(a, generic[0], 1e-12);
        EXPECT_NEAR(b, generic[1], 1e-12);
        EXPECT_NEAR(c, generic[2], 1e-12);
        EXPECT_NEAR(d, generic[3], 1e-12);

        // Idempotency.
        double a2 = a, b2 = b, c2 = c, d2 = d;
        projectToSimplex4(a2, b2, c2, d2);
        EXPECT_NEAR(a2, a, 1e-14);
        EXPECT_NEAR(b2, b, 1e-14);
        EXPECT_NEAR(c2, c, 1e-14);
        EXPECT_NEAR(d2, d, 1e-14);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(Simplex, ProjectionIsNearestPointSpotCheck) {
    // Projection of (2, 0, 0, 0) is the vertex (1, 0, 0, 0)? No: the nearest
    // simplex point to (2,0,0,0) is (1,0,0,0) indeed.
    double a = 2.0, b = 0.0, c = 0.0, d = 0.0;
    projectToSimplex4(a, b, c, d);
    EXPECT_DOUBLE_EQ(a, 1.0);
    // Projection of the center offset: (0.5, 0.5, 0.5, 0.5) -> (0.25 x4).
    a = b = c = d = 0.5;
    projectToSimplex4(a, b, c, d);
    EXPECT_DOUBLE_EQ(a, 0.25);
    EXPECT_DOUBLE_EQ(b, 0.25);
    EXPECT_DOUBLE_EQ(c, 0.25);
    EXPECT_DOUBLE_EQ(d, 0.25);
}

// --- random ---

TEST(Random, DeterministicForSameSeed) {
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Random, UniformInRange) {
    Random rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Random, UniformMeanIsCentered) {
    Random rng(99);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

// --- table ---

TEST(Table, FormatsAlignedColumns) {
    Table t({"name", "value"});
    t.addRow({"alpha", "1.5"});
    t.addRow({"b", "200"});
    const std::string s = t.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("200"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

} // namespace
} // namespace tpf
