/// Kernel equivalence + invariant tests for the mu-sweep, including the
/// local/neighbor split used for communication hiding and the exact
/// conservation property of the grand-potential formulation.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "comm/exchange.h"
#include "core/kernels.h"
#include "core/regions.h"
#include "thermo/agalcu.h"
#include "util/random.h"

namespace tpf::core {
namespace {

/// gtest parameter names must be alphanumeric: strip the +/- decorations of
/// the kernel display names.
std::string testSafe(std::string s) {
    std::string out;
    for (char c : s)
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
    return out;
}

struct MuFixture {
    thermo::TernarySystem sys = thermo::makeAgAlCu();
    ModelParams prm = ModelParams::defaults();
    FrozenTemperature temp{prm.temp};
    TzCache tz;

    /// Interface block with perturbed mu and an evolved phiDst (one Basic
    /// phi-sweep) so dphi/dt and the anti-trapping current are nonzero.
    std::unique_ptr<SimBlock> makeBlock(Scenario sc, std::uint64_t seed = 123,
                                        Int3 size = {16, 16, 16}) {
        auto b = std::make_unique<SimBlock>(size);
        fillScenario(*b, sc, sys, prm.eps);
        if (seed != 0) {
            Random rng(seed);
            forEachCell(b->muSrc.withGhosts(), [&](int x, int y, int z) {
                b->muSrc(x, y, z, 0) += rng.uniform(-0.02, 0.02);
                b->muSrc(x, y, z, 1) += rng.uniform(-0.02, 0.02);
            });
        }
        auto c = ctx(*b);
        runPhiKernel(PhiKernelKind::Basic, *b, c);
        // Make phiDst ghosts consistent (periodic self-wrap not needed for
        // the kernel comparison: all variants read the same ghost values).
        return b;
    }

    StepContext ctx(const SimBlock& b) {
        StepContext c;
        c.mc = ModelConsts::build(prm, sys);
        tz.build(c.mc, temp, b.origin.z, b.size.z, 0.0, 0.0);
        c.tz = &tz;
        c.temp = &temp;
        return c;
    }
};

class MuKernelEquivalence
    : public ::testing::TestWithParam<std::tuple<MuKernelKind, Scenario>> {};

TEST_P(MuKernelEquivalence, MatchesBasicReference) {
    const auto [kind, scenario] = GetParam();
    MuFixture fx;

    auto ref = fx.makeBlock(scenario);
    auto tst = fx.makeBlock(scenario);
    ASSERT_EQ(ref->phiDst.maxAbsDiff(tst->phiDst), 0.0);

    auto cr = fx.ctx(*ref);
    runMuKernel(MuKernelKind::Basic, *ref, cr);
    auto ct = fx.ctx(*tst);
    runMuKernel(kind, *tst, ct);

    const double d = ref->muDst.maxAbsDiff(tst->muDst);
    const bool bitwiseClass =
        kind == MuKernelKind::General || kind == MuKernelKind::Basic ||
        kind == MuKernelKind::ScalarTzStag || kind == MuKernelKind::ScalarTzStagCut;
    if (bitwiseClass)
        EXPECT_EQ(d, 0.0) << kernelName(kind) << " must be bitwise equal";
    else
        EXPECT_LT(d, 1e-11) << kernelName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllScenarios, MuKernelEquivalence,
    ::testing::Combine(::testing::ValuesIn(allMuKernels()),
                       ::testing::Values(Scenario::Interface, Scenario::Liquid,
                                         Scenario::Solid)),
    [](const auto& pinfo) {
        return testSafe(kernelName(std::get<0>(pinfo.param))) + "_" +
               scenarioName(std::get<1>(pinfo.param));
    });

class MuSplitTest : public ::testing::TestWithParam<MuKernelKind> {};

TEST_P(MuSplitTest, LocalPlusNeighborMatchesFullSweep) {
    // The Algorithm-2 split (local part, then -div J_at) must match the fused
    // sweep to rounding accuracy (the paper interleaves them with
    // communication; the physics is identical).
    MuFixture fx;
    auto full = fx.makeBlock(Scenario::Interface);
    auto split = fx.makeBlock(Scenario::Interface);

    auto cf = fx.ctx(*full);
    runMuKernel(GetParam(), *full, cf, MuSweepPart::Full);
    auto cs = fx.ctx(*split);
    runMuKernel(GetParam(), *split, cs, MuSweepPart::LocalOnly);
    runMuKernel(GetParam(), *split, cs, MuSweepPart::NeighborOnly);

    EXPECT_LT(full->muDst.maxAbsDiff(split->muDst), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SplittableKernels, MuSplitTest,
                         ::testing::Values(MuKernelKind::Basic,
                                           MuKernelKind::ScalarTzStag,
                                           MuKernelKind::ScalarTzStagCut,
                                           MuKernelKind::SimdTzStag,
                                           MuKernelKind::SimdTzStagCut),
                         [](const auto& pinfo) { return testSafe(kernelName(pinfo.param)); });

TEST(MuKernel, AntiTrappingChangesInterfaceResult) {
    // Sanity: J_at must actually contribute at a moving front.
    MuFixture fx;
    auto on = fx.makeBlock(Scenario::Interface);
    auto off = fx.makeBlock(Scenario::Interface);

    auto c1 = fx.ctx(*on);
    runMuKernel(MuKernelKind::Basic, *on, c1);

    fx.prm.antitrapping = false;
    auto c2 = fx.ctx(*off);
    runMuKernel(MuKernelKind::Basic, *off, c2);

    EXPECT_GT(on->muDst.maxAbsDiff(off->muDst), 0.0);
}

TEST(MuKernel, AntiTrappingVanishesWhenPhiIsStatic) {
    // dphi/dt = 0 -> J_at = 0 -> results identical with and without it.
    MuFixture fx;
    auto on = std::make_unique<SimBlock>(Int3{16, 16, 16});
    fillScenario(*on, Scenario::Interface, fx.sys, fx.prm.eps);
    on->phiDst.copyFrom(on->phiSrc); // static phi
    auto off = std::make_unique<SimBlock>(Int3{16, 16, 16});
    fillScenario(*off, Scenario::Interface, fx.sys, fx.prm.eps);
    off->phiDst.copyFrom(off->phiSrc);

    auto c1 = fx.ctx(*on);
    runMuKernel(MuKernelKind::Basic, *on, c1);
    fx.prm.antitrapping = false;
    auto c2 = fx.ctx(*off);
    runMuKernel(MuKernelKind::Basic, *off, c2);

    EXPECT_EQ(on->muDst.maxAbsDiff(off->muDst), 0.0);
}

/// Total concentration over the interior, c(phi, mu) summed per cell.
Vec2 totalConcentration(const SimBlock& b, const thermo::TernarySystem& sys,
                        const FrozenTemperature& temp, bool useDst) {
    Vec2 total{0.0, 0.0};
    const Field<double>& phi = useDst ? b.phiDst : b.phiSrc;
    const Field<double>& mu = useDst ? b.muDst : b.muSrc;
    forEachCell(phi.interior(), [&](int x, int y, int z) {
        double h[N];
        double p[N];
        for (int a = 0; a < N; ++a) p[a] = phi(x, y, z, a);
        double s2 = 0.0;
        for (int a = 0; a < N; ++a) s2 += p[a] * p[a];
        for (int a = 0; a < N; ++a) h[a] = p[a] * p[a] / s2;
        const double T = temp.atCell(b.origin.z + z, 0.0, 0.0);
        total += sys.mixtureConcentration(h, {mu(x, y, z, 0), mu(x, y, z, 1)}, T);
    });
    return total;
}

TEST(MuKernel, FullStepConservesTotalConcentrationPeriodically) {
    // Periodic in all directions (self-wrap ghosts), no temperature drive:
    // sum_cells c(phi, mu) must be invariant over a full phi+mu step. This is
    // the defining conservation property of the grand-potential formulation
    // and holds to rounding because chi is evaluated at phi_dst.
    // The temperature must also be *uniform*: a z-gradient in a z-periodic
    // domain is physically inconsistent (the wrap faces would see different
    // xi(T) values and the anti-trapping flux would not telescope).
    MuFixture fx;
    fx.prm.temp.velocity = 0.0; // dT/dt = 0
    fx.prm.temp.gradient = 0.0; // uniform T
    fx.temp = FrozenTemperature(fx.prm.temp);

    auto b = std::make_unique<SimBlock>(Int3{16, 16, 16});
    fillScenario(*b, Scenario::Interface, fx.sys, fx.prm.eps);
    Random rng(9);
    forEachCell(b->muSrc.interior(), [&](int x, int y, int z) {
        b->muSrc(x, y, z, 0) += rng.uniform(-0.05, 0.05);
        b->muSrc(x, y, z, 1) += rng.uniform(-0.05, 0.05);
    });

    // Periodic ghost self-wrap for a single block.
    auto bf = BlockForest::createUniform({16, 16, 16}, {16, 16, 16},
                                         {true, true, true}, 1);
    auto sync = [&](Field<double>& f, StencilKind st) {
        GhostExchange ex(bf, nullptr, st, 0);
        ex.registerField(0, &f);
        ex.communicate();
    };
    sync(b->phiSrc, StencilKind::D3C19);
    sync(b->muSrc, StencilKind::D3C7);

    const Vec2 before = totalConcentration(*b, fx.sys, fx.temp, false);

    auto c = fx.ctx(*b);
    runPhiKernel(PhiKernelKind::Basic, *b, c);
    sync(b->phiDst, StencilKind::D3C19);
    runMuKernel(MuKernelKind::Basic, *b, c);

    const Vec2 after = totalConcentration(*b, fx.sys, fx.temp, true);
    const double cells = 16.0 * 16.0 * 16.0;
    EXPECT_NEAR(after.x / cells, before.x / cells, 1e-12);
    EXPECT_NEAR(after.y / cells, before.y / cells, 1e-12);
}

TEST(MuKernel, PureDiffusionRelaxesPerturbation) {
    // Static phi, perturbed mu in the liquid: diffusion must shrink the
    // deviation from the mean monotonically.
    MuFixture fx;
    fx.prm.temp.velocity = 0.0;
    // dt = 0.1 stays below the diffusive stability bound dx^2/(6 Deff) and
    // reaches a diffusion time D k^2 t ~ 1.5 within 100 steps for the
    // k = 2 pi / 16 perturbation below (expected damping ~0.2).
    fx.prm.dt = 0.1;
    fx.temp = FrozenTemperature(fx.prm.temp);

    auto b = std::make_unique<SimBlock>(Int3{16, 16, 16});
    fillScenario(*b, Scenario::Liquid, fx.sys, fx.prm.eps);
    b->phiDst.copyFrom(b->phiSrc);
    // Smooth sinusoidal perturbation.
    forEachCell(b->muSrc.withGhosts(), [&](int x, int y, int z) {
        (void)z;
        b->muSrc(x, y, z, 0) += 0.05 * std::sin(2.0 * M_PI * x / 16.0);
        b->muSrc(x, y, z, 1) += 0.05 * std::cos(2.0 * M_PI * y / 16.0);
    });

    auto bf = BlockForest::createUniform({16, 16, 16}, {16, 16, 16},
                                         {true, true, true}, 1);
    GhostExchange ex(bf, nullptr, StencilKind::D3C7, 0);
    ex.registerField(0, &b->muSrc);

    auto dev = [&] {
        double m = 0.0;
        forEachCell(b->muSrc.interior(), [&](int x, int y, int z) {
            m = std::max(m, std::abs(b->muSrc(x, y, z, 0)));
            m = std::max(m, std::abs(b->muSrc(x, y, z, 1)));
        });
        return m;
    };

    const double d0 = dev();
    auto c = fx.ctx(*b);
    for (int s = 0; s < 100; ++s) {
        ex.communicate();
        runMuKernel(MuKernelKind::Basic, *b, c);
        b->muSrc.swapData(b->muDst);
    }
    const double d1 = dev();
    EXPECT_LT(d1, 0.5 * d0) << "diffusion must damp the perturbation";
}

// --- four-cell vectorization guards -----------------------------------------
// The active Vec4d backend is a compile-time choice (AVX2 with
// -march=native/TPF_NATIVE_ARCH, SSE2 otherwise), so running this suite in
// both build configurations exercises the nx % 4 guard in both backends.

TEST(MuKernelSimdGuards, MinimalVectorWidthBlockMatchesBasic) {
    // nx = 4 is the narrowest block the four-cell kernel accepts.
    MuFixture fx;
    auto ref = fx.makeBlock(Scenario::Interface, 77, {4, 8, 8});
    auto tst = fx.makeBlock(Scenario::Interface, 77, {4, 8, 8});
    ASSERT_EQ(ref->phiDst.maxAbsDiff(tst->phiDst), 0.0);

    auto cr = fx.ctx(*ref);
    runMuKernel(MuKernelKind::Basic, *ref, cr);
    auto ct = fx.ctx(*tst);
    runMuKernel(MuKernelKind::SimdTzStagCut, *tst, ct);

    EXPECT_LT(ref->muDst.maxAbsDiff(tst->muDst), 1e-11);
}

TEST(MuKernelSimdGuardsDeathTest, RejectsNxNotDivisibleByFour) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MuFixture fx;
    auto b = fx.makeBlock(Scenario::Interface, 77, {6, 8, 8});
    auto c = fx.ctx(*b);
    EXPECT_DEATH(runMuKernel(MuKernelKind::SimdTzStagCut, *b, c),
                 "divisible by 4");
}

} // namespace
} // namespace tpf::core
