/// \file directional_solidification.cpp
/// The paper's production scenario at workstation scale: moving-window
/// directional solidification of Ag-Al-Cu on multiple (thread-backed) ranks,
/// with communication hiding and mesh output through the hierarchical
/// reduction pipeline — the full counterpart of the runs behind Figure 10.
///
///   ./examples/directional_solidification [steps] [ranks] [outdir]
///
/// Writes one OBJ surface mesh per solid phase into [outdir] (default
/// ./solidification_output) plus a VTK volume of the final phi field.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/solver.h"
#include "io/marching_cubes.h"
#include "io/reduction.h"
#include "io/writers.h"
#include "perf/perf.h"

int main(int argc, char** argv) {
    using namespace tpf;

    const int steps = argc > 1 ? std::atoi(argv[1]) : 1500;
    const int ranks = argc > 2 ? std::atoi(argv[2]) : 4;
    const std::string outdir =
        argc > 3 ? argv[3] : "solidification_output";
    std::filesystem::create_directories(outdir);

    core::SolverConfig cfg;
    const int bs = 16;
    cfg.globalCells = {64, 64, bs * ranks};
    cfg.blockSize = {64, 64, bs};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.velocity = 0.015;
    cfg.model.temp.zEut0 = 0.45 * bs * ranks;
    cfg.init.fillHeight = bs * ranks / 4;
    cfg.init.seedsPerArea = 14;
    cfg.overlapMu = true;
    cfg.window.enabled = true;
    cfg.window.triggerFraction = 0.55;
    cfg.window.checkEvery = 20;

    std::printf("directional solidification: %dx%dx%d cells on %d ranks, "
                "%d steps, moving window on\n\n",
                cfg.globalCells.x, cfg.globalCells.y, cfg.globalCells.z, ranks,
                steps);

    const double t0 = perf::now();
    vmpi::runParallel(ranks, [&](vmpi::Comm& comm) {
        core::Solver solver(cfg, &comm);
        solver.initialize();

        const int chunk = steps / 6 > 0 ? steps / 6 : 1;
        for (int done = 0; done < steps; done += chunk) {
            solver.run(std::min(chunk, steps - done));
            const auto f = solver.phaseFractions();
            const int front = solver.frontPosition();
            if (comm.isRoot())
                std::printf("t=%8.2f  window offset=%5.0f  front=%3d  "
                            "liquid=%.4f\n",
                            solver.time(), solver.windowOffsetCells(), front,
                            f[core::LIQ]);
        }

        // Mesh output: per-rank extraction, hierarchical log2(P) reduction,
        // final write on rank 0 (the paper's §3.2 pipeline).
        for (int phase = 0; phase < 3; ++phase) {
            io::TriMesh local;
            for (auto& blk : solver.localBlocks())
                local.append(io::extractPhaseSurface(*blk, phase));

            io::ReductionOptions ro;
            ro.maxTriangles = 20000;
            io::TriMesh mesh =
                io::reduceMeshHierarchical(std::move(local), &comm, ro);

            if (comm.isRoot()) {
                const std::string path =
                    outdir + "/" + solver.system().phaseName(phase) + ".obj";
                io::writeObj(path, mesh);
                std::printf("wrote %-28s (%zu triangles)\n", path.c_str(),
                            mesh.numTriangles());
            }
        }

        // Volume snapshot of the bottom-most block for inspection.
        if (comm.isRoot()) {
            io::writeVtkField(outdir + "/phi_rank0.vtk",
                              solver.localBlocks().front()->phiSrc, "phi");
            std::printf("wrote %s/phi_rank0.vtk\n", outdir.c_str());

            double mlupsTotal = 0.0;
            for (const auto& t : solver.timeloop().timings())
                if (t.name == "phi-sweep" || t.name.rfind("mu-sweep", 0) == 0)
                    mlupsTotal += t.seconds;
            std::printf("\nsweep time %.1f s of %.1f s wall\n", mlupsTotal,
                        perf::now() - t0);
        }
    });

    std::printf("total wall time: %.1f s\n", perf::now() - t0);
    return 0;
}
