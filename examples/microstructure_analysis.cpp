/// \file microstructure_analysis.cpp
/// Quantitative microstructure characterization of a grown sample — the
/// metrics behind the paper's §5.2 discussion (Figures 10/11): phase
/// fractions vs the lever rule, lamellar spacing from two-point correlation,
/// orientation/anisotropy from correlation PCA, and lamella split/merge
/// counts along the growth direction.
///
///   ./examples/microstructure_analysis [steps]

#include <cstdio>
#include <cstdlib>

#include "analysis/correlation.h"
#include "analysis/fractions.h"
#include "analysis/lamellae.h"
#include "core/solver.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace tpf;

    const int steps = argc > 1 ? std::atoi(argv[1]) : 1200;

    core::SolverConfig cfg;
    cfg.globalCells = {64, 64, 48};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.velocity = 0.015;
    cfg.model.temp.zEut0 = 22.0;
    cfg.init.fillHeight = 12;
    cfg.init.seedsPerArea = 12;
    core::Solver solver(cfg);
    solver.initialize();

    std::printf("growing %d steps ...\n", steps);
    solver.run(steps);

    const auto& phi = solver.localBlocks().front()->phiSrc;
    const int front = analysis::frontZ(phi);
    std::printf("front position: z = %d\n\n", front);

    // --- phase fractions vs lever rule --------------------------------------
    {
        const int z1 = std::max(front - 4, 2);
        const auto sf = analysis::solidFractionsInSlab(phi, 0, z1);
        const auto lf = solver.system().leverFractions();
        Table t({"phase", "measured fraction", "lever rule"});
        for (int a = 0; a < 3; ++a)
            t.addRow({solver.system().phaseName(a),
                      Table::num(sf[static_cast<std::size_t>(a)], 3),
                      Table::num(lf.solid[static_cast<std::size_t>(a)], 3)});
        std::printf("-- solid phase fractions (z <= %d) --\n", z1);
        t.print();
        std::printf("\n");
    }

    // --- two-point correlation / lamellar spacing ---------------------------
    {
        std::printf("-- two-point correlation S2(r) along x, slab below the "
                    "front --\n");
        const int z0 = std::max(front - 6, 0), z1 = std::max(front - 2, 1);
        Table t({"phase", "S2(0) = fraction", "spacing estimate [cells]"});
        for (int a = 0; a < 3; ++a) {
            const auto s2 = analysis::twoPointCorrelation(
                phi, a, 0, cfg.globalCells.x / 2, z0, z1);
            t.addRow({solver.system().phaseName(a), Table::num(s2[0], 3),
                      Table::num(analysis::lamellarSpacingEstimate(s2), 1)});
        }
        t.print();
        std::printf("\n");
    }

    // --- correlation PCA (orientation / anisotropy) -------------------------
    {
        std::printf("-- correlation PCA per solid phase (slice below the "
                    "front) --\n");
        const int z = std::max(front - 3, 0);
        Table t({"phase", "lambda minor", "lambda major", "anisotropy",
                 "major axis"});
        for (int a = 0; a < 3; ++a) {
            const auto map = analysis::correlationMap2D(phi, a, z, 14);
            const auto pca = analysis::correlationPca(map, 14);
            char axis[32];
            std::snprintf(axis, sizeof(axis), "(%.2f, %.2f)", pca.axisMajor.x,
                          pca.axisMajor.y);
            t.addRow({solver.system().phaseName(a),
                      Table::num(pca.lambdaMinor, 2),
                      Table::num(pca.lambdaMajor, 2),
                      Table::num(pca.anisotropy(), 2), axis});
        }
        t.print();
        std::printf("\n");
    }

    // --- lamella topology: counts, splits, merges ---------------------------
    {
        std::printf("-- lamella topology along the growth direction --\n");
        const int z0 = 1, z1 = std::max(front - 2, 2);
        Table t({"phase", "lamellae (bottom)", "lamellae (top)", "splits",
                 "merges", "appears", "vanishes"});
        for (int a = 0; a < 3; ++a) {
            const auto st = analysis::analyzeLamellae(phi, a, z0, z1);
            t.addRow({solver.system().phaseName(a),
                      std::to_string(st.countPerSlice.front()),
                      std::to_string(st.countPerSlice.back()),
                      std::to_string(st.splits), std::to_string(st.merges),
                      std::to_string(st.appears), std::to_string(st.vanishes)});
        }
        t.print();
        std::printf("\n(the paper: \"in three dimensions, various splits and "
                    "merges of these lamellae can be observed\")\n");
    }
    return 0;
}
