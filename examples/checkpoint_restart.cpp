/// \file checkpoint_restart.cpp
/// Resilience workflow: run, checkpoint, simulate a crash, restore into a
/// fresh solver and continue. With the default float64 checkpoints the
/// restarted trajectory is *bitwise identical* to an uninterrupted
/// reference; the paper's single-precision mode (§3.2, half the file size)
/// is shown for comparison and tracks the reference only to float accuracy.
///
///   ./examples/checkpoint_restart [steps]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/solver.h"
#include "io/checkpoint.h"

int main(int argc, char** argv) {
    using namespace tpf;

    const int steps = argc > 1 ? std::atoi(argv[1]) : 400;
    const std::string dir = "checkpoint_demo";

    core::SolverConfig cfg;
    cfg.globalCells = {32, 32, 48};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.zEut0 = 20.0;
    cfg.model.temp.velocity = 0.02;
    cfg.init.fillHeight = 10;

    // Reference: uninterrupted run.
    core::Solver ref(cfg);
    ref.initialize();
    ref.run(steps);
    const auto refFr = ref.phaseFractions();
    std::printf("reference run:  t=%.2f  liquid fraction %.17g\n", ref.time(),
                refFr[core::LIQ]);

    // First half, then checkpoint (exact float64 by default).
    core::Solver first(cfg);
    first.initialize();
    first.run(steps / 2);
    io::saveCheckpoint(dir, first);
    const auto meta = io::readCheckpointMeta(dir);
    std::printf("checkpoint at step %lld (t=%.2f) written to %s/ "
                "(%zu bytes f64; f32 mode would be %zu)\n",
                meta.step, meta.time, dir.c_str(),
                io::checkpointBytes(first),
                io::checkpointBytes(first, io::CheckpointPrecision::Float32));

    // "Crash" — a brand-new solver restores and continues. No scenario
    // initialization: the checkpoint carries the complete state.
    core::Solver second(cfg);
    io::loadCheckpoint(dir, second);
    std::printf("restored at step %lld, continuing %d steps ...\n",
                second.stepsDone(), steps - steps / 2);
    second.run(steps - steps / 2);

    const auto fr = second.phaseFractions();
    std::printf("restarted run:  t=%.2f  liquid fraction %.17g\n",
                second.time(), fr[core::LIQ]);
    const double diff = std::abs(fr[core::LIQ] - refFr[core::LIQ]);
    std::printf("difference to reference: %.2e\n%s\n", diff,
                diff == 0.0 ? "OK (bitwise identical restart)" : "MISMATCH");

    std::filesystem::remove_all(dir);
    return diff == 0.0 ? 0 : 1;
}
