/// \file checkpoint_restart.cpp
/// Resilience workflow: run, checkpoint (single-precision, per-rank files —
/// paper §3.2), simulate a crash, restore into a fresh solver and continue.
/// Verifies that the continued run tracks an uninterrupted reference.
///
///   ./examples/checkpoint_restart [steps]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/solver.h"
#include "io/checkpoint.h"

int main(int argc, char** argv) {
    using namespace tpf;

    const int steps = argc > 1 ? std::atoi(argv[1]) : 400;
    const std::string dir = "checkpoint_demo";

    core::SolverConfig cfg;
    cfg.globalCells = {32, 32, 48};
    cfg.model.temp.gradient = 0.5;
    cfg.model.temp.zEut0 = 20.0;
    cfg.model.temp.velocity = 0.02;
    cfg.init.fillHeight = 10;

    // Reference: uninterrupted run.
    core::Solver ref(cfg);
    ref.initialize();
    ref.run(steps);
    const auto refFr = ref.phaseFractions();
    std::printf("reference run:  t=%.2f  liquid fraction %.5f\n", ref.time(),
                refFr[core::LIQ]);

    // First half, then checkpoint.
    core::Solver first(cfg);
    first.initialize();
    first.run(steps / 2);
    io::saveCheckpoint(dir, first);
    const auto meta = io::readCheckpointMeta(dir);
    std::printf("checkpoint at t=%.2f written to %s/ (%zu bytes, f32)\n",
                meta.time, dir.c_str(), io::checkpointBytes(first));

    // "Crash" — a brand-new solver restores and continues.
    core::Solver second(cfg);
    second.initialize();
    io::loadCheckpoint(dir, second);
    std::printf("restored at t=%.2f, continuing %d steps ...\n", second.time(),
                steps - steps / 2);
    second.run(steps - steps / 2);

    const auto fr = second.phaseFractions();
    std::printf("restarted run:  t=%.2f  liquid fraction %.5f\n", second.time(),
                fr[core::LIQ]);
    const double diff = std::abs(fr[core::LIQ] - refFr[core::LIQ]);
    std::printf("difference to reference: %.2e  (float32 checkpoint rounding)"
                "\n%s\n",
                diff, diff < 1e-3 ? "OK" : "MISMATCH");

    std::filesystem::remove_all(dir);
    return diff < 1e-3 ? 0 : 1;
}
