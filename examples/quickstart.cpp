/// \file quickstart.cpp
/// Minimal end-to-end use of the library: configure a small directional
/// solidification of the Ag-Al-Cu ternary eutectic, run it, and print the
/// evolving phase fractions and front position.
///
///   ./examples/quickstart [steps] [nx ny nz]

#include <cstdio>
#include <cstdlib>

#include "core/solver.h"

int main(int argc, char** argv) {
    using namespace tpf;

    const int steps = argc > 1 ? std::atoi(argv[1]) : 800;
    Int3 cells{48, 48, 64}; // x, y lateral (periodic), z growth
    if (argc != 2 && argc != 5 && argc != 1) {
        std::fprintf(stderr, "usage: quickstart [steps] [nx ny nz]\n");
        return 2;
    }
    if (argc == 5) {
        cells = {std::atoi(argv[2]), std::atoi(argv[3]), std::atoi(argv[4])};
        if (cells.x < 4 || cells.x % 4 != 0 || cells.y < 1 || cells.z < 4) {
            // nx must be a multiple of 4: the production kernels use
            // four-cell vectorization.
            std::fprintf(stderr,
                         "usage: quickstart [steps] [nx ny nz]  "
                         "(nx divisible by 4)\n");
            return 2;
        }
    }

    // --- configure ---------------------------------------------------------
    core::SolverConfig cfg;
    cfg.globalCells = cells;
    cfg.model.temp.gradient = 0.5;       // K per cell
    cfg.model.temp.velocity = 0.02;      // cells per time unit
    cfg.model.temp.zEut0 = 0.375 * cells.z; // eutectic isotherm position (24 at nz=64)
    cfg.init.fillHeight = 3 * cells.z / 16; // Voronoi solid fill height (12 at nz=64)
    cfg.overlapMu = true;                // Algorithm 2, mu hiding (production)

    // --- run ----------------------------------------------------------------
    core::Solver solver(cfg);
    solver.initialize();

    std::printf("Ag-Al-Cu ternary eutectic directional solidification\n");
    std::printf("domain %dx%dx%d, dt=%.3f, G=%.2f K/cell, v=%.3f cells/t\n\n",
                cfg.globalCells.x, cfg.globalCells.y, cfg.globalCells.z,
                cfg.model.dt, cfg.model.temp.gradient,
                cfg.model.temp.velocity);
    std::printf("%8s %8s %8s  %-30s\n", "time", "front", "liquid",
                "solid fractions (Al2Cu/Ag2Al/fcc-Al)");

    const int chunk = steps / 8 > 0 ? steps / 8 : 1;
    for (int done = 0; done < steps; done += chunk) {
        solver.run(std::min(chunk, steps - done));
        const auto f = solver.phaseFractions();
        const auto sf = solver.solidFractions();
        std::printf("%8.2f %8d %8.4f  %.3f / %.3f / %.3f\n", solver.time(),
                    solver.frontPosition(), f[core::LIQ], sf[0], sf[1], sf[2]);
    }

    const auto lf = solver.system().leverFractions();
    std::printf("\nlever-rule solid fractions:   %.3f / %.3f / %.3f\n",
                lf.solid[0], lf.solid[1], lf.solid[2]);
    std::printf("timeloop breakdown:\n");
    for (const auto& t : solver.timeloop().timings())
        std::printf("  %-18s %8.3f s\n", t.name.c_str(), t.seconds);
    return 0;
}
