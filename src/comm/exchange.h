#pragma once
/// \file exchange.h
/// Ghost-layer exchange between blocks, intra-rank by direct copy and
/// inter-rank through vmpi messages — the counterpart of waLBerla's uniform
/// buffered communication scheme.
///
/// The scheme supports communication hiding: start() packs and sends all
/// outgoing slabs (and performs local copies), wait() receives and unpacks.
/// Compute kernels that only touch interior cells may run between the two
/// calls (Algorithm 2 of the paper). start()+wait() back to back gives the
/// plain Algorithm 1 behaviour.
///
/// Which ghost regions are exchanged follows the stencil the *reading* kernel
/// uses: D3C7 needs the 6 faces, D3C19 faces + 12 edges, D3C27 all 26.

#include <vector>

#include "grid/block_forest.h"
#include "grid/field.h"
#include "vmpi/comm.h"

namespace tpf {

enum class StencilKind { D3C7, D3C19, D3C27 };

/// Neighbor offsets of a stencil (excluding the center).
const std::vector<Int3>& stencilOffsets(StencilKind k);

/// Index of offset \p o within the canonical D3C27 enumeration (0..25).
int offsetIndex27(Int3 o);

class GhostExchange {
public:
    /// \param comm     communicator, or nullptr for purely serial operation
    /// \param fieldSlot distinguishes concurrently exchanged fields in message
    ///                  tags (phi and mu use different slots); in [0, 8).
    GhostExchange(const BlockForest& bf, vmpi::Comm* comm, StencilKind stencil,
                  int fieldSlot);

    /// Destroying an in-flight exchange (an exception unwinding between
    /// start() and wait(), e.g. a failed collective checkpoint agreement in
    /// an overlapped schedule) cancels the posted receives explicitly — a
    /// dropped vmpi::Request is otherwise a hard assert.
    ~GhostExchange();

    /// Register the field of local block \p blockIdx. All registered fields
    /// must have identical shape and one ghost layer.
    void registerField(int blockIdx, Field<double>* field);

    /// Pack + send all outgoing messages and perform intra-rank copies.
    void start();
    /// Receive + unpack all incoming messages.
    void wait();
    /// start() immediately followed by wait().
    void communicate();

    /// Seconds spent inside start()/wait() since the last resetTimers().
    double startSeconds() const { return startSeconds_; }
    double waitSeconds() const { return waitSeconds_; }
    void resetTimers() {
        startSeconds_ = 0.0;
        waitSeconds_ = 0.0;
    }

    /// Total payload bytes sent to remote ranks since the last resetTimers().
    std::size_t bytesSent() const { return bytesSent_; }

private:
    struct RemoteRecv {
        int blockIdx = -1;  ///< local receiving block
        Int3 fromOffset{};  ///< direction the data comes from (ghost side)
        int srcRank = -1;
        int tag = -1;
        std::vector<std::byte> buffer;
        vmpi::Request request;
    };

    Field<double>* fieldOf(int blockIdx) const;

    const BlockForest& bf_;
    vmpi::Comm* comm_;
    StencilKind stencil_;
    int fieldSlot_;
    int myRank_;

    std::vector<int> blockIdx_;
    std::vector<Field<double>*> fields_;

    std::vector<RemoteRecv> recvs_;
    std::vector<double> packBuffer_;

    bool inFlight_ = false;
    double startSeconds_ = 0.0;
    double waitSeconds_ = 0.0;
    std::size_t bytesSent_ = 0;
};

/// Interior slab of \p f that must be sent towards neighbor offset \p o.
CellInterval sendRegion(const Field<double>& f, Int3 o);

/// Ghost slab of \p f that receives data arriving from direction \p o.
CellInterval ghostRegion(const Field<double>& f, Int3 o);

} // namespace tpf
