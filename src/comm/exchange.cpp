#include "comm/exchange.h"

#include "obs/clock.h"

namespace tpf {

namespace {

std::vector<Int3> makeOffsets(StencilKind k) {
    std::vector<Int3> out;
    for (int z = -1; z <= 1; ++z)
        for (int y = -1; y <= 1; ++y)
            for (int x = -1; x <= 1; ++x) {
                const int nnz = (x != 0) + (y != 0) + (z != 0);
                if (nnz == 0) continue;
                if (k == StencilKind::D3C7 && nnz > 1) continue;
                if (k == StencilKind::D3C19 && nnz > 2) continue;
                out.push_back({x, y, z});
            }
    return out;
}

double now() { return obs::wallNow(); }

constexpr int kMaxFieldSlots = 8;

} // namespace

const std::vector<Int3>& stencilOffsets(StencilKind k) {
    static const std::vector<Int3> c7 = makeOffsets(StencilKind::D3C7);
    static const std::vector<Int3> c19 = makeOffsets(StencilKind::D3C19);
    static const std::vector<Int3> c27 = makeOffsets(StencilKind::D3C27);
    switch (k) {
        case StencilKind::D3C7: return c7;
        case StencilKind::D3C19: return c19;
        default: return c27;
    }
}

int offsetIndex27(Int3 o) {
    TPF_ASSERT_DBG(!(o.x == 0 && o.y == 0 && o.z == 0), "zero offset has no index");
    const int idx = (o.z + 1) * 9 + (o.y + 1) * 3 + (o.x + 1);
    return idx > 13 ? idx - 1 : idx; // skip the center (index 13)
}

CellInterval sendRegion(const Field<double>& f, Int3 o) {
    const int g = f.ghost();
    auto range = [g](int oc, int n, int& lo, int& hi) {
        if (oc < 0) {
            lo = 0;
            hi = g - 1;
        } else if (oc > 0) {
            lo = n - g;
            hi = n - 1;
        } else {
            lo = 0;
            hi = n - 1;
        }
    };
    CellInterval ci;
    range(o.x, f.nx(), ci.xMin, ci.xMax);
    range(o.y, f.ny(), ci.yMin, ci.yMax);
    range(o.z, f.nz(), ci.zMin, ci.zMax);
    return ci;
}

CellInterval ghostRegion(const Field<double>& f, Int3 o) {
    const int g = f.ghost();
    auto range = [g](int oc, int n, int& lo, int& hi) {
        if (oc < 0) {
            lo = -g;
            hi = -1;
        } else if (oc > 0) {
            lo = n;
            hi = n + g - 1;
        } else {
            lo = 0;
            hi = n - 1;
        }
    };
    CellInterval ci;
    range(o.x, f.nx(), ci.xMin, ci.xMax);
    range(o.y, f.ny(), ci.yMin, ci.yMax);
    range(o.z, f.nz(), ci.zMin, ci.zMax);
    return ci;
}

namespace {

void packRegion(const Field<double>& f, const CellInterval& ci,
                std::vector<double>& buf) {
    buf.clear();
    buf.reserve(static_cast<std::size_t>(ci.numCells()) *
                static_cast<std::size_t>(f.nf()));
    forEachCell(ci, [&](int x, int y, int z) {
        for (int c = 0; c < f.nf(); ++c) buf.push_back(f(x, y, z, c));
    });
}

void unpackRegion(Field<double>& f, const CellInterval& ci, const double* buf,
                  std::size_t count) {
    TPF_ASSERT(count == static_cast<std::size_t>(ci.numCells()) *
                            static_cast<std::size_t>(f.nf()),
               "ghost message size mismatch");
    std::size_t i = 0;
    forEachCell(ci, [&](int x, int y, int z) {
        for (int c = 0; c < f.nf(); ++c) f(x, y, z, c) = buf[i++];
    });
}

/// Direct intra-rank copy: src send slab -> dst ghost slab.
void copyLocal(const Field<double>& src, const CellInterval& from,
               Field<double>& dst, const CellInterval& to) {
    TPF_ASSERT_DBG(from.numCells() == to.numCells(), "slab size mismatch");
    const int dxc = to.xMin - from.xMin;
    const int dyc = to.yMin - from.yMin;
    const int dzc = to.zMin - from.zMin;
    forEachCell(from, [&](int x, int y, int z) {
        for (int c = 0; c < src.nf(); ++c)
            dst(x + dxc, y + dyc, z + dzc, c) = src(x, y, z, c);
    });
}

} // namespace

GhostExchange::GhostExchange(const BlockForest& bf, vmpi::Comm* comm,
                             StencilKind stencil, int fieldSlot)
    : bf_(bf), comm_(comm), stencil_(stencil), fieldSlot_(fieldSlot),
      myRank_(comm ? comm->rank() : 0) {
    TPF_ASSERT(fieldSlot >= 0 && fieldSlot < kMaxFieldSlots, "field slot range");
}

GhostExchange::~GhostExchange() {
    // This was the one silent drop site for pending requests: letting
    // recvs_ die with live requests while an exception unwinds through an
    // in-flight exchange. Waiting here could deadlock (the peer may be the
    // rank that failed), so cancel instead — the run is over anyway.
    for (auto& rr : recvs_) rr.request.cancel();
}

void GhostExchange::registerField(int blockIdx, Field<double>* field) {
    TPF_ASSERT(field != nullptr, "null field");
    TPF_ASSERT(field->ghost() == 1, "exchange is implemented for one ghost layer");
    TPF_ASSERT(bf_.rankOf(blockIdx) == myRank_, "registering a non-local block");
    blockIdx_.push_back(blockIdx);
    fields_.push_back(field);
}

Field<double>* GhostExchange::fieldOf(int blockIdx) const {
    for (std::size_t i = 0; i < blockIdx_.size(); ++i)
        if (blockIdx_[i] == blockIdx) return fields_[i];
    TPF_ASSERT(false, "block not registered");
    return nullptr;
}

void GhostExchange::start() {
    TPF_ASSERT(!inFlight_, "start() called twice without wait()");
    const double t0 = now();
    const auto& offsets = stencilOffsets(stencil_);

    recvs_.clear();

    // Post every receive BEFORE packing or sending anything. We know each
    // incoming slab's exact size (the ghost region of the receiving block),
    // so transports that need a pre-sized landing buffer for true async
    // progress (MPI_Irecv) get one up front — peers' messages can then
    // arrive and complete while this rank runs its interior sweep between
    // start() and wait(), which is what makes the communication hiding of
    // paper Algorithm 2 a real latency hider.
    for (std::size_t i = 0; i < blockIdx_.size(); ++i) {
        const int b = blockIdx_[i];
        for (const Int3& o : offsets) {
            const auto nb = bf_.neighbor(b, o.x, o.y, o.z);
            if (!nb || nb->rank == myRank_) continue;
            RemoteRecv rr;
            rr.blockIdx = b;
            rr.fromOffset = o;
            rr.srcRank = nb->rank;
            rr.tag = (b * 27 + offsetIndex27(o)) * kMaxFieldSlots + fieldSlot_;
            recvs_.push_back(std::move(rr));
        }
    }
    // Second pass only after recvs_ stopped growing: the posted requests
    // hold pointers into the buffers, which must not reallocate.
    for (auto& rr : recvs_) {
        const Field<double>& f = *fieldOf(rr.blockIdx);
        const std::size_t bytes =
            static_cast<std::size_t>(ghostRegion(f, rr.fromOffset).numCells()) *
            static_cast<std::size_t>(f.nf()) * sizeof(double);
        rr.request = comm_->irecv(rr.srcRank, rr.tag, &rr.buffer, bytes);
    }

    for (std::size_t i = 0; i < blockIdx_.size(); ++i) {
        const int b = blockIdx_[i];
        Field<double>& f = *fields_[i];

        for (const Int3& o : offsets) {
            const auto nb = bf_.neighbor(b, o.x, o.y, o.z);
            if (!nb) continue; // non-periodic domain boundary: boundary handling

            if (nb->rank == myRank_) {
                // Intra-rank: copy directly into the neighbor's ghost slab.
                Field<double>& dst = *fieldOf(nb->block);
                copyLocal(f, sendRegion(f, o), dst,
                          ghostRegion(dst, {-o.x, -o.y, -o.z}));
            } else {
                // Tag from the receiver's perspective: the neighbor receives
                // data arriving from direction -o into block nb->block.
                const int tag =
                    (nb->block * 27 + offsetIndex27({-o.x, -o.y, -o.z})) *
                        kMaxFieldSlots +
                    fieldSlot_;
                packRegion(f, sendRegion(f, o), packBuffer_);
                comm_->send(nb->rank, tag, packBuffer_.data(),
                            packBuffer_.size() * sizeof(double));
                bytesSent_ += packBuffer_.size() * sizeof(double);
            }
        }
    }

    inFlight_ = true;
    startSeconds_ += now() - t0;
}

void GhostExchange::wait() {
    TPF_ASSERT(inFlight_, "wait() without start()");
    const double t0 = now();
    for (auto& rr : recvs_) {
        comm_->wait(rr.request);
        Field<double>& f = *fieldOf(rr.blockIdx);
        unpackRegion(f, ghostRegion(f, rr.fromOffset),
                     reinterpret_cast<const double*>(rr.buffer.data()),
                     rr.buffer.size() / sizeof(double));
    }
    recvs_.clear();
    inFlight_ = false;
    waitSeconds_ += now() - t0;
}

void GhostExchange::communicate() {
    start();
    wait();
}

} // namespace tpf
