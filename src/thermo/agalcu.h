#pragma once
/// \file agalcu.h
/// The Ag-Al-Cu ternary eutectic dataset.
///
/// The paper derives parabolic fits from the Calphad assessment of
/// Witusiewicz et al. (J. Alloys Compd. 2004/2005); the exact fit
/// coefficients are not published. This dataset reproduces the published
/// *equilibrium topology* that the solver actually consumes:
///   - eutectic temperature T_E = 773.6 K (≈ 500.45 °C),
///   - eutectic liquid composition near Ag 18 at.%, Al 69 at.%, Cu 13 at.%
///     (independent coordinates c = (c_Ag, c_Cu)),
///   - three solid phases Al2Cu (theta), Ag2Al (zeta), fcc-Al (alpha) with
///     compositions near their stoichiometries / solubility limits,
///   - similar solid phase fractions at the eutectic (lever rule gives
///     roughly 37% Al2Cu / 24% Ag2Al / 39% fcc-Al here),
///   - solids thermodynamically favoured below T_E (positive m), liquid
///     above.
/// Energies are non-dimensionalized (the solver works in lattice units);
/// DESIGN.md §2 documents this substitution.

#include "thermo/system.h"

namespace tpf::thermo {

/// Phase indices of the Ag-Al-Cu system as used throughout the library.
enum AgAlCuPhase : int {
    kAl2Cu = 0, ///< theta phase
    kAg2Al = 1, ///< zeta phase
    kFccAl = 2, ///< alpha (Al-rich fcc) phase
    kLiquid = kLiquidPhase,
};

/// Construct the Ag-Al-Cu system.
/// \param undercoolingStrength scales the m coefficients (driving force per
///        Kelvin of undercooling); the default is tuned for stable growth at
///        the default ModelParams.
TernarySystem makeAgAlCu(double undercoolingStrength = 1.0);

} // namespace tpf::thermo
