#include "thermo/system.h"

namespace tpf::thermo {

TernarySystem::TernarySystem(std::array<ParabolicPhase, kNumPhases> phases,
                             std::array<std::string, kNumPhases> phaseNames,
                             double Teut, Vec2 muEut,
                             std::array<double, kNumPhases> diffusivity)
    : phases_(phases), names_(std::move(phaseNames)), Teut_(Teut), muEut_(muEut),
      D_(diffusivity) {
    TPF_ASSERT(Teut > 0.0, "eutectic temperature must be positive");
    for (double d : D_) TPF_ASSERT(d >= 0.0, "diffusivities must be nonnegative");
    calibrate();
}

void TernarySystem::calibrate() {
    // At the four-phase eutectic equilibrium (muEut, Teut) all grand
    // potentials are equal; fixing the common value to zero removes the
    // irrelevant energy origin. Only the *differences* enter the driving
    // force, so this is a pure gauge choice.
    for (auto& p : phases_) {
        const double w = p.grandPotential(muEut_, Teut_);
        p.b -= w;
    }
}

Vec2 TernarySystem::mixtureConcentration(const double* h, Vec2 mu,
                                         double T) const {
    Vec2 c{0.0, 0.0};
    for (int a = 0; a < kNumPhases; ++a)
        c += phases_[static_cast<std::size_t>(a)].cOfMu(mu, T) * h[a];
    return c;
}

Mat2 TernarySystem::susceptibility(const double* h) const {
    Mat2 chi;
    for (int a = 0; a < kNumPhases; ++a)
        chi += phases_[static_cast<std::size_t>(a)].Kinv * h[a];
    return chi;
}

Mat2 TernarySystem::mobility(const double* phi) const {
    Mat2 M;
    for (int a = 0; a < kNumPhases; ++a)
        M += phases_[static_cast<std::size_t>(a)].Kinv *
             (phi[a] * D_[static_cast<std::size_t>(a)]);
    return M;
}

Vec2 TernarySystem::dcdT(const double* h) const {
    Vec2 s{0.0, 0.0};
    for (int a = 0; a < kNumPhases; ++a)
        s += phases_[static_cast<std::size_t>(a)].dxidT * h[a];
    return s;
}

LeverFractions TernarySystem::leverFractions() const {
    // Mass balance over the three solids against the liquid composition:
    //   sum_a f_a (c_a - c_2) = c_l - c_2  with f_2 = 1 - f_0 - f_1.
    const Vec2 cl = cOfPhase(kLiquidPhase, muEut_, Teut_);
    const Vec2 c0 = cOfPhase(0, muEut_, Teut_);
    const Vec2 c1 = cOfPhase(1, muEut_, Teut_);
    const Vec2 c2 = cOfPhase(2, muEut_, Teut_);

    const Mat2 A{c0.x - c2.x, c1.x - c2.x, c0.y - c2.y, c1.y - c2.y};
    const Vec2 rhs = cl - c2;
    const Vec2 f01 = A.solve(rhs);

    LeverFractions lf;
    lf.solid = {f01.x, f01.y, 1.0 - f01.x - f01.y};
    return lf;
}

double TernarySystem::maxEffectiveDiffusivity() const {
    double dmax = 0.0;
    for (int a = 0; a < kNumPhases; ++a) {
        const Mat2 DK = phases_[static_cast<std::size_t>(a)].Kinv *
                        D_[static_cast<std::size_t>(a)];
        const auto ev = DK.symEigenvalues();
        dmax = std::max(dmax, std::max(std::abs(ev[0]), std::abs(ev[1])));
    }
    return dmax;
}

} // namespace tpf::thermo
