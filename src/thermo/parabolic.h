#pragma once
/// \file parabolic.h
/// Parabolically fitted Gibbs/free energies and the grand potentials derived
/// from them.
///
/// The paper ("fitted parabolic Gibbs energies ... derived from the
/// thermodynamic Calphad databases [5]") only ever evaluates the
/// thermodynamics near the ternary eutectic point, so each phase alpha is
/// described by
///
///   f_alpha(c, T) = 1/2 (c - xi_alpha(T))^T K_alpha (c - xi_alpha(T))
///                   + m_alpha (T - T_ref) + b_alpha
///
/// in the two *independent* concentrations c = (c_Ag, c_Cu) (c_Al follows
/// from mass conservation). The chemical potential mu = df/dc is then linear,
/// invertible in closed form, and the grand potential
/// omega_alpha(mu, T) = f - mu.c is an explicit quadratic in mu — exactly the
/// structure the optimized kernels exploit.

#include "util/smallmat.h"

namespace tpf::thermo {

/// Number of thermodynamic phases (3 solids + liquid) and chemical species.
inline constexpr int kNumPhases = 4;
inline constexpr int kNumComponents = 3;
/// Index of the liquid phase in all per-phase arrays.
inline constexpr int kLiquidPhase = 3;

/// One parabolic free-energy description. Immutable after construction.
struct ParabolicPhase {
    Mat2 K;       ///< curvature of f in c (SPD)
    Mat2 Kinv;    ///< cached inverse of K
    Vec2 xi0;     ///< equilibrium (minimizing) concentration at T = Tref
    Vec2 dxidT;   ///< temperature slope of the minimum (solidus/liquidus slopes)
    double m = 0; ///< linear temperature coefficient (entropy-like, drives growth)
    double b = 0; ///< constant offset, calibrated by TernarySystem
    double Tref = 1; ///< reference temperature (the eutectic temperature)

    ParabolicPhase() = default;
    ParabolicPhase(Mat2 curvature, Vec2 xiAtTref, Vec2 slope, double mCoeff,
                   double bCoeff, double TrefIn);

    /// Minimum position at temperature T.
    Vec2 xi(double T) const { return xi0 + dxidT * (T - Tref); }

    /// Free energy density at concentration c.
    double f(Vec2 c, double T) const {
        const Vec2 d = c - xi(T);
        return 0.5 * d.dot(K * d) + m * (T - Tref) + b;
    }

    /// Chemical potential mu = df/dc at concentration c.
    Vec2 mu(Vec2 c, double T) const { return K * (c - xi(T)); }

    /// Phase concentration as a function of the chemical potential
    /// (inverse of mu(c)): c_alpha(mu, T) = xi(T) + K^-1 mu.
    Vec2 cOfMu(Vec2 muv, double T) const { return xi(T) + Kinv * muv; }

    /// Grand potential density omega(mu, T) = f(c(mu)) - mu . c(mu)
    ///   = -1/2 mu^T K^-1 mu - mu . xi(T) + m (T - Tref) + b.
    double grandPotential(Vec2 muv, double T) const {
        return -0.5 * muv.dot(Kinv * muv) - muv.dot(xi(T)) + m * (T - Tref) + b;
    }
};

} // namespace tpf::thermo
