#include "thermo/agalcu.h"

namespace tpf::thermo {

TernarySystem makeAgAlCu(double undercoolingStrength) {
    const double TE = 773.6; // K

    // Curvatures: stiff parabolas keep phase concentrations close to their
    // equilibrium values; mild off-diagonal coupling in the liquid mimics the
    // non-ideal ternary interactions of the Calphad description.
    const Mat2 Kliq{8.0, 1.0, 1.0, 8.0};
    const Mat2 Ksol{12.0, 0.0, 0.0, 12.0};

    // Driving-force strength per Kelvin of undercooling.
    const double m = 0.02 * undercoolingStrength;

    std::array<ParabolicPhase, kNumPhases> phases{
        // Al2Cu (theta): c_Ag ~ 0, c_Cu ~ 1/3.
        ParabolicPhase(Ksol, Vec2{0.02, 0.32}, Vec2{2e-5, 5e-5}, m, 0.0, TE),
        // Ag2Al (zeta): c_Ag ~ 2/3, c_Cu ~ 0.
        ParabolicPhase(Ksol, Vec2{0.66, 0.01}, Vec2{5e-5, 2e-5}, m, 0.0, TE),
        // fcc-Al (alpha): dilute solution of Ag and Cu in Al.
        ParabolicPhase(Ksol, Vec2{0.05, 0.03}, Vec2{4e-5, 4e-5}, m, 0.0, TE),
        // Liquid at the eutectic composition; liquidus slopes steeper than
        // the solidus slopes of the solids.
        ParabolicPhase(Kliq, Vec2{0.18, 0.13}, Vec2{4e-4, 3e-4}, 0.0, 0.0, TE),
    };

    // With xi_l(TE) equal to the eutectic liquid composition, the four-phase
    // equilibrium sits at muEut = K_l (c* - xi_l) = 0.
    const Vec2 muEut{0.0, 0.0};

    // Diffusion: solidification is controlled by liquid diffusion; solid-state
    // diffusion is orders of magnitude slower (the paper neglects evolution in
    // the solid entirely — the moving window drops solidified material).
    std::array<double, kNumPhases> D{1e-4, 1e-4, 1e-4, 1.0};

    return TernarySystem(phases, {"Al2Cu", "Ag2Al", "fcc-Al", "liquid"}, TE,
                         muEut, D);
}

} // namespace tpf::thermo
