#pragma once
/// \file system.h
/// The ternary system: four parabolic phases plus the eutectic-equilibrium
/// bookkeeping the kernels need (susceptibility, mobility, lever rule,
/// calibration of the grand-potential offsets).

#include <array>
#include <string>

#include "thermo/parabolic.h"

namespace tpf::thermo {

/// Equilibrium solid fractions from the lever rule at the eutectic point.
struct LeverFractions {
    std::array<double, 3> solid{}; ///< fractions of phases 0..2, sum to 1
};

class TernarySystem {
public:
    /// \param phases    per-phase parabolic descriptions (b offsets are
    ///                  overwritten by calibration)
    /// \param Teut      eutectic temperature
    /// \param muEut     chemical potential of the four-phase equilibrium
    /// \param diffusivity per-phase diffusion coefficient D_alpha (liquid
    ///                  large, solids ~0); the mobility is
    ///                  M(phi, T) = sum_a phi_a D_a K_a^-1
    TernarySystem(std::array<ParabolicPhase, kNumPhases> phases,
                  std::array<std::string, kNumPhases> phaseNames, double Teut,
                  Vec2 muEut, std::array<double, kNumPhases> diffusivity);

    const ParabolicPhase& phase(int a) const {
        TPF_ASSERT_DBG(a >= 0 && a < kNumPhases, "phase index");
        return phases_[static_cast<std::size_t>(a)];
    }
    const std::string& phaseName(int a) const {
        return names_[static_cast<std::size_t>(a)];
    }
    double Teut() const { return Teut_; }
    Vec2 muEut() const { return muEut_; }
    double diffusivity(int a) const { return D_[static_cast<std::size_t>(a)]; }

    /// Grand potential of phase \p a at (mu, T).
    double omega(int a, Vec2 mu, double T) const {
        return phase(a).grandPotential(mu, T);
    }

    /// Concentration of phase \p a at (mu, T).
    Vec2 cOfPhase(int a, Vec2 mu, double T) const {
        return phase(a).cOfMu(mu, T);
    }

    /// Mixture concentration c = sum_a h_a c_a(mu, T) for interpolation
    /// weights h (length kNumPhases, on the simplex).
    Vec2 mixtureConcentration(const double* h, Vec2 mu, double T) const;

    /// Susceptibility chi = (dc/dmu)_{T,phi} = sum_a h_a K_a^-1 (SPD).
    Mat2 susceptibility(const double* h) const;

    /// Mobility M(phi, T) = sum_a phi_a D_a K_a^-1.
    Mat2 mobility(const double* phi) const;

    /// dc/dT at fixed (mu, phi): sum_a h_a dxi_a/dT.
    Vec2 dcdT(const double* h) const;

    /// Equilibrium solid phase fractions from the lever rule: solve
    /// sum_a f_a c_a(muEut, Teut) = c_liquid(muEut, Teut), sum_a f_a = 1.
    LeverFractions leverFractions() const;

    /// Maximum eigenvalue of any D_a K_a^-1 — the effective diffusivity used
    /// in the explicit-Euler stability bound for the mu equation.
    double maxEffectiveDiffusivity() const;

private:
    /// Shift the b offsets so all grand potentials vanish at (muEut, Teut) —
    /// the defining property of the four-phase eutectic equilibrium.
    void calibrate();

    std::array<ParabolicPhase, kNumPhases> phases_;
    std::array<std::string, kNumPhases> names_;
    double Teut_;
    Vec2 muEut_;
    std::array<double, kNumPhases> D_;
};

} // namespace tpf::thermo
