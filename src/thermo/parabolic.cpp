#include "thermo/parabolic.h"

namespace tpf::thermo {

ParabolicPhase::ParabolicPhase(Mat2 curvature, Vec2 xiAtTref, Vec2 slope,
                               double mCoeff, double bCoeff, double TrefIn)
    : K(curvature), Kinv(curvature.inverse()), xi0(xiAtTref), dxidT(slope),
      m(mCoeff), b(bCoeff), Tref(TrefIn) {
    TPF_ASSERT(K.isSymmetric(1e-12), "curvature matrix must be symmetric");
    const auto ev = K.symEigenvalues();
    TPF_ASSERT(ev[0] > 0.0, "curvature matrix must be positive definite");
}

} // namespace tpf::thermo
