#pragma once
/// \file bench_json.h
/// The in-repo performance trajectory: benchmark binaries emit their MLUP/s
/// measurements into a versioned `BENCH_<n>.json` at the repository root, one
/// file per PR, so the throughput history travels with the code the way the
/// golden checkpoints of tests/golden/ carry the physics history.
///
/// A document looks like
///
///     {
///       "schema": "tpf-bench v1",
///       "machine": "x86-64 fma avx2 avx512f, 4 hw threads",
///       "entries": [
///         {
///           "bench": "bench_fused",
///           "variant": "split 60^3 t1",
///           "mlups": 3.2156789012345678,
///           "bytes_per_cell": 680
///         }
///       ]
///     }
///
/// Doubles are printed with %.17g (exact IEEE-754 round-trip — the same
/// contract as io/csv_writer.h), keys are emitted in a fixed order, and
/// entries keep their insertion order, so re-serializing a parsed document
/// reproduces it byte for byte. `bytes_per_cell` is 0 when the producing
/// bench has no per-cell traffic model (e.g. whole-step timings).
///
/// Multiple binaries share one file: each re-reads the document and upserts
/// its own (bench, variant) rows, leaving the others in place.
///
/// The parser accepts exactly this schema (a deliberate subset of JSON) and
/// reports failures as BenchJsonError with line/column-pointed messages, in
/// the style of io/csv_writer.h's CsvError.

#include <stdexcept>
#include <string>
#include <vector>

namespace tpf::perf {

/// Raised on malformed documents, schema mismatches and file I/O failure.
class BenchJsonError : public std::runtime_error {
public:
    explicit BenchJsonError(const std::string& what)
        : std::runtime_error(what) {}
};

inline constexpr const char* kBenchSchema = "tpf-bench v1";

struct BenchEntry {
    std::string bench;   ///< producing binary, e.g. "bench_fused"
    std::string variant; ///< measurement label, e.g. "fused 60^3 t1"
    double mlups = 0.0;
    double bytesPerCell = 0.0; ///< 0 = no traffic model for this entry
};

struct BenchDoc {
    std::string machine; ///< machineFingerprint() of the producing host
    std::vector<BenchEntry> entries;
};

/// Serialize (deterministic: fixed key order, %.17g numbers).
std::string writeBenchJson(const BenchDoc& doc);
/// Parse; throws BenchJsonError with a line/column-pointed message.
BenchDoc parseBenchJson(const std::string& text);

/// File variants. readBenchJsonFile throws on a missing file;
/// writeBenchJsonFile truncates.
BenchDoc readBenchJsonFile(const std::string& path);
void writeBenchJsonFile(const std::string& path, const BenchDoc& doc);

/// Replace rows of \p doc matching an incoming (bench, variant) in place;
/// append the rest. The per-binary merge step for a shared BENCH file.
void upsertBenchEntries(BenchDoc& doc, const std::vector<BenchEntry>& add);

/// Read-modify-write convenience used by the `--json <path>` bench flags: a
/// missing file starts a fresh document stamped with machineFingerprint().
void upsertBenchFile(const std::string& path,
                     const std::vector<BenchEntry>& add);

struct BenchDiff {
    bool ok = true;
    std::string message; ///< first violation, or "ok"
};

/// Trajectory gate: every entry of \p baseline that reappears in
/// \p candidate (same bench and variant) must not have regressed by more
/// than \p relTol (fraction, e.g. 0.5 = half the baseline throughput).
/// Entries missing from \p candidate are reported; new entries are fine.
/// Documents from different machines compare trivially ok — a throughput
/// trajectory only means something on the hardware that produced it.
BenchDiff diffBench(const BenchDoc& baseline, const BenchDoc& candidate,
                    double relTol);

/// Stable description of the executing host: ISA dispatch level (the same
/// cpuid checks as core/kernel_dispatch.cpp) plus the hardware thread count.
/// Deliberately free of hostnames, clocks and serial numbers.
std::string machineFingerprint();

} // namespace tpf::perf
