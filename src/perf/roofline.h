#pragma once
/// \file roofline.h
/// Roofline performance model (Williams/Waterman/Patterson) as applied in the
/// paper's §5.1.1: decide whether a kernel is bandwidth- or compute-bound and
/// compute the corresponding MLUP/s ceilings.

namespace tpf::perf {

struct RooflineInput {
    double peakGflops = 0.0;    ///< attainable FLOP rate of the core(s)
    double bandwidthGiBs = 0.0; ///< attainable memory bandwidth (STREAM)
    double flopsPerCell = 0.0;
    double bytesPerCell = 0.0;
};

struct RooflineResult {
    double arithmeticIntensity = 0.0; ///< flop / byte
    bool computeBound = false;
    double bandwidthBoundMlups = 0.0; ///< ceiling if memory were the limit
    double computeBoundMlups = 0.0;   ///< ceiling if FLOPs were the limit
    double boundMlups = 0.0;          ///< min of the two
};

RooflineResult evaluateRoofline(const RooflineInput& in);

/// Measure the attainable double-precision FLOP rate of one core with a
/// register-resident FMA chain benchmark (8 independent SIMD accumulators).
double measurePeakGflopsPerCore();

} // namespace tpf::perf
