#pragma once
/// \file streambench.h
/// STREAM-style memory bandwidth measurement (McCalpin) — the paper measures
/// "the maximum attainable bandwidth using STREAM on one node" as input to
/// its roofline analysis (§5.1.1).

namespace tpf::perf {

struct StreamResult {
    double copyGiBs = 0.0;  ///< c[i] = a[i]
    double triadGiBs = 0.0; ///< a[i] = b[i] + s * c[i]
};

/// Run the copy and triad kernels over arrays of \p megabytes MiB each
/// (default large enough to defeat L3) with \p threads parallel workers.
StreamResult runStream(int megabytes = 256, int threads = 1);

} // namespace tpf::perf
