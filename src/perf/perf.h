#pragma once
/// \file perf.h
/// Timing and throughput helpers shared by the benchmark binaries. The
/// paper's metric is MLUP/s — "million lattice cell updates per second".

#include <chrono>

namespace tpf::perf {

inline double now() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
}

/// Million lattice updates per second.
inline double mlups(long long cells, long long iterations, double seconds) {
    return static_cast<double>(cells) * static_cast<double>(iterations) /
           seconds / 1e6;
}

/// Run \p fn repeatedly for at least \p minSeconds (after one warmup call);
/// returns seconds per call.
template <typename Fn>
double timeIt(Fn&& fn, double minSeconds = 0.3) {
    fn(); // warmup
    const double t0 = now();
    long long iters = 0;
    do {
        fn();
        ++iters;
    } while (now() - t0 < minSeconds);
    return (now() - t0) / static_cast<double>(iters);
}

} // namespace tpf::perf
