#include "perf/roofline.h"

#include "perf/perf.h"
#include "simd/simd.h"

namespace tpf::perf {

RooflineResult evaluateRoofline(const RooflineInput& in) {
    RooflineResult r;
    r.arithmeticIntensity = in.flopsPerCell / in.bytesPerCell;
    r.bandwidthBoundMlups =
        in.bandwidthGiBs * 1024.0 * 1024.0 * 1024.0 / in.bytesPerCell / 1e6;
    r.computeBoundMlups = in.peakGflops * 1e9 / in.flopsPerCell / 1e6;
    r.computeBound = r.computeBoundMlups < r.bandwidthBoundMlups;
    r.boundMlups = r.computeBound ? r.computeBoundMlups : r.bandwidthBoundMlups;
    return r;
}

double measurePeakGflopsPerCore() {
    using V = simd::Vec4d;
    // 8 independent accumulator chains of fused multiply-adds: enough ILP to
    // saturate both FMA ports.
    V acc0 = V::broadcast(1.0), acc1 = V::broadcast(1.1);
    V acc2 = V::broadcast(1.2), acc3 = V::broadcast(1.3);
    V acc4 = V::broadcast(1.4), acc5 = V::broadcast(1.5);
    V acc6 = V::broadcast(1.6), acc7 = V::broadcast(1.7);
    const V m = V::broadcast(0.999999999);
    const V a = V::broadcast(1e-9);

    constexpr long long inner = 200000;
    auto burst = [&] {
        for (long long i = 0; i < inner; ++i) {
            acc0 = V::fmadd(acc0, m, a);
            acc1 = V::fmadd(acc1, m, a);
            acc2 = V::fmadd(acc2, m, a);
            acc3 = V::fmadd(acc3, m, a);
            acc4 = V::fmadd(acc4, m, a);
            acc5 = V::fmadd(acc5, m, a);
            acc6 = V::fmadd(acc6, m, a);
            acc7 = V::fmadd(acc7, m, a);
        }
    };

    burst(); // warmup
    const double t0 = now();
    long long bursts = 0;
    while (now() - t0 < 0.3) {
        burst();
        ++bursts;
    }
    const double sec = now() - t0;

    // 8 chains * 4 lanes * 2 flops (fma) per iteration.
    const double flops =
        static_cast<double>(bursts) * inner * 8.0 * 4.0 * 2.0;
    // Keep the accumulators alive.
    volatile double sink = (acc0 + acc1 + acc2 + acc3 + acc4 + acc5 + acc6 +
                            acc7)
                               .hsum();
    (void)sink;
    return flops / sec / 1e9;
}

} // namespace tpf::perf
