#include "perf/streambench.h"

#include <thread>
#include <vector>

#include "perf/perf.h"
#include "util/alignment.h"

namespace tpf::perf {

namespace {

struct Arrays {
    std::vector<double, AlignedAllocator<double>> a, b, c;
    explicit Arrays(std::size_t n) : a(n, 1.0), b(n, 2.0), c(n, 0.5) {}
};

} // namespace

StreamResult runStream(int megabytes, int threads) {
    const std::size_t n =
        static_cast<std::size_t>(megabytes) * 1024 * 1024 / sizeof(double);
    const std::size_t perThread = n / static_cast<std::size_t>(threads);

    std::vector<Arrays> arrays;
    arrays.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) arrays.emplace_back(perThread);

    auto parallel = [&](auto kernel) {
        if (threads == 1) {
            kernel(0);
            return;
        }
        std::vector<std::thread> ts;
        ts.reserve(static_cast<std::size_t>(threads));
        for (int t = 0; t < threads; ++t) ts.emplace_back(kernel, t);
        for (auto& th : ts) th.join();
    };

    constexpr int reps = 5;

    // Copy: 2 * 8 bytes per element.
    const double t0 = now();
    for (int r = 0; r < reps; ++r) {
        parallel([&](int t) {
            auto& ar = arrays[static_cast<std::size_t>(t)];
            double* __restrict dst = ar.c.data();
            const double* __restrict src = ar.a.data();
            for (std::size_t i = 0; i < perThread; ++i) dst[i] = src[i];
        });
    }
    const double copySec = now() - t0;

    // Triad: 3 * 8 bytes per element.
    const double t1 = now();
    for (int r = 0; r < reps; ++r) {
        parallel([&](int t) {
            auto& ar = arrays[static_cast<std::size_t>(t)];
            double* __restrict dst = ar.a.data();
            const double* __restrict b = ar.b.data();
            const double* __restrict c = ar.c.data();
            for (std::size_t i = 0; i < perThread; ++i)
                dst[i] = b[i] + 1.000001 * c[i];
        });
    }
    const double triadSec = now() - t1;

    const double bytesPerRep =
        static_cast<double>(perThread) * threads * sizeof(double);
    StreamResult res;
    res.copyGiBs = 2.0 * bytesPerRep * reps / copySec / (1024.0 * 1024 * 1024);
    res.triadGiBs = 3.0 * bytesPerRep * reps / triadSec / (1024.0 * 1024 * 1024);
    return res;
}

} // namespace tpf::perf
