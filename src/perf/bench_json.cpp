#include "perf/bench_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "util/thread_pool.h"

namespace tpf::perf {

namespace {

std::string fmtDouble(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/// Recursive-descent parser for the documented schema subset. Tracks the
/// line/column of the cursor so every failure points at its cause.
struct Parser {
    const std::string& s;
    std::size_t i = 0;
    int line = 1, col = 1;

    [[noreturn]] void fail(const std::string& msg) const {
        throw BenchJsonError("bench json: line " + std::to_string(line) +
                             ", col " + std::to_string(col) + ": " + msg);
    }

    bool done() const { return i >= s.size(); }

    char peek() const {
        if (done()) fail("unexpected end of document");
        return s[i];
    }

    char take() {
        const char c = peek();
        ++i;
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    void skipWs() {
        while (!done() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                           s[i] == '\r'))
            take();
    }

    void expect(char c) {
        skipWs();
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" + peek() + "'");
        take();
    }

    std::string parseString() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = take();
            if (c == '"') return out;
            if (c == '\n') fail("unterminated string");
            if (c == '\\') {
                const char e = take();
                if (e != '"' && e != '\\')
                    fail(std::string("unsupported escape '\\") + e + "'");
                out.push_back(e);
                continue;
            }
            out.push_back(c);
        }
    }

    double parseNumber() {
        skipWs();
        const std::size_t start = i;
        while (!done() &&
               (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
                s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                s[i] == 'n' || s[i] == 'a' || s[i] == 'i' || s[i] == 'f'))
            take();
        if (i == start) fail("expected a number");
        const std::string tok = s.substr(start, i - start);
        char* end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("malformed number \"" + tok + "\"");
        return v;
    }

    /// ',' between elements, or \p close ending the sequence.
    bool moreElements(char close) {
        skipWs();
        if (peek() == close) {
            take();
            return false;
        }
        if (peek() != ',')
            fail(std::string("expected ',' or '") + close + "', found '" +
                 peek() + "'");
        take();
        return true;
    }

    BenchEntry parseEntry() {
        expect('{');
        BenchEntry e;
        bool haveBench = false, haveVariant = false, haveMlups = false;
        skipWs();
        if (peek() == '}') fail("empty entry object");
        do {
            const std::string key = parseString();
            expect(':');
            if (key == "bench") {
                e.bench = parseString();
                haveBench = true;
            } else if (key == "variant") {
                e.variant = parseString();
                haveVariant = true;
            } else if (key == "mlups") {
                e.mlups = parseNumber();
                haveMlups = true;
            } else if (key == "bytes_per_cell") {
                e.bytesPerCell = parseNumber();
            } else {
                fail("unknown entry key \"" + key + "\"");
            }
        } while (moreElements('}'));
        if (!haveBench) fail("entry without \"bench\"");
        if (!haveVariant) fail("entry without \"variant\"");
        if (!haveMlups) fail("entry without \"mlups\"");
        return e;
    }

    BenchDoc parseDoc() {
        expect('{');
        BenchDoc doc;
        bool haveSchema = false, haveMachine = false, haveEntries = false;
        skipWs();
        if (peek() == '}') fail("empty document object");
        do {
            const std::string key = parseString();
            expect(':');
            if (key == "schema") {
                const std::string schema = parseString();
                if (schema != kBenchSchema)
                    fail("unsupported schema \"" + schema + "\" (expected \"" +
                         kBenchSchema + "\")");
                haveSchema = true;
            } else if (key == "machine") {
                doc.machine = parseString();
                haveMachine = true;
            } else if (key == "entries") {
                expect('[');
                skipWs();
                if (peek() == ']')
                    take();
                else
                    do doc.entries.push_back(parseEntry());
                    while (moreElements(']'));
                haveEntries = true;
            } else {
                fail("unknown document key \"" + key + "\"");
            }
        } while (moreElements('}'));
        if (!haveSchema) fail("document without \"schema\"");
        if (!haveMachine) fail("document without \"machine\"");
        if (!haveEntries) fail("document without \"entries\"");
        skipWs();
        if (!done()) fail("trailing content after the document");
        return doc;
    }
};

} // namespace

std::string writeBenchJson(const BenchDoc& doc) {
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"" + std::string(kBenchSchema) + "\",\n";
    out += "  \"machine\": \"" + escaped(doc.machine) + "\",\n";
    out += "  \"entries\": [";
    for (std::size_t k = 0; k < doc.entries.size(); ++k) {
        const BenchEntry& e = doc.entries[k];
        out += k == 0 ? "\n" : ",\n";
        out += "    {\n";
        out += "      \"bench\": \"" + escaped(e.bench) + "\",\n";
        out += "      \"variant\": \"" + escaped(e.variant) + "\",\n";
        out += "      \"mlups\": " + fmtDouble(e.mlups) + ",\n";
        out += "      \"bytes_per_cell\": " + fmtDouble(e.bytesPerCell) + "\n";
        out += "    }";
    }
    out += doc.entries.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

BenchDoc parseBenchJson(const std::string& text) {
    Parser p{text};
    return p.parseDoc();
}

BenchDoc readBenchJsonFile(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) throw BenchJsonError("bench json: cannot open " + path);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    try {
        return parseBenchJson(text);
    } catch (const BenchJsonError& e) {
        throw BenchJsonError(path + ": " + e.what());
    }
}

void writeBenchJsonFile(const std::string& path, const BenchDoc& doc) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) throw BenchJsonError("bench json: cannot write " + path);
    const std::string text = writeBenchJson(doc);
    const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (n != text.size())
        throw BenchJsonError("bench json: short write to " + path);
}

void upsertBenchEntries(BenchDoc& doc, const std::vector<BenchEntry>& add) {
    for (const BenchEntry& e : add) {
        bool replaced = false;
        for (BenchEntry& have : doc.entries) {
            if (have.bench == e.bench && have.variant == e.variant) {
                have = e;
                replaced = true;
                break;
            }
        }
        if (!replaced) doc.entries.push_back(e);
    }
}

void upsertBenchFile(const std::string& path,
                     const std::vector<BenchEntry>& add) {
    BenchDoc doc;
    if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
        std::fclose(f);
        doc = readBenchJsonFile(path);
    } else {
        doc.machine = machineFingerprint();
    }
    upsertBenchEntries(doc, add);
    writeBenchJsonFile(path, doc);
}

BenchDiff diffBench(const BenchDoc& baseline, const BenchDoc& candidate,
                    double relTol) {
    if (baseline.machine != candidate.machine)
        return {true, "different machines (\"" + baseline.machine +
                          "\" vs \"" + candidate.machine +
                          "\") — trajectory not comparable"};
    for (const BenchEntry& b : baseline.entries) {
        const BenchEntry* c = nullptr;
        for (const BenchEntry& e : candidate.entries)
            if (e.bench == b.bench && e.variant == b.variant) {
                c = &e;
                break;
            }
        if (!c)
            return {false, "entry " + b.bench + " / " + b.variant +
                               " disappeared from the candidate"};
        const double floor = b.mlups * (1.0 - relTol);
        if (c->mlups < floor)
            return {false, "entry " + b.bench + " / " + b.variant +
                               " regressed: " + fmtDouble(c->mlups) +
                               " MLUP/s vs baseline " + fmtDouble(b.mlups) +
                               " (floor " + fmtDouble(floor) + ")"};
    }
    return {true, "ok"};
}

std::string machineFingerprint() {
    std::string s;
#if defined(__x86_64__) || defined(_M_X64)
    s = "x86-64";
#if defined(__GNUC__) || defined(__clang__)
    if (__builtin_cpu_supports("fma")) s += " fma";
    if (__builtin_cpu_supports("avx2")) s += " avx2";
    if (__builtin_cpu_supports("avx512f")) s += " avx512f";
#endif
#else
    s = "unknown-arch";
#endif
    s += ", " + std::to_string(util::ThreadPool::hardwareThreads()) +
         " hw threads";
    return s;
}

} // namespace tpf::perf
