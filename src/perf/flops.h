#pragma once
/// \file flops.h
/// Documented floating-point operation accounting for the two compute
/// kernels, used by the roofline analysis (bench_roofline). The paper counts
/// 1384 FLOPs per cell update for its mu-kernel; these constants itemize the
/// equivalent counts for this implementation (full kernels, no shortcut
/// skipping, counting add/sub/mul/div/fma-as-two and the three Newton steps
/// of each fast inverse square root as 6 flops + seed).

namespace tpf::perf {

/// phi-sweep per-cell flop estimate.
///
/// Itemization (N = 4 phases, pairwise loops run over 12 ordered pairs):
///  - 6 staggered face fluxes: per face 4*(1 add + 1 mul) for pf
///    + 4*(1 sub + 1 mul) for dp + 12 pairs * 6 flops + 4 muls/scales ~ 94
///  - divergence: 4 * 6                                               =  24
///  - central gradients: 3 * 4 * 2                                    =  24
///  - da/dphi: 12 pairs * (3 dims * 5 + 1) + 4 scales                 = 196
///  - obstacle: pair sum 12 + per phase (3 adds + ~6)                 ~  48
///  - driving force: s2 (8), 4 grand potentials * ~14, hbar (8),
///    dpsi 4 * 4                                                      ~  88
///  - rhs/update/mean: 4 * 7 + 3                                      ~  31
///  - simplex projection: sort network 5 cmp + prefix/threshold ~ 20  ~  25
inline constexpr double kPhiFlopsPerCell =
    6 * 94.0 + 24 + 24 + 196 + 48 + 88 + 31 + 25; // ~ 1000

/// mu-sweep per-cell flop estimate (with anti-trapping on every face).
///
///  - 6 face fluxes, each:
///     gradient part: mobility sums 4 * 7 + gradients 4 + apply 8    ~  40
///     anti-trapping: face gradients 4 phases * (1 + 2*4) dims       ~  72
///       pf/dpdt 16, norms 2 * (5 + rsqrt 8), hl 10,
///       3 solids * (prod 1 + na2 5 + rsqrt 8 + ndot 7 + pref 5
///                   + dc 10 + emit 6)                               ~ 173
///  - divergence 12, sources 4 * 12, susceptibility 12, solve 14,
///    update 4                                                       ~  90
/// Total ~ 6 * 285 + 90.
inline constexpr double kMuFlopsPerCell = 6 * 285.0 + 90; // ~ 1800

/// Bytes that must move between memory and core per cell update under the
/// paper's caching assumption ("approximately half of the required data for
/// one update can be held in cache"): the mu-sweep streams mu (2), phi of two
/// time levels (8) as reads of which half hit cache, plus the mu write.
///  reads:  (2 mu + 4 phiSrc + 4 phiDst) * 8 B * (1/2 cached)  = 40 B
///  write:  2 mu * 8 B (+ RFO 16 B)                            = 32 B
inline constexpr double kMuBytesPerCell = 72.0;

/// Same accounting for the phi-sweep (phi 4 read + 4 write, mu 2 read).
inline constexpr double kPhiBytesPerCell = (4 + 2) * 8.0 / 2 + 4 * 8 * 2;

} // namespace tpf::perf
