#pragma once
/// \file transport.h
/// The pluggable message-passing substrate behind vmpi::Comm.
///
/// A Transport moves tagged byte messages between ranks and synchronizes
/// them; everything above it (the deterministic collectives, the typed
/// send/recv helpers, the ghost exchange) is transport-agnostic code in
/// vmpi::Comm. Three implementations exist:
///
///  - thread (transport_thread.cpp): ranks are threads of one process,
///    messages travel through in-process mailboxes. The default and the
///    fast path for tests — no process boundary, no syscalls.
///  - shm (transport_shm.cpp): ranks are forked child processes, messages
///    travel through shm_open'd ring buffers. Real process-separated ranks
///    with real asynchronous progress (the sender copies into shared memory
///    while the receiver computes) without requiring an MPI runtime.
///  - mpi (transport_mpi.cpp, only when built with TPF_WITH_MPI): ranks are
///    MPI processes, messages travel through MPI_Isend/MPI_Irecv. Requires
///    an mpirun launch whose world size matches the requested rank count.
///
/// Semantics every implementation must provide (docs/TRANSPORT.md):
///  - send() is buffered: it may block for *buffer space* but never for a
///    matching receive (MPI_Bsend-like; no rendezvous deadlock).
///  - recv()/postRecv() match by (source rank, tag); delivery is FIFO per
///    (source, tag) pair.
///  - postRecv() is genuinely asynchronous: the message payload may arrive
///    and be buffered while the caller computes; waitRecv() only completes
///    the handoff. This is what makes the solver's communication hiding
///    (paper Algorithm 2) a real latency hider instead of a reordered copy.
///  - barrier() synchronizes all ranks.
///
/// Determinism contract: a transport moves bytes, it never reorders a
/// (source, tag) stream and never touches payloads, so simulation results
/// are bitwise identical across all transports — enforced by the
/// restart-equivalence / analysis-rank-invariance / kernel-equivalence
/// ctests run under TPF_TRANSPORT=shm.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tpf::vmpi {

enum class TransportKind { Thread, Shm, Mpi };

/// Canonical lowercase name ("thread", "shm", "mpi").
const char* transportName(TransportKind k);

/// Parse a canonical name; returns false (out untouched) on anything else.
bool parseTransportName(const std::string& name, TransportKind& out);

/// Whether the backend is compiled into this binary (mpi is only present
/// under TPF_WITH_MPI; thread and shm always are).
bool transportCompiledIn(TransportKind k);

/// Transports runParallel() can spawn from a plain single-process launch:
/// thread and shm. The mpi backend cannot be spawned — the processes already
/// exist (mpirun starts them), runParallel only adopts them — so it is
/// excluded here; test suites iterate this list.
std::vector<TransportKind> spawnableTransports();

/// The transport runParallel(nranks, f) uses: $TPF_TRANSPORT when set (must
/// name a compiled-in backend, hard error otherwise), thread by default.
TransportKind defaultTransport();

/// Abstract message substrate for one rank. Constructed per rank by the
/// runParallel family; user code never instantiates one directly. Must only
/// be used from the thread that runs its rank.
class Transport {
public:
    virtual ~Transport() = default;
    Transport(const Transport&) = delete;
    Transport& operator=(const Transport&) = delete;

    int rank() const { return rank_; }
    int size() const { return size_; }
    virtual const char* name() const = 0;

    /// Buffered send (see file header for the no-rendezvous contract).
    virtual void send(int dst, int tag, const void* data,
                      std::size_t bytes) = 0;

    /// Blocking receive of the next message matching (src, tag).
    virtual void recv(int src, int tag, std::vector<std::byte>& out) = 0;

    /// Post an asynchronous receive; returns an opaque handle. \p bytesHint
    /// is the exact expected payload size when the caller knows it (the
    /// ghost exchange always does) or 0 — implementations that need a
    /// landing buffer up front (MPI_Irecv) use it to pre-allocate.
    virtual std::uint64_t postRecv(int src, int tag,
                                   std::size_t bytesHint) = 0;

    /// Complete a posted receive (blocking); the payload lands in \p out.
    /// Each handle must be waited exactly once — or explicitly cancelled.
    virtual void waitRecv(std::uint64_t handle,
                          std::vector<std::byte>& out) = 0;

    /// Abandon a posted receive without consuming the message. Only for
    /// teardown during exception unwinding (vmpi::Request::cancel()): the
    /// matched message, if it arrives, stays unconsumed in the transport.
    virtual void cancelRecv(std::uint64_t handle) = 0;

    /// Synchronize all ranks.
    virtual void barrier() = 0;

    /// Per-rank sequence counter for the collective protocol: Comm mixes it
    /// into the internal tag of every collective call so two back-to-back
    /// collectives never share a (source, tag) stream. Collectives execute
    /// in the same order on every rank, so the counters agree globally.
    /// Wraps well before tag arithmetic can overflow.
    int nextCollectiveSeq() {
        const int s = collectiveSeq_;
        collectiveSeq_ = (collectiveSeq_ + 1) % kCollectiveSeqWindow;
        return s;
    }
    static constexpr int kCollectiveSeqWindow = 1 << 12;

protected:
    Transport(int rank, int size) : rank_(rank), size_(size) {}

    int rank_;
    int size_;
    int collectiveSeq_ = 0;
};

/// Hook letting forked ranks (shm transport) report googletest assertion
/// failures back to the parent: returns the number of failed assertion
/// parts recorded in the currently running test (0 outside a test). The
/// shm runner snapshots it before the rank body and re-checks after — a
/// child whose count grew exits with a failure status, which the parent
/// turns into an exception, so an EXPECT_* in a forked rank still fails
/// the test. Registered by tests/transport_probe.cpp; a null probe (plain
/// binaries) disables the check.
using ChildFailureProbe = int (*)();
void setChildFailureProbe(ChildFailureProbe probe);
ChildFailureProbe childFailureProbe();

} // namespace tpf::vmpi
