#pragma once
/// \file comm.h
/// Virtual MPI: an MPI-style message-passing layer whose ranks are threads of
/// one process.
///
/// The paper runs waLBerla with one MPI process per core on SuperMUC / Hornet
/// / JUQUEEN. This repo keeps the exact programming model — ranks, tagged
/// point-to-point messages, nonblocking receive + wait (for communication
/// hiding), barriers and deterministic collectives — but transports messages
/// through in-process mailboxes so the scaling experiments run on a
/// workstation. See DESIGN.md §2 for the substitution argument.
///
/// Semantics:
///  - send() is buffered: it copies the payload into the destination mailbox
///    and returns (like MPI_Bsend). There is no rendezvous deadlock.
///  - recv()/irecv() match by (source rank, tag), FIFO within a match.
///  - collectives are deterministic: reductions combine in rank order so
///    multi-rank runs are bitwise reproducible.

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "util/assert.h"

namespace tpf::vmpi {

/// A message in flight: payload plus matching metadata.
struct Message {
    int src = -1;
    int tag = -1;
    std::vector<std::byte> data;
};

class World; // defined in comm.cpp

/// Handle for a pending nonblocking receive; completed by Comm::wait().
class Request {
public:
    Request() = default;

    bool valid() const { return out_ != nullptr; }

private:
    friend class Comm;
    int src_ = -1;
    int tag_ = -1;
    std::vector<std::byte>* out_ = nullptr;
};

/// Per-rank communicator handle. Cheap to copy within the owning rank; must
/// only be used from the thread that runs that rank.
class Comm {
public:
    int rank() const { return rank_; }
    int size() const { return size_; }
    bool isRoot() const { return rank_ == 0; }

    /// Buffered send of \p bytes to \p dst with matching \p tag.
    void send(int dst, int tag, const void* data, std::size_t bytes);

    template <typename T>
    void sendValue(int dst, int tag, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, &v, sizeof(T));
    }
    template <typename T>
    void sendVector(int dst, int tag, const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, v.data(), v.size() * sizeof(T));
    }

    /// Blocking receive of the next message matching (src, tag).
    void recv(int src, int tag, std::vector<std::byte>& out);

    template <typename T>
    T recvValue(int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> buf;
        recv(src, tag, buf);
        TPF_ASSERT(buf.size() == sizeof(T), "message size mismatch");
        T v;
        std::memcpy(&v, buf.data(), sizeof(T));
        return v;
    }
    template <typename T>
    std::vector<T> recvVector(int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> buf;
        recv(src, tag, buf);
        TPF_ASSERT(buf.size() % sizeof(T) == 0, "message size mismatch");
        std::vector<T> v(buf.size() / sizeof(T));
        std::memcpy(v.data(), buf.data(), buf.size());
        return v;
    }

    /// Post a nonblocking receive; the payload lands in *out when wait()s.
    Request irecv(int src, int tag, std::vector<std::byte>* out);

    /// Complete a pending request (blocking).
    void wait(Request& req);

    /// Synchronize all ranks.
    void barrier();

    /// Deterministic all-reduce (combines in rank order on root, broadcasts).
    double allreduce(double value, const std::function<double(double, double)>& op);
    double allreduceSum(double v);
    double allreduceMin(double v);
    double allreduceMax(double v);
    long long allreduceSumLL(long long v);

    /// Gather one double per rank to root (rank 0); non-roots get empty vector.
    std::vector<double> gather(double v);

    /// Gather a variable-length byte blob from every rank to root, returned
    /// indexed by rank; non-roots get an empty outer vector. Collective.
    /// Used by the in-situ analysis pipeline to assemble global x-y planes
    /// from per-rank tile sweeps (src/analysis/gather.h).
    std::vector<std::vector<std::byte>>
    gatherAllBytes(const std::vector<std::byte>& mine);

    /// Broadcast a trivially copyable value from root.
    template <typename T>
    T bcast(T v) {
        static_assert(std::is_trivially_copyable_v<T>);
        bcastBytes(&v, sizeof(T));
        return v;
    }

private:
    friend void runParallel(int, const std::function<void(Comm&)>&);
    Comm(World* w, int rank, int size) : world_(w), rank_(rank), size_(size) {}

    void bcastBytes(void* data, std::size_t bytes);

    World* world_ = nullptr;
    int rank_ = 0;
    int size_ = 1;
};

/// Run \p f on \p nranks virtual ranks (threads). Rank 0 runs on the calling
/// thread when nranks == 1. Exceptions thrown by any rank are rethrown on the
/// calling thread after all ranks joined.
void runParallel(int nranks, const std::function<void(Comm&)>& f);

/// Reserved internal tag base for collectives; user tags must be >= 0.
inline constexpr int kInternalTagBase = -1000;

} // namespace tpf::vmpi
