#pragma once
/// \file comm.h
/// Virtual MPI: an MPI-style message-passing layer with pluggable
/// transports.
///
/// The paper runs waLBerla with one MPI process per core on SuperMUC /
/// Hornet / JUQUEEN. This repo keeps the exact programming model — ranks,
/// tagged point-to-point messages, nonblocking receive + wait (for
/// communication hiding), barriers and deterministic collectives — and
/// moves the bytes through a Transport (vmpi/transport.h): threads of one
/// process (default), forked processes over shared memory, or real MPI
/// when built with TPF_WITH_MPI. See DESIGN.md §2 and docs/TRANSPORT.md.
///
/// Semantics:
///  - send() is buffered: the payload is copied out before send() returns
///    (like MPI_Bsend). There is no rendezvous deadlock.
///  - recv()/irecv() match by (source rank, tag), FIFO within a match.
///  - collectives are deterministic: reductions combine in rank order so
///    multi-rank runs are bitwise reproducible — on every transport.
///  - every collective call consumes a per-rank sequence number that is
///    mixed into its internal message tags, so back-to-back collectives
///    never share a (source, tag) stream: correctness does not depend on
///    cross-message delivery order, only on the per-(source, tag) FIFO
///    every transport guarantees.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "util/assert.h"
#include "vmpi/transport.h"

namespace tpf::vmpi {

class Comm;

namespace detail {
/// Comm factory for the per-backend rank launchers (transport_spawn.h).
Comm makeComm(Transport* t);
} // namespace detail

/// Reserved internal tag base for collectives; user tags must be >= 0.
inline constexpr int kInternalTagBase = -1000;

/// Handle for a pending nonblocking receive; completed by Comm::wait().
///
/// Move-only, and destroying an incomplete request is a hard error: a
/// dropped request silently leaks the matched message inside the
/// transport (the sender's payload is never consumed), which on a real
/// transport strands buffer space and on every transport desynchronizes
/// the (source, tag) stream for the next receive. Always wait(); the only
/// sanctioned alternative is cancel() during teardown on an error path
/// (GhostExchange's destructor uses it while an exception unwinds through
/// an in-flight exchange).
class Request {
public:
    Request() = default;
    ~Request() {
        TPF_ASSERT(!valid(),
                   "vmpi::Request destroyed without wait(): the pending "
                   "message would leak inside the transport");
    }

    /// Abandon the posted receive without consuming the message. Teardown
    /// escape hatch for error paths only: the matched payload stays inside
    /// the transport, so the communicator must not be used for further
    /// receives on this (source, tag) stream afterwards.
    void cancel() {
        if (!valid()) return;
        transport_->cancelRecv(handle_);
        out_ = nullptr;
        transport_ = nullptr;
    }

    Request(Request&& other) noexcept
        : transport_(other.transport_), handle_(other.handle_),
          out_(other.out_) {
        other.out_ = nullptr;
        other.transport_ = nullptr;
    }
    Request& operator=(Request&& other) noexcept {
        TPF_ASSERT(!valid(),
                   "vmpi::Request overwritten without wait(): the pending "
                   "message would leak inside the transport");
        transport_ = other.transport_;
        handle_ = other.handle_;
        out_ = other.out_;
        other.out_ = nullptr;
        other.transport_ = nullptr;
        return *this;
    }

    Request(const Request&) = delete;
    Request& operator=(const Request&) = delete;

    bool valid() const { return out_ != nullptr; }

private:
    friend class Comm;
    Transport* transport_ = nullptr;
    std::uint64_t handle_ = 0;
    std::vector<std::byte>* out_ = nullptr;
};

/// Per-rank communicator handle. Cheap to copy within the owning rank; must
/// only be used from the thread that runs that rank.
class Comm {
public:
    int rank() const { return transport_->rank(); }
    int size() const { return transport_->size(); }
    bool isRoot() const { return rank() == 0; }

    /// The transport moving this communicator's bytes ("thread", "shm",
    /// "mpi").
    const char* transportName() const { return transport_->name(); }

    /// Buffered send of \p bytes to \p dst with matching \p tag.
    void send(int dst, int tag, const void* data, std::size_t bytes);

    template <typename T>
    void sendValue(int dst, int tag, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, &v, sizeof(T));
    }
    template <typename T>
    void sendVector(int dst, int tag, const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        send(dst, tag, v.data(), v.size() * sizeof(T));
    }

    /// Blocking receive of the next message matching (src, tag).
    void recv(int src, int tag, std::vector<std::byte>& out);

    template <typename T>
    T recvValue(int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> buf;
        recv(src, tag, buf);
        TPF_ASSERT(buf.size() == sizeof(T), "message size mismatch");
        T v;
        std::memcpy(&v, buf.data(), sizeof(T));
        return v;
    }
    template <typename T>
    std::vector<T> recvVector(int src, int tag) {
        static_assert(std::is_trivially_copyable_v<T>);
        std::vector<std::byte> buf;
        recv(src, tag, buf);
        TPF_ASSERT(buf.size() % sizeof(T) == 0, "message size mismatch");
        std::vector<T> v(buf.size() / sizeof(T));
        std::memcpy(v.data(), buf.data(), buf.size());
        return v;
    }

    /// Post a nonblocking receive; the payload lands in *out when wait()s.
    /// \p bytesHint is the exact expected payload size when known (the
    /// ghost exchange always knows its slab sizes) — backends that need a
    /// pre-sized landing buffer for true async progress (MPI_Irecv) use
    /// it; 0 falls back to a deferred blocking receive at wait().
    Request irecv(int src, int tag, std::vector<std::byte>* out,
                  std::size_t bytesHint = 0);

    /// Complete a pending request (blocking).
    void wait(Request& req);

    /// Synchronize all ranks.
    void barrier();

    /// Deterministic all-reduce (combines in rank order on root, broadcasts).
    double allreduce(double value, const std::function<double(double, double)>& op);
    double allreduceSum(double v);
    double allreduceMin(double v);
    double allreduceMax(double v);
    long long allreduceSumLL(long long v);

    /// Collective boolean agreement: true iff every rank passed true. The
    /// checkpoint save/load paths use it to decide atomically whether all
    /// ranks succeeded before anyone commits or throws (io/checkpoint.cpp).
    bool allAgree(bool localOk);

    /// Gather one double per rank to root (rank 0); non-roots get empty vector.
    std::vector<double> gather(double v);

    /// Gather a variable-length byte blob from every rank to root, returned
    /// indexed by rank; non-roots get an empty outer vector. Collective.
    /// Used by the in-situ analysis pipeline to assemble global x-y planes
    /// from per-rank tile sweeps (src/analysis/gather.h).
    std::vector<std::vector<std::byte>>
    gatherAllBytes(const std::vector<std::byte>& mine);

    /// Broadcast a trivially copyable value from root.
    template <typename T>
    T bcast(T v) {
        static_assert(std::is_trivially_copyable_v<T>);
        bcastBytes(&v, sizeof(T));
        return v;
    }

private:
    friend Comm detail::makeComm(Transport*);
    explicit Comm(Transport* t) : transport_(t) {}

    void bcastBytes(void* data, std::size_t bytes);

    /// Internal tag of collective number \p seq, phase \p phase (0 = toward
    /// root, 1 = away from root). Distinct per call so reordered delivery
    /// across calls can never cross-match (see file header).
    static int collectiveTag(int seq, int phase) {
        return kInternalTagBase - 1 - (seq * 2 + phase);
    }

    Transport* transport_ = nullptr;
};

/// Run \p f on \p nranks virtual ranks over the default transport
/// ($TPF_TRANSPORT or thread). Rank 0 runs on the calling thread when the
/// transport is thread-backed and nranks == 1, and in the calling process
/// for the shm transport. Exceptions thrown by any rank are rethrown on
/// the calling thread after all ranks finished (for process-backed
/// transports, a non-root rank's exception arrives as a std::runtime_error
/// carrying the original what()).
void runParallel(int nranks, const std::function<void(Comm&)>& f);

/// Same, over an explicitly chosen transport (the tpf-sim --transport flag).
void runParallel(TransportKind kind, int nranks,
                 const std::function<void(Comm&)>& f);

/// Thread transport with adversarial randomized delivery: messages are
/// inserted at random (seeded) mailbox positions, so nothing about
/// cross-message arrival order can be assumed. Test harness for the
/// collective sequencing protocol; \p seed must be nonzero.
void runParallelThreadShuffled(std::uint64_t seed, int nranks,
                               const std::function<void(Comm&)>& f);

} // namespace tpf::vmpi
