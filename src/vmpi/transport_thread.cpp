/// \file transport_thread.cpp
/// The in-process thread backend: ranks are threads of one process,
/// messages travel through per-rank mailboxes. This is the original vmpi
/// substrate (DESIGN.md §2) factored behind the Transport interface, plus
/// an adversarial "shuffled delivery" mode for the collective-sequencing
/// regression tests: when enabled, push() inserts each message at a random
/// position in the destination mailbox, so two messages that share a
/// (source, tag) pair can be observed in either order — exactly the
/// interleaving a real network transport is allowed to produce between
/// *distinct* (source, tag) streams, applied worst-case everywhere.

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/assert.h"
#include "util/random.h"
#include "vmpi/comm.h"
#include "vmpi/transport.h"
#include "vmpi/transport_spawn.h"

// tpf-lint: allow(nondeterminism) -- deadlock-detection timeout for blocking
// receives; only decides when to abort a hung run, never a simulation value.
#include <chrono>

namespace tpf::vmpi {

namespace {

/// How long a blocking receive may stall before we declare a deadlock.
/// Generous enough for heavily oversubscribed CI machines; small enough that
/// a genuinely deadlocked test fails with a diagnostic instead of hanging.
// tpf-lint: allow(nondeterminism) -- deadlock-detection timeout for blocking
// receives; only decides when to abort a hung run, never a simulation value.
constexpr auto kRecvTimeout = std::chrono::seconds(120);

/// A message in flight: payload plus matching metadata.
struct Message {
    int src = -1;
    int tag = -1;
    std::vector<std::byte> data;
};

/// Thrown into ranks blocked in a receive or barrier when another rank of
/// the same world failed: they unwind instead of stalling into the 120 s
/// deadlock timeout. Internal — runParallelThread swallows it and rethrows
/// the originating rank's exception instead.
struct PeerAbort {};

/// Mailbox: the per-rank receive queue.
class Mailbox {
public:
    /// \p shuffleSeed != 0 turns on randomized insertion (seeded per rank so
    /// runs are reproducible).
    Mailbox(std::uint64_t shuffleSeed, const std::atomic<bool>* aborted)
        : shuffled_(shuffleSeed != 0), rng_(shuffleSeed), aborted_(aborted) {}

    void push(Message msg) {
        {
            std::lock_guard<std::mutex> lock(mtx_);
            if (shuffled_) {
                const auto pos = static_cast<std::ptrdiff_t>(
                    rng_.uniformInt(queue_.size() + 1));
                queue_.insert(queue_.begin() + pos, std::move(msg));
            } else {
                queue_.push_back(std::move(msg));
            }
        }
        cv_.notify_all();
    }

    /// Pop the first message matching (src, tag); blocks until one arrives.
    /// Throws PeerAbort when the world aborted while waiting.
    Message pop(int src, int tag) {
        std::unique_lock<std::mutex> lock(mtx_);
        for (;;) {
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (it->src == src && it->tag == tag) {
                    Message m = std::move(*it);
                    queue_.erase(it);
                    return m;
                }
            }
            if (aborted_->load()) throw PeerAbort{};
            if (cv_.wait_for(lock, kRecvTimeout) == std::cv_status::timeout)
                TPF_ASSERT(false, "vmpi receive timed out (likely deadlock)");
        }
    }

    /// Wake a rank blocked in pop() so it can observe the abort flag.
    void notifyAbort() {
        std::lock_guard<std::mutex> lock(mtx_);
        cv_.notify_all();
    }

private:
    std::mutex mtx_;
    std::condition_variable cv_;
    std::deque<Message> queue_;
    bool shuffled_;
    tpf::Random rng_;
    const std::atomic<bool>* aborted_;
};

/// Shared state of one thread-backed world.
class ThreadWorld {
public:
    ThreadWorld(int n, std::uint64_t shuffleSeed)
        : size_(n), mailboxes_(static_cast<std::size_t>(n)) {
        for (std::size_t r = 0; r < mailboxes_.size(); ++r) {
            // Distinct stream per mailbox; splitmix keeps seed 0 reserved
            // for "not shuffled".
            std::uint64_t s = shuffleSeed;
            const std::uint64_t rankSeed =
                shuffleSeed == 0 ? 0 : splitmix64(s) + r + 1;
            mailboxes_[r] = std::make_unique<Mailbox>(rankSeed, &aborted_);
        }
    }

    int size() const { return size_; }
    Mailbox& mailbox(int rank) {
        return *mailboxes_[static_cast<std::size_t>(rank)];
    }

    /// Central sense-reversing barrier. Throws PeerAbort when the world
    /// aborted — the missing rank would never arrive.
    void barrier() {
        std::unique_lock<std::mutex> lock(barrierMtx_);
        if (aborted_.load()) throw PeerAbort{};
        const std::size_t gen = barrierGen_;
        if (++barrierCount_ == size_) {
            barrierCount_ = 0;
            ++barrierGen_;
            barrierCv_.notify_all();
        } else {
            barrierCv_.wait(
                lock, [&] { return barrierGen_ != gen || aborted_.load(); });
            if (barrierGen_ == gen) throw PeerAbort{};
        }
    }

    /// A rank failed: wake everyone blocked in a receive or the barrier so
    /// they unwind via PeerAbort instead of the deadlock timeout.
    void abort() {
        aborted_.store(true);
        for (auto& mb : mailboxes_) mb->notifyAbort();
        {
            std::lock_guard<std::mutex> lock(barrierMtx_);
            barrierCv_.notify_all();
        }
    }

private:
    int size_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;
    std::atomic<bool> aborted_{false};

    std::mutex barrierMtx_;
    std::condition_variable barrierCv_;
    int barrierCount_ = 0;
    std::size_t barrierGen_ = 0;
};

class ThreadTransport final : public Transport {
public:
    ThreadTransport(ThreadWorld* w, int rank)
        : Transport(rank, w->size()), world_(w) {}

    const char* name() const override { return "thread"; }

    void send(int dst, int tag, const void* data,
              std::size_t bytes) override {
        TPF_ASSERT(dst >= 0 && dst < size_, "invalid destination rank");
        Message m;
        m.src = rank_;
        m.tag = tag;
        m.data.resize(bytes);
        if (bytes > 0) std::memcpy(m.data.data(), data, bytes);
        world_->mailbox(dst).push(std::move(m));
    }

    void recv(int src, int tag, std::vector<std::byte>& out) override {
        TPF_ASSERT(src >= 0 && src < size_, "invalid source rank");
        out = world_->mailbox(rank_).pop(src, tag).data;
    }

    // Sends are buffered straight into the destination mailbox, so a posted
    // receive needs no landing buffer: just remember the match and complete
    // it in waitRecv. bytesHint is only needed by backends that must
    // pre-allocate (MPI_Irecv).
    std::uint64_t postRecv(int src, int tag,
                           std::size_t /*bytesHint*/) override {
        TPF_ASSERT(src >= 0 && src < size_, "invalid source rank");
        const std::uint64_t h = nextHandle_++;
        posted_.emplace(h, std::make_pair(src, tag));
        return h;
    }

    void waitRecv(std::uint64_t handle, std::vector<std::byte>& out) override {
        const auto it = posted_.find(handle);
        TPF_ASSERT(it != posted_.end(), "waiting on an unknown recv handle");
        const auto [src, tag] = it->second;
        posted_.erase(it);
        out = world_->mailbox(rank_).pop(src, tag).data;
    }

    // Nothing was reserved at post time, so cancelling just forgets the
    // match; the message (if sent) stays in the mailbox, unconsumed.
    void cancelRecv(std::uint64_t handle) override {
        const auto it = posted_.find(handle);
        TPF_ASSERT(it != posted_.end(), "cancelling an unknown recv handle");
        posted_.erase(it);
    }

    void barrier() override { world_->barrier(); }

private:
    ThreadWorld* world_;
    std::uint64_t nextHandle_ = 1;
    std::unordered_map<std::uint64_t, std::pair<int, int>> posted_;
};

} // namespace

namespace detail {

void runParallelThread(int nranks, const RankFn& f,
                       std::uint64_t shuffleSeed) {
    TPF_ASSERT(nranks >= 1, "need at least one rank");
    ThreadWorld world(nranks, shuffleSeed);

    if (nranks == 1) {
        ThreadTransport t(&world, 0);
        Comm c = makeComm(&t);
        f(c);
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    std::mutex errMtx;
    std::exception_ptr firstError;

    for (int r = 0; r < nranks; ++r) {
        threads.emplace_back([&, r] {
            try {
                ThreadTransport t(&world, r);
                Comm c = makeComm(&t);
                f(c);
            } catch (const PeerAbort&) {
                // Unwound because another rank failed; that rank's own
                // exception is the one worth reporting.
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(errMtx);
                    if (!firstError) firstError = std::current_exception();
                }
                world.abort();
            }
        });
    }
    for (auto& t : threads) t.join();
    if (firstError) std::rethrow_exception(firstError);
}

} // namespace detail

} // namespace tpf::vmpi
