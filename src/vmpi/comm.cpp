#include "vmpi/comm.h"

#include "vmpi/transport_spawn.h"

namespace tpf::vmpi {

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
    transport_->send(dst, tag, data, bytes);
}

void Comm::recv(int src, int tag, std::vector<std::byte>& out) {
    transport_->recv(src, tag, out);
}

Request Comm::irecv(int src, int tag, std::vector<std::byte>* out,
                    std::size_t bytesHint) {
    TPF_ASSERT(out != nullptr, "irecv needs an output buffer");
    Request r;
    r.transport_ = transport_;
    r.handle_ = transport_->postRecv(src, tag, bytesHint);
    r.out_ = out;
    return r;
}

void Comm::wait(Request& req) {
    TPF_ASSERT(req.valid(), "waiting on an invalid request");
    TPF_ASSERT(req.transport_ == transport_,
               "request waited on a different communicator");
    transport_->waitRecv(req.handle_, *req.out_);
    req.out_ = nullptr;
    req.transport_ = nullptr;
}

void Comm::barrier() { transport_->barrier(); }

// Every collective consumes one sequence number and derives its internal
// tags from it, so two back-to-back collectives use disjoint (source, tag)
// streams: a transport is free to deliver their messages in any relative
// order. The counters agree across ranks because collectives are executed
// in the same order by every rank (that is what makes them collectives).

double Comm::allreduce(double value,
                       const std::function<double(double, double)>& op) {
    const int seq = transport_->nextCollectiveSeq();
    const int tagUp = collectiveTag(seq, 0);
    const int tagDown = collectiveTag(seq, 1);
    const int n = size();
    double result = value;
    if (rank() == 0) {
        // Combine in rank order for bitwise determinism.
        for (int r = 1; r < n; ++r)
            result = op(result, recvValue<double>(r, tagUp));
        for (int r = 1; r < n; ++r) sendValue(r, tagDown, result);
    } else {
        sendValue(0, tagUp, value);
        result = recvValue<double>(0, tagDown);
    }
    return result;
}

double Comm::allreduceSum(double v) {
    return allreduce(v, [](double a, double b) { return a + b; });
}
double Comm::allreduceMin(double v) {
    return allreduce(v, [](double a, double b) { return a < b ? a : b; });
}
double Comm::allreduceMax(double v) {
    return allreduce(v, [](double a, double b) { return a > b ? a : b; });
}

long long Comm::allreduceSumLL(long long v) {
    const int seq = transport_->nextCollectiveSeq();
    const int tagUp = collectiveTag(seq, 0);
    const int tagDown = collectiveTag(seq, 1);
    const int n = size();
    long long result = v;
    if (rank() == 0) {
        for (int r = 1; r < n; ++r) result += recvValue<long long>(r, tagUp);
        for (int r = 1; r < n; ++r) sendValue(r, tagDown, result);
    } else {
        sendValue(0, tagUp, v);
        result = recvValue<long long>(0, tagDown);
    }
    return result;
}

bool Comm::allAgree(bool localOk) {
    return allreduceMin(localOk ? 1.0 : 0.0) > 0.5;
}

std::vector<double> Comm::gather(double v) {
    const int seq = transport_->nextCollectiveSeq();
    const int tagGather = collectiveTag(seq, 0);
    const int n = size();
    if (rank() == 0) {
        std::vector<double> all(static_cast<std::size_t>(n));
        all[0] = v;
        for (int r = 1; r < n; ++r)
            all[static_cast<std::size_t>(r)] = recvValue<double>(r, tagGather);
        return all;
    }
    sendValue(0, tagGather, v);
    return {};
}

std::vector<std::vector<std::byte>>
Comm::gatherAllBytes(const std::vector<std::byte>& mine) {
    const int seq = transport_->nextCollectiveSeq();
    const int tagGatherBytes = collectiveTag(seq, 0);
    const int n = size();
    if (rank() == 0) {
        std::vector<std::vector<std::byte>> all(
            static_cast<std::size_t>(n));
        all[0] = mine;
        for (int r = 1; r < n; ++r)
            recv(r, tagGatherBytes, all[static_cast<std::size_t>(r)]);
        return all;
    }
    send(0, tagGatherBytes, mine.data(), mine.size());
    return {};
}

void Comm::bcastBytes(void* data, std::size_t bytes) {
    const int seq = transport_->nextCollectiveSeq();
    const int tagBcast = collectiveTag(seq, 1);
    const int n = size();
    if (rank() == 0) {
        for (int r = 1; r < n; ++r) send(r, tagBcast, data, bytes);
    } else {
        std::vector<std::byte> buf;
        recv(0, tagBcast, buf);
        TPF_ASSERT(buf.size() == bytes, "bcast size mismatch");
        std::memcpy(data, buf.data(), bytes);
    }
}

namespace detail {
Comm makeComm(Transport* t) { return Comm(t); }
} // namespace detail

void runParallel(int nranks, const std::function<void(Comm&)>& f) {
    runParallel(defaultTransport(), nranks, f);
}

void runParallel(TransportKind kind, int nranks,
                 const std::function<void(Comm&)>& f) {
    TPF_ASSERT(transportCompiledIn(kind),
               "requested transport is not compiled into this binary");
    switch (kind) {
    case TransportKind::Thread:
        detail::runParallelThread(nranks, f, /*shuffleSeed=*/0);
        return;
    case TransportKind::Shm:
        detail::runParallelShm(nranks, f);
        return;
    case TransportKind::Mpi:
        detail::runParallelMpi(nranks, f);
        return;
    }
    TPF_ASSERT(false, "unknown transport kind");
}

void runParallelThreadShuffled(std::uint64_t seed, int nranks,
                               const std::function<void(Comm&)>& f) {
    TPF_ASSERT(seed != 0, "shuffled delivery needs a nonzero seed");
    detail::runParallelThread(nranks, f, seed);
}

} // namespace tpf::vmpi
