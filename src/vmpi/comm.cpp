#include "vmpi/comm.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace tpf::vmpi {

namespace {
/// How long a blocking receive may stall before we declare a deadlock.
/// Generous enough for heavily oversubscribed CI machines; small enough that a
/// genuinely deadlocked test fails with a diagnostic instead of hanging.
// tpf-lint: allow(nondeterminism) -- deadlock-detection timeout for blocking
// receives; only decides when to abort a hung run, never a simulation value.
constexpr auto kRecvTimeout = std::chrono::seconds(120);
} // namespace

/// Mailbox: the per-rank receive queue.
class Mailbox {
public:
    void push(Message msg) {
        {
            std::lock_guard<std::mutex> lock(mtx_);
            queue_.push_back(std::move(msg));
        }
        cv_.notify_all();
    }

    /// Pop the first message matching (src, tag); blocks until one arrives.
    Message pop(int src, int tag) {
        std::unique_lock<std::mutex> lock(mtx_);
        for (;;) {
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (it->src == src && it->tag == tag) {
                    Message m = std::move(*it);
                    queue_.erase(it);
                    return m;
                }
            }
            if (cv_.wait_for(lock, kRecvTimeout) == std::cv_status::timeout)
                TPF_ASSERT(false, "vmpi receive timed out (likely deadlock)");
        }
    }

private:
    std::mutex mtx_;
    std::condition_variable cv_;
    std::deque<Message> queue_;
};

/// Shared state of one virtual MPI world.
class World {
public:
    explicit World(int n) : size_(n), mailboxes_(static_cast<std::size_t>(n)) {
        for (auto& mb : mailboxes_) mb = std::make_unique<Mailbox>();
    }

    int size() const { return size_; }
    Mailbox& mailbox(int rank) { return *mailboxes_[static_cast<std::size_t>(rank)]; }

    /// Central sense-reversing barrier.
    void barrier() {
        std::unique_lock<std::mutex> lock(barrierMtx_);
        const std::size_t gen = barrierGen_;
        if (++barrierCount_ == size_) {
            barrierCount_ = 0;
            ++barrierGen_;
            barrierCv_.notify_all();
        } else {
            barrierCv_.wait(lock, [&] { return barrierGen_ != gen; });
        }
    }

private:
    int size_;
    std::vector<std::unique_ptr<Mailbox>> mailboxes_;

    std::mutex barrierMtx_;
    std::condition_variable barrierCv_;
    int barrierCount_ = 0;
    std::size_t barrierGen_ = 0;
};

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
    TPF_ASSERT(dst >= 0 && dst < size_, "invalid destination rank");
    Message m;
    m.src = rank_;
    m.tag = tag;
    m.data.resize(bytes);
    if (bytes > 0) std::memcpy(m.data.data(), data, bytes);
    world_->mailbox(dst).push(std::move(m));
}

void Comm::recv(int src, int tag, std::vector<std::byte>& out) {
    TPF_ASSERT(src >= 0 && src < size_, "invalid source rank");
    out = world_->mailbox(rank_).pop(src, tag).data;
}

Request Comm::irecv(int src, int tag, std::vector<std::byte>* out) {
    TPF_ASSERT(out != nullptr, "irecv needs an output buffer");
    Request r;
    r.src_ = src;
    r.tag_ = tag;
    r.out_ = out;
    return r;
}

void Comm::wait(Request& req) {
    TPF_ASSERT(req.valid(), "waiting on an invalid request");
    recv(req.src_, req.tag_, *req.out_);
    req.out_ = nullptr;
}

void Comm::barrier() { world_->barrier(); }

double Comm::allreduce(double value,
                       const std::function<double(double, double)>& op) {
    constexpr int tagUp = kInternalTagBase - 1;
    constexpr int tagDown = kInternalTagBase - 2;
    double result = value;
    if (rank_ == 0) {
        // Combine in rank order for bitwise determinism.
        for (int r = 1; r < size_; ++r)
            result = op(result, recvValue<double>(r, tagUp));
        for (int r = 1; r < size_; ++r) sendValue(r, tagDown, result);
    } else {
        sendValue(0, tagUp, value);
        result = recvValue<double>(0, tagDown);
    }
    return result;
}

double Comm::allreduceSum(double v) {
    return allreduce(v, [](double a, double b) { return a + b; });
}
double Comm::allreduceMin(double v) {
    return allreduce(v, [](double a, double b) { return a < b ? a : b; });
}
double Comm::allreduceMax(double v) {
    return allreduce(v, [](double a, double b) { return a > b ? a : b; });
}

long long Comm::allreduceSumLL(long long v) {
    constexpr int tagUp = kInternalTagBase - 3;
    constexpr int tagDown = kInternalTagBase - 4;
    long long result = v;
    if (rank_ == 0) {
        for (int r = 1; r < size_; ++r) result += recvValue<long long>(r, tagUp);
        for (int r = 1; r < size_; ++r) sendValue(r, tagDown, result);
    } else {
        sendValue(0, tagUp, v);
        result = recvValue<long long>(0, tagDown);
    }
    return result;
}

std::vector<double> Comm::gather(double v) {
    constexpr int tagGather = kInternalTagBase - 5;
    if (rank_ == 0) {
        std::vector<double> all(static_cast<std::size_t>(size_));
        all[0] = v;
        for (int r = 1; r < size_; ++r)
            all[static_cast<std::size_t>(r)] = recvValue<double>(r, tagGather);
        return all;
    }
    sendValue(0, tagGather, v);
    return {};
}

std::vector<std::vector<std::byte>>
Comm::gatherAllBytes(const std::vector<std::byte>& mine) {
    constexpr int tagGatherBytes = kInternalTagBase - 7;
    if (rank_ == 0) {
        std::vector<std::vector<std::byte>> all(
            static_cast<std::size_t>(size_));
        all[0] = mine;
        for (int r = 1; r < size_; ++r)
            recv(r, tagGatherBytes, all[static_cast<std::size_t>(r)]);
        return all;
    }
    send(0, tagGatherBytes, mine.data(), mine.size());
    return {};
}

void Comm::bcastBytes(void* data, std::size_t bytes) {
    constexpr int tagBcast = kInternalTagBase - 6;
    if (rank_ == 0) {
        for (int r = 1; r < size_; ++r) send(r, tagBcast, data, bytes);
    } else {
        std::vector<std::byte> buf;
        recv(0, tagBcast, buf);
        TPF_ASSERT(buf.size() == bytes, "bcast size mismatch");
        std::memcpy(data, buf.data(), bytes);
    }
}

void runParallel(int nranks, const std::function<void(Comm&)>& f) {
    TPF_ASSERT(nranks >= 1, "need at least one rank");
    World world(nranks);

    if (nranks == 1) {
        Comm c(&world, 0, 1);
        f(c);
        return;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    std::mutex errMtx;
    std::exception_ptr firstError;

    for (int r = 0; r < nranks; ++r) {
        threads.emplace_back([&, r] {
            try {
                Comm c(&world, r, nranks);
                f(c);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMtx);
                if (!firstError) firstError = std::current_exception();
            }
        });
    }
    for (auto& t : threads) t.join();
    if (firstError) std::rethrow_exception(firstError);
}

} // namespace tpf::vmpi
