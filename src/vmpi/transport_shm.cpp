/// \file transport_shm.cpp
/// Fork + shared-memory backend: true process-separated ranks without an MPI
/// runtime. runParallelShm() maps one POSIX shared-memory segment
/// (shm_open, unlinked immediately after mmap so nothing leaks), forks
/// ranks 1..n-1 as child processes, and runs rank 0 in the parent — so a
/// checkpoint error thrown by rank 0 keeps its exact type for the caller,
/// and root-side googletest assertions work natively.
///
/// Wire format: each rank owns one multi-producer ring buffer in the
/// segment, guarded by a process-shared pthread mutex + condvars. A send
/// copies the payload into the destination ring (chunked when larger than
/// a quarter ring) and returns — buffered semantics, no rendezvous. The
/// receiver drains its ring into private memory and matches by (src, tag);
/// the ring itself is FIFO, and a single source's chunks are written under
/// one sequence of ring reservations, so per-(source, tag) order is
/// preserved end to end.
///
/// Failure handling: a per-rank status slot plus an abort flag live in the
/// segment. A child that throws writes what() to its slot, raises the
/// flag and _Exits; every blocking wait runs in 50 ms slices that check
/// the flag (and, in the parent, waitpid(WNOHANG) for silently dead
/// children) so one failed rank unwinds the whole world promptly instead
/// of timing out. A child whose googletest failure count grew (see
/// ChildFailureProbe) exits with a failure status so EXPECT_* in forked
/// ranks still fail the test.
///
/// Ring capacity defaults to 8 MiB per rank; override with
/// TPF_SHM_RING_MB for workloads with larger in-flight ghost volumes.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include <fcntl.h>
#include <pthread.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <ctime>

#include "util/assert.h"
#include "vmpi/comm.h"
#include "vmpi/transport.h"
#include "vmpi/transport_spawn.h"

namespace tpf::vmpi {

namespace {

// ---------------------------------------------------------------------------
// Shared-segment layout
// ---------------------------------------------------------------------------

constexpr std::uint32_t kMagic = 0x7d7f534du; // "Mshm" + version salt

/// Per-rank lifecycle slot, written by the rank itself (or by the parent
/// when it finds a child dead without a status).
struct ShmStatus {
    std::int32_t state; ///< 0 running, 1 ok, 2 failed, 3 aborted-after-peer
    char msg[244];
};

/// Ring metadata. head/tail are monotonically increasing byte counters;
/// the occupied region is [tail, head) modulo capacity.
struct ShmRing {
    pthread_mutex_t mtx;
    pthread_cond_t notEmpty;
    pthread_cond_t notFull;
    std::uint64_t head;
    std::uint64_t tail;
};

struct ShmBarrier {
    pthread_mutex_t mtx;
    pthread_cond_t cv;
    std::int32_t count;
    std::uint64_t gen;
};

struct ShmHeader {
    std::uint32_t magic;
    std::int32_t nranks;
    std::uint64_t ringCapacity;
    std::atomic<std::uint32_t> abortFlag;
    ShmBarrier barrier;
};

/// On-wire record header inside a ring. `more` chains the chunks of one
/// oversized message; a source never interleaves two of its own messages,
/// so chained chunks from one source are contiguous in that source's
/// stream (other sources' records may sit between them in the ring).
struct RecHdr {
    std::int32_t src;
    std::int32_t tag;
    std::uint64_t bytes; ///< payload bytes in THIS record
    std::uint32_t more;  ///< 1 = further chunks of the same message follow
    std::uint32_t pad;
};

constexpr std::size_t kAlign = 64;

std::size_t alignUp(std::size_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

/// Blocking waits run in slices this long, so abort/liveness checks stay
/// responsive; after kMaxWaitSlices of no progress we declare a deadlock
/// (same 120 s budget as the thread backend's receive timeout).
constexpr long kSliceNs = 50L * 1000 * 1000;
constexpr int kMaxWaitSlices = 2400;

std::uint64_t ringCapacityFromEnv() {
    std::uint64_t mb = 8;
    if (const char* env = std::getenv("TPF_SHM_RING_MB")) {
        const unsigned long v = std::strtoul(env, nullptr, 10);
        if (v >= 1) mb = v;
    }
    return mb * 1024 * 1024;
}

/// Thrown when a blocking wait observes the abort flag: a peer rank
/// failed and this rank unwinds. File-local; runParallelShm() converts it
/// to the failing rank's own error before it reaches the caller.
struct PeerAbortError : std::runtime_error {
    PeerAbortError()
        : std::runtime_error(
              "vmpi shm: a peer rank failed; aborting this rank") {}
};

// ---------------------------------------------------------------------------
// Segment
// ---------------------------------------------------------------------------

class ShmSegment {
public:
    ShmSegment(int nranks, std::uint64_t ringCapacity) {
        statusOff_ = alignUp(sizeof(ShmHeader));
        ringsOff_ = alignUp(statusOff_ +
                            sizeof(ShmStatus) * static_cast<std::size_t>(nranks));
        dataOff_ = alignUp(ringsOff_ +
                           sizeof(ShmRing) * static_cast<std::size_t>(nranks));
        total_ = dataOff_ + static_cast<std::size_t>(ringCapacity) *
                                static_cast<std::size_t>(nranks);

        // Unique name; unlinked right after mmap — children inherit the
        // mapping through fork(), so the name only exists for an instant
        // and can never leak into /dev/shm.
        static std::atomic<unsigned> counter{0};
        const std::string name = "/tpf-vmpi-" + std::to_string(getpid()) +
                                 "-" + std::to_string(counter++);
        const int fd =
            shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
        TPF_ASSERT(fd >= 0, "shm_open failed for the vmpi shm transport");
        const int trunc = ftruncate(fd, static_cast<off_t>(total_));
        TPF_ASSERT(trunc == 0, "ftruncate failed for the vmpi shm segment");
        base_ = static_cast<std::byte*>(mmap(nullptr, total_,
                                             PROT_READ | PROT_WRITE,
                                             MAP_SHARED, fd, 0));
        TPF_ASSERT(base_ != MAP_FAILED, "mmap failed for the vmpi shm segment");
        close(fd);
        shm_unlink(name.c_str());

        std::memset(base_, 0, total_);
        ShmHeader* h = header();
        h->magic = kMagic;
        h->nranks = nranks;
        h->ringCapacity = ringCapacity;
        h->abortFlag.store(0);

        pthread_mutexattr_t ma;
        pthread_mutexattr_init(&ma);
        pthread_mutexattr_setpshared(&ma, PTHREAD_PROCESS_SHARED);
        pthread_condattr_t ca;
        pthread_condattr_init(&ca);
        pthread_condattr_setpshared(&ca, PTHREAD_PROCESS_SHARED);
        pthread_condattr_setclock(&ca, CLOCK_MONOTONIC);

        pthread_mutex_init(&h->barrier.mtx, &ma);
        pthread_cond_init(&h->barrier.cv, &ca);
        for (int r = 0; r < nranks; ++r) {
            ShmRing* ring = ringMeta(r);
            pthread_mutex_init(&ring->mtx, &ma);
            pthread_cond_init(&ring->notEmpty, &ca);
            pthread_cond_init(&ring->notFull, &ca);
        }
        pthread_mutexattr_destroy(&ma);
        pthread_condattr_destroy(&ca);
    }

    ~ShmSegment() {
        if (base_ != nullptr) munmap(base_, total_);
    }

    ShmSegment(const ShmSegment&) = delete;
    ShmSegment& operator=(const ShmSegment&) = delete;

    ShmHeader* header() { return reinterpret_cast<ShmHeader*>(base_); }
    ShmStatus* status(int rank) {
        return reinterpret_cast<ShmStatus*>(base_ + statusOff_) + rank;
    }
    ShmRing* ringMeta(int rank) {
        return reinterpret_cast<ShmRing*>(base_ + ringsOff_) + rank;
    }
    std::byte* ringData(int rank) {
        return base_ + dataOff_ +
               static_cast<std::size_t>(header()->ringCapacity) *
                   static_cast<std::size_t>(rank);
    }

private:
    std::byte* base_ = nullptr;
    std::size_t total_ = 0;
    std::size_t statusOff_ = 0;
    std::size_t ringsOff_ = 0;
    std::size_t dataOff_ = 0;
};

void setStatus(ShmStatus* st, std::int32_t state, const char* msg) {
    std::snprintf(st->msg, sizeof(st->msg), "%s", msg);
    st->state = state;
}

/// Modular copy into / out of a ring data area.
void ringCopyIn(std::byte* data, std::uint64_t cap, std::uint64_t pos,
                const void* src, std::uint64_t n) {
    const std::uint64_t at = pos % cap;
    const std::uint64_t first = n < cap - at ? n : cap - at;
    std::memcpy(data + at, src, first);
    if (n > first)
        std::memcpy(data, static_cast<const std::byte*>(src) + first,
                    n - first);
}

void ringCopyOut(const std::byte* data, std::uint64_t cap, std::uint64_t pos,
                 void* dst, std::uint64_t n) {
    const std::uint64_t at = pos % cap;
    const std::uint64_t first = n < cap - at ? n : cap - at;
    std::memcpy(dst, data + at, first);
    if (n > first)
        std::memcpy(static_cast<std::byte*>(dst) + first, data, n - first);
}

/// pthread_cond_timedwait for one slice on a CLOCK_MONOTONIC condvar.
void timedWaitSlice(pthread_cond_t* cv, pthread_mutex_t* mtx) {
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    ts.tv_nsec += kSliceNs;
    if (ts.tv_nsec >= 1000000000L) {
        ts.tv_sec += 1;
        ts.tv_nsec -= 1000000000L;
    }
    pthread_cond_timedwait(cv, mtx, &ts);
}

class MutexLock {
public:
    explicit MutexLock(pthread_mutex_t* m) : m_(m) {
        pthread_mutex_lock(m_);
    }
    ~MutexLock() { pthread_mutex_unlock(m_); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    pthread_mutex_t* m_;
};

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

/// A fully received message, parked until a matching recv.
struct ShmMessage {
    int src = -1;
    int tag = -1;
    std::vector<std::byte> data;
};

class ShmTransport final : public Transport {
public:
    /// \p liveness runs once per wait slice; the parent passes a callback
    /// that waitpid-polls the children and raises the abort flag when one
    /// died without reporting (children pass nullptr).
    ShmTransport(ShmSegment& seg, int rank,
                 std::function<void()> liveness)
        : Transport(rank, seg.header()->nranks), seg_(seg),
          cap_(seg.header()->ringCapacity),
          liveness_(std::move(liveness)) {}

    const char* name() const override { return "shm"; }

    void send(int dst, int tag, const void* data,
              std::size_t bytes) override {
        TPF_ASSERT(dst >= 0 && dst < size_, "invalid destination rank");
        if (dst == rank_) {
            ShmMessage m;
            m.src = rank_;
            m.tag = tag;
            m.data.assign(static_cast<const std::byte*>(data),
                          static_cast<const std::byte*>(data) + bytes);
            pending_.push_back(std::move(m));
            return;
        }
        const std::uint64_t maxChunk = cap_ / 4 - sizeof(RecHdr);
        const std::byte* p = static_cast<const std::byte*>(data);
        std::uint64_t left = bytes;
        do {
            const std::uint64_t chunk = left < maxChunk ? left : maxChunk;
            writeRecord(dst, tag, p, chunk, left > chunk);
            p += chunk;
            left -= chunk;
        } while (left > 0);
    }

    void recv(int src, int tag, std::vector<std::byte>& out) override {
        TPF_ASSERT(src >= 0 && src < size_, "invalid source rank");
        int idleSlices = 0;
        for (;;) {
            if (takePending(src, tag, out)) return;
            const bool progressed = drainIncoming(true);
            checkAbort();
            if (liveness_) liveness_();
            if (progressed)
                idleSlices = 0;
            else if (++idleSlices > kMaxWaitSlices)
                TPF_ASSERT(false,
                           "vmpi receive timed out (likely deadlock)");
        }
    }

    // Sends land in this rank's ring without the receiver's involvement
    // (that is the genuine async progress of this backend), so a posted
    // receive only records the match; waitRecv completes it.
    std::uint64_t postRecv(int src, int tag,
                           std::size_t /*bytesHint*/) override {
        TPF_ASSERT(src >= 0 && src < size_, "invalid source rank");
        const std::uint64_t h = nextHandle_++;
        posted_.emplace(h, std::make_pair(src, tag));
        return h;
    }

    void waitRecv(std::uint64_t handle, std::vector<std::byte>& out) override {
        const auto it = posted_.find(handle);
        TPF_ASSERT(it != posted_.end(), "waiting on an unknown recv handle");
        const auto [src, tag] = it->second;
        posted_.erase(it);
        recv(src, tag, out);
    }

    // Nothing was reserved at post time, so cancelling just forgets the
    // match; the payload (already drained into pending_ or still in the
    // ring) stays unconsumed.
    void cancelRecv(std::uint64_t handle) override {
        const auto it = posted_.find(handle);
        TPF_ASSERT(it != posted_.end(), "cancelling an unknown recv handle");
        posted_.erase(it);
    }

    void barrier() override {
        ShmBarrier* b = &seg_.header()->barrier;
        MutexLock lock(&b->mtx);
        const std::uint64_t gen = b->gen;
        if (++b->count == size_) {
            b->count = 0;
            ++b->gen;
            pthread_cond_broadcast(&b->cv);
            return;
        }
        int slices = 0;
        while (b->gen == gen) {
            timedWaitSlice(&b->cv, &b->mtx);
            if (seg_.header()->abortFlag.load() != 0) throw PeerAbortError();
            if (liveness_) liveness_();
            if (b->gen == gen && ++slices > kMaxWaitSlices)
                TPF_ASSERT(false, "vmpi barrier timed out (likely deadlock)");
        }
    }

private:
    void checkAbort() {
        if (seg_.header()->abortFlag.load() != 0) throw PeerAbortError();
    }

    /// Append one record to dst's ring, waiting for space in abort-aware
    /// slices. While blocked, drain our own ring: if the destination is
    /// itself blocked sending to us, consuming our ring is what lets the
    /// cycle make progress (send-send deadlock avoidance).
    void writeRecord(int dst, int tag, const std::byte* payload,
                     std::uint64_t chunk, bool more) {
        const std::uint64_t need = sizeof(RecHdr) + chunk;
        ShmRing* ring = seg_.ringMeta(dst);
        std::byte* data = seg_.ringData(dst);
        int slices = 0;
        for (;;) {
            {
                MutexLock lock(&ring->mtx);
                if (cap_ - (ring->head - ring->tail) >= need) {
                    RecHdr h;
                    h.src = rank_;
                    h.tag = tag;
                    h.bytes = chunk;
                    h.more = more ? 1 : 0;
                    h.pad = 0;
                    ringCopyIn(data, cap_, ring->head, &h, sizeof(h));
                    if (chunk > 0)
                        ringCopyIn(data, cap_, ring->head + sizeof(h),
                                   payload, chunk);
                    ring->head += need;
                    pthread_cond_broadcast(&ring->notEmpty);
                    return;
                }
                timedWaitSlice(&ring->notFull, &ring->mtx);
            }
            checkAbort();
            if (liveness_) liveness_();
            if (drainIncoming(false))
                slices = 0;
            else if (++slices > kMaxWaitSlices)
                TPF_ASSERT(false,
                           "vmpi shm send timed out (ring full; likely "
                           "deadlock)");
        }
    }

    /// Move every complete record out of our ring into private memory,
    /// assembling chunked messages. \p blocking waits one slice when the
    /// ring is empty. Returns whether anything was consumed.
    bool drainIncoming(bool blocking) {
        ShmRing* ring = seg_.ringMeta(rank_);
        const std::byte* data = seg_.ringData(rank_);
        bool any = false;
        MutexLock lock(&ring->mtx);
        if (blocking && ring->head == ring->tail)
            timedWaitSlice(&ring->notEmpty, &ring->mtx);
        while (ring->head != ring->tail) {
            RecHdr h;
            ringCopyOut(data, cap_, ring->tail, &h, sizeof(h));
            TPF_ASSERT(sizeof(h) + h.bytes <= ring->head - ring->tail,
                       "corrupt shm ring record");
            auto& part = partial_[h.src];
            if (part.src < 0) {
                part.src = h.src;
                part.tag = h.tag;
            }
            TPF_ASSERT(part.tag == h.tag,
                       "interleaved chunks from one source in shm ring");
            const std::size_t old = part.data.size();
            part.data.resize(old + h.bytes);
            if (h.bytes > 0)
                ringCopyOut(data, cap_, ring->tail + sizeof(h),
                            part.data.data() + old, h.bytes);
            ring->tail += sizeof(h) + h.bytes;
            if (h.more == 0) {
                pending_.push_back(std::move(part));
                partial_.erase(h.src);
            }
            any = true;
        }
        if (any) pthread_cond_broadcast(&ring->notFull);
        return any;
    }

    bool takePending(int src, int tag, std::vector<std::byte>& out) {
        for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->src == src && it->tag == tag) {
                out = std::move(it->data);
                pending_.erase(it);
                return true;
            }
        }
        return false;
    }

    ShmSegment& seg_;
    std::uint64_t cap_;
    std::function<void()> liveness_;

    std::deque<ShmMessage> pending_;
    std::map<int, ShmMessage> partial_; ///< in-flight chunked message per src
    std::uint64_t nextHandle_ = 1;
    std::unordered_map<std::uint64_t, std::pair<int, int>> posted_;
};

// ---------------------------------------------------------------------------
// Process orchestration
// ---------------------------------------------------------------------------

[[noreturn]] void childMain(ShmSegment& seg, int rank,
                            const detail::RankFn& f) {
    ShmStatus* st = seg.status(rank);
    const ChildFailureProbe probe = childFailureProbe();
    const int failedBefore = probe ? probe() : 0;
    try {
        ShmTransport t(seg, rank, nullptr);
        Comm c = detail::makeComm(&t);
        f(c);
    } catch (const PeerAbortError& e) {
        setStatus(st, 3, e.what());
        std::_Exit(1);
    } catch (const std::exception& e) {
        setStatus(st, 2, e.what());
        seg.header()->abortFlag.store(1);
        std::_Exit(1);
    } catch (...) {
        setStatus(st, 2, "unknown exception in a forked vmpi rank");
        seg.header()->abortFlag.store(1);
        std::_Exit(1);
    }
    if (probe && probe() > failedBefore) {
        setStatus(st, 2, "googletest assertion failed in a forked vmpi rank");
        std::_Exit(1);
    }
    setStatus(st, 1, "");
    std::_Exit(0);
}

struct ChildProc {
    pid_t pid = -1;
    bool reaped = false;
    int rank = -1;
};

/// waitpid(WNOHANG) sweep: finds children that died without writing a
/// status (segfault, _exit from a library) and raises the abort flag so
/// the surviving ranks unwind instead of waiting 120 s for a timeout.
void pollChildren(ShmSegment& seg, std::vector<ChildProc>& kids) {
    for (ChildProc& k : kids) {
        if (k.reaped) continue;
        int ws = 0;
        const pid_t r = waitpid(k.pid, &ws, WNOHANG);
        if (r != k.pid) continue;
        k.reaped = true;
        ShmStatus* st = seg.status(k.rank);
        if (WIFSIGNALED(ws) && st->state == 0) {
            std::string msg = "vmpi rank " + std::to_string(k.rank) +
                              " died on signal " +
                              std::to_string(WTERMSIG(ws));
            setStatus(st, 2, msg.c_str());
            seg.header()->abortFlag.store(1);
        } else if (WIFEXITED(ws) && WEXITSTATUS(ws) != 0 && st->state == 0) {
            std::string msg = "vmpi rank " + std::to_string(k.rank) +
                              " exited without reporting a status";
            setStatus(st, 2, msg.c_str());
            seg.header()->abortFlag.store(1);
        } else if (WIFEXITED(ws) && WEXITSTATUS(ws) != 0 &&
                   st->state == 2) {
            // Child reported its own failure; make sure peers unwind even
            // when the failure happened after the last collective.
            seg.header()->abortFlag.store(1);
        }
    }
}

void reapAll(ShmSegment& seg, std::vector<ChildProc>& kids) {
    for (ChildProc& k : kids) {
        if (k.reaped) continue;
        int ws = 0;
        waitpid(k.pid, &ws, 0);
        k.reaped = true;
        ShmStatus* st = seg.status(k.rank);
        if (st->state == 0) {
            std::string msg =
                "vmpi rank " + std::to_string(k.rank) +
                (WIFSIGNALED(ws)
                     ? " died on signal " + std::to_string(WTERMSIG(ws))
                     : " exited without reporting a status");
            setStatus(st, 2, msg.c_str());
        }
    }
}

/// First reported real failure (state 2), if any.
std::string firstChildError(ShmSegment& seg, int nranks) {
    for (int r = 1; r < nranks; ++r) {
        const ShmStatus* st = seg.status(r);
        if (st->state == 2)
            return "vmpi rank " + std::to_string(r) + ": " + st->msg;
    }
    return {};
}

} // namespace

namespace detail {

void runParallelShm(int nranks, const RankFn& f) {
    TPF_ASSERT(nranks >= 1, "need at least one rank");
    ShmSegment seg(nranks, ringCapacityFromEnv());

    if (nranks == 1) {
        ShmTransport t(seg, 0, nullptr);
        Comm c = makeComm(&t);
        f(c);
        return;
    }

    // Flush before fork so buffered output is not duplicated into children.
    std::fflush(stdout);
    std::fflush(stderr);

    std::vector<ChildProc> kids;
    kids.reserve(static_cast<std::size_t>(nranks - 1));
    for (int r = 1; r < nranks; ++r) {
        const pid_t pid = fork();
        TPF_ASSERT(pid >= 0, "fork failed for the vmpi shm transport");
        if (pid == 0) childMain(seg, r, f); // never returns
        kids.push_back(ChildProc{pid, false, r});
    }

    try {
        ShmTransport t(seg, 0, [&] { pollChildren(seg, kids); });
        Comm c = makeComm(&t);
        f(c);
    } catch (const PeerAbortError&) {
        // Rank 0 unwound because a peer failed: report the peer's own
        // error instead of the secondary abort.
        reapAll(seg, kids);
        const std::string err = firstChildError(seg, nranks);
        throw std::runtime_error(err.empty()
                                     ? "vmpi shm: a forked rank failed"
                                     : err);
    } catch (...) {
        // Rank 0 failed on its own: children unwind via the abort flag,
        // and the caller sees rank 0's exception with its exact type.
        seg.header()->abortFlag.store(1);
        reapAll(seg, kids);
        throw;
    }

    reapAll(seg, kids);
    const std::string err = firstChildError(seg, nranks);
    if (!err.empty()) throw std::runtime_error(err);
}

} // namespace detail

} // namespace tpf::vmpi
