#pragma once
/// \file transport_spawn.h
/// Internal entry points of the per-backend rank launchers. Only
/// vmpi/comm.cpp (the public runParallel family) and the backend TUs
/// include this; user code goes through vmpi/comm.h.

#include <cstdint>
#include <functional>

#include "vmpi/transport.h"

namespace tpf::vmpi {
class Comm;
}

namespace tpf::vmpi::detail {

using RankFn = std::function<void(Comm&)>;

/// Thread backend. \p shuffleSeed != 0 enables the adversarial
/// randomized-delivery mode (messages are inserted at random mailbox
/// positions, destroying cross-message arrival order) used by the
/// collective-sequencing regression tests.
void runParallelThread(int nranks, const RankFn& f, std::uint64_t shuffleSeed);

/// Fork + shared-memory backend: true process-separated ranks.
void runParallelShm(int nranks, const RankFn& f);

/// MPI backend (only with TPF_WITH_MPI): adopts the already-running MPI
/// processes; aborts when not launched under a matching mpirun.
void runParallelMpi(int nranks, const RankFn& f);

/// Comm factory for the backend launchers (friend of Comm).
Comm makeComm(Transport* t);

} // namespace tpf::vmpi::detail
