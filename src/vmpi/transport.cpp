#include "vmpi/transport.h"

#include <cstdlib>
#include <string>

#include "util/assert.h"

namespace tpf::vmpi {

const char* transportName(TransportKind k) {
    switch (k) {
    case TransportKind::Thread: return "thread";
    case TransportKind::Shm: return "shm";
    case TransportKind::Mpi: return "mpi";
    }
    return "?";
}

bool parseTransportName(const std::string& name, TransportKind& out) {
    if (name == "thread") {
        out = TransportKind::Thread;
        return true;
    }
    if (name == "shm") {
        out = TransportKind::Shm;
        return true;
    }
    if (name == "mpi") {
        out = TransportKind::Mpi;
        return true;
    }
    return false;
}

bool transportCompiledIn(TransportKind k) {
#if TPF_WITH_MPI
    (void)k;
    return true;
#else
    return k != TransportKind::Mpi;
#endif
}

std::vector<TransportKind> spawnableTransports() {
    return {TransportKind::Thread, TransportKind::Shm};
}

TransportKind defaultTransport() {
    const char* env = std::getenv("TPF_TRANSPORT");
    if (env == nullptr || env[0] == '\0') return TransportKind::Thread;
    TransportKind k = TransportKind::Thread;
    const bool known = parseTransportName(env, k);
    TPF_ASSERT(known, "TPF_TRANSPORT names an unknown transport");
    TPF_ASSERT(transportCompiledIn(k),
               "TPF_TRANSPORT names a transport not compiled into this "
               "binary (mpi requires TPF_WITH_MPI=ON)");
    return k;
}

namespace {
ChildFailureProbe g_childFailureProbe = nullptr;
} // namespace

void setChildFailureProbe(ChildFailureProbe probe) {
    g_childFailureProbe = probe;
}

ChildFailureProbe childFailureProbe() { return g_childFailureProbe; }

} // namespace tpf::vmpi
