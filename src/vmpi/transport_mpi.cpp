/// \file transport_mpi.cpp
/// Real MPI backend (TPF_WITH_MPI=ON): ranks are MPI processes, messages
/// travel through MPI_Isend/MPI_Irecv on MPI_COMM_WORLD. Unlike the thread
/// and shm backends this one cannot *spawn* ranks — mpirun already started
/// them — so runParallelMpi() adopts the calling process as its world rank
/// and requires the launch's world size to equal the requested rank count.
///
/// Mapping onto MPI:
///  - vmpi tags may be negative (the collective protocol runs below
///    kInternalTagBase); MPI tags must be non-negative, so tags map
///    t >= 0 -> 2t and t < 0 -> -2t - 1 (a bijection onto [0, 2^31)).
///  - send() keeps buffered no-rendezvous semantics by copying the payload
///    into an owned stash entry and posting MPI_Isend on it; completed
///    stash entries are retired opportunistically on later calls and
///    drained fully at every barrier, bounding the stash by one
///    communication phase.
///  - postRecv() with a byte hint posts a real MPI_Irecv into a
///    pre-sized buffer — the genuinely asynchronous path the ghost
///    exchange uses. Without a hint the receive is completed at
///    waitRecv() via MPI_Probe + MPI_Recv (message size unknown until
///    matched).

#include "vmpi/transport.h"

#include "util/assert.h"
#include "vmpi/comm.h"
#include "vmpi/transport_spawn.h"

#if TPF_WITH_MPI

#include <mpi.h>

#include <cstring>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace tpf::vmpi {

namespace {

int mapTag(int tag) { return tag >= 0 ? 2 * tag : -2 * tag - 1; }

struct StashedSend {
    MPI_Request req = MPI_REQUEST_NULL;
    std::vector<std::byte> payload;
};

struct PostedRecv {
    MPI_Request req = MPI_REQUEST_NULL;
    std::vector<std::byte> buffer;
    int src = -1;
    int tag = -1;   ///< mapped tag
    bool eager = false; ///< true when a real MPI_Irecv is in flight
};

class MpiTransport final : public Transport {
public:
    MpiTransport(int rank, int size) : Transport(rank, size) {}

    const char* name() const override { return "mpi"; }

    void send(int dst, int tag, const void* data,
              std::size_t bytes) override {
        TPF_ASSERT(dst >= 0 && dst < size_, "invalid destination rank");
        retireCompletedSends();
        stash_.emplace_back();
        StashedSend& s = stash_.back();
        s.payload.resize(bytes);
        if (bytes > 0) std::memcpy(s.payload.data(), data, bytes);
        MPI_Isend(s.payload.data(), static_cast<int>(bytes), MPI_BYTE, dst,
                  mapTag(tag), MPI_COMM_WORLD, &s.req);
    }

    void recv(int src, int tag, std::vector<std::byte>& out) override {
        TPF_ASSERT(src >= 0 && src < size_, "invalid source rank");
        MPI_Status st;
        MPI_Probe(src, mapTag(tag), MPI_COMM_WORLD, &st);
        int count = 0;
        MPI_Get_count(&st, MPI_BYTE, &count);
        out.resize(static_cast<std::size_t>(count));
        MPI_Recv(out.empty() ? nullptr : out.data(), count, MPI_BYTE, src,
                 mapTag(tag), MPI_COMM_WORLD, MPI_STATUS_IGNORE);
    }

    std::uint64_t postRecv(int src, int tag,
                           std::size_t bytesHint) override {
        TPF_ASSERT(src >= 0 && src < size_, "invalid source rank");
        const std::uint64_t h = nextHandle_++;
        PostedRecv pr;
        pr.src = src;
        pr.tag = mapTag(tag);
        if (bytesHint > 0) {
            pr.eager = true;
            pr.buffer.resize(bytesHint);
            MPI_Irecv(pr.buffer.data(), static_cast<int>(bytesHint),
                      MPI_BYTE, src, pr.tag, MPI_COMM_WORLD, &pr.req);
        }
        posted_.emplace(h, std::move(pr));
        return h;
    }

    void waitRecv(std::uint64_t handle, std::vector<std::byte>& out) override {
        const auto it = posted_.find(handle);
        TPF_ASSERT(it != posted_.end(), "waiting on an unknown recv handle");
        PostedRecv pr = std::move(it->second);
        posted_.erase(it);
        if (pr.eager) {
            MPI_Status st;
            MPI_Wait(&pr.req, &st);
            int count = 0;
            MPI_Get_count(&st, MPI_BYTE, &count);
            TPF_ASSERT(static_cast<std::size_t>(count) <= pr.buffer.size(),
                       "posted receive smaller than the arriving message");
            pr.buffer.resize(static_cast<std::size_t>(count));
            out = std::move(pr.buffer);
        } else {
            MPI_Status st;
            MPI_Probe(pr.src, pr.tag, MPI_COMM_WORLD, &st);
            int count = 0;
            MPI_Get_count(&st, MPI_BYTE, &count);
            out.resize(static_cast<std::size_t>(count));
            MPI_Recv(out.empty() ? nullptr : out.data(), count, MPI_BYTE,
                     pr.src, pr.tag, MPI_COMM_WORLD, MPI_STATUS_IGNORE);
        }
    }

    void cancelRecv(std::uint64_t handle) override {
        const auto it = posted_.find(handle);
        TPF_ASSERT(it != posted_.end(), "cancelling an unknown recv handle");
        PostedRecv pr = std::move(it->second);
        posted_.erase(it);
        if (pr.eager) {
            // The landing buffer dies with pr, so the pending MPI_Irecv must
            // be retired before return; MPI_Cancel may be a no-op if the
            // message already matched, in which case the wait completes it.
            MPI_Cancel(&pr.req);
            MPI_Wait(&pr.req, MPI_STATUS_IGNORE);
        }
    }

    void barrier() override {
        drainSends();
        MPI_Barrier(MPI_COMM_WORLD);
    }

    ~MpiTransport() override { drainSends(); }

private:
    void retireCompletedSends() {
        while (!stash_.empty()) {
            int done = 0;
            MPI_Test(&stash_.front().req, &done, MPI_STATUS_IGNORE);
            if (!done) break;
            stash_.pop_front();
        }
    }

    void drainSends() {
        for (StashedSend& s : stash_)
            MPI_Wait(&s.req, MPI_STATUS_IGNORE);
        stash_.clear();
    }

    std::deque<StashedSend> stash_;
    std::uint64_t nextHandle_ = 1;
    std::unordered_map<std::uint64_t, PostedRecv> posted_;
};

} // namespace

namespace detail {

void runParallelMpi(int nranks, const RankFn& f) {
    int initialized = 0;
    MPI_Initialized(&initialized);
    if (!initialized) MPI_Init(nullptr, nullptr);
    int worldSize = 0;
    int worldRank = 0;
    MPI_Comm_size(MPI_COMM_WORLD, &worldSize);
    MPI_Comm_rank(MPI_COMM_WORLD, &worldRank);
    TPF_ASSERT(worldSize == nranks,
               "mpi transport: the MPI world size must equal the requested "
               "rank count (launch with a matching mpirun -np)");
    MpiTransport t(worldRank, worldSize);
    Comm c = makeComm(&t);
    f(c);
    MPI_Barrier(MPI_COMM_WORLD);
}

} // namespace detail

} // namespace tpf::vmpi

#else // !TPF_WITH_MPI

namespace tpf::vmpi::detail {

void runParallelMpi(int nranks, const RankFn& f) {
    (void)nranks;
    (void)f;
    TPF_ASSERT(false,
               "the mpi transport is not compiled into this binary "
               "(rebuild with -DTPF_WITH_MPI=ON)");
}

} // namespace tpf::vmpi::detail

#endif // TPF_WITH_MPI
