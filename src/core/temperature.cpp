#include "core/temperature.h"

// All members are header-inline; this translation unit anchors the vtable-free
// classes for faster incremental builds.
