#pragma once
/// \file sim_block.h
/// One block of the simulation: the four fields of the ping-pong update
/// scheme (Algorithm 1 of the paper allocates "two destination fields phi_dst
/// and mu_dst and two source fields phi_src and mu_src").

#include "core/params.h"
#include "grid/block_forest.h"
#include "grid/field.h"

namespace tpf::core {

struct SimBlock {
    int blockIdx = -1; ///< linear index within the BlockForest
    Int3 origin{};     ///< global cell coordinates of interior cell (0,0,0)
    Int3 size{};       ///< interior cells

    Field<double> phiSrc, phiDst; ///< N order parameters
    Field<double> muSrc, muDst;   ///< KC chemical potentials

    SimBlock(const BlockForest& bf, int idx, Layout phiLayout = Layout::fzyx,
             Layout muLayout = Layout::fzyx)
        : blockIdx(idx), origin(bf.blockOrigin(idx)), size(bf.blockSize()),
          phiSrc(size.x, size.y, size.z, N, 1, phiLayout),
          phiDst(size.x, size.y, size.z, N, 1, phiLayout),
          muSrc(size.x, size.y, size.z, KC, 1, muLayout),
          muDst(size.x, size.y, size.z, KC, 1, muLayout) {}

    /// Standalone block (no forest) for kernel unit tests and benchmarks.
    SimBlock(Int3 sz, Layout phiLayout = Layout::fzyx,
             Layout muLayout = Layout::fzyx)
        : blockIdx(0), origin{0, 0, 0}, size(sz),
          phiSrc(sz.x, sz.y, sz.z, N, 1, phiLayout),
          phiDst(sz.x, sz.y, sz.z, N, 1, phiLayout),
          muSrc(sz.x, sz.y, sz.z, KC, 1, muLayout),
          muDst(sz.x, sz.y, sz.z, KC, 1, muLayout) {}

    /// Ping-pong swap after a completed time step (Algorithm 1, line 7).
    void swapSrcDst() {
        phiSrc.swapData(phiDst);
        muSrc.swapData(muDst);
    }

    long long numCells() const {
        return static_cast<long long>(size.x) * size.y * size.z;
    }
};

} // namespace tpf::core
