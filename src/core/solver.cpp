#include "core/solver.h"

#include <cmath>

#include "core/fused_sweep.h"

namespace tpf::core {

namespace {

Int3 effectiveBlockSize(const SolverConfig& cfg) {
    if (cfg.blockSize.x > 0 && cfg.blockSize.y > 0 && cfg.blockSize.z > 0)
        return cfg.blockSize;
    return cfg.globalCells;
}

} // namespace

Solver::Solver(SolverConfig cfg, vmpi::Comm* comm)
    : cfg_(cfg), comm_(comm), sys_(thermo::makeAgAlCu()),
      bf_(BlockForest::createUniform(cfg.globalCells, effectiveBlockSize(cfg),
                                     cfg.periodic, comm ? comm->size() : 1)),
      temp_(cfg.model.temp) {
    const int myRank = comm_ ? comm_->rank() : 0;
    for (int b : bf_.localBlocks(myRank))
        blocks_.push_back(std::make_unique<SimBlock>(bf_, b, cfg_.phiLayout,
                                                     cfg_.muLayout));
    tz_.resize(blocks_.size());

    // Intra-rank worker pool for the slab-parallel sweeps (hybrid mode).
    // Each rank owns its pool, so ranks x threads cores are used in total.
    if (cfg_.threads > 1)
        pool_ = std::make_unique<util::ThreadPool>(cfg_.threads);

    // Exchange schemes. phi needs D3C19 ghosts (the mu-sweep reads diagonal
    // phi neighbors for the anti-trapping current), mu only faces (D3C7).
    phiEx_ = std::make_unique<GhostExchange>(bf_, comm_, StencilKind::D3C19,
                                             /*fieldSlot=*/0);
    muEx_ = std::make_unique<GhostExchange>(bf_, comm_, StencilKind::D3C7,
                                            /*fieldSlot=*/1);
    for (auto& blk : blocks_) {
        phiEx_->registerField(blk->blockIdx, &blk->phiDst);
        // In mu-overlap mode the mu communication happens at the *start* of a
        // step on muSrc (Algorithm 2 line 1); otherwise on muDst at the end.
        muEx_->registerField(blk->blockIdx,
                             cfg_.overlapMu ? &blk->muSrc : &blk->muDst);
    }

    // Boundary conditions (Figure 2): z bottom Neumann, z top Dirichlet
    // (fresh liquid / eutectic chemical potential); x, y periodic.
    if (!cfg_.periodic[2]) {
        phiBC_.kind[4] = BCType::Neumann;
        phiBC_.kind[5] = BCType::Dirichlet;
        std::vector<double> liquid(N, 0.0);
        liquid[LIQ] = 1.0;
        phiBC_.value[5] = liquid;

        muBC_.kind[4] = BCType::Neumann;
        muBC_.kind[5] = BCType::Dirichlet;
        muBC_.value[5] = {sys_.muEut().x, sys_.muEut().y};
    }
    TPF_ASSERT(cfg_.periodic[0] && cfg_.periodic[1],
               "the solidification setup assumes lateral periodicity");
    if (cfg_.schedule == SweepSchedule::Fused) {
        TPF_ASSERT(!cfg_.overlapPhi,
                   "the fused schedule already interleaves the mu sweep with "
                   "the phi computation; combining it with phi communication "
                   "hiding is not supported");
        TPF_ASSERT(bf_.blockGrid().x == 1 && bf_.blockGrid().y == 1,
                   "the fused schedule wraps lateral phi ghosts locally and "
                   "needs a single block in x and y (z-slicing is fine)");
    }

    buildTimeloop();
}

StepContext Solver::makeContext(std::size_t blockSlot) const {
    StepContext ctx;
    ctx.mc = ModelConsts::build(cfg_.model, sys_);
    ctx.tz = &tz_[blockSlot];
    ctx.temp = &temp_;
    ctx.time = time_;
    ctx.windowOffset = windowOffset_;
    return ctx;
}

void Solver::sweepPhi(std::size_t blockSlot, SimBlock& b) {
    const StepContext base = makeContext(blockSlot);
    const CellInterval whole{0, 0, 0, b.size.x - 1, b.size.y - 1,
                             b.size.z - 1};
    parallelForSlabs(pool_.get(), whole, [&](const CellInterval& slab) {
        runPhiKernel(cfg_.phiKernel, b, base.forSlab(slab));
    });
}

void Solver::sweepMu(std::size_t blockSlot, SimBlock& b, MuSweepPart part) {
    const StepContext base = makeContext(blockSlot);
    const CellInterval whole{0, 0, 0, b.size.x - 1, b.size.y - 1,
                             b.size.z - 1};
    parallelForSlabs(pool_.get(), whole, [&](const CellInterval& slab) {
        runMuKernel(cfg_.muKernel, b, base.forSlab(slab), part);
    });
}

void Solver::buildTimeloop() {
    auto forAllBlocks = [this](auto fn) {
        for (std::size_t i = 0; i < blocks_.size(); ++i) fn(i, *blocks_[i]);
    };

    loop_.add("window", [this] {
        if (cfg_.window.enabled &&
            loop_.steps() % std::max(1, cfg_.window.checkEvery) == 0)
            maybeShiftWindow();
    });

    loop_.add("tz-cache", [this, forAllBlocks] {
        const ModelConsts mc = ModelConsts::build(cfg_.model, sys_);
        forAllBlocks([&](std::size_t i, SimBlock& b) {
            tz_[i].build(mc, temp_, b.origin.z, b.size.z, time_, windowOffset_);
        });
    });

    if (cfg_.overlapMu)
        loop_.add("mu-comm-start", [this] { muEx_->start(); });

    if (cfg_.schedule == SweepSchedule::Fused) {
        // Fused pipeline (core/fused_sweep.h): phi and the interior mu slabs
        // interleave; the phi exchange runs once all phi slabs are written;
        // the bottom/top mu slabs — the only readers of phiDst z ghosts —
        // follow it. fusedMuPrep() fires before whichever mu slab comes
        // first (usually inside fused-sweep; with < 3 slabs per block, in
        // fused-mu-boundary).
        loop_.add("fused-sweep", [this, forAllBlocks] {
            fusedMuReady_ = false;
            forAllBlocks([&](std::size_t i, SimBlock& b) {
                fusedSweepInterior(b, makeContext(i), cfg_.phiKernel,
                                   cfg_.muKernel, pool_.get(),
                                   [this] { fusedMuPrep(); });
            });
        });
        loop_.add("phi-comm", [this, forAllBlocks] {
            phiEx_->communicate();
            forAllBlocks([&](std::size_t, SimBlock& b) {
                applyBoundaries(b.phiDst, bf_, b.blockIdx, phiBC_, pool_.get());
            });
        });
        loop_.add("fused-mu-boundary", [this, forAllBlocks] {
            fusedMuPrep();
            forAllBlocks([&](std::size_t i, SimBlock& b) {
                fusedSweepBoundary(b, makeContext(i), cfg_.muKernel,
                                   pool_.get());
            });
        });

        if (!cfg_.overlapMu) {
            loop_.add("mu-comm", [this, forAllBlocks] {
                muEx_->communicate();
                forAllBlocks([&](std::size_t, SimBlock& b) {
                    applyBoundaries(b.muDst, bf_, b.blockIdx, muBC_,
                                    pool_.get());
                });
            });
        }

        loop_.add("swap", [this] {
            for (auto& b : blocks_) b->swapSrcDst();
            time_ += cfg_.model.dt;
        });
        return;
    }

    loop_.add("phi-sweep", [this, forAllBlocks] {
        forAllBlocks([&](std::size_t i, SimBlock& b) { sweepPhi(i, b); });
    });

    if (cfg_.overlapMu) {
        loop_.add("mu-comm-wait", [this, forAllBlocks] {
            muEx_->wait();
            forAllBlocks([&](std::size_t, SimBlock& b) {
                applyBoundaries(b.muSrc, bf_, b.blockIdx, muBC_, pool_.get());
            });
        });
    }

    if (cfg_.overlapPhi) {
        loop_.add("phi-comm-start", [this] { phiEx_->start(); });
        loop_.add("mu-sweep-local", [this, forAllBlocks] {
            forAllBlocks([&](std::size_t i, SimBlock& b) {
                sweepMu(i, b, MuSweepPart::LocalOnly);
            });
        });
        loop_.add("phi-comm-wait", [this, forAllBlocks] {
            phiEx_->wait();
            forAllBlocks([&](std::size_t, SimBlock& b) {
                applyBoundaries(b.phiDst, bf_, b.blockIdx, phiBC_, pool_.get());
            });
        });
        loop_.add("mu-sweep-neighbor", [this, forAllBlocks] {
            forAllBlocks([&](std::size_t i, SimBlock& b) {
                sweepMu(i, b, MuSweepPart::NeighborOnly);
            });
        });
    } else {
        loop_.add("phi-comm", [this, forAllBlocks] {
            phiEx_->communicate();
            forAllBlocks([&](std::size_t, SimBlock& b) {
                applyBoundaries(b.phiDst, bf_, b.blockIdx, phiBC_, pool_.get());
            });
        });
        loop_.add("mu-sweep", [this, forAllBlocks] {
            forAllBlocks([&](std::size_t i, SimBlock& b) {
                sweepMu(i, b, MuSweepPart::Full);
            });
        });
    }

    if (!cfg_.overlapMu) {
        loop_.add("mu-comm", [this, forAllBlocks] {
            muEx_->communicate();
            forAllBlocks([&](std::size_t, SimBlock& b) {
                applyBoundaries(b.muDst, bf_, b.blockIdx, muBC_, pool_.get());
            });
        });
    }

    loop_.add("swap", [this] {
        for (auto& b : blocks_) b->swapSrcDst();
        time_ += cfg_.model.dt;
    });
}

void Solver::fusedMuPrep() {
    if (fusedMuReady_) return;
    fusedMuReady_ = true;
    if (!cfg_.overlapMu) return; // muSrc ghosts are last step's mu-comm
    muEx_->wait();
    for (auto& b : blocks_)
        applyBoundaries(b->muSrc, bf_, b->blockIdx, muBC_, pool_.get());
}

void Solver::addPostStepHook(const std::string& name,
                             std::function<void(long long)> fn) {
    // buildTimeloop() ran in the constructor, so appended functors execute
    // after "swap": the hook observes the post-step source fields. The
    // timeloop's step counter increments after the functor sequence, hence
    // the +1 to report the step being completed.
    loop_.add(name, [this, fn = std::move(fn)] { fn(loop_.steps() + 1); });
}

void Solver::communicateAll() {
    // Synchronize the *source* fields (initialization / post-shift): use
    // temporary exchanges bound to the src fields with distinct tag slots.
    GhostExchange phiSrcEx(bf_, comm_, StencilKind::D3C19, /*fieldSlot=*/2);
    GhostExchange muSrcEx(bf_, comm_, StencilKind::D3C7, /*fieldSlot=*/3);
    for (auto& b : blocks_) {
        phiSrcEx.registerField(b->blockIdx, &b->phiSrc);
        muSrcEx.registerField(b->blockIdx, &b->muSrc);
    }
    phiSrcEx.communicate();
    muSrcEx.communicate();
    for (auto& b : blocks_) {
        applyBoundaries(b->phiSrc, bf_, b->blockIdx, phiBC_, pool_.get());
        applyBoundaries(b->muSrc, bf_, b->blockIdx, muBC_, pool_.get());
    }
}

void Solver::initialize() {
    for (auto& b : blocks_) initVoronoi(*b, bf_, cfg_.init, sys_);
    communicateAll();
    initialized_ = true;
}

void Solver::restore(double time, double windowOffset, long long steps) {
    time_ = time;
    windowOffset_ = windowOffset;
    loop_.setSteps(steps);
    communicateAll();
    initialized_ = true;
}

void Solver::step() {
    TPF_ASSERT(initialized_, "call initialize() (or restore) before step()");
    loop_.singleStep();
}

void Solver::run(int steps) {
    for (int i = 0; i < steps; ++i) step();
}

void Solver::maybeShiftWindow() {
    int front = localSolidFrontZ(blocks_);
    if (comm_ && comm_->size() > 1)
        front = static_cast<int>(
            comm_->allreduceMax(static_cast<double>(front)));

    const double trigger = cfg_.window.triggerFraction * cfg_.globalCells.z;
    int shifts = 0;
    bool synced = false;
    while (front >= 0 && static_cast<double>(front - shifts) > trigger &&
           shifts < cfg_.globalCells.z / 4) {
        if (!synced) {
            // The shift reads the z+1 ghosts of the *source* fields. phiSrc
            // ghosts are valid here (last step ended with the phi exchange +
            // swap), but in mu-overlap mode muSrc is exchanged at the START
            // of a step — after this functor — so its ghosts are one step
            // stale at block interfaces. Serial runs have no z-interface and
            // never read them; without this refresh, multi-rank shifted
            // fields diverge from the serial ones at the interface plane.
            communicateAll();
            synced = true;
        }
        for (auto& b : blocks_) shiftDownOneCell(*b, bf_, sys_, pool_.get());
        windowOffset_ += 1.0;
        ++shifts;
        // Shifting consumed the z+1 ghosts; re-synchronize before either the
        // next shift or the next sweep.
        communicateAll();
    }
}

std::array<double, N> Solver::phaseFractions() {
    std::array<double, N> sum{};
    long long cells = 0;
    for (auto& b : blocks_) {
        forEachCell(b->phiSrc.interior(), [&](int x, int y, int z) {
            for (int a = 0; a < N; ++a)
                sum[static_cast<std::size_t>(a)] += b->phiSrc(x, y, z, a);
        });
        cells += b->numCells();
    }
    if (comm_ && comm_->size() > 1) {
        for (auto& s : sum) s = comm_->allreduceSum(s);
        cells = comm_->allreduceSumLL(cells);
    }
    for (auto& s : sum) s /= static_cast<double>(cells);
    return sum;
}

std::array<double, 3> Solver::solidFractions() {
    const auto f = phaseFractions();
    const double solid = f[0] + f[1] + f[2];
    if (solid <= 0.0) return {0.0, 0.0, 0.0};
    return {f[0] / solid, f[1] / solid, f[2] / solid};
}

int Solver::frontPosition() {
    int front = localSolidFrontZ(blocks_);
    if (comm_ && comm_->size() > 1)
        front =
            static_cast<int>(comm_->allreduceMax(static_cast<double>(front)));
    return front;
}

double Solver::maxMuDeviation() {
    double m = 0.0;
    const Vec2 muE = sys_.muEut();
    for (auto& b : blocks_) {
        forEachCell(b->muSrc.interior(), [&](int x, int y, int z) {
            m = std::max(m, std::abs(b->muSrc(x, y, z, 0) - muE.x));
            m = std::max(m, std::abs(b->muSrc(x, y, z, 1) - muE.y));
        });
    }
    if (comm_ && comm_->size() > 1) m = comm_->allreduceMax(m);
    return m;
}

} // namespace tpf::core
