#pragma once
/// \file kernel_dispatch.h
/// Runtime instruction-set dispatch for the vectorized phi/mu sweeps.
///
/// The configure-time simd::Vec4d pick (src/simd/simd.h) bakes one backend
/// into the binary; reproducing the paper's numbers across machines — and
/// checking the bitwise-equivalence contract per backend — needs the choice
/// at *startup* instead. Each KernelTarget is the same kernel bodies
/// (core/phi_kernel_cellwise_body.h, core/phi_kernel_multicell_body.h,
/// core/mu_kernel_multicell_body.h) compiled in its own translation unit
/// (src/core/kernel_targets/) with that ISA's flags and vector types, behind
/// internal linkage so targets can never collapse into one symbol.
///
/// Selection: widest CPU-supported target by default, overridable with the
/// TPF_KERNEL environment variable or the --kernel CLI flag (kernel specs
/// "[schedule:]target", e.g. "avx2", "fused:avx512", "split:scalar"). All
/// targets are bitwise-identical by construction (same fma/rsqrt arithmetic
/// per lane; docs/CORRECTNESS.md), so the override is a reproducibility and
/// testing knob, not a results knob.

#include <string>
#include <vector>

#include "core/kernels.h"

namespace tpf::core {

/// One runtime-dispatchable instruction-set target: the kernel-body entry
/// points compiled for a fixed ISA / vector-width combination.
struct KernelTarget {
    const char* name; ///< "scalar" / "sse2" / "avx2" / "avx512"
    int width;        ///< lanes of the multi-cell bodies (cellwise is 4-wide)
    void (*phiCellwise)(SimBlock&, const StepContext&, bool useTz, bool useStag,
                        bool shortcuts);
    void (*phiMultiCell)(SimBlock&, const StepContext&);
    void (*muMultiCell)(SimBlock&, const StepContext&, bool useTz, bool useStag,
                        bool shortcuts, MuSweepPart part);
};

// Per-ISA accessors; nullptr when the compiler could not build the target
// (defined in src/core/kernel_targets/kernels_<name>.cpp).
const KernelTarget* kernelTargetScalar();
const KernelTarget* kernelTargetSse2();
const KernelTarget* kernelTargetAvx2();
const KernelTarget* kernelTargetAvx512();

/// Targets that are compiled in AND supported by this CPU, narrowest first
/// (scalar always present).
std::vector<const KernelTarget*> availableKernelTargets();

/// The selected target. First use resolves the TPF_KERNEL environment
/// variable (its target token; schedule tokens are the CLI's business) and
/// falls back to the widest available target. Never null. Not synchronized:
/// select once at startup, before sweeps run on worker threads.
const KernelTarget* activeKernelTarget();

/// Select a target by name; "auto" restores the widest available. Returns
/// false (and leaves the selection unchanged) for unknown or unsupported
/// names.
bool setKernelTarget(const std::string& name);

/// A parsed "[schedule:]target" kernel spec (--kernel / TPF_KERNEL).
struct KernelSpec {
    SweepSchedule schedule = SweepSchedule::Split;
    std::string target = "auto";
};

/// Parse a kernel spec: colon-separated tokens, each either a schedule
/// ("split" / "fused") or a target name ("auto" / "scalar" / "sse2" / "avx2"
/// / "avx512"). Availability is NOT checked here — use setKernelTarget.
/// Returns false with a message in \p err on malformed specs.
bool parseKernelSpec(const std::string& spec, KernelSpec& out,
                     std::string& err);

} // namespace tpf::core
