#pragma once
/// \file kernels.h
/// Registry of all phi / mu kernel implementations and the dispatch API.
///
/// The variants reproduce the optimization stages of the paper's Figure 6 and
/// the vectorization strategies of Figure 5:
///
///  phi kernels                          | paper label
///  -------------------------------------+---------------------------------
///  General                              | "general purpose C code"
///  Basic                                | "basic waLBerla implementation"
///  Simd        (cellwise, no caches)    | "with SIMD intrinsics, single cell"
///  SimdTz      (+ z-slice cache)        | "with T(z) optimization"
///  SimdTzStag  (+ staggered buffers)    | "with staggered buffer"
///  SimdTzStagCut (+ bulk shortcuts)     | "with shortcuts"  [production]
///  SimdFourCell (four cells at once)    | Figure 5 "four cells"
///  ScalarTzStag / ScalarTzStagCut       | ablation: all algorithmic
///                                       | optimizations without SIMD
///
///  mu kernels mirror the same stages with four-cell vectorization (the only
///  viable strategy for the mu-sweep, as in the paper).
///
/// All variants are checked for equivalence by tests/test_phi_kernels.cpp and
/// tests/test_mu_kernels.cpp.

#include <string>
#include <vector>

#include "core/sim_block.h"
#include "core/temperature.h"
#include "grid/cell_interval.h"

namespace tpf::core {

enum class PhiKernelKind {
    General,
    Basic,
    ScalarTzStag,
    ScalarTzStagCut,
    Simd,
    SimdTz,
    SimdTzStag,
    SimdTzStagCut,
    SimdFourCell,
};

enum class MuKernelKind {
    General,
    Basic,
    ScalarTzStag,
    ScalarTzStagCut,
    Simd,
    SimdTz,
    SimdTzStag,
    SimdTzStagCut,
};

/// How the per-step phi and mu sweeps are scheduled by the solver:
/// Split streams the whole domain twice (phi sweep, exchange, mu sweep);
/// Fused temporally blocks both sweeps over the z-slab partition of
/// core/slab_sweep.h so each cell's stencil data is touched once per step
/// (mu for slab k-1 runs as soon as the fresh phi of its one-slab halo
/// exists — see core/fused_sweep.h and docs/KERNELS.md "Fused sweep").
enum class SweepSchedule { Split, Fused };

/// Which part of the mu-sweep to execute — the split that enables phi
/// communication hiding (Algorithm 2): the "local" part is everything except
/// the anti-trapping divergence (only cell-local phi_dst dependencies); the
/// "neighbor" part subtracts div J_at once the phi_dst ghosts arrived.
enum class MuSweepPart { Full, LocalOnly, NeighborOnly };

/// Per-step, per-block inputs of a kernel invocation.
struct StepContext {
    ModelConsts mc;
    const TzCache* tz = nullptr;            ///< slice cache (Tz variants)
    const FrozenTemperature* temp = nullptr; ///< analytic T (non-Tz variants)
    double time = 0.0;
    double windowOffset = 0.0;

    /// z-slab restriction of the sweep in local block coordinates, half-open
    /// [zBegin, zEnd); zEnd == -1 means the full block extent. Used by the
    /// slab-parallel execution layer (core/slab_sweep.h): every variant
    /// restarts its staggered z-carries at zBegin with the same face-flux
    /// expression the full sweep buffers, so a slabbed sweep matches an
    /// unrestricted one in value — byte-for-byte only across runs using the
    /// *same* partition, since shortcut paths may buffer +0.0 where a seed
    /// computes -0.0 (which is why parallelForSlabs slabs even its serial
    /// path; see docs/KERNELS.md).
    int zBegin = 0;
    int zEnd = -1;

    /// The resolved half-open z-range for a block of \p nz interior slices.
    int zLo() const { return zBegin; }
    int zHi(int nz) const { return zEnd < 0 ? nz : zEnd; }

    /// Copy of this context restricted to the z-extent of \p slab.
    StepContext forSlab(const CellInterval& slab) const {
        StepContext c = *this;
        c.zBegin = slab.zMin;
        c.zEnd = slab.zMax + 1;
        return c;
    }
};

void runPhiKernel(PhiKernelKind k, SimBlock& b, const StepContext& ctx);
void runMuKernel(MuKernelKind k, SimBlock& b, const StepContext& ctx,
                 MuSweepPart part = MuSweepPart::Full);

std::string kernelName(PhiKernelKind k);
std::string kernelName(MuKernelKind k);

/// All variants, in the Figure-6 progression order.
const std::vector<PhiKernelKind>& allPhiKernels();
const std::vector<MuKernelKind>& allMuKernels();

/// True if the variant requires a built TzCache in the context.
bool needsTzCache(PhiKernelKind k);
bool needsTzCache(MuKernelKind k);

// --- individual implementations (defined in the phi_kernel_* / mu_kernel_*
// translation units; prefer runPhiKernel/runMuKernel for dispatch) ---
void phiSweepGeneral(SimBlock& b, const StepContext& ctx);
void phiSweepBasic(SimBlock& b, const StepContext& ctx);
void phiSweepScalarOpt(SimBlock& b, const StepContext& ctx, bool shortcuts);
void phiSweepSimdCellwise(SimBlock& b, const StepContext& ctx, bool useTz,
                          bool useStag, bool shortcuts);
void phiSweepSimdFourCell(SimBlock& b, const StepContext& ctx);

void muSweepGeneral(SimBlock& b, const StepContext& ctx);
void muSweepBasic(SimBlock& b, const StepContext& ctx, MuSweepPart part);
void muSweepScalarOpt(SimBlock& b, const StepContext& ctx, bool shortcuts,
                      MuSweepPart part);
void muSweepSimdFourCell(SimBlock& b, const StepContext& ctx, bool useTz,
                         bool useStag, bool shortcuts, MuSweepPart part);

} // namespace tpf::core
