/// \file mu_kernel_ref.cpp
/// Reference mu-sweep implementations (General: function-pointer dispatch per
/// cell; Basic: direct calls). The Basic variant also implements the
/// local/neighbor split used for phi communication hiding (Algorithm 2):
///   LocalOnly    = gradient flux + source terms (no phi_dst neighbors),
///   NeighborOnly = subtract div J_at afterwards.

#include "core/kernels.h"
#include "core/mu_face.h"

namespace tpf::core {

namespace {

struct SliceProvider {
    const StepContext& ctx;
    const SimBlock& blk;
    bool useCache;

    SliceThermo at(int z) const {
        if (useCache) {
            TPF_ASSERT(ctx.tz != nullptr, "kernel variant requires a TzCache");
            return ctx.tz->at(z);
        }
        TPF_ASSERT(ctx.temp != nullptr,
                   "kernel variant requires the analytic temperature");
        const double T =
            ctx.temp->atCell(blk.origin.z + z, ctx.time, ctx.windowOffset);
        return computeSliceThermo(ctx.mc, T);
    }
};

using MuFaceFluxFn = void (*)(const ModelConsts&, const Field<double>&,
                              const Field<double>&, const Field<double>&,
                              const SliceThermo&, const SliceThermo&, int, int,
                              int, int, bool, bool, bool, double&, double&);

/// Direct (inlinable) face-flux dispatch.
struct DirectMuOps {
    static void face(const ModelConsts& mc, const Field<double>& P,
                     const Field<double>& Pd, const Field<double>& Mu,
                     const SliceThermo& stL, const SliceThermo& stR, int axis,
                     int xL, int yL, int zL, bool gr, bool at, double& Fx,
                     double& Fy) {
        muFaceFluxAt(mc, P, Pd, Mu, stL, stR, axis, xL, yL, zL, gr, at,
                     /*shortcut=*/false, Fx, Fy);
    }
};

void generalMuFace(const ModelConsts& mc, const Field<double>& P,
                   const Field<double>& Pd, const Field<double>& Mu,
                   const SliceThermo& stL, const SliceThermo& stR, int axis,
                   int xL, int yL, int zL, bool gr, bool at, bool sc, double& Fx,
                   double& Fy) {
    muFaceFluxAt(mc, P, Pd, Mu, stL, stR, axis, xL, yL, zL, gr, at, sc, Fx, Fy);
}

volatile bool gMuOpsInitialized = false;
MuFaceFluxFn gMuFace = nullptr;

/// Function-pointer face-flux dispatch — the per-cell indirection of the
/// original general-purpose code (PACE3D style).
struct GeneralMuOps {
    static void face(const ModelConsts& mc, const Field<double>& P,
                     const Field<double>& Pd, const Field<double>& Mu,
                     const SliceThermo& stL, const SliceThermo& stR, int axis,
                     int xL, int yL, int zL, bool gr, bool at, double& Fx,
                     double& Fy) {
        if (!gMuOpsInitialized) {
            gMuFace = &generalMuFace;
            gMuOpsInitialized = true;
        }
        gMuFace(mc, P, Pd, Mu, stL, stR, axis, xL, yL, zL, gr, at, false, Fx,
                Fy);
    }
};

template <typename Ops>
void muSweepImpl(SimBlock& blk, const StepContext& ctx, bool useCache,
                 MuSweepPart part) {
    const ModelConsts& mc = ctx.mc;
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Pd = blk.phiDst;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.muDst;
    const SliceProvider sp{ctx, blk, useCache};

    const bool applyOnDst = part == MuSweepPart::NeighborOnly;
    const bool gr = part != MuSweepPart::NeighborOnly;
    const bool at = part != MuSweepPart::LocalOnly;

    for (int z = ctx.zLo(); z < ctx.zHi(blk.size.z); ++z) {
        const SliceThermo stM = sp.at(z - 1);
        const SliceThermo stC = sp.at(z);
        const SliceThermo stP = sp.at(z + 1);
        for (int y = 0; y < blk.size.y; ++y) {
            for (int x = 0; x < blk.size.x; ++x) {
                // Six staggered face fluxes (lower cell listed first). In
                // NeighborOnly mode each flux is just -J_at.
                double fxmX, fxmY, fxpX, fxpY, fymX, fymY, fypX, fypY, fzmX,
                    fzmY, fzpX, fzpY;
                Ops::face(mc, P, Pd, Mu, stC, stC, 0, x - 1, y, z, gr, at, fxmX,
                          fxmY);
                Ops::face(mc, P, Pd, Mu, stC, stC, 0, x, y, z, gr, at, fxpX,
                          fxpY);
                Ops::face(mc, P, Pd, Mu, stC, stC, 1, x, y - 1, z, gr, at, fymX,
                          fymY);
                Ops::face(mc, P, Pd, Mu, stC, stC, 1, x, y, z, gr, at, fypX,
                          fypY);
                Ops::face(mc, P, Pd, Mu, stM, stC, 2, x, y, z - 1, gr, at, fzmX,
                          fzmY);
                Ops::face(mc, P, Pd, Mu, stC, stP, 2, x, y, z, gr, at, fzpX,
                          fzpY);

                const double divX =
                    (((fxpX - fxmX) + (fypX - fymX)) + (fzpX - fzmX)) * mc.invDx;
                const double divY =
                    (((fxpY - fxmY) + (fypY - fymY)) + (fzpY - fzmY)) * mc.invDx;

                muCellFinish(mc, stC, P, Pd, Mu, Dst, x, y, z, divX, divY,
                             applyOnDst);
            }
        }
    }
}

} // namespace

void muSweepGeneral(SimBlock& blk, const StepContext& ctx) {
    muSweepImpl<GeneralMuOps>(blk, ctx, /*useCache=*/false, MuSweepPart::Full);
}

void muSweepBasic(SimBlock& blk, const StepContext& ctx, MuSweepPart part) {
    muSweepImpl<DirectMuOps>(blk, ctx, /*useCache=*/false, part);
}

} // namespace tpf::core
