/// \file phi_kernel_opt.cpp
/// Scalar phi-sweep with the full set of algorithmic optimizations of the
/// paper, minus SIMD (used for the SIMD-contribution ablation):
///  - T(z) optimization: all temperature-dependent values from the per-slice
///    cache instead of per-cell recomputation,
///  - staggered buffering: every face flux of da/dgrad(phi) is computed once
///    and reused by the neighboring cell (x-carry, y-row and z-plane buffers
///    of size Nx resp. Nx*Ny — "a buffer of the size Nx x Ny is needed"),
///  - optional bulk shortcuts: cells whose whole D3C7 neighborhood sits at
///    the same simplex vertex are copied through (exact, because projection
///    pins bulk cells at the vertices; see DESIGN.md §5).

#include <vector>

#include "core/kernels.h"
#include "core/model_common.h"

namespace tpf::core {

namespace {

inline void loadPhi(const Field<double>& f, int x, int y, int z, double* p) {
    for (int a = 0; a < N; ++a) p[a] = f(x, y, z, a);
}

/// True if the cell at (x,y,z) and its six face neighbors all equal the same
/// simplex vertex (pure bulk, exact comparison is intentional).
inline bool isBulk7(const Field<double>& f, int x, int y, int z) {
    int phase = -1;
    for (int a = 0; a < N; ++a) {
        if (f(x, y, z, a) == 1.0) {
            phase = a;
            break;
        }
    }
    if (phase < 0) return false;
    return f(x - 1, y, z, phase) == 1.0 && f(x + 1, y, z, phase) == 1.0 &&
           f(x, y - 1, z, phase) == 1.0 && f(x, y + 1, z, phase) == 1.0 &&
           f(x, y, z - 1, phase) == 1.0 && f(x, y, z + 1, phase) == 1.0;
}

} // namespace

void phiSweepScalarOpt(SimBlock& blk, const StepContext& ctx, bool shortcuts) {
    const ModelConsts& mc = ctx.mc;
    TPF_ASSERT(ctx.tz != nullptr, "ScalarOpt phi kernel requires a TzCache");
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.phiDst;

    const int nx = blk.size.x, ny = blk.size.y, nz = blk.size.z;
    const int z0 = ctx.zLo(), z1 = ctx.zHi(nz);

    // Staggered-value buffers: carry (one face), y-row (nx faces), z-plane
    // (nx*ny faces); each entry holds the N flux components of one face. The
    // z-plane buffer is seeded by an explicit face-flux at the slab bottom
    // (z == z0), exactly like the x/y buffers at the start of a row/plane.
    std::vector<double> rowY(static_cast<std::size_t>(nx) * N);
    std::vector<double> planeZ(static_cast<std::size_t>(nx) * ny * N);
    double carryX[N] = {};

    for (int z = z0; z < z1; ++z) {
        const SliceThermo st = ctx.tz->at(z);
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                double pC[N];
                loadPhi(P, x, y, z, pC);

                if (shortcuts && isBulk7(P, x, y, z)) {
                    // Bulk no-op: all staggered fluxes of this cell's upper
                    // faces are exactly zero (both face cells sit at the same
                    // vertex), so the buffers are refreshed with zeros.
                    for (int a = 0; a < N; ++a) {
                        Dst(x, y, z, a) = pC[a];
                        carryX[a] = 0.0;
                        rowY[static_cast<std::size_t>(x) * N +
                             static_cast<std::size_t>(a)] = 0.0;
                        planeZ[(static_cast<std::size_t>(y) * nx + x) * N +
                               static_cast<std::size_t>(a)] = 0.0;
                    }
                    continue;
                }

                double pW[N], pE[N], pS[N], pNn[N], pB[N], pT[N];
                loadPhi(P, x - 1, y, z, pW);
                loadPhi(P, x + 1, y, z, pE);
                loadPhi(P, x, y - 1, z, pS);
                loadPhi(P, x, y + 1, z, pNn);
                loadPhi(P, x, y, z - 1, pB);
                loadPhi(P, x, y, z + 1, pT);

                // Lower faces from the buffers (or explicitly at the block
                // boundary), upper faces computed and stored.
                double fxm[N], fxp[N], fym[N], fyp[N], fzm[N], fzp[N];
                if (x == 0)
                    phiFaceFlux(mc, pW, pC, fxm);
                else
                    for (int a = 0; a < N; ++a) fxm[a] = carryX[a];
                phiFaceFlux(mc, pC, pE, fxp);
                for (int a = 0; a < N; ++a) carryX[a] = fxp[a];

                double* ry = rowY.data() + static_cast<std::size_t>(x) * N;
                if (y == 0)
                    phiFaceFlux(mc, pS, pC, fym);
                else
                    for (int a = 0; a < N; ++a) fym[a] = ry[a];
                phiFaceFlux(mc, pC, pNn, fyp);
                for (int a = 0; a < N; ++a) ry[a] = fyp[a];

                double* pz =
                    planeZ.data() + (static_cast<std::size_t>(y) * nx + x) * N;
                if (z == z0)
                    phiFaceFlux(mc, pB, pC, fzm);
                else
                    for (int a = 0; a < N; ++a) fzm[a] = pz[a];
                phiFaceFlux(mc, pC, pT, fzp);
                for (int a = 0; a < N; ++a) pz[a] = fzp[a];

                double div[N];
                for (int a = 0; a < N; ++a)
                    div[a] = (((fxp[a] - fxm[a]) + (fyp[a] - fym[a])) +
                              (fzp[a] - fzm[a])) *
                             mc.invDx;

                double g[3][N];
                for (int a = 0; a < N; ++a) {
                    g[0][a] = (pE[a] - pW[a]) * mc.halfInvDx;
                    g[1][a] = (pNn[a] - pS[a]) * mc.halfInvDx;
                    g[2][a] = (pT[a] - pB[a]) * mc.halfInvDx;
                }
                double dadphi[N];
                phiGradEnergyDeriv(mc, pC, g, dadphi);

                double dom[N];
                obstacleDeriv(mc, pC, dom);

                double dpsi[N];
                drivingForce(mc, st, pC, Mu(x, y, z, 0), Mu(x, y, z, 1), dpsi);

                double out[N];
                phiUpdateCell(mc, st, pC, div, dadphi, dom, dpsi, out);
                for (int a = 0; a < N; ++a) Dst(x, y, z, a) = out[a];
            }
        }
    }
}

} // namespace tpf::core
