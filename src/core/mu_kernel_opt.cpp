/// \file mu_kernel_opt.cpp
/// Scalar mu-sweep with the algorithmic optimizations of the paper (minus
/// SIMD): T(z) slice cache, staggered buffering of the face fluxes
/// vbuf = (M grad mu - J_at) — "three of them can be buffered and reused
/// since they have already been calculated during the update of previous
/// cells" — and the exact face-level anti-trapping shortcut.

#include <vector>

#include "core/kernels.h"
#include "core/mu_face.h"

namespace tpf::core {

void muSweepScalarOpt(SimBlock& blk, const StepContext& ctx, bool shortcuts,
                      MuSweepPart part) {
    const ModelConsts& mc = ctx.mc;
    TPF_ASSERT(ctx.tz != nullptr, "ScalarOpt mu kernel requires a TzCache");
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Pd = blk.phiDst;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.muDst;

    const bool applyOnDst = part == MuSweepPart::NeighborOnly;
    const bool gr = part != MuSweepPart::NeighborOnly;
    const bool at = part != MuSweepPart::LocalOnly;

    const int nx = blk.size.x, ny = blk.size.y, nz = blk.size.z;
    const int z0 = ctx.zLo(), z1 = ctx.zHi(nz);

    // Staggered buffers: each face value holds the KC = 2 flux components.
    // The z-plane buffer is seeded with an explicit face computation at the
    // slab bottom (z == z0) — the identical muFaceFluxAt call the full sweep
    // buffers, so slabbed and full sweeps stay bitwise equal.
    std::vector<double> rowY(static_cast<std::size_t>(nx) * KC);
    std::vector<double> planeZ(static_cast<std::size_t>(nx) * ny * KC);
    double carryX[KC] = {};

    for (int z = z0; z < z1; ++z) {
        const SliceThermo stM = ctx.tz->at(z - 1);
        const SliceThermo stC = ctx.tz->at(z);
        const SliceThermo stP = ctx.tz->at(z + 1);
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                double fxmX, fxmY, fxpX, fxpY, fymX, fymY, fypX, fypY, fzmX,
                    fzmY, fzpX, fzpY;

                if (x == 0)
                    muFaceFluxAt(mc, P, Pd, Mu, stC, stC, 0, x - 1, y, z, gr, at,
                                 shortcuts, fxmX, fxmY);
                else {
                    fxmX = carryX[0];
                    fxmY = carryX[1];
                }
                muFaceFluxAt(mc, P, Pd, Mu, stC, stC, 0, x, y, z, gr, at,
                             shortcuts, fxpX, fxpY);
                carryX[0] = fxpX;
                carryX[1] = fxpY;

                double* ry = rowY.data() + static_cast<std::size_t>(x) * KC;
                if (y == 0)
                    muFaceFluxAt(mc, P, Pd, Mu, stC, stC, 1, x, y - 1, z, gr, at,
                                 shortcuts, fymX, fymY);
                else {
                    fymX = ry[0];
                    fymY = ry[1];
                }
                muFaceFluxAt(mc, P, Pd, Mu, stC, stC, 1, x, y, z, gr, at,
                             shortcuts, fypX, fypY);
                ry[0] = fypX;
                ry[1] = fypY;

                double* pz =
                    planeZ.data() + (static_cast<std::size_t>(y) * nx + x) * KC;
                if (z == z0)
                    muFaceFluxAt(mc, P, Pd, Mu, stM, stC, 2, x, y, z - 1, gr, at,
                                 shortcuts, fzmX, fzmY);
                else {
                    fzmX = pz[0];
                    fzmY = pz[1];
                }
                muFaceFluxAt(mc, P, Pd, Mu, stC, stP, 2, x, y, z, gr, at,
                             shortcuts, fzpX, fzpY);
                pz[0] = fzpX;
                pz[1] = fzpY;

                const double divX =
                    (((fxpX - fxmX) + (fypX - fymX)) + (fzpX - fzmX)) * mc.invDx;
                const double divY =
                    (((fxpY - fxmY) + (fypY - fymY)) + (fzpY - fzmY)) * mc.invDx;

                muCellFinish(mc, stC, P, Pd, Mu, Dst, x, y, z, divX, divY,
                             applyOnDst);
            }
        }
    }
}

} // namespace tpf::core
