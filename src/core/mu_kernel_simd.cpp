/// \file mu_kernel_simd.cpp
/// Compile-time-default vectorized mu-sweep: the multi-cell body (the only
/// viable vectorization strategy for this kernel — the paper: "While this
/// technique is the only possible one for the mu-kernel ...") instantiated
/// with the configure-time simd::Vec4d backend. One SIMD vector holds one
/// quantity of consecutive x-cells; data-dependent branches of the
/// anti-trapping current become lane masks, with inputs blended to safe
/// values before the fast inverse square roots.
///
/// Variants (Figure 6 progression): +T(z) slice cache, +staggered buffering
/// of the face fluxes vbuf = (M grad mu - J_at), +face-level shortcuts.
/// Supports the Algorithm-2 local/neighbor split for phi communication
/// hiding. Per-ISA instantiations of the same body live behind
/// core/kernel_dispatch.h.

#include <algorithm>
#include <vector>

#include "core/kernels.h"
#include "core/model_common.h"
#include "simd/simd.h"
#include "util/alignment.h"

namespace tpf::core {

namespace {
namespace mucell4 {
using V = simd::Vec4d;
#include "core/mu_kernel_multicell_body.h"
} // namespace mucell4
} // namespace

void muSweepSimdFourCell(SimBlock& b, const StepContext& ctx, bool useTz,
                         bool useStag, bool shortcuts, MuSweepPart part) {
    mucell4::muSweepMultiCellBody(b, ctx, useTz, useStag, shortcuts, part);
}

} // namespace tpf::core
