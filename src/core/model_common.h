#pragma once
/// \file model_common.h
/// Cell-level arithmetic of the grand-potential phase-field model, shared by
/// the scalar kernel variants (the SIMD kernels mirror these expressions
/// lane-wise). Keeping a single source of truth for each term is what lets
/// the kernel-equivalence test suite hold the many variants together — the
/// strategy the paper itself describes ("a regularly running test suite
/// checks all kernel versions for equivalence").
///
/// Model summary (paper eqs. 1–4):
///   dphi_a/dt = 1/(tau_a eps) * (rhs_a - mean_b rhs_b), projected onto the
///               Gibbs simplex, with
///   rhs_a = (T/TE) [ div(da/dgrad phi_a) - da/dphi_a ]
///           - (T/TE)/eps * domega/dphi_a - dpsi/dphi_a
///   dmu/dt  = chi^-1 [ div(M grad mu - J_at) - sum_a c_a dh_a/dt
///                      - (sum_a h_a dxi_a/dT) dT/dt ]
/// with gradient energy a = eps sum_{a<b} gamma_ab |q_ab|^2,
/// q_ab = phi_a grad phi_b - phi_b grad phi_a, multi-obstacle potential
/// omega, Moelans interpolation h_a = phi_a^2 / sum phi^2 and parabolic grand
/// potentials omega_a(mu, T).

#include "core/params.h"
#include "core/temperature.h"
#include "util/fastmath.h"
#include "util/simplex.h"

namespace tpf::core {

/// Tiny positive threshold below which squared gradient norms are treated as
/// zero in the anti-trapping current (exact zeros occur in bulk; the
/// threshold only guards against denormal blow-up in fastInvSqrt).
inline constexpr double kGradTol = 1e-30;

// ---------------------------------------------------------------------------
// phi-sweep pieces
// ---------------------------------------------------------------------------

/// Normal component of da/dgrad(phi) at a staggered face between cells with
/// phase vectors pL (lower) and pR (upper) along one axis:
///   flux_a = -2 eps sum_{b != a} gamma_ab phiF_b (phiF_a dphi_b - phiF_b dphi_a)
/// evaluated with face averages phiF and the face-normal derivative dphi only
/// (this is what keeps the phi-sweep a D3C7 stencil).
inline void phiFaceFlux(const ModelConsts& mc, const double* pL, const double* pR,
                        double* flux) {
    double pf[N], dp[N];
    for (int a = 0; a < N; ++a) {
        pf[a] = 0.5 * (pL[a] + pR[a]);
        dp[a] = (pR[a] - pL[a]) * mc.invDx;
    }
    for (int a = 0; a < N; ++a) {
        double s = 0.0;
        for (int b = 0; b < N; ++b) {
            if (b == a) continue;
            const double q = pf[a] * dp[b] - pf[b] * dp[a];
            s += mc.gamma[a][b] * pf[b] * q;
        }
        flux[a] = -2.0 * mc.eps * s;
    }
}

/// da/dphi_a at the cell center from the cell-centered gradients g[d][a]:
///   2 eps sum_{b != a} gamma_ab (q_ab . grad phi_b).
inline void phiGradEnergyDeriv(const ModelConsts& mc, const double* p,
                               const double g[3][N], double* dadphi) {
    for (int a = 0; a < N; ++a) {
        double s = 0.0;
        for (int b = 0; b < N; ++b) {
            if (b == a) continue;
            double dot = 0.0;
            for (int d = 0; d < 3; ++d)
                dot += (p[a] * g[d][b] - p[b] * g[d][a]) * g[d][b];
            s += mc.gamma[a][b] * dot;
        }
        dadphi[a] = 2.0 * mc.eps * s;
    }
}

/// Multi-obstacle potential derivative:
///   domega/dphi_a = (16/pi^2) sum_{b != a} gamma_ab phi_b
///                   + gamma3 sum_{b<c, b,c != a} phi_b phi_c.
/// The third-order sum is expressed through the total pair sum P and the
/// phase sum S: sum_{b<c != a} phi_b phi_c = P - phi_a (S - phi_a).
inline void obstacleDeriv(const ModelConsts& mc, const double* p, double* dom) {
    const double S = ((p[0] + p[1]) + (p[2] + p[3]));
    double P = 0.0;
    for (int a = 0; a < N; ++a)
        for (int b = a + 1; b < N; ++b) P += p[a] * p[b];
    for (int a = 0; a < N; ++a) {
        double s = 0.0;
        for (int b = 0; b < N; ++b) {
            if (b == a) continue;
            s += mc.gamma[a][b] * p[b];
        }
        dom[a] = mc.w16 * s + mc.gamma3 * (P - p[a] * (S - p[a]));
    }
}

/// Grand potential of phase a at chemical potential mu = (mux, muy) using the
/// temperature-dependent slice values:
///   omega_a = -1/2 mu^T Kinv_a mu - mu . xi_a(T) + m_a (T - TE) + b_a.
inline double grandPotentialAt(const ModelConsts& mc, const SliceThermo& st,
                               int a, double mux, double muy) {
    const double quad = 0.5 * (mc.kinvA[a] * mux * mux +
                               2.0 * mc.kinvB[a] * mux * muy +
                               mc.kinvD[a] * muy * muy);
    return -quad - (mux * st.xix[a] + muy * st.xiy[a]) + st.om[a];
}

/// Driving force dpsi/dphi_a = (2 phi_a / s2) (omega_a - sum_b h_b omega_b)
/// with the Moelans weights h_b = phi_b^2 / s2. Vanishes identically at
/// simplex vertices (bulk), which makes the shortcut kernels exact.
inline void drivingForce(const ModelConsts& mc, const SliceThermo& st,
                         const double* p, double mux, double muy, double* dpsi) {
    double om[N], h[N];
    const double s2 = ((p[0] * p[0] + p[1] * p[1]) + (p[2] * p[2] + p[3] * p[3]));
    const double invS2 = 1.0 / s2;
    double omBar = 0.0;
    for (int a = 0; a < N; ++a) {
        om[a] = grandPotentialAt(mc, st, a, mux, muy);
        h[a] = p[a] * p[a] * invS2;
        omBar += om[a] * h[a];
    }
    for (int a = 0; a < N; ++a)
        dpsi[a] = 2.0 * p[a] * invS2 * (om[a] - omBar);
}

/// Assemble rhs_a, apply the Lagrange anti-symmetrization and the explicit
/// Euler update, then project onto the Gibbs simplex. Writes phi(t + dt).
inline void phiUpdateCell(const ModelConsts& mc, const SliceThermo& st,
                          const double* p, const double* div,
                          const double* dadphi, const double* dom,
                          const double* dpsi, double* out) {
    double rhs[N];
    for (int a = 0; a < N; ++a)
        rhs[a] = st.Tt * (div[a] - dadphi[a]) - st.Tt * mc.invEps * dom[a] -
                 dpsi[a];
    const double mean = 0.25 * ((rhs[0] + rhs[1]) + (rhs[2] + rhs[3]));
    for (int a = 0; a < N; ++a)
        out[a] = p[a] + mc.dt * mc.invTauEps[a] * (rhs[a] - mean);
    projectToSimplex4(out[0], out[1], out[2], out[3]);
}

// ---------------------------------------------------------------------------
// mu-sweep pieces
// ---------------------------------------------------------------------------

/// Moelans interpolation weights h_a = phi_a^2 / sum_b phi_b^2.
inline void moelansWeights(const double* p, double* h) {
    const double s2 = ((p[0] * p[0] + p[1] * p[1]) + (p[2] * p[2] + p[3] * p[3]));
    const double invS2 = 1.0 / s2;
    for (int a = 0; a < N; ++a) h[a] = p[a] * p[a] * invS2;
}

/// 2x2 symmetric susceptibility chi = sum_a h_a Kinv_a, entries (A, B; B, D).
inline void susceptibilityAt(const ModelConsts& mc, const double* h, double& A,
                             double& B, double& D) {
    A = B = D = 0.0;
    for (int a = 0; a < N; ++a) {
        A += h[a] * mc.kinvA[a];
        B += h[a] * mc.kinvB[a];
        D += h[a] * mc.kinvD[a];
    }
}

/// Gradient flux M(phi, T) grad mu (normal component) at a staggered face.
/// M = sum_a phiF_a D_a Kinv_a with the face-averaged phase vector.
inline void muGradFlux(const ModelConsts& mc, const double* pL, const double* pR,
                       double muLx, double muLy, double muRx, double muRy,
                       double& Fx, double& Fy) {
    double mA = 0.0, mB = 0.0, mD = 0.0;
    for (int a = 0; a < N; ++a) {
        const double pf = 0.5 * (pL[a] + pR[a]) * mc.Dphase[a];
        mA += pf * mc.kinvA[a];
        mB += pf * mc.kinvB[a];
        mD += pf * mc.kinvD[a];
    }
    const double gx = (muRx - muLx) * mc.invDx;
    const double gy = (muRy - muLy) * mc.invDx;
    Fx = mA * gx + mB * gy;
    Fy = mB * gx + mD * gy;
}

/// Inputs of the anti-trapping current at one staggered face along axis
/// \p axis: full face gradients of all phases (normal from the face pair,
/// transverse from averaged central differences — this is what pulls the
/// diagonal D3C19 neighbors into the mu-sweep).
struct FaceGradients {
    double g[3][N]; ///< g[d][a] = d phi_a / d x_d at the face
};

/// Anti-trapping current normal component at a staggered face (paper eq. 4):
///   J_at = (pi eps / 4) sum_{a != l} phiF_a h_l / sqrt(phiF_a phiF_l)
///          * dphi_a/dt * (n_a . n_l) * (c_l(mu) - c_a(mu)) n_a
/// Returns the (x, y) concentration components of J_at . e_axis.
inline void antiTrappingFlux(const ModelConsts& mc, const SliceThermo& stL,
                             const SliceThermo& stR, int axis,
                             const double* pfL, const double* pfR,
                             const double* dphidtL, const double* dphidtR,
                             const FaceGradients& fg, double mufx, double mufy,
                             double& Jx, double& Jy) {
    Jx = 0.0;
    Jy = 0.0;

    double pf[N], dpdt[N];
    for (int a = 0; a < N; ++a) {
        pf[a] = 0.5 * (pfL[a] + pfR[a]);
        dpdt[a] = 0.5 * (dphidtL[a] + dphidtR[a]);
    }

    // liquid gradient and Moelans weight at the face
    const double nl2 = fg.g[0][LIQ] * fg.g[0][LIQ] + fg.g[1][LIQ] * fg.g[1][LIQ] +
                       fg.g[2][LIQ] * fg.g[2][LIQ];
    if (nl2 <= kGradTol) return;
    const double invNl = fastInvSqrt(nl2);

    const double s2 =
        ((pf[0] * pf[0] + pf[1] * pf[1]) + (pf[2] * pf[2] + pf[3] * pf[3]));
    const double hl = pf[LIQ] * pf[LIQ] / s2;
    if (hl == 0.0) return;

    // face thermo values: average of the two adjacent slices (exact for the
    // linear xi(T); x/y faces pass the same slice twice)
    const double xilx = 0.5 * (stL.xix[LIQ] + stR.xix[LIQ]);
    const double xily = 0.5 * (stL.xiy[LIQ] + stR.xiy[LIQ]);

    for (int a = 0; a < N; ++a) {
        if (a == LIQ) continue;
        const double prod = pf[a] * pf[LIQ];
        if (prod <= 0.0) continue;
        const double na2 = fg.g[0][a] * fg.g[0][a] + fg.g[1][a] * fg.g[1][a] +
                           fg.g[2][a] * fg.g[2][a];
        if (na2 <= kGradTol) continue;
        const double invNa = fastInvSqrt(na2);

        const double ndot = (fg.g[0][a] * fg.g[0][LIQ] + fg.g[1][a] * fg.g[1][LIQ] +
                             fg.g[2][a] * fg.g[2][LIQ]) *
                            invNa * invNl;

        const double pref = mc.piQuarterEps * pf[a] * hl * fastInvSqrt(prod) *
                            dpdt[a] * ndot;

        // c_l(mu) - c_a(mu) = (xi_l - xi_a)(T) + (Kinv_l - Kinv_a) mu
        const double xiax = 0.5 * (stL.xix[a] + stR.xix[a]);
        const double xiay = 0.5 * (stL.xiy[a] + stR.xiy[a]);
        const double dKA = mc.kinvA[LIQ] - mc.kinvA[a];
        const double dKB = mc.kinvB[LIQ] - mc.kinvB[a];
        const double dKD = mc.kinvD[LIQ] - mc.kinvD[a];
        const double dcx = (xilx - xiax) + dKA * mufx + dKB * mufy;
        const double dcy = (xily - xiay) + dKB * mufx + dKD * mufy;

        const double nAxis = fg.g[axis][a] * invNa;
        Jx += pref * dcx * nAxis;
        Jy += pref * dcy * nAxis;
    }
}

/// Explicit Euler update of mu: solve chi dmu/dt = rhs and advance.
inline void muUpdateCell(const ModelConsts& mc, double chiA, double chiB,
                         double chiD, double rhsX, double rhsY, double mux,
                         double muy, double& outX, double& outY) {
    const double invDet = 1.0 / (chiA * chiD - chiB * chiB);
    const double dmux = (chiD * rhsX - chiB * rhsY) * invDet;
    const double dmuy = (chiA * rhsY - chiB * rhsX) * invDet;
    outX = mux + mc.dt * dmux;
    outY = muy + mc.dt * dmuy;
}

} // namespace tpf::core
