#include "core/voronoi.h"

#include <cmath>
#include <vector>

#include "util/fastmath.h"
#include "util/random.h"
#include "util/simplex.h"

namespace tpf::core {

namespace {

struct Seed {
    double x, y;
    int phase;
};

/// Global seed list — identical on every rank because it only depends on the
/// configuration (the paper's initialization phase computes the global block
/// setup once and distributes it).
std::vector<Seed> makeSeeds(const BlockForest& bf, const VoronoiConfig& cfg,
                            const std::array<double, 3>& fractions) {
    const Int3 g = bf.globalCells();
    const int per = cfg.seedsPerArea > 0 ? cfg.seedsPerArea : 12;
    const int count =
        std::max(3, (g.x / per) * std::max(1, g.y / per));

    Random rng(cfg.seed);
    std::vector<Seed> seeds;
    seeds.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        Seed s;
        s.x = rng.uniform(0.0, static_cast<double>(g.x));
        s.y = rng.uniform(0.0, static_cast<double>(g.y));
        const double r = rng.uniform();
        if (r < fractions[0])
            s.phase = 0;
        else if (r < fractions[0] + fractions[1])
            s.phase = 1;
        else
            s.phase = 2;
        seeds.push_back(s);
    }
    return seeds;
}

/// Squared distance under periodic wrapping in x and y.
double periodicDist2(double dx, double dy, double Lx, double Ly, bool px,
                     bool py) {
    if (px) {
        dx = std::abs(dx);
        if (dx > 0.5 * Lx) dx = Lx - dx;
    }
    if (py) {
        dy = std::abs(dy);
        if (dy > 0.5 * Ly) dy = Ly - dy;
    }
    return dx * dx + dy * dy;
}

} // namespace

void initVoronoi(SimBlock& b, const BlockForest& bf, const VoronoiConfig& cfg,
                 const thermo::TernarySystem& sys) {
    std::array<double, 3> fr = cfg.fractions;
    if (fr[0] + fr[1] + fr[2] <= 0.0) {
        const auto lf = sys.leverFractions();
        fr = lf.solid;
    }

    const auto seeds = makeSeeds(bf, cfg, fr);
    const Int3 g = bf.globalCells();
    const auto per = bf.periodic();
    const Vec2 muE = sys.muEut();

    Field<double>& phi = b.phiSrc;
    Field<double>& mu = b.muSrc;

    // Diffuse solid-liquid front: the obstacle model's compact sine profile
    // of width ~eps around the fill height avoids the large initial mu
    // transient a sharp front would cause. Interface width fixed at 4 cells
    // (the solver's default eps).
    const double w = 4.0;
    auto liquidFraction = [&](double gz) {
        const double s = (gz - static_cast<double>(cfg.fillHeight)) / w;
        if (s <= -0.5) return 0.0;
        if (s >= 0.5) return 1.0;
        return 0.5 * (1.0 + sinpiCompact(s));
    };

    forEachCell(phi.withGhosts(), [&](int x, int y, int z) {
        const double gx = static_cast<double>(b.origin.x + x) + 0.5;
        const double gy = static_cast<double>(b.origin.y + y) + 0.5;
        const double gz = static_cast<double>(b.origin.z + z) + 0.5;

        const double liq = liquidFraction(gz);
        double p[N] = {0.0, 0.0, 0.0, 0.0};
        p[LIQ] = liq;
        if (liq < 1.0) {
            // Nearest seed and nearest seed of a *different* phase: the
            // solid-solid boundary gets the same compact sine profile across
            // the Voronoi edge (sharp lateral boundaries would imprint a
            // long-lived chemical-potential transient into the solid, where
            // diffusion is frozen).
            double d1 = 1e300, d2 = 1e300;
            int phase1 = 0, phase2 = 0;
            for (const Seed& s : seeds) {
                const double d = std::sqrt(periodicDist2(
                    gx - s.x, gy - s.y, static_cast<double>(g.x),
                    static_cast<double>(g.y), per[0], per[1]));
                if (d < d1) {
                    if (phase1 != s.phase) {
                        d2 = d1;
                        phase2 = phase1;
                    }
                    d1 = d;
                    phase1 = s.phase;
                } else if (d < d2 && s.phase != phase1) {
                    d2 = d;
                    phase2 = s.phase;
                }
            }
            const double edgeDist = 0.5 * (d2 - d1); // >= 0, 0 on the edge
            const double t = std::min(edgeDist / w, 0.5);
            const double w1 = 0.5 * (1.0 + sinpiCompact(t));
            p[phase1] += (1.0 - liq) * w1;
            p[phase2] += (1.0 - liq) * (1.0 - w1);
        }
        projectToSimplex4(p[0], p[1], p[2], p[3]);
        for (int a = 0; a < N; ++a) phi(x, y, z, a) = p[a];
        mu(x, y, z, 0) = muE.x;
        mu(x, y, z, 1) = muE.y;
    });

    b.phiDst.copyFrom(b.phiSrc);
    b.muDst.copyFrom(b.muSrc);
}

} // namespace tpf::core
