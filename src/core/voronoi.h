#pragma once
/// \file voronoi.h
/// Initial condition: "solid nuclei at the bottom of a liquid filled domain
/// ... created by a Voronoi tesselation with respect to the given volume
/// fractions of the phases" (paper §2.1 / Figure 2).
///
/// Seeds are placed in the x-y plane with a deterministic RNG (identical on
/// every rank — the paper's setup phase computes global information once);
/// every cell below the fill height takes the phase of its nearest seed under
/// the periodic x-y metric, cells above are liquid. The phase of a seed is
/// drawn according to the target volume fractions.

#include <array>

#include "core/sim_block.h"
#include "thermo/system.h"

namespace tpf::core {

struct VoronoiConfig {
    int fillHeight = 12;     ///< solid fill height in cells (global z)
    int seedsPerArea = 0;    ///< 0: auto (one seed per ~12x12 cells)
    std::uint64_t seed = 42; ///< RNG seed (same on all ranks)
    /// Target volume fractions of the three solid phases; if all zero, the
    /// lever-rule fractions of \p sys are used.
    std::array<double, 3> fractions{0.0, 0.0, 0.0};
};

/// Fill phi/mu source fields (including ghosts) of \p b according to the
/// Voronoi initial condition. Deterministic given (cfg, global domain).
void initVoronoi(SimBlock& b, const BlockForest& bf, const VoronoiConfig& cfg,
                 const thermo::TernarySystem& sys);

} // namespace tpf::core
