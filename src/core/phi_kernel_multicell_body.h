/// \file phi_kernel_multicell_body.h
/// Width-generic multi-cell phi-sweep body (Figure 5 "four cells",
/// generalized: one SIMD vector holds the same phase of V::width consecutive
/// x-cells). NO include guard on purpose: included inside an anonymous
/// namespace with a `using V = <vector type>;` alias in scope — see
/// phi_kernel_cellwise_body.h for the linkage rationale and the prerequisite
/// includes.
///
/// Remainder handling for nx % V::width != 0 (still requiring nx % 4 == 0 and
/// nx >= V::width): the last x-group is shifted down to start at nx - width
/// and overlaps the previous group. The sweep is a pure overwrite of phiDst
/// from unmodified inputs (phiSrc, muSrc), so recomputing the overlapped
/// cells reproduces their bits exactly — including across the bulk-shortcut
/// branch, whose taken/not-taken decision is group-shape-dependent but whose
/// two paths agree bitwise for bulk cells (the equivalence the existing
/// four-cell kernel already relies on; locked down by
/// tests/test_kernel_equivalence.cpp at nx % 8 == 4).

/// Face flux for V::width consecutive faces along one axis, per phase a:
/// inputs are per-phase vectors over the cell pairs.
inline void faceFluxM(const ModelConsts& mc, const V pL[N], const V pR[N],
                      V flux[N]) {
    const V half = V::broadcast(0.5);
    const V invDx = V::broadcast(mc.invDx);
    V pf[N], dp[N];
    for (int a = 0; a < N; ++a) {
        pf[a] = half * (pL[a] + pR[a]);
        dp[a] = (pR[a] - pL[a]) * invDx;
    }
    for (int a = 0; a < N; ++a) {
        V s = V::zero();
        for (int bph = 0; bph < N; ++bph) {
            if (bph == a) continue;
            const V q = pf[a] * dp[bph] - pf[bph] * dp[a];
            s += V::broadcast(mc.gamma[a][bph]) * pf[bph] * q;
        }
        flux[a] = V::broadcast(-2.0 * mc.eps) * s;
    }
}

inline void loadPhaseM(const Field<double>& f, int x, int y, int z, V out[N]) {
    for (int a = 0; a < N; ++a) out[a] = V::loadu(f.ptr(x, y, z, a));
}

void phiSweepMultiCellBody(SimBlock& blk, const StepContext& ctx) {
    constexpr int W = V::width;
    const ModelConsts& mc = ctx.mc;
    TPF_ASSERT(ctx.tz != nullptr, "multi-cell phi kernel requires a TzCache");
    TPF_ASSERT(blk.phiSrc.layout() == Layout::fzyx,
               "multi-cell vectorization requires the fzyx (SoA) layout");
    TPF_ASSERT(blk.size.x % 4 == 0 && blk.size.x >= W,
               "multi-cell vectorization requires nx divisible by 4 and nx >= width");
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.phiDst;
    const int nx = blk.size.x, ny = blk.size.y, nz = blk.size.z;
    const V one = V::broadcast(1.0);

    for (int z = ctx.zLo(); z < ctx.zHi(nz); ++z) {
        const SliceThermo st = ctx.tz->at(z);
        const V Tt = V::broadcast(st.Tt);
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; x += W) {
                // Overlapped tail group (see file comment).
                const int xx = x + W <= nx ? x : nx - W;
                V pC[N], pW[N], pE[N], pS[N], pNn[N], pB[N], pT[N];
                loadPhaseM(P, xx, y, z, pC);
                loadPhaseM(P, xx - 1, y, z, pW);
                loadPhaseM(P, xx + 1, y, z, pE);
                loadPhaseM(P, xx, y - 1, z, pS);
                loadPhaseM(P, xx, y + 1, z, pNn);
                loadPhaseM(P, xx, y, z - 1, pB);
                loadPhaseM(P, xx, y, z + 1, pT);

                // Shortcut only if *all* cells of the group are bulk (paper:
                // "can only take these shortcuts if the condition is true for
                // all four cells").
                {
                    V::Mask bulkAll =
                        (pC[0] == one) & (pW[0] == one) & (pE[0] == one) &
                        (pS[0] == one) & (pNn[0] == one) & (pB[0] == one) &
                        (pT[0] == one);
                    for (int a = 1; a < N; ++a) {
                        const auto bulkA = (pC[a] == one) & (pW[a] == one) &
                                           (pE[a] == one) & (pS[a] == one) &
                                           (pNn[a] == one) & (pB[a] == one) &
                                           (pT[a] == one);
                        bulkAll = bulkAll | bulkA;
                    }
                    if (bulkAll.all()) {
                        for (int a = 0; a < N; ++a)
                            pC[a].storeu(Dst.ptr(xx, y, z, a));
                        continue;
                    }
                }

                V fxm[N], fxp[N], fym[N], fyp[N], fzm[N], fzp[N];
                faceFluxM(mc, pW, pC, fxm);
                faceFluxM(mc, pC, pE, fxp);
                faceFluxM(mc, pS, pC, fym);
                faceFluxM(mc, pC, pNn, fyp);
                faceFluxM(mc, pB, pC, fzm);
                faceFluxM(mc, pC, pT, fzp);

                const V invDx = V::broadcast(mc.invDx);
                const V hx = V::broadcast(mc.halfInvDx);

                V div[N], g0[N], g1[N], g2[N];
                for (int a = 0; a < N; ++a) {
                    div[a] = (((fxp[a] - fxm[a]) + (fyp[a] - fym[a])) +
                              (fzp[a] - fzm[a])) *
                             invDx;
                    g0[a] = (pE[a] - pW[a]) * hx;
                    g1[a] = (pNn[a] - pS[a]) * hx;
                    g2[a] = (pT[a] - pB[a]) * hx;
                }

                // da/dphi.
                V dad[N];
                for (int a = 0; a < N; ++a) {
                    V s = V::zero();
                    for (int bph = 0; bph < N; ++bph) {
                        if (bph == a) continue;
                        const V dot = (pC[a] * g0[bph] - pC[bph] * g0[a]) * g0[bph] +
                                      (pC[a] * g1[bph] - pC[bph] * g1[a]) * g1[bph] +
                                      (pC[a] * g2[bph] - pC[bph] * g2[a]) * g2[bph];
                        s += V::broadcast(mc.gamma[a][bph]) * dot;
                    }
                    dad[a] = V::broadcast(2.0 * mc.eps) * s;
                }

                // Obstacle.
                const V S = ((pC[0] + pC[1]) + (pC[2] + pC[3]));
                V Pp = V::zero();
                for (int a = 0; a < N; ++a)
                    for (int bph = a + 1; bph < N; ++bph) Pp += pC[a] * pC[bph];
                V dom[N];
                for (int a = 0; a < N; ++a) {
                    V s = V::zero();
                    for (int bph = 0; bph < N; ++bph) {
                        if (bph == a) continue;
                        s += V::broadcast(mc.gamma[a][bph]) * pC[bph];
                    }
                    dom[a] = V::broadcast(mc.w16) * s +
                             V::broadcast(mc.gamma3) *
                                 (Pp - pC[a] * (S - pC[a]));
                }

                // Driving force.
                const V mux = V::loadu(Mu.ptr(xx, y, z, 0));
                const V muy = V::loadu(Mu.ptr(xx, y, z, 1));
                const V s2 = ((pC[0] * pC[0] + pC[1] * pC[1]) +
                              (pC[2] * pC[2] + pC[3] * pC[3]));
                const V invS2 = one / s2;
                V om[N], h[N];
                V omBar = V::zero();
                for (int a = 0; a < N; ++a) {
                    const V quad =
                        V::broadcast(0.5) *
                        (V::broadcast(mc.kinvA[a]) * mux * mux +
                         V::broadcast(2.0 * mc.kinvB[a]) * mux * muy +
                         V::broadcast(mc.kinvD[a]) * muy * muy);
                    om[a] = -quad -
                            (mux * V::broadcast(st.xix[a]) +
                             muy * V::broadcast(st.xiy[a])) +
                            V::broadcast(st.om[a]);
                    h[a] = pC[a] * pC[a] * invS2;
                    omBar += om[a] * h[a];
                }

                V prop[N];
                V rhs[N];
                for (int a = 0; a < N; ++a) {
                    const V dpsi = V::broadcast(2.0) * pC[a] * invS2 *
                                   (om[a] - omBar);
                    rhs[a] = Tt * (div[a] - dad[a]) -
                             Tt * V::broadcast(mc.invEps) * dom[a] - dpsi;
                }
                const V mean = V::broadcast(0.25) *
                               ((rhs[0] + rhs[1]) + (rhs[2] + rhs[3]));
                for (int a = 0; a < N; ++a)
                    prop[a] = pC[a] + V::broadcast(mc.dt) *
                                          V::broadcast(mc.invTauEps[a]) *
                                          (rhs[a] - mean);

                simd::projectToSimplex4Lanes(prop[0], prop[1], prop[2],
                                             prop[3]);
                for (int a = 0; a < N; ++a)
                    prop[a].storeu(Dst.ptr(xx, y, z, a));
            }
        }
    }
}
