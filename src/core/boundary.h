#pragma once
/// \file boundary.h
/// Domain-boundary handling: Dirichlet and Neumann ghost-layer fills for the
/// non-periodic axes (Figure 2 of the paper: periodic laterally, Neumann at
/// the solid bottom, Dirichlet at the liquid top).
///
/// Application is staged per axis (x over interior y/z, y over x-extended
/// interior z, z over fully extended x/y) so that edge and corner ghost
/// regions compose correctly with the periodic exchange — see the discussion
/// in comm/exchange.h.

#include <array>
#include <vector>

#include "grid/block_forest.h"
#include "grid/field.h"

namespace tpf::util {
class ThreadPool;
}

namespace tpf::core {

enum class BCType {
    None,      ///< periodic axis — handled by the ghost exchange
    Neumann,   ///< zero gradient: ghost = adjacent interior cell
    Dirichlet, ///< fixed face value v: ghost = 2 v - interior (face-centered)
};

/// Boundary configuration of one field: one entry per face in the order
/// -x, +x, -y, +y, -z, +z; `value` holds the per-component Dirichlet values.
struct FieldBCs {
    std::array<BCType, 6> kind{BCType::None, BCType::None, BCType::None,
                               BCType::None, BCType::None, BCType::None};
    std::array<std::vector<double>, 6> value{};

    static FieldBCs allNeumann() {
        FieldBCs b;
        b.kind.fill(BCType::Neumann);
        return b;
    }
};

/// Apply the configured boundary conditions to the ghost layers of \p f for
/// the block \p blockIdx of \p bf. Faces interior to the domain (where a
/// neighbor block exists) are skipped.
///
/// With a \p pool the fill of each face fans out over its largest extent
/// (faces themselves stay sequential — the staged x/y/z composition reads
/// ghosts written by earlier faces). Every ghost cell is written exactly
/// once from interior values of the same face, so the result is identical
/// for any thread count.
void applyBoundaries(Field<double>& f, const BlockForest& bf, int blockIdx,
                     const FieldBCs& bc, util::ThreadPool* pool = nullptr);

} // namespace tpf::core
