#pragma once
/// \file slab_sweep.h
/// Slab-parallel kernel execution: splits a sweep interval into z-slabs and
/// distributes them over a util::ThreadPool, so one vmpi rank can use several
/// cores for the phi/mu sweeps (hybrid ranks x threads mode).
///
/// Determinism guarantee (relied upon by the solver equivalence tests and
/// documented in docs/KERNELS.md): the partition is a function of the
/// interval ALONE — never of the thread count — and every slab is computed by
/// an independent kernel invocation whose staggered carries restart at the
/// slab bottom with the exact same face-flux expression the full sweep would
/// have buffered. Fields produced with any thread count are therefore
/// bitwise identical; threads only change which core computes which slab.

#include <functional>
#include <vector>

#include "grid/cell_interval.h"
#include "util/thread_pool.h"

namespace tpf::core {

/// z-planes per slab. Small enough that a 48-cell block still fans out over
/// several cores, large enough that the per-slab carry restart (one extra
/// face-flux plane) stays ~1-2% of the sweep. Fixed — see the determinism
/// guarantee above.
inline constexpr int kSlabHeight = 8;

/// Split \p ci into z-slabs of kSlabHeight planes (the last slab takes the
/// remainder). Slabs are returned bottom-up, are pairwise disjoint, and cover
/// \p ci exactly. An empty interval yields no slabs.
std::vector<CellInterval> slabPartition(const CellInterval& ci);

/// Run \p fn once per slab of \p ci, distributing slabs over \p pool
/// (nullptr or a 1-thread pool: serial, in bottom-up order). Blocks until
/// every slab completed; exceptions propagate per ThreadPool::parallelFor.
void parallelForSlabs(util::ThreadPool* pool, const CellInterval& ci,
                      const std::function<void(const CellInterval&)>& fn);

/// Convenience overload for one-shot callers (tests, benches): spins up a
/// transient pool of \p nthreads. Long-lived callers (Solver) keep a
/// persistent pool instead — thread creation per sweep is not free.
void parallelForSlabs(const CellInterval& ci, int nthreads,
                      const std::function<void(const CellInterval&)>& fn);

} // namespace tpf::core
