#pragma once
/// \file moving_window.h
/// Moving-window technique (paper §3.3): the effective domain tracks the
/// solidification front; solidified material leaves through the bottom, fresh
/// melt enters at the top, and the accumulated offset feeds the analytic
/// temperature so the eutectic isotherm stays inside the window.

#include "core/sim_block.h"
#include "thermo/system.h"

namespace tpf::util {
class ThreadPool;
}

namespace tpf::core {

struct MovingWindowConfig {
    bool enabled = false;
    /// Shift whenever the front exceeds this fraction of the global height.
    double triggerFraction = 0.55;
    /// Steps between front-position checks.
    int checkEvery = 10;
};

/// Highest global z (cell index) of any cell with liquid fraction <= 0.5 in
/// the local blocks; -1 if none. Reduce with max across ranks.
int localSolidFrontZ(const std::vector<std::unique_ptr<SimBlock>>& blocks);

/// Shift phiSrc/muSrc of \p b down by one cell in z. The new top interior
/// slice is taken from the z+1 ghost layer (valid neighbor data after a
/// ghost exchange); blocks at the global top get fresh liquid at the eutectic
/// chemical potential instead.
///
/// The shift is independent per (x, y) column; with a \p pool the y-rows fan
/// out over the threads (pure copies — bitwise identical for any count).
void shiftDownOneCell(SimBlock& b, const BlockForest& bf,
                      const thermo::TernarySystem& sys,
                      util::ThreadPool* pool = nullptr);

} // namespace tpf::core
