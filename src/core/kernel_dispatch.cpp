#include "core/kernel_dispatch.h"

#include <cstdlib>

namespace tpf::core {

namespace {

/// CPU support check per target name. Compiled-in targets whose ISA the
/// binary was *built* for unconditionally (e.g. -march=native) are still
/// checked — the dispatch table must only offer what the machine can run.
bool cpuSupports(const KernelTarget& t) {
    const std::string name = t.name;
    if (name == "scalar") return true;
#if defined(__GNUC__) || defined(__clang__)
    if (name == "sse2") return true; // baseline on x86-64; TU gated otherwise
    if (name == "avx2")
        return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    if (name == "avx512")
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma") &&
               __builtin_cpu_supports("avx512f");
    return false;
#else
    return name == "sse2";
#endif
}

const KernelTarget* widestAvailable() {
    const auto all = availableKernelTargets();
    return all.back(); // narrowest first; scalar guarantees non-empty
}

/// Mutable selection + one-time TPF_KERNEL resolution.
const KernelTarget*& selection() {
    static const KernelTarget* sel = [] {
        const KernelTarget* def = widestAvailable();
        if (const char* env = std::getenv("TPF_KERNEL")) {
            KernelSpec spec;
            std::string err;
            if (parseKernelSpec(env, spec, err) && spec.target != "auto") {
                for (const KernelTarget* t : availableKernelTargets())
                    if (spec.target == t->name) return t;
                // Unsupported on this machine: fall through to the default
                // rather than aborting — results are bitwise identical
                // across targets anyway.
            }
        }
        return def;
    }();
    return sel;
}

} // namespace

std::vector<const KernelTarget*> availableKernelTargets() {
    std::vector<const KernelTarget*> out;
    for (const KernelTarget* t :
         {kernelTargetScalar(), kernelTargetSse2(), kernelTargetAvx2(),
          kernelTargetAvx512()})
        if (t != nullptr && cpuSupports(*t)) out.push_back(t);
    return out;
}

const KernelTarget* activeKernelTarget() { return selection(); }

bool setKernelTarget(const std::string& name) {
    if (name == "auto") {
        selection() = widestAvailable();
        return true;
    }
    for (const KernelTarget* t : availableKernelTargets()) {
        if (name == t->name) {
            selection() = t;
            return true;
        }
    }
    return false;
}

bool parseKernelSpec(const std::string& spec, KernelSpec& out,
                     std::string& err) {
    KernelSpec parsed;
    bool haveSchedule = false, haveTarget = false;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t colon = spec.find(':', pos);
        const std::string tok =
            spec.substr(pos, colon == std::string::npos ? std::string::npos
                                                        : colon - pos);
        pos = colon == std::string::npos ? spec.size() + 1 : colon + 1;

        if (tok == "split" || tok == "fused") {
            if (haveSchedule) {
                err = "kernel spec '" + spec + "': duplicate schedule token";
                return false;
            }
            parsed.schedule = tok == "fused" ? SweepSchedule::Fused
                                             : SweepSchedule::Split;
            haveSchedule = true;
        } else if (tok == "auto" || tok == "scalar" || tok == "sse2" ||
                   tok == "avx2" || tok == "avx512") {
            if (haveTarget) {
                err = "kernel spec '" + spec + "': duplicate target token";
                return false;
            }
            parsed.target = tok;
            haveTarget = true;
        } else {
            err = "kernel spec '" + spec + "': unknown token '" + tok +
                  "' (expected split|fused or "
                  "auto|scalar|sse2|avx2|avx512)";
            return false;
        }
    }
    out = parsed;
    return true;
}

} // namespace tpf::core
