#pragma once
/// \file solver.h
/// The directional-solidification solver: owns the block forest, per-block
/// fields, ghost-exchange schemes, boundary conditions, temperature, moving
/// window and time loop, and executes the paper's Algorithm 1 (plain) or
/// Algorithm 2 (communication hiding).
///
/// Boundary setup (paper Figure 2): periodic in x and y, Neumann at the
/// bottom (solid), Dirichlet at the top (fresh melt at the eutectic chemical
/// potential), analytic temperature gradient moving in +z.

#include <array>
#include <memory>
#include <vector>

#include "comm/exchange.h"
#include "core/boundary.h"
#include "core/kernels.h"
#include "core/moving_window.h"
#include "core/regions.h"
#include "core/slab_sweep.h"
#include "core/timeloop.h"
#include "core/voronoi.h"
#include "thermo/agalcu.h"
#include "util/thread_pool.h"
#include "vmpi/comm.h"

namespace tpf::core {

struct SolverConfig {
    Int3 globalCells{48, 48, 96};
    /// Block size; {0,0,0} means a single block spanning the whole domain
    /// (serial runs). Multi-rank runs need at least one block per rank.
    Int3 blockSize{0, 0, 0};
    std::array<bool, 3> periodic{true, true, false};

    Layout phiLayout = Layout::fzyx;
    Layout muLayout = Layout::fzyx;

    ModelParams model = ModelParams::defaults();

    PhiKernelKind phiKernel = PhiKernelKind::SimdTzStagCut;
    MuKernelKind muKernel = MuKernelKind::SimdTzStagCut;

    /// Split: phi sweep, phi exchange, mu sweep (Algorithm 1/2). Fused: the
    /// phi and mu sweeps interleave over the z-slab partition so fresh phi is
    /// consumed while cache-resident (core/fused_sweep.h). Bitwise identical
    /// to Split; requires overlapPhi == false and a single block in x and y.
    SweepSchedule schedule = SweepSchedule::Split;

    /// Communication hiding (Algorithm 2). The paper's best configuration is
    /// mu-overlap only: hiding the phi communication requires the split
    /// mu-sweep whose overhead exceeds the gain.
    bool overlapPhi = false;
    bool overlapMu = false;

    /// Intra-rank threads for the kernel/boundary/window sweeps (hybrid
    /// ranks x threads mode). 1 = serial rank. Results are bitwise
    /// independent of this value — see core/slab_sweep.h.
    int threads = 1;

    VoronoiConfig init;
    MovingWindowConfig window;
};

class Solver {
public:
    /// \param comm communicator (nullptr: serial, single rank).
    Solver(SolverConfig cfg, vmpi::Comm* comm = nullptr);

    /// Voronoi fill, initial communication and boundary handling.
    void initialize();

    /// One time step (Algorithm 1 or 2 depending on the overlap flags).
    void step();
    void run(int steps);

    // --- diagnostics (collective calls: all ranks must participate) ---

    /// Global mean of each order parameter.
    std::array<double, N> phaseFractions();
    /// Mean of the solid fractions normalized over solids only (excluding
    /// liquid); matches thermo::LeverFractions when solidification finished.
    std::array<double, 3> solidFractions();
    /// Highest global z that contains solid (front position), -1 if none.
    int frontPosition();
    /// Global extrema of |mu - muEut| (diagnostic for stability tests).
    double maxMuDeviation();

    // --- accessors ---
    double time() const { return time_; }
    double windowOffsetCells() const { return windowOffset_; }
    long long stepsDone() const { return loop_.steps(); }
    const BlockForest& forest() const { return bf_; }
    std::vector<std::unique_ptr<SimBlock>>& localBlocks() { return blocks_; }
    const std::vector<std::unique_ptr<SimBlock>>& localBlocks() const {
        return blocks_;
    }
    const SolverConfig& config() const { return cfg_; }
    const thermo::TernarySystem& system() const { return sys_; }
    const FrozenTemperature& temperature() const { return temp_; }
    Timeloop& timeloop() { return loop_; }
    GhostExchange& phiExchange() { return *phiEx_; }
    GhostExchange& muExchange() { return *muEx_; }
    vmpi::Comm* comm() { return comm_; }
    /// Intra-rank sweep pool (nullptr when cfg.threads == 1). Shared with
    /// post-step observers so in-situ work — e.g. the mesh-extraction
    /// pipeline — fans out over the same workers as the kernel sweeps.
    util::ThreadPool* pool() { return pool_.get(); }

    /// Restore state (used by checkpointing): fields are assumed loaded;
    /// re-synchronizes ghosts and sets the clocks *and* the timeloop step
    /// counter (step-keyed cadences like the window check must resume, not
    /// restart, for a restarted run to replay an uninterrupted one exactly).
    void restore(double time, double windowOffset, long long steps = 0);

    /// Check the moving-window trigger and shift if needed (also called
    /// automatically every window.checkEvery steps when enabled).
    void maybeShiftWindow();

    /// Register a named functor that runs at the end of every time step,
    /// after the ping-pong swap — it sees the completed step's phiSrc/muSrc
    /// and the already-advanced time(). \p fn receives the global
    /// completed-step count *including* the step just finished, so cadences
    /// keyed on it resume correctly across a checkpoint restart (the counter
    /// is restored by restore()). In multi-rank runs every rank must
    /// register the same hooks in the same order; a hook performing
    /// collectives (e.g. the in-situ analysis pipeline) relies on that. The
    /// callee must outlive the solver's stepping.
    void addPostStepHook(const std::string& name,
                         std::function<void(long long)> fn);

private:
    void buildTimeloop();
    void communicateAll(); ///< full ghost sync + boundary handling of src fields
    StepContext makeContext(std::size_t blockSlot) const;
    /// Slab-parallel phi/mu sweep of one block (serial when pool_ is null).
    void sweepPhi(std::size_t blockSlot, SimBlock& b);
    void sweepMu(std::size_t blockSlot, SimBlock& b, MuSweepPart part);
    /// Once-per-step muSrc ghost preparation of the fused schedule: waits for
    /// the overlapMu exchange and applies the mu boundaries before the first
    /// mu slab (wherever in the pipeline that happens to be). Idempotent;
    /// fusedMuReady_ is reset at the start of each fused sweep.
    void fusedMuPrep();

    SolverConfig cfg_;
    vmpi::Comm* comm_;
    thermo::TernarySystem sys_;
    BlockForest bf_;
    FrozenTemperature temp_;

    std::vector<std::unique_ptr<SimBlock>> blocks_;
    std::vector<TzCache> tz_;
    std::unique_ptr<util::ThreadPool> pool_; ///< created when cfg.threads > 1

    std::unique_ptr<GhostExchange> phiEx_; ///< on phiDst (D3C19)
    std::unique_ptr<GhostExchange> muEx_;  ///< on muDst/muSrc (D3C7)

    FieldBCs phiBC_, muBC_;
    Timeloop loop_;

    double time_ = 0.0;
    double windowOffset_ = 0.0;
    bool initialized_ = false;
    bool fusedMuReady_ = false;
};

} // namespace tpf::core
