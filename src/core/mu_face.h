#pragma once
/// \file mu_face.h
/// Staggered-face flux computation of the mu-sweep, shared by the reference
/// and the optimized scalar kernel variants (the SIMD kernels mirror these
/// expressions lane-wise). The flux at a face is (M grad mu - J_at) . n.

#include "core/model_common.h"
#include "grid/field.h"

namespace tpf::core {

inline void loadPhiCell(const Field<double>& f, int x, int y, int z, double* p) {
    for (int a = 0; a < N; ++a) p[a] = f(x, y, z, a);
}

/// Face gradients of all phases at the staggered face between L and R along
/// \p axis: normal component from the face pair, transverse components from
/// averaged central differences of the two adjacent cells (D3C19 accesses).
inline FaceGradients muFaceGradients(const ModelConsts& mc,
                                     const Field<double>& P, int axis, int xL,
                                     int yL, int zL) {
    const int ex[3] = {1, 0, 0};
    const int ey[3] = {0, 1, 0};
    const int ez[3] = {0, 0, 1};
    const int xR = xL + ex[axis], yR = yL + ey[axis], zR = zL + ez[axis];

    FaceGradients fg;
    for (int a = 0; a < N; ++a)
        fg.g[axis][a] = (P(xR, yR, zR, a) - P(xL, yL, zL, a)) * mc.invDx;

    for (int e = 0; e < 3; ++e) {
        if (e == axis) continue;
        const int dx = ex[e], dy = ey[e], dz = ez[e];
        for (int a = 0; a < N; ++a) {
            const double cdL =
                (P(xL + dx, yL + dy, zL + dz, a) - P(xL - dx, yL - dy, zL - dz, a));
            const double cdR =
                (P(xR + dx, yR + dy, zR + dz, a) - P(xR - dx, yR - dy, zR - dz, a));
            fg.g[e][a] = 0.5 * (cdL + cdR) * mc.halfInvDx;
        }
    }
    return fg;
}

/// Flux (M grad mu - J_at) . n at the face between cell L = (xL,yL,zL) and
/// its upper neighbor along \p axis.
/// \param includeGrad include the M grad mu part (off in NeighborOnly sweeps)
/// \param includeAt   include the anti-trapping part (off in LocalOnly sweeps)
/// \param shortcut    apply the exact face-level J_at skip: a face whose two
///                    cells are both pure liquid or both liquid-free carries
///                    no anti-trapping flux (this check is what the paper
///                    describes as testing "critical subexpressions for
///                    zeros" before evaluating the expensive J_at).
inline void muFaceFluxAt(const ModelConsts& mc, const Field<double>& P,
                         const Field<double>& Pd, const Field<double>& Mu,
                         const SliceThermo& stL, const SliceThermo& stR,
                         int axis, int xL, int yL, int zL, bool includeGrad,
                         bool includeAt, bool shortcut, double& Fx, double& Fy) {
    const int ex[3] = {1, 0, 0};
    const int ey[3] = {0, 1, 0};
    const int ez[3] = {0, 0, 1};
    const int xR = xL + ex[axis], yR = yL + ey[axis], zR = zL + ez[axis];

    double pL[N], pR[N];
    loadPhiCell(P, xL, yL, zL, pL);
    loadPhiCell(P, xR, yR, zR, pR);

    const double muLx = Mu(xL, yL, zL, 0), muLy = Mu(xL, yL, zL, 1);
    const double muRx = Mu(xR, yR, zR, 0), muRy = Mu(xR, yR, zR, 1);

    Fx = 0.0;
    Fy = 0.0;
    if (includeGrad) muGradFlux(mc, pL, pR, muLx, muLy, muRx, muRy, Fx, Fy);

    if (includeAt && mc.antitrapping) {
        if (shortcut) {
            const double ll = pL[LIQ], lr = pR[LIQ];
            if ((ll == 0.0 && lr == 0.0) || (ll == 1.0 && lr == 1.0)) return;
        }
        double pdL[N], pdR[N], dtL[N], dtR[N];
        loadPhiCell(Pd, xL, yL, zL, pdL);
        loadPhiCell(Pd, xR, yR, zR, pdR);
        for (int a = 0; a < N; ++a) {
            dtL[a] = (pdL[a] - pL[a]) * mc.invDt;
            dtR[a] = (pdR[a] - pR[a]) * mc.invDt;
        }
        const FaceGradients fg = muFaceGradients(mc, P, axis, xL, yL, zL);
        double Jx, Jy;
        antiTrappingFlux(mc, stL, stR, axis, pL, pR, dtL, dtR, fg,
                         0.5 * (muLx + muRx), 0.5 * (muLy + muRy), Jx, Jy);
        Fx -= Jx;
        Fy -= Jy;
    }
}

/// Cell-local part of the mu update shared by all scalar variants: sources,
/// susceptibility solve, explicit Euler step / accumulation.
///
/// The susceptibility and the dc/dT source use the *new* interpolation
/// weights h(phi_dst). With c linear in mu this makes the discrete update
/// exactly conservative:
///   c(phi_dst, mu_dst, T_new) - c(phi_src, mu_src, T_old)
///     = chi(phi_dst) dmu + sum_a c_a(mu_src, T_old)(hD_a - hS_a)
///       + sum_a hD_a (xi_a(T_new) - xi_a(T_old))
/// so solving chi(phi_dst) dmu = dt div F - (the two source sums) telescopes
/// the total concentration over any flux-closed domain.
inline void muCellFinish(const ModelConsts& mc, const SliceThermo& stC,
                         const Field<double>& P, const Field<double>& Pd,
                         const Field<double>& Mu, Field<double>& Dst, int x,
                         int y, int z, double divX, double divY,
                         bool applyOnDst) {
    double pD[N], hD[N];
    loadPhiCell(Pd, x, y, z, pD);
    moelansWeights(pD, hD);

    double rhsX = divX, rhsY = divY;
    if (!applyOnDst) {
        double pC[N], hS[N];
        loadPhiCell(P, x, y, z, pC);
        moelansWeights(pC, hS);

        const double mux = Mu(x, y, z, 0), muy = Mu(x, y, z, 1);
        double src1X = 0.0, src1Y = 0.0, src2X = 0.0, src2Y = 0.0;
        for (int a = 0; a < N; ++a) {
            const double cax = stC.xix[a] + mc.kinvA[a] * mux + mc.kinvB[a] * muy;
            const double cay = stC.xiy[a] + mc.kinvB[a] * mux + mc.kinvD[a] * muy;
            const double dh = (hD[a] - hS[a]) * mc.invDt;
            src1X -= cax * dh;
            src1Y -= cay * dh;
            src2X -= hD[a] * mc.dxidTx[a] * mc.dTdt;
            src2Y -= hD[a] * mc.dxidTy[a] * mc.dTdt;
        }
        rhsX += src1X + src2X;
        rhsY += src1Y + src2Y;
    }

    double chiA, chiB, chiD;
    susceptibilityAt(mc, hD, chiA, chiB, chiD);

    if (!applyOnDst) {
        double outX, outY;
        muUpdateCell(mc, chiA, chiB, chiD, rhsX, rhsY, Mu(x, y, z, 0),
                     Mu(x, y, z, 1), outX, outY);
        Dst(x, y, z, 0) = outX;
        Dst(x, y, z, 1) = outY;
    } else {
        double addX, addY;
        muUpdateCell(mc, chiA, chiB, chiD, rhsX, rhsY, 0.0, 0.0, addX, addY);
        Dst(x, y, z, 0) += addX;
        Dst(x, y, z, 1) += addY;
    }
}

} // namespace tpf::core
