#include "core/kernels.h"

#include "core/kernel_dispatch.h"

namespace tpf::core {

namespace {

/// Vectorized sweeps go through the runtime-selected instruction-set target
/// (core/kernel_dispatch.h). The cellwise phi body is always 4-wide; the
/// multi-cell bodies need nx >= target width, below which the compile-time
/// Vec4d entry points take over (bitwise identical — the targets only differ
/// in instruction encoding, never in arithmetic).
void dispatchPhiCellwise(SimBlock& b, const StepContext& ctx, bool useTz,
                         bool useStag, bool shortcuts) {
    activeKernelTarget()->phiCellwise(b, ctx, useTz, useStag, shortcuts);
}

void dispatchPhiMultiCell(SimBlock& b, const StepContext& ctx) {
    const KernelTarget* t = activeKernelTarget();
    if (b.size.x >= t->width)
        t->phiMultiCell(b, ctx);
    else
        phiSweepSimdFourCell(b, ctx);
}

void dispatchMuMultiCell(SimBlock& b, const StepContext& ctx, bool useTz,
                         bool useStag, bool shortcuts, MuSweepPart part) {
    const KernelTarget* t = activeKernelTarget();
    if (b.size.x >= t->width)
        t->muMultiCell(b, ctx, useTz, useStag, shortcuts, part);
    else
        muSweepSimdFourCell(b, ctx, useTz, useStag, shortcuts, part);
}

} // namespace

void runPhiKernel(PhiKernelKind k, SimBlock& b, const StepContext& ctx) {
    switch (k) {
        case PhiKernelKind::General: phiSweepGeneral(b, ctx); return;
        case PhiKernelKind::Basic: phiSweepBasic(b, ctx); return;
        case PhiKernelKind::ScalarTzStag:
            phiSweepScalarOpt(b, ctx, /*shortcuts=*/false);
            return;
        case PhiKernelKind::ScalarTzStagCut:
            phiSweepScalarOpt(b, ctx, /*shortcuts=*/true);
            return;
        case PhiKernelKind::Simd:
            dispatchPhiCellwise(b, ctx, false, false, false);
            return;
        case PhiKernelKind::SimdTz:
            dispatchPhiCellwise(b, ctx, true, false, false);
            return;
        case PhiKernelKind::SimdTzStag:
            dispatchPhiCellwise(b, ctx, true, true, false);
            return;
        case PhiKernelKind::SimdTzStagCut:
            dispatchPhiCellwise(b, ctx, true, true, true);
            return;
        case PhiKernelKind::SimdFourCell: dispatchPhiMultiCell(b, ctx); return;
    }
    TPF_ASSERT(false, "unknown phi kernel kind");
}

void runMuKernel(MuKernelKind k, SimBlock& b, const StepContext& ctx,
                 MuSweepPart part) {
    switch (k) {
        case MuKernelKind::General:
            TPF_ASSERT(part == MuSweepPart::Full,
                       "General mu kernel supports only full sweeps");
            muSweepGeneral(b, ctx);
            return;
        case MuKernelKind::Basic: muSweepBasic(b, ctx, part); return;
        case MuKernelKind::ScalarTzStag:
            muSweepScalarOpt(b, ctx, /*shortcuts=*/false, part);
            return;
        case MuKernelKind::ScalarTzStagCut:
            muSweepScalarOpt(b, ctx, /*shortcuts=*/true, part);
            return;
        case MuKernelKind::Simd:
            dispatchMuMultiCell(b, ctx, false, false, false, part);
            return;
        case MuKernelKind::SimdTz:
            dispatchMuMultiCell(b, ctx, true, false, false, part);
            return;
        case MuKernelKind::SimdTzStag:
            dispatchMuMultiCell(b, ctx, true, true, false, part);
            return;
        case MuKernelKind::SimdTzStagCut:
            dispatchMuMultiCell(b, ctx, true, true, true, part);
            return;
    }
    TPF_ASSERT(false, "unknown mu kernel kind");
}

std::string kernelName(PhiKernelKind k) {
    switch (k) {
        case PhiKernelKind::General: return "general-C";
        case PhiKernelKind::Basic: return "basic";
        case PhiKernelKind::ScalarTzStag: return "scalar+Tz+stag";
        case PhiKernelKind::ScalarTzStagCut: return "scalar+Tz+stag+cut";
        case PhiKernelKind::Simd: return "simd-cellwise";
        case PhiKernelKind::SimdTz: return "simd+Tz";
        case PhiKernelKind::SimdTzStag: return "simd+Tz+stag";
        case PhiKernelKind::SimdTzStagCut: return "simd+Tz+stag+cut";
        case PhiKernelKind::SimdFourCell: return "simd-fourcell";
    }
    return "?";
}

std::string kernelName(MuKernelKind k) {
    switch (k) {
        case MuKernelKind::General: return "general-C";
        case MuKernelKind::Basic: return "basic";
        case MuKernelKind::ScalarTzStag: return "scalar+Tz+stag";
        case MuKernelKind::ScalarTzStagCut: return "scalar+Tz+stag+cut";
        case MuKernelKind::Simd: return "simd-fourcell";
        case MuKernelKind::SimdTz: return "simd+Tz";
        case MuKernelKind::SimdTzStag: return "simd+Tz+stag";
        case MuKernelKind::SimdTzStagCut: return "simd+Tz+stag+cut";
    }
    return "?";
}

const std::vector<PhiKernelKind>& allPhiKernels() {
    static const std::vector<PhiKernelKind> v{
        PhiKernelKind::General,       PhiKernelKind::Basic,
        PhiKernelKind::ScalarTzStag,  PhiKernelKind::ScalarTzStagCut,
        PhiKernelKind::Simd,          PhiKernelKind::SimdTz,
        PhiKernelKind::SimdTzStag,    PhiKernelKind::SimdTzStagCut,
        PhiKernelKind::SimdFourCell,
    };
    return v;
}

const std::vector<MuKernelKind>& allMuKernels() {
    static const std::vector<MuKernelKind> v{
        MuKernelKind::General,      MuKernelKind::Basic,
        MuKernelKind::ScalarTzStag, MuKernelKind::ScalarTzStagCut,
        MuKernelKind::Simd,         MuKernelKind::SimdTz,
        MuKernelKind::SimdTzStag,   MuKernelKind::SimdTzStagCut,
    };
    return v;
}

bool needsTzCache(PhiKernelKind k) {
    switch (k) {
        case PhiKernelKind::General:
        case PhiKernelKind::Basic:
        case PhiKernelKind::Simd: return false;
        default: return true;
    }
}

bool needsTzCache(MuKernelKind k) {
    switch (k) {
        case MuKernelKind::General:
        case MuKernelKind::Basic:
        case MuKernelKind::Simd: return false;
        default: return true;
    }
}

} // namespace tpf::core
