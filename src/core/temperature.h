#pragma once
/// \file temperature.h
/// Frozen-temperature ansatz and the per-z-slice cache of temperature
/// dependent quantities (the paper's "T(z) optimization": values required by
/// the driving force and the anti-trapping current that depend on analytic
/// temperatures only are pre-calculated once per z-slice).

#include <vector>

#include "core/params.h"

namespace tpf::core {

/// Analytic temperature field T(z, t) of directional solidification.
class FrozenTemperature {
public:
    explicit FrozenTemperature(const TemperatureParams& p) : p_(p) {}

    /// Temperature at the center of global cell layer \p zGlobal at time t;
    /// \p windowOffsetCells is the accumulated moving-window shift.
    double atCell(int zGlobal, double t, double windowOffsetCells) const {
        const double zPhys =
            (static_cast<double>(zGlobal) + 0.5) + windowOffsetCells;
        return p_.TE + p_.gradient * (zPhys - p_.zEut0 - p_.velocity * t);
    }

    /// Time derivative of the temperature at a fixed point (constant).
    double dTdt() const { return -p_.gradient * p_.velocity; }

    /// Global z (in cells, fractional) where T = TE at time t.
    double eutecticIsothermZ(double t, double windowOffsetCells) const {
        return p_.zEut0 + p_.velocity * t - windowOffsetCells - 0.5;
    }

    const TemperatureParams& params() const { return p_; }

private:
    TemperatureParams p_;
};

/// Temperature-dependent per-phase values of one z-slice.
struct SliceThermo {
    double T = 0;       ///< temperature
    double Tt = 0;      ///< T / TE (dimensionless prefactor of the interfacial terms)
    double xix[N] = {}; ///< equilibrium concentration xi_a(T), component c_Ag
    double xiy[N] = {}; ///< equilibrium concentration xi_a(T), component c_Cu
    double om[N] = {};  ///< T-dependent grand potential offset m_a (T-TE) + b_a
};

/// Compute the slice values for temperature \p T. Shared by the cache build
/// and the non-cached kernel variants so both produce bitwise identical
/// values (a prerequisite of the kernel equivalence tests).
inline SliceThermo computeSliceThermo(const ModelConsts& mc, double T) {
    SliceThermo s;
    s.T = T;
    s.Tt = T / mc.TE;
    const double dT = T - mc.TE;
    for (int a = 0; a < N; ++a) {
        s.xix[a] = mc.xi0x[a] + mc.dxidTx[a] * dT;
        s.xiy[a] = mc.xi0y[a] + mc.dxidTy[a] * dT;
        s.om[a] = mc.mcoef[a] * dT + mc.boff[a];
    }
    return s;
}

/// Per-block cache of SliceThermo for local z in [-1, nz] (one ghost slice on
/// each side so z-face averages stay in-cache).
class TzCache {
public:
    /// Build for a block whose first interior cell sits at global z
    /// \p originZ, with \p nz interior slices.
    void build(const ModelConsts& mc, const FrozenTemperature& temp, int originZ,
               int nz, double t, double windowOffsetCells) {
        nz_ = nz;
        slices_.resize(static_cast<std::size_t>(nz) + 2);
        for (int z = -1; z <= nz; ++z)
            slices_[static_cast<std::size_t>(z + 1)] = computeSliceThermo(
                mc, temp.atCell(originZ + z, t, windowOffsetCells));
    }

    /// Slice values at local z in [-1, nz].
    const SliceThermo& at(int z) const {
        TPF_ASSERT_DBG(z >= -1 && z <= nz_, "z slice out of cached range");
        return slices_[static_cast<std::size_t>(z + 1)];
    }

    int nz() const { return nz_; }

private:
    int nz_ = 0;
    std::vector<SliceThermo> slices_;
};

} // namespace tpf::core
