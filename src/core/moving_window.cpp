#include "core/moving_window.h"

#include "util/thread_pool.h"

namespace tpf::core {

int localSolidFrontZ(const std::vector<std::unique_ptr<SimBlock>>& blocks) {
    int front = -1;
    for (const auto& b : blocks) {
        const Field<double>& phi = b->phiSrc;
        for (int z = b->size.z - 1; z >= 0; --z) {
            bool solid = false;
            for (int y = 0; y < b->size.y && !solid; ++y)
                for (int x = 0; x < b->size.x && !solid; ++x)
                    if (phi(x, y, z, LIQ) <= 0.5) solid = true;
            if (solid) {
                front = std::max(front, b->origin.z + z);
                break;
            }
        }
    }
    return front;
}

void shiftDownOneCell(SimBlock& b, const BlockForest& bf,
                      const thermo::TernarySystem& sys,
                      util::ThreadPool* pool) {
    const bool topBlock =
        bf.blockCoords(b.blockIdx).z == bf.blockGrid().z - 1;
    const Vec2 muE = sys.muEut();
    const int nz = b.size.z;

    // Each (x, y) column shifts independently; fanning out over y-rows keeps
    // the per-column z order (read z+1 before it is overwritten) intact.
    auto shiftField = [&](Field<double>& f, bool isPhi) {
        auto shiftRow = [&](int y) {
            for (int z = 0; z < nz; ++z) {
                const bool fromGhost = (z == nz - 1);
                for (int x = 0; x < f.nx(); ++x) {
                    if (fromGhost && topBlock) {
                        // Fresh melt enters from above.
                        if (isPhi) {
                            for (int a = 0; a < N; ++a)
                                f(x, y, z, a) = (a == LIQ) ? 1.0 : 0.0;
                        } else {
                            f(x, y, z, 0) = muE.x;
                            f(x, y, z, 1) = muE.y;
                        }
                    } else {
                        for (int c = 0; c < f.nf(); ++c)
                            f(x, y, z, c) = f(x, y, z + 1, c);
                    }
                }
            }
        };
        if (pool && pool->threads() > 1)
            pool->parallelFor(f.ny(), shiftRow);
        else
            for (int y = 0; y < f.ny(); ++y) shiftRow(y);
    };
    shiftField(b.phiSrc, true);
    shiftField(b.muSrc, false);
}

} // namespace tpf::core
