#include "core/params.h"

namespace tpf::core {

ModelParams ModelParams::defaults() {
    ModelParams p;
    for (int a = 0; a < N; ++a) {
        p.tau[static_cast<std::size_t>(a)] = 1.0;
        for (int b = 0; b < N; ++b)
            p.gamma[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
                (a == b) ? 0.0 : 1.0;
    }
    return p;
}

double ModelParams::stableDtEstimate(const thermo::TernarySystem& sys) const {
    // mu diffusion limit: dt < dx^2 / (6 Deff); phi relaxation limit:
    // dt < tau eps dx^2 / (12 gamma_max eps) (interfacial terms act like a
    // Laplacian with coefficient ~2 gamma eps (T/TE)).
    double gmax = 0.0;
    for (int a = 0; a < N; ++a)
        for (int b = 0; b < N; ++b)
            gmax = std::max(gmax, gamma[static_cast<std::size_t>(a)]
                                       [static_cast<std::size_t>(b)]);
    double tmin = tau[0];
    for (double t : tau) tmin = std::min(tmin, t);

    const double dMu = dx * dx / (6.0 * sys.maxEffectiveDiffusivity());
    const double dPhi = tmin * dx * dx / (12.0 * gmax);
    return std::min(dMu, dPhi);
}

ModelConsts ModelConsts::build(const ModelParams& p,
                               const thermo::TernarySystem& s) {
    ModelConsts c;
    c.dx = p.dx;
    c.invDx = 1.0 / p.dx;
    c.halfInvDx = 0.5 / p.dx;
    c.dt = p.dt;
    c.invDt = 1.0 / p.dt;
    c.eps = p.eps;
    c.invEps = 1.0 / p.eps;
    c.piQuarterEps = 0.25 * M_PI * p.eps;
    c.w16 = 16.0 / (M_PI * M_PI);
    c.gamma3 = p.gammaTriple;
    c.antitrapping = p.antitrapping;

    for (int a = 0; a < N; ++a) {
        const auto ai = static_cast<std::size_t>(a);
        for (int b = 0; b < N; ++b)
            c.gamma[a][b] = p.gamma[ai][static_cast<std::size_t>(b)];
        c.invTauEps[a] = 1.0 / (p.tau[ai] * p.eps);

        const auto& ph = s.phase(a);
        c.kinvA[a] = ph.Kinv.a;
        c.kinvB[a] = ph.Kinv.b;
        c.kinvD[a] = ph.Kinv.d;
        c.Dphase[a] = s.diffusivity(a);
        c.xi0x[a] = ph.xi0.x;
        c.xi0y[a] = ph.xi0.y;
        c.dxidTx[a] = ph.dxidT.x;
        c.dxidTy[a] = ph.dxidT.y;
        c.mcoef[a] = ph.m;
        c.boff[a] = ph.b;
    }
    c.TE = s.Teut();
    c.dTdt = -p.temp.gradient * p.temp.velocity;
    return c;
}

} // namespace tpf::core
