#include "core/timeloop.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/trace.h"
#include "util/assert.h"

namespace tpf::core {

namespace {
double now() { return obs::wallNow(); }

/// Records one functor call into its Timing on scope exit, so a throwing
/// functor (e.g. an exception rethrown from a thread-pool fan-out) is still
/// accounted — without this, timings() silently undercounted failed calls
/// and `calls` drifted out of sync across functors.
struct ScopedTiming {
    Timeloop::Timing& t;
    double t0 = now();
    ~ScopedTiming() {
        const double dt = now() - t0;
        t.seconds += dt;
        t.maxSeconds = std::max(t.maxSeconds, dt);
        ++t.calls;
    }
};

/// Flags reentrant singleStep() calls (a functor — possibly running on a
/// pool thread — must never re-enter the loop that is timing it).
struct ReentryGuard {
    bool& flag;
    explicit ReentryGuard(bool& f) : flag(f) {
        TPF_ASSERT(!flag, "Timeloop::singleStep is not reentrant");
        flag = true;
    }
    ~ReentryGuard() { flag = false; }
};
} // namespace

void Timeloop::add(std::string name, std::function<void()> fn) {
    fns_.push_back(std::move(fn));
    timings_.push_back({std::move(name), 0.0, 0.0, 0});
}

void Timeloop::singleStep() {
    ReentryGuard guard(inStep_);
    // One "step" span around the functor sequence plus a span per functor:
    // with no trace installed each span is a thread-local read and a branch;
    // with one, two 16-byte event appends (obs/trace.h).
    TPF_SPAN("step");
    for (std::size_t i = 0; i < fns_.size(); ++i) {
        obs::ScopedSpan span(timings_[i].name.c_str());
        ScopedTiming timing{timings_[i]};
        fns_[i]();
    }
    ++steps_;
}

void Timeloop::run(int steps) {
    for (int i = 0; i < steps; ++i) singleStep();
}

void Timeloop::resetTimings() {
    for (auto& t : timings_) {
        t.seconds = 0.0;
        t.maxSeconds = 0.0;
        t.calls = 0;
    }
}

} // namespace tpf::core
