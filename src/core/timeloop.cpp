#include "core/timeloop.h"

#include <chrono>

namespace tpf::core {

namespace {
double now() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}
} // namespace

void Timeloop::add(std::string name, std::function<void()> fn) {
    fns_.push_back(std::move(fn));
    timings_.push_back({std::move(name), 0.0, 0});
}

void Timeloop::singleStep() {
    for (std::size_t i = 0; i < fns_.size(); ++i) {
        const double t0 = now();
        fns_[i]();
        timings_[i].seconds += now() - t0;
        ++timings_[i].calls;
    }
    ++steps_;
}

void Timeloop::run(int steps) {
    for (int i = 0; i < steps; ++i) singleStep();
}

void Timeloop::resetTimings() {
    for (auto& t : timings_) {
        t.seconds = 0.0;
        t.calls = 0;
    }
}

} // namespace tpf::core
