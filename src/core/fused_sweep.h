#pragma once
/// \file fused_sweep.h
/// Temporally fused phi/mu sweep (SweepSchedule::Fused): instead of writing
/// the entire phiDst field and only then starting the mu sweep, the step is
/// pipelined over the z-slab partition of core/slab_sweep.h — the mu sweep of
/// slab j runs as soon as the phi sweep has produced the one-slab fresh-phi
/// halo it reads (slabs j-1, j, j+1 plus the lateral periodic ghosts of
/// slab j). phiDst of slab j is then still cache-resident when the mu kernel
/// consumes it, which is the entire point: the split schedule streams phiDst
/// through memory twice per step, the fused one once.
///
/// Data-flow inventory behind the halo (verified against the reference
/// kernels; the kernel-equivalence suite enforces it for every variant):
///  - the mu face fluxes read phiDst only at the two face-adjacent cells of
///    each of the six faces, and the cell finish reads the center (the
///    dphi/dt anti-trapping term) — never a diagonal neighbor;
///  - the phi-gradient terms read phiSrc (D3C19), whose ghosts are last
///    step's and stay valid throughout;
///  - mu reads muSrc (D3C7), valid after the mu exchange of the previous
///    step (or the overlapMu wait hook, see below).
/// Hence the z ghost planes of phiDst are read only by the bottom and top
/// slab, and the xy corner/edge ghosts are never read at all.
///
/// Bitwise equivalence with the split schedule (docs/KERNELS.md): every slab
/// is computed by the identical kernel invocation on identical inputs. The
/// lateral ghost fill performs the same interior-to-ghost copy the exchange's
/// intra-rank path would, and the bottom/top slabs — whose phiDst z ghosts
/// belong to the inter-block exchange and the z boundary conditions — are
/// deferred to fusedSweepBoundary() after that exchange ran. Slab order and
/// thread count never enter any operand, so fused == split bit for bit.
///
/// Preconditions (asserted by the Solver): no phi communication hiding
/// (overlapPhi would split the mu sweep a second way) and a single block in
/// x and y, so the lateral periodic ghosts are a self-wrap.

#include <functional>

#include "core/kernels.h"
#include "core/sim_block.h"

namespace tpf::util {
class ThreadPool;
}

namespace tpf::core {

/// Phi sweep of the whole block interleaved with the mu sweep of every
/// *interior* slab. Phi proceeds in chunks of pool-width slabs (bottom-up);
/// after each chunk the lateral ghosts of the freshly written planes are
/// wrapped and the mu slabs whose halo completed are swept. \p beforeFirstMu
/// runs exactly once, immediately before the first mu slab of this call —
/// the Solver uses it for the overlapMu receive-wait; pass an empty function
/// when muSrc ghosts are already valid. With fewer than three slabs there is
/// no interior slab and the call degenerates to a plain phi sweep.
void fusedSweepInterior(SimBlock& b, const StepContext& ctx,
                        PhiKernelKind phiKind, MuKernelKind muKind,
                        util::ThreadPool* pool,
                        const std::function<void()>& beforeFirstMu);

/// Mu sweep of the bottom and top slab (deduplicated when only one slab
/// exists). Call after the phiDst ghost exchange and boundary application —
/// these slabs read the phiDst z ghost planes.
void fusedSweepBoundary(SimBlock& b, const StepContext& ctx,
                        MuKernelKind muKind, util::ThreadPool* pool);

/// Periodic lateral (x/y face) ghost fill of \p f from its own interior,
/// restricted to the planes [z0, z1]. The per-cell copy matches the ghost
/// exchange's intra-rank path, so the exchange later overwrites these ghosts
/// with identical bytes. Corner/edge ghosts are left untouched (the mu
/// kernels never read them).
void fillLateralGhosts(Field<double>& f, int z0, int z1);

} // namespace tpf::core
