#pragma once
/// \file params.h
/// Model parameters of the grand-potential phase-field model (eqs. 1–4 of the
/// paper) and the flattened constant snapshot (`ModelConsts`) handed to the
/// compute kernels.
///
/// The kernels never touch the object-oriented thermo classes on the hot
/// path: all per-phase constants (K^-1 entries, equilibrium compositions,
/// slopes, diffusivities, relaxation times) are copied into plain arrays once
/// per run. This mirrors the paper's specialization step away from the
/// general-purpose PACE3D code.

#include <array>
#include <cmath>

#include "thermo/system.h"

namespace tpf::core {

/// Number of order parameters (phases) — fixed at 4 for this model.
inline constexpr int N = thermo::kNumPhases;
/// Index of the liquid order parameter.
inline constexpr int LIQ = thermo::kLiquidPhase;
/// Number of independent chemical potentials (K - 1 = 2).
inline constexpr int KC = 2;

/// Frozen-temperature ansatz: T(z, t) = TE + G * (z_phys - zEut0 - v t), with
/// z_phys measured in cells from the bottom of the *global* domain plus the
/// accumulated moving-window offset.
struct TemperatureParams {
    double TE = 773.6;      ///< eutectic temperature [K]
    double gradient = 0.05; ///< temperature gradient G [K / cell]
    double velocity = 0.01; ///< isotherm pulling velocity v [cells / time]
    double zEut0 = 16.0;    ///< initial position of the eutectic isotherm [cells]
};

/// User-facing model parameters.
struct ModelParams {
    double dx = 1.0;  ///< lattice spacing
    double dt = 0.01; ///< explicit Euler time step
    double eps = 4.0; ///< interface width parameter epsilon [cells]

    /// Symmetric surface entropy density matrix gamma_ab (diagonal unused).
    std::array<std::array<double, N>, N> gamma{};
    /// Third-order obstacle term coefficient (suppresses spurious third
    /// phases in two-phase interfaces).
    double gammaTriple = 10.0;
    /// Relaxation constants tau_a; the evolution uses 1 / (tau_a * eps).
    std::array<double, N> tau{};

    bool antitrapping = true;

    TemperatureParams temp;

    /// Defaults tuned for the Ag-Al-Cu setup (stable at dt = 0.01, dx = 1).
    static ModelParams defaults();

    /// Largest stable dt estimate (von Neumann style bound combining the
    /// phi relaxation and the mu diffusion limits). The default dt is ~50% of
    /// this bound.
    double stableDtEstimate(const thermo::TernarySystem& sys) const;
};

/// Flattened constants for the kernels (see file comment).
struct ModelConsts {
    // numerics
    double dx = 1, invDx = 1, halfInvDx = 0.5, dt = 0, invDt = 0;
    double eps = 1, invEps = 1;
    double piQuarterEps = 0; ///< (pi/4) * eps, anti-trapping prefactor
    double w16 = 0;          ///< 16 / pi^2, obstacle prefactor
    double gamma[N][N] = {};
    double gamma3 = 0;
    double invTauEps[N] = {};
    bool antitrapping = true;

    // thermodynamics (Kinv is symmetric: [a b; b d])
    double kinvA[N] = {}, kinvB[N] = {}, kinvD[N] = {};
    double Dphase[N] = {};
    double xi0x[N] = {}, xi0y[N] = {}, dxidTx[N] = {}, dxidTy[N] = {};
    double mcoef[N] = {}, boff[N] = {};
    double TE = 1;

    // temperature drive
    double dTdt = 0; ///< = -G * v (frozen temperature ansatz)

    static ModelConsts build(const ModelParams& p, const thermo::TernarySystem& s);
};

} // namespace tpf::core
