/// \file mu_kernel_multicell_body.h
/// Width-generic multi-cell mu-sweep body (the paper's four-cell strategy,
/// generalized: one SIMD vector holds one quantity of V::width consecutive
/// x-cells). NO include guard on purpose: included inside an anonymous
/// namespace with a `using V = <vector type>;` alias in scope — see
/// phi_kernel_cellwise_body.h for the linkage rationale and the prerequisite
/// includes.
///
/// Remainder handling for nx % V::width != 0 (still requiring nx % 4 == 0 and
/// nx >= V::width): the last x-group starts at nx - width, overlapping the
/// previous group. All face fluxes are lane-wise functions of the unmodified
/// inputs (phiSrc, phiDst, muSrc) — the per-group early-outs (mask `none()` /
/// shortcut `all()`) only skip work whose masked contribution is +0.0 — so a
/// recomputed face is bitwise what the buffered sweep stored. The staggered
/// y-row/z-plane carries at overlapped positions were already overwritten by
/// the previous group of the same row, so the tail group recomputes its fym /
/// fzm faces directly (the same expression the carry buffered; same argument
/// as the slab-bottom re-seed). Cell updates are pure overwrites of muDst
/// except in NeighborOnly mode, which accumulates onto muDst: there the tail
/// store blends the previously stored bits back into the overlapped lanes so
/// no delta is applied twice (and no -0.0 is re-rounded through +0.0).

inline void loadPhaseW(const Field<double>& f, int x, int y, int z, V out[N]) {
    for (int a = 0; a < N; ++a) out[a] = V::loadu(f.ptr(x, y, z, a));
}

/// Mask of lanes [0, n) — used to preserve overlapped lanes in tail stores.
inline V::Mask lanesBelowW(int n) {
    double idx[V::width];
    for (int i = 0; i < V::width; ++i) idx[i] = static_cast<double>(i);
    return V::loadu(idx) < V::broadcast(static_cast<double>(n));
}

/// M(phi) grad mu at V::width consecutive faces.
inline void gradFluxW(const ModelConsts& mc, const V pL[N], const V pR[N],
                      V muLx, V muLy, V muRx, V muRy, V& Fx, V& Fy) {
    const V half = V::broadcast(0.5);
    V mA = V::zero(), mB = V::zero(), mD = V::zero();
    for (int a = 0; a < N; ++a) {
        const V pf = half * (pL[a] + pR[a]) * V::broadcast(mc.Dphase[a]);
        mA += pf * V::broadcast(mc.kinvA[a]);
        mB += pf * V::broadcast(mc.kinvB[a]);
        mD += pf * V::broadcast(mc.kinvD[a]);
    }
    const V invDx = V::broadcast(mc.invDx);
    const V gx = (muRx - muLx) * invDx;
    const V gy = (muRy - muLy) * invDx;
    Fx = mA * gx + mB * gy;
    Fy = mB * gx + mD * gy;
}

/// Anti-trapping current (paper eq. 4) at V::width consecutive faces; lane
/// masks reproduce the scalar early-outs exactly (skipped lanes contribute 0).
inline void atFluxW(const ModelConsts& mc, const SliceThermo& stL,
                    const SliceThermo& stR, int axis, const V pL[N],
                    const V pR[N], const V dtL[N], const V dtR[N],
                    const V g[3][N], V mufx, V mufy, V& Jx, V& Jy) {
    const V zero = V::zero();
    const V one = V::broadcast(1.0);
    const V half = V::broadcast(0.5);
    const V tol = V::broadcast(kGradTol);

    Jx = zero;
    Jy = zero;

    V pf[N], dpdt[N];
    for (int a = 0; a < N; ++a) {
        pf[a] = half * (pL[a] + pR[a]);
        dpdt[a] = half * (dtL[a] + dtR[a]);
    }

    const V nl2 = g[0][LIQ] * g[0][LIQ] + g[1][LIQ] * g[1][LIQ] +
                  g[2][LIQ] * g[2][LIQ];
    const auto mL = nl2 > tol;
    if (mL.none()) return;
    const V invNl = V::rsqrtFast(V::blend(mL, nl2, one));

    const V s2 =
        ((pf[0] * pf[0] + pf[1] * pf[1]) + (pf[2] * pf[2] + pf[3] * pf[3]));
    const V hl = pf[LIQ] * pf[LIQ] / s2;
    const auto mHl = !(hl == zero);

    const V xilx = half * (V::broadcast(stL.xix[LIQ]) + V::broadcast(stR.xix[LIQ]));
    const V xily = half * (V::broadcast(stL.xiy[LIQ]) + V::broadcast(stR.xiy[LIQ]));

    for (int a = 0; a < N; ++a) {
        if (a == LIQ) continue;
        const V prod = pf[a] * pf[LIQ];
        const auto mP = prod > zero;
        const V na2 =
            g[0][a] * g[0][a] + g[1][a] * g[1][a] + g[2][a] * g[2][a];
        const auto mN = na2 > tol;
        const auto valid = (mL & mHl) & (mP & mN);
        if (valid.none()) continue;

        const V invNa = V::rsqrtFast(V::blend(valid, na2, one));
        const V ndot = (g[0][a] * g[0][LIQ] + g[1][a] * g[1][LIQ] +
                        g[2][a] * g[2][LIQ]) *
                       invNa * invNl;
        const V pref = V::broadcast(mc.piQuarterEps) * pf[a] * hl *
                       V::rsqrtFast(V::blend(valid, prod, one)) * dpdt[a] *
                       ndot;

        const V xiax = half * (V::broadcast(stL.xix[a]) + V::broadcast(stR.xix[a]));
        const V xiay = half * (V::broadcast(stL.xiy[a]) + V::broadcast(stR.xiy[a]));
        const V dcx = (xilx - xiax) +
                      V::broadcast(mc.kinvA[LIQ] - mc.kinvA[a]) * mufx +
                      V::broadcast(mc.kinvB[LIQ] - mc.kinvB[a]) * mufy;
        const V dcy = (xily - xiay) +
                      V::broadcast(mc.kinvB[LIQ] - mc.kinvB[a]) * mufx +
                      V::broadcast(mc.kinvD[LIQ] - mc.kinvD[a]) * mufy;

        const V nAxis = g[axis][a] * invNa;
        Jx += V::blend(valid, pref * dcx * nAxis, zero);
        Jy += V::blend(valid, pref * dcy * nAxis, zero);
    }
}

/// Face gradients (normal + averaged transverse central differences) for
/// V::width consecutive faces whose lower cells start at (x, y, z) along
/// \p axis.
inline void faceGradsW(const ModelConsts& mc, const Field<double>& P, int axis,
                       int x, int y, int z, V g[3][N]) {
    static constexpr int ex[3] = {1, 0, 0};
    static constexpr int ey[3] = {0, 1, 0};
    static constexpr int ez[3] = {0, 0, 1};
    const int xR = x + ex[axis], yR = y + ey[axis], zR = z + ez[axis];

    const V invDx = V::broadcast(mc.invDx);
    const V hx = V::broadcast(mc.halfInvDx);
    const V half = V::broadcast(0.5);

    for (int a = 0; a < N; ++a)
        g[axis][a] =
            (V::loadu(P.ptr(xR, yR, zR, a)) - V::loadu(P.ptr(x, y, z, a))) *
            invDx;

    for (int e = 0; e < 3; ++e) {
        if (e == axis) continue;
        const int dx = ex[e], dy = ey[e], dz = ez[e];
        for (int a = 0; a < N; ++a) {
            const V cdL = V::loadu(P.ptr(x + dx, y + dy, z + dz, a)) -
                          V::loadu(P.ptr(x - dx, y - dy, z - dz, a));
            const V cdR = V::loadu(P.ptr(xR + dx, yR + dy, zR + dz, a)) -
                          V::loadu(P.ptr(xR - dx, yR - dy, zR - dz, a));
            g[e][a] = half * (cdL + cdR) * hx;
        }
    }
}

/// Full flux (M grad mu - J_at) at V::width consecutive faces with lower
/// cells at (x, y, z) along \p axis.
inline void muFaceW(const ModelConsts& mc, const Field<double>& P,
                    const Field<double>& Pd, const Field<double>& Mu,
                    const SliceThermo& stL, const SliceThermo& stR, int axis,
                    int x, int y, int z, bool gr, bool at, bool shortcut,
                    V& Fx, V& Fy) {
    static constexpr int ex[3] = {1, 0, 0};
    static constexpr int ey[3] = {0, 1, 0};
    static constexpr int ez[3] = {0, 0, 1};
    const int xR = x + ex[axis], yR = y + ey[axis], zR = z + ez[axis];

    V pL[N], pR[N];
    loadPhaseW(P, x, y, z, pL);
    loadPhaseW(P, xR, yR, zR, pR);

    const V muLx = V::loadu(Mu.ptr(x, y, z, 0));
    const V muLy = V::loadu(Mu.ptr(x, y, z, 1));
    const V muRx = V::loadu(Mu.ptr(xR, yR, zR, 0));
    const V muRy = V::loadu(Mu.ptr(xR, yR, zR, 1));

    Fx = V::zero();
    Fy = V::zero();
    if (gr) gradFluxW(mc, pL, pR, muLx, muLy, muRx, muRy, Fx, Fy);

    if (at && mc.antitrapping) {
        if (shortcut) {
            // Exact face-level skip when all faces of the group are
            // liquid-free or pure liquid on both sides.
            const V zero = V::zero();
            const V one = V::broadcast(1.0);
            const auto skip = ((pL[LIQ] == zero) & (pR[LIQ] == zero)) |
                              ((pL[LIQ] == one) & (pR[LIQ] == one));
            if (skip.all()) return;
        }
        const V invDt = V::broadcast(mc.invDt);
        V pdL[N], pdR[N], dtL[N], dtR[N];
        loadPhaseW(Pd, x, y, z, pdL);
        loadPhaseW(Pd, xR, yR, zR, pdR);
        for (int a = 0; a < N; ++a) {
            dtL[a] = (pdL[a] - pL[a]) * invDt;
            dtR[a] = (pdR[a] - pR[a]) * invDt;
        }
        V g[3][N];
        faceGradsW(mc, P, axis, x, y, z, g);
        V Jx, Jy;
        const V half = V::broadcast(0.5);
        atFluxW(mc, stL, stR, axis, pL, pR, dtL, dtR, g, half * (muLx + muRx),
                half * (muLy + muRy), Jx, Jy);
        Fx -= Jx;
        Fy -= Jy;
    }
}

/// Sources, susceptibility solve and update for V::width consecutive cells.
/// \p keepLanes > 0 marks the first keepLanes lanes as already updated by the
/// previous (overlapped) group: in NeighborOnly accumulate mode their stored
/// bits are preserved verbatim.
inline void cellFinishW(const ModelConsts& mc, const SliceThermo& stC,
                        const Field<double>& P, const Field<double>& Pd,
                        const Field<double>& Mu, Field<double>& Dst, int x,
                        int y, int z, V divX, V divY, bool applyOnDst,
                        int keepLanes) {
    const V one = V::broadcast(1.0);

    V pD[N], hD[N];
    loadPhaseW(Pd, x, y, z, pD);
    {
        const V s2 =
            ((pD[0] * pD[0] + pD[1] * pD[1]) + (pD[2] * pD[2] + pD[3] * pD[3]));
        const V inv = one / s2;
        for (int a = 0; a < N; ++a) hD[a] = pD[a] * pD[a] * inv;
    }

    V rhsX = divX, rhsY = divY;
    if (!applyOnDst) {
        V pS[N], hS[N];
        loadPhaseW(P, x, y, z, pS);
        const V s2 =
            ((pS[0] * pS[0] + pS[1] * pS[1]) + (pS[2] * pS[2] + pS[3] * pS[3]));
        const V inv = one / s2;
        for (int a = 0; a < N; ++a) hS[a] = pS[a] * pS[a] * inv;

        const V mux = V::loadu(Mu.ptr(x, y, z, 0));
        const V muy = V::loadu(Mu.ptr(x, y, z, 1));
        const V invDt = V::broadcast(mc.invDt);
        V src1X = V::zero(), src1Y = V::zero(), src2X = V::zero(),
          src2Y = V::zero();
        for (int a = 0; a < N; ++a) {
            const V cax = V::broadcast(stC.xix[a]) +
                          V::broadcast(mc.kinvA[a]) * mux +
                          V::broadcast(mc.kinvB[a]) * muy;
            const V cay = V::broadcast(stC.xiy[a]) +
                          V::broadcast(mc.kinvB[a]) * mux +
                          V::broadcast(mc.kinvD[a]) * muy;
            const V dh = (hD[a] - hS[a]) * invDt;
            src1X -= cax * dh;
            src1Y -= cay * dh;
            src2X -= hD[a] * V::broadcast(mc.dxidTx[a]) * V::broadcast(mc.dTdt);
            src2Y -= hD[a] * V::broadcast(mc.dxidTy[a]) * V::broadcast(mc.dTdt);
        }
        rhsX += src1X + src2X;
        rhsY += src1Y + src2Y;
    }

    V chiA = V::zero(), chiB = V::zero(), chiD = V::zero();
    for (int a = 0; a < N; ++a) {
        chiA += hD[a] * V::broadcast(mc.kinvA[a]);
        chiB += hD[a] * V::broadcast(mc.kinvB[a]);
        chiD += hD[a] * V::broadcast(mc.kinvD[a]);
    }
    const V invDet = one / (chiA * chiD - chiB * chiB);
    const V dmux = (chiD * rhsX - chiB * rhsY) * invDet;
    const V dmuy = (chiA * rhsY - chiB * rhsX) * invDet;

    const V dt = V::broadcast(mc.dt);
    if (!applyOnDst) {
        const V outX = V::loadu(Mu.ptr(x, y, z, 0)) + dt * dmux;
        const V outY = V::loadu(Mu.ptr(x, y, z, 1)) + dt * dmuy;
        outX.storeu(Dst.ptr(x, y, z, 0));
        outY.storeu(Dst.ptr(x, y, z, 1));
    } else {
        const V oldX = V::loadu(Dst.ptr(x, y, z, 0));
        const V oldY = V::loadu(Dst.ptr(x, y, z, 1));
        V outX = oldX + (V::zero() + dt * dmux);
        V outY = oldY + (V::zero() + dt * dmuy);
        if (keepLanes > 0) {
            // Overlapped tail lanes already carry this delta — keep their
            // stored bits untouched.
            const auto keep = lanesBelowW(keepLanes);
            outX = V::blend(keep, oldX, outX);
            outY = V::blend(keep, oldY, outY);
        }
        outX.storeu(Dst.ptr(x, y, z, 0));
        outY.storeu(Dst.ptr(x, y, z, 1));
    }
}

void muSweepMultiCellBody(SimBlock& blk, const StepContext& ctx, bool useTz,
                          bool useStag, bool shortcuts, MuSweepPart part) {
    constexpr int W = V::width;
    const ModelConsts& mc = ctx.mc;
    TPF_ASSERT(blk.phiSrc.layout() == Layout::fzyx &&
                   blk.muSrc.layout() == Layout::fzyx,
               "multi-cell vectorization requires the fzyx (SoA) layout");
    TPF_ASSERT(blk.size.x % 4 == 0 && blk.size.x >= W,
               "multi-cell vectorization requires nx divisible by 4 and nx >= width");
    if (useTz) TPF_ASSERT(ctx.tz != nullptr, "Tz variant requires a cache");

    const Field<double>& P = blk.phiSrc;
    const Field<double>& Pd = blk.phiDst;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.muDst;
    const int nx = blk.size.x, ny = blk.size.y, nz = blk.size.z;
    const int z0 = ctx.zLo(), z1 = ctx.zHi(nz);

    const bool applyOnDst = part == MuSweepPart::NeighborOnly;
    const bool gr = part != MuSweepPart::NeighborOnly;
    const bool at = part != MuSweepPart::LocalOnly;

    // Staggered buffers. x-faces live in a per-row buffer of nx+1 face values
    // (computed in a vectorized pre-pass); y-faces in a row buffer, z-faces
    // in a plane buffer, both refreshed in place while sweeping.
    std::vector<double, AlignedAllocator<double>> fxRowX, fxRowY, rowYX, rowYY,
        planeZX, planeZY;
    if (useStag) {
        fxRowX.assign(static_cast<std::size_t>(nx) + 8, 0.0);
        fxRowY.assign(static_cast<std::size_t>(nx) + 8, 0.0);
        rowYX.assign(static_cast<std::size_t>(nx), 0.0);
        rowYY.assign(static_cast<std::size_t>(nx), 0.0);
        planeZX.assign(static_cast<std::size_t>(nx) * ny, 0.0);
        planeZY.assign(static_cast<std::size_t>(nx) * ny, 0.0);
    }

    auto recompute = [&](int z) -> SliceThermo {
        const double T =
            ctx.temp->atCell(blk.origin.z + z, ctx.time, ctx.windowOffset);
        return computeSliceThermo(mc, T);
    };

    for (int z = z0; z < z1; ++z) {
        // With the T(z) optimization the slice values come from the per-step
        // cache; the "basic" variant recomputes them for every cell group —
        // the redundant work the optimization removes.
        SliceThermo stM, stC, stP;
        if (useTz) {
            stM = ctx.tz->at(z - 1);
            stC = ctx.tz->at(z);
            stP = ctx.tz->at(z + 1);
        }
        for (int y = 0; y < ny; ++y) {
            if (!useTz) {
                stM = recompute(z - 1);
                stC = recompute(z);
                stP = recompute(z + 1);
            }
            if (useStag) {
                // Pre-pass: all nx+1 x-face fluxes of this row, in groups of
                // W faces (the final group overlaps and recomputes up to
                // W - 1 faces — identical values, so the reuse stays exact).
                for (int i = -1; i < nx; i += W) {
                    const int ii = std::min(i, nx - W);
                    V Fx, Fy;
                    muFaceW(mc, P, Pd, Mu, stC, stC, 0, ii, y, z, gr, at,
                            shortcuts, Fx, Fy);
                    Fx.storeu(fxRowX.data() + (ii + 1));
                    Fy.storeu(fxRowY.data() + (ii + 1));
                    if (ii != i) break; // tail group handled
                }
            }

            for (int x = 0; x < nx; x += W) {
                // Overlapped tail group (see file comment): the y/z carries
                // at the overlapped positions were already replaced by this
                // row's own fluxes, so recompute fym/fzm directly.
                const int xx = x + W <= nx ? x : nx - W;
                const bool tail = xx != x;
                V fxmX, fxmY, fxpX, fxpY, fymX, fymY, fypX, fypY, fzmX, fzmY,
                    fzpX, fzpY;

                if (useStag) {
                    fxmX = V::loadu(fxRowX.data() + xx);
                    fxmY = V::loadu(fxRowY.data() + xx);
                    fxpX = V::loadu(fxRowX.data() + xx + 1);
                    fxpY = V::loadu(fxRowY.data() + xx + 1);

                    if (y == 0 || tail) {
                        muFaceW(mc, P, Pd, Mu, stC, stC, 1, xx, y - 1, z, gr,
                                at, shortcuts, fymX, fymY);
                    } else {
                        fymX = V::loadu(rowYX.data() + xx);
                        fymY = V::loadu(rowYY.data() + xx);
                    }
                    muFaceW(mc, P, Pd, Mu, stC, stC, 1, xx, y, z, gr, at,
                            shortcuts, fypX, fypY);
                    fypX.storeu(rowYX.data() + xx);
                    fypY.storeu(rowYY.data() + xx);

                    double* pzx =
                        planeZX.data() + static_cast<std::size_t>(y) * nx + xx;
                    double* pzy =
                        planeZY.data() + static_cast<std::size_t>(y) * nx + xx;
                    if (z == z0 || tail) {
                        // Slab bottom (or overlapped tail): seed the z-carry
                        // with the identical muFaceW call the full sweep
                        // buffered at z - 1.
                        muFaceW(mc, P, Pd, Mu, stM, stC, 2, xx, y, z - 1, gr,
                                at, shortcuts, fzmX, fzmY);
                    } else {
                        fzmX = V::loadu(pzx);
                        fzmY = V::loadu(pzy);
                    }
                    muFaceW(mc, P, Pd, Mu, stC, stP, 2, xx, y, z, gr, at,
                            shortcuts, fzpX, fzpY);
                    fzpX.storeu(pzx);
                    fzpY.storeu(pzy);
                } else {
                    muFaceW(mc, P, Pd, Mu, stC, stC, 0, xx - 1, y, z, gr, at,
                            shortcuts, fxmX, fxmY);
                    muFaceW(mc, P, Pd, Mu, stC, stC, 0, xx, y, z, gr, at,
                            shortcuts, fxpX, fxpY);
                    muFaceW(mc, P, Pd, Mu, stC, stC, 1, xx, y - 1, z, gr, at,
                            shortcuts, fymX, fymY);
                    muFaceW(mc, P, Pd, Mu, stC, stC, 1, xx, y, z, gr, at,
                            shortcuts, fypX, fypY);
                    muFaceW(mc, P, Pd, Mu, stM, stC, 2, xx, y, z - 1, gr, at,
                            shortcuts, fzmX, fzmY);
                    muFaceW(mc, P, Pd, Mu, stC, stP, 2, xx, y, z, gr, at,
                            shortcuts, fzpX, fzpY);
                }

                const V invDx = V::broadcast(mc.invDx);
                const V divX =
                    (((fxpX - fxmX) + (fypX - fymX)) + (fzpX - fzmX)) * invDx;
                const V divY =
                    (((fxpY - fxmY) + (fypY - fymY)) + (fzpY - fzmY)) * invDx;

                cellFinishW(mc, stC, P, Pd, Mu, Dst, xx, y, z, divX, divY,
                            applyOnDst, tail ? x - xx : 0);
            }
        }
    }
}
