#include "core/slab_sweep.h"

namespace tpf::core {

std::vector<CellInterval> slabPartition(const CellInterval& ci) {
    std::vector<CellInterval> slabs;
    if (ci.empty()) return slabs;
    for (int z0 = ci.zMin; z0 <= ci.zMax; z0 += kSlabHeight) {
        CellInterval s = ci;
        s.zMin = z0;
        s.zMax = std::min(ci.zMax, z0 + kSlabHeight - 1);
        slabs.push_back(s);
    }
    return slabs;
}

void parallelForSlabs(util::ThreadPool* pool, const CellInterval& ci,
                      const std::function<void(const CellInterval&)>& fn) {
    const std::vector<CellInterval> slabs = slabPartition(ci);
    if (slabs.empty()) return;
    if (!pool || pool->threads() == 1 || slabs.size() == 1) {
        // Deliberately still slabbed: a single whole-interval sweep could
        // store a shortcut's buffered +0.0 where a slab-seeded sweep computes
        // -0.0, so collapsing the serial path to one fn(ci) call would break
        // the *byte*-level thread-count invariance of checkpoints (equal
        // values, different zero signs — see docs/KERNELS.md). The cost of
        // slabbing is one extra seed face-flux plane per slab, ~1-2% of a
        // sweep.
        for (const CellInterval& s : slabs) fn(s);
        return;
    }
    pool->parallelFor(static_cast<int>(slabs.size()),
                      [&](int i) { fn(slabs[static_cast<std::size_t>(i)]); });
}

void parallelForSlabs(const CellInterval& ci, int nthreads,
                      const std::function<void(const CellInterval&)>& fn) {
    if (nthreads <= 1) {
        parallelForSlabs(nullptr, ci, fn);
        return;
    }
    util::ThreadPool pool(nthreads);
    parallelForSlabs(&pool, ci, fn);
}

} // namespace tpf::core
