#include "core/boundary.h"

#include "util/assert.h"
#include "util/thread_pool.h"

namespace tpf::core {

namespace {

/// Face descriptors: axis (0..2) and direction (-1 / +1).
struct FaceDesc {
    int axis;
    int dir;
};
constexpr FaceDesc kFaces[6] = {{0, -1}, {0, +1}, {1, -1},
                                {1, +1}, {2, -1}, {2, +1}};

/// Whether block \p blockIdx touches the domain boundary on face \p face.
bool atDomainBoundary(const BlockForest& bf, int blockIdx, int face) {
    const Int3 c = bf.blockCoords(blockIdx);
    const Int3 g = bf.blockGrid();
    switch (face) {
        case 0: return c.x == 0;
        case 1: return c.x == g.x - 1;
        case 2: return c.y == 0;
        case 3: return c.y == g.y - 1;
        case 4: return c.z == 0;
        default: return c.z == g.z - 1;
    }
}

} // namespace

void applyBoundaries(Field<double>& f, const BlockForest& bf, int blockIdx,
                     const FieldBCs& bc, util::ThreadPool* pool) {
    TPF_ASSERT(f.ghost() == 1, "boundary handling assumes one ghost layer");
    const int n[3] = {f.nx(), f.ny(), f.nz()};

    // Extents of the two non-face axes for the staged application: the x pass
    // covers interior y/z, the y pass x-extended/interior z, the z pass the
    // fully extended x/y ranges.
    for (int face = 0; face < 6; ++face) {
        if (bc.kind[static_cast<std::size_t>(face)] == BCType::None) continue;
        if (!atDomainBoundary(bf, blockIdx, face)) continue;

        const FaceDesc fd = kFaces[face];
        const int ghostCoord = fd.dir < 0 ? -1 : n[fd.axis];
        const int interiorCoord = fd.dir < 0 ? 0 : n[fd.axis] - 1;

        int lo[3], hi[3];
        for (int a = 0; a < 3; ++a) {
            const bool extended = a < fd.axis; // staged: earlier axes extended
            lo[a] = extended ? -1 : 0;
            hi[a] = extended ? n[a] : n[a] - 1;
        }
        lo[fd.axis] = hi[fd.axis] = 0; // replaced per cell below

        const bool dirichlet =
            bc.kind[static_cast<std::size_t>(face)] == BCType::Dirichlet;
        const auto& val = bc.value[static_cast<std::size_t>(face)];
        if (dirichlet)
            TPF_ASSERT(static_cast<int>(val.size()) == f.nf(),
                       "Dirichlet value needs one entry per component");

        // Fan the face fill out over its largest extent: z for x/y faces,
        // y for z faces (whose z index is pinned to the face itself).
        const int parAxis = fd.axis == 2 ? 1 : 2;
        const int span = hi[parAxis] - lo[parAxis] + 1;

        auto fillSlice = [&](int k) {
            int slo[3] = {lo[0], lo[1], lo[2]};
            int shi[3] = {hi[0], hi[1], hi[2]};
            slo[parAxis] = shi[parAxis] = lo[parAxis] + k;
            int idx[3];
            for (idx[2] = slo[2]; idx[2] <= shi[2]; ++idx[2]) {
                for (idx[1] = slo[1]; idx[1] <= shi[1]; ++idx[1]) {
                    for (idx[0] = slo[0]; idx[0] <= shi[0]; ++idx[0]) {
                        int gc[3] = {idx[0], idx[1], idx[2]};
                        int ic[3] = {idx[0], idx[1], idx[2]};
                        gc[fd.axis] = ghostCoord;
                        ic[fd.axis] = interiorCoord;
                        for (int c = 0; c < f.nf(); ++c) {
                            const double interior = f(ic[0], ic[1], ic[2], c);
                            f(gc[0], gc[1], gc[2], c) =
                                dirichlet
                                    ? 2.0 * val[static_cast<std::size_t>(c)] -
                                          interior
                                    : interior;
                        }
                    }
                }
            }
        };

        if (pool && pool->threads() > 1 && span > 1)
            pool->parallelFor(span, fillSlice);
        else
            for (int k = 0; k < span; ++k) fillSlice(k);
    }
}

} // namespace tpf::core
