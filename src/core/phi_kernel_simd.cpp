/// \file phi_kernel_simd.cpp
/// Compile-time-default vectorized phi-sweeps: the cellwise and multi-cell
/// bodies instantiated with the configure-time simd::Vec4d backend. These are
/// the entry points the kernel registry falls back to when no runtime
/// dispatch target applies (core/kernel_dispatch.h holds the per-ISA
/// instantiations of the same bodies).
///
/// Cellwise strategy (the paper's fastest choice, Figure 5): one SIMD vector
/// holds the four phases of a single cell. Multi-cell strategy (Figure 5
/// "four cells"): one vector holds the same phase of consecutive x-cells;
/// shortcuts only apply when all cells of a group allow them.

#include <algorithm>
#include <vector>

#include "core/kernels.h"
#include "core/model_common.h"
#include "simd/simd.h"
#include "simd/simplex4.h"
#include "util/alignment.h"

namespace tpf::core {

namespace {
namespace cellwise4 {
using V = simd::Vec4d;
#include "core/phi_kernel_cellwise_body.h"
} // namespace cellwise4

namespace multicell4 {
using V = simd::Vec4d;
#include "core/phi_kernel_multicell_body.h"
} // namespace multicell4
} // namespace

void phiSweepSimdCellwise(SimBlock& b, const StepContext& ctx, bool useTz,
                          bool useStag, bool shortcuts) {
    cellwise4::phiSweepCellwiseBody(b, ctx, useTz, useStag, shortcuts);
}

void phiSweepSimdFourCell(SimBlock& b, const StepContext& ctx) {
    multicell4::phiSweepMultiCellBody(b, ctx);
}

} // namespace tpf::core
