/// \file phi_kernel_simd.cpp
/// Explicitly vectorized phi-sweeps.
///
/// Cellwise strategy (the paper's fastest choice, Figure 5): one SIMD vector
/// holds the four phases of a single cell. Pairwise phase terms use lane
/// rotations ("the need of various permute or rotate operations when
/// computing terms that contain single components of the phi vector");
/// branching stays possible per cell, which is what makes the bulk shortcut
/// effective.
///
/// Four-cell strategy (Figure 5 "four cells"): one vector holds the same
/// phase of four consecutive x-cells; shortcuts only apply when all four
/// cells allow them.
///
/// Variant matrix (Figure 6 progression): +T(z) slice cache, +staggered face
/// flux buffers, +shortcuts — toggled by the useTz/useStag/shortcuts flags.

#include <vector>

#include "core/kernels.h"
#include "core/model_common.h"
#include "simd/simd.h"
#include "simd/simplex4.h"
#include "util/alignment.h"

namespace tpf::core {

namespace {

using V = simd::Vec4d;

/// Per-sweep constants in vector form.
struct PhiSimdConsts {
    V gammaRot[3]; ///< gammaRot[k-1] lane a = gamma[a][(a+k)%4]
    V invTauEps;
    V kinvA, kinvB, kinvD;
    double eps, invEps, w16, gamma3, invDx, halfInvDx, dt;

    static PhiSimdConsts build(const ModelConsts& mc) {
        PhiSimdConsts c;
        for (int k = 1; k <= 3; ++k)
            c.gammaRot[k - 1] =
                V::set(mc.gamma[0][(0 + k) % 4], mc.gamma[1][(1 + k) % 4],
                       mc.gamma[2][(2 + k) % 4], mc.gamma[3][(3 + k) % 4]);
        c.invTauEps = V::set(mc.invTauEps[0], mc.invTauEps[1], mc.invTauEps[2],
                             mc.invTauEps[3]);
        c.kinvA = V::set(mc.kinvA[0], mc.kinvA[1], mc.kinvA[2], mc.kinvA[3]);
        c.kinvB = V::set(mc.kinvB[0], mc.kinvB[1], mc.kinvB[2], mc.kinvB[3]);
        c.kinvD = V::set(mc.kinvD[0], mc.kinvD[1], mc.kinvD[2], mc.kinvD[3]);
        c.eps = mc.eps;
        c.invEps = mc.invEps;
        c.w16 = mc.w16;
        c.gamma3 = mc.gamma3;
        c.invDx = mc.invDx;
        c.halfInvDx = mc.halfInvDx;
        c.dt = mc.dt;
        return c;
    }
};

/// Slice thermo values in vector form.
struct SliceVec {
    V xix, xiy, om;
    double Tt;

    static SliceVec from(const SliceThermo& st) {
        SliceVec s;
        s.xix = V::set(st.xix[0], st.xix[1], st.xix[2], st.xix[3]);
        s.xiy = V::set(st.xiy[0], st.xiy[1], st.xiy[2], st.xiy[3]);
        s.om = V::set(st.om[0], st.om[1], st.om[2], st.om[3]);
        s.Tt = st.Tt;
        return s;
    }
};

/// Load the four phases of one cell as a vector (gather for fzyx, contiguous
/// load for zyxf).
template <bool kFzyx>
inline V loadCellPhases(const Field<double>& f, int x, int y, int z) {
    if constexpr (kFzyx) {
        const double* p = f.ptr(x, y, z, 0);
        const std::ptrdiff_t sf = f.fStride();
        return V::set(p[0], p[sf], p[2 * sf], p[3 * sf]);
    } else {
        return V::loadu(f.ptr(x, y, z, 0));
    }
}

template <bool kFzyx>
inline void storeCellPhases(Field<double>& f, int x, int y, int z, V v) {
    if constexpr (kFzyx) {
        double* p = f.ptr(x, y, z, 0);
        alignas(32) double tmp[4];
        v.store(tmp);
        const std::ptrdiff_t sf = f.fStride();
        p[0] = tmp[0];
        p[sf] = tmp[1];
        p[2 * sf] = tmp[2];
        p[3 * sf] = tmp[3];
    } else {
        v.storeu(f.ptr(x, y, z, 0));
    }
}

/// Staggered-face flux of da/dgrad(phi) (normal component), vector over the
/// four phases:
///   flux_a = -2 eps sum_k gammaRot_k[a] pf_{a+k} (pf_a dp_{a+k} - pf_{a+k} dp_a)
inline V faceFluxV(const PhiSimdConsts& sc, V pL, V pR) {
    const V half = V::broadcast(0.5);
    const V invDx = V::broadcast(sc.invDx);
    const V pf = half * (pL + pR);
    const V dp = (pR - pL) * invDx;

    V acc = V::zero();
    {
        const V pfk = pf.rotateLeft1(), dpk = dp.rotateLeft1();
        acc += sc.gammaRot[0] * pfk * (pf * dpk - pfk * dp);
    }
    {
        const V pfk = pf.rotateLeft2(), dpk = dp.rotateLeft2();
        acc += sc.gammaRot[1] * pfk * (pf * dpk - pfk * dp);
    }
    {
        const V pfk = pf.rotateLeft3(), dpk = dp.rotateLeft3();
        acc += sc.gammaRot[2] * pfk * (pf * dpk - pfk * dp);
    }
    return V::broadcast(-2.0 * sc.eps) * acc;
}

/// Sum of all lanes replicated into every lane (per-lane rotation sums).
inline V laneSum(V v) {
    return ((v + v.rotateLeft1()) + (v.rotateLeft2() + v.rotateLeft3()));
}

/// One full cellwise phi update for the cell vectors (pC plus 6 neighbors)
/// and face fluxes; returns the projected phi(t+dt).
inline V cellUpdate(const PhiSimdConsts& sc, const SliceVec& sv, V pC, V pW,
                    V pE, V pS, V pN_, V pB, V pT, V fxm, V fxp, V fym, V fyp,
                    V fzm, V fzp, double mux, double muy) {
    const V invDx = V::broadcast(sc.invDx);
    const V div = (((fxp - fxm) + (fyp - fym)) + (fzp - fzm)) * invDx;

    // Cell-centered gradients.
    const V hx = V::broadcast(sc.halfInvDx);
    const V g0 = (pE - pW) * hx;
    const V g1 = (pN_ - pS) * hx;
    const V g2 = (pT - pB) * hx;

    // da/dphi: 2 eps sum_k gammaRot_k (q . grad_{a+k}).
    V dad = V::zero();
    {
        const V pk = pC.rotateLeft1();
        const V gk0 = g0.rotateLeft1(), gk1 = g1.rotateLeft1(),
                gk2 = g2.rotateLeft1();
        const V dot = (pC * gk0 - pk * g0) * gk0 + (pC * gk1 - pk * g1) * gk1 +
                      (pC * gk2 - pk * g2) * gk2;
        dad += sc.gammaRot[0] * dot;
    }
    {
        const V pk = pC.rotateLeft2();
        const V gk0 = g0.rotateLeft2(), gk1 = g1.rotateLeft2(),
                gk2 = g2.rotateLeft2();
        const V dot = (pC * gk0 - pk * g0) * gk0 + (pC * gk1 - pk * g1) * gk1 +
                      (pC * gk2 - pk * g2) * gk2;
        dad += sc.gammaRot[1] * dot;
    }
    {
        const V pk = pC.rotateLeft3();
        const V gk0 = g0.rotateLeft3(), gk1 = g1.rotateLeft3(),
                gk2 = g2.rotateLeft3();
        const V dot = (pC * gk0 - pk * g0) * gk0 + (pC * gk1 - pk * g1) * gk1 +
                      (pC * gk2 - pk * g2) * gk2;
        dad += sc.gammaRot[2] * dot;
    }
    dad *= V::broadcast(2.0 * sc.eps);

    // Obstacle derivative: w16 sum gamma phi + gamma3 (P - phi (S - phi)).
    const V S = laneSum(pC);
    const V sumGP = sc.gammaRot[0] * pC.rotateLeft1() +
                    sc.gammaRot[1] * pC.rotateLeft2() +
                    sc.gammaRot[2] * pC.rotateLeft3();
    const V p2 = pC * pC;
    const V P = V::broadcast(0.5) * (S * S - laneSum(p2));
    const V dom = V::broadcast(sc.w16) * sumGP +
                  V::broadcast(sc.gamma3) * (P - pC * (S - pC));

    // Driving force from the grand potentials.
    const V s2 = laneSum(p2);
    const V invS2 = V::broadcast(1.0) / s2;
    const V h = p2 * invS2;
    const V vmux = V::broadcast(mux), vmuy = V::broadcast(muy);
    const V quad = V::broadcast(0.5) *
                   (sc.kinvA * vmux * vmux +
                    V::broadcast(2.0) * sc.kinvB * vmux * vmuy +
                    sc.kinvD * vmuy * vmuy);
    const V om = -quad - (vmux * sv.xix + vmuy * sv.xiy) + sv.om;
    const V omBar = laneSum(om * h);
    const V dpsi = V::broadcast(2.0) * pC * invS2 * (om - omBar);

    // Assemble, anti-symmetrize, advance, project.
    const V Tt = V::broadcast(sv.Tt);
    const V rhs = Tt * (div - dad) - Tt * V::broadcast(sc.invEps) * dom - dpsi;
    const V mean = V::broadcast(0.25) * laneSum(rhs);
    V prop = pC + V::broadcast(sc.dt) * sc.invTauEps * (rhs - mean);

    // Scalar projection (bitwise-identical to the scalar kernels; the paper
    // notes this routine branches per cell anyway).
    alignas(32) double tmp[4];
    prop.store(tmp);
    projectToSimplex4(tmp[0], tmp[1], tmp[2], tmp[3]);
    return V::load(tmp);
}

template <bool kFzyx>
void phiSweepCellwiseImpl(SimBlock& blk, const StepContext& ctx, bool useTz,
                          bool useStag, bool shortcuts) {
    const ModelConsts& mc = ctx.mc;
    const PhiSimdConsts sc = PhiSimdConsts::build(mc);
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.phiDst;
    const int nx = blk.size.x, ny = blk.size.y, nz = blk.size.z;
    const int z0 = ctx.zLo(), z1 = ctx.zHi(nz);
    const V one = V::broadcast(1.0);

    // Staggered buffers (vector slots, 32-byte strided on a 64-byte base).
    // The z-plane buffer restarts at the slab bottom (z == z0) with the same
    // faceFluxV expression the full sweep would have buffered there.
    std::vector<double, AlignedAllocator<double>> rowY, planeZ;
    if (useStag) {
        rowY.assign(static_cast<std::size_t>(nx) * 4, 0.0);
        planeZ.assign(static_cast<std::size_t>(nx) * ny * 4, 0.0);
    }

    for (int z = z0; z < z1; ++z) {
        SliceThermo st;
        SliceVec sv;
        if (useTz) {
            // T(z) optimization: temperature-dependent values once per slice.
            TPF_ASSERT(ctx.tz != nullptr, "Tz variant requires a cache");
            st = ctx.tz->at(z);
            sv = SliceVec::from(st);
        }
        for (int y = 0; y < ny; ++y) {
            V carryX = V::zero();
            for (int x = 0; x < nx; ++x) {
                if (!useTz) {
                    // "basic" temperature handling: recompute per cell.
                    const double T = ctx.temp->atCell(blk.origin.z + z,
                                                      ctx.time,
                                                      ctx.windowOffset);
                    st = computeSliceThermo(mc, T);
                    sv = SliceVec::from(st);
                }

                const V pC = loadCellPhases<kFzyx>(P, x, y, z);
                const V pW = loadCellPhases<kFzyx>(P, x - 1, y, z);
                const V pE = loadCellPhases<kFzyx>(P, x + 1, y, z);
                const V pS = loadCellPhases<kFzyx>(P, x, y - 1, z);
                const V pN_ = loadCellPhases<kFzyx>(P, x, y + 1, z);
                const V pB = loadCellPhases<kFzyx>(P, x, y, z - 1);
                const V pT = loadCellPhases<kFzyx>(P, x, y, z + 1);

                if (shortcuts) {
                    // Bulk test: some lane equals 1 in the cell and all six
                    // neighbors (exact; cellwise vectorization allows this
                    // per-cell branch).
                    const auto bulk = (pC == one) & (pW == one) & (pE == one) &
                                      (pS == one) & (pN_ == one) &
                                      (pB == one) & (pT == one);
                    if (bulk.any()) {
                        storeCellPhases<kFzyx>(Dst, x, y, z, pC);
                        if (useStag) {
                            carryX = V::zero();
                            V::zero().store(rowY.data() +
                                            static_cast<std::size_t>(x) * 4);
                            V::zero().store(planeZ.data() +
                                            (static_cast<std::size_t>(y) * nx +
                                             x) *
                                                4);
                        }
                        continue;
                    }
                }

                V fxm, fxp, fym, fyp, fzm, fzp;
                if (useStag) {
                    fxm = (x == 0) ? faceFluxV(sc, pW, pC) : carryX;
                    fxp = faceFluxV(sc, pC, pE);
                    carryX = fxp;

                    double* ry = rowY.data() + static_cast<std::size_t>(x) * 4;
                    fym = (y == 0) ? faceFluxV(sc, pS, pC) : V::load(ry);
                    fyp = faceFluxV(sc, pC, pN_);
                    fyp.store(ry);

                    double* pz =
                        planeZ.data() +
                        (static_cast<std::size_t>(y) * nx + x) * 4;
                    fzm = (z == z0) ? faceFluxV(sc, pB, pC) : V::load(pz);
                    fzp = faceFluxV(sc, pC, pT);
                    fzp.store(pz);
                } else {
                    fxm = faceFluxV(sc, pW, pC);
                    fxp = faceFluxV(sc, pC, pE);
                    fym = faceFluxV(sc, pS, pC);
                    fyp = faceFluxV(sc, pC, pN_);
                    fzm = faceFluxV(sc, pB, pC);
                    fzp = faceFluxV(sc, pC, pT);
                }

                const V out = cellUpdate(sc, sv, pC, pW, pE, pS, pN_, pB, pT,
                                         fxm, fxp, fym, fyp, fzm, fzp,
                                         Mu(x, y, z, 0), Mu(x, y, z, 1));
                storeCellPhases<kFzyx>(Dst, x, y, z, out);
            }
        }
    }
}

} // namespace

void phiSweepSimdCellwise(SimBlock& b, const StepContext& ctx, bool useTz,
                          bool useStag, bool shortcuts) {
    if (b.phiSrc.layout() == Layout::fzyx)
        phiSweepCellwiseImpl<true>(b, ctx, useTz, useStag, shortcuts);
    else
        phiSweepCellwiseImpl<false>(b, ctx, useTz, useStag, shortcuts);
}

// ---------------------------------------------------------------------------
// Four-cell strategy
// ---------------------------------------------------------------------------

namespace {

/// Face flux for four consecutive faces along one axis, per phase a:
/// inputs are per-phase vectors over the four cell pairs.
inline void faceFlux4(const ModelConsts& mc, const V pL[N], const V pR[N],
                      V flux[N]) {
    const V half = V::broadcast(0.5);
    const V invDx = V::broadcast(mc.invDx);
    V pf[N], dp[N];
    for (int a = 0; a < N; ++a) {
        pf[a] = half * (pL[a] + pR[a]);
        dp[a] = (pR[a] - pL[a]) * invDx;
    }
    for (int a = 0; a < N; ++a) {
        V s = V::zero();
        for (int bph = 0; bph < N; ++bph) {
            if (bph == a) continue;
            const V q = pf[a] * dp[bph] - pf[bph] * dp[a];
            s += V::broadcast(mc.gamma[a][bph]) * pf[bph] * q;
        }
        flux[a] = V::broadcast(-2.0 * mc.eps) * s;
    }
}

inline void loadPhase4(const Field<double>& f, int x, int y, int z, V out[N]) {
    for (int a = 0; a < N; ++a) out[a] = V::loadu(f.ptr(x, y, z, a));
}

} // namespace

void phiSweepSimdFourCell(SimBlock& blk, const StepContext& ctx) {
    const ModelConsts& mc = ctx.mc;
    TPF_ASSERT(ctx.tz != nullptr, "four-cell phi kernel requires a TzCache");
    TPF_ASSERT(blk.phiSrc.layout() == Layout::fzyx,
               "four-cell vectorization requires the fzyx (SoA) layout");
    TPF_ASSERT(blk.size.x % 4 == 0,
               "four-cell vectorization requires nx divisible by 4");
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.phiDst;
    const int nx = blk.size.x, ny = blk.size.y, nz = blk.size.z;
    const V one = V::broadcast(1.0);

    for (int z = ctx.zLo(); z < ctx.zHi(nz); ++z) {
        const SliceThermo st = ctx.tz->at(z);
        const V Tt = V::broadcast(st.Tt);
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; x += 4) {
                V pC[N], pW[N], pE[N], pS[N], pNn[N], pB[N], pT[N];
                loadPhase4(P, x, y, z, pC);
                loadPhase4(P, x - 1, y, z, pW);
                loadPhase4(P, x + 1, y, z, pE);
                loadPhase4(P, x, y - 1, z, pS);
                loadPhase4(P, x, y + 1, z, pNn);
                loadPhase4(P, x, y, z - 1, pB);
                loadPhase4(P, x, y, z + 1, pT);

                // Shortcut only if *all four* cells are bulk (paper: "can
                // only take these shortcuts if the condition is true for all
                // four cells").
                {
                    V::Mask bulkAll =
                        (pC[0] == one) & (pW[0] == one) & (pE[0] == one) &
                        (pS[0] == one) & (pNn[0] == one) & (pB[0] == one) &
                        (pT[0] == one);
                    for (int a = 1; a < N; ++a) {
                        const auto bulkA = (pC[a] == one) & (pW[a] == one) &
                                           (pE[a] == one) & (pS[a] == one) &
                                           (pNn[a] == one) & (pB[a] == one) &
                                           (pT[a] == one);
                        bulkAll = bulkAll | bulkA;
                    }
                    if (bulkAll.all()) {
                        for (int a = 0; a < N; ++a)
                            pC[a].storeu(Dst.ptr(x, y, z, a));
                        continue;
                    }
                }

                V fxm[N], fxp[N], fym[N], fyp[N], fzm[N], fzp[N];
                faceFlux4(mc, pW, pC, fxm);
                faceFlux4(mc, pC, pE, fxp);
                faceFlux4(mc, pS, pC, fym);
                faceFlux4(mc, pC, pNn, fyp);
                faceFlux4(mc, pB, pC, fzm);
                faceFlux4(mc, pC, pT, fzp);

                const V invDx = V::broadcast(mc.invDx);
                const V hx = V::broadcast(mc.halfInvDx);

                V div[N], g0[N], g1[N], g2[N];
                for (int a = 0; a < N; ++a) {
                    div[a] = (((fxp[a] - fxm[a]) + (fyp[a] - fym[a])) +
                              (fzp[a] - fzm[a])) *
                             invDx;
                    g0[a] = (pE[a] - pW[a]) * hx;
                    g1[a] = (pNn[a] - pS[a]) * hx;
                    g2[a] = (pT[a] - pB[a]) * hx;
                }

                // da/dphi.
                V dad[N];
                for (int a = 0; a < N; ++a) {
                    V s = V::zero();
                    for (int bph = 0; bph < N; ++bph) {
                        if (bph == a) continue;
                        const V dot = (pC[a] * g0[bph] - pC[bph] * g0[a]) * g0[bph] +
                                      (pC[a] * g1[bph] - pC[bph] * g1[a]) * g1[bph] +
                                      (pC[a] * g2[bph] - pC[bph] * g2[a]) * g2[bph];
                        s += V::broadcast(mc.gamma[a][bph]) * dot;
                    }
                    dad[a] = V::broadcast(2.0 * mc.eps) * s;
                }

                // Obstacle.
                const V S = ((pC[0] + pC[1]) + (pC[2] + pC[3]));
                V Pp = V::zero();
                for (int a = 0; a < N; ++a)
                    for (int bph = a + 1; bph < N; ++bph) Pp += pC[a] * pC[bph];
                V dom[N];
                for (int a = 0; a < N; ++a) {
                    V s = V::zero();
                    for (int bph = 0; bph < N; ++bph) {
                        if (bph == a) continue;
                        s += V::broadcast(mc.gamma[a][bph]) * pC[bph];
                    }
                    dom[a] = V::broadcast(mc.w16) * s +
                             V::broadcast(mc.gamma3) *
                                 (Pp - pC[a] * (S - pC[a]));
                }

                // Driving force.
                const V mux = V::loadu(Mu.ptr(x, y, z, 0));
                const V muy = V::loadu(Mu.ptr(x, y, z, 1));
                const V s2 = ((pC[0] * pC[0] + pC[1] * pC[1]) +
                              (pC[2] * pC[2] + pC[3] * pC[3]));
                const V invS2 = one / s2;
                V om[N], h[N];
                V omBar = V::zero();
                for (int a = 0; a < N; ++a) {
                    const V quad =
                        V::broadcast(0.5) *
                        (V::broadcast(mc.kinvA[a]) * mux * mux +
                         V::broadcast(2.0 * mc.kinvB[a]) * mux * muy +
                         V::broadcast(mc.kinvD[a]) * muy * muy);
                    om[a] = -quad -
                            (mux * V::broadcast(st.xix[a]) +
                             muy * V::broadcast(st.xiy[a])) +
                            V::broadcast(st.om[a]);
                    h[a] = pC[a] * pC[a] * invS2;
                    omBar += om[a] * h[a];
                }

                V prop[N];
                V rhs[N];
                for (int a = 0; a < N; ++a) {
                    const V dpsi = V::broadcast(2.0) * pC[a] * invS2 *
                                   (om[a] - omBar);
                    rhs[a] = Tt * (div[a] - dad[a]) -
                             Tt * V::broadcast(mc.invEps) * dom[a] - dpsi;
                }
                const V mean = V::broadcast(0.25) *
                               ((rhs[0] + rhs[1]) + (rhs[2] + rhs[3]));
                for (int a = 0; a < N; ++a)
                    prop[a] = pC[a] + V::broadcast(mc.dt) *
                                          V::broadcast(mc.invTauEps[a]) *
                                          (rhs[a] - mean);

                simd::projectToSimplex4Lanes(prop[0], prop[1], prop[2],
                                             prop[3]);
                for (int a = 0; a < N; ++a) prop[a].storeu(Dst.ptr(x, y, z, a));
            }
        }
    }
}

} // namespace tpf::core
