#pragma once
/// \file regions.h
/// Cell/region classification (bulk B_a, diffuse interface I, solidification
/// front F, liquid L, solid S — section 2 of the paper) plus the scenario
/// fills used by the benchmarks: "interface" (solidification front),
/// "liquid", and "solid" blocks.

#include "core/sim_block.h"
#include "thermo/system.h"

namespace tpf::core {

enum class CellRegion {
    BulkSolid,  ///< exactly one solid phase = 1
    BulkLiquid, ///< liquid = 1
    Interface,  ///< diffuse interface without liquid participation
    Front,      ///< diffuse interface with liquid participation (F region)
};

/// Classify a single cell of a phi field.
CellRegion classifyCell(const Field<double>& phi, int x, int y, int z);

/// Counts of the regions over the interior of a block.
struct RegionStats {
    long long bulkSolid = 0;
    long long bulkLiquid = 0;
    long long interface = 0;
    long long front = 0;

    long long total() const {
        return bulkSolid + bulkLiquid + interface + front;
    }
};

RegionStats classifyBlock(const Field<double>& phi);

/// Benchmark scenarios (paper §5.1): composition of a block.
enum class Scenario { Interface, Liquid, Solid };

const char* scenarioName(Scenario s);

/// Fill a block's phi/mu source fields (including ghost layers) with the
/// given scenario:
///  - Liquid: pure liquid everywhere, mu at the eutectic value.
///  - Solid: lamellar solid (stripes of the three solid phases along x with
///    diffuse boundaries), no liquid.
///  - Interface: lamellar solid in the lower third, liquid in the upper
///    third, and a diffuse solidification front in between (tanh profile of
///    width ~eps).
/// Deterministic; \p lamellaWidth in cells.
void fillScenario(SimBlock& b, Scenario s, const thermo::TernarySystem& sys,
                  double eps, int lamellaWidth = 12);

/// Relative compute cost estimate of a block from its region composition,
/// for weighted load balancing: front cells run the full anti-trapping
/// evaluation, interface cells the full phi update, bulk cells only the
/// shortcut paths plus the mu diffusion. Normalized so a pure-bulk block
/// costs 1.0.
double estimateBlockCost(const RegionStats& stats);

} // namespace tpf::core
