#include "core/fused_sweep.h"

#include <algorithm>
#include <vector>

#include "comm/exchange.h"
#include "core/slab_sweep.h"
#include "util/thread_pool.h"

namespace tpf::core {

namespace {

/// Mu sweep of the slabs [lo, hi) of \p slabs, fanned out over \p pool. The
/// slabs are independent (each re-seeds its own staggered carries), so the
/// execution order is free — same argument as parallelForSlabs.
void runMuSlabs(SimBlock& b, const StepContext& ctx, MuKernelKind muKind,
                util::ThreadPool* pool, const std::vector<CellInterval>& slabs,
                int lo, int hi) {
    const int n = hi - lo;
    if (n <= 0) return;
    if (!pool || pool->threads() == 1 || n == 1) {
        for (int j = lo; j < hi; ++j)
            runMuKernel(muKind, b, ctx.forSlab(slabs[static_cast<std::size_t>(j)]),
                        MuSweepPart::Full);
        return;
    }
    pool->parallelFor(n, [&](int i) {
        runMuKernel(muKind, b,
                    ctx.forSlab(slabs[static_cast<std::size_t>(lo + i)]),
                    MuSweepPart::Full);
    });
}

} // namespace

void fillLateralGhosts(Field<double>& f, int z0, int z1) {
    const Int3 lateral[4] = {{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}};
    for (const Int3& o : lateral) {
        CellInterval from = sendRegion(f, o);
        CellInterval to = ghostRegion(f, {-o.x, -o.y, -o.z});
        from.zMin = z0;
        from.zMax = z1;
        to.zMin = z0;
        to.zMax = z1;
        const int dx = to.xMin - from.xMin;
        const int dy = to.yMin - from.yMin;
        forEachCell(from, [&](int x, int y, int z) {
            for (int c = 0; c < f.nf(); ++c)
                f(x + dx, y + dy, z, c) = f(x, y, z, c);
        });
    }
}

void fusedSweepInterior(SimBlock& b, const StepContext& ctx,
                        PhiKernelKind phiKind, MuKernelKind muKind,
                        util::ThreadPool* pool,
                        const std::function<void()>& beforeFirstMu) {
    const CellInterval whole = b.phiSrc.interior();
    const std::vector<CellInterval> slabs = slabPartition(whole);
    const int nSlabs = static_cast<int>(slabs.size());
    const int chunk = std::max(1, pool ? pool->threads() : 1);

    bool muStarted = false;
    int muNext = 1; // slab 0 reads phiDst z ghosts -> fusedSweepBoundary
    for (int c0 = 0; c0 < nSlabs; c0 += chunk) {
        const int c1 = std::min(nSlabs, c0 + chunk);
        CellInterval ci = whole;
        ci.zMin = slabs[static_cast<std::size_t>(c0)].zMin;
        ci.zMax = slabs[static_cast<std::size_t>(c1 - 1)].zMax;
        // slabPartition(ci) == slabs[c0..c1): every global slab is exactly
        // kSlabHeight planes except the last, and ci starts on a slab bottom
        // — so the chunked phi sweep reproduces the global partition and the
        // slab-determinism contract carries over unchanged.
        parallelForSlabs(pool, ci, [&](const CellInterval& s) {
            runPhiKernel(phiKind, b, ctx.forSlab(s));
        });
        fillLateralGhosts(b.phiDst, ci.zMin, ci.zMax);

        // Interior slabs whose one-slab fresh-phi halo is now complete:
        // slab j needs phi of slab j+1, i.e. j + 1 < c1.
        const int muEnd = std::min(c1 - 1, nSlabs - 1);
        if (muNext < muEnd) {
            if (!muStarted) {
                muStarted = true;
                if (beforeFirstMu) beforeFirstMu();
            }
            runMuSlabs(b, ctx, muKind, pool, slabs, muNext, muEnd);
            muNext = muEnd;
        }
    }
}

void fusedSweepBoundary(SimBlock& b, const StepContext& ctx,
                        MuKernelKind muKind, util::ThreadPool* pool) {
    const std::vector<CellInterval> slabs = slabPartition(b.phiSrc.interior());
    const int nSlabs = static_cast<int>(slabs.size());
    if (nSlabs == 0) return;
    if (nSlabs == 1) {
        runMuKernel(muKind, b, ctx.forSlab(slabs[0]), MuSweepPart::Full);
        return;
    }
    if (pool && pool->threads() > 1) {
        const int idx[2] = {0, nSlabs - 1};
        pool->parallelFor(2, [&](int i) {
            runMuKernel(muKind, b,
                        ctx.forSlab(slabs[static_cast<std::size_t>(idx[i])]),
                        MuSweepPart::Full);
        });
        return;
    }
    runMuKernel(muKind, b, ctx.forSlab(slabs[0]), MuSweepPart::Full);
    runMuKernel(muKind, b, ctx.forSlab(slabs[static_cast<std::size_t>(nSlabs - 1)]),
                MuSweepPart::Full);
}

} // namespace tpf::core
