/// \file phi_kernel_cellwise_body.h
/// Width-4 cellwise phi-sweep body (one SIMD vector = the four phases of one
/// cell). NO include guard on purpose: this file is included — possibly
/// several times per program, once per instruction-set target — inside an
/// anonymous namespace, with a `using V = <4-wide vector type>;` alias in
/// scope. Every function below therefore gets internal linkage in each
/// including translation unit, so targets compiled with different ISA flags
/// can never collapse into one symbol (the ODR hazard that rules out vague
/// template linkage here; see docs/KERNELS.md "Runtime dispatch").
///
/// The includer provides (at file scope, before the anonymous namespace):
///   core/kernels.h, core/model_common.h, util/alignment.h, <vector>,
///   and the vector-type header selected for V.
///
/// Cellwise strategy (the paper's fastest choice, Figure 5): pairwise phase
/// terms use lane rotations; branching stays possible per cell, which is what
/// makes the bulk shortcut effective. Variant flags (Figure 6 progression):
/// +T(z) slice cache, +staggered face-flux buffers, +shortcuts.

static_assert(V::width == 4, "cellwise body packs the 4 phases of one cell");

/// Per-sweep constants in vector form.
struct PhiSimdConsts {
    V gammaRot[3]; ///< gammaRot[k-1] lane a = gamma[a][(a+k)%4]
    V invTauEps;
    V kinvA, kinvB, kinvD;
    double eps, invEps, w16, gamma3, invDx, halfInvDx, dt;

    static PhiSimdConsts build(const ModelConsts& mc) {
        PhiSimdConsts c;
        for (int k = 1; k <= 3; ++k)
            c.gammaRot[k - 1] =
                V::set(mc.gamma[0][(0 + k) % 4], mc.gamma[1][(1 + k) % 4],
                       mc.gamma[2][(2 + k) % 4], mc.gamma[3][(3 + k) % 4]);
        c.invTauEps = V::set(mc.invTauEps[0], mc.invTauEps[1], mc.invTauEps[2],
                             mc.invTauEps[3]);
        c.kinvA = V::set(mc.kinvA[0], mc.kinvA[1], mc.kinvA[2], mc.kinvA[3]);
        c.kinvB = V::set(mc.kinvB[0], mc.kinvB[1], mc.kinvB[2], mc.kinvB[3]);
        c.kinvD = V::set(mc.kinvD[0], mc.kinvD[1], mc.kinvD[2], mc.kinvD[3]);
        c.eps = mc.eps;
        c.invEps = mc.invEps;
        c.w16 = mc.w16;
        c.gamma3 = mc.gamma3;
        c.invDx = mc.invDx;
        c.halfInvDx = mc.halfInvDx;
        c.dt = mc.dt;
        return c;
    }
};

/// Slice thermo values in vector form.
struct SliceVec {
    V xix, xiy, om;
    double Tt;

    static SliceVec from(const SliceThermo& st) {
        SliceVec s;
        s.xix = V::set(st.xix[0], st.xix[1], st.xix[2], st.xix[3]);
        s.xiy = V::set(st.xiy[0], st.xiy[1], st.xiy[2], st.xiy[3]);
        s.om = V::set(st.om[0], st.om[1], st.om[2], st.om[3]);
        s.Tt = st.Tt;
        return s;
    }
};

/// Load the four phases of one cell as a vector (gather for fzyx, contiguous
/// load for zyxf).
template <bool kFzyx>
inline V loadCellPhases(const Field<double>& f, int x, int y, int z) {
    if constexpr (kFzyx) {
        const double* p = f.ptr(x, y, z, 0);
        const std::ptrdiff_t sf = f.fStride();
        return V::set(p[0], p[sf], p[2 * sf], p[3 * sf]);
    } else {
        return V::loadu(f.ptr(x, y, z, 0));
    }
}

template <bool kFzyx>
inline void storeCellPhases(Field<double>& f, int x, int y, int z, V v) {
    if constexpr (kFzyx) {
        double* p = f.ptr(x, y, z, 0);
        alignas(32) double tmp[4];
        v.store(tmp);
        const std::ptrdiff_t sf = f.fStride();
        p[0] = tmp[0];
        p[sf] = tmp[1];
        p[2 * sf] = tmp[2];
        p[3 * sf] = tmp[3];
    } else {
        v.storeu(f.ptr(x, y, z, 0));
    }
}

/// Staggered-face flux of da/dgrad(phi) (normal component), vector over the
/// four phases:
///   flux_a = -2 eps sum_k gammaRot_k[a] pf_{a+k} (pf_a dp_{a+k} - pf_{a+k} dp_a)
inline V faceFluxV(const PhiSimdConsts& sc, V pL, V pR) {
    const V half = V::broadcast(0.5);
    const V invDx = V::broadcast(sc.invDx);
    const V pf = half * (pL + pR);
    const V dp = (pR - pL) * invDx;

    V acc = V::zero();
    {
        const V pfk = pf.rotateLeft1(), dpk = dp.rotateLeft1();
        acc += sc.gammaRot[0] * pfk * (pf * dpk - pfk * dp);
    }
    {
        const V pfk = pf.rotateLeft2(), dpk = dp.rotateLeft2();
        acc += sc.gammaRot[1] * pfk * (pf * dpk - pfk * dp);
    }
    {
        const V pfk = pf.rotateLeft3(), dpk = dp.rotateLeft3();
        acc += sc.gammaRot[2] * pfk * (pf * dpk - pfk * dp);
    }
    return V::broadcast(-2.0 * sc.eps) * acc;
}

/// Sum of all lanes replicated into every lane (per-lane rotation sums).
inline V laneSum(V v) {
    return ((v + v.rotateLeft1()) + (v.rotateLeft2() + v.rotateLeft3()));
}

/// One full cellwise phi update for the cell vectors (pC plus 6 neighbors)
/// and face fluxes; returns the projected phi(t+dt).
inline V cellUpdate(const PhiSimdConsts& sc, const SliceVec& sv, V pC, V pW,
                    V pE, V pS, V pN_, V pB, V pT, V fxm, V fxp, V fym, V fyp,
                    V fzm, V fzp, double mux, double muy) {
    const V invDx = V::broadcast(sc.invDx);
    const V div = (((fxp - fxm) + (fyp - fym)) + (fzp - fzm)) * invDx;

    // Cell-centered gradients.
    const V hx = V::broadcast(sc.halfInvDx);
    const V g0 = (pE - pW) * hx;
    const V g1 = (pN_ - pS) * hx;
    const V g2 = (pT - pB) * hx;

    // da/dphi: 2 eps sum_k gammaRot_k (q . grad_{a+k}).
    V dad = V::zero();
    {
        const V pk = pC.rotateLeft1();
        const V gk0 = g0.rotateLeft1(), gk1 = g1.rotateLeft1(),
                gk2 = g2.rotateLeft1();
        const V dot = (pC * gk0 - pk * g0) * gk0 + (pC * gk1 - pk * g1) * gk1 +
                      (pC * gk2 - pk * g2) * gk2;
        dad += sc.gammaRot[0] * dot;
    }
    {
        const V pk = pC.rotateLeft2();
        const V gk0 = g0.rotateLeft2(), gk1 = g1.rotateLeft2(),
                gk2 = g2.rotateLeft2();
        const V dot = (pC * gk0 - pk * g0) * gk0 + (pC * gk1 - pk * g1) * gk1 +
                      (pC * gk2 - pk * g2) * gk2;
        dad += sc.gammaRot[1] * dot;
    }
    {
        const V pk = pC.rotateLeft3();
        const V gk0 = g0.rotateLeft3(), gk1 = g1.rotateLeft3(),
                gk2 = g2.rotateLeft3();
        const V dot = (pC * gk0 - pk * g0) * gk0 + (pC * gk1 - pk * g1) * gk1 +
                      (pC * gk2 - pk * g2) * gk2;
        dad += sc.gammaRot[2] * dot;
    }
    dad *= V::broadcast(2.0 * sc.eps);

    // Obstacle derivative: w16 sum gamma phi + gamma3 (P - phi (S - phi)).
    const V S = laneSum(pC);
    const V sumGP = sc.gammaRot[0] * pC.rotateLeft1() +
                    sc.gammaRot[1] * pC.rotateLeft2() +
                    sc.gammaRot[2] * pC.rotateLeft3();
    const V p2 = pC * pC;
    const V P = V::broadcast(0.5) * (S * S - laneSum(p2));
    const V dom = V::broadcast(sc.w16) * sumGP +
                  V::broadcast(sc.gamma3) * (P - pC * (S - pC));

    // Driving force from the grand potentials.
    const V s2 = laneSum(p2);
    const V invS2 = V::broadcast(1.0) / s2;
    const V h = p2 * invS2;
    const V vmux = V::broadcast(mux), vmuy = V::broadcast(muy);
    const V quad = V::broadcast(0.5) *
                   (sc.kinvA * vmux * vmux +
                    V::broadcast(2.0) * sc.kinvB * vmux * vmuy +
                    sc.kinvD * vmuy * vmuy);
    const V om = -quad - (vmux * sv.xix + vmuy * sv.xiy) + sv.om;
    const V omBar = laneSum(om * h);
    const V dpsi = V::broadcast(2.0) * pC * invS2 * (om - omBar);

    // Assemble, anti-symmetrize, advance, project.
    const V Tt = V::broadcast(sv.Tt);
    const V rhs = Tt * (div - dad) - Tt * V::broadcast(sc.invEps) * dom - dpsi;
    const V mean = V::broadcast(0.25) * laneSum(rhs);
    V prop = pC + V::broadcast(sc.dt) * sc.invTauEps * (rhs - mean);

    // Scalar projection (bitwise-identical to the scalar kernels; the paper
    // notes this routine branches per cell anyway).
    alignas(32) double tmp[4];
    prop.store(tmp);
    projectToSimplex4(tmp[0], tmp[1], tmp[2], tmp[3]);
    return V::load(tmp);
}

template <bool kFzyx>
void phiSweepCellwiseImpl(SimBlock& blk, const StepContext& ctx, bool useTz,
                          bool useStag, bool shortcuts) {
    const ModelConsts& mc = ctx.mc;
    const PhiSimdConsts sc = PhiSimdConsts::build(mc);
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.phiDst;
    const int nx = blk.size.x, ny = blk.size.y, nz = blk.size.z;
    const int z0 = ctx.zLo(), z1 = ctx.zHi(nz);
    const V one = V::broadcast(1.0);

    // Staggered buffers (vector slots, 32-byte strided on a 64-byte base).
    // The z-plane buffer restarts at the slab bottom (z == z0) with the same
    // faceFluxV expression the full sweep would have buffered there.
    std::vector<double, AlignedAllocator<double>> rowY, planeZ;
    if (useStag) {
        rowY.assign(static_cast<std::size_t>(nx) * 4, 0.0);
        planeZ.assign(static_cast<std::size_t>(nx) * ny * 4, 0.0);
    }

    for (int z = z0; z < z1; ++z) {
        SliceThermo st;
        SliceVec sv;
        if (useTz) {
            // T(z) optimization: temperature-dependent values once per slice.
            TPF_ASSERT(ctx.tz != nullptr, "Tz variant requires a cache");
            st = ctx.tz->at(z);
            sv = SliceVec::from(st);
        }
        for (int y = 0; y < ny; ++y) {
            V carryX = V::zero();
            for (int x = 0; x < nx; ++x) {
                if (!useTz) {
                    // "basic" temperature handling: recompute per cell.
                    const double T = ctx.temp->atCell(blk.origin.z + z,
                                                      ctx.time,
                                                      ctx.windowOffset);
                    st = computeSliceThermo(mc, T);
                    sv = SliceVec::from(st);
                }

                const V pC = loadCellPhases<kFzyx>(P, x, y, z);
                const V pW = loadCellPhases<kFzyx>(P, x - 1, y, z);
                const V pE = loadCellPhases<kFzyx>(P, x + 1, y, z);
                const V pS = loadCellPhases<kFzyx>(P, x, y - 1, z);
                const V pN_ = loadCellPhases<kFzyx>(P, x, y + 1, z);
                const V pB = loadCellPhases<kFzyx>(P, x, y, z - 1);
                const V pT = loadCellPhases<kFzyx>(P, x, y, z + 1);

                if (shortcuts) {
                    // Bulk test: some lane equals 1 in the cell and all six
                    // neighbors (exact; cellwise vectorization allows this
                    // per-cell branch).
                    const auto bulk = (pC == one) & (pW == one) & (pE == one) &
                                      (pS == one) & (pN_ == one) &
                                      (pB == one) & (pT == one);
                    if (bulk.any()) {
                        storeCellPhases<kFzyx>(Dst, x, y, z, pC);
                        if (useStag) {
                            carryX = V::zero();
                            V::zero().store(rowY.data() +
                                            static_cast<std::size_t>(x) * 4);
                            V::zero().store(planeZ.data() +
                                            (static_cast<std::size_t>(y) * nx +
                                             x) *
                                                4);
                        }
                        continue;
                    }
                }

                V fxm, fxp, fym, fyp, fzm, fzp;
                if (useStag) {
                    fxm = (x == 0) ? faceFluxV(sc, pW, pC) : carryX;
                    fxp = faceFluxV(sc, pC, pE);
                    carryX = fxp;

                    double* ry = rowY.data() + static_cast<std::size_t>(x) * 4;
                    fym = (y == 0) ? faceFluxV(sc, pS, pC) : V::load(ry);
                    fyp = faceFluxV(sc, pC, pN_);
                    fyp.store(ry);

                    double* pz =
                        planeZ.data() +
                        (static_cast<std::size_t>(y) * nx + x) * 4;
                    fzm = (z == z0) ? faceFluxV(sc, pB, pC) : V::load(pz);
                    fzp = faceFluxV(sc, pC, pT);
                    fzp.store(pz);
                } else {
                    fxm = faceFluxV(sc, pW, pC);
                    fxp = faceFluxV(sc, pC, pE);
                    fym = faceFluxV(sc, pS, pC);
                    fyp = faceFluxV(sc, pC, pN_);
                    fzm = faceFluxV(sc, pB, pC);
                    fzp = faceFluxV(sc, pC, pT);
                }

                const V out = cellUpdate(sc, sv, pC, pW, pE, pS, pN_, pB, pT,
                                         fxm, fxp, fym, fyp, fzm, fzp,
                                         Mu(x, y, z, 0), Mu(x, y, z, 1));
                storeCellPhases<kFzyx>(Dst, x, y, z, out);
            }
        }
    }
}

inline void phiSweepCellwiseBody(SimBlock& b, const StepContext& ctx,
                                 bool useTz, bool useStag, bool shortcuts) {
    if (b.phiSrc.layout() == Layout::fzyx)
        phiSweepCellwiseImpl<true>(b, ctx, useTz, useStag, shortcuts);
    else
        phiSweepCellwiseImpl<false>(b, ctx, useTz, useStag, shortcuts);
}
