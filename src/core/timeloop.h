#pragma once
/// \file timeloop.h
/// Functor-sequence time loop (the counterpart of waLBerla's "Timeloop"
/// class): compute kernels, communication and boundary handling register as
/// named functors; per-functor wall-clock times are accumulated for the
/// communication-hiding analysis (Figure 8 of the paper).

#include <functional>
#include <string>
#include <vector>

namespace tpf::core {

class Timeloop {
public:
    /// Append a named step executed once per time step, in order.
    void add(std::string name, std::function<void()> fn);

    /// Run one time step (all functors in registration order).
    void singleStep();

    /// Run \p steps time steps.
    void run(int steps);

    /// Number of completed time steps.
    long long steps() const { return steps_; }

    /// Accumulated seconds per functor (registration order).
    struct Timing {
        std::string name;
        double seconds = 0.0;
        long long calls = 0;
    };
    const std::vector<Timing>& timings() const { return timings_; }
    void resetTimings();

private:
    std::vector<std::function<void()>> fns_;
    std::vector<Timing> timings_;
    long long steps_ = 0;
};

} // namespace tpf::core
