#pragma once
/// \file timeloop.h
/// Functor-sequence time loop (the counterpart of waLBerla's "Timeloop"
/// class): compute kernels, communication and boundary handling register as
/// named functors; per-functor wall-clock times are accumulated for the
/// communication-hiding analysis (Figure 8 of the paper).
///
/// Thread-awareness contract: functors may fan work out to a
/// util::ThreadPool, but singleStep() itself always runs on the loop's own
/// thread and each functor is accounted by the *wall time of its fan-out* on
/// that thread — never by the sum of per-thread busy times (which would
/// overcount an n-thread sweep n-fold). Timing is recorded even when a
/// functor throws (e.g. an exception propagated from a pool worker), so
/// timings()/calls stay consistent with what actually executed.

#include <functional>
#include <string>
#include <vector>

namespace tpf::core {

class Timeloop {
public:
    /// Append a named step executed once per time step, in order.
    void add(std::string name, std::function<void()> fn);

    /// Run one time step (all functors in registration order). Not
    /// reentrant: must not be called from inside a functor (asserted).
    void singleStep();

    /// Run \p steps time steps.
    void run(int steps);

    /// Number of completed time steps.
    long long steps() const { return steps_; }

    /// Set the completed-step counter (checkpoint restore). Functor cadences
    /// such as the moving-window check key off steps(), so a restarted run
    /// must resume the counter — not restart it at zero — to replay the same
    /// schedule as an uninterrupted run.
    void setSteps(long long s) { steps_ = s; }

    /// Accumulated per-functor timing (registration order). `seconds` is the
    /// summed fan-out wall time as seen by the loop thread; `maxSeconds` the
    /// largest single call (spike detection in the Figure-8 analysis).
    struct Timing {
        std::string name;
        double seconds = 0.0;
        double maxSeconds = 0.0;
        long long calls = 0;
    };
    const std::vector<Timing>& timings() const { return timings_; }
    void resetTimings();

private:
    std::vector<std::function<void()>> fns_;
    std::vector<Timing> timings_;
    long long steps_ = 0;
    bool inStep_ = false;
};

} // namespace tpf::core
