#include "core/regions.h"

#include <cmath>

#include "util/fastmath.h"
#include "util/simplex.h"

namespace tpf::core {

CellRegion classifyCell(const Field<double>& phi, int x, int y, int z) {
    for (int a = 0; a < N; ++a) {
        if (phi(x, y, z, a) == 1.0)
            return a == LIQ ? CellRegion::BulkLiquid : CellRegion::BulkSolid;
    }
    return phi(x, y, z, LIQ) > 0.0 ? CellRegion::Front : CellRegion::Interface;
}

RegionStats classifyBlock(const Field<double>& phi) {
    RegionStats st;
    forEachCell(phi.interior(), [&](int x, int y, int z) {
        switch (classifyCell(phi, x, y, z)) {
            case CellRegion::BulkSolid: ++st.bulkSolid; break;
            case CellRegion::BulkLiquid: ++st.bulkLiquid; break;
            case CellRegion::Interface: ++st.interface; break;
            case CellRegion::Front: ++st.front; break;
        }
    });
    return st;
}

double estimateBlockCost(const RegionStats& stats) {
    // Relative per-cell costs measured by bench_ablation (shortcut on/off):
    // bulk ~1, solid-solid interface ~2.5, solidification front ~3.5.
    const double cost =
        1.0 * static_cast<double>(stats.bulkSolid + stats.bulkLiquid) +
        2.5 * static_cast<double>(stats.interface) +
        3.5 * static_cast<double>(stats.front);
    const double cells = static_cast<double>(stats.total());
    return cells > 0.0 ? cost / cells : 1.0;
}

const char* scenarioName(Scenario s) {
    switch (s) {
        case Scenario::Interface: return "interface";
        case Scenario::Liquid: return "liquid";
        case Scenario::Solid: return "solid";
    }
    return "?";
}

namespace {

/// Smooth step in [0, 1] with the obstacle model's compact sinus profile of
/// total width w around position c: exactly 0 / 1 outside the interface (the
/// paper: "the interface region I is bounded due to a sinus-shaped interface
/// profile"), which is what creates exact bulk cells.
double sstep(double v, double c, double w) {
    const double s = (v - c) / w; // -0.5 .. 0.5 across the interface
    if (s <= -0.5) return 0.0;
    if (s >= 0.5) return 1.0;
    return 0.5 * (1.0 + sinpiCompact(s));
}

/// Solid phase index of the lamellar pattern at x (stripes of phases 0,1,2).
int lamellaPhase(int x, int width) {
    const int idx = (x / width) % 3;
    return idx;
}

} // namespace

void fillScenario(SimBlock& b, Scenario s, const thermo::TernarySystem& sys,
                  double eps, int lamellaWidth) {
    Field<double>& phi = b.phiSrc;
    Field<double>& mu = b.muSrc;
    const Vec2 muE = sys.muEut();
    const double w = std::max(2.0, eps);   // interface width in cells
    const double zFront = 0.5 * b.size.z; // front position for Interface

    forEachCell(phi.withGhosts(), [&](int x, int y, int z) {
        (void)y;
        double p[N] = {0, 0, 0, 0};
        switch (s) {
            case Scenario::Liquid: p[LIQ] = 1.0; break;
            case Scenario::Solid: {
                // Lamellae along x with a diffuse solid-solid boundary.
                const int xw = ((x % (3 * lamellaWidth)) + 3 * lamellaWidth) %
                               (3 * lamellaWidth);
                const int a0 = lamellaPhase(xw, lamellaWidth);
                const int a1 = (a0 + 1) % 3;
                const double posInStripe =
                    static_cast<double>(xw - a0 * lamellaWidth);
                const double t =
                    sstep(posInStripe, static_cast<double>(lamellaWidth) - 0.5, w);
                p[a0] = 1.0 - t;
                p[a1] = t;
                break;
            }
            case Scenario::Interface: {
                const double liq = sstep(static_cast<double>(z), zFront, w);
                const int xw = ((x % (3 * lamellaWidth)) + 3 * lamellaWidth) %
                               (3 * lamellaWidth);
                const int a0 = lamellaPhase(xw, lamellaWidth);
                p[LIQ] = liq;
                p[a0] = 1.0 - liq;
                break;
            }
        }
        // Snap near-vertex values to exact vertices: the obstacle model's
        // sinus-shaped profile has compact support, so bulk cells carry exact
        // 0/1 values in a converged simulation (the tanh tail here is an
        // initialization artifact the projection would truncate anyway).
        for (int a = 0; a < N; ++a) {
            if (p[a] >= 1.0 - 1e-6) {
                for (int c = 0; c < N; ++c) p[c] = (c == a) ? 1.0 : 0.0;
                break;
            }
            if (p[a] <= 1e-9) p[a] = 0.0;
        }
        double q0 = p[0], q1 = p[1], q2 = p[2], q3 = p[3];
        projectToSimplex4(q0, q1, q2, q3);
        phi(x, y, z, 0) = q0;
        phi(x, y, z, 1) = q1;
        phi(x, y, z, 2) = q2;
        phi(x, y, z, 3) = q3;

        mu(x, y, z, 0) = muE.x;
        mu(x, y, z, 1) = muE.y;
    });

    // phiDst starts as a copy so partial sweeps see consistent data.
    b.phiDst.copyFrom(b.phiSrc);
    b.muDst.copyFrom(b.muSrc);
}

} // namespace tpf::core
