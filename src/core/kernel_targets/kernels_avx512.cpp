/// \file kernels_avx512.cpp
/// The "avx512" dispatch target: the multi-cell phi/mu bodies instantiated
/// 8-wide with Vec8dAvx512; the cellwise phi body stays 4-wide on Vec4dAvx2
/// (its lane rotations encode the four phases of one cell — width is part of
/// its meaning, not a tuning knob). Compiled with per-file
/// `-mavx2 -mfma -mavx512f` (src/CMakeLists.txt); deliberately WITHOUT
/// -mavx512vl, so 256-bit operations shared with the avx2 target keep their
/// VEX encodings and cannot leak EVEX instructions through vague-linkage
/// inline functions into non-AVX-512 code paths.

#include <algorithm>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/kernels.h"
#include "core/model_common.h"
#include "simd/simplex4.h"
#include "simd/vec4d_avx2.h"
#include "simd/vec8d_avx512.h"
#include "util/alignment.h"

namespace tpf::core {

#if defined(__AVX512F__) && defined(__AVX2__) && defined(__FMA__)

namespace {

namespace cellwise {
using V = simd::Vec4dAvx2;
#include "core/phi_kernel_cellwise_body.h"
} // namespace cellwise

namespace multicell {
using V = simd::Vec8dAvx512;
#include "core/phi_kernel_multicell_body.h"
#include "core/mu_kernel_multicell_body.h"
} // namespace multicell

const KernelTarget kTarget = {
    "avx512",
    simd::Vec8dAvx512::width,
    &cellwise::phiSweepCellwiseBody,
    &multicell::phiSweepMultiCellBody,
    &multicell::muSweepMultiCellBody,
};

} // namespace

const KernelTarget* kernelTargetAvx512() { return &kTarget; }

#else

const KernelTarget* kernelTargetAvx512() { return nullptr; }

#endif

} // namespace tpf::core
