/// \file kernels_avx2.cpp
/// The "avx2" dispatch target: kernel bodies instantiated with Vec4dAvx2.
/// Compiled with per-file `-mavx2 -mfma` (src/CMakeLists.txt) when the
/// compiler supports them, so the target exists even in portable builds; the
/// runtime cpuid check in kernel_dispatch.cpp keeps it off unsupported CPUs.

#include <algorithm>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/kernels.h"
#include "core/model_common.h"
#include "simd/simplex4.h"
#include "simd/vec4d_avx2.h"
#include "util/alignment.h"

namespace tpf::core {

#if defined(__AVX2__) && defined(__FMA__)

namespace {

namespace cellwise {
using V = simd::Vec4dAvx2;
#include "core/phi_kernel_cellwise_body.h"
} // namespace cellwise

namespace multicell {
using V = simd::Vec4dAvx2;
#include "core/phi_kernel_multicell_body.h"
#include "core/mu_kernel_multicell_body.h"
} // namespace multicell

const KernelTarget kTarget = {
    "avx2",
    simd::Vec4dAvx2::width,
    &cellwise::phiSweepCellwiseBody,
    &multicell::phiSweepMultiCellBody,
    &multicell::muSweepMultiCellBody,
};

} // namespace

const KernelTarget* kernelTargetAvx2() { return &kTarget; }

#else

const KernelTarget* kernelTargetAvx2() { return nullptr; }

#endif

} // namespace tpf::core
