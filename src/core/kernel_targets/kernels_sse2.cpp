/// \file kernels_sse2.cpp
/// The "sse2" dispatch target: kernel bodies instantiated with the two-half
/// Vec4dSse2 backend. SSE2 is baseline on x86-64, so no per-file ISA flags
/// are needed; on architectures without SSE2 the accessor returns nullptr.

#include <algorithm>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/kernels.h"
#include "core/model_common.h"
#include "simd/simplex4.h"
#include "simd/vec4d_sse2.h"
#include "util/alignment.h"

namespace tpf::core {

#if defined(__SSE2__) || defined(_M_X64)

namespace {

namespace cellwise {
using V = simd::Vec4dSse2;
#include "core/phi_kernel_cellwise_body.h"
} // namespace cellwise

namespace multicell {
using V = simd::Vec4dSse2;
#include "core/phi_kernel_multicell_body.h"
#include "core/mu_kernel_multicell_body.h"
} // namespace multicell

const KernelTarget kTarget = {
    "sse2",
    simd::Vec4dSse2::width,
    &cellwise::phiSweepCellwiseBody,
    &multicell::phiSweepMultiCellBody,
    &multicell::muSweepMultiCellBody,
};

} // namespace

const KernelTarget* kernelTargetSse2() { return &kTarget; }

#else

const KernelTarget* kernelTargetSse2() { return nullptr; }

#endif

} // namespace tpf::core
