/// \file kernels_scalar.cpp
/// The "scalar" dispatch target: all kernel bodies instantiated with the
/// portable Vec4dScalar backend. Always compiled, always CPU-supported — the
/// reference target every other one must match bitwise (the std::fma / memcpy
/// rsqrt forms in vec4d_scalar.h are the contract; docs/CORRECTNESS.md).

#include <algorithm>
#include <vector>

#include "core/kernel_dispatch.h"
#include "core/kernels.h"
#include "core/model_common.h"
#include "simd/simplex4.h"
#include "simd/vec4d_scalar.h"
#include "util/alignment.h"

namespace tpf::core {

namespace {

namespace cellwise {
using V = simd::Vec4dScalar;
#include "core/phi_kernel_cellwise_body.h"
} // namespace cellwise

namespace multicell {
using V = simd::Vec4dScalar;
#include "core/phi_kernel_multicell_body.h"
#include "core/mu_kernel_multicell_body.h"
} // namespace multicell

const KernelTarget kTarget = {
    "scalar",
    simd::Vec4dScalar::width,
    &cellwise::phiSweepCellwiseBody,
    &multicell::phiSweepMultiCellBody,
    &multicell::muSweepMultiCellBody,
};

} // namespace

const KernelTarget* kernelTargetScalar() { return &kTarget; }

} // namespace tpf::core
