/// \file phi_kernel_ref.cpp
/// Reference phi-sweep implementations:
///  - phiSweepGeneral: emulates the original general-purpose C code the paper
///    starts from (PACE3D style): every model term is invoked through a
///    function pointer per cell, nothing is specialized or cached.
///  - phiSweepBasic: the "basic waLBerla implementation" — the same math with
///    direct (inlinable) calls, still recomputing all temperature-dependent
///    values in every cell.
/// Both serve as the golden reference for the optimized kernel variants.

#include "core/kernels.h"
#include "core/model_common.h"

namespace tpf::core {

namespace {

/// Slice-thermo provider: cached (Tz variants) or recomputed per call.
struct SliceProvider {
    const StepContext& ctx;
    const SimBlock& blk;
    bool useCache;

    SliceThermo at(int z) const {
        if (useCache) {
            TPF_ASSERT(ctx.tz != nullptr, "kernel variant requires a TzCache");
            return ctx.tz->at(z);
        }
        TPF_ASSERT(ctx.temp != nullptr,
                   "kernel variant requires the analytic temperature");
        const double T =
            ctx.temp->atCell(blk.origin.z + z, ctx.time, ctx.windowOffset);
        return computeSliceThermo(ctx.mc, T);
    }
};

inline void loadPhi(const Field<double>& f, int x, int y, int z, double* p) {
    for (int a = 0; a < N; ++a) p[a] = f(x, y, z, a);
}

/// Direct-call term operations (fully inlinable).
struct DirectPhiOps {
    static void faceFlux(const ModelConsts& mc, const double* pL,
                         const double* pR, double* flux) {
        phiFaceFlux(mc, pL, pR, flux);
    }
    static void gradDeriv(const ModelConsts& mc, const double* p,
                          const double g[3][N], double* dadphi) {
        phiGradEnergyDeriv(mc, p, g, dadphi);
    }
    static void obstacle(const ModelConsts& mc, const double* p, double* dom) {
        obstacleDeriv(mc, p, dom);
    }
    static void driving(const ModelConsts& mc, const SliceThermo& st,
                        const double* p, double mux, double muy, double* dpsi) {
        drivingForce(mc, st, p, mux, muy, dpsi);
    }
    static void update(const ModelConsts& mc, const SliceThermo& st,
                       const double* p, const double* div, const double* dadphi,
                       const double* dom, const double* dpsi, double* out) {
        phiUpdateCell(mc, st, p, div, dadphi, dom, dpsi, out);
    }
};

/// Function-pointer term operations — the per-cell indirection of the
/// original general-purpose code. The pointers live in mutable globals of
/// this translation unit so the compiler cannot devirtualize the calls.
struct GeneralPhiOps {
    void (*faceFlux)(const ModelConsts&, const double*, const double*, double*);
    void (*gradDeriv)(const ModelConsts&, const double*, const double[3][N],
                      double*);
    void (*obstacle)(const ModelConsts&, const double*, double*);
    void (*driving)(const ModelConsts&, const SliceThermo&, const double*,
                    double, double, double*);
    void (*update)(const ModelConsts&, const SliceThermo&, const double*,
                   const double*, const double*, const double*, const double*,
                   double*);
};

void generalFaceFlux(const ModelConsts& mc, const double* pL, const double* pR,
                     double* flux) {
    phiFaceFlux(mc, pL, pR, flux);
}
void generalGradDeriv(const ModelConsts& mc, const double* p,
                      const double g[3][N], double* dadphi) {
    phiGradEnergyDeriv(mc, p, g, dadphi);
}
void generalObstacle(const ModelConsts& mc, const double* p, double* dom) {
    obstacleDeriv(mc, p, dom);
}
void generalDriving(const ModelConsts& mc, const SliceThermo& st,
                    const double* p, double mux, double muy, double* dpsi) {
    drivingForce(mc, st, p, mux, muy, dpsi);
}
void generalUpdate(const ModelConsts& mc, const SliceThermo& st, const double* p,
                   const double* div, const double* dadphi, const double* dom,
                   const double* dpsi, double* out) {
    phiUpdateCell(mc, st, p, div, dadphi, dom, dpsi, out);
}

// Volatile-qualified pointer holder defeats constant propagation of targets.
volatile bool gOpsInitialized = false;
GeneralPhiOps gGeneralOps{};

const GeneralPhiOps& generalOps() {
    if (!gOpsInitialized) {
        gGeneralOps = {&generalFaceFlux, &generalGradDeriv, &generalObstacle,
                       &generalDriving, &generalUpdate};
        gOpsInitialized = true;
    }
    return gGeneralOps;
}

template <typename Ops>
void phiSweepImpl(SimBlock& blk, const StepContext& ctx, bool useCache,
                  const Ops& ops) {
    const ModelConsts& mc = ctx.mc;
    const Field<double>& P = blk.phiSrc;
    const Field<double>& Mu = blk.muSrc;
    Field<double>& Dst = blk.phiDst;
    const SliceProvider sp{ctx, blk, useCache};

    for (int z = ctx.zLo(); z < ctx.zHi(blk.size.z); ++z) {
        const SliceThermo st = sp.at(z);
        for (int y = 0; y < blk.size.y; ++y) {
            for (int x = 0; x < blk.size.x; ++x) {
                double pC[N], pW[N], pE[N], pS[N], pN[N], pB[N], pT[N];
                loadPhi(P, x, y, z, pC);
                loadPhi(P, x - 1, y, z, pW);
                loadPhi(P, x + 1, y, z, pE);
                loadPhi(P, x, y - 1, z, pS);
                loadPhi(P, x, y + 1, z, pN);
                loadPhi(P, x, y, z - 1, pB);
                loadPhi(P, x, y, z + 1, pT);

                // Staggered face fluxes of da/dgrad(phi): lower cell first.
                double fxm[N], fxp[N], fym[N], fyp[N], fzm[N], fzp[N];
                ops.faceFlux(mc, pW, pC, fxm);
                ops.faceFlux(mc, pC, pE, fxp);
                ops.faceFlux(mc, pS, pC, fym);
                ops.faceFlux(mc, pC, pN, fyp);
                ops.faceFlux(mc, pB, pC, fzm);
                ops.faceFlux(mc, pC, pT, fzp);

                double div[N];
                for (int a = 0; a < N; ++a)
                    div[a] = (((fxp[a] - fxm[a]) + (fyp[a] - fym[a])) +
                              (fzp[a] - fzm[a])) *
                             mc.invDx;

                // Cell-centered gradients for da/dphi.
                double g[3][N];
                for (int a = 0; a < N; ++a) {
                    g[0][a] = (pE[a] - pW[a]) * mc.halfInvDx;
                    g[1][a] = (pN[a] - pS[a]) * mc.halfInvDx;
                    g[2][a] = (pT[a] - pB[a]) * mc.halfInvDx;
                }
                double dadphi[N];
                ops.gradDeriv(mc, pC, g, dadphi);

                double dom[N];
                ops.obstacle(mc, pC, dom);

                double dpsi[N];
                ops.driving(mc, st, pC, Mu(x, y, z, 0), Mu(x, y, z, 1), dpsi);

                double out[N];
                ops.update(mc, st, pC, div, dadphi, dom, dpsi, out);
                for (int a = 0; a < N; ++a) Dst(x, y, z, a) = out[a];
            }
        }
    }
}

} // namespace

void phiSweepGeneral(SimBlock& blk, const StepContext& ctx) {
    struct Indirect {
        const GeneralPhiOps& t;
        void faceFlux(const ModelConsts& mc, const double* a, const double* b,
                      double* o) const {
            t.faceFlux(mc, a, b, o);
        }
        void gradDeriv(const ModelConsts& mc, const double* p,
                       const double g[3][N], double* o) const {
            t.gradDeriv(mc, p, g, o);
        }
        void obstacle(const ModelConsts& mc, const double* p, double* o) const {
            t.obstacle(mc, p, o);
        }
        void driving(const ModelConsts& mc, const SliceThermo& st,
                     const double* p, double mx, double my, double* o) const {
            t.driving(mc, st, p, mx, my, o);
        }
        void update(const ModelConsts& mc, const SliceThermo& st,
                    const double* p, const double* d, const double* da,
                    const double* dm, const double* dp, double* o) const {
            t.update(mc, st, p, d, da, dm, dp, o);
        }
    };
    phiSweepImpl(blk, ctx, /*useCache=*/false, Indirect{generalOps()});
}

void phiSweepBasic(SimBlock& blk, const StepContext& ctx) {
    phiSweepImpl(blk, ctx, /*useCache=*/false, DirectPhiOps{});
}

} // namespace tpf::core
