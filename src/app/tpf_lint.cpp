/// \file tpf_lint.cpp
/// CLI driver for the tpf-lint invariant checker (src/lint, see
/// docs/CORRECTNESS.md).
///
///   tpf-lint [options] <file-or-dir>...
///
/// Scans the given files (or all *.h/*.hpp/*.cpp/*.cc under the given
/// directories, recursively, in sorted order so output is deterministic) and
/// prints one fix-it-style diagnostic per finding:
///
///   src/core/foo.cpp:12:9: error: [fastmath] libm sin() in src/core ...
///     fix-it: use util/fastmath (e.g. tpf::sinpiCompact, ...)
///
/// Exit codes: 0 clean, 1 findings, 2 usage/IO error — so it slots directly
/// into ctest and CI gates.

#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

void usage(std::FILE* to) {
    std::fprintf(to,
                 "usage: tpf-lint [options] <file-or-dir>...\n"
                 "  --list-rules         print the rule catalog and exit\n"
                 "  --rule <name>        run only this rule (repeatable)\n"
                 "  --no-rule <name>     skip this rule (repeatable)\n"
                 "  --quiet              findings only, no summary line\n"
                 "  -h, --help           this text\n"
                 "\nSuppress a finding in source with\n"
                 "  // tpf-lint: allow(<rule>) -- <reason>\n"
                 "on the offending line, or on its own line to cover the "
                 "next line.\n");
}

bool isSourceFile(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
           ext == ".cxx";
}

} // namespace

int main(int argc, char** argv) {
    std::vector<std::string> paths;
    std::set<std::string> only;
    std::set<std::string> skip;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto needValue = [&](const char* opt) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "tpf-lint: missing value for %s\n", opt);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "-h" || a == "--help") {
            usage(stdout);
            return 0;
        } else if (a == "--list-rules") {
            for (const auto& r : tpf::lint::ruleCatalog())
                std::printf("%-26s %s\n", r.name, r.summary);
            return 0;
        } else if (a == "--rule") {
            only.insert(needValue("--rule"));
        } else if (a == "--no-rule") {
            skip.insert(needValue("--no-rule"));
        } else if (a == "--quiet") {
            quiet = true;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "tpf-lint: unknown option '%s'\n", a.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(a);
        }
    }
    if (paths.empty()) {
        usage(stderr);
        return 2;
    }
    for (const auto& r : only)
        if (!tpf::lint::isKnownRule(r)) {
            std::fprintf(stderr, "tpf-lint: unknown rule '%s' (see --list-rules)\n",
                         r.c_str());
            return 2;
        }
    for (const auto& r : skip)
        if (!tpf::lint::isKnownRule(r)) {
            std::fprintf(stderr, "tpf-lint: unknown rule '%s' (see --list-rules)\n",
                         r.c_str());
            return 2;
        }

    // Enabled set: --rule wins; otherwise all minus --no-rule.
    std::set<std::string> enabled = only;
    if (enabled.empty() && !skip.empty()) {
        for (const auto& r : tpf::lint::ruleCatalog())
            if (!skip.count(r.name)) enabled.insert(r.name);
        if (enabled.empty()) {
            std::fprintf(stderr, "tpf-lint: every rule disabled\n");
            return 2;
        }
    }

    // Expand directories; sorted so findings order (and hence CI logs) is
    // stable across filesystems.
    std::vector<std::string> files;
    for (const std::string& p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end;
                 it != end && !ec; it.increment(ec))
                if (it->is_regular_file(ec) && isSourceFile(it->path()))
                    files.push_back(it->path().generic_string());
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(fs::path(p).generic_string());
        } else {
            std::fprintf(stderr, "tpf-lint: cannot read '%s'\n", p.c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    std::size_t nFindings = 0;
    for (const std::string& file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "tpf-lint: cannot read '%s'\n", file.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        const std::string content = ss.str();
        for (const auto& fnd : tpf::lint::lintSource(file, content, enabled)) {
            std::printf("%s\n", tpf::lint::formatFinding(fnd).c_str());
            ++nFindings;
        }
    }

    if (!quiet)
        std::fprintf(stderr, "tpf-lint: %zu finding(s) in %zu file(s)\n",
                     nFindings, files.size());
    return nFindings == 0 ? 0 : 1;
}
