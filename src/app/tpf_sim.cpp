/// \file tpf_sim.cpp
/// Unified scenario driver: every workload previously buried in examples/
/// and bench_common.h, runnable from one binary.
///
///   tpf-sim --scenario solidify   full directional solidification from a
///                                 Voronoi-seeded melt (the production run)
///   tpf-sim --scenario interface  benchmark fill: solidification front
///   tpf-sim --scenario liquid     benchmark fill: pure melt
///   tpf-sim --scenario solid      benchmark fill: lamellar solid
///
/// Grid size, step count, temperature gradient/velocity, rank count,
/// communication hiding, moving window, and VTK/checkpoint output cadence
/// are all command-line options; see --help.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/mesh_observer.h"
#include "analysis/observers.h"
#include "app/cli.h"
#include "core/kernel_dispatch.h"
#include "core/regions.h"
#include "core/solver.h"
#include "io/checkpoint.h"
#include "io/csv_writer.h"
#include "io/writers.h"
#include "obs/run_obs.h"
#include "perf/perf.h"
#include "vmpi/comm.h"

namespace {

using namespace tpf;

struct RunOptions {
    std::string scenario;
    std::string outdir;
    std::string restart; ///< checkpoint directory to resume from ("" = fresh)
    int steps = 0;
    int ranks = 1;
    int reportEvery = 0;
    int vtkEvery = 0;
    int checkpointEvery = 0;
    int analyzeEvery = 0;      ///< in-situ analysis cadence (0 = off)
    std::string analysisDir;   ///< CSV directory ("" = outdir)
    std::vector<std::string> observers; ///< enabled observer names, in order
    int meshEvery = 0;         ///< in-situ mesh extraction cadence (0 = off)
    std::string meshDir;       ///< OBJ/index directory (default <out>/mesh)
    std::vector<int> meshPhases; ///< order parameters to mesh
    std::string tracePath;     ///< merged Chrome trace JSON ("" = off)
    std::string metricsPath;   ///< run-telemetry CSV ("" = off)
    int metricsEvery = 10;     ///< metrics sampling cadence in steps
    bool timingSummary = false; ///< end-of-run per-functor table
};

/// Split a comma-separated observer list ("fractions,lamellae,...").
std::vector<std::string> splitObserverList(const std::string& list) {
    std::vector<std::string> names;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        const std::size_t comma = list.find(',', begin);
        const std::string name =
            list.substr(begin, comma == std::string::npos ? std::string::npos
                                                          : comma - begin);
        if (!name.empty()) names.push_back(name);
        if (comma == std::string::npos) break;
        begin = comma + 1;
    }
    return names;
}

void writeVtkSnapshot(const RunOptions& opt, core::Solver& solver,
                      long long step) {
    // One file per root-rank block. Sub-domain files carry the block origin
    // in their name so a partial volume is never mistaken for the full
    // domain (remote ranks' blocks are not gathered).
    const bool wholeDomain =
        opt.ranks == 1 && solver.localBlocks().size() == 1;
    for (const auto& blk : solver.localBlocks()) {
        char name[96];
        if (wholeDomain)
            std::snprintf(name, sizeof name, "phi_step%06lld.vtk", step);
        else
            std::snprintf(name, sizeof name,
                          "phi_step%06lld_block_x%d_y%d_z%d.vtk", step,
                          blk->origin.x, blk->origin.y, blk->origin.z);
        const std::string path = opt.outdir + "/" + name;
        io::writeVtkField(path, blk->phiSrc, "phi");
        std::printf("wrote %s%s\n", path.c_str(),
                    wholeDomain ? "" : " (rank-0 sub-domain)");
    }
}

void writeCheckpoint(const RunOptions& opt, core::Solver& solver,
                     bool isRoot) {
    // Named by the *global* step count, so a run restarted at step N writes
    // checkpoint_step<N+k> — the same name an uninterrupted run would use.
    // That is what lets the restart-equivalence harness diff the two.
    char name[64];
    std::snprintf(name, sizeof name, "checkpoint_step%06lld",
                  solver.stepsDone());
    const std::string dir = opt.outdir + "/" + name;
    io::saveCheckpoint(dir, solver);
    if (isRoot) std::printf("wrote %s/\n", dir.c_str());
}

int report(core::Solver& solver, bool isRoot) {
    // All three diagnostics are collective: every rank must make the calls,
    // only root prints. Returns the front position for the heartbeat line.
    const auto f = solver.phaseFractions();
    const auto sf = solver.solidFractions();
    const int front = solver.frontPosition();
    if (isRoot)
        std::printf("t=%9.2f  front=%4d  liquid=%.4f  "
                    "solids %.3f/%.3f/%.3f\n",
                    solver.time(), front, f[core::LIQ], sf[0], sf[1], sf[2]);
    return front;
}

/// Root-only progress heartbeat: percent done, global step, interval
/// throughput, front position and a wall-clock ETA for the remaining steps.
void heartbeat(const RunOptions& opt, core::Solver& solver, long long cells,
               int done, int sinceLast, double intervalSeconds, int front) {
    const double mlups =
        intervalSeconds > 0.0
            ? static_cast<double>(cells) * sinceLast / intervalSeconds / 1e6
            : 0.0;
    const double sPerStep =
        sinceLast > 0 ? intervalSeconds / sinceLast : 0.0;
    const long long etaS =
        static_cast<long long>(sPerStep * (opt.steps - done) + 0.5);
    std::printf("[%3d%%] step %lld/%lld  %7.2f MLUP/s  front_z=%d  "
                "eta %lld:%02lld\n",
                opt.steps > 0 ? 100 * done / opt.steps : 100,
                solver.stepsDone(),
                solver.stepsDone() - done + opt.steps, mlups, front,
                etaS / 60, etaS % 60);
}

/// Run the configured solver on one (possibly thread-backed) rank: scenario
/// init, stepping with periodic reporting and output, final summary.
void runRank(const RunOptions& opt, const core::SolverConfig& cfg,
             vmpi::Comm* comm) {
    const bool isRoot = !comm || comm->isRoot();
    core::Solver solver(cfg, comm);

    // In-situ analysis pipeline: every rank builds the same observer set in
    // the same order (sampling is collective); only root streams the CSV.
    analysis::Pipeline pipeline;
    if (opt.analyzeEvery > 0)
        for (const auto& name : opt.observers)
            pipeline.add(analysis::makeObserver(name));

    if (!opt.restart.empty()) {
        // Resume from a checkpoint: fields, clocks, window offset and the
        // step counter are restored; no scenario initialization runs.
        io::loadCheckpoint(opt.restart, solver);
        if (isRoot)
            std::printf("restarted from %s at step %lld (t=%.6g, window "
                        "offset %g)\n",
                        opt.restart.c_str(), solver.stepsDone(), solver.time(),
                        solver.windowOffsetCells());
    } else if (opt.scenario == "solidify") {
        solver.initialize(); // Voronoi-seeded melt
    } else {
        const core::Scenario sc = opt.scenario == "liquid"
                                      ? core::Scenario::Liquid
                                  : opt.scenario == "solid"
                                      ? core::Scenario::Solid
                                      : core::Scenario::Interface;
        for (auto& b : solver.localBlocks())
            core::fillScenario(*b, sc, solver.system(), cfg.model.eps);
        solver.restore(/*time=*/0.0, /*windowOffset=*/0.0);
    }

    if (opt.analyzeEvery > 0) {
        const std::string csvPath = opt.analysisDir + "/analysis.csv";
        int ok = 1;
        if (isRoot) {
            // A restarted run continues the existing series in place: rows
            // after the checkpoint step are dropped, the cadence resumes on
            // the global step grid — no duplicated or skipped rows.
            try {
                if (!opt.restart.empty())
                    pipeline.resumeCsv(csvPath, solver.stepsDone());
                else
                    pipeline.createCsv(csvPath);
                std::printf("analysis: every %d steps -> %s\n",
                            opt.analyzeEvery, csvPath.c_str());
            } catch (const io::CsvError& e) {
                // Print here (only root knows the cause), then fail the
                // collective agreement below so every rank throws.
                std::fprintf(stderr, "tpf-sim: %s\n", e.what());
                ok = 0;
            }
        }
        // Collective agreement: a root-only failure (unwritable directory,
        // read-only or incompatible series file) must abort *all* ranks —
        // otherwise the healthy ranks block forever in the next collective
        // sample waiting for the dead root.
        if (comm && comm->size() > 1) ok = comm->bcast(ok);
        if (!ok)
            throw io::CsvError("analysis CSV setup failed on the root rank "
                               "(see the message above)");
        pipeline.attach(solver, opt.analyzeEvery);
        // Fresh runs record the initial state; restarts already have it.
        if (opt.restart.empty()) pipeline.sample(solver, solver.stepsDone());
    }

    // In-situ mesh extraction: collective like the analysis pipeline (every
    // rank attaches the same observer; only root streams the OBJ frames and
    // the index CSV), with the same root-failure agreement.
    std::unique_ptr<analysis::MeshObserver> mesh;
    if (opt.meshEvery > 0) {
        analysis::MeshObserver::Options mo;
        mo.dir = opt.meshDir;
        mo.phases = opt.meshPhases;
        mo.every = opt.meshEvery;
        mesh = std::make_unique<analysis::MeshObserver>(mo);
        int ok = 1;
        if (isRoot) {
            try {
                if (!opt.restart.empty())
                    mesh->resume(true, solver.stepsDone());
                else
                    mesh->create(true);
                std::printf("mesh: every %d steps -> %s\n", opt.meshEvery,
                            opt.meshDir.c_str());
            } catch (const io::CsvError& e) {
                std::fprintf(stderr, "tpf-sim: %s\n", e.what());
                ok = 0;
            }
        }
        if (comm && comm->size() > 1) ok = comm->bcast(ok);
        if (!ok)
            throw io::CsvError("mesh index setup failed on the root rank "
                               "(see the message above)");
        mesh->attach(solver);
        if (opt.restart.empty()) mesh->sample(solver, solver.stepsDone());
    }

    // Run telemetry (docs/OBSERVABILITY.md): per-rank trace spans and/or the
    // metrics CSV. Attached last so the "obs-metrics" hook samples after the
    // analysis/mesh hooks of the same step ran; the CSV setup mirrors the
    // analysis pipeline's root-failure agreement above.
    std::unique_ptr<obs::RunObs> runObs;
    if (!opt.tracePath.empty() || !opt.metricsPath.empty()) {
        obs::RunObsOptions oo;
        oo.tracePath = opt.tracePath;
        oo.metricsPath = opt.metricsPath;
        oo.metricsEvery = opt.metricsEvery;
        runObs = std::make_unique<obs::RunObs>(oo);
        if (runObs->metricsEnabled()) {
            int ok = 1;
            if (isRoot) {
                try {
                    runObs->openMetricsCsv(!opt.restart.empty(),
                                           solver.stepsDone());
                    std::printf("metrics: every %d steps -> %s\n",
                                opt.metricsEvery, opt.metricsPath.c_str());
                } catch (const io::CsvError& e) {
                    std::fprintf(stderr, "tpf-sim: %s\n", e.what());
                    ok = 0;
                }
            }
            if (comm && comm->size() > 1) ok = comm->bcast(ok);
            if (!ok)
                throw io::CsvError("metrics CSV setup failed on the root "
                                   "rank (see the message above)");
        }
        if (isRoot && runObs->traceEnabled())
            std::printf("trace: %s\n", opt.tracePath.c_str());
        runObs->attach(solver);
    }

    report(solver, isRoot); // collective: all ranks participate
    const double t0 = perf::now();

    // Output cadences are keyed off the *global* step count so a restarted
    // run writes snapshots/checkpoints at the same steps (and names) an
    // uninterrupted run would — the restart-equivalence harness depends on
    // it. `done` counts only this invocation's steps; the report chunking
    // stays local (it describes this run's progress).
    const long long startStep = solver.stepsDone();
    auto nextBoundary = [startStep](int done, int every) {
        const long long g = startStep + done;
        return static_cast<int>((g / every + 1) * every - startStep);
    };
    const int chunk = std::max(1, opt.reportEvery > 0
                                      ? opt.reportEvery
                                      : std::max(1, opt.steps / 8));
    const long long cells = static_cast<long long>(cfg.globalCells.x) *
                            cfg.globalCells.y * cfg.globalCells.z;
    int lastReport = 0;
    double lastReportT = t0;
    long long lastVtkStep = -1;
    for (int done = 0; done < opt.steps;) {
        // Stop at whichever boundary comes first: the report chunk or an
        // output cadence.
        int next = std::min(opt.steps, lastReport + chunk);
        if (opt.vtkEvery > 0)
            next = std::min(next, nextBoundary(done, opt.vtkEvery));
        if (opt.checkpointEvery > 0)
            next = std::min(next, nextBoundary(done, opt.checkpointEvery));

        solver.run(next - done);
        done = next;

        if (done - lastReport >= chunk || done == opt.steps) {
            const int front = report(solver, isRoot);
            const double nowT = perf::now();
            if (isRoot)
                heartbeat(opt, solver, cells, done, done - lastReport,
                          nowT - lastReportT, front);
            lastReport = done;
            lastReportT = nowT;
        }
        if (opt.vtkEvery > 0 && solver.stepsDone() % opt.vtkEvery == 0) {
            if (isRoot) writeVtkSnapshot(opt, solver, solver.stepsDone());
            lastVtkStep = solver.stepsDone();
        }
        if (opt.checkpointEvery > 0 &&
            solver.stepsDone() % opt.checkpointEvery == 0) {
            const double c0 = perf::now();
            writeCheckpoint(opt, solver, isRoot);
            if (runObs && runObs->metricsEnabled())
                runObs->metrics().counter("checkpoint_s").add(perf::now() - c0);
        }
    }

    const double wall = perf::now() - t0;

    // Post-run collectives, before the non-root ranks return: merge + write
    // the trace, flush the final metrics row, gather the cross-rank
    // per-functor totals for the timing summary.
    if (runObs) runObs->finish(solver);
    std::vector<obs::FunctorStats> functorStats;
    if (opt.timingSummary) functorStats = obs::gatherTimingStats(solver);

    if (!isRoot) return;

    // Final artifacts: a VTK volume of the (root-rank) phi field plus the
    // run summary, so every invocation leaves output behind (skipped when
    // the cadence already wrote this step).
    if (lastVtkStep != solver.stepsDone())
        writeVtkSnapshot(opt, solver, solver.stepsDone());

    std::printf("\n%d steps on %lld cells in %.2f s", opt.steps, cells, wall);
    if (wall > 0.0)
        std::printf("  (%.2f MLUP/s total)",
                    static_cast<double>(cells) * opt.steps / wall / 1e6);
    std::printf("\ntimeloop breakdown (total / worst step):\n");
    for (const auto& t : solver.timeloop().timings())
        std::printf("  %-18s %8.3f s  %8.5f s\n", t.name.c_str(), t.seconds,
                    t.maxSeconds);
    if (opt.timingSummary) {
        // The full Timeloop::timings() table. For multi-rank runs the
        // cross-rank columns expose load imbalance per functor (max/avg is
        // the paper's Fig. 8 figure of merit): a well-hidden exchange shows
        // imbalance ~1.0, a straggling rank pushes it up.
        const bool multi = comm && comm->size() > 1;
        if (multi)
            std::printf("\ntiming summary across %d ranks "
                        "(avg s / max s @rank / imbalance / spike s / calls):\n",
                        comm->size());
        else
            std::printf("\ntiming summary "
                        "(seconds / spike s / calls):\n");
        for (const auto& f : functorStats) {
            if (multi)
                std::printf("  %-18s %8.3f  %8.3f @%-3d %6.2fx  %8.5f  %8lld\n",
                            f.name.c_str(), f.avgSeconds, f.maxSeconds,
                            f.maxRank,
                            f.avgSeconds > 0.0 ? f.maxSeconds / f.avgSeconds
                                               : 1.0,
                            f.spikeSeconds, f.calls);
            else
                std::printf("  %-18s %8.3f  %8.5f  %8lld\n", f.name.c_str(),
                            f.avgSeconds, f.spikeSeconds, f.calls);
        }
    }
    if (mesh) {
        const io::MeshPipelineTimings& mt = mesh->timings();
        std::printf("mesh pipeline (total): extract %.3f s  simplify %.3f s  "
                    "gather+stitch %.3f s\n",
                    mt.extractSec, mt.simplifySec, mt.gatherSec);
    }
}

} // namespace

int main(int argc, char** argv) {
    using namespace tpf;

    app::Cli cli(argc, argv, "--scenario <solidify|interface|liquid|solid> [options]");

    RunOptions opt;
    opt.scenario = cli.getString(
        "scenario", "solidify",
        "workload: solidify (Voronoi melt), interface, liquid, solid");
    const Int3 size =
        cli.getInt3("size", {48, 48, 64}, "global grid NX,NY,NZ");
    Int3 block = cli.getInt3(
        "block", {0, 0, 0},
        "block size (0,0,0: one block per domain, auto z-split for ranks>1)");
    opt.steps = cli.getInt("steps", 400, "number of time steps");
    opt.ranks = cli.getInt("ranks", 1, "virtual ranks (see --transport)");
    const int threads = cli.getInt(
        "threads", 1,
        "intra-rank sweep threads per rank (hybrid: ranks x threads cores)");
    const double gradient =
        cli.getDouble("gradient", 0.5, "temperature gradient G [K/cell]");
    const double velocity = cli.getDouble(
        "velocity", 0.02, "isotherm pulling velocity v [cells/time]");
    const double zeut =
        cli.getDouble("zeut", -1.0,
                      "initial eutectic isotherm z (-1: 0.375*NZ)");
    const int fillHeight =
        cli.getInt("fill-height", -1,
                   "Voronoi solid fill height (-1: 3*NZ/16)");
    const int seeds =
        cli.getInt("seeds", 0, "Voronoi seeds per area (0: auto)");
    opt.reportEvery =
        cli.getInt("report-every", 0, "steps between reports (0: steps/8)");
    opt.vtkEvery =
        cli.getInt("vtk-every", 0, "steps between VTK snapshots (0: off)");
    opt.checkpointEvery = cli.getInt("checkpoint-every", 0,
                                     "steps between checkpoints (0: off)");
    opt.restart = cli.getString(
        "restart", "",
        "resume from this checkpoint directory (skips scenario init; pass "
        "the same --size/--ranks/--block and physics flags as the original "
        "run; --steps counts the additional steps)");
    opt.analyzeEvery =
        cli.getInt("analyze", 0,
                   "steps between in-situ analysis samples streamed to "
                   "<analysis-dir>/analysis.csv (0: off)");
    const std::string analysisDir = cli.getString(
        "analysis-dir", "", "analysis CSV directory (default: --out)");
    const std::string observerList = cli.getString(
        "analysis-observers", "fractions,lamellae,correlation",
        "comma-separated observers to run (fractions, lamellae, correlation)");
    opt.meshEvery = cli.getInt(
        "mesh", 0,
        "steps between in-situ surface-mesh extractions: per-phase OBJ "
        "frames plus a mesh_index.csv streamed to --mesh-dir (0: off; "
        "needs a z-slab block decomposition)");
    const std::string meshDirFlag = cli.getString(
        "mesh-dir", "", "mesh output directory (default: <out>/mesh)");
    const std::string meshPhasesFlag = cli.getString(
        "mesh-phases", "0,1,2",
        "comma-separated order-parameter indices to mesh");
    opt.tracePath = cli.getString(
        "trace", "",
        "write per-rank tracing spans as one merged Chrome trace-event JSON "
        "to this file (open in Perfetto or chrome://tracing)");
    opt.metricsPath = cli.getString(
        "metrics", "",
        "stream the run-telemetry CSV ('# tpf-metrics v1': MLUP/s, ghost "
        "exchange, pool fan-out, window shifts, RSS, ...) to this file");
    const int metricsEveryFlag = cli.getInt(
        "metrics-every", 0,
        "steps between metrics samples (0: 10; a nonzero value implies "
        "--metrics <out>/metrics.csv when --metrics is not given)");
    opt.timingSummary = cli.getFlag(
        "timing-summary",
        "print the end-of-run per-functor timing table (with cross-rank "
        "max/avg load imbalance for --ranks > 1)");
    opt.outdir = cli.getString("out", "tpf_output", "output directory");
    const std::string overlap = cli.getString(
        "overlap", "mu", "communication hiding: none, mu, phi, both");
    const std::string transportFlag = cli.getString(
        "transport", "",
        "message transport for --ranks > 1: thread (in-process), shm "
        "(forked processes over shared memory), mpi (TPF_WITH_MPI builds "
        "under mpirun); default: $TPF_TRANSPORT, else thread");
    const bool window =
        cli.getFlag("window", "enable the moving window (solidify only)");
    const std::string kernelFlag = cli.getString(
        "kernel", "",
        "kernel spec [schedule:]target — schedule split|fused, target "
        "auto|scalar|sse2|avx2|avx512 (default: $TPF_KERNEL, else "
        "split:auto); results are bitwise identical across specs");
    const bool listKernels = cli.getFlag(
        "list-kernels", "list the compiled-in dispatch targets and exit");

    if (cli.helpRequested()) {
        cli.printHelp();
        return 0;
    }
    if (!cli.finish()) return 2;

    if (listKernels) {
        const auto targets = core::availableKernelTargets();
        std::printf("available kernel targets (narrowest first):\n");
        for (const core::KernelTarget* t : targets)
            std::printf("  %-8s %d-wide multi-cell sweeps%s\n", t->name,
                        t->width,
                        t == core::activeKernelTarget() ? "  [active]" : "");
        std::printf("schedules: split (default), fused\n");
        return 0;
    }

    const bool knownScenario =
        opt.scenario == "solidify" || opt.scenario == "interface" ||
        opt.scenario == "liquid" || opt.scenario == "solid";
    if (!knownScenario) {
        std::fprintf(stderr,
                     "unknown scenario '%s' (solidify|interface|liquid|solid)\n",
                     opt.scenario.c_str());
        return 2;
    }
    if (opt.steps < 0 || opt.ranks < 1 || threads < 1 || size.x < 4 ||
        size.y < 1 || size.z < 2) {
        std::fprintf(stderr, "invalid --steps/--ranks/--threads/--size\n");
        return 2;
    }
    // Each rank spawns its own pool: cap the total so a typo fails cleanly
    // instead of exhausting OS threads in the ThreadPool constructor.
    const int maxWorkers = 256;
    if (opt.ranks * threads > maxWorkers) {
        std::fprintf(stderr,
                     "--ranks x --threads = %d exceeds the limit of %d "
                     "workers\n",
                     opt.ranks * threads, maxWorkers);
        return 2;
    }
    const bool blockGiven = block.x != 0 || block.y != 0 || block.z != 0;
    if (blockGiven && (block.x < 4 || block.y < 1 || block.z < 1)) {
        std::fprintf(stderr,
                     "--block must be all zero (auto) or a valid size; got "
                     "%d,%d,%d\n",
                     block.x, block.y, block.z);
        return 2;
    }
    if (size.x % 4 != 0 || (block.x != 0 && block.x % 4 != 0)) {
        std::fprintf(stderr,
                     "NX must be divisible by 4 (the production kernels use "
                     "four-cell vectorization); got %s=%d\n",
                     size.x % 4 != 0 ? "--size NX" : "--block NX",
                     size.x % 4 != 0 ? size.x : block.x);
        return 2;
    }

    core::SolverConfig cfg;
    cfg.globalCells = size;
    cfg.threads = threads;
    cfg.model.temp.gradient = gradient;
    cfg.model.temp.velocity = velocity;
    // Same default ratios as examples/quickstart (zEut0=24, fill=12 at
    // NZ=64) so the two binaries produce comparable trajectories.
    cfg.model.temp.zEut0 = zeut >= 0.0 ? zeut : 0.375 * size.z;
    cfg.init.fillHeight = fillHeight >= 0 ? fillHeight : 3 * size.z / 16;
    cfg.init.seedsPerArea = seeds;
    cfg.window.enabled = window;
    cfg.overlapMu = overlap == "mu" || overlap == "both";
    cfg.overlapPhi = overlap == "phi" || overlap == "both";
    if (overlap != "none" && overlap != "mu" && overlap != "phi" &&
        overlap != "both") {
        std::fprintf(stderr, "unknown --overlap '%s'\n", overlap.c_str());
        return 2;
    }

    // Kernel selection: --kernel beats TPF_KERNEL beats the auto-detected
    // widest target. An explicit --kernel naming an unsupported target is a
    // hard error; an unsupported TPF_KERNEL falls back with a warning (the
    // results are bitwise identical either way).
    std::string kernelSpecStr = kernelFlag;
    const bool kernelExplicit = !kernelSpecStr.empty();
    if (kernelSpecStr.empty())
        if (const char* env = std::getenv("TPF_KERNEL")) kernelSpecStr = env;
    if (!kernelSpecStr.empty()) {
        core::KernelSpec ks;
        std::string err;
        if (!core::parseKernelSpec(kernelSpecStr, ks, err)) {
            std::fprintf(stderr, "tpf-sim: %s\n", err.c_str());
            return 2;
        }
        if (!core::setKernelTarget(ks.target)) {
            std::fprintf(stderr,
                         "tpf-sim: kernel target '%s' is not available on "
                         "this CPU (see --list-kernels)%s\n",
                         ks.target.c_str(),
                         kernelExplicit ? "" : "; TPF_KERNEL target ignored");
            if (kernelExplicit) return 2;
        }
        cfg.schedule = ks.schedule;
    }
    if (cfg.schedule == core::SweepSchedule::Fused && cfg.overlapPhi) {
        std::fprintf(stderr, "tpf-sim: the fused schedule cannot hide the "
                             "phi communication; use --overlap none or mu\n");
        return 2;
    }

    if (opt.ranks > 1 && !blockGiven) {
        if (size.z % opt.ranks != 0) {
            std::fprintf(stderr,
                         "NZ=%d not divisible by %d ranks; pass --block\n",
                         size.z, opt.ranks);
            return 2;
        }
        block = {size.x, size.y, size.z / opt.ranks};
    }
    cfg.blockSize = block;
    if (cfg.schedule == core::SweepSchedule::Fused && blockGiven &&
        (block.x != size.x || block.y != size.y)) {
        std::fprintf(stderr,
                     "tpf-sim: the fused schedule needs blocks spanning the "
                     "full x/y extent (z-split only); got block %d,%d,%d for "
                     "domain %d,%d,%d\n",
                     block.x, block.y, block.z, size.x, size.y, size.z);
        return 2;
    }

    if (!opt.restart.empty()) {
        // Fail fast, before spawning ranks, when the checkpoint does not
        // match the requested geometry (loadCheckpoint re-validates
        // everything per rank, but this produces one clear message).
        try {
            const io::CheckpointMeta meta =
                io::readCheckpointMeta(opt.restart);
            const Int3 effBlock = blockGiven || opt.ranks > 1 ? block : size;
            if (!(meta.globalCells == size)) {
                std::fprintf(stderr,
                             "checkpoint %s holds a %dx%dx%d domain; pass "
                             "--size %d,%d,%d\n",
                             opt.restart.c_str(), meta.globalCells.x,
                             meta.globalCells.y, meta.globalCells.z,
                             meta.globalCells.x, meta.globalCells.y,
                             meta.globalCells.z);
                return 2;
            }
            if (meta.numRanks != opt.ranks) {
                std::fprintf(stderr,
                             "checkpoint %s was written by %d rank(s); pass "
                             "--ranks %d\n",
                             opt.restart.c_str(), meta.numRanks,
                             meta.numRanks);
                return 2;
            }
            if (!(meta.blockCells == effBlock)) {
                std::fprintf(stderr,
                             "checkpoint %s uses %dx%dx%d blocks; pass "
                             "--block %d,%d,%d\n",
                             opt.restart.c_str(), meta.blockCells.x,
                             meta.blockCells.y, meta.blockCells.z,
                             meta.blockCells.x, meta.blockCells.y,
                             meta.blockCells.z);
                return 2;
            }
            if (meta.windowOffset > 0.0 && !window)
                std::fprintf(stderr,
                             "warning: checkpoint has a moving-window offset "
                             "of %g cells but --window is off; the window "
                             "will not keep moving\n",
                             meta.windowOffset);
        } catch (const io::CheckpointError& e) {
            std::fprintf(stderr, "tpf-sim: %s\n", e.what());
            return 1;
        }
    }

    opt.analysisDir = analysisDir.empty() ? opt.outdir : analysisDir;
    opt.observers = splitObserverList(observerList);
    if (opt.analyzeEvery < 0) {
        std::fprintf(stderr, "--analyze must be >= 0\n");
        return 2;
    }
    if (opt.analyzeEvery > 0) {
        if (opt.observers.empty()) {
            std::fprintf(stderr, "--analysis-observers is empty\n");
            return 2;
        }
        for (const auto& name : opt.observers) {
            if (analysis::makeObserver(name) == nullptr) {
                std::fprintf(stderr,
                             "unknown observer '%s' (fractions, lamellae, "
                             "correlation)\n",
                             name.c_str());
                return 2;
            }
        }
        if (!opt.restart.empty()) {
            // Fail fast (before spawning ranks) when the existing series
            // cannot be continued — a throw on the root rank mid-run would
            // leave the other ranks blocked in the collective sample.
            const std::string csvPath = opt.analysisDir + "/analysis.csv";
            if (std::filesystem::exists(csvPath)) {
                analysis::Pipeline probe;
                for (const auto& name : opt.observers)
                    probe.add(analysis::makeObserver(name));
                try {
                    const io::CsvSeries series = io::readCsvSeries(csvPath);
                    const std::string schema =
                        std::string("# ") + analysis::kAnalysisCsvTag + " v" +
                        std::to_string(analysis::kAnalysisCsvVersion);
                    if (series.schema != schema) {
                        std::fprintf(stderr,
                                     "tpf-sim: %s carries schema '%s' but "
                                     "this build writes '%s'; move the "
                                     "series aside or use a fresh "
                                     "--analysis-dir\n",
                                     csvPath.c_str(), series.schema.c_str(),
                                     schema.c_str());
                        return 2;
                    }
                    std::string header = "step";
                    for (const auto& c : probe.columns()) header += "," + c;
                    std::string existing;
                    for (const auto& c : series.columns)
                        existing += (existing.empty() ? "" : ",") + c;
                    if (existing != header) {
                        std::fprintf(stderr,
                                     "tpf-sim: %s has columns\n  %s\nbut the "
                                     "configured observers produce\n  %s\n"
                                     "pass the original --analysis-observers "
                                     "or a fresh --analysis-dir\n",
                                     csvPath.c_str(), existing.c_str(),
                                     header.c_str());
                        return 2;
                    }
                } catch (const io::CsvError& e) {
                    std::fprintf(stderr, "tpf-sim: %s\n", e.what());
                    return 2;
                }
            }
        }
    }

    opt.meshDir = meshDirFlag.empty() ? opt.outdir + "/mesh" : meshDirFlag;
    if (opt.meshEvery < 0) {
        std::fprintf(stderr, "--mesh must be >= 0\n");
        return 2;
    }
    if (opt.meshEvery > 0) {
        for (const auto& tok : splitObserverList(meshPhasesFlag)) {
            char* end = nullptr;
            const long p = std::strtol(tok.c_str(), &end, 10);
            if (*end != '\0' || p < 0 || p >= core::N) {
                std::fprintf(stderr,
                             "--mesh-phases entry '%s' is not a phase index "
                             "in [0,%d)\n",
                             tok.c_str(), core::N);
                return 2;
            }
            opt.meshPhases.push_back(static_cast<int>(p));
        }
        if (opt.meshPhases.empty()) {
            std::fprintf(stderr, "--mesh-phases is empty\n");
            return 2;
        }
        // The pipeline's determinism contract needs blocks spanning the
        // periodic x/y extent (mesh_pipeline.h): cube corners wrap laterally
        // instead of reading corner ghosts the D3C19 exchange doesn't fill.
        if (blockGiven && (block.x != size.x || block.y != size.y)) {
            std::fprintf(stderr,
                         "tpf-sim: --mesh needs blocks spanning the full x/y "
                         "extent (z-split only); got block %d,%d,%d for "
                         "domain %d,%d,%d\n",
                         block.x, block.y, block.z, size.x, size.y, size.z);
            return 2;
        }
        if (!opt.restart.empty()) {
            // Fail fast (before spawning ranks) when the existing mesh index
            // cannot be continued, mirroring the analysis series check.
            const std::string csvPath = opt.meshDir + "/mesh_index.csv";
            if (std::filesystem::exists(csvPath)) {
                analysis::MeshObserver::Options mo;
                mo.dir = opt.meshDir;
                mo.phases = opt.meshPhases;
                mo.every = opt.meshEvery;
                const analysis::MeshObserver probe(mo);
                try {
                    const io::CsvSeries series = io::readCsvSeries(csvPath);
                    const std::string schema =
                        std::string("# ") + analysis::kMeshCsvTag + " v" +
                        std::to_string(analysis::kMeshCsvVersion);
                    if (series.schema != schema) {
                        std::fprintf(stderr,
                                     "tpf-sim: %s carries schema '%s' but "
                                     "this build writes '%s'; move the "
                                     "series aside or use a fresh "
                                     "--mesh-dir\n",
                                     csvPath.c_str(), series.schema.c_str(),
                                     schema.c_str());
                        return 2;
                    }
                    std::string header = "step";
                    for (const auto& c : probe.columns()) header += "," + c;
                    std::string existing;
                    for (const auto& c : series.columns)
                        existing += (existing.empty() ? "" : ",") + c;
                    if (existing != header) {
                        std::fprintf(stderr,
                                     "tpf-sim: %s has columns\n  %s\nbut the "
                                     "configured --mesh-phases produce\n  "
                                     "%s\npass the original --mesh-phases or "
                                     "a fresh --mesh-dir\n",
                                     csvPath.c_str(), existing.c_str(),
                                     header.c_str());
                        return 2;
                    }
                } catch (const io::CsvError& e) {
                    std::fprintf(stderr, "tpf-sim: %s\n", e.what());
                    return 2;
                }
            }
        }
    }

    if (metricsEveryFlag < 0) {
        std::fprintf(stderr, "--metrics-every must be >= 0\n");
        return 2;
    }
    if (metricsEveryFlag > 0) {
        opt.metricsEvery = metricsEveryFlag;
        if (opt.metricsPath.empty())
            opt.metricsPath = opt.outdir + "/metrics.csv";
    }
    if (!opt.metricsPath.empty() && !opt.restart.empty()) {
        // Fail fast (before spawning ranks) when the existing telemetry
        // series cannot be continued, mirroring the analysis series check.
        if (std::filesystem::exists(opt.metricsPath)) {
            const obs::RunObs probe({"", opt.metricsPath, opt.metricsEvery});
            try {
                const io::CsvSeries series =
                    io::readCsvSeries(opt.metricsPath);
                const std::string schema =
                    std::string("# ") + obs::MetricsRegistry::kCsvTag + " v" +
                    std::to_string(obs::MetricsRegistry::kCsvVersion);
                if (series.schema != schema) {
                    std::fprintf(stderr,
                                 "tpf-sim: %s carries schema '%s' but this "
                                 "build writes '%s'; move the series aside "
                                 "or pass a fresh --metrics path\n",
                                 opt.metricsPath.c_str(),
                                 series.schema.c_str(), schema.c_str());
                    return 2;
                }
                std::string header = "step";
                for (const auto& c : probe.metricsColumns())
                    header += "," + c;
                std::string existing;
                for (const auto& c : series.columns)
                    existing += (existing.empty() ? "" : ",") + c;
                if (existing != header) {
                    std::fprintf(stderr,
                                 "tpf-sim: %s has columns\n  %s\nbut this "
                                 "build writes\n  %s\nmove the series aside "
                                 "or pass a fresh --metrics path\n",
                                 opt.metricsPath.c_str(), existing.c_str(),
                                 header.c_str());
                    return 2;
                }
            } catch (const io::CsvError& e) {
                std::fprintf(stderr, "tpf-sim: %s\n", e.what());
                return 2;
            }
        }
    }

    vmpi::TransportKind transport = vmpi::defaultTransport();
    if (!transportFlag.empty()) {
        if (!vmpi::parseTransportName(transportFlag, transport)) {
            std::fprintf(stderr, "unknown --transport '%s' (thread, shm, mpi)\n",
                         transportFlag.c_str());
            return 2;
        }
        if (!vmpi::transportCompiledIn(transport)) {
            std::fprintf(stderr,
                         "--transport mpi requires a TPF_WITH_MPI=ON build\n");
            return 2;
        }
    }

    std::filesystem::create_directories(opt.outdir);

    std::printf("tpf-sim: scenario=%s  %dx%dx%d cells, %d steps, "
                "%d rank(s) x %d thread(s)\n"
                "         G=%.3f K/cell  v=%.4f cells/t  overlap=%s%s  "
                "transport=%s\n"
                "         kernel=%s (%d-wide)  schedule=%s\n\n",
                opt.scenario.c_str(), size.x, size.y, size.z, opt.steps,
                opt.ranks, threads, gradient, velocity, overlap.c_str(),
                window ? "  moving-window" : "",
                opt.ranks == 1 ? "(serial)" : vmpi::transportName(transport),
                core::activeKernelTarget()->name,
                core::activeKernelTarget()->width,
                cfg.schedule == core::SweepSchedule::Fused ? "fused"
                                                           : "split");

    try {
        if (opt.ranks == 1) {
            runRank(opt, cfg, nullptr);
        } else {
            vmpi::runParallel(transport, opt.ranks, [&](vmpi::Comm& comm) {
                runRank(opt, cfg, &comm);
            });
        }
    } catch (const io::CheckpointError& e) {
        // Raised collectively on every rank (no hung collectives) and
        // rethrown once on this thread by runParallel.
        std::fprintf(stderr, "tpf-sim: %s\n", e.what());
        return 1;
    } catch (const io::CsvError& e) {
        std::fprintf(stderr, "tpf-sim: %s\n", e.what());
        return 1;
    }
    return 0;
}
