/// \file tpf_chk.cpp
/// Checkpoint inspection and comparison utility:
///
///   tpf-chk info <dir>      print the self-describing metadata of a
///                           checkpoint directory (format version, step,
///                           simulated time, window offset, grid, ranks,
///                           stored precision)
///   tpf-chk diff <a> <b>    field-by-field comparison of two checkpoints;
///                           exit 0 when bitwise identical, 1 with the first
///                           divergent field and cell otherwise
///
/// `diff` is the CLI face of io::compareCheckpoints — the same routine the
/// golden-run regression suite and the CI restart-equivalence smoke use, so
/// a red CI step can be reproduced verbatim on a workstation.

#include <cstdio>
#include <cstring>
#include <string>

#include "io/checkpoint.h"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: tpf-chk info <checkpoint-dir>\n"
                 "       tpf-chk diff <checkpoint-dir-a> <checkpoint-dir-b>\n");
    return 2;
}

int info(const std::string& dir) {
    using namespace tpf;
    try {
        const io::CheckpointMeta m = io::readCheckpointMeta(dir);
        std::printf("checkpoint      %s\n", dir.c_str());
        std::printf("format version  %d\n", m.formatVersion);
        std::printf("precision       float%d (%s)\n", 8 * m.precisionBytes,
                    m.precisionBytes == 8 ? "exact restart" : "lossy");
        std::printf("step            %lld\n", m.step);
        std::printf("time            %.17g\n", m.time);
        std::printf("window offset   %.17g cells\n", m.windowOffset);
        std::printf("global cells    %d x %d x %d\n", m.globalCells.x,
                    m.globalCells.y, m.globalCells.z);
        std::printf("block cells     %d x %d x %d\n", m.blockCells.x,
                    m.blockCells.y, m.blockCells.z);
        std::printf("ranks           %d\n", m.numRanks);
        return 0;
    } catch (const io::CheckpointError& e) {
        std::fprintf(stderr, "tpf-chk: %s\n", e.what());
        return 2;
    }
}

int diff(const std::string& a, const std::string& b) {
    using namespace tpf;
    const io::CheckpointDiff d = io::compareCheckpoints(a, b);
    std::printf("%s\n", d.message().c_str());
    return d.identical ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "info" && argc == 3) return info(argv[2]);
    if (cmd == "diff" && argc == 4) return diff(argv[2], argv[3]);
    return usage();
}
