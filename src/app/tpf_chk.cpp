/// \file tpf_chk.cpp
/// Checkpoint and telemetry-artifact inspection utility:
///
///   tpf-chk info <dir>      print the self-describing metadata of a
///                           checkpoint directory (format version, step,
///                           simulated time, window offset, grid, ranks,
///                           stored precision)
///   tpf-chk diff <a> <b>    field-by-field comparison of two checkpoints;
///                           exit 0 when bitwise identical, 1 with the first
///                           divergent field and cell otherwise
///   tpf-chk trace <file>    validate a --trace Chrome trace-event JSON:
///                           well-formed JSON, balanced B/E spans per rank,
///                           monotonic per-rank timestamps; prints the rank/
///                           event/span-name summary, exit 0 iff valid
///   tpf-chk metrics <file>  validate a --metrics CSV: "# tpf-metrics v1"
///                           schema line, rectangular rows, strictly
///                           increasing step keys; prints a summary
///
/// `diff` is the CLI face of io::compareCheckpoints — the same routine the
/// golden-run regression suite and the CI restart-equivalence smoke use, so
/// a red CI step can be reproduced verbatim on a workstation. `trace` and
/// `metrics` are the CLI face of obs::validateTraceFile and
/// io::readCsvSeries, used by the smoke_obs ctest and CI.

#include <cstdio>
#include <cstring>
#include <string>

#include "io/checkpoint.h"
#include "io/csv_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

int usage() {
    std::fprintf(stderr,
                 "usage: tpf-chk info <checkpoint-dir>\n"
                 "       tpf-chk diff <checkpoint-dir-a> <checkpoint-dir-b>\n"
                 "       tpf-chk trace <trace.json>\n"
                 "       tpf-chk metrics <metrics.csv>\n");
    return 2;
}

int info(const std::string& dir) {
    using namespace tpf;
    try {
        const io::CheckpointMeta m = io::readCheckpointMeta(dir);
        std::printf("checkpoint      %s\n", dir.c_str());
        std::printf("format version  %d\n", m.formatVersion);
        std::printf("precision       float%d (%s)\n", 8 * m.precisionBytes,
                    m.precisionBytes == 8 ? "exact restart" : "lossy");
        std::printf("step            %lld\n", m.step);
        std::printf("time            %.17g\n", m.time);
        std::printf("window offset   %.17g cells\n", m.windowOffset);
        std::printf("global cells    %d x %d x %d\n", m.globalCells.x,
                    m.globalCells.y, m.globalCells.z);
        std::printf("block cells     %d x %d x %d\n", m.blockCells.x,
                    m.blockCells.y, m.blockCells.z);
        std::printf("ranks           %d\n", m.numRanks);
        return 0;
    } catch (const io::CheckpointError& e) {
        std::fprintf(stderr, "tpf-chk: %s\n", e.what());
        return 2;
    }
}

int diff(const std::string& a, const std::string& b) {
    using namespace tpf;
    const io::CheckpointDiff d = io::compareCheckpoints(a, b);
    std::printf("%s\n", d.message().c_str());
    return d.identical ? 0 : 1;
}

int trace(const std::string& file) {
    using namespace tpf;
    const obs::TraceCheck c = obs::validateTraceFile(file);
    if (!c.ok) {
        std::fprintf(stderr, "tpf-chk: invalid trace: %s\n",
                     c.message.c_str());
        return 1;
    }
    std::printf("trace           %s\n", file.c_str());
    std::printf("ranks           %d\n", c.ranks);
    std::printf("duration events %lld (balanced)\n", c.events);
    std::printf("span names      ");
    for (std::size_t i = 0; i < c.spanNames.size(); ++i)
        std::printf("%s%s", i > 0 ? ", " : "", c.spanNames[i].c_str());
    std::printf("\n");
    return 0;
}

int metrics(const std::string& file) {
    using namespace tpf;
    try {
        const io::CsvSeries series = io::readCsvSeries(file);
        const std::string schema =
            std::string("# ") + obs::MetricsRegistry::kCsvTag + " v" +
            std::to_string(obs::MetricsRegistry::kCsvVersion);
        if (series.schema != schema) {
            std::fprintf(stderr,
                         "tpf-chk: %s carries schema '%s', expected '%s'\n",
                         file.c_str(), series.schema.c_str(), schema.c_str());
            return 1;
        }
        for (std::size_t i = 1; i < series.rows.size(); ++i) {
            if (series.stepOf(i) <= series.stepOf(i - 1)) {
                std::fprintf(stderr,
                             "tpf-chk: %s: step keys not strictly increasing "
                             "at row %zu (%lld after %lld)\n",
                             file.c_str(), i, series.stepOf(i),
                             series.stepOf(i - 1));
                return 1;
            }
        }
        std::printf("metrics         %s\n", file.c_str());
        std::printf("schema          %s\n", series.schema.c_str());
        std::printf("columns         %zu\n", series.columns.size());
        std::printf("rows            %zu", series.rows.size());
        if (!series.rows.empty())
            std::printf("  (steps %lld..%lld)", series.stepOf(0),
                        series.stepOf(series.rows.size() - 1));
        std::printf("\n");
        return 0;
    } catch (const io::CsvError& e) {
        std::fprintf(stderr, "tpf-chk: %s\n", e.what());
        return 1;
    }
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string cmd = argv[1];
    if (cmd == "info" && argc == 3) return info(argv[2]);
    if (cmd == "diff" && argc == 4) return diff(argv[2], argv[3]);
    if (cmd == "trace" && argc == 3) return trace(argv[2]);
    if (cmd == "metrics" && argc == 3) return metrics(argv[2]);
    return usage();
}
