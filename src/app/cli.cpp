/// \file cli.cpp

#include "app/cli.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tpf::app {

Cli::Cli(int argc, char** argv, std::string synopsis)
    : prog_(argc > 0 ? argv[0] : "tpf"), synopsis_(std::move(synopsis)) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "-h" || a == "--help") {
            help_ = true;
            continue;
        }
        args_.push_back(a);
    }
    used_.assign(args_.size(), false);
}

bool Cli::take(const std::string& name, std::string& value, bool isFlag) {
    // With -h/--help on the line, never parse (and possibly reject) values:
    // the caller will print usage and exit.
    if (help_) return false;
    const std::string key = "--" + name;
    const std::string keyEq = key + "=";
    for (std::size_t i = 0; i < args_.size(); ++i) {
        if (used_[i]) continue;
        if (args_[i] == key) {
            used_[i] = true;
            if (isFlag) {
                // assign() instead of `value = "1"`: GCC 12's -Wrestrict
                // false-positives on the char* assignment path when inlined
                // at -O3 (GCC PR 105329), and the warning set is -Werror in
                // CI.
                value.assign(1, '1');
                return true;
            }
            if (i + 1 >= args_.size() || used_[i + 1]) {
                std::fprintf(stderr, "%s: missing value for %s\n",
                             prog_.c_str(), key.c_str());
                std::exit(2);
            }
            used_[i + 1] = true;
            value = args_[i + 1];
            return true;
        }
        if (args_[i].rfind(keyEq, 0) == 0) {
            used_[i] = true;
            value = args_[i].substr(keyEq.size());
            if (isFlag) {
                // Accept an explicit boolean so --flag=0 disables the flag.
                if (value == "0" || value == "false" || value == "no" ||
                    value == "off")
                    return false;
                value.assign(1, '1'); // see above: GCC PR 105329 workaround
            }
            return true;
        }
    }
    return false;
}

std::string Cli::getString(const std::string& name, const std::string& def,
                           const std::string& help) {
    options_.push_back({name, def, help, false});
    std::string v;
    return take(name, v, false) ? v : def;
}

int Cli::getInt(const std::string& name, int def, const std::string& help) {
    options_.push_back({name, std::to_string(def), help, false});
    std::string v;
    if (!take(name, v, false)) return def;
    try {
        std::size_t pos = 0;
        const int out = std::stoi(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return out;
    } catch (const std::exception&) {
        std::fprintf(stderr, "%s: --%s expects an integer, got '%s'\n",
                     prog_.c_str(), name.c_str(), v.c_str());
        std::exit(2);
    }
}

double Cli::getDouble(const std::string& name, double def,
                      const std::string& help) {
    options_.push_back({name, std::to_string(def), help, false});
    std::string v;
    if (!take(name, v, false)) return def;
    try {
        std::size_t pos = 0;
        const double out = std::stod(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return out;
    } catch (const std::exception&) {
        std::fprintf(stderr, "%s: --%s expects a number, got '%s'\n",
                     prog_.c_str(), name.c_str(), v.c_str());
        std::exit(2);
    }
}

bool Cli::getFlag(const std::string& name, const std::string& help) {
    options_.push_back({name, "", help, true});
    std::string v;
    return take(name, v, true);
}

Int3 Cli::getInt3(const std::string& name, Int3 def, const std::string& help) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%d,%d,%d", def.x, def.y, def.z);
    options_.push_back({name, buf, help, false});
    std::string v;
    if (!take(name, v, false)) return def;
    for (char& c : v)
        if (c == 'x' || c == 'X') c = ',';
    Int3 out{};
    int consumed = 0;
    if (std::sscanf(v.c_str(), "%d,%d,%d%n", &out.x, &out.y, &out.z,
                    &consumed) != 3 ||
        consumed != static_cast<int>(v.size())) {
        std::fprintf(stderr,
                     "%s: --%s expects NX,NY,NZ (or NXxNYxNZ), got '%s'\n",
                     prog_.c_str(), name.c_str(), v.c_str());
        std::exit(2);
    }
    return out;
}

void Cli::printHelp() const {
    std::printf("usage: %s %s\n\noptions:\n", prog_.c_str(),
                synopsis_.c_str());
    for (const auto& o : options_) {
        std::string left = "--" + o.name;
        if (!o.isFlag) left += " <v>";
        std::printf("  %-22s %s", left.c_str(), o.help.c_str());
        if (!o.isFlag && !o.def.empty())
            std::printf(" [default: %s]", o.def.c_str());
        std::printf("\n");
    }
}

bool Cli::finish() const {
    if (help_) return true;
    bool ok = true;
    for (std::size_t i = 0; i < args_.size(); ++i)
        if (!used_[i]) {
            std::fprintf(stderr, "%s: unknown argument '%s' (see --help)\n",
                         prog_.c_str(), args_[i].c_str());
            ok = false;
        }
    return ok;
}

} // namespace tpf::app
