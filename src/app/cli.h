#pragma once
/// \file cli.h
/// Minimal declarative command-line parser for the tpf binaries: options are
/// registered with a default and a help line, values are pulled on demand,
/// and anything left unconsumed is an error. Supports `--name value`,
/// `--name=value` and boolean `--name` flags.

#include <string>
#include <vector>

#include "grid/block_forest.h"

namespace tpf::app {

class Cli {
public:
    Cli(int argc, char** argv, std::string synopsis);

    /// True when -h/--help was passed; the caller should printHelp and exit.
    bool helpRequested() const { return help_; }

    std::string getString(const std::string& name, const std::string& def,
                          const std::string& help);
    int getInt(const std::string& name, int def, const std::string& help);
    double getDouble(const std::string& name, double def,
                     const std::string& help);
    bool getFlag(const std::string& name, const std::string& help);
    /// Comma- or 'x'-separated triple, e.g. "48,48,64" or "48x48x64".
    Int3 getInt3(const std::string& name, Int3 def, const std::string& help);

    /// Print usage and the registered options (call after all get* calls).
    void printHelp() const;

    /// True when every argument was consumed; otherwise prints the leftovers
    /// to stderr. Call after all get* calls.
    bool finish() const;

private:
    struct Option {
        std::string name, def, help;
        bool isFlag = false;
    };

    /// Consume `--name <v>` / `--name=v`; returns false when absent.
    bool take(const std::string& name, std::string& value, bool isFlag);

    std::string prog_, synopsis_;
    std::vector<std::string> args_;
    std::vector<bool> used_;
    std::vector<Option> options_;
    bool help_ = false;
};

} // namespace tpf::app
