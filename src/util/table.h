#pragma once
/// \file table.h
/// Console table printer used by the benchmark binaries to emit the rows /
/// series of the paper's figures in a uniform, grep-friendly format.

#include <string>
#include <vector>

namespace tpf {

/// Accumulates rows of string cells and prints them with aligned columns.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Add one row; must have the same number of cells as the header.
    void addRow(std::vector<std::string> cells);

    /// Format a double with \p precision significant decimal digits.
    static std::string num(double v, int precision = 3);

    /// Render to a string (includes a separator under the header).
    std::string str() const;

    /// Print to stdout.
    void print() const;

private:
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tpf
