#pragma once
/// \file random.h
/// Small, fast, reproducible PRNG (xoshiro256++) used for Voronoi seeding,
/// test-domain generation and benchmarks. Deterministic across platforms —
/// important because multi-rank equivalence tests compare runs bitwise.

#include <cstdint>

namespace tpf {

/// SplitMix64 — used to seed xoshiro from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256++ generator.
class Random {
public:
    explicit Random(std::uint64_t seed = 0x2545F4914F6CDD1DULL) {
        std::uint64_t sm = seed;
        for (auto& si : s_) si = splitmix64(sm);
    }

    std::uint64_t nextU64() {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n).
    std::uint64_t uniformInt(std::uint64_t n) {
        // Lemire's nearly-divisionless bounded integers would be overkill here;
        // modulo bias is irrelevant for our n << 2^64 use cases.
        return nextU64() % n;
    }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t s_[4];
};

} // namespace tpf
