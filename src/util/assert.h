#pragma once
/// \file assert.h
/// Lightweight assertion macros. TPF_ASSERT is active in all build types for
/// cheap invariants (index bounds are guarded by TPF_ASSERT_DBG only in debug
/// builds, since they sit on the hot path of every field access).

#include <cstdio>
#include <cstdlib>

namespace tpf {

[[noreturn]] inline void assertFail(const char* expr, const char* file, int line,
                                    const char* msg) {
    std::fprintf(stderr, "TPF assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
                 line, msg ? msg : "");
    std::abort();
}

} // namespace tpf

#define TPF_ASSERT(expr, msg)                                                        \
    do {                                                                             \
        if (!(expr)) ::tpf::assertFail(#expr, __FILE__, __LINE__, msg);              \
    } while (0)

#ifndef NDEBUG
#define TPF_ASSERT_DBG(expr, msg) TPF_ASSERT(expr, msg)
#else
#define TPF_ASSERT_DBG(expr, msg) ((void)0)
#endif
