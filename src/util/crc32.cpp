#include "util/crc32.h"

namespace tpf::util {

namespace {

/// 256-entry lookup table for the reflected polynomial 0xEDB88320, built once
/// on first use (byte-at-a-time variant; the checkpoint payloads are far from
/// I/O-bound on the checksum).
struct Crc32Table {
    std::uint32_t t[256];
    Crc32Table() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

} // namespace

std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed) {
    static const Crc32Table table;
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < bytes; ++i)
        c = table.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace tpf::util
