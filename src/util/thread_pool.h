#pragma once
/// \file thread_pool.h
/// A small persistent worker pool for intra-rank parallel kernel sweeps.
///
/// The paper's scaling experiments run one MPI rank per core; this repo's
/// vmpi ranks are threads already, so the hybrid ranks x threads mode nests a
/// pool like this inside every rank (waLBerla-style "hybrid parallelization").
/// Design constraints that shaped the interface:
///  - workers are spawned once and reused every time step (a sweep is ~ms;
///    thread creation per step would dominate),
///  - parallelFor() blocks until every task completed and the calling thread
///    participates in the work, so a pool of n threads uses exactly n cores,
///  - exceptions thrown by any task are rethrown on the caller (first one
///    wins, remaining tasks are skipped),
///  - nested parallelFor() calls on the same pool run inline on the calling
///    thread — no deadlock, no oversubscription.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpf::util {

class ThreadPool {
public:
    /// A pool of \p threads threads total: \p threads - 1 workers are
    /// spawned, the caller of parallelFor() is the remaining one.
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int threads() const { return nThreads_; }

    /// Run fn(i) for every i in [0, n), distributed over the pool; blocks
    /// until all n tasks completed. The caller participates. If any task
    /// throws, the first exception is rethrown here after the fan-out
    /// drained; remaining unstarted tasks are skipped. Reentrant calls from
    /// inside a task execute inline (see file comment). When the caller has
    /// obs fan-out stats installed (obs/fanout.h), wall and per-task busy
    /// times are accumulated there — telemetry only, never field state.
    void parallelFor(int n, const std::function<void(int)>& fn);

    /// Hardware concurrency with a floor of 1.
    static int hardwareThreads();

private:
    void parallelForImpl(int n, const std::function<void(int)>& fn);
    void workerLoop();
    void runTasks(const std::function<void(int)>& fn, int n);

    int nThreads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable wake_; ///< workers: a new job arrived / stop
    std::condition_variable done_; ///< caller: all tasks of the job finished
    bool stop_ = false;
    int busyWorkers_ = 0; ///< workers currently inside runTasks (guarded by m_)

    // Current job, guarded by m_ except for the index/progress atomics.
    // Workers snapshot (fn_, n_) in the same m_-critical section that
    // increments busyWorkers_: a caller cannot finish its job (busyWorkers_
    // must drop to 0) — and hence no next job can be installed — while any
    // worker still holds a snapshot, so a straggler that missed a job can
    // never mix one job's task count with another's function or index
    // counter. jobId_ distinguishes jobs so a missed one is never mistaken
    // for the next.
    std::uint64_t jobId_ = 0;
    const std::function<void(int)>* fn_ = nullptr;
    int n_ = 0;
    std::atomic<int> next_{0};
    std::atomic<int> completed_{0};
    std::atomic<bool> failed_{false};
    std::exception_ptr error_;

    std::mutex callerM_; ///< serializes concurrent parallelFor callers
};

} // namespace tpf::util
