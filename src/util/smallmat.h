#pragma once
/// \file smallmat.h
/// Tiny fixed-size linear algebra for the thermodynamic coupling:
/// 2-vectors / 2x2 matrices for the K-1 = 2 independent chemical potentials
/// and 3-vectors for spatial quantities. Everything is constexpr-friendly and
/// lives in registers; no dynamic allocation.

#include <array>
#include <cmath>

#include "util/assert.h"

namespace tpf {

/// 2-component vector (chemical potential / concentration space).
struct Vec2 {
    double x = 0.0, y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator-() const { return {-x, -y}; }
    constexpr Vec2& operator+=(Vec2 o) {
        x += o.x;
        y += o.y;
        return *this;
    }
    constexpr Vec2& operator-=(Vec2 o) {
        x -= o.x;
        y -= o.y;
        return *this;
    }
    constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
    double norm() const { return std::sqrt(dot(*this)); }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// 2x2 matrix, row-major: [[a, b], [c, d]].
struct Mat2 {
    double a = 0.0, b = 0.0, c = 0.0, d = 0.0;

    constexpr Mat2() = default;
    constexpr Mat2(double a_, double b_, double c_, double d_)
        : a(a_), b(b_), c(c_), d(d_) {}

    static constexpr Mat2 identity() { return {1.0, 0.0, 0.0, 1.0}; }
    static constexpr Mat2 diag(double x, double y) { return {x, 0.0, 0.0, y}; }

    constexpr Mat2 operator+(Mat2 o) const {
        return {a + o.a, b + o.b, c + o.c, d + o.d};
    }
    constexpr Mat2 operator-(Mat2 o) const {
        return {a - o.a, b - o.b, c - o.c, d - o.d};
    }
    constexpr Mat2 operator*(double s) const { return {a * s, b * s, c * s, d * s}; }
    constexpr Mat2& operator+=(Mat2 o) {
        a += o.a;
        b += o.b;
        c += o.c;
        d += o.d;
        return *this;
    }
    constexpr Vec2 operator*(Vec2 v) const {
        return {a * v.x + b * v.y, c * v.x + d * v.y};
    }
    constexpr Mat2 operator*(Mat2 o) const {
        return {a * o.a + b * o.c, a * o.b + b * o.d, c * o.a + d * o.c,
                c * o.b + d * o.d};
    }

    constexpr double det() const { return a * d - b * c; }
    constexpr double trace() const { return a + d; }

    /// Inverse; asserts the determinant is safely away from zero.
    Mat2 inverse() const {
        const double dt = det();
        TPF_ASSERT_DBG(std::abs(dt) > 1e-300, "singular 2x2 matrix");
        const double s = 1.0 / dt;
        return {d * s, -b * s, -c * s, a * s};
    }

    /// Solve M x = r without forming the inverse (one division, better rounding).
    Vec2 solve(Vec2 r) const {
        const double s = 1.0 / det();
        return {(d * r.x - b * r.y) * s, (a * r.y - c * r.x) * s};
    }

    constexpr bool isSymmetric(double tol = 1e-12) const {
        const double diff = b - c;
        return diff < tol && diff > -tol;
    }

    /// Eigenvalues of a symmetric 2x2 matrix, ascending.
    std::array<double, 2> symEigenvalues() const {
        const double mean = 0.5 * trace();
        const double diff = 0.5 * (a - d);
        const double rad = std::sqrt(diff * diff + b * c);
        return {mean - rad, mean + rad};
    }

    /// Eigenvector for eigenvalue \p lambda of a symmetric matrix (normalized).
    Vec2 symEigenvector(double lambda) const {
        // (a - lambda) x + b y = 0  ->  (x, y) ~ (-b, a - lambda) or (d - lambda, -c)
        Vec2 v1{-b, a - lambda};
        Vec2 v2{d - lambda, -c};
        Vec2 v = (v1.dot(v1) > v2.dot(v2)) ? v1 : v2;
        const double n = v.norm();
        if (n < 1e-300) return {1.0, 0.0}; // matrix is lambda * I
        return v * (1.0 / n);
    }
};

/// 3-component spatial vector.
struct Vec3 {
    double x = 0.0, y = 0.0, z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3& operator+=(Vec3 o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
    constexpr Vec3 cross(Vec3 o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    double norm() const { return std::sqrt(dot(*this)); }
    constexpr double norm2() const { return dot(*this); }
};

constexpr Vec3 operator*(double s, Vec3 v) { return v * s; }

} // namespace tpf
