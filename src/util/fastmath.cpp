#include "util/fastmath.h"

namespace tpf {

namespace {

/// Taylor coefficients of sin(pi*s) = s * sum_k c[k] * s^(2k), built once
/// from pure double multiplies/divides: c[k] = (-1)^k pi^(2k+1) / (2k+1)!.
/// Truncated after s^23; the omitted tail is < 2e-18 at |s| = 0.5.
struct SinpiCoeffs {
    static constexpr int K = 12;
    double c[K];
    SinpiCoeffs() {
        constexpr double pi = 3.14159265358979323846264338327950288;
        double num = pi;    // pi^(2k+1)
        double fact = 1.0;  // (2k+1)!
        double sign = 1.0;
        for (int k = 0; k < K; ++k) {
            c[k] = sign * (num / fact);
            num *= pi * pi;
            fact *= static_cast<double>(2 * k + 2) * static_cast<double>(2 * k + 3);
            sign = -sign;
        }
    }
};

} // namespace

double sinpiCompact(double s) {
    static const SinpiCoeffs sc;
    const double u = s * s;
    double p = sc.c[SinpiCoeffs::K - 1];
    for (int k = SinpiCoeffs::K - 2; k >= 0; --k) p = p * u + sc.c[k];
    const double r = s * p;
    // The profile callers map this to a phase fraction in [0, 1]; keep the
    // polynomial's half-ulp overshoot at s = +-0.5 from leaving [-1, 1].
    return r > 1.0 ? 1.0 : (r < -1.0 ? -1.0 : r);
}

ReciprocalTable::ReciprocalTable(int maxDenominator) {
    TPF_ASSERT(maxDenominator >= 1, "ReciprocalTable needs at least one entry");
    inv_.resize(static_cast<std::size_t>(maxDenominator) + 1, 0.0);
    for (int d = 1; d <= maxDenominator; ++d)
        inv_[static_cast<std::size_t>(d)] = 1.0 / static_cast<double>(d);
}

} // namespace tpf
