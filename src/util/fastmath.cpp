#include "util/fastmath.h"

namespace tpf {

ReciprocalTable::ReciprocalTable(int maxDenominator) {
    TPF_ASSERT(maxDenominator >= 1, "ReciprocalTable needs at least one entry");
    inv_.resize(static_cast<std::size_t>(maxDenominator) + 1, 0.0);
    for (int d = 1; d <= maxDenominator; ++d)
        inv_[static_cast<std::size_t>(d)] = 1.0 / static_cast<double>(d);
}

} // namespace tpf
