#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/assert.h"

namespace tpf {

Table::Table(std::vector<std::string> header) { rows_.push_back(std::move(header)); }

void Table::addRow(std::vector<std::string> cells) {
    TPF_ASSERT(cells.size() == rows_.front().size(),
               "row width must match header width");
    rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string Table::str() const {
    std::vector<std::size_t> width(rows_.front().size(), 0);
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (std::size_t c = 0; c < rows_[r].size(); ++c) {
            os << rows_[r][c];
            if (c + 1 < rows_[r].size())
                os << std::string(width[c] - rows_[r][c].size() + 2, ' ');
        }
        os << '\n';
        if (r == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < width.size(); ++c)
                total += width[c] + (c + 1 < width.size() ? 2 : 0);
            os << std::string(total, '-') << '\n';
        }
    }
    return os.str();
}

void Table::print() const { std::fputs(str().c_str(), stdout); }

} // namespace tpf
