#pragma once
/// \file simplex.h
/// Euclidean projection onto the Gibbs simplex { x : x_i >= 0, sum x_i = 1 }.
///
/// The multi-obstacle potential of the phase-field model is +infinity outside
/// the simplex; the explicit Euler proposal is therefore projected back after
/// every update (the paper's "routine that projects the phi values back into
/// the allowed simplex"). The projection also *pins* bulk cells exactly at
/// simplex vertices, which is what makes the shortcut kernels bitwise
/// equivalent to the full kernels.
///
/// Algorithm: sort-based projection (Held/Wolfe/Crowder; cf. Condat 2016) —
/// exact, O(N log N); for the fixed N=4 of this model a sorting network is
/// used so the kernel versions (scalar and SIMD) agree bitwise.

#include <algorithm>
#include <array>
#include <cstddef>

namespace tpf {

/// Project x (length N) onto the unit simplex in place. Generic size.
template <std::size_t N>
inline void projectToSimplex(std::array<double, N>& x) {
    std::array<double, N> u = x;
    std::sort(u.begin(), u.end(), std::greater<double>());
    double cssv = 0.0;
    double tau = 0.0;
    int k = 0;
    for (std::size_t j = 0; j < N; ++j) {
        cssv += u[j];
        const double t = (cssv - 1.0) / static_cast<double>(j + 1);
        if (u[j] - t > 0.0) {
            tau = t;
            k = static_cast<int>(j + 1);
        }
    }
    (void)k;
    for (std::size_t i = 0; i < N; ++i) x[i] = std::max(x[i] - tau, 0.0);
}

/// Compare-exchange (descending) helper for the N=4 sorting network.
inline void cmpExchDesc(double& hi, double& lo) {
    const double a = hi, b = lo;
    hi = a > b ? a : b;
    lo = a > b ? b : a;
}

/// Specialized N=4 projection with a 5-comparator sorting network.
/// Exactly the same arithmetic as the generic version, but branch-free sorting
/// so SIMD kernel variants can mirror it operation-for-operation.
inline void projectToSimplex4(double& x0, double& x1, double& x2, double& x3) {
    double u0 = x0, u1 = x1, u2 = x2, u3 = x3;
    // Sorting network (descending): (0,1)(2,3)(0,2)(1,3)(1,2)
    cmpExchDesc(u0, u1);
    cmpExchDesc(u2, u3);
    cmpExchDesc(u0, u2);
    cmpExchDesc(u1, u3);
    cmpExchDesc(u1, u2);

    // Candidate thresholds tau_j = (sum_{i<=j} u_i - 1)/(j+1); pick the largest j
    // with u_j - tau_j > 0.
    const double c0 = u0;
    const double c1 = c0 + u1;
    const double c2 = c1 + u2;
    const double c3 = c2 + u3;
    const double t0 = c0 - 1.0;
    const double t1 = (c1 - 1.0) * 0.5;
    const double t2 = (c2 - 1.0) * (1.0 / 3.0);
    const double t3 = (c3 - 1.0) * 0.25;

    double tau = t0;
    if (u1 - t1 > 0.0) tau = t1;
    if (u2 - t2 > 0.0) tau = t2;
    if (u3 - t3 > 0.0) tau = t3;

    x0 = std::max(x0 - tau, 0.0);
    x1 = std::max(x1 - tau, 0.0);
    x2 = std::max(x2 - tau, 0.0);
    x3 = std::max(x3 - tau, 0.0);
}

} // namespace tpf
