#pragma once
/// \file fastmath.h
/// Scalar fast-math building blocks used by the compute kernels:
///  - fast inverse square root (Lomont magic constant + Newton refinement),
///    used to normalize phase-field gradients in the anti-trapping current;
///  - a reciprocal lookup table for divisions whose denominator is known to
///    come from a small set of values (the paper replaces such divisions by
///    "table lookup and multiplication with the inverse").

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/assert.h"

namespace tpf {

/// Fast approximate 1/sqrt(x) for double precision.
///
/// One magic-constant seed (Lomont 2003, 64-bit variant) followed by
/// \p newtonSteps Newton–Raphson iterations. Two steps give ~1e-6 relative
/// accuracy, three give ~1e-10 — the kernels use three steps so that kernel
/// equivalence tests can use tight tolerances while still avoiding the
/// hardware divide/sqrt latency chain the paper works around.
template <int newtonSteps = 3>
inline double fastInvSqrt(double x) {
    static_assert(newtonSteps >= 0 && newtonSteps <= 4);
    std::uint64_t i;
    std::memcpy(&i, &x, sizeof(double));
    i = 0x5fe6eb50c7b537a9ULL - (i >> 1);
    double y;
    std::memcpy(&y, &i, sizeof(double));
    const double xhalf = 0.5 * x;
    // Explicit fma pins the floating-point semantics so the scalar helper and
    // the SIMD backends (which use fnmadd) agree bitwise.
    for (int k = 0; k < newtonSteps; ++k)
        y = y * std::fma(-xhalf, y * y, 1.5);
    return y;
}

/// sin(pi * s) for |s| <= 0.5, evaluated with a fixed Taylor polynomial in
/// pure double arithmetic (no libm call).
///
/// The compact sinus interface profiles of the Voronoi initialization and the
/// benchmark scenario fills feed directly into committed golden-run reference
/// checkpoints, which are compared bitwise across machines. libm's sin() is
/// only guaranteed to ~1 ulp and its rounding has changed between glibc
/// versions, so the profile must not depend on it: this polynomial uses only
/// IEEE-754 add/mul/div, which round identically everywhere. Absolute error
/// vs the exactly rounded sin is < 1e-15 on [-0.5, 0.5] (asserted by
/// tests/test_util.cpp), far below the physical accuracy of the profile.
double sinpiCompact(double s);

/// Reciprocal table: precomputes 1/v for a fixed set of denominators so the
/// hot loop replaces a division by an indexed multiply.
///
/// The phase-field kernels divide by small integers (phase counts, stencil
/// weights); indices are the denominators themselves.
class ReciprocalTable {
public:
    /// Build the table for denominators 1..maxDenominator.
    explicit ReciprocalTable(int maxDenominator);

    /// 1.0 / d, looked up. d must be in [1, maxDenominator].
    double inv(int d) const {
        TPF_ASSERT_DBG(d >= 1 && d < static_cast<int>(inv_.size()), "denominator");
        return inv_[static_cast<std::size_t>(d)];
    }

    int maxDenominator() const { return static_cast<int>(inv_.size()) - 1; }

private:
    std::vector<double> inv_;
};

/// Round \p v up to the next multiple of \p m (m > 0).
constexpr std::size_t roundUp(std::size_t v, std::size_t m) {
    return (v + m - 1) / m * m;
}

} // namespace tpf
