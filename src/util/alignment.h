#pragma once
/// \file alignment.h
/// Cache-line/SIMD-aligned allocation helpers and an allocator usable with
/// standard containers. All field storage in the library is 64-byte aligned so
/// that SIMD loads of the leading elements of each row can be aligned.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>

namespace tpf {

/// Alignment used for all bulk numeric storage (one x86 cache line).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Allocate \p bytes with \ref kCacheLineBytes alignment. Throws std::bad_alloc.
inline void* alignedAlloc(std::size_t bytes) {
    if (bytes == 0) bytes = kCacheLineBytes;
    // std::aligned_alloc requires size to be a multiple of alignment.
    const std::size_t rounded =
        (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, rounded);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}

inline void alignedFree(void* p) noexcept { std::free(p); }

/// STL-compatible allocator with 64-byte alignment.
template <typename T>
struct AlignedAllocator {
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

    T* allocate(std::size_t n) {
        if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
            throw std::bad_alloc{};
        return static_cast<T*>(alignedAlloc(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t) noexcept { alignedFree(p); }

    template <typename U>
    bool operator==(const AlignedAllocator<U>&) const noexcept {
        return true;
    }
    template <typename U>
    bool operator!=(const AlignedAllocator<U>&) const noexcept {
        return false;
    }
};

/// True if \p p is aligned to \p alignment bytes.
inline bool isAligned(const void* p, std::size_t alignment = kCacheLineBytes) {
    return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

} // namespace tpf
