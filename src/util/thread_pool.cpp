#include "util/thread_pool.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/fanout.h"

namespace tpf::util {

namespace {

/// Pool whose parallelFor the current thread is executing a task of. Nested
/// submissions to the same pool run inline instead of deadlocking on the
/// (already busy) workers.
thread_local const ThreadPool* tlsActivePool = nullptr;

} // namespace

ThreadPool::ThreadPool(int threads) : nThreads_(std::max(1, threads)) {
    workers_.reserve(static_cast<std::size_t>(nThreads_ - 1));
    for (int i = 0; i < nThreads_ - 1; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
}

int ThreadPool::hardwareThreads() {
    return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void ThreadPool::runTasks(const std::function<void(int)>& fn, int n) {
    const ThreadPool* prev = tlsActivePool;
    tlsActivePool = this;
    int i;
    while ((i = next_.fetch_add(1, std::memory_order_acquire)) < n) {
        if (!failed_.load(std::memory_order_relaxed)) {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lk(m_);
                if (!failed_.exchange(true)) error_ = std::current_exception();
            }
        }
        completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    tlsActivePool = prev;
}

void ThreadPool::workerLoop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        wake_.wait(lk, [&] { return stop_ || jobId_ != seen; });
        if (stop_) return;
        seen = jobId_;
        // Snapshot the job under the mutex, in the same critical section as
        // the busyWorkers_ increment (see the header comment for why this
        // closes the stale-job race). fn_ is null when the job was already
        // drained and cleared before this worker woke.
        const std::function<void(int)>* fn = fn_;
        const int n = n_;
        if (!fn) continue;
        ++busyWorkers_;
        lk.unlock();
        runTasks(*fn, n);
        lk.lock();
        if (--busyWorkers_ == 0) done_.notify_all();
    }
}

void ThreadPool::parallelFor(int n, const std::function<void(int)>& fn) {
    if (n <= 0) return;
    // Fan-out telemetry (obs/fanout.h): the caller's — i.e. the rank loop
    // thread's — installed stats, if any. Nested calls run inside an outer
    // task that is already being timed, so they stay uninstrumented.
    obs::FanoutStats* stats =
        tlsActivePool == this ? nullptr : obs::threadFanoutStats();
    if (stats == nullptr) {
        parallelForImpl(n, fn);
        return;
    }
    const double t0 = obs::wallNow();
    const std::function<void(int)> timed = [&fn, stats](int i) {
        const double s = obs::wallNow();
        fn(i);
        obs::atomicAdd(stats->busySeconds, obs::wallNow() - s);
        stats->tasks.fetch_add(1, std::memory_order_relaxed);
    };
    parallelForImpl(n, timed);
    stats->fanouts.fetch_add(1, std::memory_order_relaxed);
    obs::atomicAdd(stats->wallSeconds, obs::wallNow() - t0);
}

void ThreadPool::parallelForImpl(int n, const std::function<void(int)>& fn) {
    if (nThreads_ == 1 || n == 1 || tlsActivePool == this) {
        // Serial pool, single task, or nested call: run inline.
        for (int i = 0; i < n; ++i) fn(i);
        return;
    }

    std::lock_guard<std::mutex> serial(callerM_);
    {
        std::lock_guard<std::mutex> lk(m_);
        fn_ = &fn;
        n_ = n;
        completed_.store(0, std::memory_order_relaxed);
        failed_.store(false, std::memory_order_relaxed);
        error_ = nullptr;
        ++jobId_;
        next_.store(0, std::memory_order_release);
    }
    wake_.notify_all();

    runTasks(fn, n); // the caller is one of the pool's threads

    {
        std::unique_lock<std::mutex> lk(m_);
        done_.wait(lk, [&] {
            return busyWorkers_ == 0 &&
                   completed_.load(std::memory_order_acquire) >= n;
        });
        fn_ = nullptr;
    }
    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
    }
}

} // namespace tpf::util
