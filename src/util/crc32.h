#pragma once
/// \file crc32.h
/// CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320), table-driven. Used by
/// the checkpoint format to give every stored field a checksum, so a flipped
/// bit on disk is detected at load time and reported with the offending
/// field's name instead of silently perturbing a multi-day run.

#include <cstddef>
#include <cstdint>

namespace tpf::util {

/// CRC-32 of \p bytes. \p seed allows incremental computation: feed the
/// previous result to continue a running checksum over multiple buffers.
std::uint32_t crc32(const void* data, std::size_t bytes, std::uint32_t seed = 0);

} // namespace tpf::util
