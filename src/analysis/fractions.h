#pragma once
/// \file fractions.h
/// Phase-fraction diagnostics: global fractions, per-z-slice profiles and
/// front position. Used by the examples and by EXPERIMENTS.md to compare the
/// grown microstructure against the lever-rule expectation ("similar phase
/// fractions" of the real Ag-Al-Cu system).

#include <array>
#include <vector>

#include "core/sim_block.h"

namespace tpf::analysis {

/// Mean of each order parameter over the interior of \p phi.
std::array<double, core::N> phaseFractions(const Field<double>& phi);

/// Per-slice fractions: result[z][a] = mean of phi_a over slice z.
std::vector<std::array<double, core::N>> zProfile(const Field<double>& phi);

/// Solid fractions renormalized over the solid phases only, within the slab
/// z in [z0, z1] (useful to evaluate only fully solidified material).
std::array<double, 3> solidFractionsInSlab(const Field<double>& phi, int z0,
                                           int z1);

/// Highest z containing solid (liquid fraction <= 0.5 somewhere), -1 if none.
int frontZ(const Field<double>& phi);

} // namespace tpf::analysis
