#include "analysis/correlation.h"

#include <cmath>

#include "analysis/lamellae.h" // indicatorPlane: the shared phase threshold
#include "util/assert.h"

namespace tpf::analysis {

namespace {
inline int wrap(int v, int n) { return ((v % n) + n) % n; }

/// Integer S2 hit counts of one plane, accumulated into \p hits.
void accumulatePlaneHits(const unsigned char* ind, int nx, int ny, int axis,
                         int maxShift, std::vector<long long>& hits) {
    for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
            if (!ind[static_cast<std::size_t>(y) * nx + x]) continue;
            for (int r = 0; r <= maxShift; ++r) {
                const int xs = axis == 0 ? wrap(x + r, nx) : x;
                const int ys = axis == 1 ? wrap(y + r, ny) : y;
                if (ind[static_cast<std::size_t>(ys) * nx + xs])
                    ++hits[static_cast<std::size_t>(r)];
            }
        }
    }
}

} // namespace

std::vector<double> twoPointCorrelationPlane(const unsigned char* ind, int nx,
                                             int ny, int axis, int maxShift) {
    TPF_ASSERT(axis == 0 || axis == 1, "correlation axis must be x or y");
    TPF_ASSERT(ind != nullptr && nx > 0 && ny > 0, "invalid indicator plane");

    std::vector<long long> hits(static_cast<std::size_t>(maxShift) + 1, 0);
    accumulatePlaneHits(ind, nx, ny, axis, maxShift, hits);

    std::vector<double> s2(hits.size());
    const double inv = 1.0 / (static_cast<double>(nx) * ny);
    for (std::size_t r = 0; r < hits.size(); ++r)
        s2[r] = static_cast<double>(hits[r]) * inv;
    return s2;
}

std::vector<double> twoPointCorrelation(const Field<double>& phi, int phase,
                                        int axis, int maxShift, int z0,
                                        int z1) {
    TPF_ASSERT(axis == 0 || axis == 1, "correlation axis must be x or y");
    TPF_ASSERT(z0 >= 0 && z1 < phi.nz() && z0 <= z1, "invalid z slab");
    const int nx = phi.nx(), ny = phi.ny();

    std::vector<long long> hits(static_cast<std::size_t>(maxShift) + 1, 0);
    for (int z = z0; z <= z1; ++z) {
        const auto ind = indicatorPlane(phi, phase, z);
        accumulatePlaneHits(ind.data(), nx, ny, axis, maxShift, hits);
    }

    std::vector<double> s2(hits.size());
    const double inv = 1.0 / (static_cast<double>(nx) * ny * (z1 - z0 + 1));
    for (std::size_t r = 0; r < hits.size(); ++r)
        s2[r] = static_cast<double>(hits[r]) * inv;
    return s2;
}

double lamellarSpacingEstimate(const std::vector<double>& s2) {
    // First local minimum then the following local maximum of S2(r): the
    // maximum position approximates the repeat distance of the lamellae.
    // Monotone or constant profiles never complete the descend+ascend
    // pattern and yield 0 = "no estimate" (see the header contract).
    std::size_t i = 1;
    while (i + 1 < s2.size() && s2[i] > s2[i + 1]) ++i; // descend
    std::size_t minPos = i;
    while (i + 1 < s2.size() && s2[i] <= s2[i + 1]) ++i; // ascend
    if (i == minPos || i + 1 >= s2.size()) return 0.0;
    return static_cast<double>(i);
}

std::vector<double> correlationMap2DPlane(const unsigned char* ind, int nx,
                                          int ny, int maxShift) {
    TPF_ASSERT(ind != nullptr && nx > 0 && ny > 0, "invalid indicator plane");
    const int side = 2 * maxShift + 1;
    std::vector<double> map(static_cast<std::size_t>(side) * side, 0.0);

    for (int dy = -maxShift; dy <= maxShift; ++dy) {
        for (int dx = -maxShift; dx <= maxShift; ++dx) {
            long long hits = 0;
            for (int y = 0; y < ny; ++y) {
                const int ys = wrap(y + dy, ny);
                for (int x = 0; x < nx; ++x) {
                    const int xs = wrap(x + dx, nx);
                    hits += ind[static_cast<std::size_t>(y) * nx + x] &
                            ind[static_cast<std::size_t>(ys) * nx + xs];
                }
            }
            map[static_cast<std::size_t>(dy + maxShift) * side +
                (dx + maxShift)] =
                static_cast<double>(hits) / (static_cast<double>(nx) * ny);
        }
    }
    return map;
}

std::vector<double> correlationMap2D(const Field<double>& phi, int phase,
                                     int z, int maxShift) {
    const auto ind = indicatorPlane(phi, phase, z);
    return correlationMap2DPlane(ind.data(), phi.nx(), phi.ny(), maxShift);
}

CorrelationPca correlationPca(const std::vector<double>& map, int maxShift) {
    const int side = 2 * maxShift + 1;
    TPF_ASSERT(static_cast<int>(map.size()) == side * side,
               "correlation map size mismatch");

    // Background-subtract (uncorrelated level = fraction^2 ~ far-field value)
    // and clamp negatives so the weights form a density over lag vectors.
    const double center = map[static_cast<std::size_t>(maxShift) * side +
                              maxShift]; // = phase fraction
    const double background = center * center;

    double w = 0.0;
    Mat2 M;
    for (int dy = -maxShift; dy <= maxShift; ++dy) {
        for (int dx = -maxShift; dx <= maxShift; ++dx) {
            const double c =
                map[static_cast<std::size_t>(dy + maxShift) * side +
                    (dx + maxShift)] -
                background;
            if (c <= 0.0) continue;
            w += c;
            M += Mat2{static_cast<double>(dx) * dx, static_cast<double>(dx) * dy,
                      static_cast<double>(dx) * dy, static_cast<double>(dy) * dy} *
                 c;
        }
    }
    CorrelationPca out;
    if (w <= 0.0) return out;
    M = M * (1.0 / w);
    const auto ev = M.symEigenvalues();
    out.lambdaMinor = ev[0];
    out.lambdaMajor = ev[1];
    out.axisMajor = M.symEigenvector(ev[1]);
    return out;
}

} // namespace tpf::analysis
