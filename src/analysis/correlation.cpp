#include "analysis/correlation.h"

#include <cmath>

#include "util/assert.h"

namespace tpf::analysis {

namespace {
inline int wrap(int v, int n) { return ((v % n) + n) % n; }
} // namespace

std::vector<double> twoPointCorrelation(const Field<double>& phi, int phase,
                                        int axis, int maxShift, int z0,
                                        int z1) {
    TPF_ASSERT(axis == 0 || axis == 1, "correlation axis must be x or y");
    TPF_ASSERT(z0 >= 0 && z1 < phi.nz() && z0 <= z1, "invalid z slab");
    const int nx = phi.nx(), ny = phi.ny();

    std::vector<double> s2(static_cast<std::size_t>(maxShift) + 1, 0.0);
    long long samples = 0;

    for (int z = z0; z <= z1; ++z) {
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                const bool a = phi(x, y, z, phase) > 0.5;
                if (!a) {
                    ++samples;
                    continue;
                }
                for (int r = 0; r <= maxShift; ++r) {
                    const int xs = axis == 0 ? wrap(x + r, nx) : x;
                    const int ys = axis == 1 ? wrap(y + r, ny) : y;
                    if (phi(xs, ys, z, phase) > 0.5)
                        s2[static_cast<std::size_t>(r)] += 1.0;
                }
                ++samples;
            }
        }
    }
    const double inv = samples > 0 ? 1.0 / static_cast<double>(samples) : 0.0;
    for (auto& v : s2) v *= inv;
    return s2;
}

double lamellarSpacingEstimate(const std::vector<double>& s2) {
    // First local minimum then the following local maximum of S2(r): the
    // maximum position approximates the repeat distance of the lamellae.
    std::size_t i = 1;
    while (i + 1 < s2.size() && s2[i] > s2[i + 1]) ++i; // descend
    std::size_t minPos = i;
    while (i + 1 < s2.size() && s2[i] <= s2[i + 1]) ++i; // ascend
    if (i == minPos || i + 1 >= s2.size()) return 0.0;
    return static_cast<double>(i);
}

std::vector<double> correlationMap2D(const Field<double>& phi, int phase,
                                     int z, int maxShift) {
    const int nx = phi.nx(), ny = phi.ny();
    const int side = 2 * maxShift + 1;
    std::vector<double> map(static_cast<std::size_t>(side) * side, 0.0);

    // Precompute the indicator slice.
    std::vector<char> ind(static_cast<std::size_t>(nx) * ny);
    for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x)
            ind[static_cast<std::size_t>(y) * nx + x] =
                phi(x, y, z, phase) > 0.5 ? 1 : 0;

    for (int dy = -maxShift; dy <= maxShift; ++dy) {
        for (int dx = -maxShift; dx <= maxShift; ++dx) {
            long long hits = 0;
            for (int y = 0; y < ny; ++y) {
                const int ys = wrap(y + dy, ny);
                for (int x = 0; x < nx; ++x) {
                    const int xs = wrap(x + dx, nx);
                    hits += ind[static_cast<std::size_t>(y) * nx + x] &
                            ind[static_cast<std::size_t>(ys) * nx + xs];
                }
            }
            map[static_cast<std::size_t>(dy + maxShift) * side +
                (dx + maxShift)] =
                static_cast<double>(hits) / (static_cast<double>(nx) * ny);
        }
    }
    return map;
}

CorrelationPca correlationPca(const std::vector<double>& map, int maxShift) {
    const int side = 2 * maxShift + 1;
    TPF_ASSERT(static_cast<int>(map.size()) == side * side,
               "correlation map size mismatch");

    // Background-subtract (uncorrelated level = fraction^2 ~ far-field value)
    // and clamp negatives so the weights form a density over lag vectors.
    const double center = map[static_cast<std::size_t>(maxShift) * side +
                              maxShift]; // = phase fraction
    const double background = center * center;

    double w = 0.0;
    Mat2 M;
    for (int dy = -maxShift; dy <= maxShift; ++dy) {
        for (int dx = -maxShift; dx <= maxShift; ++dx) {
            const double c =
                map[static_cast<std::size_t>(dy + maxShift) * side +
                    (dx + maxShift)] -
                background;
            if (c <= 0.0) continue;
            w += c;
            M += Mat2{static_cast<double>(dx) * dx, static_cast<double>(dx) * dy,
                      static_cast<double>(dx) * dy, static_cast<double>(dy) * dy} *
                 c;
        }
    }
    CorrelationPca out;
    if (w <= 0.0) return out;
    M = M * (1.0 / w);
    const auto ev = M.symEigenvalues();
    out.lambdaMinor = ev[0];
    out.lambdaMajor = ev[1];
    out.axisMajor = M.symEigenvector(ev[1]);
    return out;
}

} // namespace tpf::analysis
