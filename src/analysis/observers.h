#pragma once
/// \file observers.h
/// In-situ, rank-parallel analysis observers and the pipeline that schedules
/// them — the paper's scientific payoff (lamella splits/merges of Figs.
/// 10/11, phase fractions vs. the lever rule, the announced two-point-
/// correlation/PCA comparison) computed *during* the run instead of offline
/// on a dumped whole-domain field.
///
/// An Observer contributes named columns to a shared CSV time series
/// (io::CsvWriter). Pipeline::sample() is collective: every rank calls it at
/// the same completed step; observers run their per-rank tile sweeps, the
/// tiles are combined on root via the canonical-order scheme of
/// src/analysis/gather.h, and root appends one row. The resulting series is
/// bitwise identical for any ranks x threads decomposition, moving window
/// included — enforced by ctest `analysis_rank_invariance` and the golden
/// time-series suite.
///
/// Scheduling hooks into core::Solver::addPostStepHook (after the ping-pong
/// swap, so observers see the post-step phiSrc/muSrc fields) with a cadence
/// keyed off the *global* step count; a restarted run therefore resumes the
/// sampling schedule exactly (ctest `restart_equivalence`).

#include <memory>
#include <string>
#include <vector>

#include "analysis/gather.h"
#include "io/csv_writer.h"

namespace tpf::core {
class Solver;
}

namespace tpf::analysis {

/// CSV schema tag/version shared by pipeline producers and validators. Bump
/// the version whenever columns or value semantics change; golden series and
/// resumed runs reject mismatching files with a pointed message.
inline constexpr const char* kAnalysisCsvTag = "tpf-analysis";
inline constexpr int kAnalysisCsvVersion = 1;

/// Everything an observer may look at during one collective sample.
struct SampleContext {
    const std::vector<std::unique_ptr<core::SimBlock>>* blocks = nullptr;
    const BlockForest* forest = nullptr;
    vmpi::Comm* comm = nullptr; ///< nullptr: serial run
    long long step = 0;         ///< completed global steps
    double time = 0.0;
    double windowOffset = 0.0;  ///< add to z for absolute cell coordinates
    /// Global solid-front z in window coordinates (-1: all liquid); computed
    /// once per sample (collective max) and shared by all observers.
    int frontZ = -1;

    bool isRoot() const { return comm == nullptr || comm->isRoot(); }
};

/// One diagnostic family. sample() is collective — every rank must call it,
/// in pipeline registration order; only root's return value is used (other
/// ranks return an empty vector).
class Observer {
public:
    virtual ~Observer() = default;
    virtual const char* name() const = 0;
    /// Column names contributed to the CSV header, fixed for the run.
    virtual std::vector<std::string> columns() const = 0;
    /// Root: one value per column; non-root: empty.
    virtual std::vector<double> sample(const SampleContext& ctx) = 0;
};

/// Phase fractions (per order parameter), solid-only renormalized fractions
/// and the front position: frac_s0..2, frac_liq, sfrac_s0..2, front_z.
std::unique_ptr<Observer> makeFractionsObserver();

/// Per-solid-phase lamella topology over the solid slab [0, front]:
/// component count at the mid-solid slice, splits and merges along z
/// (lam_count_s*, lam_splits_s*, lam_merges_s*).
std::unique_ptr<Observer> makeLamellaObserver();

/// Per-solid-phase spacing/anisotropy at the mid-solid slice: S2 spacing
/// estimates along x and y and the correlation-PCA anisotropy
/// (s2_spacing_x_s*, s2_spacing_y_s*, pca_aniso_s*). A 0 spacing means "no
/// estimate" (see lamellarSpacingEstimate).
std::unique_ptr<Observer> makeCorrelationObserver();

/// Factory by CLI name: "fractions", "lamellae", "correlation". Returns
/// nullptr for unknown names.
std::unique_ptr<Observer> makeObserver(const std::string& name);

/// Observer names understood by makeObserver, in canonical order.
const std::vector<std::string>& observerNames();

/// The observer registry plus the CSV series it streams to.
class Pipeline {
public:
    void add(std::unique_ptr<Observer> obs);
    /// All observers in canonical order (the default configuration).
    static Pipeline makeDefault();

    /// Column names: time,window_offset + every observer's columns (the
    /// leading step key is owned by the writer).
    std::vector<std::string> columns() const;

    /// Start a fresh CSV series (root rank only; other ranks skip silently).
    void createCsv(const std::string& path);
    /// Continue an existing series after a restart from step \p lastStep
    /// (root rank only). Throws io::CsvError on schema/column mismatch.
    void resumeCsv(const std::string& path, long long lastStep);
    const std::string& csvPath() const { return csv_.path(); }

    /// Collective: sample every observer at completed step \p step and
    /// append one row on root.
    void sample(core::Solver& solver, long long step);

    /// Register the cadence hook on \p solver: sample at every completed
    /// global step divisible by \p every. Collective registration — every
    /// rank must attach an identically configured pipeline.
    void attach(core::Solver& solver, int every);

    std::size_t observerCount() const { return obs_.size(); }

private:
    std::vector<std::unique_ptr<Observer>> obs_;
    io::CsvWriter csv_;
};

} // namespace tpf::analysis
