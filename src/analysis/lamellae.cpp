#include "analysis/lamellae.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "util/assert.h"

namespace tpf::analysis {

namespace {

/// Union-find with path compression.
class UnionFind {
public:
    explicit UnionFind(int n) : parent_(static_cast<std::size_t>(n)) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }
    int find(int v) {
        while (parent_[static_cast<std::size_t>(v)] != v) {
            parent_[static_cast<std::size_t>(v)] =
                parent_[static_cast<std::size_t>(
                    parent_[static_cast<std::size_t>(v)])];
            v = parent_[static_cast<std::size_t>(v)];
        }
        return v;
    }
    void unite(int a, int b) {
        a = find(a);
        b = find(b);
        if (a != b) parent_[static_cast<std::size_t>(a)] = b;
    }

private:
    std::vector<int> parent_;
};

inline int wrap(int v, int n) { return ((v % n) + n) % n; }

/// Accumulate the parent/child transition counts between two labeled slices.
void countTransitions(const SliceLabels& prev, const SliceLabels& cur,
                      LamellaStats& st) {
    std::set<std::pair<int, int>> links;
    for (std::size_t i = 0; i < cur.label.size(); ++i) {
        if (prev.label[i] >= 0 && cur.label[i] >= 0)
            links.insert({prev.label[i], cur.label[i]});
    }
    std::vector<int> children(static_cast<std::size_t>(prev.count), 0);
    std::vector<int> parents(static_cast<std::size_t>(cur.count), 0);
    for (const auto& [p, c] : links) {
        ++children[static_cast<std::size_t>(p)];
        ++parents[static_cast<std::size_t>(c)];
    }
    for (int c : children) {
        if (c == 0) ++st.vanishes;
        if (c >= 2) ++st.splits;
    }
    for (int p : parents) {
        if (p == 0) ++st.appears;
        if (p >= 2) ++st.merges;
    }
}

} // namespace

std::vector<unsigned char> indicatorPlane(const Field<double>& phi, int phase,
                                          int z) {
    const int nx = phi.nx(), ny = phi.ny();
    std::vector<unsigned char> ind(static_cast<std::size_t>(nx) * ny);
    for (int y = 0; y < ny; ++y)
        for (int x = 0; x < nx; ++x)
            ind[static_cast<std::size_t>(y) * nx + x] =
                phi(x, y, z, phase) > 0.5 ? 1 : 0;
    return ind;
}

SliceLabels labelPlane(const unsigned char* ind, int nx, int ny) {
    TPF_ASSERT(ind != nullptr && nx > 0 && ny > 0, "invalid indicator plane");
    const int cells = nx * ny;

    UnionFind uf(cells);
    for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
            const int i = y * nx + x;
            if (!ind[static_cast<std::size_t>(i)]) continue;
            const int xn = wrap(x + 1, nx);
            const int yn = wrap(y + 1, ny);
            if (ind[static_cast<std::size_t>(y) * nx + xn])
                uf.unite(i, y * nx + xn);
            if (ind[static_cast<std::size_t>(yn) * nx + x])
                uf.unite(i, yn * nx + x);
        }
    }

    SliceLabels out;
    out.label.assign(static_cast<std::size_t>(cells), -1);
    std::map<int, int> rootToLabel;
    for (int i = 0; i < cells; ++i) {
        if (!ind[static_cast<std::size_t>(i)]) continue;
        const int root = uf.find(i);
        auto [it, inserted] =
            rootToLabel.try_emplace(root, static_cast<int>(rootToLabel.size()));
        out.label[static_cast<std::size_t>(i)] = it->second;
    }
    out.count = static_cast<int>(rootToLabel.size());
    return out;
}

SliceLabels labelSlice(const Field<double>& phi, int phase, int z) {
    const auto ind = indicatorPlane(phi, phase, z);
    return labelPlane(ind.data(), phi.nx(), phi.ny());
}

LamellaStats analyzeLamellaePlanes(
    const std::vector<std::vector<unsigned char>>& planes, int nx, int ny) {
    LamellaStats st;
    if (planes.empty()) return st;

    SliceLabels prev = labelPlane(planes.front().data(), nx, ny);
    st.countPerSlice.push_back(prev.count);
    for (std::size_t p = 1; p < planes.size(); ++p) {
        SliceLabels cur = labelPlane(planes[p].data(), nx, ny);
        st.countPerSlice.push_back(cur.count);
        countTransitions(prev, cur, st);
        prev = std::move(cur);
    }
    return st;
}

LamellaStats analyzeLamellae(const Field<double>& phi, int phase, int z0,
                             int z1) {
    std::vector<std::vector<unsigned char>> planes;
    planes.reserve(static_cast<std::size_t>(z1 - z0 + 1));
    for (int z = z0; z <= z1; ++z)
        planes.push_back(indicatorPlane(phi, phase, z));
    return analyzeLamellaePlanes(planes, phi.nx(), phi.ny());
}

} // namespace tpf::analysis
