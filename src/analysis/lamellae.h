#pragma once
/// \file lamellae.h
/// Lamella topology analysis: per-slice connected components of each solid
/// phase (periodic x-y labeling) and split/merge tracking between consecutive
/// slices — the events the paper highlights in Figures 10/11 ("various splits
/// and merges of these lamellae can be observed", "brick-like structures that
/// are connected or form ring-like structures").

#include <vector>

#include "core/sim_block.h"

namespace tpf::analysis {

/// Label the connected components of 1[phi_phase > 0.5] in slice \p z with
/// 4-connectivity and periodic wrapping. Returns labels (-1 where the
/// indicator is false) and the number of components.
struct SliceLabels {
    std::vector<int> label; ///< nx*ny row-major, -1 outside the phase
    int count = 0;
};

SliceLabels labelSlice(const Field<double>& phi, int phase, int z);

/// Lamella statistics per slice and the topological transitions along z.
struct LamellaStats {
    std::vector<int> countPerSlice; ///< components per z slice
    int splits = 0;  ///< component with >= 2 children in the next slice
    int merges = 0;  ///< component with >= 2 parents in the previous slice
    int appears = 0; ///< component with no parent
    int vanishes = 0; ///< component with no child
};

/// Analyze phase \p phase over slices [z0, z1].
LamellaStats analyzeLamellae(const Field<double>& phi, int phase, int z0,
                             int z1);

} // namespace tpf::analysis
