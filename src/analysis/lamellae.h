#pragma once
/// \file lamellae.h
/// Lamella topology analysis: per-slice connected components of each solid
/// phase (periodic x-y labeling) and split/merge tracking between consecutive
/// slices — the events the paper highlights in Figures 10/11 ("various splits
/// and merges of these lamellae can be observed", "brick-like structures that
/// are connected or form ring-like structures").
///
/// Two entry layers:
///  - plane-based (`labelPlane` / `analyzeLamellaePlanes`): operate on raw
///    indicator planes (nx*ny bytes, row-major, y outer). This is what the
///    in-situ observer pipeline feeds with globally assembled slices in
///    multi-rank runs (src/analysis/gather.h) — the labeling itself is
///    integer-only and therefore decomposition-independent by construction.
///  - field-based (`labelSlice` / `analyzeLamellae`): convenience wrappers
///    over a whole-domain Field for offline analysis and tests.

#include <vector>

#include "core/sim_block.h"

namespace tpf::analysis {

/// Component labels of one slice/plane: -1 outside the phase, else a label
/// in [0, count). Labels are assigned in first-touch scan order (y outer,
/// x inner), so they are deterministic for a given plane.
struct SliceLabels {
    std::vector<int> label; ///< nx*ny row-major, -1 outside the phase
    int count = 0;
};

/// The indicator plane 1[phi_phase > 0.5] of slice \p z: nx*ny bytes,
/// row-major with y outer. The single definition of the threshold and cell
/// order that every plane-based diagnostic (labeling, correlation, the
/// rank-parallel tile gathers) builds on — keep it that way, or observers
/// silently disagree about what "inside a phase" means.
std::vector<unsigned char> indicatorPlane(const Field<double>& phi, int phase,
                                          int z);

/// Label the connected components of a boolean indicator plane (nonzero =
/// inside) with 4-connectivity and periodic wrapping in both x and y.
/// Edge cases: an empty plane yields count 0; a full plane yields one
/// component; a stripe touching itself across either (or both) periodic
/// edges stays a single component.
SliceLabels labelPlane(const unsigned char* ind, int nx, int ny);

/// Label the components of 1[phi_phase > 0.5] in slice \p z of a field.
SliceLabels labelSlice(const Field<double>& phi, int phase, int z);

/// Lamella statistics per slice and the topological transitions along z.
struct LamellaStats {
    std::vector<int> countPerSlice; ///< components per z slice
    int splits = 0;  ///< component with >= 2 children in the next slice
    int merges = 0;  ///< component with >= 2 parents in the previous slice
    int appears = 0; ///< component with no parent
    int vanishes = 0; ///< component with no child
};

/// Analyze a stack of indicator planes (each nx*ny bytes, ascending z).
/// An empty stack returns all-zero stats.
LamellaStats analyzeLamellaePlanes(
    const std::vector<std::vector<unsigned char>>& planes, int nx, int ny);

/// Analyze phase \p phase of a field over slices [z0, z1].
LamellaStats analyzeLamellae(const Field<double>& phi, int phase, int z0,
                             int z1);

} // namespace tpf::analysis
