#include "analysis/fractions.h"

namespace tpf::analysis {

std::array<double, core::N> phaseFractions(const Field<double>& phi) {
    std::array<double, core::N> sum{};
    forEachCell(phi.interior(), [&](int x, int y, int z) {
        for (int a = 0; a < core::N; ++a)
            sum[static_cast<std::size_t>(a)] += phi(x, y, z, a);
    });
    const double inv = 1.0 / static_cast<double>(phi.interior().numCells());
    for (auto& s : sum) s *= inv;
    return sum;
}

std::vector<std::array<double, core::N>> zProfile(const Field<double>& phi) {
    std::vector<std::array<double, core::N>> prof(
        static_cast<std::size_t>(phi.nz()));
    const double inv = 1.0 / (static_cast<double>(phi.nx()) * phi.ny());
    for (int z = 0; z < phi.nz(); ++z) {
        std::array<double, core::N> sum{};
        for (int y = 0; y < phi.ny(); ++y)
            for (int x = 0; x < phi.nx(); ++x)
                for (int a = 0; a < core::N; ++a)
                    sum[static_cast<std::size_t>(a)] += phi(x, y, z, a);
        for (auto& s : sum) s *= inv;
        prof[static_cast<std::size_t>(z)] = sum;
    }
    return prof;
}

std::array<double, 3> solidFractionsInSlab(const Field<double>& phi, int z0,
                                           int z1) {
    std::array<double, 3> sum{};
    double total = 0.0;
    for (int z = z0; z <= z1; ++z)
        for (int y = 0; y < phi.ny(); ++y)
            for (int x = 0; x < phi.nx(); ++x)
                for (int a = 0; a < 3; ++a) {
                    sum[static_cast<std::size_t>(a)] += phi(x, y, z, a);
                    total += phi(x, y, z, a);
                }
    if (total <= 0.0) return {0.0, 0.0, 0.0};
    for (auto& s : sum) s /= total;
    return sum;
}

int frontZ(const Field<double>& phi) {
    for (int z = phi.nz() - 1; z >= 0; --z)
        for (int y = 0; y < phi.ny(); ++y)
            for (int x = 0; x < phi.nx(); ++x)
                if (phi(x, y, z, core::LIQ) <= 0.5) return z;
    return -1;
}

} // namespace tpf::analysis
