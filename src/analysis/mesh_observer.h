#pragma once
/// \file mesh_observer.h
/// In-situ time-series mesh output: streams per-phase compressed (extracted,
/// boundary-lock simplified, stitched) iso-surface meshes during the run —
/// the paper's I/O-reduction payoff (§3.2: 121 GB of raw fields shrunk to
/// surface meshes) as a post-step observer instead of an offline pass.
///
/// Per sampled step the observer runs io::extractGlobalPhaseSurface for each
/// configured phase (collective: every rank participates); root writes
/// `<dir>/phase<k>_step<NNNNNN>.obj` and appends one row with triangle
/// count, vertex count, area and Euler characteristic per phase to the
/// `# tpf-mesh v1` index CSV `<dir>/mesh_index.csv`.
///
/// Scheduling and restart mirror the analysis pipeline (observers.h): the
/// cadence keys off the *global* step count via Solver::addPostStepHook, and
/// resume() trims index rows newer than the checkpoint — re-reached steps
/// rewrite their OBJ files with bitwise-identical content, so a restarted
/// run leaves exactly the artifacts an uninterrupted one would.

#include <string>
#include <vector>

#include "io/csv_writer.h"
#include "io/mesh_pipeline.h"

namespace tpf::core {
class Solver;
}

namespace tpf::analysis {

/// Index-CSV schema tag/version (same conventions as kAnalysisCsvTag).
inline constexpr const char* kMeshCsvTag = "tpf-mesh";
inline constexpr int kMeshCsvVersion = 1;

class MeshObserver {
public:
    struct Options {
        std::string dir;                ///< output directory (created lazily)
        std::vector<int> phases{0, 1, 2}; ///< order parameters to mesh
        int every = 100;                ///< global-step cadence
        double iso = 0.5;
        /// Per-chunk in-situ reduction factor (io::MeshPipelineOptions).
        double reduceTarget = 0.25;
    };

    explicit MeshObserver(Options opt);

    /// Column names after the leading step key: time, then per phase k the
    /// tri_s<k>, verts_s<k>, area_s<k>, euler_s<k> quadruple.
    std::vector<std::string> columns() const;

    /// Start a fresh index series (root rank only; others skip silently).
    void create(bool isRoot);
    /// Continue an existing series after a restart from step \p lastStep
    /// (root rank only). Throws io::CsvError on schema/column mismatch.
    void resume(bool isRoot, long long lastStep);

    const std::string& indexPath() const { return indexPath_; }
    /// OBJ file name for one phase/step frame ("phase<k>_step<NNNNNN>.obj").
    static std::string objName(int phase, long long step);

    /// Collective: extract, reduce and stitch every configured phase at
    /// completed step \p step; root writes the OBJ frames + one index row.
    void sample(core::Solver& solver, long long step);

    /// Register the cadence hook (collective registration, like the analysis
    /// pipeline: every rank must attach an identically configured observer).
    void attach(core::Solver& solver);

    /// Accumulated pipeline stage timings over all sample() calls.
    const io::MeshPipelineTimings& timings() const { return timings_; }

private:
    Options opt_;
    std::string indexPath_;
    io::CsvWriter csv_;
    io::MeshPipelineTimings timings_;
};

} // namespace tpf::analysis
