#include "analysis/mesh_observer.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "core/solver.h"
#include "io/writers.h"
#include "util/assert.h"

namespace tpf::analysis {

MeshObserver::MeshObserver(Options opt) : opt_(std::move(opt)) {
    TPF_ASSERT(!opt_.dir.empty(), "mesh observer needs an output directory");
    TPF_ASSERT(opt_.every > 0, "mesh cadence must be positive");
    TPF_ASSERT(!opt_.phases.empty(), "mesh observer needs at least one phase");
    for (const int p : opt_.phases)
        TPF_ASSERT(p >= 0 && p < core::N, "mesh phase index out of range");
    indexPath_ = opt_.dir + "/mesh_index.csv";
}

std::vector<std::string> MeshObserver::columns() const {
    std::vector<std::string> cols{"time"};
    for (const int p : opt_.phases) {
        const std::string k = std::to_string(p);
        cols.push_back("tri_s" + k);
        cols.push_back("verts_s" + k);
        cols.push_back("area_s" + k);
        cols.push_back("euler_s" + k);
    }
    return cols;
}

void MeshObserver::create(bool isRoot) {
    if (!isRoot) return;
    std::filesystem::create_directories(opt_.dir);
    csv_.create(indexPath_, kMeshCsvTag, kMeshCsvVersion, columns());
}

void MeshObserver::resume(bool isRoot, long long lastStep) {
    if (!isRoot) return;
    std::filesystem::create_directories(opt_.dir);
    csv_.resume(indexPath_, kMeshCsvTag, kMeshCsvVersion, columns(), lastStep);
}

std::string MeshObserver::objName(int phase, long long step) {
    char name[64];
    std::snprintf(name, sizeof name, "phase%d_step%06lld.obj", phase, step);
    return name;
}

void MeshObserver::sample(core::Solver& solver, long long step) {
    vmpi::Comm* comm = solver.comm();
    const bool isRoot = comm == nullptr || comm->isRoot();

    std::vector<double> row{solver.time()};
    for (const int phase : opt_.phases) {
        io::MeshPipelineOptions po;
        po.iso = opt_.iso;
        po.reduceTarget = opt_.reduceTarget;
        po.pool = solver.pool();
        const io::TriMesh mesh = io::extractGlobalPhaseSurface(
            solver.localBlocks(), solver.forest(), comm, phase, po,
            &timings_);
        if (!isRoot) continue;
        io::writeObj(opt_.dir + "/" + objName(phase, step), mesh);
        row.push_back(static_cast<double>(mesh.numTriangles()));
        row.push_back(static_cast<double>(mesh.numVertices()));
        row.push_back(mesh.totalArea());
        row.push_back(static_cast<double>(mesh.eulerCharacteristic()));
    }
    if (isRoot && csv_.isOpen()) csv_.writeRow(step, row);
}

void MeshObserver::attach(core::Solver& solver) {
    solver.addPostStepHook("mesh", [this, &solver](long long step) {
        if (step % opt_.every == 0) sample(solver, step);
    });
}

} // namespace tpf::analysis
