#include "analysis/gather.h"

#include <algorithm>
#include <cstring>

#include "analysis/lamellae.h" // indicatorPlane: the shared phase threshold
#include "util/assert.h"

namespace tpf::analysis {

namespace {

/// Serialized tile record headers. Trivially copyable, fixed width; the
/// blobs only ever live inside one process (vmpi transports by memcpy).
struct TileHeader {
    int gz = 0; ///< global z of the slice
    int ox = 0; ///< global x of the tile's first cell
    int oy = 0; ///< global y of the tile's first cell
    int sx = 0; ///< tile extent in x
    int sy = 0; ///< tile extent in y
};
static_assert(std::is_trivially_copyable_v<TileHeader>);

struct SumRecord {
    int gz = 0;
    int ox = 0;
    int oy = 0;
    int pad = 0; ///< keeps the doubles 8-byte aligned in the blob
    std::array<double, core::N> sum{};
};
static_assert(std::is_trivially_copyable_v<SumRecord>);

void appendBytes(std::vector<std::byte>& blob, const void* data,
                 std::size_t bytes) {
    const std::size_t at = blob.size();
    blob.resize(at + bytes);
    std::memcpy(blob.data() + at, data, bytes);
}

} // namespace

std::vector<std::vector<unsigned char>> gatherIndicatorPlanes(
    const std::vector<std::unique_ptr<core::SimBlock>>& blocks,
    const BlockForest& bf, vmpi::Comm* comm, int phase, int z0, int z1) {
    const Int3 global = bf.globalCells();
    TPF_ASSERT(phase >= 0 && phase < core::N, "phase index out of range");
    TPF_ASSERT(z0 >= 0 && z1 < global.z && z0 <= z1,
               "global z slab out of range");

    // Per-rank tile sweep: indicator bytes of every local slice in [z0, z1].
    std::vector<std::byte> blob;
    for (const auto& b : blocks) {
        const int lz0 = std::max(z0 - b->origin.z, 0);
        const int lz1 = std::min(z1 - b->origin.z, b->size.z - 1);
        for (int lz = lz0; lz <= lz1; ++lz) {
            TileHeader h;
            h.gz = b->origin.z + lz;
            h.ox = b->origin.x;
            h.oy = b->origin.y;
            h.sx = b->size.x;
            h.sy = b->size.y;
            const std::vector<unsigned char> tile =
                indicatorPlane(b->phiSrc, phase, lz);
            appendBytes(blob, &h, sizeof h);
            appendBytes(blob, tile.data(), tile.size());
        }
    }

    // Rank-ordered gather; single-rank runs just use the local blob.
    std::vector<std::vector<std::byte>> perRank;
    if (comm != nullptr && comm->size() > 1) {
        perRank = comm->gatherAllBytes(blob);
        if (!comm->isRoot()) return {};
    } else {
        perRank.push_back(std::move(blob));
    }

    // Positional placement into the assembled planes: each global cell is
    // written exactly once, so the result is independent of tile order.
    const std::size_t planeCells =
        static_cast<std::size_t>(global.x) * global.y;
    std::vector<std::vector<unsigned char>> planes(
        static_cast<std::size_t>(z1 - z0 + 1),
        std::vector<unsigned char>(planeCells, 0));
    for (const auto& rb : perRank) {
        std::size_t at = 0;
        while (at < rb.size()) {
            TPF_ASSERT(at + sizeof(TileHeader) <= rb.size(),
                       "truncated analysis tile blob");
            TileHeader h;
            std::memcpy(&h, rb.data() + at, sizeof h);
            at += sizeof h;
            const std::size_t bytes =
                static_cast<std::size_t>(h.sx) * h.sy;
            TPF_ASSERT(at + bytes <= rb.size(),
                       "truncated analysis tile payload");
            TPF_ASSERT(h.gz >= z0 && h.gz <= z1, "tile z out of slab");
            auto& plane = planes[static_cast<std::size_t>(h.gz - z0)];
            for (int y = 0; y < h.sy; ++y)
                std::memcpy(plane.data() +
                                static_cast<std::size_t>(h.oy + y) * global.x +
                                h.ox,
                            rb.data() + at +
                                static_cast<std::size_t>(y) * h.sx,
                            static_cast<std::size_t>(h.sx));
            at += bytes;
        }
    }
    return planes;
}

std::vector<std::array<double, core::N>> gatherPlaneSums(
    const std::vector<std::unique_ptr<core::SimBlock>>& blocks,
    const BlockForest& bf, vmpi::Comm* comm) {
    const Int3 global = bf.globalCells();

    // Per-rank tile sweep: per-slice per-component sums, y-outer / x-inner.
    std::vector<std::byte> blob;
    for (const auto& b : blocks) {
        const Field<double>& phi = b->phiSrc;
        for (int lz = 0; lz < b->size.z; ++lz) {
            SumRecord rec;
            rec.gz = b->origin.z + lz;
            rec.ox = b->origin.x;
            rec.oy = b->origin.y;
            for (int a = 0; a < core::N; ++a) {
                double s = 0.0;
                for (int y = 0; y < b->size.y; ++y)
                    for (int x = 0; x < b->size.x; ++x)
                        s += phi(x, y, lz, a);
                rec.sum[static_cast<std::size_t>(a)] = s;
            }
            appendBytes(blob, &rec, sizeof rec);
        }
    }

    std::vector<std::vector<std::byte>> perRank;
    if (comm != nullptr && comm->size() > 1) {
        perRank = comm->gatherAllBytes(blob);
        if (!comm->isRoot()) return {};
    } else {
        perRank.push_back(std::move(blob));
    }

    std::vector<SumRecord> records;
    for (const auto& rb : perRank) {
        TPF_ASSERT(rb.size() % sizeof(SumRecord) == 0,
                   "malformed analysis sum blob");
        const std::size_t n = rb.size() / sizeof(SumRecord);
        for (std::size_t i = 0; i < n; ++i) {
            SumRecord rec;
            std::memcpy(&rec, rb.data() + i * sizeof rec, sizeof rec);
            records.push_back(rec);
        }
    }

    // Canonical combine: ascending (z, y-origin, x-origin). This fixes the
    // floating-point addition order independently of rank count.
    std::sort(records.begin(), records.end(),
              [](const SumRecord& a, const SumRecord& b) {
                  if (a.gz != b.gz) return a.gz < b.gz;
                  if (a.oy != b.oy) return a.oy < b.oy;
                  return a.ox < b.ox;
              });

    std::vector<std::array<double, core::N>> planeSums(
        static_cast<std::size_t>(global.z));
    for (auto& p : planeSums) p.fill(0.0);
    for (const auto& rec : records) {
        TPF_ASSERT(rec.gz >= 0 && rec.gz < global.z, "sum record z range");
        for (int a = 0; a < core::N; ++a)
            planeSums[static_cast<std::size_t>(rec.gz)]
                     [static_cast<std::size_t>(a)] +=
                rec.sum[static_cast<std::size_t>(a)];
    }
    return planeSums;
}

} // namespace tpf::analysis
