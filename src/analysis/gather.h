#pragma once
/// \file gather.h
/// Rank-parallel assembly of global x-y planes and per-slice sums for the
/// in-situ analysis pipeline.
///
/// ## Determinism contract
///
/// Every diagnostic the observers emit must be bitwise identical for any
/// ranks x threads decomposition of the same run. The scheme that delivers
/// this has three steps:
///
///  1. **Per-rank tile sweeps.** Each rank walks its local blocks and
///     extracts, per global z slice, either an indicator tile (bytes) or the
///     per-component sums of the tile's phi values, always in the fixed
///     y-outer / x-inner order. A tile is the x-y cross-section of one block
///     at one global z — its content and (for sums) its internal reduction
///     order depend only on the block decomposition, never on which rank
///     owns the block or how many sweep threads the rank uses (the analysis
///     sweeps are single-threaded per rank by design; they are off the
///     step's critical path).
///  2. **Rank-ordered gather.** The serialized tiles travel to root with
///     vmpi::Comm::gatherAllBytes, which collects in ascending rank order.
///  3. **Canonical combine on root.** Root places indicator tiles into the
///     global plane by their (y, x) origin — positional, so arrival order is
///     irrelevant — and accumulates sum tiles in ascending (z, y-origin,
///     x-origin) order. The single-rank path runs the *same* extract +
///     combine code over its local tiles, so serial and parallel runs
///     execute identical floating-point sequences by construction.
///
/// With the production z-slab decomposition every plane is one tile, so the
/// combine sequence is literally the serial one for any rank count. Only an
/// x/y block split changes the grouping of the per-plane sums — and then
/// uniformly for every rank count running that block size.

#include <array>
#include <memory>
#include <vector>

#include "core/sim_block.h"
#include "vmpi/comm.h"

namespace tpf::analysis {

/// Indicator planes 1[phi_phase > 0.5] of the global slices z in [z0, z1]
/// (window coordinates), assembled from the ranks' phiSrc tiles. Root
/// returns z1-z0+1 planes of globalNx*globalNy bytes (row-major, y outer);
/// non-roots get an empty vector. Collective when \p comm spans > 1 rank.
std::vector<std::vector<unsigned char>> gatherIndicatorPlanes(
    const std::vector<std::unique_ptr<core::SimBlock>>& blocks,
    const BlockForest& bf, vmpi::Comm* comm, int phase, int z0, int z1);

/// Per-slice sums of every phi component over the global plane, for all
/// global z: root returns globalNz entries combined in the canonical order
/// described above; non-roots get an empty vector. Collective.
std::vector<std::array<double, core::N>> gatherPlaneSums(
    const std::vector<std::unique_ptr<core::SimBlock>>& blocks,
    const BlockForest& bf, vmpi::Comm* comm);

} // namespace tpf::analysis
