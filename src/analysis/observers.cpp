#include "analysis/observers.h"

#include <algorithm>

#include "analysis/correlation.h"
#include "analysis/lamellae.h"
#include "core/moving_window.h"
#include "core/solver.h"
#include "util/assert.h"

namespace tpf::analysis {

namespace {

// Column names below spell the solid phases out as s0..s2 and the liquid
// explicitly; keep that mapping in sync with the model's phase indices.
static_assert(core::N == 4 && core::LIQ == 3,
              "observer columns assume 3 solid phases and a trailing liquid");

class FractionsObserver final : public Observer {
public:
    const char* name() const override { return "fractions"; }

    std::vector<std::string> columns() const override {
        return {"frac_s0",  "frac_s1",  "frac_s2",  "frac_liq",
                "sfrac_s0", "sfrac_s1", "sfrac_s2", "front_z"};
    }

    std::vector<double> sample(const SampleContext& ctx) override {
        const auto planeSums =
            gatherPlaneSums(*ctx.blocks, *ctx.forest, ctx.comm);
        if (!ctx.isRoot()) return {};

        // Accumulate planes in ascending z — the canonical order that makes
        // the total independent of the decomposition (see gather.h).
        std::array<double, core::N> total{};
        for (const auto& p : planeSums)
            for (int a = 0; a < core::N; ++a)
                total[static_cast<std::size_t>(a)] +=
                    p[static_cast<std::size_t>(a)];

        const Int3 g = ctx.forest->globalCells();
        const double invCells =
            1.0 / (static_cast<double>(g.x) * g.y * g.z);
        std::array<double, core::N> frac{};
        for (int a = 0; a < core::N; ++a)
            frac[static_cast<std::size_t>(a)] =
                total[static_cast<std::size_t>(a)] * invCells;

        const double solid = frac[0] + frac[1] + frac[2];
        std::array<double, 3> sfrac{};
        if (solid > 0.0)
            for (int a = 0; a < 3; ++a)
                sfrac[static_cast<std::size_t>(a)] =
                    frac[static_cast<std::size_t>(a)] / solid;

        return {frac[0],  frac[1],  frac[2],  frac[3],
                sfrac[0], sfrac[1], sfrac[2],
                static_cast<double>(ctx.frontZ)};
    }
};

class LamellaObserver final : public Observer {
public:
    const char* name() const override { return "lamellae"; }

    std::vector<std::string> columns() const override {
        std::vector<std::string> c;
        for (int a = 0; a < 3; ++a) {
            const std::string s = std::to_string(a);
            c.push_back("lam_count_s" + s);
            c.push_back("lam_splits_s" + s);
            c.push_back("lam_merges_s" + s);
        }
        return c;
    }

    std::vector<double> sample(const SampleContext& ctx) override {
        std::vector<double> out;
        if (ctx.frontZ < 0) {
            // All liquid: nothing to label, and every rank agrees on frontZ
            // (collective max), so skipping the gathers stays collective.
            if (ctx.isRoot()) out.assign(9, 0.0);
            return out;
        }
        const Int3 g = ctx.forest->globalCells();
        const int zMid = ctx.frontZ / 2;
        for (int phase = 0; phase < 3; ++phase) {
            const auto planes = gatherIndicatorPlanes(
                *ctx.blocks, *ctx.forest, ctx.comm, phase, 0, ctx.frontZ);
            if (!ctx.isRoot()) continue;
            const LamellaStats st = analyzeLamellaePlanes(planes, g.x, g.y);
            out.push_back(static_cast<double>(
                st.countPerSlice[static_cast<std::size_t>(zMid)]));
            out.push_back(static_cast<double>(st.splits));
            out.push_back(static_cast<double>(st.merges));
        }
        return out;
    }
};

class CorrelationObserver final : public Observer {
public:
    const char* name() const override { return "correlation"; }

    std::vector<std::string> columns() const override {
        std::vector<std::string> c;
        for (int a = 0; a < 3; ++a) {
            const std::string s = std::to_string(a);
            c.push_back("s2_spacing_x_s" + s);
            c.push_back("s2_spacing_y_s" + s);
            c.push_back("pca_aniso_s" + s);
        }
        return c;
    }

    std::vector<double> sample(const SampleContext& ctx) override {
        std::vector<double> out;
        if (ctx.frontZ < 0) {
            if (ctx.isRoot()) out.assign(9, 0.0);
            return out;
        }
        const Int3 g = ctx.forest->globalCells();
        const int zRef = ctx.frontZ / 2; // mid-solid reference slice
        const int pcaShift = std::max(1, std::min(g.x, g.y) / 4);
        for (int phase = 0; phase < 3; ++phase) {
            const auto planes = gatherIndicatorPlanes(
                *ctx.blocks, *ctx.forest, ctx.comm, phase, zRef, zRef);
            if (!ctx.isRoot()) continue;
            const unsigned char* ind = planes.front().data();
            const auto s2x =
                twoPointCorrelationPlane(ind, g.x, g.y, /*axis=*/0, g.x / 2);
            const auto s2y =
                twoPointCorrelationPlane(ind, g.x, g.y, /*axis=*/1, g.y / 2);
            const auto map = correlationMap2DPlane(ind, g.x, g.y, pcaShift);
            const CorrelationPca pca = correlationPca(map, pcaShift);
            out.push_back(lamellarSpacingEstimate(s2x));
            out.push_back(lamellarSpacingEstimate(s2y));
            out.push_back(pca.anisotropy());
        }
        return out;
    }
};

} // namespace

std::unique_ptr<Observer> makeFractionsObserver() {
    return std::make_unique<FractionsObserver>();
}
std::unique_ptr<Observer> makeLamellaObserver() {
    return std::make_unique<LamellaObserver>();
}
std::unique_ptr<Observer> makeCorrelationObserver() {
    return std::make_unique<CorrelationObserver>();
}

const std::vector<std::string>& observerNames() {
    static const std::vector<std::string> names{"fractions", "lamellae",
                                                "correlation"};
    return names;
}

std::unique_ptr<Observer> makeObserver(const std::string& name) {
    if (name == "fractions") return makeFractionsObserver();
    if (name == "lamellae") return makeLamellaObserver();
    if (name == "correlation") return makeCorrelationObserver();
    return nullptr;
}

void Pipeline::add(std::unique_ptr<Observer> obs) {
    TPF_ASSERT(obs != nullptr, "null observer");
    obs_.push_back(std::move(obs));
}

Pipeline Pipeline::makeDefault() {
    Pipeline p;
    for (const auto& n : observerNames()) p.add(makeObserver(n));
    return p;
}

std::vector<std::string> Pipeline::columns() const {
    std::vector<std::string> cols{"time", "window_offset"};
    for (const auto& o : obs_)
        for (auto& c : o->columns()) cols.push_back(std::move(c));
    return cols;
}

void Pipeline::createCsv(const std::string& path) {
    csv_.create(path, kAnalysisCsvTag, kAnalysisCsvVersion, columns());
}

void Pipeline::resumeCsv(const std::string& path, long long lastStep) {
    csv_.resume(path, kAnalysisCsvTag, kAnalysisCsvVersion, columns(),
                lastStep);
}

void Pipeline::sample(core::Solver& solver, long long step) {
    SampleContext ctx;
    ctx.blocks = &solver.localBlocks();
    ctx.forest = &solver.forest();
    ctx.comm = solver.comm();
    ctx.step = step;
    ctx.time = solver.time();
    ctx.windowOffset = solver.windowOffsetCells();

    // Shared collective front search (exact: integer max over ranks).
    int front = core::localSolidFrontZ(solver.localBlocks());
    if (ctx.comm != nullptr && ctx.comm->size() > 1)
        front = static_cast<int>(
            ctx.comm->allreduceMax(static_cast<double>(front)));
    ctx.frontZ = front;

    std::vector<double> row{ctx.time, ctx.windowOffset};
    for (auto& o : obs_) {
        std::vector<double> v = o->sample(ctx);
        if (ctx.isRoot()) {
            TPF_ASSERT(v.size() == o->columns().size(),
                       "observer returned the wrong number of values");
            row.insert(row.end(), v.begin(), v.end());
        }
    }
    if (ctx.isRoot() && csv_.isOpen()) csv_.writeRow(step, row);
}

void Pipeline::attach(core::Solver& solver, int every) {
    TPF_ASSERT(every > 0, "analysis cadence must be positive");
    solver.addPostStepHook("analysis", [this, &solver, every](long long step) {
        if (step % every == 0) sample(solver, step);
    });
}

} // namespace tpf::analysis
