#pragma once
/// \file correlation.h
/// Two-point correlation of the phase indicator functions and its principal
/// component analysis — the quantitative microstructure comparison the paper
/// announces ("a quantitative comparison using Principal Component Analysis
/// on two-point correlation is in preparation").
///
/// Like lamellae.h, the module has a plane-based core operating on raw
/// indicator planes (what the in-situ observer pipeline assembles from rank
/// tiles — hit counting is integer, the single normalizing division is the
/// only floating-point operation, so the results are decomposition-
/// independent) and field-based convenience wrappers.

#include <vector>

#include "core/sim_block.h"
#include "util/smallmat.h"

namespace tpf::analysis {

/// 1D two-point (auto)correlation S2(r) of an indicator plane (nx*ny bytes,
/// row-major) along \p axis (0 = x, 1 = y) with periodic wrapping, for
/// r in [0, maxShift]. S2(0) equals the phase fraction; S2(r) -> fraction^2
/// for uncorrelated distances; oscillations reveal the lamellar spacing.
std::vector<double> twoPointCorrelationPlane(const unsigned char* ind, int nx,
                                             int ny, int axis, int maxShift);

/// S2 of 1[phi_phase > 0.5], averaged over the slab z in [z0, z1].
std::vector<double> twoPointCorrelation(const Field<double>& phi, int phase,
                                        int axis, int maxShift, int z0, int z1);

/// Estimate the dominant lamellar spacing from the first non-trivial local
/// maximum of S2 (descend to the first local minimum, then ascend to the
/// next maximum; the maximum's position approximates the repeat distance).
///
/// Returns 0 when S2 carries no spacing signal: a monotone profile (no
/// interior minimum or no maximum after it), a constant profile, or fewer
/// than three samples. Callers must treat 0 as "no estimate", not as a
/// zero-width spacing.
double lamellarSpacingEstimate(const std::vector<double>& s2);

/// Full 2D autocorrelation map C(dx, dy) of an indicator plane for lags
/// |dx|,|dy| <= maxShift (periodic). Returned row-major with side
/// (2 maxShift + 1).
std::vector<double> correlationMap2DPlane(const unsigned char* ind, int nx,
                                          int ny, int maxShift);

/// Correlation map of 1[phi_phase > 0.5] in slice \p z.
std::vector<double> correlationMap2D(const Field<double>& phi, int phase,
                                     int z, int maxShift);

/// Principal component analysis of a correlation map: the second-moment
/// matrix of the (background-subtracted) correlation weights over the lag
/// vectors. Eigenvalues/axes describe the orientation and anisotropy of the
/// microstructure (lamellae give a strongly anisotropic ellipse).
struct CorrelationPca {
    double lambdaMinor = 0.0; ///< smaller eigenvalue
    double lambdaMajor = 0.0; ///< larger eigenvalue
    Vec2 axisMajor{};         ///< unit direction of the larger eigenvalue
    double anisotropy() const {
        return lambdaMajor > 0.0 ? lambdaMinor / lambdaMajor : 1.0;
    }
};

CorrelationPca correlationPca(const std::vector<double>& map, int maxShift);

} // namespace tpf::analysis
