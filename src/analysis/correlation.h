#pragma once
/// \file correlation.h
/// Two-point correlation of the phase indicator functions and its principal
/// component analysis — the quantitative microstructure comparison the paper
/// announces ("a quantitative comparison using Principal Component Analysis
/// on two-point correlation is in preparation").

#include <vector>

#include "core/sim_block.h"
#include "util/smallmat.h"

namespace tpf::analysis {

/// 1D two-point (auto)correlation S2(r) of the indicator 1[phi_a > 0.5]
/// along \p axis (0 = x, 1 = y), averaged over the slab z in [z0, z1], with
/// periodic wrapping. S2(0) equals the phase fraction; S2(r) -> fraction^2
/// for uncorrelated distances; oscillations reveal the lamellar spacing.
std::vector<double> twoPointCorrelation(const Field<double>& phi, int phase,
                                        int axis, int maxShift, int z0, int z1);

/// Estimate the dominant lamellar spacing from the first non-trivial local
/// maximum of S2 (returns 0 if none found).
double lamellarSpacingEstimate(const std::vector<double>& s2);

/// Full 2D autocorrelation map C(dx, dy) for lags |dx|,|dy| <= maxShift in
/// slice z (periodic). Returned row-major with side (2 maxShift + 1).
std::vector<double> correlationMap2D(const Field<double>& phi, int phase,
                                     int z, int maxShift);

/// Principal component analysis of a correlation map: the second-moment
/// matrix of the (background-subtracted) correlation weights over the lag
/// vectors. Eigenvalues/axes describe the orientation and anisotropy of the
/// microstructure (lamellae give a strongly anisotropic ellipse).
struct CorrelationPca {
    double lambdaMinor = 0.0; ///< smaller eigenvalue
    double lambdaMajor = 0.0; ///< larger eigenvalue
    Vec2 axisMajor{};         ///< unit direction of the larger eigenvalue
    double anisotropy() const {
        return lambdaMajor > 0.0 ? lambdaMinor / lambdaMajor : 1.0;
    }
};

CorrelationPca correlationPca(const std::vector<double>& map, int maxShift);

} // namespace tpf::analysis
