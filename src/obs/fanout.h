#pragma once
/// \file fanout.h
/// Pool fan-out accumulators: wall time of the fan-out region on the calling
/// (rank loop) thread vs. summed per-task busy time across all threads. The
/// ratio busy / (wall * threads) is the fan-out efficiency; a rank whose
/// slabs are imbalanced shows wall >> busy / threads.
///
/// util::ThreadPool::parallelFor reads the *caller's* thread-local stats
/// pointer once per fan-out; with none installed (metrics off) the cost is a
/// thread-local read and a branch. Workers update through the captured
/// pointer, so the accumulators are atomics. Values are telemetry only —
/// they never feed field state (docs/OBSERVABILITY.md).

#include <atomic>

namespace tpf::obs {

/// Relaxed CAS add — std::atomic<double>::fetch_add is C++20 but not worth a
/// toolchain dependency for telemetry counters.
inline void atomicAdd(std::atomic<double>& a, double v) {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
}

struct FanoutStats {
    std::atomic<long long> fanouts{0};
    std::atomic<long long> tasks{0};
    std::atomic<double> wallSeconds{0.0}; ///< caller-side fan-out duration
    std::atomic<double> busySeconds{0.0}; ///< sum of task durations, all threads

    void reset() {
        fanouts.store(0, std::memory_order_relaxed);
        tasks.store(0, std::memory_order_relaxed);
        wallSeconds.store(0.0, std::memory_order_relaxed);
        busySeconds.store(0.0, std::memory_order_relaxed);
    }
};

/// The calling thread's installed fan-out sink (nullptr = off).
FanoutStats* threadFanoutStats();
void setThreadFanoutStats(FanoutStats* s);

} // namespace tpf::obs
