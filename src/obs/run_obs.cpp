#include "obs/run_obs.h"

#include <algorithm>

#include "obs/clock.h"
#include "util/assert.h"

namespace tpf::obs {

namespace {

/// Cumulative seconds of the timeloop functor named \p name, 0 if absent
/// (analysis/mesh hooks only exist when their observers are attached).
double functorSeconds(core::Solver& s, const char* name) {
    for (const auto& t : s.timeloop().timings())
        if (t.name == name) return t.seconds;
    return 0.0;
}

} // namespace

RunObs::RunObs(RunObsOptions opt) : opt_(std::move(opt)) {
    // Register every instrument up front: registration order is the CSV
    // column order and must be identical on all ranks (and stable across
    // versions — bump kCsvVersion when changing it).
    metrics_.gauge("time");
    metrics_.gauge("mlups");
    metrics_.gauge("step_wall_s");
    metrics_.histogram("interval_wall");
    metrics_.gauge("phi_ex_bytes");
    metrics_.gauge("phi_ex_start_s");
    metrics_.gauge("phi_ex_wait_s");
    metrics_.gauge("mu_ex_bytes");
    metrics_.gauge("mu_ex_start_s");
    metrics_.gauge("mu_ex_wait_s");
    metrics_.gauge("fanout_wall_s");
    metrics_.gauge("fanout_busy_s");
    metrics_.gauge("fanout_tasks");
    metrics_.gauge("window_offset_cells");
    metrics_.counter("window_shifts");
    metrics_.counter("checkpoint_s");
    metrics_.gauge("analysis_s");
    metrics_.gauge("mesh_s");
    metrics_.gauge("rss_hwm_mib");
}

RunObs::~RunObs() {
    // Exception-path cleanup: never leave dangling sinks installed.
    if (attached_ && !finished_) {
        if (traceEnabled() && threadTrace() == &trace_) setThreadTrace(nullptr);
        if (metricsEnabled() && threadFanoutStats() == &fanout_)
            setThreadFanoutStats(nullptr);
    }
}

void RunObs::openMetricsCsv(bool restart, long long lastStep) {
    TPF_ASSERT(metricsEnabled(), "openMetricsCsv with metrics off");
    if (restart)
        metrics_.resumeCsv(opt_.metricsPath, lastStep);
    else
        metrics_.createCsv(opt_.metricsPath);
}

void RunObs::attach(core::Solver& solver) {
    TPF_ASSERT(!attached_, "RunObs::attach called twice");
    attached_ = true;
    if (traceEnabled()) setThreadTrace(&trace_);
    if (!metricsEnabled()) return;

    setThreadFanoutStats(&fanout_);
    lastSampleStep_ = solver.stepsDone();
    lastWall_ = wallNow();
    lastPhiStart_ = solver.phiExchange().startSeconds();
    lastPhiWait_ = solver.phiExchange().waitSeconds();
    lastPhiBytes_ = solver.phiExchange().bytesSent();
    lastMuStart_ = solver.muExchange().startSeconds();
    lastMuWait_ = solver.muExchange().waitSeconds();
    lastMuBytes_ = solver.muExchange().bytesSent();
    lastFanoutTasks_ = 0;
    lastFanoutWall_ = 0.0;
    lastFanoutBusy_ = 0.0;
    lastWindowOffset_ = solver.windowOffsetCells();

    const int every = std::max(1, opt_.metricsEvery);
    solver.addPostStepHook("obs-metrics", [this, &solver, every](long long step) {
        if (step % every == 0) sampleMetrics(solver, step);
    });
    // Baseline row on fresh runs only: a restarted series already carries
    // the checkpoint step's row (io::CsvWriter::resume kept it).
    if (solver.stepsDone() == 0) sampleMetrics(solver, 0);
}

void RunObs::sampleMetrics(core::Solver& solver, long long step) {
    vmpi::Comm* comm = solver.comm();
    auto rmax = [comm](double v) { return comm ? comm->allreduceMax(v) : v; };
    auto rsum = [comm](long long v) { return comm ? comm->allreduceSumLL(v) : v; };

    const double nowS = wallNow();
    const double wall = nowS - lastWall_;
    const long long dSteps = step - lastSampleStep_;

    const double phiStart = solver.phiExchange().startSeconds();
    const double phiWait = solver.phiExchange().waitSeconds();
    const std::size_t phiBytes = solver.phiExchange().bytesSent();
    const double muStart = solver.muExchange().startSeconds();
    const double muWait = solver.muExchange().waitSeconds();
    const std::size_t muBytes = solver.muExchange().bytesSent();
    const long long fTasks = fanout_.tasks.load(std::memory_order_relaxed);
    const double fWall = fanout_.wallSeconds.load(std::memory_order_relaxed);
    const double fBusy = fanout_.busySeconds.load(std::memory_order_relaxed);

    const double wallMax = rmax(wall);
    const auto& g = solver.config().globalCells;
    const double cells = static_cast<double>(g.x) * g.y * g.z;
    const double mlups = (wallMax > 0.0 && dSteps > 0)
                             ? cells * static_cast<double>(dSteps) / wallMax / 1e6
                             : 0.0;

    metrics_.gauge("time").set(solver.time());
    metrics_.gauge("mlups").set(mlups);
    metrics_.gauge("step_wall_s").set(wallMax);
    if (dSteps > 0) metrics_.histogram("interval_wall").observe(wallMax);
    metrics_.gauge("phi_ex_bytes")
        .set(static_cast<double>(rsum(static_cast<long long>(phiBytes - lastPhiBytes_))));
    metrics_.gauge("phi_ex_start_s").set(rmax(phiStart - lastPhiStart_));
    metrics_.gauge("phi_ex_wait_s").set(rmax(phiWait - lastPhiWait_));
    metrics_.gauge("mu_ex_bytes")
        .set(static_cast<double>(rsum(static_cast<long long>(muBytes - lastMuBytes_))));
    metrics_.gauge("mu_ex_start_s").set(rmax(muStart - lastMuStart_));
    metrics_.gauge("mu_ex_wait_s").set(rmax(muWait - lastMuWait_));
    metrics_.gauge("fanout_wall_s").set(rmax(fWall - lastFanoutWall_));
    metrics_.gauge("fanout_busy_s").set(rmax(fBusy - lastFanoutBusy_));
    metrics_.gauge("fanout_tasks")
        .set(static_cast<double>(rmax(static_cast<double>(fTasks - lastFanoutTasks_))));
    metrics_.gauge("window_offset_cells").set(solver.windowOffsetCells());
    if (solver.windowOffsetCells() != lastWindowOffset_)
        metrics_.counter("window_shifts").inc();
    metrics_.gauge("analysis_s").set(rmax(functorSeconds(solver, "analysis")));
    metrics_.gauge("mesh_s").set(rmax(functorSeconds(solver, "mesh")));
    metrics_.gauge("rss_hwm_mib").set(rmax(rssHighWaterMiB()));

    if (metrics_.csvOpen()) metrics_.writeCsvRow(step);

    lastSampleStep_ = step;
    lastWall_ = nowS;
    lastPhiStart_ = phiStart;
    lastPhiWait_ = phiWait;
    lastPhiBytes_ = phiBytes;
    lastMuStart_ = muStart;
    lastMuWait_ = muWait;
    lastMuBytes_ = muBytes;
    lastFanoutTasks_ = fTasks;
    lastFanoutWall_ = fWall;
    lastFanoutBusy_ = fBusy;
    lastWindowOffset_ = solver.windowOffsetCells();
}

void RunObs::finish(core::Solver& solver) {
    if (finished_ || !attached_) {
        finished_ = true;
        return;
    }
    finished_ = true;
    vmpi::Comm* comm = solver.comm();

    if (metricsEnabled()) {
        if (solver.stepsDone() != lastSampleStep_)
            sampleMetrics(solver, solver.stepsDone());
        metrics_.closeCsv();
        setThreadFanoutStats(nullptr);
    }

    if (traceEnabled()) {
        setThreadTrace(nullptr);
        const double localFirst = trace_.empty() ? wallNow() : trace_.firstTs();
        const double epoch = comm ? comm->allreduceMin(localFirst) : localFirst;
        const std::vector<std::byte> blob = trace_.serialize(epoch);
        if (comm != nullptr) {
            const auto all = comm->gatherAllBytes(blob);
            if (comm->isRoot()) writeChromeTrace(opt_.tracePath, all);
        } else {
            writeChromeTrace(opt_.tracePath, {blob});
        }
    }
}

std::vector<FunctorStats> gatherTimingStats(core::Solver& solver) {
    vmpi::Comm* comm = solver.comm();
    const auto& timings = solver.timeloop().timings();
    std::vector<FunctorStats> out;
    out.reserve(timings.size());
    for (const auto& t : timings) {
        FunctorStats f;
        f.name = t.name;
        f.calls = t.calls;
        if (comm == nullptr) {
            f.avgSeconds = f.maxSeconds = t.seconds;
            f.spikeSeconds = t.maxSeconds;
        } else {
            const std::vector<double> secs = comm->gather(t.seconds);
            f.spikeSeconds = comm->allreduceMax(t.maxSeconds);
            if (comm->isRoot()) {
                double sum = 0.0;
                for (std::size_t r = 0; r < secs.size(); ++r) {
                    sum += secs[r];
                    if (secs[r] > f.maxSeconds) {
                        f.maxSeconds = secs[r];
                        f.maxRank = static_cast<int>(r);
                    }
                }
                f.avgSeconds = secs.empty() ? 0.0 : sum / static_cast<double>(secs.size());
            }
        }
        out.push_back(std::move(f));
    }
    return out;
}

} // namespace tpf::obs
