#include "obs/clock.h"

#include <chrono>

#include <sys/resource.h>

namespace tpf::obs {

double wallNow() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

double rssHighWaterMiB() {
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
    // ru_maxrss is KiB on Linux.
    return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

} // namespace tpf::obs
