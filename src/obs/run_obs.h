#pragma once
/// \file run_obs.h
/// RunObs wires the obs primitives (trace spans, metrics registry, fan-out
/// stats) into one Solver run:
///
///  - attach() installs the per-rank trace + fan-out sinks on the calling
///    rank thread and registers an "obs-metrics" post-step hook that samples
///    the registry every metricsEvery steps (a collective: interval wall /
///    exchange / fan-out values are reduced across ranks, the root writes
///    the CSV row),
///  - finish() is the post-run collective: merge + write the Chrome trace
///    via vmpi::Comm::gatherAllBytes, flush a final metrics row, close the
///    CSV and uninstall the sinks.
///
/// Everything RunObs owns lives outside the step data path; the only
/// per-step cost when enabled is appending span events and reading counters
/// the solver maintains anyway. See docs/OBSERVABILITY.md for the span
/// taxonomy, the metrics schema and the non-perturbation argument.

#include <string>
#include <vector>

#include "core/solver.h"
#include "obs/fanout.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tpf::obs {

struct RunObsOptions {
    std::string tracePath;   ///< "" = tracing off
    std::string metricsPath; ///< "" = metrics off
    int metricsEvery = 10;   ///< sampling cadence in steps (metrics only)
};

class RunObs {
public:
    explicit RunObs(RunObsOptions opt);
    ~RunObs();
    RunObs(const RunObs&) = delete;
    RunObs& operator=(const RunObs&) = delete;

    bool traceEnabled() const { return !opt_.tracePath.empty(); }
    bool metricsEnabled() const { return !opt_.metricsPath.empty(); }

    MetricsRegistry& metrics() { return metrics_; }
    Trace& trace() { return trace_; }

    /// The metrics CSV column set (fixed at construction; every rank agrees).
    std::vector<std::string> metricsColumns() const { return metrics_.columns(); }

    /// Open the metrics CSV on the writing rank. Fresh runs create();
    /// restarted runs resume from the checkpoint step (rows newer than the
    /// checkpoint are dropped, io::CsvWriter::resume). Throws io::CsvError.
    void openMetricsCsv(bool restart, long long lastStep);

    /// Install sinks on the calling rank thread and register the sampling
    /// hook. Call on every rank, after solver.initialize() / restore and
    /// after all other post-step hooks are registered (hook order must be
    /// uniform across ranks).
    void attach(core::Solver& solver);

    /// Post-run collective: gather + write the merged trace, write a final
    /// metrics row if the last step was not on the cadence, close the CSV,
    /// uninstall the sinks. Safe to call once, on every rank.
    void finish(core::Solver& solver);

private:
    void sampleMetrics(core::Solver& solver, long long step);

    RunObsOptions opt_;
    Trace trace_;
    MetricsRegistry metrics_;
    FanoutStats fanout_;
    bool attached_ = false;
    bool finished_ = false;

    // Interval state of the sampling hook (per-rank).
    long long lastSampleStep_ = 0;
    double lastWall_ = 0.0;
    double lastPhiStart_ = 0.0, lastPhiWait_ = 0.0;
    double lastMuStart_ = 0.0, lastMuWait_ = 0.0;
    std::size_t lastPhiBytes_ = 0, lastMuBytes_ = 0;
    long long lastFanoutTasks_ = 0;
    double lastFanoutWall_ = 0.0, lastFanoutBusy_ = 0.0;
    double lastWindowOffset_ = 0.0;
};

/// One row of the cross-rank per-functor load table.
struct FunctorStats {
    std::string name;
    long long calls = 0;
    double avgSeconds = 0.0;   ///< mean across ranks of the summed fan-out wall
    double maxSeconds = 0.0;   ///< slowest rank's total
    int maxRank = 0;           ///< which rank that was
    double spikeSeconds = 0.0; ///< largest single call on any rank
};

/// Gather Timeloop::timings() across ranks (collective; the cross-rank
/// avg/max/maxRank fields are filled on the root, spikeSeconds everywhere).
/// The max/avg ratio per functor is the load-imbalance figure of the
/// paper's Fig. 8 analysis.
std::vector<FunctorStats> gatherTimingStats(core::Solver& solver);

} // namespace tpf::obs
