#include "obs/trace.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "obs/clock.h"
#include "util/assert.h"

namespace tpf::obs {

// ---------------------------------------------------------------------------
// Recording

namespace {
thread_local Trace* tTrace = nullptr;
} // namespace

Trace* threadTrace() { return tTrace; }
void setThreadTrace(Trace* t) { tTrace = t; }

int Trace::intern(const char* name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
}

void Trace::begin(const char* name) {
    const int id = intern(name);
    stack_.push_back(id);
    events_.push_back({id, 0, wallNow()});
}

void Trace::end() {
    TPF_ASSERT(!stack_.empty(), "Trace::end without a matching begin");
    const int id = stack_.back();
    stack_.pop_back();
    events_.push_back({id, 1, wallNow()});
}

double Trace::firstTs() const { return events_.empty() ? 0.0 : events_.front().ts; }

void Trace::clear() {
    events_.clear();
    names_.clear();
    ids_.clear();
    stack_.clear();
}

// ---------------------------------------------------------------------------
// Serialization: a little-endian host blob (the gather never crosses hosts).
//
//   u32 magic 'TPFT'  u32 version
//   u64 nameCount     { u64 len, bytes }*
//   u64 eventCount    { i32 nameId, i32 phase, f64 tsMicros }*

namespace {

constexpr std::uint32_t kTraceMagic = 0x54504654u; // "TPFT"
constexpr std::uint32_t kTraceVersion = 1;

template <typename T>
void put(std::vector<std::byte>& out, const T& v) {
    // resize + memcpy instead of insert(): GCC 12's -O3 inliner misreads the
    // range insert of a small stack object as a buffer overflow (-Werror).
    const std::size_t off = out.size();
    out.resize(off + sizeof(T));
    std::memcpy(out.data() + off, &v, sizeof(T));
}

template <typename T>
T take(const std::vector<std::byte>& in, std::size_t& off) {
    if (off + sizeof(T) > in.size())
        throw std::runtime_error("trace blob truncated");
    T v;
    std::memcpy(&v, in.data() + off, sizeof(T));
    off += sizeof(T);
    return v;
}

struct RankEvents {
    struct Event {
        std::int32_t nameId;
        std::int32_t phase;
        double ts;
    };
    std::vector<std::string> names;
    std::vector<Event> events;
};

RankEvents deserializeTrace(const std::vector<std::byte>& blob) {
    std::size_t off = 0;
    if (take<std::uint32_t>(blob, off) != kTraceMagic)
        throw std::runtime_error("trace blob: bad magic");
    if (take<std::uint32_t>(blob, off) != kTraceVersion)
        throw std::runtime_error("trace blob: unsupported version");
    RankEvents r;
    const auto nNames = take<std::uint64_t>(blob, off);
    for (std::uint64_t i = 0; i < nNames; ++i) {
        const auto len = take<std::uint64_t>(blob, off);
        if (off + len > blob.size())
            throw std::runtime_error("trace blob truncated");
        r.names.emplace_back(reinterpret_cast<const char*>(blob.data() + off),
                             static_cast<std::size_t>(len));
        off += len;
    }
    const auto nEvents = take<std::uint64_t>(blob, off);
    for (std::uint64_t i = 0; i < nEvents; ++i) {
        RankEvents::Event e;
        e.nameId = take<std::int32_t>(blob, off);
        e.phase = take<std::int32_t>(blob, off);
        e.ts = take<double>(blob, off);
        if (e.nameId < 0 || e.nameId >= static_cast<std::int32_t>(r.names.size()))
            throw std::runtime_error("trace blob: name id out of range");
        r.events.push_back(e);
    }
    return r;
}

} // namespace

std::vector<std::byte> Trace::serialize(double epochSeconds) const {
    TPF_ASSERT(stack_.empty(), "Trace::serialize with open spans");
    std::vector<std::byte> out;
    out.reserve(32 + events_.size() * 16);
    put(out, kTraceMagic);
    put(out, kTraceVersion);
    put(out, static_cast<std::uint64_t>(names_.size()));
    for (const auto& n : names_) {
        put(out, static_cast<std::uint64_t>(n.size()));
        const auto* p = reinterpret_cast<const std::byte*>(n.data());
        out.insert(out.end(), p, p + n.size());
    }
    put(out, static_cast<std::uint64_t>(events_.size()));
    for (const auto& e : events_) {
        put(out, e.nameId);
        put(out, e.phase);
        put(out, (e.ts - epochSeconds) * 1e6); // microseconds, trace epoch
    }
    return out;
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON writer

namespace {

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

} // namespace

void writeChromeTrace(const std::string& path,
                      const std::vector<std::vector<std::byte>>& perRank) {
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "w");
    if (f == nullptr)
        throw std::runtime_error("cannot create trace file " + tmp + ": " +
                                 std::strerror(errno));
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
    bool first = true;
    auto sep = [&] {
        if (!first) std::fputs(",\n", f);
        first = false;
    };
    for (std::size_t rank = 0; rank < perRank.size(); ++rank) {
        const RankEvents r = deserializeTrace(perRank[rank]);
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":%zu,\"tid\":0,\"name\":\"process_name\","
                     "\"args\":{\"name\":\"rank %zu\"}}",
                     rank, rank);
        for (const auto& e : r.events) {
            sep();
            if (e.phase == 0)
                std::fprintf(f,
                             "{\"ph\":\"B\",\"pid\":%zu,\"tid\":0,\"ts\":%.3f,"
                             "\"cat\":\"tpf\",\"name\":\"%s\"}",
                             rank, e.ts, jsonEscape(r.names[e.nameId]).c_str());
            else
                std::fprintf(f, "{\"ph\":\"E\",\"pid\":%zu,\"tid\":0,\"ts\":%.3f}",
                             rank, e.ts);
        }
    }
    std::fputs("\n]}\n", f);
    const bool writeOk = std::fflush(f) == 0 && !std::ferror(f);
    std::fclose(f);
    if (!writeOk) throw std::runtime_error("short write on trace file " + tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        throw std::runtime_error("cannot publish trace file " + path + ": " +
                                 ec.message());
}

// ---------------------------------------------------------------------------
// Validation: a strict little JSON parser (full well-formedness, so a trace
// that chrome://tracing would reject fails here too) plus the B/E contract.

namespace {

/// Minimal JSON document model — enough to check well-formedness and walk
/// the traceEvents array. Object keys keep insertion order via a vector.
struct JsonValue {
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue* field(const std::string& key) const {
        for (const auto& [k, v] : fields)
            if (k == key) return &v;
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue parseDocument() {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != s_.size()) fail("trailing content after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) {
        throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                                 ": " + what);
    }

    void skipWs() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                    s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeLiteral(const char* lit) {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    JsonValue parseValue() {
        skipWs();
        JsonValue v;
        switch (peek()) {
            case '{': return parseObject();
            case '[': return parseArray();
            case '"':
                v.kind = JsonValue::String;
                v.str = parseString();
                return v;
            case 't':
                if (!consumeLiteral("true")) fail("bad literal");
                v.kind = JsonValue::Bool;
                v.b = true;
                return v;
            case 'f':
                if (!consumeLiteral("false")) fail("bad literal");
                v.kind = JsonValue::Bool;
                return v;
            case 'n':
                if (!consumeLiteral("null")) fail("bad literal");
                return v;
            default:
                v.kind = JsonValue::Number;
                v.num = parseNumber();
                return v;
        }
    }

    JsonValue parseObject() {
        JsonValue v;
        v.kind = JsonValue::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.fields.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray() {
        JsonValue v;
        v.kind = JsonValue::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parseString() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
                    for (int i = 0; i < 4; ++i)
                        if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
                            fail("bad \\u escape");
                    // Validation only: keep the escape verbatim.
                    out += "\\u";
                    out.append(s_, pos_, 4);
                    pos_ += 4;
                    break;
                }
                default: fail("bad escape character");
            }
        }
    }

    double parseNumber() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        auto digits = [&] {
            std::size_t n = 0;
            while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                ++n;
            }
            return n;
        };
        if (digits() == 0) fail("bad number");
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (digits() == 0) fail("bad number fraction");
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
            if (digits() == 0) fail("bad number exponent");
        }
        return std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

TraceCheck checkFail(std::string msg) {
    TraceCheck c;
    c.message = std::move(msg);
    return c;
}

} // namespace

TraceCheck validateTraceFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return checkFail("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonValue doc;
    try {
        doc = JsonParser(text).parseDocument();
    } catch (const std::exception& e) {
        return checkFail(path + ": " + e.what());
    }
    if (doc.kind != JsonValue::Object) return checkFail("top level is not an object");
    const JsonValue* events = doc.field("traceEvents");
    if (events == nullptr || events->kind != JsonValue::Array)
        return checkFail("missing traceEvents array");

    TraceCheck out;
    std::map<int, std::vector<std::string>> stacks; // pid -> open span names
    std::map<int, double> lastTs;                   // pid -> last event ts
    std::set<int> pids;
    std::set<std::string> names;
    for (std::size_t i = 0; i < events->items.size(); ++i) {
        const JsonValue& e = events->items[i];
        const std::string at = "event " + std::to_string(i);
        if (e.kind != JsonValue::Object) return checkFail(at + ": not an object");
        const JsonValue* ph = e.field("ph");
        const JsonValue* pid = e.field("pid");
        if (ph == nullptr || ph->kind != JsonValue::String)
            return checkFail(at + ": missing ph");
        if (pid == nullptr || pid->kind != JsonValue::Number)
            return checkFail(at + ": missing pid");
        const int p = static_cast<int>(pid->num);
        if (ph->str == "M") continue;
        if (ph->str != "B" && ph->str != "E")
            return checkFail(at + ": unexpected phase '" + ph->str + "'");
        const JsonValue* ts = e.field("ts");
        if (ts == nullptr || ts->kind != JsonValue::Number)
            return checkFail(at + ": missing ts");
        const auto [it, inserted] = lastTs.emplace(p, ts->num);
        if (!inserted) {
            if (ts->num < it->second)
                return checkFail(at + ": timestamps not monotonic for pid " +
                                 std::to_string(p));
            it->second = ts->num;
        }
        pids.insert(p);
        ++out.events;
        if (ph->str == "B") {
            const JsonValue* name = e.field("name");
            if (name == nullptr || name->kind != JsonValue::String)
                return checkFail(at + ": B event without name");
            stacks[p].push_back(name->str);
            names.insert(name->str);
        } else {
            auto& st = stacks[p];
            if (st.empty())
                return checkFail(at + ": E event without open span on pid " +
                                 std::to_string(p));
            st.pop_back();
        }
    }
    for (const auto& [p, st] : stacks)
        if (!st.empty())
            return checkFail("pid " + std::to_string(p) + " ends with " +
                             std::to_string(st.size()) + " unclosed span(s), first '" +
                             st.front() + "'");
    out.ranks = static_cast<int>(pids.size());
    out.spanNames.assign(names.begin(), names.end());
    out.ok = true;
    out.message = "ok";
    return out;
}

} // namespace tpf::obs
