#pragma once
/// \file clock.h
/// The single wall-clock read point of the tree.
///
/// Everything deterministic (core, comm, vmpi, ...) is banned from
/// std::chrono by tpf-lint's nondeterminism rule; observational timing calls
/// this instead. Keeping the clock behind one out-of-line function makes the
/// non-perturbation contract auditable: grep for `wallNow` finds every wall
/// time read, and none of them can feed field state because the return value
/// only ever lands in obs counters (docs/OBSERVABILITY.md).

namespace tpf::obs {

/// Seconds on a monotonic clock with an arbitrary epoch. CLOCK_MONOTONIC
/// under glibc, so values are comparable across forked shm-transport ranks
/// on one host — the property the cross-rank trace merge relies on.
double wallNow();

/// Resident-set high-water mark of the calling process in MiB
/// (getrusage ru_maxrss). Per-process, i.e. shared by all thread-transport
/// ranks but per-rank under the forked shm transport.
double rssHighWaterMiB();

} // namespace tpf::obs
