#include "obs/metrics.h"

#include <algorithm>

#include "obs/fanout.h"
#include "util/assert.h"

namespace tpf::obs {

namespace {
thread_local FanoutStats* tFanout = nullptr;
} // namespace

FanoutStats* threadFanoutStats() { return tFanout; }
void setThreadFanoutStats(FanoutStats* s) { tFanout = s; }

void Histogram::observe(double v) {
    min_ = count_ > 0 ? std::min(min_, v) : v;
    max_ = count_ > 0 ? std::max(max_, v) : v;
    sum_ += v;
    count_ += 1.0;
}

MetricsRegistry::Metric& MetricsRegistry::instrument(const std::string& name,
                                                     Metric::Kind kind) {
    for (auto& m : metrics_)
        if (m->name == name) {
            TPF_ASSERT(m->kind == kind, "metric re-registered with a different kind");
            return *m;
        }
    metrics_.push_back(std::make_unique<Metric>());
    metrics_.back()->name = name;
    metrics_.back()->kind = kind;
    return *metrics_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
    return instrument(name, Metric::Kind::Counter).c;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    return instrument(name, Metric::Kind::Gauge).g;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
    return instrument(name, Metric::Kind::Histogram).h;
}

std::vector<std::string> MetricsRegistry::columns() const {
    std::vector<std::string> cols;
    for (const auto& m : metrics_) {
        if (m->kind == Metric::Kind::Histogram) {
            cols.push_back(m->name + "_count");
            cols.push_back(m->name + "_min");
            cols.push_back(m->name + "_max");
            cols.push_back(m->name + "_sum");
        } else {
            cols.push_back(m->name);
        }
    }
    return cols;
}

std::vector<double> MetricsRegistry::row() const {
    std::vector<double> out;
    for (const auto& m : metrics_) {
        switch (m->kind) {
            case Metric::Kind::Counter: out.push_back(m->c.value()); break;
            case Metric::Kind::Gauge: out.push_back(m->g.value()); break;
            case Metric::Kind::Histogram:
                out.push_back(m->h.count());
                out.push_back(m->h.minValue());
                out.push_back(m->h.maxValue());
                out.push_back(m->h.sum());
                break;
        }
    }
    return out;
}

void MetricsRegistry::createCsv(const std::string& path) {
    csv_.create(path, kCsvTag, kCsvVersion, columns());
}

void MetricsRegistry::resumeCsv(const std::string& path, long long lastStep) {
    csv_.resume(path, kCsvTag, kCsvVersion, columns(), lastStep);
}

void MetricsRegistry::writeCsvRow(long long step) {
    TPF_ASSERT(csv_.isOpen(), "writeCsvRow on a closed metrics CSV");
    csv_.writeRow(step, row());
}

} // namespace tpf::obs
