#pragma once
/// \file metrics.h
/// A small metrics registry: named counters, gauges and histograms that
/// snapshot into one row of a versioned CSV time series.
///
///     # tpf-metrics v1
///     step,time,mlups,step_wall_s,...
///     0,0,...
///
/// The CSV reuses io::CsvWriter, so it inherits the analysis pipeline's
/// guarantees: %.17g exact round-trip of doubles and restart-resume
/// semantics (rows newer than the checkpoint are dropped, the series
/// continues without duplicated or skipped steps). Unlike the analysis CSV
/// the *values* here are wall-clock telemetry and differ run to run; only
/// the schema, the columns and the sampled step keys are deterministic.
///
/// Instruments register on first use and columns appear in registration
/// order, so all ranks registering the same instruments in the same order
/// (they do — registration happens in RunObs::RunObs) agree on the schema.

#include <memory>
#include <string>
#include <vector>

#include "io/csv_writer.h"

namespace tpf::obs {

/// Monotonic cumulative sum.
class Counter {
public:
    void add(double v) { v_ += v; }
    void inc() { v_ += 1.0; }
    double value() const { return v_; }

private:
    double v_ = 0.0;
};

/// Last-set value.
class Gauge {
public:
    void set(double v) { v_ = v; }
    double value() const { return v_; }

private:
    double v_ = 0.0;
};

/// Running count/min/max/sum of observed samples; expands to four CSV
/// columns (<name>_count, _min, _max, _sum).
class Histogram {
public:
    void observe(double v);
    double count() const { return count_; }
    double minValue() const { return count_ > 0 ? min_ : 0.0; }
    double maxValue() const { return max_; }
    double sum() const { return sum_; }

private:
    double count_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

class MetricsRegistry {
public:
    static constexpr const char* kCsvTag = "tpf-metrics";
    static constexpr int kCsvVersion = 1;

    /// Look up or register an instrument. Registration order defines the
    /// CSV column order; re-registering a name with a different kind is a
    /// hard assert.
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Column names in registration order (histograms expand to 4).
    std::vector<std::string> columns() const;
    /// Current instrument values, aligned with columns().
    std::vector<double> row() const;

    // CSV streaming — call on the writing (root) rank only.
    void createCsv(const std::string& path);
    /// Resume after a restart from a checkpoint at \p lastStep (see
    /// io::CsvWriter::resume). Throws io::CsvError on schema mismatch.
    void resumeCsv(const std::string& path, long long lastStep);
    bool csvOpen() const { return csv_.isOpen(); }
    const std::string& csvPath() const { return csv_.path(); }
    /// Append the current row() keyed by \p step and flush.
    void writeCsvRow(long long step);
    void closeCsv() { csv_.close(); }

private:
    struct Metric {
        enum class Kind { Counter, Gauge, Histogram };
        std::string name;
        Kind kind;
        Counter c;
        Gauge g;
        Histogram h;
    };

    Metric& instrument(const std::string& name, Metric::Kind kind);

    std::vector<std::unique_ptr<Metric>> metrics_; ///< stable addresses
    io::CsvWriter csv_;
};

} // namespace tpf::obs
