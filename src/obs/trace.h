#pragma once
/// \file trace.h
/// Low-overhead scoped tracing spans with a Chrome trace-event JSON backend.
///
/// Recording model:
///  - Each rank owns one Trace (installed on the rank's loop thread via
///    setThreadTrace(); ranks are threads under the thread transport and
///    forked processes under shm, so a thread-local sink is per-rank either
///    way).
///  - ScopedSpan / TPF_SPAN record a begin event on construction and an end
///    event on destruction. With no sink installed the cost is one
///    thread-local read and a branch; with TPF_OBS_NO_SPANS defined the
///    macro compiles away entirely.
///  - Events append to a flat in-memory vector (name-interned, 16 bytes per
///    event) and are serialized + gathered to rank 0 once, after the run —
///    nothing is written, locked, or communicated inside the step loop,
///    which is the non-perturbation argument (docs/OBSERVABILITY.md).
///
/// Output: writeChromeTrace() merges the per-rank blobs from
/// vmpi::Comm::gatherAllBytes into one JSON file in the Chrome trace-event
/// format ("traceEvents" with ph:B/E duration events), loadable in Perfetto
/// or chrome://tracing. Each rank appears as its own pid with a
/// "process_name" metadata record; timestamps are microseconds relative to a
/// common epoch so step boundaries line up across ranks.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tpf::obs {

/// Per-rank span recorder. Not thread-safe: record only from the owning
/// rank's loop thread (pool workers never carry spans — kernels are banned
/// from obs calls by tpf-lint's obs-in-kernels rule).
class Trace {
public:
    void begin(const char* name);
    void end();

    std::size_t eventCount() const { return events_.size(); }
    bool empty() const { return events_.empty(); }
    int openSpans() const { return static_cast<int>(stack_.size()); }
    /// Timestamp of the first recorded event (0 when empty); used to pick
    /// the common epoch as the min across ranks.
    double firstTs() const;

    /// Flatten to a byte blob for the rank-0 gather. Timestamps are shifted
    /// by -epochSeconds so the merged file starts near t = 0.
    std::vector<std::byte> serialize(double epochSeconds) const;

    void clear();

private:
    struct Event {
        std::int32_t nameId;
        std::int32_t phase; ///< 0 = begin, 1 = end
        double ts;          ///< obs::wallNow() seconds
    };

    int intern(const char* name);

    std::vector<Event> events_;
    std::vector<std::string> names_;
    std::map<std::string, int> ids_; // ordered: no unordered iteration
    std::vector<int> stack_;         ///< open span name ids (balance check)
};

/// The calling thread's installed span sink (nullptr = tracing off).
Trace* threadTrace();
/// Install \p t as the calling thread's sink; pass nullptr to uninstall.
void setThreadTrace(Trace* t);

/// RAII span: begin on construction, end on destruction. Captures the sink
/// once, so install/uninstall while a span is open is safe.
class ScopedSpan {
public:
    explicit ScopedSpan(const char* name) : t_(threadTrace()) {
        if (t_) t_->begin(name);
    }
    ~ScopedSpan() {
        if (t_) t_->end();
    }
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

private:
    Trace* t_;
};

// Convenience macro for instrumenting a scope; compiled to nothing when
// TPF_OBS_NO_SPANS is defined so hot paths can prove spans cost zero.
#ifdef TPF_OBS_NO_SPANS
#define TPF_SPAN(name) ((void)0)
#else
#define TPF_OBS_CONCAT2(a, b) a##b
#define TPF_OBS_CONCAT(a, b) TPF_OBS_CONCAT2(a, b)
#define TPF_SPAN(name) ::tpf::obs::ScopedSpan TPF_OBS_CONCAT(tpfObsSpan_, __LINE__)(name)
#endif

/// Write the merged Chrome trace-event JSON for the per-rank blobs produced
/// by Trace::serialize() (rank index = position in \p perRank = pid in the
/// file). Staged via <path>.tmp + rename. Throws std::runtime_error on I/O
/// failure or a malformed blob.
void writeChromeTrace(const std::string& path,
                      const std::vector<std::vector<std::byte>>& perRank);

/// Result of validating a written trace file (tpf-chk trace / smoke_obs).
struct TraceCheck {
    bool ok = false;
    std::string message;          ///< "ok" or the first problem found
    int ranks = 0;                ///< distinct pids carrying duration events
    long long events = 0;         ///< B/E duration events
    std::vector<std::string> spanNames; ///< sorted unique span names
};

/// Parse \p path as JSON (full well-formedness check, not just our writer's
/// shape) and verify the trace contract: a traceEvents array, every B paired
/// with a following E per pid in stack order, and per-pid non-decreasing
/// timestamps. Never throws; problems land in TraceCheck::message.
TraceCheck validateTraceFile(const std::string& path);

} // namespace tpf::obs
