#pragma once
/// \file lint.h
/// tpf-lint: a repo-specific static invariant checker (docs/CORRECTNESS.md).
///
/// The determinism contracts this repo runs on — machine-independent goldens,
/// decomposition/restart bitwise equivalence, deadlock-free collectives — are
/// invariants of the *source*, not of any one test run: a libm sin() in an
/// init profile only breaks the goldens on the next glibc, a collective
/// inside `if (isRoot())` only deadlocks at ranks > 1. tpf-lint enforces
/// these shapes as named, per-line-suppressible rules so CI catches them at
/// review time, the way waLBerla relies on generated-code contracts instead
/// of review-by-eye.
///
/// Suppression syntax (parsed from comments):
///     code();            // tpf-lint: allow(rule-name) -- reason
/// suppresses `rule-name` on that line. A comment-only line suppresses the
/// *next* line instead:
///     // tpf-lint: allow(rule-a, rule-b) -- reason
///     code();
/// `allow(*)` suppresses every rule. The reason text is free-form but
/// expected by convention — a suppression without a why does not survive
/// review.
///
/// The scanner strips comments, string and character literals before rule
/// matching, so a rule pattern inside a string (for instance in this very
/// library) is never a finding.

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace tpf::lint {

/// One rule violation, formatted as file:line:col plus a fix-it hint.
struct Finding {
    std::string rule;
    std::string file;
    int line = 0;   ///< 1-based
    int column = 0; ///< 1-based
    std::string message;
    std::string hint;
};

struct RuleInfo {
    const char* name;
    const char* summary;
};

/// The catalog of implemented rules, in reporting order.
const std::vector<RuleInfo>& ruleCatalog();
bool isKnownRule(std::string_view name);

/// A source file after comment/string stripping and suppression parsing.
struct ScannedFile {
    std::string path;              ///< normalized to forward slashes
    std::vector<std::string> raw;  ///< original lines (index 0 = line 1)
    std::vector<std::string> code; ///< literals/comments blanked with spaces
    /// 1-based line -> rule names allowed ("*" = all rules).
    std::map<int, std::set<std::string>> allows;

    bool allowed(int line, const std::string& rule) const;
};

ScannedFile scanSource(std::string path, std::string_view content);

/// Run rules over a scanned file. \p enabled empty means all rules.
std::vector<Finding> lintScanned(const ScannedFile& f,
                                 const std::set<std::string>& enabled = {});

/// Convenience: scan + lint in one call.
std::vector<Finding> lintSource(std::string path, std::string_view content,
                                const std::set<std::string>& enabled = {});

/// "file:line:col: error: [rule] message\n  fix-it: hint"
std::string formatFinding(const Finding& f);

} // namespace tpf::lint
