/// \file rules.cpp
/// The tpf-lint rule library. Each rule is a named, per-line-suppressible
/// invariant of this repo (rationale per rule in docs/CORRECTNESS.md). Rules
/// run over comment/string-stripped code lines (scanner.cpp), so patterns in
/// literals are never findings.
///
/// These are deliberately line-based heuristics, not a C++ parser: they are
/// tuned so that everything they flag is worth a human look, and every false
/// positive is one `// tpf-lint: allow(rule) -- reason` away from silence
/// with the reason on record.

#include "lint/lint.h"

#include <regex>

namespace tpf::lint {

namespace {

/// True when the normalized path has \p dir as one of its directory
/// components (e.g. dirIs("src/core/solver.cpp", "core")).
bool dirIs(const std::string& path, const std::string& dir) {
    const std::string needle = "/" + dir + "/";
    if (path.find(needle) != std::string::npos) return true;
    return path.rfind(dir + "/", 0) == 0;
}

bool inAnyDir(const std::string& path, std::initializer_list<const char*> dirs) {
    for (const char* d : dirs)
        if (dirIs(path, d)) return true;
    return false;
}

void addFinding(std::vector<Finding>& out, const ScannedFile& f,
                const char* rule, int line, int col, std::string message,
                std::string hint) {
    if (f.allowed(line, rule)) return;
    out.push_back(Finding{rule, f.path, line, col, std::move(message),
                          std::move(hint)});
}

// ---------------------------------------------------------------------------
// fastmath: no libm transcendentals in src/core / src/analysis numerics.
//
// The committed golden checkpoints and analysis CSVs are compared *bitwise*
// across machines. IEEE-754 add/mul/div/sqrt round identically everywhere,
// but libm sin/cos/exp/pow/log/tanh are only ~1 ulp and have changed between
// glibc releases — one call in an init profile or observer silently forks
// the goldens per machine (this is why PR 3 introduced util/fastmath's
// sinpiCompact). std::sqrt is exactly rounded by the standard and stays
// allowed.
// ---------------------------------------------------------------------------
void ruleFastmath(const ScannedFile& f, std::vector<Finding>& out) {
    static const char* kRule = "fastmath";
    if (!inAnyDir(f.path, {"core", "analysis"})) return;
    static const std::regex re(
        R"((^|[^A-Za-z0-9_.:>])((?:std::)?)(sin|cos|tan|exp|exp2|expm1|pow|log|log2|log10|tanh|sinh|cosh|asin|acos|atan|atan2)(f?)\s*\()");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        for (std::sregex_iterator it(line.begin(), line.end(), re), end;
             it != end; ++it) {
            const std::smatch& m = *it;
            const int col = static_cast<int>(m.position(3)) + 1;
            const std::string name = m[3].str() + m[4].str();
            addFinding(out, f, kRule, static_cast<int>(i) + 1, col,
                       "libm " + name + "() in " +
                           (dirIs(f.path, "core") ? std::string("src/core")
                                                  : std::string("src/analysis")) +
                           " numerics: its rounding varies across libm "
                           "versions, which forks the machine-independent "
                           "goldens (bitwise contract from PR 3)",
                       "use util/fastmath (e.g. tpf::sinpiCompact, "
                       "fastInvSqrt) or add a polynomial helper there; "
                       "std::sqrt is exactly rounded and fine; if this value "
                       "provably never reaches field state, suppress with "
                       "// tpf-lint: allow(fastmath) -- <why>");
        }
    }
}

// ---------------------------------------------------------------------------
// unordered-iteration: no iteration over std::unordered_* containers.
//
// Hash-table iteration order is an implementation detail: it differs between
// libstdc++/libc++ and can change with reserve() calls, so any loop over an
// unordered container that feeds a reduction, gather, mesh build or output
// stream breaks cross-platform determinism even when each run is internally
// reproducible. Lookups are fine; iteration is the hazard.
// ---------------------------------------------------------------------------
void ruleUnorderedIteration(const ScannedFile& f, std::vector<Finding>& out) {
    static const char* kRule = "unordered-iteration";
    // Pass 1: names declared (or returned) with a std::unordered_* type on
    // one line. A line-based heuristic: multi-line declarations are missed,
    // which is acceptable — the rule is a tripwire, not a proof.
    static const std::regex declRe(
        R"(std::unordered_(?:map|set|multimap|multiset)\s*<.*>\s*&?\s*([A-Za-z_]\w*))");
    std::set<std::string> names;
    for (const std::string& line : f.code) {
        for (std::sregex_iterator it(line.begin(), line.end(), declRe), end;
             it != end; ++it)
            names.insert((*it)[1].str());
    }
    if (names.empty()) return;

    auto containsName = [&](const std::string& expr) -> std::string {
        static const std::regex word(R"([A-Za-z_]\w*)");
        for (std::sregex_iterator it(expr.begin(), expr.end(), word), end;
             it != end; ++it)
            if (names.count((*it)[0].str())) return (*it)[0].str();
        return {};
    };

    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        // Range-for: `for (<decl> : <expr>)` where <expr> mentions an
        // unordered name. Find the separator ':' that is not part of '::'.
        std::size_t pos = 0;
        static const std::regex forRe(R"((^|[^\w])for\s*\()");
        std::smatch fm;
        std::string tail = line;
        std::size_t base = 0;
        while (std::regex_search(tail, fm, forRe)) {
            const std::size_t open =
                base + static_cast<std::size_t>(fm.position(0)) +
                static_cast<std::size_t>(fm.length(0)) - 1;
            // Scan to the matching close paren, tracking the top-level ':'.
            int depth = 0;
            std::size_t colon = std::string::npos;
            std::size_t close = std::string::npos;
            for (std::size_t j = open; j < line.size(); ++j) {
                const char c = line[j];
                if (c == '(') ++depth;
                else if (c == ')') {
                    if (--depth == 0) { close = j; break; }
                } else if (c == ':' && depth == 1 && colon == std::string::npos) {
                    const bool dbl = (j + 1 < line.size() && line[j + 1] == ':') ||
                                     (j > 0 && line[j - 1] == ':');
                    if (!dbl) colon = j;
                }
            }
            if (colon != std::string::npos) {
                const std::size_t exprEnd =
                    close == std::string::npos ? line.size() : close;
                const std::string expr =
                    line.substr(colon + 1, exprEnd - colon - 1);
                const std::string hit = containsName(expr);
                if (!hit.empty())
                    addFinding(out, f, kRule, static_cast<int>(i) + 1,
                               static_cast<int>(colon) + 2,
                               "iteration over std::unordered_* '" + hit +
                                   "': hash order is implementation-defined, "
                                   "so anything this loop feeds (reductions, "
                                   "gathers, meshes, output) loses "
                                   "cross-platform determinism",
                               "iterate a sorted copy (vector + std::sort) or "
                               "use std::map/std::set; if the loop is provably "
                               "order-independent, suppress with "
                               "// tpf-lint: allow(unordered-iteration) -- <why>");
            }
            base = open + 1;
            tail = line.substr(base);
            pos = base;
        }
        (void)pos;
        // Explicit iterator walks: name.begin() / name.cbegin().
        static const std::regex beginRe(R"(([A-Za-z_]\w*)\s*\.\s*c?begin\s*\()");
        for (std::sregex_iterator it(line.begin(), line.end(), beginRe), end;
             it != end; ++it) {
            const std::smatch& m = *it;
            if (!names.count(m[1].str())) continue;
            addFinding(out, f, kRule, static_cast<int>(i) + 1,
                       static_cast<int>(m.position(0)) + 1,
                       "iterator walk over std::unordered_* '" + m[1].str() +
                           "': hash order is implementation-defined, so "
                           "anything this loop feeds loses cross-platform "
                           "determinism",
                       "iterate a sorted copy (vector + std::sort) or use "
                       "std::map/std::set; if order-independent, suppress with "
                       "// tpf-lint: allow(unordered-iteration) -- <why>");
        }
    }
}

// ---------------------------------------------------------------------------
// nondeterminism: no wall-clock / libc-randomness in deterministic paths.
//
// Everything under core/analysis/grid/comm/vmpi/thermo/simd/util feeds the
// three bitwise contracts (kernel variants, decomposition, restart). rand(),
// time(NULL), std::random_device and std::chrono values must not exist there
// unless they are provably observational (wall-clock *timing*), which is
// what the suppression comment records.
//
// src/obs is the sanctioned home for wall-clock reads (obs::wallNow wraps
// the tree's only steady_clock call): every other subsystem that wants a
// timestamp takes it through obs, which is what keeps this rule's
// "deterministic path" claim checkable rather than a pile of suppressions.
// ---------------------------------------------------------------------------
void ruleNondeterminism(const ScannedFile& f, std::vector<Finding>& out) {
    static const char* kRule = "nondeterminism";
    if (dirIs(f.path, "obs")) return; // the one place wall-clock may live
    if (!inAnyDir(f.path, {"core", "analysis", "grid", "comm", "vmpi",
                           "thermo", "simd", "util"}))
        return;
    struct Pat {
        const std::regex re;
        const char* what;
        int group; ///< capture group whose position is the column
    };
    static const std::vector<Pat> pats = [] {
        std::vector<Pat> v;
        v.push_back({std::regex(R"(std::chrono)"), "std::chrono", 0});
        v.push_back({std::regex(R"((^|[^A-Za-z0-9_.:>])(s?rand)\s*\()"),
                     "libc rand()/srand()", 2});
        // C time() always takes an argument (time(nullptr), time(&t)), which
        // distinguishes calls from declarations of methods named time().
        v.push_back(
            {std::regex(R"((^|[^A-Za-z0-9_.>])((?:std::|::)?time)\s*\(\s*[^)\s])"),
             "wall-clock time()", 2});
        v.push_back({std::regex(R"(std::random_device)"), "std::random_device", 0});
        return v;
    }();
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        for (const Pat& p : pats) {
            for (std::sregex_iterator it(line.begin(), line.end(), p.re), end;
                 it != end; ++it) {
                const std::smatch& m = *it;
                addFinding(
                    out, f, kRule, static_cast<int>(i) + 1,
                    static_cast<int>(m.position(p.group)) + 1,
                    std::string(p.what) +
                        " in a deterministic path: values from it diverge "
                        "across ranks, runs and machines, breaking the "
                        "bitwise kernel/decomposition/restart contracts",
                    "use tpf::Random (util/random.h, counter-seeded "
                    "xoshiro256++) or pass timestamps in from the app layer; "
                    "for observational wall-clock *timing* that never feeds "
                    "physics, suppress with "
                    "// tpf-lint: allow(nondeterminism) -- <why>");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// collective-in-conditional: no vmpi collective inside a rank-conditional.
//
// A collective (barrier, allreduce*, gather*, bcast) must be called by every
// rank; guarding one behind `if (isRoot())` / `if (rank() == 0)` deadlocks
// the other ranks at the next matching point. PR 1 fixed exactly this bug in
// multi-rank reporting. src/vmpi itself is exempt — the *implementations* of
// the collectives legitimately branch on rank for the asymmetric protocol.
// ---------------------------------------------------------------------------
void ruleCollectiveInConditional(const ScannedFile& f,
                                 std::vector<Finding>& out) {
    static const char* kRule = "collective-in-conditional";
    if (dirIs(f.path, "vmpi")) return;
    static const std::regex rankCondRe(
        R"(isRoot\s*\(|\b\w*[Rr]ank\w*\s*(\(\s*\))?\s*[=!]=|[=!]=\s*\w*[Rr]ank\b)");
    static const std::regex ifRe(R"((^|[^\w])(if|while)\s*\()");
    // Covers the Comm surface (barrier/allreduce*/gather*/bcast/allAgree)
    // AND the Transport vtable spellings (t->barrier()), so code talking to
    // the transport layer directly cannot smuggle a collective into a rank
    // branch either. postRecv/waitRecv are point-to-point, not collectives.
    static const std::regex collRe(
        R"((^|[^\w.]|\.|->)(barrier|allreduce(?:Sum|Min|Max|SumLL)?|gather|gatherAllBytes|bcast|allAgree|nextCollectiveSeq)\s*\()");

    // Brace-depth bookkeeping: depths at which a rank-conditional block is
    // open. `pending` covers the region between the rank-`if` and its `{`
    // (or the braceless single statement up to the next `;`).
    std::vector<int> guardDepths;
    int depth = 0;
    bool pending = false;
    int pendingStmtLines = 0; // braceless guard: flag this many further lines

    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];

        // Does this line open a rank-conditional?
        std::smatch m;
        bool opensGuard = false;
        std::string tail = line;
        while (std::regex_search(tail, m, ifRe)) {
            const std::string cond = m.suffix().str();
            if (std::regex_search(cond, rankCondRe)) opensGuard = true;
            tail = m.suffix();
        }
        // `} else {` continues the rank-conditional it closes.
        const bool hasElse =
            std::regex_search(line, std::regex(R"((^|[^\w])else([^\w]|$))"));

        const bool guardedBefore = !guardDepths.empty() || pending ||
                                   pendingStmtLines > 0;

        // Collectives on a guarded line (including the guard-opening line
        // itself: `if (isRoot()) comm.barrier();`).
        if (guardedBefore || opensGuard) {
            for (std::sregex_iterator it(line.begin(), line.end(), collRe),
                 end;
                 it != end; ++it) {
                const std::smatch& cm = *it;
                // On the guard-opening line, only flag calls after the `if`.
                addFinding(out, f, kRule, static_cast<int>(i) + 1,
                           static_cast<int>(cm.position(2)) + 1,
                           "vmpi collective '" + cm[2].str() +
                               "' inside a rank-conditional: the ranks that "
                               "skip this branch never reach the matching "
                               "call and the run deadlocks (the PR 1 "
                               "reporting bug)",
                           "hoist the collective out of the rank branch so "
                           "every rank calls it, then do root-only work with "
                           "the result; see vmpi::Comm docs");
            }
        }

        if (opensGuard) pending = true;

        // Track braces and the pending guard.
        for (const char c : line) {
            if (c == '{') {
                if (pending) {
                    guardDepths.push_back(depth);
                    pending = false;
                    pendingStmtLines = 0;
                }
                ++depth;
            } else if (c == '}') {
                --depth;
                if (!guardDepths.empty() && guardDepths.back() == depth) {
                    guardDepths.pop_back();
                    if (hasElse) pending = true; // else-branch stays guarded
                }
            } else if (c == ';' && pending) {
                // Braceless guarded statement ended.
                pending = false;
                pendingStmtLines = 0;
            }
        }
        if (pending) {
            // Braceless `if (...)` with the statement on a following line:
            // keep the guard alive a little; any '{' or ';' above clears it.
            if (++pendingStmtLines > 2) {
                pending = false;
                pendingStmtLines = 0;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// raw-intrinsics: x86 vector intrinsics live in src/simd only.
//
// The runtime dispatch (core/kernel_dispatch.h) compiles the same kernel
// bodies once per ISA target; that stays bitwise-equivalent only because
// every vector operation goes through the simd::Vec4d*/Vec8d* wrappers,
// whose per-lane arithmetic is pinned by tests/test_simd.cpp. A raw __m256d
// or _mm512_*() call anywhere else bypasses the abstraction: it hard-codes
// one ISA, breaks the scalar/SSE2 fallback builds at compile time, and its
// arithmetic is invisible to the cross-backend equivalence tests.
// ---------------------------------------------------------------------------
void ruleRawIntrinsics(const ScannedFile& f, std::vector<Finding>& out) {
    static const char* kRule = "raw-intrinsics";
    if (dirIs(f.path, "simd")) return;
    static const std::regex re(
        R"(__m(?:128|256|512)[di]?\b|__mmask(?:8|16|32|64)\b|\b_mm(?:256|512)?_[A-Za-z0-9_]+\s*\(|<immintrin\.h>)");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        for (std::sregex_iterator it(line.begin(), line.end(), re), end;
             it != end; ++it) {
            const std::smatch& m = *it;
            addFinding(out, f, kRule, static_cast<int>(i) + 1,
                       static_cast<int>(m.position(0)) + 1,
                       "raw x86 SIMD ('" + m[0].str() +
                           "') outside src/simd: it hard-codes one ISA, "
                           "breaks the scalar/SSE2 fallback builds and "
                           "escapes the cross-backend bitwise-equivalence "
                           "tests the runtime dispatch relies on",
                       "go through the simd::Vec4d*/Vec8d* wrappers "
                       "(src/simd/) and the width-generic kernel bodies; if "
                       "a new operation is missing, add it to every backend "
                       "plus tests/test_simd.cpp rather than inlining "
                       "intrinsics here");
        }
    }
}

// ---------------------------------------------------------------------------
// assert-macro: library code uses TPF_ASSERT, not bare assert().
//
// assert() compiles away under NDEBUG — i.e. in every Release build, which
// is how this code actually runs — so a bare assert is a check that only
// exists on developer machines. TPF_ASSERT stays on in all build types;
// TPF_ASSERT_DBG is the explicit opt-in for hot-path debug-only checks.
// ---------------------------------------------------------------------------
void ruleAssertMacro(const ScannedFile& f, std::vector<Finding>& out) {
    static const char* kRule = "assert-macro";
    static const std::regex re(R"((^|[^A-Za-z0-9_.:>])assert\s*\()");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        for (std::sregex_iterator it(line.begin(), line.end(), re), end;
             it != end; ++it) {
            const std::smatch& m = *it;
            addFinding(out, f, kRule, static_cast<int>(i) + 1,
                       static_cast<int>(m.position(0)) +
                           static_cast<int>(m.length(1)) + 1,
                       "bare assert() disappears under NDEBUG, so this "
                       "invariant is unchecked in every Release build",
                       "use TPF_ASSERT(expr, msg) (always on) or "
                       "TPF_ASSERT_DBG (hot-path, debug-only) from "
                       "util/assert.h");
        }
    }
}

// ---------------------------------------------------------------------------
// obs-in-kernels: no observability hooks inside kernel bodies.
//
// The telemetry layer (src/obs) is provably non-perturbing only because its
// hooks sit at functor granularity in the timeloop and at the fan-out choke
// point in util/thread_pool — outside the per-cell hot loops. A TPF_SPAN or
// obs:: call inside a kernel body header or an ISA-target TU would execute
// millions of times per step, sink the <2% overhead contract pinned by
// bench_obs/test_perf, and perturb the code layout of the very loops the
// cross-backend bitwise-equivalence tests compare. Kernel bodies stay
// obs-free; instrument the callers (timeloop functors, slab/fused sweeps).
// ---------------------------------------------------------------------------
void ruleObsInKernels(const ScannedFile& f, std::vector<Finding>& out) {
    static const char* kRule = "obs-in-kernels";
    const bool isBodyHeader =
        dirIs(f.path, "core") && f.path.size() >= 7 &&
        f.path.compare(f.path.size() - 7, 7, "_body.h") == 0;
    if (!dirIs(f.path, "kernel_targets") && !isBodyHeader) return;

    const auto flag = [&](int line, int col, const std::string& what) {
        addFinding(out, f, kRule, line, col,
                   what + " in a kernel body: obs hooks here run per cell, "
                         "not per functor, which sinks the <2% telemetry "
                         "overhead contract and perturbs the hot loops the "
                         "cross-backend bitwise tests compare",
                   "instrument the caller instead (timeloop functors, "
                   "slab/fused sweep drivers) — kernel targets and *_body.h "
                   "headers stay observability-free by construction");
    };

    // Tokens survive literal-blanking, so match against f.code.
    static const std::regex tokRe(R"(\b(obs\s*::|TPF_SPAN\b))");
    // #include "obs/..." has its path inside a string literal, which the
    // scanner blanks in f.code — match the raw line for this one.
    static const std::regex incRe(R"(#\s*include\s*"obs/)");
    for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        for (std::sregex_iterator it(line.begin(), line.end(), tokRe), end;
             it != end; ++it) {
            const std::smatch& m = *it;
            const std::string what = m[1].str().rfind("TPF_SPAN", 0) == 0
                                         ? std::string("TPF_SPAN")
                                         : std::string("obs:: call");
            flag(static_cast<int>(i) + 1,
                 static_cast<int>(m.position(1)) + 1, what);
        }
        std::smatch im;
        if (i < f.raw.size() &&
            std::regex_search(f.raw[i], im, incRe)) {
            flag(static_cast<int>(i) + 1,
                 static_cast<int>(im.position(0)) + 1,
                 "#include \"obs/...\"");
        }
    }
}

} // namespace

const std::vector<RuleInfo>& ruleCatalog() {
    static const std::vector<RuleInfo> catalog = {
        {"fastmath",
         "no libm sin/cos/exp/pow/... in src/core or src/analysis numerics "
         "(guards machine-independent goldens); use util/fastmath"},
        {"unordered-iteration",
         "no iteration over std::unordered_* containers (hash order is "
         "implementation-defined and breaks cross-platform determinism)"},
        {"nondeterminism",
         "no rand()/time()/std::chrono/std::random_device in deterministic "
         "paths; use util/random.h or suppress observational timing"},
        {"collective-in-conditional",
         "no vmpi collective (barrier/allreduce/gather/bcast/allAgree, or "
         "the Transport vtable spellings) inside a rank-conditional block "
         "(deadlocks the other ranks)"},
        {"raw-intrinsics",
         "no raw x86 SIMD (__m128d/__m256d/__m512d, _mm*_ calls, "
         "<immintrin.h>) outside src/simd; use the Vec4d*/Vec8d* wrappers"},
        {"assert-macro",
         "library code asserts with TPF_ASSERT/TPF_ASSERT_DBG, never bare "
         "assert() (which vanishes under NDEBUG)"},
        {"obs-in-kernels",
         "no telemetry hooks (obs::, TPF_SPAN, #include \"obs/...\") in "
         "kernel targets or *_body.h kernel headers; instrument the callers "
         "(timeloop functors, sweep drivers) instead"},
    };
    return catalog;
}

bool isKnownRule(std::string_view name) {
    for (const RuleInfo& r : ruleCatalog())
        if (name == r.name) return true;
    return false;
}

std::vector<Finding> lintScanned(const ScannedFile& f,
                                 const std::set<std::string>& enabled) {
    const auto on = [&](const char* rule) {
        return enabled.empty() || enabled.count(rule) > 0;
    };
    std::vector<Finding> out;
    if (on("fastmath")) ruleFastmath(f, out);
    if (on("unordered-iteration")) ruleUnorderedIteration(f, out);
    if (on("nondeterminism")) ruleNondeterminism(f, out);
    if (on("collective-in-conditional")) ruleCollectiveInConditional(f, out);
    if (on("raw-intrinsics")) ruleRawIntrinsics(f, out);
    if (on("assert-macro")) ruleAssertMacro(f, out);
    if (on("obs-in-kernels")) ruleObsInKernels(f, out);
    return out;
}

} // namespace tpf::lint
