/// \file scanner.cpp
/// Source preprocessing for tpf-lint: strip comments/string/char literals
/// (preserving line structure and byte offsets) and parse the
/// `tpf-lint: allow(...)` suppression comments.

#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <regex>

namespace tpf::lint {

namespace {

/// Split \p s into lines (without trailing '\n'; a trailing newline does not
/// create an empty final line).
std::vector<std::string> splitLines(std::string_view s) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == '\n') {
            std::string line(s.substr(start, i - start));
            if (!line.empty() && line.back() == '\r') line.pop_back();
            lines.push_back(std::move(line));
            start = i + 1;
        }
    }
    if (!lines.empty() && lines.back().empty() && !s.empty() &&
        s.back() == '\n')
        lines.pop_back();
    return lines;
}

} // namespace

bool ScannedFile::allowed(int line, const std::string& rule) const {
    const auto it = allows.find(line);
    if (it == allows.end()) return false;
    return it->second.count(rule) > 0 || it->second.count("*") > 0;
}

ScannedFile scanSource(std::string path, std::string_view content) {
    ScannedFile f;
    std::replace(path.begin(), path.end(), '\\', '/');
    f.path = std::move(path);

    // One pass over the bytes. `code` mirrors `content` with every byte of a
    // comment, string literal or char literal replaced by a space, so rule
    // regexes see only real code and columns still line up with the source.
    // `comments` collects comment text per line for suppression parsing.
    std::string code(content.size(), ' ');
    std::map<int, std::string> comments;

    enum class State { Code, LineComment, BlockComment, Str, Chr, RawStr };
    State st = State::Code;
    int line = 1;
    std::string rawDelim; // raw string closing delimiter: ')' + tag + '"'
    for (std::size_t i = 0; i < content.size(); ++i) {
        const char c = content[i];
        const char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            code[i] = '\n';
            if (st == State::LineComment) st = State::Code;
            ++line;
            continue;
        }
        switch (st) {
            case State::Code:
                if (c == '/' && next == '/') {
                    st = State::LineComment;
                } else if (c == '/' && next == '*') {
                    st = State::BlockComment;
                    ++i; // don't re-read the '*' (guards against "/*/")
                } else if (c == '"') {
                    // R"tag( ... )tag" raw string?
                    std::size_t j = i;
                    bool raw = false;
                    if (j > 0 && content[j - 1] == 'R') {
                        // allow prefixes like u8R", LR"
                        raw = true;
                    }
                    if (raw) {
                        std::size_t p = content.find('(', i + 1);
                        if (p != std::string_view::npos && p - i <= 17) {
                            rawDelim = ")";
                            rawDelim.append(content.substr(i + 1, p - i - 1));
                            rawDelim.push_back('"');
                            st = State::RawStr;
                        } else {
                            st = State::Str;
                        }
                    } else {
                        st = State::Str;
                    }
                } else if (c == '\'' && i > 0 &&
                           !(std::isdigit(static_cast<unsigned char>(
                                 content[i - 1])) ||
                             (std::isalpha(static_cast<unsigned char>(
                                  content[i - 1])) &&
                              content[i - 1] != 'u' && content[i - 1] != 'U' &&
                              content[i - 1] != 'L'))) {
                    // A quote after a digit/letter is a C++14 digit separator
                    // (1'000'000) or part of an identifier-ish token, not a
                    // char literal. u/U/L prefixes still open one.
                    st = State::Chr;
                } else if (c == '\'' && i == 0) {
                    st = State::Chr;
                } else {
                    code[i] = c;
                }
                break;
            case State::LineComment:
                comments[line].push_back(c);
                break;
            case State::BlockComment:
                if (c == '*' && next == '/') {
                    st = State::Code;
                    ++i;
                } else {
                    comments[line].push_back(c);
                }
                break;
            case State::Str:
                if (c == '\\') {
                    // Skip the escaped char, but keep line accounting exact
                    // when it is a line continuation.
                    if (next == '\n') {
                        code[i + 1] = '\n';
                        ++line;
                    }
                    ++i;
                } else if (c == '"') {
                    st = State::Code;
                }
                break;
            case State::Chr:
                if (c == '\\') {
                    if (next == '\n') {
                        code[i + 1] = '\n';
                        ++line;
                    }
                    ++i;
                } else if (c == '\'') {
                    st = State::Code;
                }
                break;
            case State::RawStr:
                if (c == ')' &&
                    content.compare(i, rawDelim.size(), rawDelim) == 0) {
                    i += rawDelim.size() - 1;
                    st = State::Code;
                }
                break;
        }
    }

    f.raw = splitLines(content);
    f.code = splitLines(code);
    f.code.resize(f.raw.size()); // blanking never adds lines

    // Suppressions: `tpf-lint: allow(rule-a, rule-b)` in a comment. On a
    // line that also carries code the allowance applies to that line; in a
    // comment-only position it applies to the next line that carries code
    // (so a multi-line explanation comment covers the statement after it).
    static const std::regex allowRe(R"(tpf-lint:\s*allow\(([^)]*)\))");
    const auto hasCode = [&](int ln1) {
        return ln1 - 1 < static_cast<int>(f.code.size()) &&
               f.code[static_cast<std::size_t>(ln1 - 1)].find_first_not_of(
                   " \t") != std::string::npos;
    };
    for (const auto& [ln, text] : comments) {
        std::smatch m;
        std::string rest = text;
        while (std::regex_search(rest, m, allowRe)) {
            std::string rules = m[1].str();
            int target = ln;
            if (!hasCode(ln)) {
                target = 0;
                for (int cand = ln + 1;
                     cand <= static_cast<int>(f.code.size()); ++cand)
                    if (hasCode(cand)) {
                        target = cand;
                        break;
                    }
            }
            if (target != 0) {
                std::string name;
                for (std::size_t i = 0; i <= rules.size(); ++i) {
                    if (i == rules.size() || rules[i] == ',' ||
                        rules[i] == ' ') {
                        if (!name.empty()) f.allows[target].insert(name);
                        name.clear();
                    } else {
                        name.push_back(rules[i]);
                    }
                }
            }
            rest = m.suffix();
        }
    }
    return f;
}

std::vector<Finding> lintSource(std::string path, std::string_view content,
                                const std::set<std::string>& enabled) {
    return lintScanned(scanSource(std::move(path), content), enabled);
}

std::string formatFinding(const Finding& f) {
    std::string out = f.file + ":" + std::to_string(f.line) + ":" +
                      std::to_string(f.column) + ": error: [" + f.rule + "] " +
                      f.message;
    if (!f.hint.empty()) out += "\n  fix-it: " + f.hint;
    return out;
}

} // namespace tpf::lint
