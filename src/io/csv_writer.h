#pragma once
/// \file csv_writer.h
/// Versioned CSV time-series output for the in-situ analysis pipeline.
///
/// A series file carries a schema line, a column header, and one row per
/// sample keyed by the global step count:
///
///     # tpf-analysis v1
///     step,time,window_offset,frac_s0,...
///     0,0,0,0.1875,...
///     4,0.040000000000000001,...
///
/// Values are printed with %.17g, which round-trips IEEE-754 doubles exactly:
/// two runs that compute bitwise-identical doubles write byte-identical
/// files, so the rank-invariance and golden time-series suites can compare
/// the artifacts directly.
///
/// Restart continuity: `resume()` re-opens an existing series, validates that
/// the schema and columns still match, keeps the rows with step <= the
/// checkpoint's step, drops any later rows (the original run may have
/// outlived its last checkpoint), and appends from there — so a restarted
/// run extends the series without duplicated or skipped rows and the final
/// file equals the one an uninterrupted run would have written.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tpf::io {

/// Raised on CSV I/O or schema-validation failure.
class CsvError : public std::runtime_error {
public:
    explicit CsvError(const std::string& what) : std::runtime_error(what) {}
};

class CsvWriter {
public:
    CsvWriter() = default;
    ~CsvWriter();
    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;
    CsvWriter(CsvWriter&& o) noexcept { *this = std::move(o); }
    CsvWriter& operator=(CsvWriter&& o) noexcept {
        if (this != &o) {
            close();
            f_ = o.f_;
            o.f_ = nullptr;
            path_ = std::move(o.path_);
            columnCount_ = o.columnCount_;
            lastWrittenStep_ = o.lastWrittenStep_;
        }
        return *this;
    }

    /// Start a fresh series: truncate \p path (parent directories created)
    /// and write the schema line "# <tag> v<version>" plus the header
    /// "step,<columns...>".
    void create(const std::string& path, const std::string& tag, int version,
                const std::vector<std::string>& columns);

    /// Resume an existing series after a restart from a checkpoint taken at
    /// step \p lastStep (see file comment). A missing file degrades to
    /// create(); a schema/column mismatch throws CsvError.
    void resume(const std::string& path, const std::string& tag, int version,
                const std::vector<std::string>& columns, long long lastStep);

    bool isOpen() const { return f_ != nullptr; }
    const std::string& path() const { return path_; }

    /// Append one row (flushed immediately; steps must be increasing).
    void writeRow(long long step, const std::vector<double>& values);

    void close();

private:
    std::FILE* f_ = nullptr;
    std::string path_;
    std::size_t columnCount_ = 0; ///< excluding the leading step column
    long long lastWrittenStep_ = -1;
};

/// A parsed series: the schema line, the header columns and the raw row
/// cells (kept as strings so comparisons are bitwise, not value-based).
struct CsvSeries {
    std::string schema; ///< the "# <tag> v<N>" line, without the newline
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows; ///< cells incl. leading step
    /// Step key of row \p i (the first cell parsed as an integer).
    long long stepOf(std::size_t i) const;
};

/// Parse a series file. Throws CsvError on missing file or malformed layout
/// (no schema line, no header, ragged rows).
CsvSeries readCsvSeries(const std::string& path);

/// First point of divergence between two series files, cell by cell.
struct CsvDiff {
    bool identical = false;
    /// Human-readable report: "identical", a structural mismatch (schema,
    /// columns, row count), or the first divergent step/column with both
    /// values plus the total differing-cell count.
    std::string message;
};

CsvDiff compareCsvSeries(const std::string& pathA, const std::string& pathB);

} // namespace tpf::io
