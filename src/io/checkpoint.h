#pragma once
/// \file checkpoint.h
/// Versioned, checksummed, exact-restart checkpointing (paper §3.2).
///
/// The paper stores "the complete simulation state … containing four phi
/// values and two mu values per cell" and uses single precision "to save disk
/// space and I/O bandwidth". This repo's format keeps that option but
/// defaults to full double precision, because the restart contract here is
/// stronger than the paper needed to state: running 2N steps must produce a
/// checkpoint *bitwise identical* to running N steps, restarting from the
/// checkpoint, and running N more — for any ranks × threads combination,
/// moving window included. That contract is what `tests/test_restart.cpp`
/// and the golden-run suite (`tests/test_golden.cpp`) enforce.
///
/// ## On-disk layout (format version 2)
///
/// One file per rank, `rank_<r>.tpfchk`, entirely self-describing:
///
///     FileHeader                     magic "TPFCHK02", header size, format
///                                    version, value precision (4|8 bytes),
///                                    step count, simulated time, moving-
///                                    window offset, global cells, block
///                                    size, rank / rank count, block count
///     repeat numBlocks times:
///       BlockHeader                  block index, interior size, origin
///       FieldHeader "phi" + payload  nf components, CRC-32, payload bytes
///       FieldHeader "mu"  + payload  interior cells only, forEachCell order
///                                    (z, y, x outer→inner, component
///                                    innermost); ghosts are reconstructed by
///                                    communication on restore
///
/// All integers are fixed-width little-endian; the headers are trivially
/// copyable structs with no implicit padding (static_asserted in the .cpp).
///
/// ## Atomicity
///
/// `saveCheckpoint(dir, …)` never exposes a half-written state: every rank
/// writes into the staging directory `<dir>.tmp`, and only after *all* ranks
/// report success does rank 0 publish it — an existing `<dir>` is first
/// moved aside to `<dir>.old` (rename, not delete), then the staging
/// directory is renamed to `<dir>` and `<dir>.old` removed. At every kill
/// point the last complete checkpoint survives under `<dir>` or `<dir>.old`,
/// and neither name ever holds a partial write; stale `.tmp`/`.old` debris
/// is cleaned up by the next save.
///
/// ## Error handling
///
/// I/O and validation failures throw CheckpointError instead of aborting.
/// In multi-rank runs every rank first finishes its *local* read/validation
/// (including the per-field CRC check), then the ranks agree on the outcome
/// with an all-reduce; only then do they throw collectively. A missing or
/// truncated per-rank file therefore aborts *all* ranks with a clear message
/// instead of leaving the healthy ranks hanging in the restore's collective
/// ghost exchange.

#include <stdexcept>
#include <string>
#include <vector>

#include "core/solver.h"

namespace tpf::io {

/// Current on-disk format version (the "02" in the magic tracks it).
inline constexpr int kCheckpointFormatVersion = 2;

/// Raised by every checkpoint routine on I/O or validation failure. In
/// multi-rank runs the throw is collective (all ranks throw after agreeing
/// on the failure), so vmpi::runParallel rethrows it on the calling thread.
class CheckpointError : public std::runtime_error {
public:
    explicit CheckpointError(const std::string& what)
        : std::runtime_error(what) {}
};

/// Stored value precision. Float64 is the default: it is what makes restart
/// *exact*. Float32 halves the file size (the paper's production choice) at
/// the cost of a ~1e-7 relative perturbation on restart.
enum class CheckpointPrecision { Float64, Float32 };

struct CheckpointOptions {
    CheckpointPrecision precision = CheckpointPrecision::Float64;
};

/// Metadata of a checkpoint directory (read from the rank-0 file).
struct CheckpointMeta {
    int formatVersion = kCheckpointFormatVersion;
    int precisionBytes = 8; ///< 8 = Float64 (exact restart), 4 = Float32
    long long step = 0;     ///< completed time steps
    double time = 0.0;
    double windowOffset = 0.0;
    Int3 globalCells{};
    Int3 blockCells{}; ///< decomposition block size
    int numRanks = 1;
};

/// Write the state of \p solver under directory \p dir (created if needed)
/// via the staging-directory protocol above. Collective: every rank writes
/// its own file and participates in the success agreement.
void saveCheckpoint(const std::string& dir, core::Solver& solver,
                    const CheckpointOptions& opts = {});

/// Restore a previously saved state into \p solver (must be configured with
/// the same domain and decomposition). The rank file is fully read and
/// validated — header, geometry, per-field CRC — *before* any solver state
/// is touched; fields, simulated time, moving-window offset and the timeloop
/// step counter are then restored and ghost layers re-synchronized.
/// Collective; throws CheckpointError on all ranks if any rank fails.
void loadCheckpoint(const std::string& dir, core::Solver& solver);

/// Read only the metadata (rank-0 file). Throws CheckpointError.
CheckpointMeta readCheckpointMeta(const std::string& dir);

/// First point of divergence between two checkpoints, for the golden-run
/// regression harness and `tpf-chk diff`.
struct CheckpointDiff {
    bool identical = false;
    /// Non-empty: the comparison could not proceed value-by-value (missing
    /// file, header/geometry mismatch, CRC failure) — the description says
    /// which file/field.
    std::string structural;
    // First divergent value (valid when !identical && structural.empty()):
    int rank = -1;
    int blockIdx = -1;
    std::string field;       ///< "phi" or "mu"
    int component = -1;
    Int3 cell{};             ///< global cell coordinates
    double valueA = 0.0, valueB = 0.0;
    // Aggregates over all compared values:
    long long differingValues = 0;
    double maxAbsDiff = 0.0;
    /// One-line human-readable report ("identical", the structural error, or
    /// field/cell/values of the first divergence plus the aggregates).
    std::string message() const;
};

/// Field-by-field, value-by-value comparison of two checkpoint directories
/// (all ranks; both must have the same rank count). Verifies the stored CRCs
/// of both sides first so a corrupted reference is reported as such rather
/// than as a numeric difference. Does not throw on mismatch — inspect the
/// returned report.
CheckpointDiff compareCheckpoints(const std::string& dirA,
                                  const std::string& dirB);

/// Bytes a checkpoint of this solver occupies at the given precision.
std::size_t checkpointBytes(const core::Solver& solver,
                            CheckpointPrecision precision =
                                CheckpointPrecision::Float64);

} // namespace tpf::io
