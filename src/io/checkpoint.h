#pragma once
/// \file checkpoint.h
/// Checkpointing (paper §3.2): "the complete simulation state has to be
/// stored on disk, containing four phi values and two mu values per cell.
/// While all computations are carried out in double precision, checkpoints
/// use only single precision to save disk space and I/O bandwidth."
///
/// Layout: one file per rank (rank_<r>.tpfchk) holding a fixed header, the
/// run clocks, and the interior cells of every local block in float32. Ghost
/// layers are reconstructed by communication on restore.

#include <string>
#include <vector>

#include "core/solver.h"

namespace tpf::io {

struct CheckpointMeta {
    double time = 0.0;
    double windowOffset = 0.0;
    Int3 globalCells{};
    int numRanks = 1;
};

/// Write the state of \p solver under directory \p dir (created if needed).
/// Collective: every rank writes its own file.
void saveCheckpoint(const std::string& dir, core::Solver& solver);

/// Restore a previously saved state into \p solver (must be configured with
/// the same domain/decomposition). Re-synchronizes ghost layers.
void loadCheckpoint(const std::string& dir, core::Solver& solver);

/// Read only the metadata (rank 0 file).
CheckpointMeta readCheckpointMeta(const std::string& dir);

/// Bytes a checkpoint of this solver occupies (for the I/O benchmark).
std::size_t checkpointBytes(const core::Solver& solver);

} // namespace tpf::io
