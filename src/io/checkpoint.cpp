#include "io/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>

#include "util/assert.h"

namespace tpf::io {

namespace {

constexpr char kMagic[8] = {'T', 'P', 'F', 'C', 'H', 'K', '0', '1'};

struct FileHeader {
    char magic[8];
    double time;
    double windowOffset;
    int globalX, globalY, globalZ;
    int numRanks;
    int numBlocks;
};

struct BlockHeader {
    int blockIdx;
    int nx, ny, nz;
};

std::string rankFile(const std::string& dir, int rank) {
    return dir + "/rank_" + std::to_string(rank) + ".tpfchk";
}

struct FileCloser {
    void operator()(std::FILE* f) const {
        if (f) std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void writeFieldF32(std::FILE* f, const Field<double>& field) {
    std::vector<float> buf;
    buf.reserve(static_cast<std::size_t>(field.interior().numCells()) *
                static_cast<std::size_t>(field.nf()));
    forEachCell(field.interior(), [&](int x, int y, int z) {
        for (int c = 0; c < field.nf(); ++c)
            buf.push_back(static_cast<float>(field(x, y, z, c)));
    });
    const std::size_t written = std::fwrite(buf.data(), sizeof(float),
                                            buf.size(), f);
    TPF_ASSERT(written == buf.size(), "checkpoint write failed");
}

void readFieldF32(std::FILE* f, Field<double>& field) {
    std::vector<float> buf(
        static_cast<std::size_t>(field.interior().numCells()) *
        static_cast<std::size_t>(field.nf()));
    const std::size_t read = std::fread(buf.data(), sizeof(float), buf.size(), f);
    TPF_ASSERT(read == buf.size(), "checkpoint read failed");
    std::size_t i = 0;
    forEachCell(field.interior(), [&](int x, int y, int z) {
        for (int c = 0; c < field.nf(); ++c)
            field(x, y, z, c) = static_cast<double>(buf[i++]);
    });
}

} // namespace

void saveCheckpoint(const std::string& dir, core::Solver& solver) {
    std::filesystem::create_directories(dir);
    const int rank = solver.comm() ? solver.comm()->rank() : 0;
    const int nranks = solver.comm() ? solver.comm()->size() : 1;

    FilePtr f(std::fopen(rankFile(dir, rank).c_str(), "wb"));
    TPF_ASSERT(f != nullptr, "cannot open checkpoint file for writing");

    FileHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.time = solver.time();
    hdr.windowOffset = solver.windowOffsetCells();
    hdr.globalX = solver.forest().globalCells().x;
    hdr.globalY = solver.forest().globalCells().y;
    hdr.globalZ = solver.forest().globalCells().z;
    hdr.numRanks = nranks;
    hdr.numBlocks = static_cast<int>(solver.localBlocks().size());
    TPF_ASSERT(std::fwrite(&hdr, sizeof(hdr), 1, f.get()) == 1, "header write");

    for (auto& b : solver.localBlocks()) {
        BlockHeader bh{b->blockIdx, b->size.x, b->size.y, b->size.z};
        TPF_ASSERT(std::fwrite(&bh, sizeof(bh), 1, f.get()) == 1,
                   "block header write");
        writeFieldF32(f.get(), b->phiSrc);
        writeFieldF32(f.get(), b->muSrc);
    }
}

void loadCheckpoint(const std::string& dir, core::Solver& solver) {
    const int rank = solver.comm() ? solver.comm()->rank() : 0;

    FilePtr f(std::fopen(rankFile(dir, rank).c_str(), "rb"));
    TPF_ASSERT(f != nullptr, "cannot open checkpoint file for reading");

    FileHeader hdr{};
    TPF_ASSERT(std::fread(&hdr, sizeof(hdr), 1, f.get()) == 1, "header read");
    TPF_ASSERT(std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) == 0,
               "not a TPF checkpoint file");
    TPF_ASSERT(hdr.globalX == solver.forest().globalCells().x &&
                   hdr.globalY == solver.forest().globalCells().y &&
                   hdr.globalZ == solver.forest().globalCells().z,
               "checkpoint domain size mismatch");
    TPF_ASSERT(hdr.numBlocks == static_cast<int>(solver.localBlocks().size()),
               "checkpoint block count mismatch (same decomposition required)");

    for (auto& b : solver.localBlocks()) {
        BlockHeader bh{};
        TPF_ASSERT(std::fread(&bh, sizeof(bh), 1, f.get()) == 1,
                   "block header read");
        TPF_ASSERT(bh.blockIdx == b->blockIdx, "block order mismatch");
        TPF_ASSERT(bh.nx == b->size.x && bh.ny == b->size.y && bh.nz == b->size.z,
                   "block size mismatch");
        readFieldF32(f.get(), b->phiSrc);
        readFieldF32(f.get(), b->muSrc);
        b->phiDst.copyFrom(b->phiSrc);
        b->muDst.copyFrom(b->muSrc);
    }

    solver.restore(hdr.time, hdr.windowOffset);
}

CheckpointMeta readCheckpointMeta(const std::string& dir) {
    FilePtr f(std::fopen(rankFile(dir, 0).c_str(), "rb"));
    TPF_ASSERT(f != nullptr, "cannot open checkpoint file");
    FileHeader hdr{};
    TPF_ASSERT(std::fread(&hdr, sizeof(hdr), 1, f.get()) == 1, "header read");
    TPF_ASSERT(std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) == 0,
               "not a TPF checkpoint file");
    return CheckpointMeta{hdr.time,
                          hdr.windowOffset,
                          {hdr.globalX, hdr.globalY, hdr.globalZ},
                          hdr.numRanks};
}

std::size_t checkpointBytes(const core::Solver& solver) {
    std::size_t bytes = sizeof(FileHeader);
    for (const auto& b : solver.localBlocks()) {
        bytes += sizeof(BlockHeader);
        bytes += static_cast<std::size_t>(b->numCells()) *
                 (core::N + core::KC) * sizeof(float);
    }
    return bytes;
}

} // namespace tpf::io
