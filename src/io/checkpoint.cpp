#include "io/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <type_traits>

#include "util/crc32.h"

namespace tpf::io {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// On-disk structures (format version 2). Fixed-width members, explicitly
// padded so the structs have no implicit holes and the layout is stable.
// ---------------------------------------------------------------------------

constexpr char kMagic[8] = {'T', 'P', 'F', 'C', 'H', 'K', '0', '2'};
constexpr char kMagicPrefix[6] = {'T', 'P', 'F', 'C', 'H', 'K'};

struct FileHeader {
    char magic[8];
    std::uint32_t headerBytes;
    std::uint32_t formatVersion;
    std::uint32_t valueBytes;     ///< 8 (Float64, exact restart) or 4 (Float32)
    std::uint32_t fieldsPerBlock; ///< 2: phi, mu
    std::int64_t step;
    double time;
    double windowOffset;
    std::int32_t globalX, globalY, globalZ;
    std::int32_t blockX, blockY, blockZ;
    std::int32_t numRanks, rank, numBlocks, reserved;
};
static_assert(sizeof(FileHeader) == 88 && std::is_trivially_copyable_v<FileHeader>);

struct BlockHeader {
    std::int32_t blockIdx;
    std::int32_t nx, ny, nz;
    std::int32_t originX, originY, originZ;
    std::int32_t reserved;
};
static_assert(sizeof(BlockHeader) == 32 && std::is_trivially_copyable_v<BlockHeader>);

struct FieldHeader {
    char name[8]; ///< NUL-padded field name ("phi", "mu")
    std::uint32_t components;
    std::uint32_t valueBytes;
    std::uint64_t payloadBytes;
    std::uint32_t crc;
    std::uint32_t reserved;
};
static_assert(sizeof(FieldHeader) == 32 && std::is_trivially_copyable_v<FieldHeader>);

std::string rankFile(const std::string& dir, int rank) {
    return dir + "/rank_" + std::to_string(rank) + ".tpfchk";
}

/// Strip trailing slashes so "<dir>.tmp" is a sibling, not a child.
std::string normalizeDir(std::string dir) {
    while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
    return dir;
}

std::string stagingDir(const std::string& dir) { return dir + ".tmp"; }

struct FileCloser {
    void operator()(std::FILE* f) const {
        if (f) std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// ---------------------------------------------------------------------------
// Serialization helpers
// ---------------------------------------------------------------------------

int valueBytes(CheckpointPrecision p) {
    return p == CheckpointPrecision::Float64 ? 8 : 4;
}

/// Interior cells of \p field serialized in forEachCell order (z, y, x
/// outer→inner) with the component index innermost, at \p prec precision.
std::vector<unsigned char> serializeField(const Field<double>& field,
                                          CheckpointPrecision prec) {
    const std::size_t values =
        static_cast<std::size_t>(field.interior().numCells()) *
        static_cast<std::size_t>(field.nf());
    std::vector<unsigned char> buf(values *
                                   static_cast<std::size_t>(valueBytes(prec)));
    std::size_t i = 0;
    if (prec == CheckpointPrecision::Float64) {
        auto* out = reinterpret_cast<double*>(buf.data());
        forEachCell(field.interior(), [&](int x, int y, int z) {
            for (int c = 0; c < field.nf(); ++c) out[i++] = field(x, y, z, c);
        });
    } else {
        auto* out = reinterpret_cast<float*>(buf.data());
        forEachCell(field.interior(), [&](int x, int y, int z) {
            for (int c = 0; c < field.nf(); ++c)
                out[i++] = static_cast<float>(field(x, y, z, c));
        });
    }
    return buf;
}

void deserializeField(const std::vector<unsigned char>& buf, int prec,
                      Field<double>& field) {
    std::size_t i = 0;
    if (prec == 8) {
        const auto* in = reinterpret_cast<const double*>(buf.data());
        forEachCell(field.interior(), [&](int x, int y, int z) {
            for (int c = 0; c < field.nf(); ++c) field(x, y, z, c) = in[i++];
        });
    } else {
        const auto* in = reinterpret_cast<const float*>(buf.data());
        forEachCell(field.interior(), [&](int x, int y, int z) {
            for (int c = 0; c < field.nf(); ++c)
                field(x, y, z, c) = static_cast<double>(in[i++]);
        });
    }
}

// ---------------------------------------------------------------------------
// Parsed in-memory representation, shared by load / meta / compare
// ---------------------------------------------------------------------------

struct ParsedField {
    FieldHeader fh{};
    std::string name;
    std::vector<unsigned char> payload;
    /// Decoded value at flat index \p i (component-innermost order).
    double value(std::size_t i) const {
        if (fh.valueBytes == 8) {
            double v;
            std::memcpy(&v, payload.data() + i * 8, 8);
            return v;
        }
        float v;
        std::memcpy(&v, payload.data() + i * 4, 4);
        return static_cast<double>(v);
    }
};

struct ParsedBlock {
    BlockHeader bh{};
    std::vector<ParsedField> fields;
};

struct ParsedRank {
    FileHeader fh{};
    std::vector<ParsedBlock> blocks;
};

bool fail(std::string& err, std::string msg) {
    err = std::move(msg);
    return false;
}

enum class ReadMode {
    HeaderOnly, ///< parse and validate the FileHeader, skip the blocks
    Full,       ///< parse everything, trust the stored CRCs
    FullVerify  ///< parse everything and verify every field CRC
};

/// Read and validate one rank file into \p out: header sanity, block and
/// field structure, payload sizes and (per \p mode) the per-field CRCs.
/// Purely local — no collectives, no solver state touched. On failure the
/// message in \p err names the file and, where applicable, the field.
bool readRankFile(const std::string& path, ParsedRank& out, ReadMode mode,
                  std::string& err) {
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return fail(err, "cannot open checkpoint file '" + path + "'");

    FileHeader& hdr = out.fh;
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1)
        return fail(err, "truncated checkpoint file '" + path +
                             "' (file header)");
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0) {
        if (std::memcmp(hdr.magic, kMagicPrefix, sizeof(kMagicPrefix)) == 0)
            return fail(err, "unsupported checkpoint format version in '" +
                                 path + "' (magic " +
                                 std::string(hdr.magic, 8) + ", this build "
                                 "reads TPFCHK02)");
        return fail(err, "'" + path + "' is not a TPF checkpoint file");
    }
    if (hdr.headerBytes != sizeof(FileHeader) ||
        hdr.formatVersion !=
            static_cast<std::uint32_t>(kCheckpointFormatVersion))
        return fail(err, "checkpoint format version mismatch in '" + path +
                             "' (file version " +
                             std::to_string(hdr.formatVersion) + ", expected " +
                             std::to_string(kCheckpointFormatVersion) + ")");
    if (hdr.valueBytes != 4 && hdr.valueBytes != 8)
        return fail(err, "invalid value precision in '" + path + "'");
    // The header is not CRC-protected, so every consumer of these fields
    // (including compareCheckpoints' rank loop) depends on the sanity
    // bounds here — e.g. a zeroed numRanks must not shrink a diff to an
    // empty comparison that reports "identical".
    if (hdr.fieldsPerBlock != 2 || hdr.numBlocks < 0 ||
        hdr.numBlocks > 1000000 || hdr.globalX <= 0 || hdr.globalY <= 0 ||
        hdr.globalZ <= 0 || hdr.numRanks <= 0 || hdr.numRanks > 1000000 ||
        hdr.rank < 0 || hdr.rank >= hdr.numRanks)
        return fail(err, "corrupt checkpoint header in '" + path + "'");
    if (mode == ReadMode::HeaderOnly) return true;

    out.blocks.resize(static_cast<std::size_t>(hdr.numBlocks));
    for (auto& blk : out.blocks) {
        BlockHeader& bh = blk.bh;
        if (std::fread(&bh, sizeof(bh), 1, f.get()) != 1)
            return fail(err, "truncated checkpoint file '" + path +
                                 "' (block header)");
        // Bound the dimensions so a corrupted-but-self-consistent header
        // cannot drive payload allocations into the terabytes.
        constexpr std::int32_t kMaxDim = 1 << 20;
        if (bh.nx <= 0 || bh.ny <= 0 || bh.nz <= 0 || bh.nx > kMaxDim ||
            bh.ny > kMaxDim || bh.nz > kMaxDim)
            return fail(err, "corrupt block header in '" + path + "'");
        const std::uint64_t cells = static_cast<std::uint64_t>(bh.nx) *
                                    static_cast<std::uint64_t>(bh.ny) *
                                    static_cast<std::uint64_t>(bh.nz);
        blk.fields.resize(hdr.fieldsPerBlock);
        for (auto& fld : blk.fields) {
            FieldHeader& fh = fld.fh;
            if (std::fread(&fh, sizeof(fh), 1, f.get()) != 1)
                return fail(err, "truncated checkpoint file '" + path +
                                     "' (field header)");
            fld.name.assign(fh.name,
                            strnlen(fh.name, sizeof(fh.name)));
            const std::string where =
                "field '" + fld.name + "' of block " +
                std::to_string(bh.blockIdx) + " in '" + path + "'";
            if (fh.components == 0 || fh.components > 64 ||
                fh.valueBytes != hdr.valueBytes)
                return fail(err, "corrupt field header for " + where);
            if (fh.payloadBytes != cells * fh.components * fh.valueBytes ||
                fh.payloadBytes > (1ULL << 40))
                return fail(err, "payload size mismatch for " + where);
            fld.payload.resize(fh.payloadBytes);
            if (std::fread(fld.payload.data(), 1, fld.payload.size(),
                           f.get()) != fld.payload.size())
                return fail(err,
                            "truncated checkpoint file: " + where);
            if (mode == ReadMode::FullVerify) {
                const std::uint32_t crc =
                    util::crc32(fld.payload.data(), fld.payload.size());
                if (crc != fh.crc) {
                    char buf[64];
                    std::snprintf(buf, sizeof buf,
                                  " (stored 0x%08X, computed 0x%08X)", fh.crc,
                                  crc);
                    return fail(err,
                                "checksum mismatch for " + where + buf);
                }
            }
        }
    }
    // Trailing garbage would mean the writer and reader disagree on layout.
    if (std::fgetc(f.get()) != EOF)
        return fail(err, "trailing data after last field in '" + path + "'");
    return true;
}

/// Check that a parsed rank file matches the running solver's configuration
/// and decomposition. Local, no solver mutation.
bool validateAgainstSolver(const ParsedRank& pr, const core::Solver& solver,
                           int rank, int nranks, std::string& err) {
    const FileHeader& hdr = pr.fh;
    const Int3 g = solver.forest().globalCells();
    if (hdr.globalX != g.x || hdr.globalY != g.y || hdr.globalZ != g.z) {
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "checkpoint domain size mismatch (file %dx%dx%d, "
                      "solver %dx%dx%d)",
                      hdr.globalX, hdr.globalY, hdr.globalZ, g.x, g.y, g.z);
        return fail(err, buf);
    }
    const Int3 bs = solver.forest().blockSize();
    if (hdr.blockX != bs.x || hdr.blockY != bs.y || hdr.blockZ != bs.z)
        return fail(err, "checkpoint block size mismatch (same decomposition "
                         "required)");
    if (hdr.numRanks != nranks || hdr.rank != rank) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "checkpoint rank layout mismatch (file: rank %d of %d, "
                      "running: rank %d of %d)",
                      hdr.rank, hdr.numRanks, rank, nranks);
        return fail(err, buf);
    }
    const auto& blocks = solver.localBlocks();
    if (hdr.numBlocks != static_cast<int>(blocks.size()))
        return fail(err, "checkpoint block count mismatch (same decomposition "
                         "required)");
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const core::SimBlock& b = *blocks[i];
        const BlockHeader& bh = pr.blocks[i].bh;
        if (bh.blockIdx != b.blockIdx)
            return fail(err, "checkpoint block order mismatch");
        if (bh.nx != b.size.x || bh.ny != b.size.y || bh.nz != b.size.z ||
            bh.originX != b.origin.x || bh.originY != b.origin.y ||
            bh.originZ != b.origin.z)
            return fail(err, "checkpoint block geometry mismatch");
        const ParsedField& phi = pr.blocks[i].fields[0];
        const ParsedField& mu = pr.blocks[i].fields[1];
        if (phi.name != "phi" ||
            phi.fh.components != static_cast<std::uint32_t>(core::N))
            return fail(err, "unexpected first field (want 'phi' with " +
                                 std::to_string(core::N) + " components)");
        if (mu.name != "mu" ||
            mu.fh.components != static_cast<std::uint32_t>(core::KC))
            return fail(err, "unexpected second field (want 'mu' with " +
                                 std::to_string(core::KC) + " components)");
    }
    return true;
}

// ---------------------------------------------------------------------------
// Collective failure agreement: every rank finishes its local work first,
// then all ranks learn whether anyone failed, and only then is the error
// raised — on all ranks — so nobody hangs in a later collective.
// ---------------------------------------------------------------------------

bool agree(vmpi::Comm* comm, bool localOk) {
    if (!comm || comm->size() == 1) return localOk;
    return comm->allAgree(localOk);
}

[[noreturn]] void throwCollective(const std::string& localErr,
                                  const char* what) {
    if (!localErr.empty()) throw CheckpointError(localErr);
    throw CheckpointError(std::string(what) +
                          " failed on another rank (see its message)");
}

/// Write one rank's file into the staging directory. Local; returns false
/// with a message in \p err on any I/O failure.
bool writeRankFile(const std::string& path, core::Solver& solver, int rank,
                   int nranks, CheckpointPrecision prec, std::string& err) {
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return fail(err,
                    "cannot open checkpoint file '" + path + "' for writing");

    FileHeader hdr{};
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.headerBytes = sizeof(FileHeader);
    hdr.formatVersion = static_cast<std::uint32_t>(kCheckpointFormatVersion);
    hdr.valueBytes = static_cast<std::uint32_t>(valueBytes(prec));
    hdr.fieldsPerBlock = 2;
    hdr.step = solver.stepsDone();
    hdr.time = solver.time();
    hdr.windowOffset = solver.windowOffsetCells();
    hdr.globalX = solver.forest().globalCells().x;
    hdr.globalY = solver.forest().globalCells().y;
    hdr.globalZ = solver.forest().globalCells().z;
    hdr.blockX = solver.forest().blockSize().x;
    hdr.blockY = solver.forest().blockSize().y;
    hdr.blockZ = solver.forest().blockSize().z;
    hdr.numRanks = nranks;
    hdr.rank = rank;
    hdr.numBlocks = static_cast<int>(solver.localBlocks().size());
    if (std::fwrite(&hdr, sizeof(hdr), 1, f.get()) != 1)
        return fail(err, "write failed for '" + path + "' (file header)");

    for (auto& b : solver.localBlocks()) {
        BlockHeader bh{};
        bh.blockIdx = b->blockIdx;
        bh.nx = b->size.x;
        bh.ny = b->size.y;
        bh.nz = b->size.z;
        bh.originX = b->origin.x;
        bh.originY = b->origin.y;
        bh.originZ = b->origin.z;
        if (std::fwrite(&bh, sizeof(bh), 1, f.get()) != 1)
            return fail(err, "write failed for '" + path + "' (block header)");

        const struct {
            const char* name;
            const Field<double>* field;
        } fields[2] = {{"phi", &b->phiSrc}, {"mu", &b->muSrc}};
        for (const auto& [name, field] : fields) {
            const std::vector<unsigned char> payload =
                serializeField(*field, prec);
            FieldHeader fh{};
            std::snprintf(fh.name, sizeof(fh.name), "%s", name);
            fh.components = static_cast<std::uint32_t>(field->nf());
            fh.valueBytes = hdr.valueBytes;
            fh.payloadBytes = payload.size();
            fh.crc = util::crc32(payload.data(), payload.size());
            if (std::fwrite(&fh, sizeof(fh), 1, f.get()) != 1 ||
                std::fwrite(payload.data(), 1, payload.size(), f.get()) !=
                    payload.size())
                return fail(err, "write failed for '" + path + "' (field '" +
                                     name + "')");
        }
    }
    if (std::fflush(f.get()) != 0)
        return fail(err, "flush failed for '" + path + "'");
    return true;
}

CheckpointMeta metaFromHeader(const FileHeader& hdr) {
    CheckpointMeta m;
    m.formatVersion = static_cast<int>(hdr.formatVersion);
    m.precisionBytes = static_cast<int>(hdr.valueBytes);
    m.step = hdr.step;
    m.time = hdr.time;
    m.windowOffset = hdr.windowOffset;
    m.globalCells = {hdr.globalX, hdr.globalY, hdr.globalZ};
    m.blockCells = {hdr.blockX, hdr.blockY, hdr.blockZ};
    m.numRanks = hdr.numRanks;
    return m;
}

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

void saveCheckpoint(const std::string& dirIn, core::Solver& solver,
                    const CheckpointOptions& opts) {
    const std::string dir = normalizeDir(dirIn);
    const std::string staging = stagingDir(dir);
    vmpi::Comm* comm = solver.comm();
    const int rank = comm ? comm->rank() : 0;
    const int nranks = comm ? comm->size() : 1;

    std::string err;
    bool ok = true;

    // Rank 0 prepares a clean staging directory; everyone waits for it.
    if (rank == 0) {
        std::error_code ec;
        fs::remove_all(staging, ec); // stale leftover of a killed save
        fs::create_directories(staging, ec);
        if (ec)
            ok = fail(err, "cannot create checkpoint staging directory '" +
                               staging + "': " + ec.message());
    }
    if (comm && comm->size() > 1) comm->barrier();

    if (ok) {
        // Contain any local exception (e.g. bad_alloc from the serialize
        // buffer): the agreement below must be reached by every rank, or the
        // others hang in it.
        try {
            ok = writeRankFile(rankFile(staging, rank), solver, rank, nranks,
                               opts.precision, err);
        } catch (const std::exception& e) {
            ok = fail(err, std::string("checkpoint write failed: ") +
                               e.what());
        }
    }

    // All files complete (the agreement doubles as the barrier) — or abort
    // everywhere, leaving any previous checkpoint under `dir` untouched.
    if (!agree(comm, ok)) {
        if (rank == 0) {
            std::error_code ec;
            fs::remove_all(staging, ec);
        }
        throwCollective(err, "checkpoint save");
    }

    // Publish atomically. An existing checkpoint is moved aside (rename,
    // not delete) before the new one takes its name, so the last complete
    // state survives every kill point: before the renames it is at `dir`,
    // between them at `dir.old` (recover by renaming back), after them the
    // new checkpoint is at `dir`. Neither name ever holds a partial write.
    if (rank == 0) {
        const std::string old = dir + ".old";
        std::error_code ec;
        fs::remove_all(old, ec); // stale leftover of a killed publish
        ec.clear();
        if (fs::exists(dir)) fs::rename(dir, old, ec);
        if (!ec) fs::rename(staging, dir, ec);
        if (ec)
            ok = fail(err, "cannot publish checkpoint '" + staging + "' -> '" +
                               dir + "': " + ec.message());
        else
            fs::remove_all(old, ec);
    }
    if (!agree(comm, ok)) throwCollective(err, "checkpoint save");
}

void loadCheckpoint(const std::string& dirIn, core::Solver& solver) {
    const std::string dir = normalizeDir(dirIn);
    vmpi::Comm* comm = solver.comm();
    const int rank = comm ? comm->rank() : 0;
    const int nranks = comm ? comm->size() : 1;

    // Phase 1 (local, no collectives, no solver mutation): read the whole
    // rank file into memory and validate structure, geometry and checksums.
    // Exceptions are contained here too — every rank must reach the
    // agreement below, or the others hang in it.
    ParsedRank pr;
    std::string err;
    bool ok = false;
    try {
        ok = readRankFile(rankFile(dir, rank), pr, ReadMode::FullVerify,
                          err) &&
             validateAgainstSolver(pr, solver, rank, nranks, err);
    } catch (const std::exception& e) {
        ok = fail(err, std::string("checkpoint read failed: ") + e.what());
    }

    // Phase 2 (collective): agree on the outcome. A rank with a missing or
    // truncated file aborts *all* ranks here, before anyone enters the
    // restore's ghost exchange — a local abort would leave the healthy ranks
    // hanging in that collective.
    if (!agree(comm, ok)) throwCollective(err, "checkpoint load");

    // Phase 3: apply. Only reached when every rank validated successfully.
    auto& blocks = solver.localBlocks();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        core::SimBlock& b = *blocks[i];
        deserializeField(pr.blocks[i].fields[0].payload,
                         static_cast<int>(pr.fh.valueBytes), b.phiSrc);
        deserializeField(pr.blocks[i].fields[1].payload,
                         static_cast<int>(pr.fh.valueBytes), b.muSrc);
        b.phiDst.copyFrom(b.phiSrc);
        b.muDst.copyFrom(b.muSrc);
    }
    solver.restore(pr.fh.time, pr.fh.windowOffset, pr.fh.step);
}

CheckpointMeta readCheckpointMeta(const std::string& dirIn) {
    const std::string dir = normalizeDir(dirIn);
    ParsedRank pr;
    std::string err;
    // Header only: the payloads (potentially GBs for production runs) are
    // neither read nor allocated just to report metadata.
    if (!readRankFile(rankFile(dir, 0), pr, ReadMode::HeaderOnly, err))
        throw CheckpointError(err);
    return metaFromHeader(pr.fh);
}

std::string CheckpointDiff::message() const {
    if (identical) return "checkpoints identical";
    if (!structural.empty()) return structural;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "first divergence: field '%s'[%d] at global cell "
                  "(%d, %d, %d), block %d, rank %d: %.17g vs %.17g "
                  "(%lld differing values, max |diff| %.3g)",
                  field.c_str(), component, cell.x, cell.y, cell.z, blockIdx,
                  rank, valueA, valueB, differingValues, maxAbsDiff);
    return buf;
}

CheckpointDiff compareCheckpoints(const std::string& dirAIn,
                                  const std::string& dirBIn) {
    const std::string dirA = normalizeDir(dirAIn);
    const std::string dirB = normalizeDir(dirBIn);
    CheckpointDiff d;

    // Cheap header peek for the rank count; the per-rank loop below does the
    // single full (CRC-verified) read of each file.
    ParsedRank a0;
    std::string err;
    if (!readRankFile(rankFile(dirA, 0), a0, ReadMode::HeaderOnly, err)) {
        d.structural = err;
        return d;
    }
    const int nranks = a0.fh.numRanks;

    bool first = true;
    for (int r = 0; r < nranks; ++r) {
        ParsedRank a, b;
        bool ok = false;
        try {
            ok = readRankFile(rankFile(dirA, r), a, ReadMode::FullVerify,
                              err) &&
                 readRankFile(rankFile(dirB, r), b, ReadMode::FullVerify,
                              err);
        } catch (const std::exception& e) {
            err = std::string("checkpoint read failed: ") + e.what();
        }
        if (!ok) {
            d.structural = err;
            return d;
        }
        const FileHeader& ha = a.fh;
        const FileHeader& hb = b.fh;
        char buf[192];
        if (hb.numRanks != nranks) {
            std::snprintf(buf, sizeof buf,
                          "rank count differs (%d vs %d)", nranks,
                          hb.numRanks);
            d.structural = buf;
            return d;
        }
        if (ha.globalX != hb.globalX || ha.globalY != hb.globalY ||
            ha.globalZ != hb.globalZ || ha.blockX != hb.blockX ||
            ha.blockY != hb.blockY || ha.blockZ != hb.blockZ ||
            ha.numBlocks != hb.numBlocks) {
            d.structural = "domain/decomposition differs between the "
                           "checkpoints";
            return d;
        }
        if (ha.valueBytes != hb.valueBytes) {
            std::snprintf(buf, sizeof buf,
                          "stored precision differs (%u vs %u bytes per "
                          "value)",
                          ha.valueBytes, hb.valueBytes);
            d.structural = buf;
            return d;
        }
        if (ha.step != hb.step || ha.time != hb.time ||
            ha.windowOffset != hb.windowOffset) {
            std::snprintf(buf, sizeof buf,
                          "run clocks differ: step %" PRId64 " vs %" PRId64
                          ", t %.17g vs %.17g, window offset %.17g vs %.17g",
                          ha.step, hb.step, ha.time, hb.time, ha.windowOffset,
                          hb.windowOffset);
            d.structural = buf;
            return d;
        }
        for (std::size_t bi = 0; bi < a.blocks.size(); ++bi) {
            const ParsedBlock& ba = a.blocks[bi];
            const ParsedBlock& bb = b.blocks[bi];
            if (std::memcmp(&ba.bh, &bb.bh, sizeof(BlockHeader)) != 0) {
                d.structural = "block geometry differs between the "
                               "checkpoints";
                return d;
            }
            for (std::size_t fi = 0; fi < ba.fields.size(); ++fi) {
                const ParsedField& fa = ba.fields[fi];
                const ParsedField& fb = bb.fields[fi];
                if (fa.name != fb.name ||
                    fa.payload.size() != fb.payload.size()) {
                    d.structural = "field layout differs between the "
                                   "checkpoints";
                    return d;
                }
                if (std::memcmp(fa.payload.data(), fb.payload.data(),
                                fa.payload.size()) == 0)
                    continue;
                // Walk the values to find and report each difference.
                const std::size_t nvals =
                    fa.payload.size() / fa.fh.valueBytes;
                const int nf = static_cast<int>(fa.fh.components);
                for (std::size_t i = 0; i < nvals; ++i) {
                    if (std::memcmp(fa.payload.data() + i * fa.fh.valueBytes,
                                    fb.payload.data() + i * fa.fh.valueBytes,
                                    fa.fh.valueBytes) == 0)
                        continue;
                    const double va = fa.value(i);
                    const double vb = fb.value(i);
                    ++d.differingValues;
                    const double ad = std::abs(va - vb);
                    d.maxAbsDiff = std::max(d.maxAbsDiff, ad);
                    if (first) {
                        first = false;
                        const std::size_t cellIdx =
                            i / static_cast<std::size_t>(nf);
                        const int nx = ba.bh.nx, ny = ba.bh.ny;
                        d.rank = r;
                        d.blockIdx = ba.bh.blockIdx;
                        d.field = fa.name;
                        d.component = static_cast<int>(
                            i % static_cast<std::size_t>(nf));
                        const int lx = static_cast<int>(cellIdx % nx);
                        const int ly = static_cast<int>((cellIdx / nx) % ny);
                        const int lz = static_cast<int>(
                            cellIdx / (static_cast<std::size_t>(nx) * ny));
                        d.cell = {ba.bh.originX + lx, ba.bh.originY + ly,
                                  ba.bh.originZ + lz};
                        d.valueA = va;
                        d.valueB = vb;
                    }
                }
            }
        }
    }
    d.identical = first;
    return d;
}

std::size_t checkpointBytes(const core::Solver& solver,
                            CheckpointPrecision precision) {
    std::size_t bytes = sizeof(FileHeader);
    for (const auto& b : solver.localBlocks()) {
        bytes += sizeof(BlockHeader) + 2 * sizeof(FieldHeader);
        bytes += static_cast<std::size_t>(b->numCells()) *
                 (core::N + core::KC) *
                 static_cast<std::size_t>(valueBytes(precision));
    }
    return bytes;
}

} // namespace tpf::io
