#pragma once
/// \file mesh_pipeline.h
/// In-situ, rank-parallel iso-surface extraction: the paper's I/O-reduction
/// pipeline (§3.2: per-block extraction → boundary-locked simplification →
/// stitching on one rank) executed *during* the run on the live phi fields
/// instead of offline on a dumped volume.
///
/// Determinism contract (enforced by ctest `mesh_rank_invariance`, argued in
/// docs/MESH.md): the stitched mesh is bitwise identical across
/// ranks x threads x transport decompositions. The unit of work is a *chunk*
/// — a kSlabHeight z-slab of the global cube lattice — extracted, welded and
/// simplified independently of every other chunk:
///  - a cube belongs to the block holding its lower corner; its +1 corners
///    read the z ghost plane (exchanged) and wrap laterally (the z-slab
///    decomposition spans the periodic x/y extent), so every global cube is
///    marched exactly once with identical inputs in any decomposition;
///  - per-chunk simplification locks the chunk's open-boundary vertices
///    (the paper's high-weight boundary trick), so chunk interfaces survive
///    bit-exactly for the final weld;
///  - root appends the gathered chunks in ascending global-z order — the
///    rank-ordered gatherAllBytes already delivers them that way, and the
///    explicit sort makes the order independent of the rank count — and
///    runs one final boundary weld.
/// Thread parallelism fans the chunk list over the rank's sweep pool; the
/// per-chunk results land in preallocated slots, so the thread count never
/// changes the output. Bitwise invariance across *rank counts* additionally
/// needs the block z-splits aligned to the kSlabHeight grid (true for every
/// production z-slab split with nz % 8 == 0 per rank).

#include <memory>
#include <vector>

#include "core/sim_block.h"
#include "grid/block_forest.h"
#include "io/mesh.h"
#include "util/thread_pool.h"
#include "vmpi/comm.h"

namespace tpf::io {

struct MeshPipelineOptions {
    double iso = 0.5;
    /// Per-chunk in-situ data reduction: simplify each chunk down to
    /// ceil(reduceTarget * chunk triangles) with its open boundary locked.
    /// 1.0 (or anything >= 1) disables simplification.
    double reduceTarget = 0.25;
    /// Quadric-error bound forwarded to simplifyMesh.
    double maxError = 1e300;
    /// Weld tolerance for the per-chunk and final stitching welds.
    double weldTol = 1e-7;
    /// Chunk fan-out pool (nullptr: serial). Never changes the result.
    util::ThreadPool* pool = nullptr;
};

/// Wall-clock seconds per pipeline stage of one extraction (accumulated over
/// the local chunks; gather includes the root-side stitch).
struct MeshPipelineTimings {
    double extractSec = 0.0;
    double simplifySec = 0.0;
    double gatherSec = 0.0;
};

/// One rank-local z-slab of the global field (cell-centered, ghost >= 1,
/// lateral extent == the global extent).
struct MeshLocalSlab {
    const Field<double>* field = nullptr;
    Int3 origin; ///< global cell coordinates of the slab's first interior cell
};

/// Collective: extract the global iso-surface of \p component from the
/// rank-local slabs, simplify each chunk in situ, gather rank-ordered and
/// stitch on root. Returns the stitched mesh on root (empty elsewhere).
/// Every rank must pass its own slabs and the same options.
TriMesh stitchIsoSurface(const std::vector<MeshLocalSlab>& slabs,
                         int component, vmpi::Comm* comm,
                         const MeshPipelineOptions& opt,
                         MeshPipelineTimings* timings = nullptr);

/// Convenience wrapper over a solver's local blocks: phase surface
/// (phi_phase == opt.iso) of the z-slab-decomposed forest. Asserts the
/// decomposition is z-only (blockGrid x = y = 1).
TriMesh extractGlobalPhaseSurface(
    const std::vector<std::unique_ptr<core::SimBlock>>& blocks,
    const BlockForest& bf, vmpi::Comm* comm, int phase,
    const MeshPipelineOptions& opt, MeshPipelineTimings* timings = nullptr);

} // namespace tpf::io
