#include "io/mesh.h"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "util/assert.h"

namespace tpf::io {

namespace {

/// Hash key of a quantized 3D position.
struct QuantKey {
    std::int64_t x, y, z;
    bool operator==(const QuantKey&) const = default;
};

struct QuantKeyHash {
    std::size_t operator()(const QuantKey& k) const {
        std::uint64_t h = 1469598103934665603ULL;
        for (std::int64_t v : {k.x, k.y, k.z}) {
            h ^= static_cast<std::uint64_t>(v);
            h *= 1099511628211ULL;
        }
        return static_cast<std::size_t>(h);
    }
};

} // namespace

void TriMesh::append(const TriMesh& o) {
    const int base = static_cast<int>(vertices.size());
    vertices.insert(vertices.end(), o.vertices.begin(), o.vertices.end());
    triangles.reserve(triangles.size() + o.triangles.size());
    for (const auto& t : o.triangles)
        triangles.push_back({t[0] + base, t[1] + base, t[2] + base});
}

void TriMesh::weldVertices(double tol) {
    TPF_ASSERT(tol > 0.0, "weld tolerance must be positive");
    const double inv = 1.0 / tol;

    // Hash grid of kept-vertex indices per quantization bin. A bin can hold
    // several representatives (points within a bin but further than tol
    // apart along some axis stay distinct), so each bin stores the head of
    // an intrusive chain through chainPrev — a per-bin std::vector would
    // cost one heap allocation per bin, which dominates the weld on raw
    // marching-tet output where nearly every kept vertex opens a new bin.
    std::unordered_map<QuantKey, int, QuantKeyHash> bins;
    bins.reserve(vertices.size());
    std::vector<int> remap(vertices.size());
    std::vector<Vec3> keptVertices;
    keptVertices.reserve(vertices.size());
    std::vector<int> chainPrev; ///< kept index -> previous kept in same bin
    chainPrev.reserve(vertices.size());

    for (std::size_t i = 0; i < vertices.size(); ++i) {
        const Vec3& v = vertices[i];
        const std::int64_t bx = static_cast<std::int64_t>(std::llround(v.x * inv));
        const std::int64_t by = static_cast<std::int64_t>(std::llround(v.y * inv));
        const std::int64_t bz = static_cast<std::int64_t>(std::llround(v.z * inv));
        // Probe the 27 neighbor bins: two points within tol can land in
        // adjacent bins when they straddle a quantization boundary, which
        // used to leave hairline cracks at tet/cube seams. Among all
        // candidates within tol (per axis) the earliest-kept index wins, so
        // welding stays a pure function of the input vertex order —
        // first-insertion order, never the hash layout.
        int match = -1;
        for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    const auto it = bins.find(QuantKey{bx + dx, by + dy, bz + dz});
                    if (it == bins.end()) continue;
                    for (int k = it->second; k >= 0;
                         k = chainPrev[static_cast<std::size_t>(k)]) {
                        const Vec3& u = keptVertices[static_cast<std::size_t>(k)];
                        if (std::abs(u.x - v.x) <= tol &&
                            std::abs(u.y - v.y) <= tol &&
                            std::abs(u.z - v.z) <= tol &&
                            (match < 0 || k < match))
                            match = k;
                    }
                }
            }
        }
        if (match < 0) {
            match = static_cast<int>(keptVertices.size());
            keptVertices.push_back(v);
            const auto ins = bins.emplace(QuantKey{bx, by, bz}, match);
            chainPrev.push_back(ins.second ? -1 : ins.first->second);
            ins.first->second = match;
        }
        remap[i] = match;
    }

    std::vector<std::array<int, 3>> keptTriangles;
    keptTriangles.reserve(triangles.size());
    for (const auto& t : triangles) {
        const std::array<int, 3> m{remap[static_cast<std::size_t>(t[0])],
                                   remap[static_cast<std::size_t>(t[1])],
                                   remap[static_cast<std::size_t>(t[2])]};
        if (m[0] == m[1] || m[1] == m[2] || m[0] == m[2]) continue; // degenerate
        keptTriangles.push_back(m);
    }

    vertices = std::move(keptVertices);
    triangles = std::move(keptTriangles);
}

void TriMesh::compactVertices() {
    std::vector<int> remap(vertices.size(), -1);
    std::vector<Vec3> kept;
    for (auto& t : triangles) {
        for (int& idx : t) {
            auto& m = remap[static_cast<std::size_t>(idx)];
            if (m < 0) {
                m = static_cast<int>(kept.size());
                kept.push_back(vertices[static_cast<std::size_t>(idx)]);
            }
            idx = m;
        }
    }
    vertices = std::move(kept);
}

double TriMesh::totalArea() const {
    double area = 0.0;
    for (const auto& t : triangles) {
        const Vec3& a = vertices[static_cast<std::size_t>(t[0])];
        const Vec3& b = vertices[static_cast<std::size_t>(t[1])];
        const Vec3& c = vertices[static_cast<std::size_t>(t[2])];
        area += 0.5 * (b - a).cross(c - a).norm();
    }
    return area;
}

namespace {

struct EdgeKey {
    int a, b; // a < b
    bool operator==(const EdgeKey&) const = default;
};
struct EdgeKeyHash {
    std::size_t operator()(const EdgeKey& e) const {
        return std::hash<long long>()((static_cast<long long>(e.a) << 32) ^ e.b);
    }
};

std::unordered_map<EdgeKey, int, EdgeKeyHash> edgeUseCounts(const TriMesh& m) {
    std::unordered_map<EdgeKey, int, EdgeKeyHash> counts;
    counts.reserve(m.triangles.size() * 3);
    for (const auto& t : m.triangles) {
        for (int e = 0; e < 3; ++e) {
            int a = t[static_cast<std::size_t>(e)];
            int b = t[static_cast<std::size_t>((e + 1) % 3)];
            if (a > b) std::swap(a, b);
            ++counts[EdgeKey{a, b}];
        }
    }
    return counts;
}

} // namespace

long long TriMesh::eulerCharacteristic() const {
    const auto counts = edgeUseCounts(*this);
    // Count only vertices in use.
    std::vector<char> used(vertices.size(), 0);
    for (const auto& t : triangles)
        for (int idx : t) used[static_cast<std::size_t>(idx)] = 1;
    long long v = 0;
    for (char u : used) v += u;
    return v - static_cast<long long>(counts.size()) +
           static_cast<long long>(triangles.size());
}

bool TriMesh::isClosed() const {
    if (triangles.empty()) return false;
    // tpf-lint: allow(unordered-iteration) -- pure all-of predicate; the
    // result is independent of hash iteration order.
    for (const auto& [edge, count] : edgeUseCounts(*this))
        if (count != 2) return false;
    return true;
}

std::vector<char> TriMesh::openBoundaryVertices() const {
    std::vector<char> flags(vertices.size(), 0);
    // tpf-lint: allow(unordered-iteration) -- idempotent flag sets; the
    // resulting vector is independent of hash iteration order.
    for (const auto& [edge, count] : edgeUseCounts(*this)) {
        if (count == 1) {
            flags[static_cast<std::size_t>(edge.a)] = 1;
            flags[static_cast<std::size_t>(edge.b)] = 1;
        }
    }
    return flags;
}

std::pair<Vec3, Vec3> TriMesh::boundingBox() const {
    Vec3 lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
    for (const Vec3& v : vertices) {
        lo.x = std::min(lo.x, v.x);
        lo.y = std::min(lo.y, v.y);
        lo.z = std::min(lo.z, v.z);
        hi.x = std::max(hi.x, v.x);
        hi.y = std::max(hi.y, v.y);
        hi.z = std::max(hi.z, v.z);
    }
    return {lo, hi};
}

Vec3 TriMesh::triangleNormal(std::size_t t) const {
    const auto& tr = triangles[t];
    const Vec3& a = vertices[static_cast<std::size_t>(tr[0])];
    const Vec3& b = vertices[static_cast<std::size_t>(tr[1])];
    const Vec3& c = vertices[static_cast<std::size_t>(tr[2])];
    const Vec3 n = (b - a).cross(c - a);
    const double len = n.norm();
    if (len < 1e-300) return {0.0, 0.0, 0.0};
    return n * (1.0 / len);
}

} // namespace tpf::io
