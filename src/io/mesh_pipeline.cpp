#include "io/mesh_pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <utility>

#include "core/slab_sweep.h"
#include "io/marching_cubes.h"
#include "io/reduction.h"
#include "io/simplify.h"
#include "perf/perf.h"
#include "util/assert.h"

namespace tpf::io {

namespace {

/// One canonical extraction chunk: a kSlabHeight z-slab of one local slab.
struct ChunkRef {
    const Field<double>* field = nullptr;
    Int3 origin;    ///< global origin of the owning slab
    int lz0 = 0;    ///< local z of the chunk's first cube plane
    int lz1 = 0;    ///< local z one past the chunk's last cube plane
    int gz0 = 0;    ///< global z of the chunk (the canonical sort key)
    TriMesh mesh;
};

/// Record framing inside the gathered blob: global chunk z + payload size,
/// then the serializeMesh() bytes. Trivially copyable, 8-byte fields.
struct ChunkHeader {
    std::int64_t gz0 = 0;
    std::uint64_t bytes = 0;
};
static_assert(std::is_trivially_copyable_v<ChunkHeader>);

void runOverChunks(std::vector<ChunkRef>& chunks, util::ThreadPool* pool,
                   const std::function<void(ChunkRef&)>& fn) {
    if (pool != nullptr && pool->threads() > 1 && chunks.size() > 1) {
        pool->parallelFor(static_cast<int>(chunks.size()), [&](int i) {
            fn(chunks[static_cast<std::size_t>(i)]);
        });
    } else {
        for (ChunkRef& c : chunks) fn(c);
    }
}

} // namespace

TriMesh stitchIsoSurface(const std::vector<MeshLocalSlab>& slabs,
                         int component, vmpi::Comm* comm,
                         const MeshPipelineOptions& opt,
                         MeshPipelineTimings* timings) {
    // Canonical chunking: every slab interior splits into the same fixed
    // kSlabHeight z-slabs the kernel sweeps use. The partition is a function
    // of the interval alone, so with block z-splits aligned to the slab grid
    // the chunk set — and every chunk's input — is identical in any
    // ranks x threads decomposition.
    std::vector<ChunkRef> chunks;
    for (const MeshLocalSlab& s : slabs) {
        TPF_ASSERT(s.field != nullptr && s.field->ghost() >= 1,
                   "mesh pipeline slabs need a field with a ghost layer");
        const CellInterval interior{0, 0, 0, s.field->nx() - 1,
                                    s.field->ny() - 1, s.field->nz() - 1};
        for (const CellInterval& c : core::slabPartition(interior)) {
            ChunkRef r;
            r.field = s.field;
            r.origin = s.origin;
            r.lz0 = c.zMin;
            r.lz1 = c.zMax + 1;
            r.gz0 = s.origin.z + c.zMin;
            chunks.push_back(std::move(r));
        }
    }

    // Stage 1: per-chunk extraction (lateral self-wrap + z ghosts, welded).
    double t0 = perf::now();
    runOverChunks(chunks, opt.pool, [&](ChunkRef& c) {
        c.mesh = extractIsoSurfaceWrapXY(
            *c.field, component, opt.iso,
            Vec3{static_cast<double>(c.origin.x),
                 static_cast<double>(c.origin.y),
                 static_cast<double>(c.origin.z)},
            c.lz0, c.lz1);
    });
    if (timings != nullptr) timings->extractSec += perf::now() - t0;

    // Stage 2: in-situ data reduction. The chunk's open-boundary vertices —
    // chunk interfaces and domain borders — are locked, so the interfaces
    // survive bit-exactly for the stitching weld (the paper's high-weight
    // boundary preservation).
    t0 = perf::now();
    if (opt.reduceTarget < 1.0) {
        runOverChunks(chunks, opt.pool, [&](ChunkRef& c) {
            if (c.mesh.empty()) return;
            const std::vector<char> locked = c.mesh.openBoundaryVertices();
            SimplifyOptions so;
            so.targetTriangles = static_cast<std::size_t>(std::ceil(
                std::max(0.0, opt.reduceTarget) *
                static_cast<double>(c.mesh.numTriangles())));
            so.maxError = opt.maxError;
            so.lockedFlags = &locked;
            simplifyMesh(c.mesh, so);
        });
    }
    if (timings != nullptr) timings->simplifySec += perf::now() - t0;

    // Stage 3: serialize in ascending global-z order, rank-ordered gather,
    // canonical stitch on root.
    t0 = perf::now();
    std::stable_sort(chunks.begin(), chunks.end(),
                     [](const ChunkRef& a, const ChunkRef& b) {
                         return a.gz0 < b.gz0;
                     });
    std::vector<std::byte> blob;
    for (const ChunkRef& c : chunks) {
        const std::vector<std::byte> payload = serializeMesh(c.mesh);
        ChunkHeader h;
        h.gz0 = c.gz0;
        h.bytes = payload.size();
        const std::size_t at = blob.size();
        blob.resize(at + sizeof h + payload.size());
        std::memcpy(blob.data() + at, &h, sizeof h);
        std::memcpy(blob.data() + at + sizeof h, payload.data(),
                    payload.size());
    }
    chunks.clear();

    std::vector<std::vector<std::byte>> perRank;
    if (comm != nullptr && comm->size() > 1) {
        perRank = comm->gatherAllBytes(blob);
        if (!comm->isRoot()) {
            if (timings != nullptr) timings->gatherSec += perf::now() - t0;
            return {};
        }
    } else {
        perRank.push_back(std::move(blob));
    }

    // Parse every rank's records and append in ascending global-z order.
    // Chunk z keys are unique (z-only decomposition), so the sort makes the
    // triangle stream independent of which rank produced which chunk.
    std::vector<std::pair<std::int64_t, TriMesh>> parts;
    for (const std::vector<std::byte>& rankBlob : perRank) {
        std::size_t at = 0;
        while (at < rankBlob.size()) {
            TPF_ASSERT(at + sizeof(ChunkHeader) <= rankBlob.size(),
                       "truncated mesh chunk header");
            ChunkHeader h;
            std::memcpy(&h, rankBlob.data() + at, sizeof h);
            at += sizeof h;
            TPF_ASSERT(at + h.bytes <= rankBlob.size(),
                       "truncated mesh chunk payload");
            std::vector<std::byte> payload(
                rankBlob.begin() + static_cast<std::ptrdiff_t>(at),
                rankBlob.begin() + static_cast<std::ptrdiff_t>(at + h.bytes));
            at += h.bytes;
            parts.emplace_back(h.gz0, deserializeMesh(payload));
        }
    }
    std::stable_sort(parts.begin(), parts.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });

    TriMesh stitched;
    for (auto& [gz0, part] : parts) stitched.append(part);
    stitched.weldVertices(opt.weldTol); // the final boundary weld
    if (timings != nullptr) timings->gatherSec += perf::now() - t0;
    return stitched;
}

TriMesh extractGlobalPhaseSurface(
    const std::vector<std::unique_ptr<core::SimBlock>>& blocks,
    const BlockForest& bf, vmpi::Comm* comm, int phase,
    const MeshPipelineOptions& opt, MeshPipelineTimings* timings) {
    TPF_ASSERT(bf.blockGrid().x == 1 && bf.blockGrid().y == 1,
               "the in-situ mesh pipeline needs the z-slab decomposition "
               "(blocks spanning the full periodic x/y extent)");
    std::vector<MeshLocalSlab> slabs;
    slabs.reserve(blocks.size());
    for (const auto& b : blocks)
        slabs.push_back(MeshLocalSlab{&b->phiSrc, b->origin});
    return stitchIsoSurface(slabs, phase, comm, opt, timings);
}

} // namespace tpf::io
