#include "io/reduction.h"

#include <cmath>
#include <cstring>

#include "util/assert.h"

namespace tpf::io {

std::vector<std::byte> serializeMesh(const TriMesh& m) {
    const std::size_t nv = m.vertices.size();
    const std::size_t nt = m.triangles.size();
    std::vector<std::byte> buf(2 * sizeof(std::size_t) + nv * sizeof(Vec3) +
                               nt * sizeof(std::array<int, 3>));
    std::byte* p = buf.data();
    std::memcpy(p, &nv, sizeof(nv));
    p += sizeof(nv);
    std::memcpy(p, &nt, sizeof(nt));
    p += sizeof(nt);
    std::memcpy(p, m.vertices.data(), nv * sizeof(Vec3));
    p += nv * sizeof(Vec3);
    std::memcpy(p, m.triangles.data(), nt * sizeof(std::array<int, 3>));
    return buf;
}

TriMesh deserializeMesh(const std::vector<std::byte>& buf) {
    TriMesh m;
    TPF_ASSERT(buf.size() >= 2 * sizeof(std::size_t), "mesh message too short");
    const std::byte* p = buf.data();
    std::size_t nv = 0, nt = 0;
    std::memcpy(&nv, p, sizeof(nv));
    p += sizeof(nv);
    std::memcpy(&nt, p, sizeof(nt));
    p += sizeof(nt);
    TPF_ASSERT(buf.size() == 2 * sizeof(std::size_t) + nv * sizeof(Vec3) +
                                 nt * sizeof(std::array<int, 3>),
               "mesh message size mismatch");
    m.vertices.resize(nv);
    m.triangles.resize(nt);
    std::memcpy(m.vertices.data(), p, nv * sizeof(Vec3));
    p += nv * sizeof(Vec3);
    std::memcpy(m.triangles.data(), p, nt * sizeof(std::array<int, 3>));
    return m;
}

void coarsenPreservingPlanes(TriMesh& mesh, const ReductionOptions& opt,
                             const std::vector<double>& planesX,
                             const std::vector<double>& planesY,
                             const std::vector<double>& planesZ) {
    if (mesh.numTriangles() <= opt.maxTriangles) return;
    SimplifyOptions so;
    so.targetTriangles = opt.maxTriangles;
    so.maxError = opt.maxError;
    so.lockedVertex = [&](const Vec3& v) {
        const double tol = 1e-6;
        for (double x : planesX)
            if (std::abs(v.x - x) < tol) return true;
        for (double y : planesY)
            if (std::abs(v.y - y) < tol) return true;
        for (double z : planesZ)
            if (std::abs(v.z - z) < tol) return true;
        return false;
    };
    simplifyMesh(mesh, so);
}

TriMesh reduceMeshHierarchical(TriMesh local, vmpi::Comm* comm,
                               const ReductionOptions& opt) {
    // Intermediate rounds lock the open-boundary vertices so the remaining
    // stitching steps still find matching borders — the role of the paper's
    // "high weight to all vertices that are located on block boundaries".
    auto coarsen = [&](TriMesh& m, bool lockBoundaries) {
        if (m.numTriangles() <= opt.maxTriangles) return;
        SimplifyOptions so;
        so.targetTriangles = opt.maxTriangles;
        so.maxError = opt.maxError;
        std::vector<char> flags;
        if (lockBoundaries) {
            flags = m.openBoundaryVertices();
            so.lockedFlags = &flags;
        }
        simplifyMesh(m, so);
    };

    if (comm == nullptr || comm->size() == 1) {
        local.weldVertices(opt.weldTol);
        coarsen(local, /*lockBoundaries=*/false);
        return local;
    }

    constexpr int tagMesh = 7001;
    const int rank = comm->rank();
    const int size = comm->size();

    // log2(P) pairwise rounds; in round k ranks with bit k set send to their
    // partner rank - 2^k and drop out ("in each step only half of the
    // processes take part in the reduction").
    bool active = true;
    for (int stride = 1; stride < size; stride *= 2) {
        if (!active) continue;
        if ((rank & stride) != 0) {
            // Pre-coarsen before shipping, keeping the borders intact.
            coarsen(local, /*lockBoundaries=*/true);
            const auto buf = serializeMesh(local);
            comm->send(rank - stride, tagMesh, buf.data(), buf.size());
            local = TriMesh{};
            active = false;
        } else if (rank + stride < size) {
            std::vector<std::byte> buf;
            comm->recv(rank + stride, tagMesh, buf);
            const TriMesh incoming = deserializeMesh(buf);
            local.append(incoming);
            // Stitch the shared border, then coarsen the stitched region.
            local.weldVertices(opt.weldTol);
            const bool moreRounds = 2 * stride < size;
            coarsen(local, /*lockBoundaries=*/moreRounds);
        }
    }
    return local;
}

} // namespace tpf::io
