#pragma once
/// \file mesh.h
/// Indexed triangle surface mesh — the result-output data structure of the
/// hierarchical I/O reduction pipeline (paper §3.2: "Instead of writing all
/// values of a cell, we only store the position of the interfaces using a
/// triangle surface mesh").

#include <array>
#include <cstddef>
#include <vector>

#include "util/smallmat.h"

namespace tpf::io {

struct TriMesh {
    std::vector<Vec3> vertices;
    std::vector<std::array<int, 3>> triangles;

    std::size_t numVertices() const { return vertices.size(); }
    std::size_t numTriangles() const { return triangles.size(); }
    bool empty() const { return triangles.empty(); }

    /// Append another mesh (indices shifted).
    void append(const TriMesh& o);

    /// Merge vertices closer than \p tol (hash grid on quantized positions),
    /// drop degenerate triangles. This is the stitching step for per-block
    /// meshes that share vertices on block boundaries.
    void weldVertices(double tol = 1e-9);

    /// Remove vertices not referenced by any triangle.
    void compactVertices();

    double totalArea() const;

    /// V - E + F over unique undirected edges (2 for a sphere-like surface).
    long long eulerCharacteristic() const;

    /// True if every edge is shared by exactly two triangles (watertight).
    bool isClosed() const;

    /// Flags (per vertex) marking vertices on open-boundary edges (edges used
    /// by exactly one triangle) — the borders that later stitching steps must
    /// find intact.
    std::vector<char> openBoundaryVertices() const;

    /// Approximate storage footprint (used by the I/O reduction benchmark).
    std::size_t memoryBytes() const {
        return vertices.size() * sizeof(Vec3) +
               triangles.size() * sizeof(std::array<int, 3>);
    }

    /// Axis-aligned bounding box; {min, max}. Undefined when empty.
    std::pair<Vec3, Vec3> boundingBox() const;

    /// Per-triangle unit normal (zero for degenerate triangles).
    Vec3 triangleNormal(std::size_t t) const;
};

} // namespace tpf::io
