#pragma once
/// \file marching_cubes.h
/// Per-block iso-surface extraction of the phase interfaces (paper §3.2).
///
/// The paper uses a custom marching-cubes variant; this implementation
/// marches the Kuhn tetrahedral decomposition of each cell-centered cube
/// (tables in mc_tables.h), which needs no 256-case tables and is provably
/// consistent across cube and block boundaries: per-block meshes extracted
/// with ghost extension stitch into a single watertight surface (verified by
/// the mesh tests). Like the paper's variant it produces triangles with edge
/// lengths of order dx — "unnecessarily fine" — which the quadric-error
/// simplification (simplify.h) then coarsens.

#include "core/sim_block.h"
#include "grid/field.h"
#include "io/mesh.h"
#include "util/thread_pool.h"

namespace tpf::io {

/// Extract the iso-surface \p field(component) == iso. Cube lower corners run
/// over the interior; upper corners read the +1 ghost layer, so the surface
/// extends exactly to the neighbor block's first cell (stitchable). Vertex
/// positions are cell-center coordinates shifted by \p origin.
TriMesh extractIsoSurface(const Field<double>& field, int component, double iso,
                          Vec3 origin);

/// Thread-parallel variant: the cube sweep fans out over the fixed z-slab
/// partition of core/slab_sweep.h with deterministic per-slab append order,
/// so the result is bitwise identical for every thread count (nullptr or a
/// 1-thread pool: serial).
TriMesh extractIsoSurface(const Field<double>& field, int component, double iso,
                          Vec3 origin, util::ThreadPool* pool);

/// Extract only the cubes whose lower corner z lies in [z0, z1), reading the
/// +1 lateral corners through periodic x/y self-wrap instead of ghost cells
/// (valid when the block spans the whole periodic x/y extent, the production
/// z-slab decomposition); only the z ghost planes are read, which the D3C19
/// phi exchange keeps valid. This is the per-chunk unit of the in-situ
/// rank-parallel pipeline (io/mesh_pipeline.h).
TriMesh extractIsoSurfaceWrapXY(const Field<double>& field, int component,
                                double iso, Vec3 origin, int z0, int z1);

/// Interface mesh of one phase of a simulation block (phi_a = 0.5 surface)
/// in global cell coordinates.
TriMesh extractPhaseSurface(const core::SimBlock& blk, int phase,
                            double iso = 0.5);

} // namespace tpf::io
