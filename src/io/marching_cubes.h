#pragma once
/// \file marching_cubes.h
/// Per-block iso-surface extraction of the phase interfaces (paper §3.2).
///
/// The paper uses a custom marching-cubes variant; this implementation
/// marches the Kuhn tetrahedral decomposition of each cell-centered cube
/// (tables in mc_tables.h), which needs no 256-case tables and is provably
/// consistent across cube and block boundaries: per-block meshes extracted
/// with ghost extension stitch into a single watertight surface (verified by
/// the mesh tests). Like the paper's variant it produces triangles with edge
/// lengths of order dx — "unnecessarily fine" — which the quadric-error
/// simplification (simplify.h) then coarsens.

#include "core/sim_block.h"
#include "grid/field.h"
#include "io/mesh.h"

namespace tpf::io {

/// Extract the iso-surface \p field(component) == iso. Cube lower corners run
/// over the interior; upper corners read the +1 ghost layer, so the surface
/// extends exactly to the neighbor block's first cell (stitchable). Vertex
/// positions are cell-center coordinates shifted by \p origin.
TriMesh extractIsoSurface(const Field<double>& field, int component, double iso,
                          Vec3 origin);

/// Interface mesh of one phase of a simulation block (phi_a = 0.5 surface)
/// in global cell coordinates.
TriMesh extractPhaseSurface(const core::SimBlock& blk, int phase,
                            double iso = 0.5);

} // namespace tpf::io
