#pragma once
/// \file writers.h
/// File output: Wavefront OBJ (plus a reader for tests), binary STL, and a
/// legacy-VTK structured-points writer for field volumes (for ParaView-style
/// inspection of small runs — large runs use the mesh pipeline instead, see
/// reduction.h).

#include <string>

#include "grid/field.h"
#include "io/mesh.h"

namespace tpf::io {

void writeObj(const std::string& path, const TriMesh& mesh);
TriMesh readObj(const std::string& path);

void writeStlBinary(const std::string& path, const TriMesh& mesh);

/// Legacy VTK STRUCTURED_POINTS with one SCALARS array per field component
/// (interior cells only). Components are named <name>0, <name>1, ...
void writeVtkField(const std::string& path, const Field<double>& field,
                   const std::string& name);

} // namespace tpf::io
