#include "io/marching_cubes.h"

#include <cmath>

#include "core/slab_sweep.h"
#include "io/mc_tables.h"
#include "util/assert.h"

namespace tpf::io {

namespace {

/// Interpolated iso-crossing on the edge between corners (pa, va) and
/// (pb, vb); va and vb straddle the iso value. When the iso value hits a
/// corner exactly, t is exactly 0 or 1 and the returned point is bitwise
/// equal to that corner position (cell-center coordinates are exact in
/// double precision), which is what lets emitTriangle detect the collapsed
/// zero-area triangles exactly.
Vec3 edgePoint(Vec3 pa, double va, Vec3 pb, double vb, double iso) {
    const double denom = vb - va;
    const double t = (std::abs(denom) < 1e-300) ? 0.5 : (iso - va) / denom;
    return pa + (pb - pa) * t;
}

/// Emit the triangle (a, b, c), oriented so the normal points away from the
/// inside (value >= iso) region represented by \p insidePoint. Triangles with
/// exactly zero area — produced when the iso value hits a tet vertex exactly
/// and two edge points collapse onto it — are skipped at emit time; relying
/// on the post-weld index dedup instead would leave self-edges that break
/// isClosed()/eulerCharacteristic() on exact-hit fields.
void emitTriangle(TriMesh& m, Vec3 a, Vec3 b, Vec3 c, Vec3 insidePoint) {
    const Vec3 n = (b - a).cross(c - a);
    if (!(n.dot(n) > 0.0)) return; // degenerate (or NaN): no surface content
    const Vec3 centroid = (a + b + c) * (1.0 / 3.0);
    if (n.dot(insidePoint - centroid) > 0.0) std::swap(b, c);
    const int base = static_cast<int>(m.vertices.size());
    m.vertices.push_back(a);
    m.vertices.push_back(b);
    m.vertices.push_back(c);
    m.triangles.push_back({base, base + 1, base + 2});
}

/// March one tetrahedron.
void marchTet(TriMesh& m, const Vec3 p[4], const double v[4], double iso) {
    int insideMask = 0;
    for (int i = 0; i < 4; ++i)
        if (v[i] >= iso) insideMask |= 1 << i;
    if (insideMask == 0 || insideMask == 0xF) return;

    int inside[4], outside[4];
    int ni = 0, no = 0;
    for (int i = 0; i < 4; ++i) {
        if (insideMask & (1 << i))
            inside[ni++] = i;
        else
            outside[no++] = i;
    }

    if (ni == 1 || ni == 3) {
        // One triangle separating the lone vertex from the other three.
        const int lone = (ni == 1) ? inside[0] : outside[0];
        const int* others = (ni == 1) ? outside : inside;
        const Vec3 a = edgePoint(p[lone], v[lone], p[others[0]], v[others[0]], iso);
        const Vec3 b = edgePoint(p[lone], v[lone], p[others[1]], v[others[1]], iso);
        const Vec3 c = edgePoint(p[lone], v[lone], p[others[2]], v[others[2]], iso);
        // Inside reference: the lone corner itself when it is the inside one
        // (ni == 1); otherwise the centroid of the three inside corners —
        // using a single inside corner here degenerates when that corner
        // lies exactly on the triangle plane (v == iso), leaving the
        // orientation to the arbitrary tet vertex order.
        const Vec3 insidePt =
            (ni == 1) ? p[lone]
                      : (p[others[0]] + p[others[1]] + p[others[2]]) *
                            (1.0 / 3.0);
        emitTriangle(m, a, b, c, insidePt);
    } else {
        // 2-2 split: a quad on the four crossing edges, as two triangles.
        const int i0 = inside[0], i1 = inside[1];
        const int o0 = outside[0], o1 = outside[1];
        const Vec3 q00 = edgePoint(p[i0], v[i0], p[o0], v[o0], iso);
        const Vec3 q01 = edgePoint(p[i0], v[i0], p[o1], v[o1], iso);
        const Vec3 q10 = edgePoint(p[i1], v[i1], p[o0], v[o0], iso);
        const Vec3 q11 = edgePoint(p[i1], v[i1], p[o1], v[o1], iso);
        // Quad q00-q01-q11-q10 (opposite corners share no tet edge).
        emitTriangle(m, q00, q01, q11, p[i0]);
        emitTriangle(m, q00, q11, q10, p[i1]);
    }
}

/// March every cube whose lower corner z lies in [z0, z1) over the full x/y
/// interior, appending raw (unwelded) triangles to \p mesh. With \p wrapXY
/// the +1 lateral corner reads wrap to x/y = 0 (periodic self-wrap: only the
/// z ghost planes are touched); otherwise they read the +1 ghost layer.
void marchCubeRange(TriMesh& mesh, const Field<double>& field, int component,
                    double iso, Vec3 origin, int z0, int z1, bool wrapXY) {
    const int nx = field.nx(), ny = field.ny();
    // Hoisted row pointers: per (y, z) the four corner rows of the cube
    // layer, with the constant x stride of the layout (1 for fzyx, nf for
    // zyxf). The inner loop then classifies each cube with eight strided
    // loads instead of eight full index computations — the classification
    // touches *every* cube, so this is what keeps the in-situ extraction
    // overhead small next to the solver step.
    const std::ptrdiff_t xs =
        field.index(1, 0, 0, component) - field.index(0, 0, 0, component);
    for (int z = z0; z < z1; ++z) {
        for (int y = 0; y < ny; ++y) {
            const int yUp = (wrapXY && y + 1 == ny) ? 0 : y + 1;
            const double* row[4] = {
                field.ptr(0, y, z, component),
                field.ptr(0, yUp, z, component),
                field.ptr(0, y, z + 1, component),
                field.ptr(0, yUp, z + 1, component),
            };
            for (int x = 0; x < nx; ++x) {
                // Cube on the cell centers (x..x+1, y..y+1, z..z+1).
                // Classify the corners first and bail before building any
                // positions: the overwhelming majority of cubes lie entirely
                // on one side of the iso value.
                const std::ptrdiff_t a = x * xs;
                const std::ptrdiff_t b =
                    (wrapXY && x + 1 == nx) ? 0 : (x + 1) * xs;
                // kCubeCorner order: bit0 = +x, bit1 = +y, bit2 = +z.
                const double cv[8] = {row[0][a], row[0][b], row[1][a],
                                      row[1][b], row[2][a], row[2][b],
                                      row[3][a], row[3][b]};
                bool anyIn = false, anyOut = false;
                for (const double v : cv) (v >= iso ? anyIn : anyOut) = true;
                if (!anyIn || !anyOut) continue; // no crossing in this cube

                Vec3 cp[8];
                for (int c = 0; c < 8; ++c) {
                    const auto& o = kCubeCorner[static_cast<std::size_t>(c)];
                    cp[c] = Vec3{origin.x + x + o[0] + 0.5,
                                 origin.y + y + o[1] + 0.5,
                                 origin.z + z + o[2] + 0.5};
                }

                for (const auto& tet : kCubeTets) {
                    const Vec3 tp[4] = {cp[tet[0]], cp[tet[1]], cp[tet[2]],
                                        cp[tet[3]]};
                    const double tv[4] = {cv[tet[0]], cv[tet[1]], cv[tet[2]],
                                          cv[tet[3]]};
                    marchTet(mesh, tp, tv, iso);
                }
            }
        }
    }
}

} // namespace

TriMesh extractIsoSurface(const Field<double>& field, int component, double iso,
                          Vec3 origin, util::ThreadPool* pool) {
    TPF_ASSERT(field.ghost() >= 1,
               "iso-surface extraction reads the +1 ghost layer");

    // Fan out over the same fixed z-slab partition as the kernel sweeps: the
    // partition depends on the interval alone, every slab extracts into its
    // own buffer, and the buffers are appended in slab order — so the
    // triangle stream (and hence the welded mesh) is bitwise independent of
    // the thread count, exactly like the field sweeps (core/slab_sweep.h).
    const CellInterval interior{0, 0, 0, field.nx() - 1, field.ny() - 1,
                                field.nz() - 1};
    const std::vector<CellInterval> slabs = core::slabPartition(interior);
    std::vector<TriMesh> parts(slabs.size());
    const auto extractSlab = [&](int i) {
        const CellInterval& s = slabs[static_cast<std::size_t>(i)];
        marchCubeRange(parts[static_cast<std::size_t>(i)], field, component,
                       iso, origin, s.zMin, s.zMax + 1, /*wrapXY=*/false);
    };
    if (pool != nullptr && pool->threads() > 1 && slabs.size() > 1) {
        pool->parallelFor(static_cast<int>(slabs.size()), extractSlab);
    } else {
        for (std::size_t i = 0; i < slabs.size(); ++i)
            extractSlab(static_cast<int>(i));
    }

    TriMesh mesh;
    for (const TriMesh& part : parts) mesh.append(part);

    // Merge the duplicated edge points between tetrahedra / cubes / slabs.
    mesh.weldVertices(1e-7);
    return mesh;
}

TriMesh extractIsoSurface(const Field<double>& field, int component, double iso,
                          Vec3 origin) {
    return extractIsoSurface(field, component, iso, origin, nullptr);
}

TriMesh extractIsoSurfaceWrapXY(const Field<double>& field, int component,
                                double iso, Vec3 origin, int z0, int z1) {
    TPF_ASSERT(field.ghost() >= 1,
               "iso-surface extraction reads the +1 z ghost plane");
    TPF_ASSERT(z0 >= 0 && z1 <= field.nz() && z0 <= z1,
               "cube z range out of the field interior");
    TriMesh mesh;
    marchCubeRange(mesh, field, component, iso, origin, z0, z1,
                   /*wrapXY=*/true);
    mesh.weldVertices(1e-7);
    return mesh;
}

TriMesh extractPhaseSurface(const core::SimBlock& blk, int phase, double iso) {
    return extractIsoSurface(blk.phiSrc, phase, iso,
                             Vec3{static_cast<double>(blk.origin.x),
                                  static_cast<double>(blk.origin.y),
                                  static_cast<double>(blk.origin.z)});
}

} // namespace tpf::io
